/**
 * @file
 * Set-associative cache model with LRU replacement and a two-level
 * hierarchy (per-core L1, shared L2, DRAM) that returns per-access
 * latency. Per-instruction AMAT counters feed MESA's DFG node weights
 * for memory operations (paper §3.1, §4.2).
 */

#ifndef MESA_MEM_CACHE_HH
#define MESA_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/stats.hh"
#include "util/stats_registry.hh"

namespace mesa::mem
{

/** Geometry and timing parameters for one cache level. */
struct CacheParams
{
    size_t size_bytes = 64 * 1024;
    size_t assoc = 4;
    size_t line_bytes = 64;
    uint32_t hit_latency = 2;  ///< Cycles to serve a hit at this level.
};

/**
 * One level of set-associative cache with true-LRU replacement.
 * Models tags only (data lives in MainMemory); write-allocate,
 * write-back policy.
 */
class Cache
{
  public:
    Cache(std::string name, const CacheParams &params);

    /**
     * Look up an address, allocating the line on miss.
     * @return true on hit.
     */
    bool access(uint32_t addr, bool write);

    /** Probe without modifying state (no allocation, no LRU update). */
    bool probe(uint32_t addr) const;

    /** Invalidate every line (e.g., on offload boundary flushes). */
    void flush();

    uint32_t hitLatency() const { return params_.hit_latency; }
    uint64_t hits() const { return hits_.value(); }
    uint64_t misses() const { return misses_.value(); }
    uint64_t writebacks() const { return writebacks_.value(); }

    /** Live counters, for linking into a StatsRegistry. */
    const Counter &hitCounter() const { return hits_; }
    const Counter &missCounter() const { return misses_; }
    const Counter &writebackCounter() const { return writebacks_; }

    double
    missRate() const
    {
        const uint64_t total = hits() + misses();
        return total ? double(misses()) / double(total) : 0.0;
    }

    const std::string &name() const { return name_; }
    size_t numSets() const { return num_sets_; }

  private:
    struct Line
    {
        uint32_t tag = 0;
        bool valid = false;
        bool dirty = false;
        uint64_t lru = 0;  ///< Larger = more recently used.
    };

    size_t setIndex(uint32_t addr) const;
    uint32_t tagOf(uint32_t addr) const;

    std::string name_;
    CacheParams params_;
    size_t num_sets_;
    unsigned line_shift_;
    std::vector<std::vector<Line>> sets_;
    uint64_t access_clock_ = 0;

    Counter hits_{"hits"};
    Counter misses_{"misses"};
    Counter writebacks_{"writebacks"};
};

/** Parameters for the full memory hierarchy. */
struct HierarchyParams
{
    CacheParams l1{64 * 1024, 4, 64, 2};           // paper: 64KB L1
    CacheParams l2{8 * 1024 * 1024, 8, 64, 18};    // paper: unified 8MB L2
    uint32_t dram_latency = 120;                   ///< Cycles to DRAM.

    /** Next-line prefetch into L1 on every demand miss. */
    bool next_line_prefetch = false;
};

/**
 * Two-level cache hierarchy + DRAM. accessLatency() walks L1 -> L2 ->
 * DRAM and returns the total cycles for this access; an Average tracks
 * the running AMAT that MESA samples as measured load latency.
 */
class MemHierarchy
{
  public:
    explicit MemHierarchy(const HierarchyParams &params = {});

    /**
     * Construct with an externally owned, shared L2 (multicore: each
     * core keeps a private L1 but all cores contend in one L2).
     */
    MemHierarchy(const HierarchyParams &params, Cache *shared_l2);

    /** Access an address; returns total latency in cycles. */
    uint32_t accessLatency(uint32_t addr, bool write);

    /**
     * Warm the hierarchy for a predicted future access (speculative
     * prefetch an iteration ahead, paper §4.2). Does not perturb the
     * AMAT statistic; DRAM traffic is still counted.
     */
    void prefetch(uint32_t addr);

    /** Running average memory access time over all accesses. */
    double amat() const { return amat_.mean(); }

    uint64_t accesses() const { return amat_.count(); }
    Cache &l1() { return l1_; }
    Cache &l2() { return shared_l2_ ? *shared_l2_ : l2_; }
    const Cache &l1() const { return l1_; }
    const Cache &l2() const { return shared_l2_ ? *shared_l2_ : l2_; }
    uint32_t dramLatency() const { return params_.dram_latency; }

    /** Accesses that went all the way to DRAM (L2 misses seen here). */
    uint64_t dramAccesses() const { return dram_accesses_.value(); }

    /**
     * Link the hierarchy's live counters (L1/L2 hits, misses,
     * writebacks, DRAM accesses, AMAT) into @p registry under
     * @p prefix (e.g. "accel.mem.").
     */
    void registerStats(StatsRegistry &registry,
                       const std::string &prefix) const;

    void
    resetStats()
    {
        amat_.reset();
        dram_accesses_.reset();
    }

  private:
    HierarchyParams params_;
    Cache l1_;
    Cache l2_;
    Cache *shared_l2_ = nullptr;
    Average amat_;
    Counter dram_accesses_{"dram_accesses"};
};

} // namespace mesa::mem

#endif // MESA_MEM_CACHE_HH
