/**
 * @file
 * Flat sparse byte-addressable main memory backing both the CPU
 * emulator and the accelerator's load/store entries. Pages are
 * allocated lazily so large address spaces cost nothing until touched.
 *
 * Every page carries a monotonically increasing write-generation
 * counter so consumers that cache derived views of memory (the
 * emulator's decoded basic-block cache) can validate with one integer
 * compare instead of re-reading the bytes. clear() bumps a separate
 * epoch counter, which is the signal that any cached page pointer is
 * dead (pages are otherwise never deallocated).
 */

#ifndef MESA_MEM_MEMORY_HH
#define MESA_MEM_MEMORY_HH

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

namespace mesa::mem
{

/** Sparse paged physical memory with little-endian accessors. */
class MainMemory
{
  public:
    static constexpr uint32_t PageShift = 12;
    static constexpr uint32_t PageSize = 1u << PageShift;

    uint8_t
    read8(uint32_t addr) const
    {
        const Page *p = findPage(addr);
        return p ? p->bytes[addr & (PageSize - 1)] : 0;
    }

    void
    write8(uint32_t addr, uint8_t v)
    {
        Page &p = page(addr);
        ++p.gen;
        p.bytes[addr & (PageSize - 1)] = v;
    }

    uint16_t
    read16(uint32_t addr) const
    {
        return uint16_t(read8(addr)) | (uint16_t(read8(addr + 1)) << 8);
    }

    void
    write16(uint32_t addr, uint16_t v)
    {
        write8(addr, uint8_t(v));
        write8(addr + 1, uint8_t(v >> 8));
    }

    uint32_t
    read32(uint32_t addr) const
    {
        // Fast path for aligned access within one page.
        if ((addr & 3) == 0) {
            const Page *p = findPage(addr);
            if (!p)
                return 0;
            uint32_t v;
            std::memcpy(&v, p->bytes.data() + (addr & (PageSize - 1)), 4);
            return v;
        }
        return uint32_t(read16(addr)) | (uint32_t(read16(addr + 2)) << 16);
    }

    void
    write32(uint32_t addr, uint32_t v)
    {
        if ((addr & 3) == 0) {
            Page &p = page(addr);
            ++p.gen;
            std::memcpy(p.bytes.data() + (addr & (PageSize - 1)), &v, 4);
            return;
        }
        write16(addr, uint16_t(v));
        write16(addr + 2, uint16_t(v >> 16));
    }

    float
    readFloat(uint32_t addr) const
    {
        return std::bit_cast<float>(read32(addr));
    }

    void
    writeFloat(uint32_t addr, float v)
    {
        write32(addr, std::bit_cast<uint32_t>(v));
    }

    /** Copy a block of bytes into memory (program/data loading). */
    void
    writeBlock(uint32_t addr, const void *src, size_t len)
    {
        const auto *bytes = static_cast<const uint8_t *>(src);
        for (size_t i = 0; i < len; ++i)
            write8(addr + uint32_t(i), bytes[i]);
    }

    /** Number of resident (touched) pages. */
    size_t residentPages() const { return pages_.size(); }

    /**
     * Bounding byte span [lo, hi) over all resident pages ({0, 0}
     * when nothing is resident). Program, inputs, and outputs of a
     * loaded workload all fall inside this box, which makes it the
     * natural memory region to certify offloads against.
     */
    std::pair<uint64_t, uint64_t>
    residentSpan() const
    {
        if (pages_.empty())
            return {0, 0};
        uint32_t min_pn = UINT32_MAX;
        uint32_t max_pn = 0;
        for (const auto &[pn, pg] : pages_) {
            min_pn = std::min(min_pn, pn);
            max_pn = std::max(max_pn, pn);
        }
        return {uint64_t(min_pn) << PageShift,
                (uint64_t(max_pn) + 1) << PageShift};
    }

    /** Drop all contents. Invalidates every cached page pointer. */
    void
    clear()
    {
        pages_.clear();
        ++epoch_;
    }

    /**
     * Epoch counter, bumped by clear(). A consumer holding pointers
     * into pages (see pageGenPtr) must drop them when this changes.
     */
    uint64_t epoch() const { return epoch_; }

    /**
     * Stable pointer to the write-generation counter of the page
     * holding @p addr, or nullptr when the page is not resident. The
     * pointer stays valid until clear() (pages are never individually
     * freed and unordered_map nodes do not move on rehash); revalidate
     * against epoch() before dereferencing across calls to clear().
     */
    const uint64_t *
    pageGenPtr(uint32_t addr) const
    {
        const Page *p = findPage(addr);
        return p ? &p->gen : nullptr;
    }

    /**
     * Deep snapshot for golden-model comparisons: returns a copy of all
     * resident pages keyed by page number.
     */
    std::unordered_map<uint32_t, std::vector<uint8_t>>
    snapshot() const
    {
        std::unordered_map<uint32_t, std::vector<uint8_t>> s;
        for (const auto &[pn, pg] : pages_)
            s.emplace(pn, std::vector<uint8_t>(pg->bytes.begin(),
                                               pg->bytes.end()));
        return s;
    }

  private:
    struct Page
    {
        std::array<uint8_t, PageSize> bytes;
        uint64_t gen = 0; ///< Bumped on every write to the page.
    };

    Page &
    page(uint32_t addr)
    {
        const uint32_t pn = addr >> PageShift;
        auto it = pages_.find(pn);
        if (it == pages_.end()) {
            auto p = std::make_unique<Page>();
            p->bytes.fill(0);
            it = pages_.emplace(pn, std::move(p)).first;
        }
        return *it->second;
    }

    const Page *
    findPage(uint32_t addr) const
    {
        auto it = pages_.find(addr >> PageShift);
        return it == pages_.end() ? nullptr : it->second.get();
    }

    std::unordered_map<uint32_t, std::unique_ptr<Page>> pages_;
    uint64_t epoch_ = 0;
};

} // namespace mesa::mem

#endif // MESA_MEM_MEMORY_HH
