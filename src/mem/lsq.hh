/**
 * @file
 * Accelerator-side load/store unit (paper Fig. 5): entries are ordered
 * by LDFG sequence number (original program order), loads may issue
 * out-of-order as soon as their addresses are generated, stores commit
 * in order, and matching store->load pairs forward data directly.
 * Entries share a limited number of memory ports; contention delays
 * issue to the next free port cycle.
 */

#ifndef MESA_MEM_LSQ_HH
#define MESA_MEM_LSQ_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mem/cache.hh"
#include "mem/memory.hh"
#include "riscv/isa.hh"
#include "util/slot_pool.hh"
#include "util/stats.hh"

namespace mesa::mem
{

/**
 * A pool of memory ports shared by all load/store units of an
 * accelerator (tiled instances share the same physical ports). Each
 * access occupies a port for one issue cycle.
 */
class PortPool
{
  public:
    explicit PortPool(unsigned num_ports);

    /** Earliest cycle >= request with a free port; books the port. */
    uint64_t acquire(uint64_t request_cycle);

    unsigned size() const { return pool_.capacity(); }

    /**
     * Cycles accesses spent queued behind busy ports since the last
     * reset(): sum over acquire() calls of booked - requested. Feeds
     * the profiler's memory-port contention counter.
     */
    uint64_t contentionWait() const { return wait_cycles_; }

    void
    reset()
    {
        pool_.reset();
        wait_cycles_ = 0;
    }

  private:
    SlotPool pool_;
    uint64_t wait_cycles_ = 0;
};

/** Completion record for one load. */
struct LoadResult
{
    uint32_t value = 0;       ///< Loaded (or forwarded) value.
    uint64_t done_cycle = 0;  ///< Cycle the data is available.
    bool forwarded = false;   ///< Served by store->load forwarding.
    bool invalidated = false; ///< Re-issued after an older-store match.
};

/**
 * Load/store entries shared by all PEs of one accelerator instance.
 *
 * The unit is driven in program order by the execution engine (which
 * walks the LDFG), so "older store" is any store already buffered this
 * iteration. Timing is decoupled from that order: each access issues
 * at its operands-ready cycle, subject to port availability.
 */
class LoadStoreUnit
{
  public:
    LoadStoreUnit(MainMemory &mem, MemHierarchy &hierarchy,
                  PortPool &ports);

    /** Clear per-iteration store buffer state. */
    void beginIteration();

    /**
     * Issue a load for LDFG entry seq.
     *
     * @param seq LDFG (program-order) index of the load
     * @param addr effective address
     * @param op load opcode (width/signedness)
     * @param ready_cycle cycle the address operand is available
     */
    LoadResult load(unsigned seq, uint32_t addr, riscv::Op op,
                    uint64_t ready_cycle);

    /**
     * Read the program-order-correct value a load at seq would see
     * (memory patched with older buffered stores) without modeling
     * timing or consuming a port. Used for the members of a
     * vectorized load group: the leader pays for the wide access.
     */
    uint32_t peek(unsigned seq, uint32_t addr, riscv::Op op) const;

    /**
     * Buffer a store for in-order commit at the end of the iteration.
     *
     * @param ready_cycle cycle both address and data are available
     */
    void store(unsigned seq, uint32_t addr, uint32_t value, riscv::Op op,
               uint64_t ready_cycle);

    /**
     * Commit all buffered stores to memory in program order.
     * @return the cycle the last store committed.
     */
    uint64_t commitStores();

    /** Per-entry average memory access time (feeds DFG node weights). */
    double entryAmat(unsigned seq) const;

    /** Average over all entries. */
    double overallAmat() const;

    uint64_t loads() const { return loads_.value(); }
    uint64_t stores() const { return stores_.value(); }
    uint64_t forwards() const { return forwards_.value(); }
    uint64_t invalidations() const { return invalidations_.value(); }
    unsigned numPorts() const { return ports_.size(); }

    void resetStats();

  private:
    /** Read a value of the op's width from memory. */
    uint32_t readMem(uint32_t addr, riscv::Op op) const;

    /** Write a value of the op's width to memory. */
    void writeMem(uint32_t addr, uint32_t value, riscv::Op op);

    struct PendingStore
    {
        unsigned seq;
        uint32_t addr;
        uint32_t value;
        riscv::Op op;
        uint64_t ready_cycle;
    };

    MainMemory &mem_;
    MemHierarchy &hierarchy_;
    PortPool &ports_;
    std::vector<PendingStore> store_buffer_;
    /**
     * addr -> indices into store_buffer_ in buffer (push) order, so
     * forwarding finds the newest matching store with one hash probe
     * instead of walking every buffered store per load.
     */
    std::unordered_map<uint32_t, std::vector<uint32_t>> store_index_;
    /** Tight [min, max] byte range covered by buffered stores; lets
     *  peek() skip the patch scan when the load cannot overlap. */
    uint32_t store_lo_ = UINT32_MAX;
    uint32_t store_hi_ = 0;
    /** Per-entry latency averages indexed by LDFG seq (dense, small). */
    std::vector<Average> entry_amat_;

    Average &amatFor(unsigned seq);

    Counter loads_{"loads"};
    Counter stores_{"stores"};
    Counter forwards_{"forwards"};
    Counter invalidations_{"invalidations"};
};

} // namespace mesa::mem

#endif // MESA_MEM_LSQ_HH
