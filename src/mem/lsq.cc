#include "mem/lsq.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/trace.hh"

namespace mesa::mem
{

using riscv::Op;

PortPool::PortPool(unsigned num_ports) : pool_(num_ports)
{
    if (num_ports == 0)
        fatal("PortPool: need at least one memory port");
}

uint64_t
PortPool::acquire(uint64_t request_cycle)
{
    // First cycle at or after the request with a free port; each
    // access occupies its port for one cycle.
    const uint64_t booked = pool_.acquire(request_cycle);
    wait_cycles_ += booked - request_cycle;
    return booked;
}

LoadStoreUnit::LoadStoreUnit(MainMemory &mem, MemHierarchy &hierarchy,
                             PortPool &ports)
    : mem_(mem), hierarchy_(hierarchy), ports_(ports)
{
}

void
LoadStoreUnit::beginIteration()
{
    store_buffer_.clear();
    store_index_.clear();
    store_lo_ = UINT32_MAX;
    store_hi_ = 0;
}

Average &
LoadStoreUnit::amatFor(unsigned seq)
{
    if (seq >= entry_amat_.size())
        entry_amat_.resize(size_t(seq) + 1);
    return entry_amat_[seq];
}

uint32_t
LoadStoreUnit::readMem(uint32_t addr, Op op) const
{
    switch (op) {
      case Op::Lb:
        return uint32_t(int32_t(int8_t(mem_.read8(addr))));
      case Op::Lbu:
        return mem_.read8(addr);
      case Op::Lh:
        return uint32_t(int32_t(int16_t(mem_.read16(addr))));
      case Op::Lhu:
        return mem_.read16(addr);
      case Op::Lw:
      case Op::Flw:
        return mem_.read32(addr);
      default:
        panic("LoadStoreUnit::readMem: not a load op: ",
              riscv::opName(op));
    }
}

void
LoadStoreUnit::writeMem(uint32_t addr, uint32_t value, Op op)
{
    switch (op) {
      case Op::Sb:
        mem_.write8(addr, uint8_t(value));
        break;
      case Op::Sh:
        mem_.write16(addr, uint16_t(value));
        break;
      case Op::Sw:
      case Op::Fsw:
        mem_.write32(addr, value);
        break;
      default:
        panic("LoadStoreUnit::writeMem: not a store op: ",
              riscv::opName(op));
    }
}

LoadResult
LoadStoreUnit::load(unsigned seq, uint32_t addr, Op op,
                    uint64_t ready_cycle)
{
    ++loads_;
    LoadResult result;

    // Store->load forwarding: find the youngest older buffered store
    // (program order, i.e., lower seq) with an exact address match.
    // The index holds buffer positions in push order, so the backward
    // scan returns exactly what a full buffer walk taking the last
    // match would.
    const PendingStore *hit = nullptr;
    if (auto idx = store_index_.find(addr); idx != store_index_.end()) {
        const auto &positions = idx->second;
        for (auto it = positions.rbegin(); it != positions.rend(); ++it) {
            if (store_buffer_[*it].seq < seq) {
                hit = &store_buffer_[*it];
                break;
            }
        }
    }

    if (hit && (op == Op::Lw || op == Op::Flw) &&
        (hit->op == Op::Sw || hit->op == Op::Fsw)) {
        ++forwards_;
        result.value = hit->value;
        result.forwarded = true;
        // If the load's address was ready before the store's data, the
        // load speculatively issued and is invalidated on the match;
        // the forwarded value arrives one broadcast cycle after the
        // store data is ready (paper Fig. 5).
        if (ready_cycle < hit->ready_cycle)
            ++invalidations_, result.invalidated = true;
        result.done_cycle = std::max(ready_cycle, hit->ready_cycle) + 1;
        amatFor(seq).sample(double(result.done_cycle - ready_cycle));
        return result;
    }

    if (hit) {
        // Partial-width overlap: conservatively wait for the store to
        // be ready, then access memory through the hierarchy. The
        // store has not committed yet, so read its effect by applying
        // buffered stores up to this seq into a temporary view.
        // Simplification: commit ordering guarantees the store buffer
        // is drained at iteration end; mid-iteration we synthesize the
        // value from memory patched with older buffered stores.
        ++invalidations_;
        result.invalidated = true;
        ready_cycle = std::max(ready_cycle, hit->ready_cycle);
    }

    const uint32_t value = peek(seq, addr, op);
    const uint64_t issue = ports_.acquire(ready_cycle);
    const uint32_t latency = hierarchy_.accessLatency(addr, false);
    if (latency >= hierarchy_.dramLatency() && Tracer::active()) {
        // DRAM-bound access on the accelerator's local timeline.
        Tracer::global().instantLocal(
            "mem", "accel-dram", issue,
            {{"addr", uint64_t(addr)}, {"latency", uint64_t(latency)}});
    }
    result.value = value;
    result.done_cycle = issue + latency;
    amatFor(seq).sample(double(result.done_cycle - ready_cycle));
    return result;
}

uint32_t
LoadStoreUnit::peek(unsigned seq, uint32_t addr, Op op) const
{
    // Memory patched with older buffered stores, so program-order
    // semantics hold even though commit is deferred to iteration end.
    const uint32_t base = addr & ~3u;
    // Range reject: when the buffered-store footprint cannot reach
    // [base, base+8) no store can match, so the patch scan (linear in
    // the buffer, once per peeked load) is skipped entirely.
    if (store_buffer_.empty() || store_hi_ < base ||
        store_lo_ >= base + 8)
        return readMem(addr, op);
    bool patched = false;
    for (const auto &st : store_buffer_) {
        if (st.seq < seq && st.addr >= base && st.addr < base + 8) {
            patched = true;
            break;
        }
    }
    if (!patched)
        return readMem(addr, op);

    // Apply older stores byte-by-byte onto a scratch copy of the two
    // words covering any supported access at addr.
    uint8_t bytes[8];
    for (int i = 0; i < 8; ++i)
        bytes[i] = mem_.read8(base + uint32_t(i));
    for (const auto &st : store_buffer_) {
        if (st.seq >= seq)
            continue;
        const unsigned width =
            (st.op == Op::Sb) ? 1 : (st.op == Op::Sh) ? 2 : 4;
        for (unsigned b = 0; b < width; ++b) {
            const uint32_t a = st.addr + b;
            if (a >= base && a < base + 8)
                bytes[a - base] = uint8_t(st.value >> (8 * b));
        }
    }
    const unsigned off = addr - base;
    uint32_t raw = 0;
    for (int i = 3; i >= 0; --i)
        raw = (raw << 8) | bytes[off + unsigned(i)];
    switch (op) {
      case Op::Lb: return uint32_t(int32_t(int8_t(raw)));
      case Op::Lbu: return raw & 0xFF;
      case Op::Lh: return uint32_t(int32_t(int16_t(raw)));
      case Op::Lhu: return raw & 0xFFFF;
      default: return raw;
    }
}

void
LoadStoreUnit::store(unsigned seq, uint32_t addr, uint32_t value, Op op,
                     uint64_t ready_cycle)
{
    ++stores_;
    store_index_[addr].push_back(uint32_t(store_buffer_.size()));
    store_buffer_.push_back({seq, addr, value, op, ready_cycle});
    const unsigned width =
        (op == Op::Sb) ? 1 : (op == Op::Sh) ? 2 : 4;
    store_lo_ = std::min(store_lo_, addr);
    store_hi_ = std::max(store_hi_, addr + width - 1);
    amatFor(seq).sample(1.0);
}

uint64_t
LoadStoreUnit::commitStores()
{
    // Stores commit in program order; each commit takes a port cycle
    // and writes through the hierarchy.
    std::sort(store_buffer_.begin(), store_buffer_.end(),
              [](const PendingStore &a, const PendingStore &b) {
                  return a.seq < b.seq;
              });
    uint64_t last = 0;
    uint64_t prev_commit = 0;
    for (const auto &st : store_buffer_) {
        const uint64_t request = std::max(st.ready_cycle, prev_commit);
        const uint64_t issue = ports_.acquire(request);
        const uint32_t latency = hierarchy_.accessLatency(st.addr, true);
        writeMem(st.addr, st.value, st.op);
        prev_commit = issue + 1; // in-order commit, one per cycle min
        last = std::max(last, issue + latency);
    }
    store_buffer_.clear();
    store_index_.clear();
    store_lo_ = UINT32_MAX;
    store_hi_ = 0;
    return last;
}

double
LoadStoreUnit::entryAmat(unsigned seq) const
{
    // An entry that never sampled reports 0.0, exactly as the absent
    // key did in the former keyed map.
    return seq < entry_amat_.size() ? entry_amat_[seq].mean() : 0.0;
}

double
LoadStoreUnit::overallAmat() const
{
    double sum = 0.0;
    uint64_t n = 0;
    for (const auto &avg : entry_amat_) {
        sum += avg.sum();
        n += avg.count();
    }
    return n ? sum / double(n) : 0.0;
}

void
LoadStoreUnit::resetStats()
{
    loads_.reset();
    stores_.reset();
    forwards_.reset();
    invalidations_.reset();
    entry_amat_.clear();
}

} // namespace mesa::mem
