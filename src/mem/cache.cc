#include "mem/cache.hh"

#include <bit>

#include "util/logging.hh"

namespace mesa::mem
{

Cache::Cache(std::string name, const CacheParams &params)
    : name_(std::move(name)), params_(params)
{
    if (params_.line_bytes == 0 ||
        (params_.line_bytes & (params_.line_bytes - 1)) != 0) {
        fatal("cache ", name_, ": line size must be a power of two");
    }
    if (params_.assoc == 0)
        fatal("cache ", name_, ": associativity must be nonzero");
    const size_t lines = params_.size_bytes / params_.line_bytes;
    if (lines == 0 || lines % params_.assoc != 0)
        fatal("cache ", name_, ": size/assoc/line geometry invalid");
    num_sets_ = lines / params_.assoc;
    line_shift_ = std::countr_zero(params_.line_bytes);
    sets_.assign(num_sets_, std::vector<Line>(params_.assoc));
}

size_t
Cache::setIndex(uint32_t addr) const
{
    return (addr >> line_shift_) % num_sets_;
}

uint32_t
Cache::tagOf(uint32_t addr) const
{
    return (addr >> line_shift_) / uint32_t(num_sets_);
}

bool
Cache::access(uint32_t addr, bool write)
{
    auto &set = sets_[setIndex(addr)];
    const uint32_t tag = tagOf(addr);
    ++access_clock_;

    for (auto &line : set) {
        if (line.valid && line.tag == tag) {
            line.lru = access_clock_;
            line.dirty = line.dirty || write;
            ++hits_;
            return true;
        }
    }

    // Miss: allocate, evicting the LRU way.
    ++misses_;
    Line *victim = &set[0];
    for (auto &line : set) {
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lru < victim->lru)
            victim = &line;
    }
    if (victim->valid && victim->dirty)
        ++writebacks_;
    victim->valid = true;
    victim->dirty = write;
    victim->tag = tag;
    victim->lru = access_clock_;
    return false;
}

bool
Cache::probe(uint32_t addr) const
{
    const auto &set = sets_[setIndex(addr)];
    const uint32_t tag = tagOf(addr);
    for (const auto &line : set)
        if (line.valid && line.tag == tag)
            return true;
    return false;
}

void
Cache::flush()
{
    for (auto &set : sets_)
        for (auto &line : set)
            line = Line{};
}

MemHierarchy::MemHierarchy(const HierarchyParams &params)
    : params_(params), l1_("l1", params.l1), l2_("l2", params.l2)
{
}

MemHierarchy::MemHierarchy(const HierarchyParams &params, Cache *shared_l2)
    : params_(params), l1_("l1", params.l1), l2_("l2-unused", params.l2),
      shared_l2_(shared_l2)
{
}

uint32_t
MemHierarchy::accessLatency(uint32_t addr, bool write)
{
    Cache &level2 = l2();
    uint32_t latency = l1_.hitLatency();
    if (!l1_.access(addr, write)) {
        latency += level2.hitLatency();
        if (!level2.access(addr, write)) {
            latency += params_.dram_latency;
            ++dram_accesses_;
        }
        // A demand miss optionally triggers a next-line prefetch
        // (hides the latency of forward streaming accesses).
        if (params_.next_line_prefetch)
            prefetch(addr + uint32_t(params_.l1.line_bytes));
    }
    amat_.sample(latency);
    return latency;
}

void
MemHierarchy::registerStats(StatsRegistry &registry,
                            const std::string &prefix) const
{
    auto linkCache = [&](const Cache &c, const std::string &p) {
        registry.linkCounter(p + "hits", c.hitCounter());
        registry.linkCounter(p + "misses", c.missCounter());
        registry.linkCounter(p + "writebacks", c.writebackCounter());
    };
    linkCache(l1(), prefix + "l1.");
    linkCache(l2(), prefix + "l2.");
    registry.linkCounter(prefix + "dram_accesses", dram_accesses_);
    registry.linkAverage(prefix + "amat", amat_);
}

void
MemHierarchy::prefetch(uint32_t addr)
{
    Cache &level2 = l2();
    if (!l1_.access(addr, false)) {
        if (!level2.access(addr, false))
            ++dram_accesses_;
    }
}

} // namespace mesa::mem
