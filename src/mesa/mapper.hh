/**
 * @file
 * MESA's data-driven instruction mapping algorithm (paper §3.3,
 * Algorithm 1): converts the LDFG to an SDFG by greedily assigning
 * each instruction, in program order, to the candidate PE that
 * locally minimizes its expected latency under the weighted-DFG
 * performance model. Candidates come from a fixed-size window
 * positioned at the higher-latency predecessor, filtered by the free
 * matrix F_free and the per-operation compatibility mask F_op.
 */

#ifndef MESA_MESA_MAPPER_HH
#define MESA_MESA_MAPPER_HH

#include <vector>

#include "accel/params.hh"
#include "dfg/latency.hh"
#include "dfg/ldfg.hh"
#include "dfg/sdfg.hh"
#include "interconnect/interconnect.hh"
#include "mesa/imap_fsm.hh"

namespace mesa::core
{

/** Mapper tunables. */
struct MapperParams
{
    /** Fixed candidate-matrix dimensions (32 entries, as in the
     *  paper's 4x8 hardware window; oriented tall so placements
     *  pack into column bands that tile horizontally). */
    int cand_rows = 4;
    int cand_cols = 4;

    /** Secondary-bus latency charged to unmapped instructions. */
    double fallback_bus_latency = 8.0;

    /**
     * Allow one full-grid rescan when the candidate window has no
     * valid position (hardware fallback pass before giving up).
     */
    bool allow_rescan = true;
};

/** Result of mapping one LDFG. */
struct MapResult
{
    dfg::Sdfg sdfg;

    /** Instructions that could not be placed (fallback bus). */
    std::vector<dfg::NodeId> unmapped;

    /** Model-predicted completion cycle per node after placement. */
    std::vector<double> completion;

    /** Model-predicted latency of one iteration. */
    double model_latency = 0.0;

    /** imap FSM cycles consumed by the mapping pass (Fig. 8). */
    uint64_t mapping_cycles = 0;

    /** Per-instruction imap stage records (timeline tracing, Fig. 8). */
    std::vector<ImapTraceEntry> imap_trace;

    bool fullyMapped() const { return unmapped.empty(); }
};

/** The hardware instruction mapper. */
class InstructionMapper
{
  public:
    InstructionMapper(const accel::AccelParams &accel,
                      const ic::Interconnect &interconnect,
                      const MapperParams &params = {});

    /**
     * Map every LDFG instruction to a PE (T2 Optimize). Uses the
     * LDFG's node/edge weights, so a graph refreshed with measured
     * latencies yields a data-driven remap.
     */
    MapResult map(const dfg::Ldfg &ldfg) const;

    const MapperParams &params() const { return params_; }

    /**
     * Exclude physical PEs from the free matrix (persistent faulty-PE
     * map, src/fault): subsequent map() calls place no node on them.
     * @param fold_rows when mapping on a virtual (time-multiplexed)
     *        grid, the physical row count the virtual rows fold onto;
     *        a virtual position is blocked when its folded physical
     *        PE is. 0 = positions are physical already.
     */
    void setBlockedPes(const std::vector<ic::Coord> &pes,
                       int fold_rows = 0);
    const std::vector<ic::Coord> &blockedPes() const
    {
        return blocked_;
    }

  private:
    /** Is this (possibly virtual) position on a blocked PE? */
    bool blocked(ic::Coord pos) const;
    /** Window anchor: position of the higher-latency predecessor. */
    ic::Coord anchor(const dfg::Ldfg &ldfg, const dfg::Sdfg &sdfg,
                     dfg::NodeId id,
                     const std::vector<double> &completion,
                     ic::Coord cursor) const;

    const accel::AccelParams &accel_;
    const ic::Interconnect &ic_;
    MapperParams params_;
    std::vector<ic::Coord> blocked_;
    int fold_rows_ = 0;
};

} // namespace mesa::core

#endif // MESA_MESA_MAPPER_HH
