#include "mesa/imap_fsm.hh"

#include <bit>

#include "util/trace.hh"

namespace mesa::core
{

const char *
imapStateName(ImapState state)
{
    switch (state) {
      case ImapState::Idle: return "idle";
      case ImapState::Fetch: return "fetch";
      case ImapState::Rename: return "rename";
      case ImapState::CandGen: return "cand-gen";
      case ImapState::Filter: return "filter";
      case ImapState::Reduce: return "reduce";
      case ImapState::Writeback: return "writeback";
      case ImapState::Done: return "done";
      default: return "???";
    }
}

uint32_t
ImapFsm::mapInstruction(unsigned candidates, unsigned rescans)
{
    ImapTraceEntry e;
    e.instruction = int(trace_.size());

    auto charge = [&](ImapState s, uint32_t cycles) {
        e.stage_cycles[size_t(s)] = cycles;
        e.total += cycles;
    };

    charge(ImapState::Fetch, 1);
    charge(ImapState::Rename, 1);
    charge(ImapState::CandGen, 1);
    charge(ImapState::Filter, 1);

    // Reduction: the latency of each candidate is computed in
    // parallel per row, then a comparator tree selects the minimum;
    // depth is log2 of the candidate count. Fallback rescans repeat
    // the pass over a wider window.
    const unsigned cand = candidates == 0 ? 1 : candidates;
    const uint32_t depth = uint32_t(std::bit_width(cand));
    charge(ImapState::Reduce, depth * (1 + rescans));

    charge(ImapState::Writeback, 1);

    total_cycles_ += e.total;
    trace_.push_back(e);
    return e.total;
}

void
ImapFsm::reset()
{
    total_cycles_ = 0;
    trace_.clear();
}

uint64_t
emitImapTrace(Tracer &tracer, const std::string &track,
              const std::vector<ImapTraceEntry> &trace,
              uint64_t base_cycle)
{
    uint64_t t = base_cycle;
    for (const auto &e : trace) {
        tracer.span(
            track, "imap i" + std::to_string(e.instruction), t, e.total,
            {{"reduce_cycles",
              uint64_t(e.stage_cycles[size_t(ImapState::Reduce)])},
             {"total_cycles", uint64_t(e.total)}});
        t += e.total;
    }
    return t;
}

} // namespace mesa::core
