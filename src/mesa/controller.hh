/**
 * @file
 * The MESA controller top (paper Fig. 7): monitors CPU execution for
 * acceleration opportunities (F1), translates qualified loop regions
 * to latency-weighted DFGs and maps them onto the spatial accelerator
 * (F2), and iteratively re-optimizes the configuration from runtime
 * performance counters (F3). runTransparent() gives the end-to-end
 * flow of paper §5.1: the CPU keeps executing while MESA encodes,
 * maps, and configures; control transfers at the next loop entry and
 * returns to the CPU (with architectural state) at loop exit.
 */

#ifndef MESA_MESA_CONTROLLER_HH
#define MESA_MESA_CONTROLLER_HH

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "absint/certificate.hh"
#include "accel/accelerator.hh"
#include "cpu/monitor.hh"
#include "cpu/system.hh"
#include "fault/params.hh"
#include "fault/quarantine.hh"
#include "mesa/config_builder.hh"
#include "mesa/config_cache.hh"
#include "mesa/mapper.hh"
#include "mesa/optimizer.hh"
#include "util/stats.hh"
#include "util/stats_registry.hh"

namespace mesa::core
{

/** Full configuration of a MESA-enabled system. */
struct MesaParams
{
    accel::AccelParams accel = accel::AccelParams::m128();
    MapperParams mapper;
    cpu::MonitorParams monitor;
    cpu::CoreParams host_core;        ///< CPU core MESA attaches to.
    mem::HierarchyParams cpu_mem;
    mem::HierarchyParams accel_mem;

    // Optimization switches.
    bool enable_tiling = true;
    bool enable_pipelining = true;
    bool enable_vectorization = true;
    bool enable_forwarding = true;
    bool enable_prefetch = true;
    bool iterative_optimization = true;

    /**
     * Extension: allow loops larger than the PE count by folding the
     * mapping onto a virtual grid (up to max_time_multiplex
     * instructions share a PE). Off by default — the paper's MESA is
     * purely spatial and rejects such loops at C1.
     */
    bool enable_time_multiplexing = false;
    int max_time_multiplex = 4;

    /**
     * Extension: runtime loop unrolling for small bodies (the paper
     * leaves unrolling to AOT compilers). The accelerated loop covers
     * unroll_factor original iterations per pass; the CPU runs the
     * tail. Off by default.
     */
    bool enable_unrolling = false;
    int unroll_factor = 4;

    /**
     * Extension: double-buffered configuration plane. The next
     * bitstream streams into the shadow plane while the accelerator
     * keeps executing; a reconfiguration then costs a single-cycle
     * swap instead of stalling for the bitstream write.
     */
    bool shadow_config = false;

    /**
     * Run the static verifier (src/verify) over every freshly
     * prepared region: mapping legality plus config round-trip
     * against the source LDFG. Error-severity findings veto the
     * offload (the region falls back to CPU execution and is
     * blacklisted like any structural failure); findings land under
     * "mesa.verify.*" in the attached stats registry. Off by default
     * — the real controller would bake these invariants into the
     * pipeline, the knob models a self-checking deployment.
     */
    bool verify_before_offload = false;

    /** Iterations profiled between optimization attempts. */
    uint64_t profile_epoch_iterations = 128;
    int max_reconfigs = 2;

    /** Mapping failures tolerated before the region is abandoned. */
    double max_unmapped_frac = 0.25;

    /** Clock (GHz), for reporting config latency in wall time. */
    double clock_ghz = 2.0;

    uint64_t max_steps = 200'000'000;

    /**
     * Fault tolerance (the mesa_fault subsystem): config CRC gate,
     * pre-offload checkpoint + rollback, watchdog budgets, optional
     * golden-model checked mode, and quarantine of faulting regions
     * and defective PEs. Off by default.
     */
    fault::FaultToleranceParams fault;
};

/**
 * Why an offload was abandoned and the region executed on the CPU.
 * One taxonomy across every bail-out path: the verify gate, the fault
 * detection pipeline, the watchdog, structural mapping failures, and
 * the quarantine blacklist.
 */
enum class FallbackReason
{
    None = 0,       ///< The offload ran (or no offload was attempted).
    VerifyDirty,    ///< Static verifier vetoed the prepared config.
    FaultDetected,  ///< CRC mismatch or golden-model divergence.
    Watchdog,       ///< Cycle budget tripped; rolled back.
    Structural,     ///< Encode/map failed (unsupported region).
    Quarantined,    ///< Region serving an exponential-backoff sentence.
};

constexpr int FallbackReasonCount = 6;

const char *fallbackReasonName(FallbackReason reason);

/**
 * Outcome of one persistent translation-store probe or store (see
 * mesa/translation_store.hh). The controller folds these into the
 * "mesa.cache.persist_*" counters when a store is enabled.
 */
enum class PersistOutcome
{
    Disabled = 0,  ///< No cache directory configured.
    Hit,           ///< Entry deserialized and integrity-checked.
    Miss,          ///< No entry on disk for the key.
    Corrupt,       ///< Truncated file or CRC mismatch; ignored.
    VersionSkew,   ///< Other format version; ignored.
    KeyMismatch,   ///< File's embedded key differs; ignored.
    Stored,        ///< Entry written to disk.
    StoreFailed,   ///< Write failed (permissions, disk full).
};

/**
 * A fully translated region: the encoded LDFG (T1), its placement
 * (T2), and the built accelerator configuration (T3), plus the
 * options and bookkeeping the controller derived along the way. A
 * pure function of (body, parallel hint, region bounds, MESA params,
 * blocked-PE set) — which is what makes it safe to memoize across
 * processes in the persistent translation store.
 */
struct PreparedRegion
{
    dfg::Ldfg ldfg;
    MapResult map;
    accel::AcceleratorConfig config;
    ConfigOptions options;
    uint64_t encode_cycles = 0;
    int max_tiles = 1; ///< Grid-supported tile factor ceiling.
    uint32_t body_tag = 0; ///< Config-cache key guard (body CRC).
    /** Abstract-interpretation certificate for the (non-unrolled)
     *  body, when fault.certificate_gating is on. Shared with the
     *  config cache so re-encountered regions skip the fixpoint. */
    std::shared_ptr<const absint::BodyCertificate> cert;
};

/** Per-offload statistics. */
struct OffloadStats
{
    uint32_t region_start = 0;
    uint32_t region_end = 0;

    uint64_t encode_cycles = 0;   ///< LDFG build (rename) time.
    uint64_t mapping_cycles = 0;  ///< imap FSM time (Fig. 8).
    uint64_t config_cycles = 0;   ///< Bitstream streaming time.
    uint64_t totalConfigCycles() const
    {
        return encode_cycles + mapping_cycles + config_cycles;
    }

    bool config_cache_hit = false;
    int tile_factor = 1;
    bool pipelined = false;
    size_t unmapped = 0;
    double model_latency = 0.0;   ///< Modeled cycles per iteration.

    uint64_t cpu_overlap_iterations = 0; ///< Run on CPU during config.
    int reconfigurations = 0;
    uint64_t reconfig_cycles = 0;

    /** Set when the region was served by a shared offload arbiter:
     *  cycles spent queued behind other tenants, and the number of
     *  times the scheduler (re)configured a partition for it. */
    uint64_t sched_wait_cycles = 0;
    uint64_t sched_switches = 0;

    uint64_t accel_cycles = 0;
    uint64_t accel_iterations = 0;
    accel::AccelRunResult accel; ///< Aggregated accelerator counters.

    /**
     * Device-cycle attribution for this offload, captured from the
     * attached profile (zero when none is attached or the offload was
     * served by an arbiter). When captured, the three buckets sum to
     * accel_cycles exactly.
     */
    uint64_t prof_compute_cycles = 0;
    uint64_t prof_noc_stall_cycles = 0;
    uint64_t prof_mem_stall_cycles = 0;

    /**
     * Certificate gating (fault.certificate_gating): the offload's
     * memory footprint was statically proven inside the resident
     * region for this entry state, the checked-mode memory-snapshot
     * comparison was skipped on that proof, and the watchdog ran
     * under the certificate-derived budget (0 = no finite trip proof).
     */
    bool certified = false;
    bool snapshot_skipped = false;
    uint64_t cert_watchdog_budget = 0;
    /** The iteration watchdog fired: the fabric consumed the proven
     *  trip count without reaching the loop exit — impossible for a
     *  clean run, so the offload was rolled back as faulty. */
    bool trip_watchdog = false;

    /** Why this region fell back to the CPU (None = it did not). */
    FallbackReason fallback = FallbackReason::None;
    /** Instructions the CPU re-executed after a rollback (or executed
     *  in place of a quarantined offload). */
    uint64_t cpu_reexec_instructions = 0;
};

/** One tenant's offload request, as routed to an external arbiter. */
struct OffloadRequest
{
    int tenant = 0;
    int priority = 0;
    std::vector<riscv::Instruction> body;
    riscv::ArchState *state = nullptr; ///< Live CPU state to hand off.
    bool parallel_hint = false;
    uint64_t max_iterations = ~uint64_t(0);
};

/**
 * A shared accelerator arbiter (the mesa_sched subsystem implements
 * this). When one is attached to a controller, qualified regions are
 * enqueued with the arbiter — which may time-slice them against other
 * tenants' pending requests on a spatially partitioned array —
 * instead of running inline on the controller's private accelerator.
 */
class OffloadArbiter
{
  public:
    virtual ~OffloadArbiter() = default;

    /**
     * Enqueue the request and drive the shared device until this
     * tenant's region completes (other pending tenants may progress
     * too). nullopt if the region cannot be mapped on a partition.
     */
    virtual std::optional<OffloadStats>
    serve(const OffloadRequest &request) = 0;
};

/** End-to-end outcome of a transparent run. */
struct TransparentRunResult
{
    uint64_t total_cycles = 0; ///< CPU + reconfig + accelerator.
    uint64_t cpu_cycles = 0;
    uint64_t cpu_instructions = 0;
    uint64_t accel_cycles = 0;
    cpu::RunResult cpu; ///< Full CPU-side stats (energy model input).
    std::vector<OffloadStats> offloads;
    std::vector<cpu::MonitorDecision> rejections;
    riscv::ArchState final_state;
    bool halted = false;

    uint64_t
    acceleratedIterations() const
    {
        uint64_t n = 0;
        for (const auto &o : offloads)
            n += o.accel_iterations;
        return n;
    }

    /** Flatten the run into a dumpable gem5-style stat group. */
    StatGroup toStats(const std::string &name = "mesa") const;

    /**
     * Register every run statistic into a stats registry under
     * @p prefix (e.g. "run."): the single flattening walk that
     * toStats, --stats-json, and tests all share.
     */
    void registerInto(StatsRegistry &registry,
                      const std::string &prefix = "") const;
};

/** The MESA hardware controller. */
class MesaController
{
  public:
    MesaController(const MesaParams &params, mem::MainMemory &memory);

    /**
     * Execute a program transparently: run on the host CPU model,
     * monitor for loops, offload qualified regions to the spatial
     * accelerator, resume the CPU at loop exit. The program must halt
     * via ecall/ebreak.
     *
     * @param parallel_hint the region's loop is OpenMP-annotated
     *        (omp parallel / omp simd), enabling tiling/pipelining
     */
    TransparentRunResult runTransparent(const riscv::Program &program,
                                        const cpu::ThreadInit &init,
                                        bool parallel_hint = false);

    /**
     * Lower-level entry: encode, map, configure, and run an already-
     * extracted loop body from the given architectural state. Used by
     * tests, benches, and the examples.
     *
     * @return stats, or nullopt if the body cannot be encoded/mapped
     */
    std::optional<OffloadStats> offloadLoop(
        const std::vector<riscv::Instruction> &body,
        riscv::ArchState &state, bool parallel_hint,
        uint64_t max_iterations = ~uint64_t(0));

    /**
     * Translation-only entry: probe the persistent store and run the
     * encode/map/config pipeline (or a warm load) for an extracted
     * body, without configuring or running the fabric. Lets benches
     * time cold-vs-warm translation in isolation.
     *
     * @return true if the body translated (or warm-loaded)
     */
    bool translateOnly(const std::vector<riscv::Instruction> &body,
                       bool parallel_hint);

    accel::Accelerator &accelerator() { return accel_; }
    const MesaParams &params() const { return params_; }
    ConfigCache &configCache() { return config_cache_; }

    /**
     * Re-point the controller (and its accelerator) at a different
     * main memory. The service layer's enabling decoupling: one
     * controller per fabric backend persists across jobs — keeping
     * its config cache warm, its quarantine ledger, retired-PE map,
     * and stats — while every job binds its own fresh memory image.
     * Only call between runs (never with an offload in flight).
     */
    void
    rebindMemory(mem::MainMemory &memory)
    {
        memory_ = &memory;
        accel_.rebindMemory(memory);
    }

    /**
     * Campaign hook (fault mode): called on the prepared configuration
     * right before the CRC gate, modeling an SEU in the stored
     * bitstream. The hook mutates the config in place; the controller
     * must then catch the corruption via the CRC re-derivation.
     */
    void
    setConfigCorruptor(
        std::function<void(accel::AcceleratorConfig &)> hook)
    {
        config_corruptor_ = std::move(hook);
    }

    /** PEs retired by the self test (fed into the mapper). */
    const fault::FaultyPeMap &faultyPes() const { return faulty_pes_; }

    /** Region backoff state (fault mode). */
    const fault::RegionQuarantine &quarantine() const
    {
        return quarantine_;
    }

    /**
     * Attach a stats registry: the controller registers its live
     * counters (phase cycles, cache hits, epochs, reconfigs,
     * optimizer outcomes) under "mesa.*"/"accel.*" and keeps them
     * current while running. Optional; pass nullptr to detach. The
     * registry must outlive the controller's runs.
     *
     * @param snapshot_iterations record a registry snapshot every
     *        N accelerated iterations (0 disables; epochs still
     *        bound the granularity, see profile_epoch_iterations)
     */
    void attachStats(StatsRegistry *registry,
                     uint64_t snapshot_iterations = 0);

    /**
     * Attach a cycle-attribution profile (prof/): forwards to the
     * private accelerator and makes every inline offload capture its
     * compute / NoC-stall / mem-stall split into OffloadStats. Pass
     * nullptr to detach; detached profiling costs nothing. The
     * profile must outlive the controller's runs.
     */
    void attachProfile(prof::AccelProfile *profile);
    prof::AccelProfile *profile() const { return profile_; }

    /**
     * Attach a shared offload arbiter: qualified regions enqueue with
     * it (tagged with this controller's tenant id and priority)
     * instead of running inline. Pass nullptr to detach and return to
     * single-tenant inline execution. The arbiter must outlive the
     * controller's runs.
     */
    void
    setOffloadArbiter(OffloadArbiter *arbiter, int tenant = 0,
                      int priority = 0)
    {
        arbiter_ = arbiter;
        tenant_id_ = tenant;
        tenant_priority_ = priority;
    }
    OffloadArbiter *offloadArbiter() const { return arbiter_; }

    /** Convert accelerator cycles to nanoseconds at the MESA clock. */
    double
    cyclesToNs(uint64_t cycles) const
    {
        return double(cycles) / params_.clock_ghz;
    }

  private:
    /** Encode+map+build for a body; nullopt on failure. */
    using Prepared = PreparedRegion;
    std::optional<Prepared> prepare(
        const std::vector<riscv::Instruction> &body, bool parallel_hint,
        uint32_t region_start, uint32_t region_end);

    /**
     * Run the verify-before-offload gate over a prepared region
     * (passes 2+3 of the static verifier) and feed the verify.*
     * counters. @return true when the region may be offloaded.
     */
    bool verifyPrepared(const Prepared &prep);

    /** Run the configured region with iterative optimization.
     *  @param cycle_budget per-offload fabric watchdog budget (0 =
     *         only the device-level cap applies); on a trip the epoch
     *         loop stops and os.accel.watchdog_tripped is set. */
    void runWithOptimization(Prepared &prep, riscv::ArchState &state,
                             uint64_t max_iterations, OffloadStats &os,
                             uint64_t cycle_budget = 0);

    /**
     * Fault-tolerant offload dispatch: applies the CRC gate, captures
     * a checkpoint, runs with the watchdog budget, optionally checks
     * the result against the golden model, and on any detected fault
     * rolls back + re-executes on the CPU and updates the quarantine
     * state. Plain runWithOptimization when fault mode is off.
     */
    void runGuarded(Prepared &prep, riscv::ArchState &state,
                    uint64_t max_iterations, OffloadStats &os,
                    const std::vector<riscv::Instruction> &body = {},
                    bool parallel_hint = false);

    /**
     * Drain-and-relocate (fault.migrate_on_fault): after a watchdog
     * trip retired PEs, re-translate @p body around the blocked set
     * and swap the relocated placement into @p prep, charging the
     * re-translation to @p os and the mesa.migrate.* counters.
     * @return true when a relocated placement was installed (the
     *         caller re-runs from the restored checkpoint)
     */
    bool relocatePrepared(Prepared &prep,
                          const std::vector<riscv::Instruction> &body,
                          bool parallel_hint, OffloadStats &os);

    /** Execute [region_start, region_end) on the functional emulator
     *  from @p state (the recovery path after a rollback). */
    void cpuReexecute(riscv::ArchState &state, OffloadStats &os);

    /**
     * Capture the attached profile's device-cycle attribution before
     * a guarded run (profileMark) and store the growth into the
     * offload's prof_* fields afterwards (profileCapture). No-ops
     * without an attached profile.
     */
    std::array<uint64_t, 3> profileMark() const;
    void profileCapture(const std::array<uint64_t, 3> &mark,
                        OffloadStats &os) const;

    /** Post-detection bookkeeping: fallback stats, quarantine strike,
     *  cache invalidation, and the self test -> PE retirement path. */
    void onFaultDetected(OffloadStats &os);

    /** Refresh the live quarantine/retirement gauges
     *  (mesa.fault.quarantined_regions, mesa.fault.retired_pes). */
    void updateFaultGauges();

    /** Bump the mesa.fallback.* counter for a reason. */
    void bumpFallback(FallbackReason reason);

    /**
     * Emit the controller-phase timeline spans (encode, per-
     * instruction imap, config streaming) for a prepared offload,
     * starting at absolute cycle @p t0. Also feeds the live phase
     * counters. Returns t0 + totalConfigCycles().
     */
    uint64_t tracePreparePhases(const Prepared &prep,
                                const OffloadStats &os, uint64_t t0);

    /** Live stats registered into the attached registry. */
    struct LiveStats
    {
        Counter *offloads = nullptr;
        Counter *rejections = nullptr;
        Counter *encode_cycles = nullptr;
        Counter *mapping_cycles = nullptr;
        Counter *config_cycles = nullptr;
        Counter *imap_instructions = nullptr;
        Counter *reconfig_count = nullptr;
        Counter *reconfig_cycles = nullptr;
        Counter *optimizer_attempts = nullptr;
        Counter *optimizer_remaps = nullptr;
        Counter *epochs = nullptr;
        Counter *accel_cycles = nullptr;
        Counter *accel_iterations = nullptr;
        Histogram *epoch_cycles = nullptr;
        Average *epoch_cycles_per_iter = nullptr;
        Counter *verify_checked = nullptr;
        Counter *verify_violations = nullptr;
        Counter *verify_fallbacks = nullptr;
        /** One fallback counter per FallbackReason (index 0 unused). */
        Counter *fallbacks[FallbackReasonCount] = {};
        Counter *fault_crc_failures = nullptr;
        Counter *fault_watchdog_trips = nullptr;
        Counter *fault_checked_runs = nullptr;
        Counter *fault_mismatches = nullptr;
        Counter *fault_rollbacks = nullptr;
        Counter *fault_cpu_reexec = nullptr;
        Counter *fault_self_tests = nullptr;
        Counter *fault_quarantined_pes = nullptr;
        /** Drain-and-relocate path (fault.migrate_on_fault). */
        Counter *migrate_relocations = nullptr;
        Counter *migrate_relocation_success = nullptr;
        Counter *migrate_translate_cycles = nullptr;
        Counter *migrate_stream_cycles = nullptr;
        Counter *absint_certified = nullptr;
        Counter *absint_snapshot_skips = nullptr;
        Counter *absint_budget_tightened = nullptr;
        Counter *absint_trip_watchdogs = nullptr;
        /** Persistent translation store (registered only when a cache
         *  directory is configured, so stats output without one is
         *  byte-identical to a build without the store). */
        Counter *persist_hits = nullptr;
        Counter *persist_misses = nullptr;
        Counter *persist_corrupt = nullptr;
        Counter *persist_version_skew = nullptr;
        Counter *persist_key_mismatch = nullptr;
        Counter *persist_stores = nullptr;
        Counter *persist_store_failures = nullptr;
    };

    /** Fold a translation-store outcome into the persist counters. */
    void bumpPersist(PersistOutcome outcome);

    /** Per-rule verify counters, created on first finding. */
    Counter &verifyRuleCounter(const std::string &rule);

    MesaParams params_;
    mem::MainMemory *memory_; ///< Rebindable (see rebindMemory).
    accel::Accelerator accel_;
    InstructionMapper mapper_;
    ConfigBlock config_block_;
    ConfigCache config_cache_;

    StatsRegistry *stats_ = nullptr;
    prof::AccelProfile *profile_ = nullptr;
    LiveStats live_;
    std::map<std::string, Counter *> verify_rule_counters_;
    uint64_t snapshot_iterations_ = 0;
    uint64_t snapshot_accum_ = 0; ///< Iterations since last snapshot.

    OffloadArbiter *arbiter_ = nullptr;
    int tenant_id_ = 0;
    int tenant_priority_ = 0;

    /** Fingerprint of every prepare()-relevant parameter, part of the
     *  persistent translation-store key (computed once at build). */
    uint32_t params_crc_ = 0;

    // ----- fault tolerance state -----
    fault::RegionQuarantine quarantine_;
    fault::FaultyPeMap faulty_pes_;
    std::function<void(accel::AcceleratorConfig &)> config_corruptor_;
    /** Why the most recent prepare() returned nullopt. */
    FallbackReason last_prepare_fallback_ = FallbackReason::Structural;
};

} // namespace mesa::core

#endif // MESA_MESA_CONTROLLER_HH
