#include "mesa/controller.hh"

#include <algorithm>

#include "dfg/unroll.hh"
#include "fault/checkpoint.hh"
#include "mesa/translation_store.hh"
#include "util/crc32.hh"
#include "util/debug.hh"
#include "interconnect/folded.hh"
#include "util/logging.hh"
#include "util/trace.hh"
#include "verify/verifier.hh"

namespace mesa::core
{

using accel::AccelRunResult;
using cpu::RegionMonitor;
using dfg::Ldfg;
using riscv::Instruction;
using riscv::TraceEntry;

namespace
{

/**
 * Config-cache key guard: a CRC over the region body's addresses and
 * instruction encodings. Two different programs loaded at the same
 * base address (routine on service backends, where every kernel
 * assembles to the same base) collide on the loop-head pc; the tag
 * keeps a cached config from being served for the wrong code.
 */
uint32_t
bodyTag(const std::vector<Instruction> &body)
{
    Crc32 crc;
    for (const Instruction &inst : body) {
        crc.add32(inst.pc);
        crc.add32(inst.raw);
    }
    return crc.value();
}

} // namespace

const char *
fallbackReasonName(FallbackReason reason)
{
    switch (reason) {
      case FallbackReason::None: return "none";
      case FallbackReason::VerifyDirty: return "verify_dirty";
      case FallbackReason::FaultDetected: return "fault_detected";
      case FallbackReason::Watchdog: return "watchdog";
      case FallbackReason::Structural: return "structural";
      case FallbackReason::Quarantined: return "quarantined";
    }
    return "?";
}

void
TransparentRunResult::registerInto(StatsRegistry &registry,
                                   const std::string &prefix) const
{
    auto set = [&](const std::string &key, double v) {
        registry.scalar(prefix + key, v);
    };
    set("total_cycles", double(total_cycles));
    set("cpu.cycles", double(cpu_cycles));
    set("cpu.instructions", double(cpu_instructions));
    set("cpu.mispredicts", double(cpu.mispredicts));
    set("cpu.dram_accesses", double(cpu.dram_accesses));
    set("accel.cycles", double(accel_cycles));
    set("offloads", double(offloads.size()));
    set("rejections", double(rejections.size()));
    set("accel.iterations", double(acceleratedIterations()));
    for (size_t i = 0; i < offloads.size(); ++i) {
        const auto &o = offloads[i];
        const std::string p =
            prefix + "offload" + std::to_string(i) + ".";
        registry.scalar(p + "config_cycles",
                        double(o.totalConfigCycles()));
        registry.scalar(p + "encode_cycles", double(o.encode_cycles));
        registry.scalar(p + "mapping_cycles", double(o.mapping_cycles));
        registry.scalar(p + "stream_cycles", double(o.config_cycles));
        registry.scalar(p + "cache_hit", o.config_cache_hit ? 1.0 : 0.0);
        registry.scalar(p + "cpu_overlap_iterations",
                        double(o.cpu_overlap_iterations));
        registry.scalar(p + "reconfig_cycles",
                        double(o.reconfig_cycles));
        registry.scalar(p + "reconfigurations",
                        double(o.reconfigurations));
        registry.scalar(p + "sched_wait_cycles",
                        double(o.sched_wait_cycles));
        registry.scalar(p + "sched_switches",
                        double(o.sched_switches));
        registry.scalar(p + "tiles", double(o.tile_factor));
        registry.scalar(p + "pipelined", o.pipelined ? 1.0 : 0.0);
        registry.scalar(p + "unmapped", double(o.unmapped));
        registry.scalar(p + "iterations", double(o.accel_iterations));
        registry.scalar(p + "cycles", double(o.accel_cycles));
        registry.scalar(p + "loads", double(o.accel.loads));
        registry.scalar(p + "stores", double(o.accel.stores));
        registry.scalar(p + "forwards",
                        double(o.accel.store_load_forwards));
        registry.scalar(p + "invalidations",
                        double(o.accel.load_invalidations));
        registry.scalar(p + "noc_transfers",
                        double(o.accel.noc_transfers));
        registry.scalar(p + "dram_accesses",
                        double(o.accel.dram_accesses));
        registry.scalar(p + "disabled_ops",
                        double(o.accel.disabled_ops));
        registry.scalar(p + "pes_used", double(o.accel.pes_used));
        registry.scalar(p + "model_latency", o.model_latency);
        registry.scalar(p + "fallback", double(int(o.fallback)));
        registry.scalar(p + "cpu_reexec_instructions",
                        double(o.cpu_reexec_instructions));
        registry.scalar(p + "watchdog_tripped",
                        o.accel.watchdog_tripped ? 1.0 : 0.0);
        registry.scalar(p + "faults_fired",
                        double(o.accel.faults_fired));
    }
}

StatGroup
TransparentRunResult::toStats(const std::string &name) const
{
    // One flattening walk, shared with --stats-json: register into a
    // scratch registry, then copy the scalar views into the group.
    StatsRegistry registry;
    registerInto(registry);
    StatGroup g(name);
    for (const auto &[key, value] : registry.flatValues())
        g.set(key, value);
    return g;
}

void
MesaController::attachStats(StatsRegistry *registry,
                            uint64_t snapshot_iterations)
{
    stats_ = registry;
    snapshot_iterations_ = snapshot_iterations;
    snapshot_accum_ = 0;
    live_ = LiveStats{};
    verify_rule_counters_.clear();
    if (!stats_)
        return;
    live_.offloads = &stats_->counter("mesa.offloads");
    live_.rejections = &stats_->counter("mesa.rejections");
    config_cache_.registerStats(*stats_, "mesa.config_cache.");
    live_.encode_cycles = &stats_->counter("mesa.phase.encode_cycles");
    live_.mapping_cycles = &stats_->counter("mesa.phase.mapping_cycles");
    live_.config_cycles = &stats_->counter("mesa.phase.config_cycles");
    live_.imap_instructions = &stats_->counter("mesa.imap.instructions");
    live_.reconfig_count = &stats_->counter("mesa.reconfig.count");
    live_.reconfig_cycles = &stats_->counter("mesa.reconfig.cycles");
    live_.optimizer_attempts =
        &stats_->counter("mesa.optimizer.attempts");
    live_.optimizer_remaps = &stats_->counter("mesa.optimizer.remaps");
    live_.epochs = &stats_->counter("mesa.epochs");
    live_.accel_cycles = &stats_->counter("accel.cycles");
    live_.accel_iterations = &stats_->counter("accel.iterations");
    live_.epoch_cycles =
        &stats_->histogram("mesa.epoch.cycles", 32, 256.0);
    live_.epoch_cycles_per_iter =
        &stats_->average("mesa.epoch.cycles_per_iter");
    if (params_.verify_before_offload) {
        live_.verify_checked =
            &stats_->counter("mesa.verify.configs_checked");
        live_.verify_violations =
            &stats_->counter("mesa.verify.violations");
        live_.verify_fallbacks =
            &stats_->counter("mesa.verify.fallbacks");
    }
    // Persistent translation-store counters exist only when a cache
    // directory is configured, so runs without one keep their stats
    // output byte-identical to builds without the store.
    if (TranslationStore::global().enabled()) {
        live_.persist_hits =
            &stats_->counter("mesa.cache.persist_hits");
        live_.persist_misses =
            &stats_->counter("mesa.cache.persist_misses");
        live_.persist_corrupt =
            &stats_->counter("mesa.cache.persist_corrupt");
        live_.persist_version_skew =
            &stats_->counter("mesa.cache.persist_version_skew");
        live_.persist_key_mismatch =
            &stats_->counter("mesa.cache.persist_key_mismatch");
        live_.persist_stores =
            &stats_->counter("mesa.cache.persist_stores");
        live_.persist_store_failures =
            &stats_->counter("mesa.cache.persist_store_failures");
    }
    // The unified fallback taxonomy is always registered: structural
    // and verify fallbacks happen in any mode.
    for (int r = 1; r < FallbackReasonCount; ++r)
        live_.fallbacks[r] = &stats_->counter(
            std::string("mesa.fallback.") +
            fallbackReasonName(FallbackReason(r)));
    if (params_.fault.enabled) {
        live_.fault_crc_failures =
            &stats_->counter("mesa.fault.crc_failures");
        live_.fault_watchdog_trips =
            &stats_->counter("mesa.fault.watchdog_trips");
        live_.fault_checked_runs =
            &stats_->counter("mesa.fault.checked_runs");
        live_.fault_mismatches =
            &stats_->counter("mesa.fault.mismatches");
        live_.fault_rollbacks = &stats_->counter("mesa.fault.rollbacks");
        live_.fault_cpu_reexec =
            &stats_->counter("mesa.fault.cpu_reexec_instructions");
        live_.fault_self_tests =
            &stats_->counter("mesa.fault.self_tests");
        live_.fault_quarantined_pes =
            &stats_->counter("mesa.fault.quarantined_pes");
        // Live gauges: current quarantine/retirement state (scalars,
        // overwritten in place at every transition).
        updateFaultGauges();
        if (params_.fault.migrate_on_fault) {
            live_.migrate_relocations =
                &stats_->counter("mesa.migrate.relocations");
            live_.migrate_relocation_success =
                &stats_->counter("mesa.migrate.relocation_success");
            live_.migrate_translate_cycles =
                &stats_->counter("mesa.migrate.translate_cycles");
            live_.migrate_stream_cycles =
                &stats_->counter("mesa.migrate.stream_cycles");
        }
        if (params_.fault.certificate_gating) {
            live_.absint_certified =
                &stats_->counter("mesa.absint.certified");
            live_.absint_snapshot_skips =
                &stats_->counter("mesa.absint.snapshot_skips");
            live_.absint_budget_tightened =
                &stats_->counter("mesa.absint.budget_tightened");
            live_.absint_trip_watchdogs =
                &stats_->counter("mesa.absint.trip_watchdogs");
        }
    }
}

void
MesaController::attachProfile(prof::AccelProfile *profile)
{
    profile_ = profile;
    accel_.setProfile(profile);
}

std::array<uint64_t, 3>
MesaController::profileMark() const
{
    if (!profile_)
        return {};
    return {profile_->compute_cycles, profile_->noc_stall_cycles,
            profile_->mem_stall_cycles};
}

void
MesaController::profileCapture(const std::array<uint64_t, 3> &mark,
                               OffloadStats &os) const
{
    if (!profile_)
        return;
    os.prof_compute_cycles = profile_->compute_cycles - mark[0];
    os.prof_noc_stall_cycles = profile_->noc_stall_cycles - mark[1];
    os.prof_mem_stall_cycles = profile_->mem_stall_cycles - mark[2];
}

void
MesaController::bumpFallback(FallbackReason reason)
{
    if (stats_ && live_.fallbacks[int(reason)])
        ++*live_.fallbacks[int(reason)];
}

Counter &
MesaController::verifyRuleCounter(const std::string &rule)
{
    auto it = verify_rule_counters_.find(rule);
    if (it == verify_rule_counters_.end()) {
        Counter &c = stats_->counter("mesa.verify.rule." + rule);
        it = verify_rule_counters_.emplace(rule, &c).first;
    }
    return *it->second;
}

bool
MesaController::verifyPrepared(const Prepared &prep)
{
    // Pass 2 on the grid the mapper actually used: the physical array,
    // or a virtual fold of it when the region is time-multiplexed.
    verify::Report report;
    if (prep.options.time_multiplex > 1) {
        ic::FoldedInterconnect folded(accel_.interconnect(),
                                      params_.accel.rows);
        report = verify::verifyMapping(prep.ldfg, prep.map.sdfg,
                                       prep.map.unmapped, params_.accel,
                                       folded);
    } else {
        report = verify::verifyMapping(prep.ldfg, prep.map.sdfg,
                                       prep.map.unmapped, params_.accel,
                                       accel_.interconnect());
    }
    // Pass 3: config round-trip against the source LDFG.
    report.merge(verify::verifyConfig(prep.ldfg, prep.config,
                                      params_.accel));

    const bool clean = report.clean();
    if (stats_) {
        ++*live_.verify_checked;
        *live_.verify_violations += report.errorCount();
        if (!clean)
            ++*live_.verify_fallbacks;
        for (const auto &[rule, count] : report.countsByRule())
            verifyRuleCounter(rule) += count;
    }
    if (!clean) {
        DTRACE("controller",
               "verify gate rejected region 0x"
                   << std::hex << prep.config.region_start << std::dec
                   << ": " << report.summary());
    }
    return clean;
}

uint64_t
MesaController::tracePreparePhases(const Prepared &prep,
                                   const OffloadStats &os, uint64_t t0)
{
    if (stats_) {
        *live_.encode_cycles += os.encode_cycles;
        *live_.mapping_cycles += os.mapping_cycles;
        *live_.config_cycles += os.config_cycles;
        *live_.imap_instructions += prep.map.imap_trace.size();
    }
    if (!Tracer::active())
        return t0 + os.totalConfigCycles();

    // The three spans' durations are exactly the OffloadStats phase
    // fields, so the mesa.ctrl track totals reconcile with the stats.
    Tracer &tracer = Tracer::global();
    uint64_t t = t0;
    if (os.encode_cycles > 0) {
        tracer.span("mesa.ctrl", "encode", t, os.encode_cycles,
                    {{"nodes", uint64_t(prep.ldfg.size())},
                     {"pc", uint64_t(os.region_start)}});
        t += os.encode_cycles;
    }
    if (os.mapping_cycles > 0) {
        tracer.span(
            "mesa.ctrl", "map", t, os.mapping_cycles,
            {{"instructions", uint64_t(prep.map.imap_trace.size())},
             {"unmapped", uint64_t(prep.map.unmapped.size())},
             {"model_latency", prep.map.model_latency}});
        emitImapTrace(tracer, "mesa.imap", prep.map.imap_trace, t);
        t += os.mapping_cycles;
    }
    if (os.config_cycles > 0) {
        tracer.span("mesa.ctrl", "config-stream", t, os.config_cycles,
                    {{"cache_hit", os.config_cache_hit ? 1 : 0},
                     {"tiles", prep.options.tile_factor}});
        t += os.config_cycles;
    }
    return t;
}

MesaController::MesaController(const MesaParams &params,
                               mem::MainMemory &memory)
    : params_(params), memory_(&memory),
      accel_(params.accel, memory, params.accel_mem),
      mapper_(accel_.params(), accel_.interconnect(), params.mapper),
      config_block_(accel_.params()), quarantine_(params.fault.quarantine)
{
    // C1's size bound is the accelerator's instruction capacity
    // (times the fold factor when time-multiplexing is enabled).
    const size_t effective =
        params_.accel.capacity() *
        (params_.enable_time_multiplexing
             ? size_t(std::max(1, params_.max_time_multiplex))
             : 1);
    params_.monitor.max_instructions =
        std::min(params_.monitor.max_instructions, effective);
    // Persistent translation-store key component; params_ is fixed
    // from here on, so the fingerprint is computed once.
    params_crc_ = paramsFingerprint(params_);
}

void
MesaController::bumpPersist(PersistOutcome outcome)
{
    if (!stats_)
        return;
    Counter *c = nullptr;
    switch (outcome) {
      case PersistOutcome::Hit: c = live_.persist_hits; break;
      case PersistOutcome::Miss: c = live_.persist_misses; break;
      case PersistOutcome::Corrupt: c = live_.persist_corrupt; break;
      case PersistOutcome::VersionSkew:
        c = live_.persist_version_skew;
        break;
      case PersistOutcome::KeyMismatch:
        c = live_.persist_key_mismatch;
        break;
      case PersistOutcome::Stored: c = live_.persist_stores; break;
      case PersistOutcome::StoreFailed:
        c = live_.persist_store_failures;
        break;
      case PersistOutcome::Disabled: break;
    }
    if (c)
        ++*c;
}

bool
MesaController::translateOnly(const std::vector<Instruction> &body,
                              bool parallel_hint)
{
    if (body.empty())
        return false;
    return prepare(body, parallel_hint, body.front().pc,
                   body.back().pc + 4)
        .has_value();
}

std::optional<MesaController::Prepared>
MesaController::prepare(const std::vector<Instruction> &body,
                        bool parallel_hint, uint32_t region_start,
                        uint32_t region_end)
{
    last_prepare_fallback_ = FallbackReason::Structural;
    const uint32_t region_tag = bodyTag(body);

    // Persistent translation store (--cache-dir): a warm start skips
    // LDFG encode, mapping, and config generation entirely. The entry
    // is pure simulator-side memoization — the modeled phase cycles
    // travel inside it — so results are bit-identical either way.
    TranslationStore &tstore = TranslationStore::global();
    TranslationKey tkey;
    if (tstore.enabled()) {
        tkey = TranslationKey{region_start, region_end, region_tag,
                              params_crc_,
                              blockedPeDigest(faulty_pes_.coords()),
                              parallel_hint};
        Prepared warm;
        const PersistOutcome outcome = tstore.load(tkey, warm);
        bumpPersist(outcome);
        if (outcome == PersistOutcome::Hit) {
            // Replay the verify gate so mesa.verify.* counters (and a
            // potential veto) match a cold translation exactly.
            if (params_.verify_before_offload &&
                !verifyPrepared(warm)) {
                last_prepare_fallback_ = FallbackReason::VerifyDirty;
                return std::nullopt;
            }
            DTRACE("controller",
                   "persisted translation hit for region 0x"
                       << std::hex << region_start << std::dec << " ("
                       << warm.ldfg.size() << " nodes)");
            return warm;
        }
    }

    const size_t capacity = params_.accel.capacity();
    const int max_tm =
        params_.enable_time_multiplexing
            ? std::max(1, params_.max_time_multiplex)
            : 1;

    // Unrolling (extension): replicate small bodies so one pass
    // covers several original iterations; the CPU resumes at the
    // closing branch and runs the tail sequentially. Checked fault
    // mode disables it: the golden model re-executes the region to
    // its natural exit, which an unrolled pass (CPU tail pending,
    // resume_pc inside the region) does not reach.
    const bool checked_fault_mode =
        params_.fault.enabled && params_.fault.checked_mode;
    std::vector<Instruction> working = body;
    std::map<int, int32_t> live_in_adjustments;
    uint32_t resume_pc = 0;
    if (params_.enable_unrolling && !checked_fault_mode &&
        body.size() <= capacity) {
        for (int f = std::max(2, params_.unroll_factor); f >= 2;
             f /= 2) {
            // Unrolling competes with tiling for PEs: only replicate
            // bodies small enough that the grid keeps tiling headroom.
            if (body.size() * size_t(f) > capacity / 4)
                continue;
            if (auto unrolled = dfg::unrollBody(body, f)) {
                working = std::move(unrolled->body);
                live_in_adjustments =
                    std::move(unrolled->live_in_adjustments);
                resume_pc = region_end - 4; // the closing branch
                break;
            }
        }
    }

    dfg::BuildError err = dfg::BuildError::None;
    auto ldfg = Ldfg::build(working, params_.accel.op_latency,
                            capacity * size_t(max_tm), &err);
    if (!ldfg)
        return std::nullopt;

    Prepared prep;
    prep.ldfg = std::move(*ldfg);
    prep.body_tag = region_tag;
    // The frontend renames one instruction per cycle while building
    // the LDFG from the trace cache.
    prep.encode_cycles = working.size();

    // Oversized bodies fold onto a virtual grid (extension): up to
    // time_multiplex instructions share each PE.
    const int tm = int((working.size() + capacity - 1) / capacity);
    if (tm > 1) {
        accel::AccelParams virt = params_.accel;
        virt.rows *= tm;
        ic::FoldedInterconnect folded(accel_.interconnect(),
                                      params_.accel.rows);
        InstructionMapper vmapper(virt, folded, params_.mapper);
        // Retired PEs block every virtual row that folds onto them.
        if (!faulty_pes_.empty())
            vmapper.setBlockedPes(faulty_pes_.coords(),
                                  params_.accel.rows);
        prep.map = vmapper.map(prep.ldfg);
        prep.options.time_multiplex = tm;
    } else {
        prep.map = mapper_.map(prep.ldfg);
    }
    const double unmapped_frac =
        double(prep.map.unmapped.size()) / double(prep.ldfg.size());
    if (unmapped_frac > params_.max_unmapped_frac)
        return std::nullopt;

    prep.options.enable_forwarding = params_.enable_forwarding;
    prep.options.enable_vectorization = params_.enable_vectorization;
    prep.options.enable_prefetch = params_.enable_prefetch;
    // Stores with data-dependent addresses cannot be statically
    // disambiguated across tile instances (cross-instance aliasing
    // has no invalidation path), so such loops are not tiled. Within
    // one instance the LS entries speculate and invalidate (paper
    // Fig. 5), so pipelining remains safe.
    const bool unknown_stores =
        !dfg::findUnknownAddressStores(prep.ldfg).empty();

    // Register-carried recurrences (a live-in that the body rewrites
    // and that is not an affine induction, e.g. a running reduction)
    // are visible to MESA in its own rename table; such loops are
    // never tiled even when the OpenMP hint claims parallelism.
    const auto inductions = dfg::findInductionRegs(prep.ldfg);
    bool reg_carried = false;
    for (int reg : prep.ldfg.writtenRegs()) {
        if (!prep.ldfg.liveIns().count(reg))
            continue;
        bool is_induction = false;
        for (const auto &ind : inductions)
            is_induction = is_induction || ind.unified_reg == reg;
        if (!is_induction)
            reg_carried = true;
    }

    // A degraded array runs untiled: tile instances execute at
    // translated physical origins the blocked set cannot see, so only
    // the base placement is guaranteed to avoid quarantined PEs.
    prep.max_tiles =
        (tm == 1 && parallel_hint && params_.enable_tiling &&
         faulty_pes_.empty() && !unknown_stores && !reg_carried)
            ? ConfigBlock::maxTileFactor(prep.map.sdfg, params_.accel)
            : 1;
    // The first configuration tiles conservatively (half the grid's
    // ceiling): without runtime information, over-committing the
    // array risks memory-port thrash. Iterative optimization scales
    // the tiling up from profiled epochs (paper: "we opt instead to
    // continuously iterate to close in on the optimum").
    prep.options.tile_factor = std::max(1, (prep.max_tiles + 1) / 2);
    // Pipelining is safe for any loop: the dataflow engine enforces
    // loop-carried register dependences, so a serial reduction simply
    // pipelines around its recurrence.
    prep.options.pipelined = params_.enable_pipelining;
    prep.options.live_in_adjustments = live_in_adjustments;
    prep.options.resume_pc = resume_pc;

    prep.config = config_block_.build(prep.ldfg, prep.map.sdfg,
                                      prep.options, region_start,
                                      region_end);
    prep.config.model_latency = prep.map.model_latency;

    // Abstract-interpretation certificate (footprint + trip bounds).
    // Only meaningful for the natural body: an unrolled pass resumes
    // mid-region, so its per-entry trip/footprint closed forms do not
    // describe the original loop. The certificate is a pure function
    // of the body (keyed by the same CRC as the config), so a cached
    // one is revived instead of re-running the fixpoint.
    if (params_.fault.enabled && params_.fault.certificate_gating &&
        resume_pc == 0) {
        prep.cert = config_cache_.certificate(region_start, region_tag);
        if (!prep.cert)
            prep.cert = std::make_shared<const absint::BodyCertificate>(
                absint::analyze(prep.ldfg));
    }

    if (params_.verify_before_offload && !verifyPrepared(prep)) {
        last_prepare_fallback_ = FallbackReason::VerifyDirty;
        return std::nullopt;
    }
    DTRACE("controller",
           "prepared region 0x" << std::hex << region_start << std::dec
                                << ": " << prep.ldfg.size()
                                << " nodes, tiles "
                                << prep.options.tile_factor << "/"
                                << prep.max_tiles << ", tm "
                                << prep.options.time_multiplex
                                << ", model "
                                << prep.map.model_latency);
    // Persist the finished translation (after the verify gate, so
    // only offloadable entries ever land on disk). A corrupt or
    // version-skewed file is overwritten here, self-healing the store.
    if (tstore.enabled())
        bumpPersist(tstore.store(tkey, prep));
    return prep;
}

void
MesaController::runWithOptimization(Prepared &prep,
                                    riscv::ArchState &state,
                                    uint64_t max_iterations,
                                    OffloadStats &os,
                                    uint64_t cycle_budget)
{
    accel_.configure(prep.config);
    os.model_latency = prep.config.model_latency;
    os.tile_factor = prep.config.tileCount();
    os.pipelined = prep.config.pipelined;

    IterativeOptimizer optimizer(mapper_);
    uint64_t remaining = max_iterations;
    uint64_t budget_left = cycle_budget; // 0 = only the device cap.
    int attempts = 0;

    // Timeline cursor: epochs and reconfigurations lay out back-to-
    // back on the absolute timeline starting from the current instant.
    Tracer &tracer = Tracer::global();
    const uint64_t entry_base = tracer.base();
    const uint64_t offload_start = tracer.now();
    uint64_t cursor = offload_start;

    while (remaining > 0) {
        const bool may_optimize = params_.iterative_optimization &&
                                  attempts < params_.max_reconfigs;
        const uint64_t epoch =
            may_optimize
                ? std::min(remaining, params_.profile_epoch_iterations)
                : remaining;

        // The accelerator (and its LS-entry DRAM instants) emits on a
        // local 0-based timeline; anchor it at the cursor.
        if (Tracer::active())
            tracer.setBase(cursor);
        AccelRunResult res = accel_.run(state, epoch, budget_left);
        DTRACE("controller", "epoch: " << res.iterations
                                       << " iterations in "
                                       << res.cycles << " cycles"
                                       << (res.completed ? " (done)"
                                                         : ""));
        os.accel.accumulate(res);
        os.accel_cycles += res.cycles;
        os.accel_iterations += res.iterations;
        remaining -= std::min(remaining, res.iterations);
        if (stats_) {
            ++*live_.epochs;
            *live_.accel_cycles += res.cycles;
            *live_.accel_iterations += res.iterations;
            live_.epoch_cycles->sample(double(res.cycles));
            if (res.iterations > 0)
                live_.epoch_cycles_per_iter->sample(
                    double(res.cycles) / double(res.iterations));
            snapshot_accum_ += res.iterations;
            if (snapshot_iterations_ > 0 &&
                snapshot_accum_ >= snapshot_iterations_) {
                stats_->snapshot(
                    "iter" +
                    std::to_string(live_.accel_iterations->value()));
                snapshot_accum_ = 0;
            }
        }
        if (Tracer::active())
            tracer.span("accel", "epoch", cursor, res.cycles,
                        {{"iterations", res.iterations},
                         {"tiles", os.tile_factor},
                         {"pes_used", uint64_t(res.pes_used)}});
        cursor += res.cycles;
        if (res.completed)
            break;
        // Watchdog trip (device cap or the per-offload fault budget):
        // stop driving the fabric; the guarded dispatch rolls back.
        if (res.watchdog_tripped)
            break;
        if (cycle_budget) {
            if (res.cycles >= budget_left) {
                // Budget spent without a device-side trip (epoch ended
                // exactly on the boundary): report the trip ourselves.
                os.accel.watchdog_tripped = true;
                break;
            }
            budget_left -= res.cycles;
        }
        if (!may_optimize)
            continue;

        ++attempts;
        if (stats_)
            ++*live_.optimizer_attempts;
        IterativeOptimizer::applyFeedback(prep.ldfg, accel_);

        // Loop-level feedback first: if the profiled epoch left grid
        // capacity unused, scale the tiling up (the conservative
        // first configuration closes in on the optimum iteratively).
        if (prep.options.tile_factor < prep.max_tiles) {
            prep.options.tile_factor = std::min(
                prep.max_tiles, prep.options.tile_factor * 2);
            prep.config = config_block_.build(
                prep.ldfg, prep.map.sdfg, prep.options,
                os.region_start, os.region_end);
            prep.config.model_latency = os.model_latency;
            accel_.configure(prep.config);
            config_cache_.insert(prep.config, prep.body_tag, prep.cert);
            ++os.reconfigurations;
            // With a shadow plane the bitstream streams during the
            // previous epoch; only the swap stalls the array.
            const uint64_t cost =
                params_.shadow_config
                    ? 1
                    : config_block_.configCycles(prep.config);
            os.reconfig_cycles += cost;
            os.tile_factor = prep.config.tileCount();
            if (stats_) {
                ++*live_.reconfig_count;
                *live_.reconfig_cycles += cost;
            }
            if (Tracer::active())
                tracer.span("mesa.ctrl",
                            params_.shadow_config ? "shadow-swap"
                                                  : "reconfig",
                            cursor, cost,
                            {{"tiles", os.tile_factor},
                             {"reason", "tile-scale"}});
            cursor += cost;
            continue;
        }

        // Otherwise attempt a data-driven remap from measured node
        // and edge latencies.
        const OptimizeOutcome outcome =
            optimizer.optimize(prep.ldfg, os.model_latency);
        if (Tracer::active())
            tracer.instant(
                "mesa.ctrl", "optimize-attempt", cursor,
                {{"old_model_latency", outcome.old_model_latency},
                 {"new_model_latency", outcome.new_model_latency},
                 {"remapped", outcome.remapped ? 1 : 0}});
        if (outcome.remapped) {
            prep.map = outcome.map;
            prep.config = config_block_.build(
                prep.ldfg, prep.map.sdfg, prep.options,
                os.region_start, os.region_end);
            prep.config.model_latency = outcome.new_model_latency;
            accel_.configure(prep.config);
            config_cache_.insert(prep.config, prep.body_tag, prep.cert);
            ++os.reconfigurations;
            // Mapping runs on MESA concurrently with execution; the
            // charged cost is the bitstream write (or the shadow
            // swap) plus any mapping time not hidden by the epoch.
            const uint64_t stream_cost =
                params_.shadow_config
                    ? 1
                    : config_block_.configCycles(prep.config);
            const uint64_t cost =
                prep.map.mapping_cycles + stream_cost;
            os.reconfig_cycles += cost;
            os.model_latency = outcome.new_model_latency;
            if (stats_) {
                ++*live_.reconfig_count;
                ++*live_.optimizer_remaps;
                *live_.reconfig_cycles += cost;
                *live_.mapping_cycles += prep.map.mapping_cycles;
                *live_.imap_instructions += prep.map.imap_trace.size();
            }
            if (Tracer::active()) {
                tracer.span(
                    "mesa.ctrl", "remap", cursor, cost,
                    {{"model_latency", outcome.new_model_latency},
                     {"mapping_cycles", prep.map.mapping_cycles},
                     {"stream_cycles", stream_cost}});
                emitImapTrace(tracer, "mesa.imap", prep.map.imap_trace,
                              cursor);
            }
            cursor += cost;
        }
    }

    // Shift the time base past the offload so the caller's timeline
    // (base + its own published cycle) resumes after the last epoch.
    if (Tracer::active())
        tracer.setBase(entry_base + (cursor - offload_start));
}

void
MesaController::cpuReexecute(riscv::ArchState &state, OffloadStats &os)
{
    riscv::Emulator cpu(*memory_);
    cpu.reset(state.pc);
    cpu.state() = state;
    const uint64_t steps = cpu.runWhileInRegion(
        os.region_start, os.region_end, params_.fault.max_golden_steps);
    state = cpu.state();
    os.cpu_reexec_instructions += steps;
    if (stats_ && live_.fault_cpu_reexec)
        *live_.fault_cpu_reexec += steps;
}

void
MesaController::onFaultDetected(OffloadStats &os)
{
    bumpFallback(os.fallback);
    const bool entered = quarantine_.onFault(os.region_start);
    if (entered && Tracer::active())
        Tracer::global().instant(
            "mesa.fault", "region-quarantine-enter",
            Tracer::global().now(),
            {{"pc", uint64_t(os.region_start)},
             {"strikes",
              uint64_t(quarantine_.strikes(os.region_start))}});
    config_cache_.invalidate(os.region_start);
    if (!params_.fault.self_test_on_fault) {
        updateFaultGauges();
        return;
    }
    if (stats_ && live_.fault_self_tests)
        ++*live_.fault_self_tests;
    const std::vector<ic::Coord> bad = accel_.selfTest();
    size_t newly = 0;
    for (const ic::Coord pos : bad)
        newly += faulty_pes_.add(pos) ? 1 : 0;
    if (newly == 0) {
        updateFaultGauges();
        return;
    }
    // Permanent defects localized: retire the PEs from the mapper's
    // free matrix, flush every cached placement (any of them may
    // route through the dead hardware), and lift the region's
    // sentence — with the root cause mapped around, the fabric
    // deserves a fresh chance.
    mapper_.setBlockedPes(faulty_pes_.coords());
    config_cache_.clear();
    quarantine_.clear(os.region_start);
    if (stats_ && live_.fault_quarantined_pes)
        *live_.fault_quarantined_pes += newly;
    DTRACE("controller", "self test retired " << newly << " PE(s), "
                                              << faulty_pes_.size()
                                              << " total");
    if (Tracer::active())
        Tracer::global().instant(
            "mesa.fault", "pe-quarantine", Tracer::global().now(),
            {{"new_pes", uint64_t(newly)},
             {"total_pes", uint64_t(faulty_pes_.size())}});
    updateFaultGauges();
}

void
MesaController::updateFaultGauges()
{
    if (!stats_ || !params_.fault.enabled)
        return;
    stats_->scalar("mesa.fault.quarantined_regions",
                   double(quarantine_.quarantinedCount()));
    stats_->scalar("mesa.fault.retired_pes", double(faulty_pes_.size()));
}

bool
MesaController::relocatePrepared(Prepared &prep,
                                 const std::vector<Instruction> &body,
                                 bool parallel_hint, OffloadStats &os)
{
    if (body.empty())
        return false;
    if (stats_ && live_.migrate_relocations)
        ++*live_.migrate_relocations;
    // Re-translate around whatever the self test retired. When BIST
    // localized nothing (transients and stuck control lines are not
    // reproducible under it), this degenerates to a checkpoint-retry
    // on a fresh translation — the region still never runs degraded,
    // and a second trip falls back to the CPU.
    auto fresh = prepare(body, parallel_hint, os.region_start,
                         os.region_end);
    if (!fresh)
        return false;
    prep = std::move(*fresh);
    config_cache_.insert(prep.config, prep.body_tag, prep.cert);
    const uint64_t stream = config_block_.configCycles(prep.config);
    // The re-translation and the new bitstream write are charged to
    // the offload like any reconfiguration.
    os.encode_cycles += prep.encode_cycles;
    os.mapping_cycles += prep.map.mapping_cycles;
    os.config_cycles += stream;
    if (stats_) {
        if (live_.migrate_translate_cycles)
            *live_.migrate_translate_cycles +=
                prep.encode_cycles + prep.map.mapping_cycles;
        if (live_.migrate_stream_cycles)
            *live_.migrate_stream_cycles += stream;
        *live_.encode_cycles += prep.encode_cycles;
        *live_.mapping_cycles += prep.map.mapping_cycles;
        *live_.config_cycles += stream;
    }
    if (Tracer::active())
        Tracer::global().span(
            "mesa.ctrl", "relocate", Tracer::global().now(),
            prep.encode_cycles + prep.map.mapping_cycles + stream,
            {{"pc", uint64_t(os.region_start)},
             {"blocked_pes", uint64_t(faulty_pes_.size())}});
    DTRACE("controller", "relocated region 0x"
                             << std::hex << os.region_start << std::dec
                             << " around " << faulty_pes_.size()
                             << " retired PE(s)");
    return true;
}

void
MesaController::runGuarded(Prepared &prep, riscv::ArchState &state,
                           uint64_t max_iterations, OffloadStats &os,
                           const std::vector<Instruction> &body,
                           bool parallel_hint)
{
    const fault::FaultToleranceParams &fp = params_.fault;
    if (!fp.enabled) {
        runWithOptimization(prep, state, max_iterations, os);
        if (os.accel.watchdog_tripped) {
            // Device-level watchdog (always armed): the run was cut
            // off with partial progress written back; the CPU resumes
            // the loop from there. Surface the reason even without
            // fault mode.
            os.fallback = FallbackReason::Watchdog;
            bumpFallback(os.fallback);
        }
        return;
    }

    Tracer &tracer = Tracer::global();

    // Campaign hook: model an SEU in the stored bitstream.
    if (config_corruptor_)
        config_corruptor_(prep.config);

    // Detection point 1: re-derive the CRC before streaming.
    if (fp.crc_check &&
        accel::configCrc(prep.config) != prep.config.crc) {
        if (stats_ && live_.fault_crc_failures)
            ++*live_.fault_crc_failures;
        if (Tracer::active())
            tracer.instant("mesa.fault", "crc-mismatch", tracer.now(),
                           {{"pc", uint64_t(os.region_start)},
                            {"stored", uint64_t(prep.config.crc)}});
        // The stored bitstream is corrupt, but the encoder-side LDFG
        // and mapping are intact: rebuild the configuration from them
        // and replace the poisoned cache entry.
        config_cache_.invalidate(os.region_start);
        prep.config = config_block_.build(prep.ldfg, prep.map.sdfg,
                                          prep.options, os.region_start,
                                          os.region_end);
        prep.config.model_latency = prep.map.model_latency;
        if (accel::configCrc(prep.config) != prep.config.crc) {
            // The rebuild is corrupt too (encoder-path fault): nothing
            // trustworthy to stream; execute on the CPU.
            os.fallback = FallbackReason::FaultDetected;
            onFaultDetected(os);
            cpuReexecute(state, os);
            return;
        }
        config_cache_.insert(prep.config, prep.body_tag, prep.cert);
    }

    // Certificate gate: bind the static proof to this entry state
    // and the currently-resident memory region. A proven-in-region
    // footprint licenses skipping the golden memory-snapshot compare
    // below; a finite trip proof derives a per-offload watchdog
    // budget that can only tighten the configured one.
    bool mem_proven_in = false;
    uint64_t watchdog_budget = fp.watchdog_cycles;
    uint64_t effective_max = max_iterations;
    bool trip_cap_armed = false;
    if (fp.certificate_gating && prep.cert && prep.cert->converged) {
        const absint::CertificateInstance inst = absint::instantiate(
            *prep.cert, state, absint::residentRegion(*memory_));
        mem_proven_in =
            inst.footprint == absint::RegionClass::ProvenIn;
        os.certified = mem_proven_in;
        if (inst.trips_finite) {
            const uint64_t derived = absint::watchdogBudget(
                *prep.cert, inst.trips, prep.options.time_multiplex);
            if (derived > 0) {
                os.cert_watchdog_budget = derived;
                watchdog_budget =
                    fp.watchdog_cycles
                        ? std::min(fp.watchdog_cycles, derived)
                        : derived;
                if (stats_ && live_.absint_budget_tightened &&
                    watchdog_budget == derived)
                    ++*live_.absint_budget_tightened;
            }
            // Iteration watchdog: a clean run provably exits within
            // inst.trips iterations from this entry state, so the
            // fabric never needs more. Capping here turns a runaway
            // loop (corrupted exit condition) into a detection after
            // at most the proven trip count instead of letting it
            // burn the whole cycle budget.
            if (inst.trips > 0 && inst.trips < max_iterations) {
                effective_max = inst.trips;
                trip_cap_armed = true;
            }
        }
        if (mem_proven_in && stats_ && live_.absint_certified)
            ++*live_.absint_certified;
        if (Tracer::active())
            tracer.instant(
                "mesa.absint", "certificate", tracer.now(),
                {{"pc", uint64_t(os.region_start)},
                 {"proven_in", mem_proven_in ? 1 : 0},
                 {"trips", inst.trips_finite ? inst.trips : 0}});
    }

    // Checkpoint before handing control to the fabric. The same
    // snapshot serves rollback AND relocation: a drained offload
    // resumes from it on the re-translated placement.
    const fault::Checkpoint ckpt =
        fault::Checkpoint::capture(state, *memory_);

    const int max_attempts =
        fp.migrate_on_fault && !body.empty() ? 2 : 1;
    bool faulted = false;
    bool relocated = false;
    for (int attempt = 0; attempt < max_attempts; ++attempt) {

    const uint64_t iters_before = os.accel_iterations;
    runWithOptimization(prep, state, effective_max, os,
                        watchdog_budget);

    if (trip_cap_armed && !os.accel.completed &&
        !os.accel.watchdog_tripped &&
        os.accel_iterations - iters_before >= effective_max) {
        // The proven trip budget is exhausted without the loop exit
        // firing — impossible for a clean run; treat it exactly like
        // a cycle-watchdog trip (rollback + CPU re-execution below).
        os.trip_watchdog = true;
        os.accel.watchdog_tripped = true;
        if (stats_ && live_.absint_trip_watchdogs)
            ++*live_.absint_trip_watchdogs;
        if (Tracer::active())
            tracer.instant("mesa.absint", "trip-watchdog",
                           tracer.now(),
                           {{"pc", uint64_t(os.region_start)},
                            {"trips", effective_max}});
    }

    if (os.accel.watchdog_tripped) {
        // Detection point 2: the offload hung (stuck control line) or
        // overran its budget. Roll back; then either drain-and-
        // relocate (migrate_on_fault, first attempt) or re-execute on
        // the CPU.
        if (stats_ && live_.fault_watchdog_trips)
            ++*live_.fault_watchdog_trips;
        if (stats_ && live_.fault_rollbacks)
            ++*live_.fault_rollbacks;
        if (Tracer::active()) {
            tracer.instant("mesa.fault", "watchdog-trip", tracer.now(),
                           {{"pc", uint64_t(os.region_start)},
                            {"cycles", os.accel_cycles}});
            tracer.instant("mesa.fault", "rollback", tracer.now(),
                           {{"pc", uint64_t(os.region_start)}});
        }
        os.fallback = FallbackReason::Watchdog;
        ckpt.restore(state, *memory_);
        if (attempt + 1 < max_attempts) {
            // Quarantine strike + BIST first (retiring the root cause
            // blocks it in the mapper), then re-translate and resume
            // from the restored checkpoint on the new placement.
            onFaultDetected(os);
            if (relocatePrepared(prep, body, parallel_hint, os)) {
                os.accel.watchdog_tripped = false;
                os.trip_watchdog = false;
                relocated = true;
                continue;
            }
        }
        cpuReexecute(state, os);
        faulted = true;
    } else if (fp.checked_mode && os.accel.completed) {
        // Detection point 3: golden-model comparison (DMR in time).
        // Only a run that reached the loop exit is comparable — the
        // golden model executes the region to its natural exit.
        if (stats_ && live_.fault_checked_runs)
            ++*live_.fault_checked_runs;
        const riscv::ArchState accel_state = state;
        // A proven-in-region footprint makes the page-by-page memory
        // diff redundant as a recovery mechanism: restore + golden
        // re-execution below always leaves memory at the golden
        // result, so skipping the compare can never admit a silent
        // corruption -- it only forgoes counting a memory-only
        // mismatch as a detected fault.
        const bool skip_snapshot = mem_proven_in;
        fault::MemSnapshot accel_pages;
        if (!skip_snapshot)
            accel_pages = memory_->snapshot();
        ckpt.restore(state, *memory_);
        riscv::Emulator golden(*memory_);
        golden.reset(state.pc);
        golden.state() = state;
        const uint64_t steps = golden.runWhileInRegion(
            os.region_start, os.region_end, fp.max_golden_steps);
        state = golden.state();
        os.cpu_reexec_instructions += steps;
        if (stats_ && live_.fault_cpu_reexec)
            *live_.fault_cpu_reexec += steps;
        bool match = state == accel_state;
        if (skip_snapshot) {
            os.snapshot_skipped = true;
            if (stats_ && live_.absint_snapshot_skips)
                ++*live_.absint_snapshot_skips;
        } else {
            match = match &&
                    fault::memorySnapshotsEqual(memory_->snapshot(),
                                                accel_pages);
        }
        if (!match) {
            // state/memory already hold the golden result: detection
            // and recovery coincide on this path.
            if (stats_ && live_.fault_mismatches)
                ++*live_.fault_mismatches;
            if (stats_ && live_.fault_rollbacks)
                ++*live_.fault_rollbacks;
            if (Tracer::active())
                tracer.instant("mesa.fault", "golden-mismatch",
                               tracer.now(),
                               {{"pc", uint64_t(os.region_start)}});
            os.fallback = FallbackReason::FaultDetected;
            faulted = true;
        }
    }

    break;
    } // attempt loop

    if (faulted) {
        onFaultDetected(os);
    } else {
        const bool rehabilitated =
            quarantine_.onSuccess(os.region_start);
        if (rehabilitated && Tracer::active())
            tracer.instant("mesa.fault", "region-quarantine-exit",
                           tracer.now(),
                           {{"pc", uint64_t(os.region_start)}});
        if (relocated && stats_ && live_.migrate_relocation_success)
            ++*live_.migrate_relocation_success;
    }
    updateFaultGauges();
}

std::optional<OffloadStats>
MesaController::offloadLoop(const std::vector<Instruction> &body,
                            riscv::ArchState &state, bool parallel_hint,
                            uint64_t max_iterations)
{
    if (body.empty())
        return std::nullopt;
    if (arbiter_) {
        // Multi-tenant mode: enqueue with the shared arbiter instead
        // of running inline on the private accelerator.
        OffloadRequest req;
        req.tenant = tenant_id_;
        req.priority = tenant_priority_;
        req.body = body;
        req.state = &state;
        req.parallel_hint = parallel_hint;
        req.max_iterations = max_iterations;
        auto served = arbiter_->serve(req);
        if (served && stats_)
            ++*live_.offloads;
        return served;
    }
    const uint32_t region_start = body.front().pc;
    const uint32_t region_end = body.back().pc + 4;

    OffloadStats os;
    os.region_start = region_start;
    os.region_end = region_end;

    if (params_.fault.enabled &&
        !quarantine_.shouldOffload(region_start)) {
        // Serving a backoff sentence: the region executes on the CPU.
        os.fallback = FallbackReason::Quarantined;
        bumpFallback(os.fallback);
        updateFaultGauges();
        state.pc = region_start;
        cpuReexecute(state, os);
        return os;
    }

    Prepared prep;
    if (const auto *cached =
            config_cache_.lookup(region_start, bodyTag(body))) {
        // Re-encountered region: reuse the stored configuration; only
        // the bitstream write is paid again.
        os.config_cache_hit = true;
        auto fresh = prepare(body, parallel_hint, region_start,
                             region_end);
        if (!fresh) {
            bumpFallback(last_prepare_fallback_);
            return std::nullopt;
        }
        prep = std::move(*fresh);
        prep.config = *cached;
        os.config_cycles = config_block_.configCycles(prep.config);
        os.unmapped = prep.map.unmapped.size();
    } else {
        auto fresh = prepare(body, parallel_hint, region_start,
                             region_end);
        if (!fresh) {
            bumpFallback(last_prepare_fallback_);
            return std::nullopt;
        }
        prep = std::move(*fresh);
        os.encode_cycles = prep.encode_cycles;
        os.mapping_cycles = prep.map.mapping_cycles;
        os.config_cycles = config_block_.configCycles(prep.config);
        os.unmapped = prep.map.unmapped.size();
        config_cache_.insert(prep.config, prep.body_tag, prep.cert);
    }

    // In the lower-level entry there is no CPU to overlap with: the
    // configuration phases occupy the timeline before the first epoch.
    Tracer &tracer = Tracer::global();
    const uint64_t t0 = tracer.now();
    const uint64_t t1 = tracePreparePhases(prep, os, t0);
    if (Tracer::active())
        tracer.setBase(tracer.base() + (t1 - t0));
    if (stats_)
        ++*live_.offloads;

    const auto prof_mark = profileMark();
    runGuarded(prep, state, max_iterations, os, body, parallel_hint);
    profileCapture(prof_mark, os);
    return os;
}

TransparentRunResult
MesaController::runTransparent(const riscv::Program &program,
                               const cpu::ThreadInit &init,
                               bool parallel_hint)
{
    TransparentRunResult result;

    cpu::loadProgram(*memory_, program);
    mem::MemHierarchy cpu_mem(params_.cpu_mem);
    cpu::OooCore core(params_.host_core, cpu_mem);
    RegionMonitor monitor(params_.monitor);

    riscv::Emulator emu(*memory_);
    emu.reset(program.base_pc);
    if (init)
        init(emu.state());

    struct Ctx
    {
        uint64_t prev_branch_cycles = 0;
        uint64_t last_iter_cost = 0;
        TraceEntry last_entry;
    } ctx;

    emu.setObserver([&](const TraceEntry &entry) {
        core.consume(entry);
        // Publish the committed CPU cycle so passive observers (the
        // monitor's decision instants) can stamp events with now().
        if (Tracer::active())
            Tracer::global().setCycle(core.cycles());
        monitor.observe(entry);
        ctx.last_entry = entry;
        if (entry.inst.isBackwardBranch() && entry.branch_taken) {
            const uint64_t now = core.cycles();
            ctx.last_iter_cost = now - ctx.prev_branch_cycles;
            ctx.prev_branch_cycles = now;
        }
    });

    Tracer &tracer = Tracer::global();
    uint64_t cpu_seg_start = tracer.now();
    uint64_t steps = 0;
    while (!emu.halted() && steps < params_.max_steps) {
        emu.step();
        ++steps;

        const auto &decision = monitor.decision();
        if (!decision)
            continue;
        if (!decision->qualified) {
            if (stats_)
                ++*live_.rejections;
            result.rejections.push_back(*decision);
            monitor.rearm();
            continue;
        }

        // --- Qualified: state.pc is at the loop entry. ---
        const cpu::LoopInfo loop = decision->loop;
        monitor.traceCache().backfill(*memory_);
        const std::vector<Instruction> body = monitor.traceCache().body();

        if (params_.fault.enabled &&
            !quarantine_.shouldOffload(loop.start)) {
            // Region serving a backoff sentence: skip the offload and
            // let the CPU keep executing the loop naturally.
            bumpFallback(FallbackReason::Quarantined);
            updateFaultGauges();
            monitor.rearm();
            continue;
        }

        if (arbiter_) {
            // Multi-tenant mode: the shared arbiter owns the device;
            // enqueue the region and resume the CPU when it returns.
            OffloadRequest req;
            req.tenant = tenant_id_;
            req.priority = tenant_priority_;
            req.body = body;
            req.state = &emu.state();
            req.parallel_hint = parallel_hint;
            if (Tracer::active()) {
                const uint64_t handoff = tracer.now();
                if (handoff > cpu_seg_start)
                    tracer.span("cpu0", "execute", cpu_seg_start,
                                handoff - cpu_seg_start);
            }
            auto served = arbiter_->serve(req);
            if (served) {
                if (stats_)
                    ++*live_.offloads;
                result.offloads.push_back(*served);
            } else {
                monitor.blacklist(loop.start);
            }
            cpu_seg_start = tracer.now();
            monitor.rearm();
            continue;
        }

        OffloadStats os;
        os.region_start = loop.start;
        os.region_end = loop.end;

        Prepared prep;
        bool prepared = false;
        if (const auto *cached =
                config_cache_.lookup(loop.start, bodyTag(body))) {
            auto fresh = prepare(body, parallel_hint, loop.start,
                                 loop.end);
            if (fresh) {
                prep = std::move(*fresh);
                prep.config = *cached;
                os.config_cache_hit = true;
                os.config_cycles =
                    config_block_.configCycles(prep.config);
                os.unmapped = prep.map.unmapped.size();
                prepared = true;
            }
        } else if (auto fresh = prepare(body, parallel_hint, loop.start,
                                        loop.end)) {
            prep = std::move(*fresh);
            os.encode_cycles = prep.encode_cycles;
            os.mapping_cycles = prep.map.mapping_cycles;
            os.config_cycles = config_block_.configCycles(prep.config);
            os.unmapped = prep.map.unmapped.size();
            config_cache_.insert(prep.config, prep.body_tag, prep.cert);
            prepared = true;
        }
        if (!prepared) {
            // Structural failure: never consider this region again.
            bumpFallback(last_prepare_fallback_);
            monitor.blacklist(loop.start);
            monitor.rearm();
            continue;
        }

        // MESA's configuration phases run concurrently with the CPU:
        // lay them on the controller tracks starting at the decision
        // instant, without advancing the CPU's time base.
        const uint64_t decision_cycle = tracer.now();
        tracePreparePhases(prep, os, decision_cycle);

        // --- CPU executes iterations while MESA configures. ---
        const uint64_t iter_cost = std::max<uint64_t>(
            1, ctx.last_iter_cost);
        const uint64_t overlap_iters =
            (os.totalConfigCycles() + iter_cost - 1) / iter_cost;
        os.cpu_overlap_iterations = overlap_iters;

        bool exited_early = false;
        for (uint64_t k = 0; k < overlap_iters && !exited_early; ++k) {
            // Run until the next closing-branch commit.
            while (!emu.halted()) {
                if (!loop.contains(emu.state().pc)) {
                    exited_early = true;
                    break;
                }
                emu.step();
                ++steps;
                const auto &te = ctx.last_entry;
                if (te.inst.pc == loop.branchPc()) {
                    if (!te.branch_taken)
                        exited_early = true;
                    break;
                }
            }
            if (emu.halted())
                exited_early = true;
        }
        if (exited_early) {
            // The loop ended before configuration completed; nothing
            // to offload this time.
            monitor.rearm();
            continue;
        }

        // --- Offload: transfer architectural state, run, return. ---
        if (Tracer::active()) {
            // Close the CPU execution segment at the handoff point
            // and mark the configuration overlap window.
            const uint64_t handoff = tracer.now();
            if (handoff > cpu_seg_start)
                tracer.span("cpu0", "execute", cpu_seg_start,
                            handoff - cpu_seg_start);
            if (handoff > decision_cycle)
                tracer.span("cpu0", "config-overlap", decision_cycle,
                            handoff - decision_cycle,
                            {{"iterations", overlap_iters},
                             {"config_cycles",
                              os.totalConfigCycles()}});
        }
        if (stats_)
            ++*live_.offloads;
        const auto prof_mark = profileMark();
        runGuarded(prep, emu.state(), ~uint64_t(0), os, body,
                   parallel_hint);
        profileCapture(prof_mark, os);
        cpu_seg_start = tracer.now();
        result.offloads.push_back(os);
        monitor.rearm();
    }

    result.cpu_cycles = core.finish();
    if (Tracer::active()) {
        // Close the trailing CPU segment with the drained pipeline's
        // final cycle count.
        const uint64_t end = tracer.base() + result.cpu_cycles;
        tracer.setCycle(result.cpu_cycles);
        if (end > cpu_seg_start)
            tracer.span("cpu0", "execute", cpu_seg_start,
                        end - cpu_seg_start);
    }
    result.cpu_instructions = core.stats().instructions;
    result.cpu.cycles = result.cpu_cycles;
    result.cpu.instructions = core.stats().instructions;
    result.cpu.mispredicts = core.stats().mispredicts;
    result.cpu.loads = core.stats().loads;
    result.cpu.stores = core.stats().stores;
    result.cpu.fp_ops = core.stats().fp_ops;
    result.cpu.dram_accesses = cpu_mem.dramAccesses();
    result.cpu.threads = 1;
    for (const auto &os : result.offloads)
        result.accel_cycles += os.accel_cycles + os.reconfig_cycles;
    result.total_cycles = result.cpu_cycles + result.accel_cycles;
    result.final_state = emu.state();
    result.halted = emu.halted();
    return result;
}

} // namespace mesa::core
