#include "mesa/config_builder.hh"

#include <algorithm>

#include "util/logging.hh"

namespace mesa::core
{

using accel::AcceleratorConfig;
using accel::PeSlot;
using accel::TileInstance;
using dfg::Ldfg;
using dfg::NodeId;
using dfg::NoNode;
using dfg::Sdfg;

namespace
{

/** Bounding box of the placement. Column stride rounds up to the
 *  FP-column-stripe period (2) so duplicated instances land on PEs
 *  with identical operation support; rows carry no FP pattern, so
 *  the row stride is exact. Returns {stride_rows, stride_cols}. */
std::pair<int, int>
tileStride(const Sdfg &sdfg)
{
    int max_row = -1;
    int max_col = -1;
    for (int r = 0; r < sdfg.rows(); ++r) {
        for (int c = 0; c < sdfg.cols(); ++c) {
            if (sdfg.at({r, c}) != NoNode) {
                max_row = std::max(max_row, r);
                max_col = std::max(max_col, c);
            }
        }
    }
    if (max_row < 0)
        return {sdfg.rows(), sdfg.cols()};
    return {max_row + 1, ((max_col + 2) / 2) * 2};
}

} // namespace

int
ConfigBlock::maxTileFactor(const Sdfg &sdfg,
                           const accel::AccelParams &accel)
{
    // 2D duplication (paper Fig. 6): instances stack in both grid
    // dimensions at the FP-slice-aligned bounding-box stride.
    const auto [sr, sc] = tileStride(sdfg);
    const int tiles_r = std::max(1, accel.rows / sr);
    const int tiles_c = std::max(1, accel.cols / sc);
    return std::max(1, tiles_r * tiles_c);
}

AcceleratorConfig
ConfigBlock::build(const Ldfg &ldfg, const Sdfg &sdfg,
                   const ConfigOptions &options, uint32_t region_start,
                   uint32_t region_end) const
{
    AcceleratorConfig cfg;
    cfg.region_start = region_start;
    cfg.region_end = region_end;
    cfg.resume_pc = options.resume_pc;
    cfg.time_multiplex = std::max(1, options.time_multiplex);
    // Virtual rows fold onto the physical grid (extension).
    cfg.rows = sdfg.rows() / cfg.time_multiplex;
    cfg.cols = sdfg.cols();
    cfg.pipelined = options.pipelined;

    // --- Per-node slots (program order) ---
    cfg.slots.reserve(ldfg.size());
    for (const auto &node : ldfg.nodes()) {
        PeSlot slot;
        slot.node = node.id;
        slot.inst = node.inst;
        slot.pos = sdfg.coordOf(node.id);
        if (slot.pos.valid() && cfg.time_multiplex > 1)
            slot.pos.r %= cfg.rows;
        slot.src1 = node.src1;
        slot.src2 = node.src2;
        slot.live_in1 = node.live_in1;
        slot.live_in2 = node.live_in2;
        slot.guards = node.guards;
        slot.prev_dest_writer = node.prev_dest_writer;
        slot.prev_dest_live_in = node.prev_dest_live_in;
        slot.op_latency = node.op_latency;
        cfg.slots.push_back(std::move(slot));
    }

    // --- Live-in / live-out wiring ---
    cfg.live_ins = ldfg.liveIns();
    for (int reg : ldfg.writtenRegs()) {
        const NodeId writer = ldfg.finalRename().lookup(reg);
        if (writer != NoNode)
            cfg.live_outs[reg] = writer;
    }

    cfg.inductions = dfg::findInductionRegs(ldfg);

    // --- Static store->load forwarding (guard-free pairs only) ---
    if (options.enable_forwarding) {
        for (const auto &pair : dfg::findForwardPairs(ldfg)) {
            const auto &store = ldfg.node(pair.store);
            const auto &load = ldfg.node(pair.load);
            if (store.isGuarded() || load.isGuarded())
                continue;
            cfg.slots[size_t(pair.load)].forward_from_store = pair.store;
        }
    }

    // --- Vectorization of same-base load groups ---
    if (options.enable_vectorization) {
        int group_id = 0;
        for (const auto &group : dfg::findVectorGroups(ldfg)) {
            const int32_t stride = group.stride();
            const auto minmax = std::minmax_element(
                group.offsets.begin(), group.offsets.end());
            // Contiguous words within one 64B line vectorize.
            if (stride == 0 ||
                *minmax.second - *minmax.first >= 64)
                continue;
            const NodeId leader =
                *std::min_element(group.loads.begin(), group.loads.end());
            for (NodeId load : group.loads) {
                // Forwarded loads never touch memory; skip them.
                if (cfg.slots[size_t(load)].forward_from_store != NoNode)
                    continue;
                cfg.slots[size_t(load)].vector_group = group_id;
                cfg.slots[size_t(load)].vector_leader = load == leader;
            }
            ++group_id;
        }
    }

    // --- Speculative prefetch for induction-based loads ---
    if (options.enable_prefetch) {
        for (NodeId load : dfg::findPrefetchableLoads(ldfg)) {
            const auto &node = ldfg.node(load);
            int32_t stride = 0;
            if (node.src1 != NoNode) {
                stride = ldfg.node(node.src1).inst.imm;
            } else {
                for (const auto &ind : cfg.inductions)
                    if (ind.unified_reg == node.live_in1)
                        stride = ind.step;
            }
            if (stride != 0) {
                cfg.slots[size_t(load)].prefetch = true;
                cfg.slots[size_t(load)].prefetch_stride = stride;
            }
        }
    }

    // --- Spatial tiling (paper Fig. 6) ---
    // Time-multiplexed mappings are capacity-bound already: no tiling.
    int tiles = cfg.time_multiplex > 1 ? 1
                                       : std::max(1, options.tile_factor);
    if (tiles > 1) {
        if (cfg.inductions.empty()) {
            logWarn("config", "ConfigBlock: tiling requested but no induction "
                 "register found; disabling tiling");
            tiles = 1;
        }
        tiles = std::min(tiles, maxTileFactor(sdfg, accel_));
    }
    cfg.instances.clear();
    const auto [stride_r, stride_c] = tileStride(sdfg);
    const int tiles_c = std::max(1, accel_.cols / stride_c);
    for (int k = 0; k < tiles; ++k) {
        TileInstance inst;
        inst.origin = {(k / tiles_c) * stride_r,
                       (k % tiles_c) * stride_c};
        if (tiles > 1) {
            for (const auto &ind : cfg.inductions)
                inst.reg_offsets[ind.unified_reg] = k * ind.step;
        }
        for (const auto &[reg, offset] : options.live_in_adjustments)
            inst.reg_offsets[reg] += offset;
        cfg.instances.push_back(std::move(inst));
    }
    if (tiles > 1) {
        // Each instance strides by tiles * step.
        for (const auto &ind : cfg.inductions)
            cfg.imm_overrides[ind.update_node] = ind.step * tiles;
    }

    // --- Bitstream size (config-time model) ---
    // Four words per slot (operation, immediate, routing, predication
    // masks), one per dataflow edge (switch programming), one per
    // live-in latch, four per tile instance, plus a fixed header.
    size_t edges = 0;
    for (const auto &node : ldfg.nodes()) {
        edges += size_t(node.src1 != NoNode) +
                 size_t(node.src2 != NoNode) + node.guards.size();
    }
    cfg.config_words = 4 * cfg.slots.size() + edges +
                       cfg.live_ins.size() +
                       4 * cfg.instances.size() + 8;
    // Integrity stamp over the semantic payload; the controller
    // re-derives it before streaming (fault detection, src/fault).
    cfg.crc = configCrc(cfg);
    return cfg;
}

uint64_t
ConfigBlock::configCycles(const AcceleratorConfig &config) const
{
    const unsigned bw = std::max(1u, accel_.config_words_per_cycle);
    return (config.config_words + bw - 1) / bw;
}

} // namespace mesa::core
