#include "mesa/optimizer.hh"

namespace mesa::core
{

void
IterativeOptimizer::applyFeedback(dfg::Ldfg &ldfg,
                                  const accel::Accelerator &accel)
{
    for (size_t i = 0; i < ldfg.size(); ++i) {
        dfg::LdfgNode &node = ldfg.node(dfg::NodeId(i));
        const double op = accel.measuredNodeLatency(node.id);
        if (op >= 0.0)
            node.op_latency = op;
        // Stored edge measurements refine the standing performance
        // model; the mapper itself evaluates candidate positions with
        // the interconnect model (measurements are placement-bound).
        node.edge_lat1 = accel.measuredEdgeLatency(node.id, 0);
        node.edge_lat2 = accel.measuredEdgeLatency(node.id, 1);
    }
}

OptimizeOutcome
IterativeOptimizer::optimize(dfg::Ldfg &ldfg,
                             double current_model_latency) const
{
    OptimizeOutcome out;
    out.old_model_latency = current_model_latency;

    MapResult remap = mapper_.map(ldfg);
    out.new_model_latency = remap.model_latency;

    if (remap.model_latency <
        current_model_latency * (1.0 - threshold_)) {
        out.remapped = true;
        out.map = std::move(remap);
        // Measured edge latencies belong to the old placement; the
        // new one starts from the interconnect model again.
        for (size_t i = 0; i < ldfg.size(); ++i) {
            ldfg.node(dfg::NodeId(i)).edge_lat1 = -1.0;
            ldfg.node(dfg::NodeId(i)).edge_lat2 = -1.0;
        }
    }
    return out;
}

} // namespace mesa::core
