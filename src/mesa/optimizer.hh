/**
 * @file
 * Iterative optimization (paper F3, §1): MESA continuously refines
 * its DFG performance model with the accelerator's latency counters
 * and re-runs the mapping algorithm; if the data-driven remap beats
 * the current configuration's modeled latency by a margin worth a
 * reconfiguration, the accelerator is reprogrammed.
 */

#ifndef MESA_MESA_OPTIMIZER_HH
#define MESA_MESA_OPTIMIZER_HH

#include "accel/accelerator.hh"
#include "dfg/ldfg.hh"
#include "mesa/mapper.hh"

namespace mesa::core
{

/** Outcome of one optimization attempt. */
struct OptimizeOutcome
{
    bool remapped = false;
    double old_model_latency = 0.0;
    double new_model_latency = 0.0;
    MapResult map; ///< The new mapping, valid when remapped.
};

/** Feedback-driven remapper. */
class IterativeOptimizer
{
  public:
    /**
     * @param improvement_threshold minimum fractional model-latency
     *        gain that justifies paying a reconfiguration
     */
    explicit IterativeOptimizer(const InstructionMapper &mapper,
                                double improvement_threshold = 0.02)
        : mapper_(mapper), threshold_(improvement_threshold)
    {}

    /**
     * Refresh the LDFG's node weights (and stored edge measurements)
     * from the accelerator's performance counters. Load nodes pick up
     * their measured per-entry AMAT; other nodes their observed
     * execution latency.
     */
    static void applyFeedback(dfg::Ldfg &ldfg,
                              const accel::Accelerator &accel);

    /**
     * Attempt a remap of the (feedback-refreshed) LDFG against the
     * current mapping's modeled latency.
     */
    OptimizeOutcome optimize(dfg::Ldfg &ldfg,
                             double current_model_latency) const;

  private:
    const InstructionMapper &mapper_;
    double threshold_;
};

} // namespace mesa::core

#endif // MESA_MESA_OPTIMIZER_HH
