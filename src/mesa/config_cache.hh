/**
 * @file
 * Configuration cache (paper §4.3): MESA stores configurations for
 * loops it has already mapped so a re-encountered region (e.g., the
 * hot loop of an outer iteration) skips the encode/map/configure
 * pipeline entirely.
 */

#ifndef MESA_MESA_CONFIG_CACHE_HH
#define MESA_MESA_CONFIG_CACHE_HH

#include <cstdint>
#include <list>
#include <utility>

#include "accel/config_types.hh"
#include "util/stats.hh"

namespace mesa::core
{

/** Small fully-associative LRU cache of region configurations. */
class ConfigCache
{
  public:
    explicit ConfigCache(size_t capacity = 8) : capacity_(capacity) {}

    /** Find a configuration for the region starting at this pc. */
    const accel::AcceleratorConfig *
    lookup(uint32_t region_start)
    {
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (it->first == region_start) {
                entries_.splice(entries_.begin(), entries_, it);
                ++hits_;
                return &entries_.front().second;
            }
        }
        ++misses_;
        return nullptr;
    }

    /** Insert (or replace) the configuration for its region. */
    void
    insert(accel::AcceleratorConfig config)
    {
        const uint32_t key = config.region_start;
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (it->first == key) {
                it->second = std::move(config);
                entries_.splice(entries_.begin(), entries_, it);
                return;
            }
        }
        entries_.emplace_front(key, std::move(config));
        if (entries_.size() > capacity_)
            entries_.pop_back();
    }

    /** Drop a region (e.g., after its mapping proved invalid). */
    void
    invalidate(uint32_t region_start)
    {
        entries_.remove_if([&](const auto &e) {
            return e.first == region_start;
        });
    }

    size_t size() const { return entries_.size(); }
    uint64_t hits() const { return hits_.value(); }
    uint64_t misses() const { return misses_.value(); }

  private:
    size_t capacity_;
    std::list<std::pair<uint32_t, accel::AcceleratorConfig>> entries_;
    Counter hits_{"hits"};
    Counter misses_{"misses"};
};

} // namespace mesa::core

#endif // MESA_MESA_CONFIG_CACHE_HH
