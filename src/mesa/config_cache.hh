/**
 * @file
 * Configuration cache (paper §4.3): MESA stores configurations for
 * loops it has already mapped so a re-encountered region (e.g., the
 * hot loop of an outer iteration) skips the encode/map/configure
 * pipeline entirely. Lookup and insert go through a keyed index
 * (region start pc -> entry); a separate recency list keeps the LRU
 * eviction order.
 */

#ifndef MESA_MESA_CONFIG_CACHE_HH
#define MESA_MESA_CONFIG_CACHE_HH

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>

#include "accel/config_types.hh"
#include "util/stats.hh"
#include "util/stats_registry.hh"

namespace mesa::absint
{
struct BodyCertificate;
}

namespace mesa::core
{

/** Small fully-associative LRU cache of region configurations. */
class ConfigCache
{
  public:
    explicit ConfigCache(size_t capacity = 8) : capacity_(capacity) {}

    /**
     * Find a configuration for the region starting at this pc whose
     * body tag matches. The tag (a CRC over the region's instruction
     * encodings) guards shared backends: different programs assembled
     * at the same base address collide on pc alone, and serving a
     * stale config would silently compute the wrong kernel. A
     * pc-present/tag-mismatch probe counts as a miss (and a recorded
     * conflict); the subsequent insert replaces the stale entry.
     */
    const accel::AcceleratorConfig *
    lookup(uint32_t region_start, uint32_t body_tag = 0)
    {
        auto idx = index_.find(region_start);
        if (idx == index_.end()) {
            ++misses_;
            return nullptr;
        }
        if (idx->second->tag != body_tag) {
            ++misses_;
            ++tag_conflicts_;
            return nullptr;
        }
        entries_.splice(entries_.begin(), entries_, idx->second);
        idx->second = entries_.begin();
        ++hits_;
        return &entries_.front().config;
    }

    /**
     * Insert (or replace in place) the configuration for its region,
     * optionally with the body's abstract-interpretation certificate.
     * The certificate is pure function of the body (keyed by the same
     * CRC tag), so a cache hit also revives the static proof without
     * re-running the fixpoint.
     */
    void
    insert(accel::AcceleratorConfig config, uint32_t body_tag = 0,
           std::shared_ptr<const absint::BodyCertificate> cert = nullptr)
    {
        const uint32_t key = config.region_start;
        if (auto idx = index_.find(key); idx != index_.end()) {
            // A tag change means a different body now owns the region:
            // any stored certificate proves the old body, drop it.
            if (cert || idx->second->tag != body_tag)
                idx->second->cert = std::move(cert);
            idx->second->tag = body_tag;
            idx->second->config = std::move(config);
            entries_.splice(entries_.begin(), entries_, idx->second);
            idx->second = entries_.begin();
            return;
        }
        entries_.push_front(
            Entry{key, body_tag, std::move(config), std::move(cert)});
        index_[key] = entries_.begin();
        if (entries_.size() > capacity_) {
            index_.erase(entries_.back().key);
            entries_.pop_back();
            ++evictions_;
        }
    }

    /**
     * Peek at the stored certificate for a region without disturbing
     * the LRU order or the hit/miss counters (callers probe this
     * right after a lookup() already accounted the access). Null when
     * the region is absent, the tag mismatches, or no certificate was
     * stored.
     */
    std::shared_ptr<const absint::BodyCertificate>
    certificate(uint32_t region_start, uint32_t body_tag = 0) const
    {
        auto idx = index_.find(region_start);
        if (idx == index_.end() || idx->second->tag != body_tag)
            return nullptr;
        return idx->second->cert;
    }

    /** Drop every entry (e.g., after PEs were quarantined: any cached
     *  placement may route through the retired resources). */
    void
    clear()
    {
        entries_.clear();
        index_.clear();
    }

    /** Drop a region (e.g., after its mapping proved invalid). */
    void
    invalidate(uint32_t region_start)
    {
        auto idx = index_.find(region_start);
        if (idx == index_.end())
            return;
        entries_.erase(idx->second);
        index_.erase(idx);
    }

    /** Link the live hit/miss/eviction counters under @p prefix. */
    void
    registerStats(StatsRegistry &registry,
                  const std::string &prefix) const
    {
        registry.linkCounter(prefix + "hits", hits_);
        registry.linkCounter(prefix + "misses", misses_);
        registry.linkCounter(prefix + "evictions", evictions_);
        registry.linkCounter(prefix + "tag_conflicts", tag_conflicts_);
    }

    size_t size() const { return entries_.size(); }
    uint64_t hits() const { return hits_.value(); }
    uint64_t misses() const { return misses_.value(); }
    uint64_t evictions() const { return evictions_.value(); }
    uint64_t tagConflicts() const { return tag_conflicts_.value(); }

  private:
    struct Entry
    {
        uint32_t key;
        uint32_t tag;
        accel::AcceleratorConfig config;
        std::shared_ptr<const absint::BodyCertificate> cert;
    };
    using EntryList = std::list<Entry>;

    size_t capacity_;
    EntryList entries_; ///< MRU first; back is the eviction victim.
    std::unordered_map<uint32_t, EntryList::iterator> index_;
    Counter hits_{"hits"};
    Counter misses_{"misses"};
    Counter evictions_{"evictions"};
    Counter tag_conflicts_{"tag_conflicts"};
};

} // namespace mesa::core

#endif // MESA_MESA_CONFIG_CACHE_HH
