/**
 * @file
 * Timing model of MESA's instruction-mapping state machine (paper
 * Fig. 8). Each LDFG instruction passes through the imap stages; the
 * reduction stage's cycle count depends on the candidate-matrix
 * dimensions, all other stages are constant. The FSM loops until all
 * instructions are mapped, yielding the hardware mapping latency that
 * dominates MESA's sub-microsecond configuration time (Table 2).
 */

#ifndef MESA_MESA_IMAP_FSM_HH
#define MESA_MESA_IMAP_FSM_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace mesa
{
class Tracer;
}

namespace mesa::core
{

/** The imap FSM states, one per Algorithm 1 task (paper Fig. 8). */
enum class ImapState : uint8_t
{
    Idle = 0,
    Fetch,      ///< Read the next instruction from the LDFG.
    Rename,     ///< Look up s1/s2 producers (Alg. 1 lines 2-3).
    CandGen,    ///< Generate the candidate matrix (line 4).
    Filter,     ///< Mask by F_free and F_op (line 5).
    Reduce,     ///< Latency evaluation + min reduction (lines 8-18).
    Writeback,  ///< Commit the placement to the SDFG (line 19).
    Done,
    NumStates
};

const char *imapStateName(ImapState state);

/** Per-instruction stage-cycle record (for the Fig. 8 bench). */
struct ImapTraceEntry
{
    int instruction = 0;
    std::array<uint32_t, size_t(ImapState::NumStates)> stage_cycles{};
    uint32_t total = 0;
};

/**
 * Cycle-accounting FSM. The mapper drives one mapInstruction() call
 * per LDFG node; reduction cycles scale with the candidate count
 * (a log2-depth comparator tree processing one candidate row per
 * cycle), and a full-grid rescan (fallback search) adds extra
 * reduction passes.
 */
class ImapFsm
{
  public:
    ImapFsm() = default;

    /**
     * Account the mapping of one instruction.
     *
     * @param candidates number of candidate positions evaluated
     * @param rescans extra full-window passes (fallback searches)
     * @return cycles consumed for this instruction
     */
    uint32_t mapInstruction(unsigned candidates, unsigned rescans = 0);

    /** Total cycles consumed since construction/reset. */
    uint64_t totalCycles() const { return total_cycles_; }

    /** Number of instructions mapped. */
    uint64_t instructionsMapped() const { return trace_.size(); }

    const std::vector<ImapTraceEntry> &trace() const { return trace_; }

    void reset();

  private:
    uint64_t total_cycles_ = 0;
    std::vector<ImapTraceEntry> trace_;
};

/**
 * Lay a recorded imap pass on a tracer track: one span per mapped
 * instruction (duration = its total stage cycles, reduce cycles and
 * candidate depth as args), packed back-to-back from @p base_cycle —
 * the FSM maps strictly sequentially, so the packing is exact.
 *
 * @return the cycle one past the last span (base + total cycles)
 */
uint64_t emitImapTrace(Tracer &tracer, const std::string &track,
                       const std::vector<ImapTraceEntry> &trace,
                       uint64_t base_cycle);

} // namespace mesa::core

#endif // MESA_MESA_IMAP_FSM_HH
