#include "mesa/mapper.hh"

#include <algorithm>
#include <limits>
#include <tuple>

#include "util/debug.hh"
#include "util/logging.hh"

namespace mesa::core
{

using dfg::Ldfg;
using dfg::NodeId;
using dfg::NoNode;
using dfg::Sdfg;
using ic::Coord;

InstructionMapper::InstructionMapper(const accel::AccelParams &accel,
                                     const ic::Interconnect &interconnect,
                                     const MapperParams &params)
    : accel_(accel), ic_(interconnect), params_(params)
{
}

void
InstructionMapper::setBlockedPes(const std::vector<Coord> &pes,
                                 int fold_rows)
{
    blocked_ = pes;
    fold_rows_ = fold_rows;
}

bool
InstructionMapper::blocked(Coord pos) const
{
    if (blocked_.empty())
        return false;
    const Coord phys =
        fold_rows_ > 0 ? Coord{pos.r % fold_rows_, pos.c} : pos;
    for (const Coord &b : blocked_)
        if (phys == b)
            return true;
    return false;
}

Coord
InstructionMapper::anchor(const Ldfg &ldfg, const Sdfg &sdfg, NodeId id,
                          const std::vector<double> &completion,
                          Coord cursor) const
{
    // The candidate matrix is positioned based on the predecessor
    // with higher latency (it necessarily lies on the instruction's
    // critical path), so placing near it minimizes the critical
    // transfer (paper §3.3).
    const dfg::LdfgNode &node = ldfg.node(id);
    NodeId best = NoNode;
    double best_completion = -1.0;

    auto consider = [&](NodeId src) {
        if (src == NoNode || !sdfg.isPlaced(src))
            return;
        if (completion[size_t(src)] > best_completion) {
            best_completion = completion[size_t(src)];
            best = src;
        }
    };
    consider(node.src1);
    consider(node.src2);
    for (NodeId g : node.guards)
        consider(g);

    if (best != NoNode)
        return sdfg.coordOf(best);
    // No placed predecessor (pure live-in node): anchor at the grid
    // origin so independent sources pack into the same corner (dense
    // placements tile more instances and stay off the NoC).
    (void)cursor;
    return Coord{0, 0};
}

MapResult
InstructionMapper::map(const Ldfg &ldfg) const
{
    const int rows = accel_.rows;
    const int cols = accel_.cols;

    MapResult res;
    res.sdfg = Sdfg(rows, cols);
    res.completion.assign(ldfg.size(), 0.0);

    dfg::LatencyModel model(ldfg, res.sdfg, ic_,
                            params_.fallback_bus_latency);
    ImapFsm fsm;
    Coord cursor{0, 0};

    // FP-slice avoidance only matters when the graph competes for FP
    // slots; integer-only graphs may pack anywhere.
    const bool has_fp =
        ldfg.countClass(riscv::OpClass::FpAlu) +
            ldfg.countClass(riscv::OpClass::FpMul) +
            ldfg.countClass(riscv::OpClass::FpDiv) >
        0;

    for (size_t idx = 0; idx < ldfg.size(); ++idx) {
        const NodeId id = NodeId(idx);
        const dfg::LdfgNode &node = ldfg.node(id);
        const riscv::OpClass cls = node.inst.cls();

        const Coord base = anchor(ldfg, res.sdfg, id, res.completion,
                                  cursor);

        // Candidate window: fixed cand_rows x cand_cols centered on
        // the anchor, clamped into the grid.
        int r0 = base.r - params_.cand_rows / 2;
        int c0 = base.c - params_.cand_cols / 2;
        r0 = std::clamp(r0, 0, std::max(0, rows - params_.cand_rows));
        c0 = std::clamp(c0, 0, std::max(0, cols - params_.cand_cols));
        const int r1 = std::min(rows, r0 + params_.cand_rows);
        const int c1 = std::min(cols, c0 + params_.cand_cols);

        double min_latency = std::numeric_limits<double>::infinity();
        Coord min_pos{};
        int min_wastes_fp = std::numeric_limits<int>::max();
        int min_dist = std::numeric_limits<int>::max();
        int min_free_neighbors = -1;
        unsigned candidates = 0;

        auto evaluate = [&](int rr, int cc) {
            const Coord pos{rr, cc};
            // C_i = C_free (*) C_op: occupied or incompatible PEs are
            // filtered out (Algorithm 1 line 5); the faulty-PE map
            // masks quarantined PEs out of F_free.
            if (!res.sdfg.isFree(pos) || !accel_.supportsOp(pos, cls) ||
                blocked(pos))
                return;
            ++candidates;
            const double lat =
                model.expectedLatencyAt(id, pos, res.completion);
            const bool is_fp_class = cls == riscv::OpClass::FpAlu ||
                                     cls == riscv::OpClass::FpMul ||
                                     cls == riscv::OpClass::FpDiv;
            // Non-FP ops should not squat on scarce FP slices (only
            // relevant when FP ops will compete for them).
            const int wastes_fp =
                (has_fp && !is_fp_class &&
                 accel_.supportsOp(pos, riscv::OpClass::FpAlu))
                    ? 1
                    : 0;
            const int dist = ic::manhattan(pos, base);
            const int free_nb = res.sdfg.freeNeighbors(pos);
            // Minimize latency; tie-break away from FP slices for
            // integer ops, then toward the anchor (compact placements
            // tile densely and stay off the NoC), then toward freer
            // neighborhoods (room for subsequent instructions).
            const auto key =
                std::tuple(lat, wastes_fp, dist, -free_nb);
            const auto best_key = std::tuple(min_latency, min_wastes_fp,
                                             min_dist,
                                             -min_free_neighbors);
            if (key < best_key) {
                min_latency = lat;
                min_pos = pos;
                min_wastes_fp = wastes_fp;
                min_dist = dist;
                min_free_neighbors = free_nb;
            }
        };

        for (int rr = r0; rr < r1; ++rr)
            for (int cc = c0; cc < c1; ++cc)
                evaluate(rr, cc);

        unsigned rescans = 0;
        if (candidates == 0 && params_.allow_rescan) {
            // Fallback pass: widen to the whole grid.
            ++rescans;
            for (int rr = 0; rr < rows; ++rr)
                for (int cc = 0; cc < cols; ++cc)
                    evaluate(rr, cc);
        }

        fsm.mapInstruction(candidates, rescans);

        if (candidates == 0) {
            // No compatible free PE anywhere: this instruction reverts
            // to the secondary bus (slower but unrestrictive).
            res.unmapped.push_back(id);
            res.completion[idx] =
                model.expectedLatencyAt(id, Coord{}, res.completion);
            continue;
        }

        const bool placed = res.sdfg.place(id, min_pos);
        MESA_ASSERT(placed, "mapper: chosen position was not free");
        res.completion[idx] = min_latency;
        cursor = min_pos;
        DTRACE("mapper", "i" << id << " "
                             << riscv::opName(node.inst.op) << " -> ("
                             << min_pos.r << "," << min_pos.c
                             << ") L=" << min_latency << " ("
                             << candidates << " candidates)");
    }

    res.mapping_cycles = fsm.totalCycles();
    res.imap_trace = fsm.trace();
    res.model_latency =
        *std::max_element(res.completion.begin(), res.completion.end());
    return res;
}

} // namespace mesa::core
