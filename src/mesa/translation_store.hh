/**
 * @file
 * Persistent cross-run translation cache: serializes fully translated
 * regions (PreparedRegion — LDFG, placement, configuration, options,
 * certificate) to a directory of per-entry files, so a later process
 * warm-starts the same program without re-running LDFG encode (T1),
 * instruction mapping (T2), or configuration generation (T3).
 *
 * The store is pure simulator-side memoization of prepare(): the
 * modeled hardware timing (encode/mapping/config cycles) is carried
 * inside the serialized entry, so every output — campaign JSON,
 * profiler reports, service digests, stats — is byte-identical with
 * and without a cache directory.
 *
 * Keying: a translated region is a pure function of the loop body,
 * the parallel hint, the region bounds, the prepare-relevant MESA
 * parameters (accelerator geometry, mapper window, optimization
 * switches), and the blocked-PE set. Entries are keyed by CRCs of all
 * of these; any difference is a different file name, so geometry or
 * blocked-set changes can never serve a stale translation.
 *
 * Integrity: every file carries a magic, a format version, an echo of
 * its key, and a whole-file CRC-32. A truncated, bit-flipped,
 * version-skewed, or misnamed file is ignored (counted, never
 * trusted) and the region is translated cold — after which the entry
 * is rewritten, self-healing the store. Writes go to a temp file
 * followed by an atomic rename, so concurrent writers (campaign
 * shards) and crashed runs never publish a partial entry.
 *
 * The process-global store is inert until setDirectory() is called
 * (the CLIs' --cache-dir flag); without it every call is a cheap
 * no-op and the controller behaves exactly as before.
 */

#ifndef MESA_MESA_TRANSLATION_STORE_HH
#define MESA_MESA_TRANSLATION_STORE_HH

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "mesa/controller.hh"

namespace mesa::core
{

/** Composite key of one persisted translation. */
struct TranslationKey
{
    uint32_t region_start = 0;
    uint32_t region_end = 0;
    uint32_t body_tag = 0;   ///< CRC over the body's (pc, raw) pairs.
    uint32_t params_crc = 0; ///< paramsFingerprint(MesaParams).
    uint32_t blocked_crc = 0; ///< blockedPeDigest(faulty PEs).
    bool parallel_hint = false;
};

/**
 * CRC-32 fingerprint over every MesaParams field prepare() depends
 * on. Deliberately a superset (cheap insurance): a changed field that
 * could not affect translation only costs a cold run.
 */
uint32_t paramsFingerprint(const MesaParams &params);

/** Order-independent digest of a blocked-PE coordinate set. */
uint32_t blockedPeDigest(const std::vector<ic::Coord> &coords);

/** The process-global persistent translation store. */
class TranslationStore
{
  public:
    static TranslationStore &global();

    /**
     * Point the store at a directory (created if absent); an empty
     * string disables it again. Call once at startup, before any
     * controller runs.
     */
    void setDirectory(const std::string &dir);

    bool enabled() const { return !dir_.empty(); }
    const std::string &directory() const { return dir_; }

    /** File path an entry for @p key lives at (test introspection). */
    std::string entryPath(const TranslationKey &key) const;

    /**
     * Probe the store. On Hit, @p out holds the deserialized region
     * (integrity-checked: whole-file CRC, key echo, and the config's
     * own semantic CRC all verified). Every other outcome leaves
     * @p out untouched and the caller translates cold.
     */
    PersistOutcome load(const TranslationKey &key,
                        PreparedRegion &out) const;

    /** Persist a freshly translated region (temp file + rename). */
    PersistOutcome store(const TranslationKey &key,
                         const PreparedRegion &prep) const;

  private:
    TranslationStore() = default;

    std::string dir_;
    mutable std::mutex mutex_; ///< Guards setDirectory vs file ops.

    /**
     * In-process memo over the disk entries: a file is parsed at most
     * once per process; later probes of the same key copy the live
     * object (a few µs) instead of re-reading and re-deserializing
     * (tens of µs — more than a cold translation for small bodies).
     * Populated on load only, never on store, so a fresh process (or
     * a test corrupting files on disk) always exercises the full
     * integrity-checked disk path first.
     */
    mutable std::unordered_map<std::string,
                               std::shared_ptr<const PreparedRegion>>
        memo_;
};

} // namespace mesa::core

#endif // MESA_MESA_TRANSLATION_STORE_HH
