/**
 * @file
 * MESA's ConfigBlock (T3 Decode): lowers an optimized SDFG to an
 * accelerator configuration bitstream, applying the memory
 * optimizations of paper §4.2 (static store->load forwarding,
 * vectorization, speculative prefetch) and the loop-level
 * optimizations of §4.3 (spatial tiling by SDFG duplication,
 * pipelining) for parallel-annotated loops.
 */

#ifndef MESA_MESA_CONFIG_BUILDER_HH
#define MESA_MESA_CONFIG_BUILDER_HH

#include "accel/config_types.hh"
#include "accel/params.hh"
#include "dfg/analysis.hh"
#include "dfg/ldfg.hh"
#include "dfg/sdfg.hh"

namespace mesa::core
{

/** Per-region configuration options. */
struct ConfigOptions
{
    bool enable_forwarding = true;
    bool enable_vectorization = true;
    bool enable_prefetch = true;

    /** Number of tiled SDFG instances (1 = no tiling). */
    int tile_factor = 1;

    /** Overlap successive iterations on one instance. */
    bool pipelined = false;

    /**
     * Time-multiplexing factor (extension): the SDFG was mapped on a
     * virtual grid of time_multiplex x rows; virtual rows fold onto
     * physical rows, so up to this many instructions share one PE.
     */
    int time_multiplex = 1;

    /** Offsets applied to latched live-ins of every instance (the
     *  unroll extension tightens the loop bound this way). */
    std::map<int, int32_t> live_in_adjustments;

    /** Override for the completion pc (0 = region_end). */
    uint32_t resume_pc = 0;
};

/** Lowers (LDFG, SDFG) to an AcceleratorConfig. */
class ConfigBlock
{
  public:
    explicit ConfigBlock(const accel::AccelParams &accel)
        : accel_(accel)
    {}

    /**
     * Build the configuration.
     *
     * @param region_start loop body start pc
     * @param region_end pc one past the closing branch
     */
    accel::AcceleratorConfig build(const dfg::Ldfg &ldfg,
                                   const dfg::Sdfg &sdfg,
                                   const ConfigOptions &options,
                                   uint32_t region_start,
                                   uint32_t region_end) const;

    /** Cycles to stream the bitstream into the accelerator. */
    uint64_t configCycles(const accel::AcceleratorConfig &config) const;

    /**
     * Largest tile factor the grid supports for this placement:
     * instances stack vertically at a stride rounded to the FP-slice
     * period so operation compatibility is preserved.
     */
    static int maxTileFactor(const dfg::Sdfg &sdfg,
                             const accel::AccelParams &accel);

  private:
    const accel::AccelParams &accel_;
};

} // namespace mesa::core

#endif // MESA_MESA_CONFIG_BUILDER_HH
