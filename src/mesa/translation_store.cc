#include "mesa/translation_store.hh"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "util/archive.hh"
#include "util/crc32.hh"
#include "util/logging.hh"

namespace mesa::core
{

namespace fs = std::filesystem;
using riscv::Instruction;

namespace
{

/** File format version; bump on any layout change. */
constexpr uint32_t StoreMagic = 0x4354534d; // "MSTC"
constexpr uint32_t StoreVersion = 1;

/** Sanity cap on entry files: a translated region is a few KB; far
 *  larger files are garbage regardless of their CRC. */
constexpr uint64_t MaxEntryBytes = 64u << 20;

/** In-process memo bound: distinct translated regions per run are
 *  typically in the dozens; past this the memo simply restarts. */
constexpr size_t MaxMemoEntries = 256;

// ----- writers -----

void
putInst(BinaryWriter &w, const Instruction &inst)
{
    w.u32(uint32_t(inst.op));
    w.u8(inst.rd);
    w.u8(inst.rs1);
    w.u8(inst.rs2);
    w.u8(inst.rs3);
    w.i32(inst.imm);
    w.u32(inst.raw);
    w.u32(inst.pc);
}

void
putIdVec(BinaryWriter &w, const std::vector<dfg::NodeId> &v)
{
    w.u64(v.size());
    for (dfg::NodeId id : v)
        w.i32(id);
}

void
putIntMap(BinaryWriter &w, const std::map<int, int32_t> &m)
{
    w.u64(m.size());
    for (const auto &[k, v] : m) {
        w.i32(k);
        w.i32(v);
    }
}

void
putLdfg(BinaryWriter &w, const dfg::Ldfg &g)
{
    w.u64(g.size());
    for (const dfg::LdfgNode &n : g.nodes()) {
        putInst(w, n.inst);
        w.i32(n.id);
        w.i32(n.src1);
        w.i32(n.src2);
        w.i32(n.live_in1);
        w.i32(n.live_in2);
        w.i32(n.prev_dest_writer);
        w.i32(n.prev_dest_live_in);
        putIdVec(w, n.guards);
        putIdVec(w, n.consumers);
        w.f64(n.op_latency);
        w.f64(n.edge_lat1);
        w.f64(n.edge_lat2);
    }
    w.u64(g.liveIns().size());
    for (int reg : g.liveIns())
        w.i32(reg);
    w.u64(g.writtenRegs().size());
    for (int reg : g.writtenRegs())
        w.i32(reg);
    for (int reg = 0; reg < int(riscv::NumUnifiedRegs); ++reg)
        w.i32(g.finalRename().lookup(reg));
}

void
putMap(BinaryWriter &w, const MapResult &m)
{
    w.i32(m.sdfg.rows());
    w.i32(m.sdfg.cols());
    w.u64(m.sdfg.placedCount());
    for (int r = 0; r < m.sdfg.rows(); ++r) {
        for (int c = 0; c < m.sdfg.cols(); ++c) {
            const dfg::NodeId id = m.sdfg.at({r, c});
            if (id == dfg::NoNode)
                continue;
            w.i32(id);
            w.i32(r);
            w.i32(c);
        }
    }
    putIdVec(w, m.unmapped);
    w.u64(m.completion.size());
    for (double v : m.completion)
        w.f64(v);
    w.f64(m.model_latency);
    w.u64(m.mapping_cycles);
    w.u64(m.imap_trace.size());
    for (const ImapTraceEntry &e : m.imap_trace) {
        w.i32(e.instruction);
        for (uint32_t cycles : e.stage_cycles)
            w.u32(cycles);
        w.u32(e.total);
    }
}

void
putConfig(BinaryWriter &w, const accel::AcceleratorConfig &cfg)
{
    w.u32(cfg.region_start);
    w.u32(cfg.region_end);
    w.u32(cfg.resume_pc);
    w.i32(cfg.rows);
    w.i32(cfg.cols);
    w.u64(cfg.slots.size());
    for (const accel::PeSlot &s : cfg.slots) {
        w.i32(s.node);
        putInst(w, s.inst);
        w.i32(s.pos.r);
        w.i32(s.pos.c);
        w.i32(s.src1);
        w.i32(s.src2);
        w.i32(s.live_in1);
        w.i32(s.live_in2);
        putIdVec(w, s.guards);
        w.i32(s.prev_dest_writer);
        w.i32(s.prev_dest_live_in);
        w.f64(s.op_latency);
        w.i32(s.forward_from_store);
        w.i32(s.vector_group);
        w.boolean(s.vector_leader);
        w.boolean(s.prefetch);
        w.i32(s.prefetch_stride);
    }
    w.u64(cfg.live_ins.size());
    for (int reg : cfg.live_ins)
        w.i32(reg);
    w.u64(cfg.live_outs.size());
    for (const auto &[reg, node] : cfg.live_outs) {
        w.i32(reg);
        w.i32(node);
    }
    w.u64(cfg.inductions.size());
    for (const dfg::InductionReg &ind : cfg.inductions) {
        w.i32(ind.unified_reg);
        w.i32(ind.update_node);
        w.i32(ind.step);
    }
    w.u64(cfg.imm_overrides.size());
    for (const auto &[node, imm] : cfg.imm_overrides) {
        w.i32(node);
        w.i32(imm);
    }
    w.u64(cfg.instances.size());
    for (const accel::TileInstance &t : cfg.instances) {
        w.i32(t.origin.r);
        w.i32(t.origin.c);
        putIntMap(w, t.reg_offsets);
    }
    w.boolean(cfg.pipelined);
    w.i32(cfg.time_multiplex);
    w.u64(cfg.config_words);
    w.f64(cfg.model_latency);
    w.u32(cfg.crc);
}

void
putCert(BinaryWriter &w, const absint::BodyCertificate &cert)
{
    w.u64(cert.nodes);
    w.u64(cert.mem_nodes);
    w.boolean(cert.converged);
    w.i32(cert.fixpoint_rounds);
    w.u64(cert.footprint.size());
    for (const absint::FootprintEntry &f : cert.footprint) {
        w.i32(f.node);
        w.u32(f.pc);
        w.u32(uint32_t(f.op));
        w.boolean(f.is_store);
        w.u8(f.size);
        w.boolean(f.known);
        w.i32(f.base);
        w.i64(f.lo);
        w.i64(f.hi);
        w.i64(f.step);
        w.i64(f.stride_mod);
        w.i64(f.stride_rem);
    }
    const absint::TripBound &t = cert.trip;
    w.boolean(t.valid);
    w.u32(uint32_t(t.op));
    w.boolean(t.ind_is_lhs);
    w.i32(t.ind_base);
    w.i64(t.first);
    w.i64(t.step);
    w.i32(t.bound_base);
    w.i64(t.bound_off);
    w.u64(cert.per_iter_cycle_bound);
}

void
putPrepared(BinaryWriter &w, const PreparedRegion &prep)
{
    putLdfg(w, prep.ldfg);
    putMap(w, prep.map);
    putConfig(w, prep.config);
    const ConfigOptions &o = prep.options;
    w.boolean(o.enable_forwarding);
    w.boolean(o.enable_vectorization);
    w.boolean(o.enable_prefetch);
    w.i32(o.tile_factor);
    w.boolean(o.pipelined);
    w.i32(o.time_multiplex);
    putIntMap(w, o.live_in_adjustments);
    w.u32(o.resume_pc);
    w.u64(prep.encode_cycles);
    w.i32(prep.max_tiles);
    w.u32(prep.body_tag);
    w.boolean(prep.cert != nullptr);
    if (prep.cert)
        putCert(w, *prep.cert);
}

// ----- readers (every count validated against remaining bytes) -----

bool
getCount(BinaryReader &r, size_t min_elem, size_t &out)
{
    const uint64_t n = r.u64();
    if (!r.ok() || n > r.remaining() / min_elem)
        return false;
    out = size_t(n);
    return true;
}

Instruction
getInst(BinaryReader &r)
{
    Instruction inst;
    inst.op = riscv::Op(r.u32());
    inst.rd = r.u8();
    inst.rs1 = r.u8();
    inst.rs2 = r.u8();
    inst.rs3 = r.u8();
    inst.imm = r.i32();
    inst.raw = r.u32();
    inst.pc = r.u32();
    return inst;
}

bool
getIdVec(BinaryReader &r, std::vector<dfg::NodeId> &out)
{
    size_t n = 0;
    if (!getCount(r, 4, n))
        return false;
    out.resize(n);
    for (size_t i = 0; i < n; ++i)
        out[i] = r.i32();
    return r.ok();
}

bool
getIntMap(BinaryReader &r, std::map<int, int32_t> &out)
{
    size_t n = 0;
    if (!getCount(r, 8, n))
        return false;
    for (size_t i = 0; i < n; ++i) {
        const int k = r.i32();
        out[k] = r.i32();
    }
    return r.ok();
}

bool
getIntSet(BinaryReader &r, std::set<int> &out)
{
    size_t n = 0;
    if (!getCount(r, 4, n))
        return false;
    for (size_t i = 0; i < n; ++i)
        out.insert(r.i32());
    return r.ok();
}

bool
getLdfg(BinaryReader &r, dfg::Ldfg &out)
{
    size_t n = 0;
    if (!getCount(r, 16, n))
        return false;
    std::vector<dfg::LdfgNode> nodes(n);
    for (dfg::LdfgNode &node : nodes) {
        node.inst = getInst(r);
        node.id = r.i32();
        node.src1 = r.i32();
        node.src2 = r.i32();
        node.live_in1 = r.i32();
        node.live_in2 = r.i32();
        node.prev_dest_writer = r.i32();
        node.prev_dest_live_in = r.i32();
        if (!getIdVec(r, node.guards) ||
            !getIdVec(r, node.consumers))
            return false;
        node.op_latency = r.f64();
        node.edge_lat1 = r.f64();
        node.edge_lat2 = r.f64();
    }
    std::set<int> live_ins, written;
    if (!getIntSet(r, live_ins) || !getIntSet(r, written))
        return false;
    dfg::RenameTable rename;
    for (int reg = 0; reg < int(riscv::NumUnifiedRegs); ++reg)
        rename.update(reg, r.i32());
    if (!r.ok())
        return false;
    out = dfg::Ldfg::fromParts(std::move(nodes), std::move(live_ins),
                               std::move(written), rename);
    return true;
}

bool
getMap(BinaryReader &r, MapResult &out)
{
    const int rows = r.i32();
    const int cols = r.i32();
    if (!r.ok() || rows < 0 || cols < 0 || rows > (1 << 16) ||
        cols > (1 << 16))
        return false;
    out.sdfg = dfg::Sdfg(rows, cols);
    size_t placed = 0;
    if (!getCount(r, 12, placed))
        return false;
    for (size_t i = 0; i < placed; ++i) {
        const dfg::NodeId id = r.i32();
        const int pr = r.i32();
        const int pc = r.i32();
        if (!r.ok() || id < 0 || !out.sdfg.place(id, {pr, pc}))
            return false;
    }
    if (!getIdVec(r, out.unmapped))
        return false;
    size_t n = 0;
    if (!getCount(r, 8, n))
        return false;
    out.completion.resize(n);
    for (size_t i = 0; i < n; ++i)
        out.completion[i] = r.f64();
    out.model_latency = r.f64();
    out.mapping_cycles = r.u64();
    if (!getCount(r, 8, n))
        return false;
    out.imap_trace.resize(n);
    for (ImapTraceEntry &e : out.imap_trace) {
        e.instruction = r.i32();
        for (uint32_t &cycles : e.stage_cycles)
            cycles = r.u32();
        e.total = r.u32();
    }
    return r.ok();
}

bool
getConfig(BinaryReader &r, accel::AcceleratorConfig &cfg)
{
    cfg.region_start = r.u32();
    cfg.region_end = r.u32();
    cfg.resume_pc = r.u32();
    cfg.rows = r.i32();
    cfg.cols = r.i32();
    size_t n = 0;
    if (!getCount(r, 32, n))
        return false;
    cfg.slots.resize(n);
    for (accel::PeSlot &s : cfg.slots) {
        s.node = r.i32();
        s.inst = getInst(r);
        s.pos.r = r.i32();
        s.pos.c = r.i32();
        s.src1 = r.i32();
        s.src2 = r.i32();
        s.live_in1 = r.i32();
        s.live_in2 = r.i32();
        if (!getIdVec(r, s.guards))
            return false;
        s.prev_dest_writer = r.i32();
        s.prev_dest_live_in = r.i32();
        s.op_latency = r.f64();
        s.forward_from_store = r.i32();
        s.vector_group = r.i32();
        s.vector_leader = r.boolean();
        s.prefetch = r.boolean();
        s.prefetch_stride = r.i32();
    }
    if (!getIntSet(r, cfg.live_ins))
        return false;
    if (!getCount(r, 8, n))
        return false;
    for (size_t i = 0; i < n; ++i) {
        const int reg = r.i32();
        cfg.live_outs[reg] = r.i32();
    }
    if (!getCount(r, 12, n))
        return false;
    cfg.inductions.resize(n);
    for (dfg::InductionReg &ind : cfg.inductions) {
        ind.unified_reg = r.i32();
        ind.update_node = r.i32();
        ind.step = r.i32();
    }
    if (!getCount(r, 8, n))
        return false;
    for (size_t i = 0; i < n; ++i) {
        const dfg::NodeId node = r.i32();
        cfg.imm_overrides[node] = r.i32();
    }
    if (!getCount(r, 16, n))
        return false;
    cfg.instances.resize(n);
    for (accel::TileInstance &t : cfg.instances) {
        t.origin.r = r.i32();
        t.origin.c = r.i32();
        if (!getIntMap(r, t.reg_offsets))
            return false;
    }
    cfg.pipelined = r.boolean();
    cfg.time_multiplex = r.i32();
    cfg.config_words = size_t(r.u64());
    cfg.model_latency = r.f64();
    cfg.crc = r.u32();
    return r.ok();
}

bool
getCert(BinaryReader &r, absint::BodyCertificate &cert)
{
    cert.nodes = size_t(r.u64());
    cert.mem_nodes = size_t(r.u64());
    cert.converged = r.boolean();
    cert.fixpoint_rounds = r.i32();
    size_t n = 0;
    if (!getCount(r, 32, n))
        return false;
    cert.footprint.resize(n);
    for (absint::FootprintEntry &f : cert.footprint) {
        f.node = r.i32();
        f.pc = r.u32();
        f.op = riscv::Op(r.u32());
        f.is_store = r.boolean();
        f.size = r.u8();
        f.known = r.boolean();
        f.base = r.i32();
        f.lo = r.i64();
        f.hi = r.i64();
        f.step = r.i64();
        f.stride_mod = r.i64();
        f.stride_rem = r.i64();
    }
    absint::TripBound &t = cert.trip;
    t.valid = r.boolean();
    t.op = riscv::Op(r.u32());
    t.ind_is_lhs = r.boolean();
    t.ind_base = r.i32();
    t.first = r.i64();
    t.step = r.i64();
    t.bound_base = r.i32();
    t.bound_off = r.i64();
    cert.per_iter_cycle_bound = r.u64();
    return r.ok();
}

bool
getPrepared(BinaryReader &r, PreparedRegion &prep)
{
    if (!getLdfg(r, prep.ldfg) || !getMap(r, prep.map) ||
        !getConfig(r, prep.config))
        return false;
    ConfigOptions &o = prep.options;
    o.enable_forwarding = r.boolean();
    o.enable_vectorization = r.boolean();
    o.enable_prefetch = r.boolean();
    o.tile_factor = r.i32();
    o.pipelined = r.boolean();
    o.time_multiplex = r.i32();
    if (!getIntMap(r, o.live_in_adjustments))
        return false;
    o.resume_pc = r.u32();
    prep.encode_cycles = r.u64();
    prep.max_tiles = r.i32();
    prep.body_tag = r.u32();
    const bool has_cert = r.boolean();
    if (has_cert) {
        auto cert = std::make_shared<absint::BodyCertificate>();
        if (!getCert(r, *cert))
            return false;
        prep.cert = std::move(cert);
    }
    return r.ok();
}

void
putKey(BinaryWriter &w, const TranslationKey &key)
{
    w.u32(key.region_start);
    w.u32(key.region_end);
    w.u32(key.body_tag);
    w.u32(key.params_crc);
    w.u32(key.blocked_crc);
    w.boolean(key.parallel_hint);
}

bool
keyMatches(BinaryReader &r, const TranslationKey &key)
{
    const bool match = r.u32() == key.region_start &&
                       r.u32() == key.region_end &&
                       r.u32() == key.body_tag &&
                       r.u32() == key.params_crc &&
                       r.u32() == key.blocked_crc &&
                       r.boolean() == key.parallel_hint;
    return match && r.ok();
}

/** Unique temp-file suffix per writer (atomic publish via rename). */
std::atomic<uint64_t> temp_seq{0};

} // namespace

uint32_t
paramsFingerprint(const MesaParams &p)
{
    Crc32 crc;
    // Accelerator geometry and timing.
    crc.add32(uint32_t(p.accel.rows));
    crc.add32(uint32_t(p.accel.cols));
    crc.add32(p.accel.mem_ports);
    crc.add32(p.accel.pe_issue_interval);
    crc.addByte(p.accel.ideal_memory);
    crc.add64(std::bit_cast<uint64_t>(p.accel.dram_accesses_per_cycle));
    crc.addByte(p.accel.fp_slices);
    crc.add32(uint32_t(p.accel.noc_slice_width));
    crc.add64(std::bit_cast<uint64_t>(p.accel.fallback_bus_latency));
    const dfg::OpLatencyConfig &lat = p.accel.op_latency;
    for (double d : {lat.int_alu, lat.int_mul, lat.int_div, lat.fp_alu,
                     lat.fp_mul, lat.fp_div, lat.load, lat.store,
                     lat.branch, lat.jump})
        crc.add64(std::bit_cast<uint64_t>(d));
    crc.add32(p.accel.config_words_per_cycle);
    crc.add64(p.accel.watchdog_cycles);
    // Mapper window.
    crc.add32(uint32_t(p.mapper.cand_rows));
    crc.add32(uint32_t(p.mapper.cand_cols));
    crc.add64(std::bit_cast<uint64_t>(p.mapper.fallback_bus_latency));
    crc.addByte(p.mapper.allow_rescan);
    // Optimization switches that steer prepare().
    crc.addByte(p.enable_tiling);
    crc.addByte(p.enable_pipelining);
    crc.addByte(p.enable_vectorization);
    crc.addByte(p.enable_forwarding);
    crc.addByte(p.enable_prefetch);
    crc.addByte(p.enable_time_multiplexing);
    crc.add32(uint32_t(p.max_time_multiplex));
    crc.addByte(p.enable_unrolling);
    crc.add32(uint32_t(p.unroll_factor));
    crc.addByte(p.verify_before_offload);
    crc.add64(std::bit_cast<uint64_t>(p.max_unmapped_frac));
    // Fault-mode switches that change what prepare() produces.
    crc.addByte(p.fault.enabled);
    crc.addByte(p.fault.checked_mode);
    crc.addByte(p.fault.certificate_gating);
    return crc.value();
}

uint32_t
blockedPeDigest(const std::vector<ic::Coord> &coords)
{
    std::vector<ic::Coord> sorted = coords;
    std::sort(sorted.begin(), sorted.end(),
              [](ic::Coord a, ic::Coord b) {
                  return a.r != b.r ? a.r < b.r : a.c < b.c;
              });
    Crc32 crc;
    for (ic::Coord pos : sorted) {
        crc.add32(uint32_t(pos.r));
        crc.add32(uint32_t(pos.c));
    }
    return crc.value();
}

TranslationStore &
TranslationStore::global()
{
    static TranslationStore store;
    return store;
}

void
TranslationStore::setDirectory(const std::string &dir)
{
    std::lock_guard<std::mutex> lock(mutex_);
    dir_ = dir;
    memo_.clear(); // a different directory is a different store
    if (dir_.empty())
        return;
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec) {
        logWarn("mesa", "cannot create cache directory ", dir_, ": ",
                ec.message(), " — persistent cache disabled");
        dir_.clear();
    }
}

std::string
TranslationStore::entryPath(const TranslationKey &key) const
{
    char name[96];
    std::snprintf(name, sizeof(name),
                  "r%08x_b%08x_p%08x_f%08x_%c.mesatc",
                  key.region_start, key.body_tag, key.params_crc,
                  key.blocked_crc, key.parallel_hint ? 'p' : 's');
    return (fs::path(dir_) / name).string();
}

PersistOutcome
TranslationStore::load(const TranslationKey &key,
                       PreparedRegion &out) const
{
    if (!enabled())
        return PersistOutcome::Disabled;

    const std::string path = entryPath(key);
    {
        // In-process memo: the same entry is never re-parsed. The
        // shared_ptr is copied under the lock; the (heavier) object
        // copy happens outside it.
        std::shared_ptr<const PreparedRegion> hit;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = memo_.find(path);
            if (it != memo_.end())
                hit = it->second;
        }
        if (hit) {
            out = *hit;
            return PersistOutcome::Hit;
        }
    }

    std::ifstream f(path, std::ios::binary);
    if (!f)
        return PersistOutcome::Miss;
    std::string bytes((std::istreambuf_iterator<char>(f)),
                      std::istreambuf_iterator<char>());
    // Header (magic + version + key echo) + whole-file CRC minimum.
    constexpr size_t MinBytes = 4 + 4 + 21 + 4;
    if (!f.good() || bytes.size() < MinBytes ||
        bytes.size() > MaxEntryBytes)
        return PersistOutcome::Corrupt;

    // Whole-file CRC over everything before the trailing CRC word.
    const size_t body_len = bytes.size() - 4;
    BinaryReader tail(bytes.data() + body_len, 4);
    if (crc32(bytes.data(), body_len) != tail.u32())
        return PersistOutcome::Corrupt;

    BinaryReader r(bytes.data(), body_len);
    if (r.u32() != StoreMagic)
        return PersistOutcome::Corrupt;
    if (r.u32() != StoreVersion)
        return PersistOutcome::VersionSkew;
    if (!keyMatches(r, key))
        return PersistOutcome::KeyMismatch;

    PreparedRegion prep;
    if (!getPrepared(r, prep) || r.remaining() != 0)
        return PersistOutcome::Corrupt;
    // Belt and braces: the config's own semantic CRC must re-derive,
    // the same gate the controller applies before streaming. A wrong
    // configuration can never be served from disk.
    if (accel::configCrc(prep.config) != prep.config.crc ||
        prep.body_tag != key.body_tag)
        return PersistOutcome::Corrupt;
    out = prep;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (memo_.size() >= MaxMemoEntries)
            memo_.clear(); // crude but bounded; entries are small
        memo_.emplace(path,
                      std::make_shared<const PreparedRegion>(
                          std::move(prep)));
    }
    return PersistOutcome::Hit;
}

PersistOutcome
TranslationStore::store(const TranslationKey &key,
                        const PreparedRegion &prep) const
{
    if (!enabled())
        return PersistOutcome::Disabled;

    BinaryWriter w;
    w.u32(StoreMagic);
    w.u32(StoreVersion);
    putKey(w, key);
    putPrepared(w, prep);
    const uint32_t crc = crc32(w.data().data(), w.size());

    const std::string path = entryPath(key);
    const std::string tmp =
        path + ".tmp" +
        std::to_string(temp_seq.fetch_add(1, std::memory_order_relaxed));
    {
        std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
        if (!f)
            return PersistOutcome::StoreFailed;
        f.write(w.data().data(), std::streamsize(w.size()));
        const char tail[4] = {char(crc), char(crc >> 8),
                              char(crc >> 16), char(crc >> 24)};
        f.write(tail, 4);
        if (!f.good())
            return PersistOutcome::StoreFailed;
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return PersistOutcome::StoreFailed;
    }
    return PersistOutcome::Stored;
}

} // namespace mesa::core
