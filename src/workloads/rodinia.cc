/**
 * @file
 * Rodinia-like kernel suite. Each builder assembles the benchmark's
 * hot loop as it comes out of a -O3 RV32G compile: pointer-increment
 * induction, FP arithmetic on loaded values, a conditional backward
 * branch closing the loop. Dataset generators fill memory with
 * deterministic pseudo-random values.
 */

#include "workloads/kernel.hh"

#include <algorithm>
#include <bit>

#include "riscv/isa.hh"
#include "util/logging.hh"

namespace mesa::workloads
{

using namespace riscv::reg;
using riscv::Assembler;

namespace
{

// Array bases, 1 MiB apart.
constexpr uint32_t ArrA = 0x00100000;
constexpr uint32_t ArrB = 0x00200000;
constexpr uint32_t ArrC = 0x00300000;
constexpr uint32_t ArrD = 0x00400000;

constexpr uint32_t ProgBase = 0x1000;

/** Deterministic LCG for dataset generation. */
uint32_t
lcg(uint32_t &s)
{
    s = s * 1664525u + 1013904223u;
    return s;
}

/** Uniform float in [lo, hi). */
float
frand(uint32_t &s, float lo = 0.0f, float hi = 1.0f)
{
    const float u = float(lcg(s) >> 8) / float(1u << 24);
    return lo + u * (hi - lo);
}

void
fillFloats(mem::MainMemory &m, uint32_t base, uint64_t count,
           uint32_t seed, float lo, float hi)
{
    uint32_t s = seed;
    for (uint64_t i = 0; i < count; ++i)
        m.writeFloat(base + uint32_t(4 * i), frand(s, lo, hi));
}

/**
 * Reserve an output buffer by touching its pages with zeroes. Real
 * offload regions include pre-allocated output arrays; making them
 * resident up front keeps the workload's memory region honest for
 * static footprint certification without changing observable data
 * (absent pages read as zero anyway).
 */
void
reserveBytes(mem::MainMemory &m, uint32_t base, uint64_t bytes)
{
    if (bytes == 0)
        return;
    for (uint64_t off = 0; off < bytes; off += mem::MainMemory::PageSize)
        m.write8(base + uint32_t(off), 0);
    m.write8(base + uint32_t(bytes - 1), 0);
}

void
setF(riscv::ArchState &st, int fr, float v)
{
    st.f[size_t(fr)] = std::bit_cast<uint32_t>(v);
}

/** Finish a kernel: record the loop range and program. */
void
finalize(Kernel &k, const Assembler &as, uint32_t loop_start)
{
    k.program = as.assemble();
    k.loop_start = loop_start;
    // The loop ends at the ecall (one past the backward branch).
    k.loop_end = k.program.labelPc("exit");
}

} // namespace

Kernel
makeNn(uint64_t n)
{
    Kernel k;
    k.name = "nn";
    k.parallel = true;
    k.fp = true;
    k.iterations = n;

    Assembler as(ProgBase);
    const uint32_t loop = as.here();
    as.label("loop");
    as.flw(ft0, 0, a0);       // lat[i]
    as.flw(ft1, 0, a1);       // lng[i]
    as.fsub_s(ft0, ft0, fa0); // - target_lat
    as.fsub_s(ft1, ft1, fa1); // - target_lng
    as.fmul_s(ft0, ft0, ft0);
    as.fmul_s(ft1, ft1, ft1);
    as.fadd_s(ft0, ft0, ft1);
    as.fsqrt_s(ft2, ft0);
    as.fsw(ft2, 0, a2);       // dist[i]
    as.addi(a0, a0, 4);
    as.addi(a1, a1, 4);
    as.addi(a2, a2, 4);
    as.blt(a0, a3, "loop");
    as.label("exit");
    as.ecall();

    k.init_data = [n](mem::MainMemory &m) {
        fillFloats(m, ArrA, n, 1, -90.0f, 90.0f);
        fillFloats(m, ArrB, n, 2, -180.0f, 180.0f);
        reserveBytes(m, ArrC, 4 * n); // dist[] output
    };
    k.init_range = [](riscv::ArchState &st, uint64_t b, uint64_t e) {
        st.x[a0] = ArrA + uint32_t(4 * b);
        st.x[a1] = ArrB + uint32_t(4 * b);
        st.x[a2] = ArrC + uint32_t(4 * b);
        st.x[a3] = ArrA + uint32_t(4 * e);
        setF(st, fa0, 37.4f);
        setF(st, fa1, -122.1f);
    };
    finalize(k, as, loop);
    return k;
}

Kernel
makeKmeans(uint64_t n)
{
    Kernel k;
    k.name = "kmeans";
    k.parallel = true;
    k.fp = true;
    k.iterations = n;

    Assembler as(ProgBase);
    const uint32_t loop = as.here();
    as.label("loop");
    // 4-feature point vs one centroid (fa0..fa3).
    as.flw(ft0, 0, a0);
    as.fsub_s(ft0, ft0, fa0);
    as.fmul_s(ft0, ft0, ft0);
    as.flw(ft1, 4, a0);
    as.fsub_s(ft1, ft1, fa1);
    as.fmul_s(ft1, ft1, ft1);
    as.flw(ft2, 8, a0);
    as.fsub_s(ft2, ft2, fa2);
    as.fmul_s(ft2, ft2, ft2);
    as.flw(ft3, 12, a0);
    as.fsub_s(ft3, ft3, fa3);
    as.fmul_s(ft3, ft3, ft3);
    as.fadd_s(ft0, ft0, ft1);
    as.fadd_s(ft2, ft2, ft3);
    as.fadd_s(ft0, ft0, ft2);
    as.fsw(ft0, 0, a1);
    as.addi(a0, a0, 16);
    as.addi(a1, a1, 4);
    as.blt(a0, a2, "loop");
    as.label("exit");
    as.ecall();

    k.init_data = [n](mem::MainMemory &m) {
        fillFloats(m, ArrA, 4 * n, 3, 0.0f, 10.0f);
        reserveBytes(m, ArrC, 4 * n); // membership distance output
    };
    k.init_range = [](riscv::ArchState &st, uint64_t b, uint64_t e) {
        st.x[a0] = ArrA + uint32_t(16 * b);
        st.x[a1] = ArrC + uint32_t(4 * b);
        st.x[a2] = ArrA + uint32_t(16 * e);
        setF(st, fa0, 5.0f);
        setF(st, fa1, 2.5f);
        setF(st, fa2, 7.5f);
        setF(st, fa3, 1.25f);
    };
    finalize(k, as, loop);
    return k;
}

Kernel
makeHotspot(uint64_t n)
{
    Kernel k;
    k.name = "hotspot";
    k.parallel = true;
    k.fp = true;
    k.iterations = n;

    Assembler as(ProgBase);
    const uint32_t loop = as.here();
    as.label("loop");
    // t_new[i] = t[i] + c*(t[i-1] + t[i+1] - 2 t[i]) + p[i]
    as.flw(ft0, 0, a0);   // t[i]
    as.flw(ft1, -4, a0);  // t[i-1]
    as.flw(ft2, 4, a0);   // t[i+1]
    as.flw(ft3, 0, a1);   // p[i]
    as.fadd_s(ft4, ft1, ft2);
    as.fmul_s(ft5, ft0, fa1); // 2*t[i]
    as.fsub_s(ft4, ft4, ft5);
    as.fmul_s(ft4, ft4, fa0); // *c
    as.fadd_s(ft4, ft4, ft0);
    as.fadd_s(ft4, ft4, ft3);
    as.fsw(ft4, 0, a2);
    as.addi(a0, a0, 4);
    as.addi(a1, a1, 4);
    as.addi(a2, a2, 4);
    as.blt(a0, a3, "loop");
    as.label("exit");
    as.ecall();

    k.init_data = [n](mem::MainMemory &m) {
        fillFloats(m, ArrA, n + 2, 4, 20.0f, 90.0f); // t (padded)
        fillFloats(m, ArrB, n + 2, 5, 0.0f, 2.0f);   // power
        reserveBytes(m, ArrC, 4 * (n + 2)); // t_next output
    };
    k.init_range = [](riscv::ArchState &st, uint64_t b, uint64_t e) {
        st.x[a0] = ArrA + uint32_t(4 * (b + 1)); // interior points
        st.x[a1] = ArrB + uint32_t(4 * (b + 1));
        st.x[a2] = ArrC + uint32_t(4 * (b + 1));
        st.x[a3] = ArrA + uint32_t(4 * (e + 1));
        setF(st, fa0, 0.1f);
        setF(st, fa1, 2.0f);
    };
    finalize(k, as, loop);
    return k;
}

Kernel
makeCfd(uint64_t n)
{
    Kernel k;
    k.name = "cfd";
    k.parallel = true;
    k.fp = true;
    k.iterations = n;

    Assembler as(ProgBase);
    const uint32_t loop = as.here();
    as.label("loop");
    // Flux-like computation over (rho, mx, my, mz).
    as.flw(ft0, 0, a0);
    as.flw(ft1, 4, a0);
    as.flw(ft2, 8, a0);
    as.flw(ft3, 12, a0);
    as.fmul_s(ft4, ft1, ft1);
    as.fmul_s(ft5, ft2, ft2);
    as.fmul_s(ft6, ft3, ft3);
    as.fadd_s(ft4, ft4, ft5);
    as.fadd_s(ft4, ft4, ft6);
    as.fadd_s(ft7, ft0, fa0); // rho + 1
    as.fdiv_s(ft4, ft4, ft7); // |m|^2 / (rho+1)
    as.fmul_s(ft5, ft0, fa1); // 0.4 * rho
    as.fadd_s(ft5, ft5, ft4); // pressure-ish
    as.fmul_s(ft6, ft1, ft5);
    as.fmul_s(ft7, ft2, ft5);
    as.fsw(ft5, 0, a1);
    as.fsw(ft6, 4, a1);
    as.fsw(ft7, 8, a1);
    as.addi(a0, a0, 16);
    as.addi(a1, a1, 16);
    as.blt(a0, a2, "loop");
    as.label("exit");
    as.ecall();

    k.init_data = [n](mem::MainMemory &m) {
        fillFloats(m, ArrA, 4 * n, 6, 0.5f, 1.5f);
        reserveBytes(m, ArrC, 16 * n); // flux output (16B stride)
    };
    k.init_range = [](riscv::ArchState &st, uint64_t b, uint64_t e) {
        st.x[a0] = ArrA + uint32_t(16 * b);
        st.x[a1] = ArrC + uint32_t(16 * b);
        st.x[a2] = ArrA + uint32_t(16 * e);
        setF(st, fa0, 1.0f);
        setF(st, fa1, 0.4f);
    };
    finalize(k, as, loop);
    return k;
}

Kernel
makeBackprop(uint64_t n)
{
    Kernel k;
    k.name = "backprop";
    k.parallel = false; // reduction carries fa0 across iterations
    k.fp = true;
    k.iterations = n;

    Assembler as(ProgBase);
    const uint32_t loop = as.here();
    as.label("loop");
    as.flw(ft0, 0, a0); // weight
    as.flw(ft1, 0, a1); // input
    as.fmul_s(ft2, ft0, ft1);
    as.fadd_s(fa0, fa0, ft2); // running sum (loop-carried)
    as.addi(a0, a0, 4);
    as.addi(a1, a1, 4);
    as.blt(a0, a2, "loop");
    as.label("exit");
    as.fsw(fa0, 0, a3); // store the sum after the loop
    as.ecall();

    k.init_data = [n](mem::MainMemory &m) {
        fillFloats(m, ArrA, n, 7, -1.0f, 1.0f);
        fillFloats(m, ArrB, n, 8, 0.0f, 1.0f);
    };
    k.init_range = [](riscv::ArchState &st, uint64_t b, uint64_t e) {
        st.x[a0] = ArrA + uint32_t(4 * b);
        st.x[a1] = ArrB + uint32_t(4 * b);
        st.x[a2] = ArrA + uint32_t(4 * e);
        st.x[a3] = ArrC;
        setF(st, fa0, 0.0f);
    };
    finalize(k, as, loop);
    return k;
}

Kernel
makeBfs(uint64_t n)
{
    Kernel k;
    k.name = "bfs";
    k.parallel = true; // per-level edge scans are parallel
    k.fp = false;
    k.iterations = n; // total inner (edge-scan) iterations
    // Level-by-level frontier marking: an outer loop over BFS levels
    // re-enters a short inner edge scan each time, and the visited[]
    // stores have data-dependent addresses. Repeated offload overhead
    // plus untileable stores make bfs the paper's worst citizen.
    constexpr uint32_t NumNodes = 1u << 17;
    const uint32_t Levels = uint32_t(std::max<uint64_t>(4, n / 256));

    Assembler as(ProgBase);
    as.label("outer");
    as.add(a6, a6, s5);  // this level's edge-scan bound
    const uint32_t loop = as.here();
    as.label("loop");
    as.lw(t0, 0, a0);   // edge destination index
    as.slli(t1, t0, 2);
    as.add(t1, t1, a4); // &visited[dst] (data-dependent address)
    as.lw(t2, 0, t1);
    as.bne(t2, zero, "skip"); // already visited?
    as.sw(a5, 0, t1);         // mark with level (predicated)
    as.label("skip");
    as.addi(a0, a0, 4);
    as.blt(a0, a6, "loop");
    as.label("exit");
    as.addi(s2, s2, 1);
    as.blt(s2, s3, "outer");
    as.ecall();

    k.init_data = [n](mem::MainMemory &m) {
        uint32_t s = 9;
        for (uint64_t i = 0; i < n; ++i)
            m.write32(ArrA + uint32_t(4 * i), lcg(s) % NumNodes);
        // visited[]: sparse pre-marked nodes.
        for (uint32_t i = 0; i < NumNodes; ++i)
            m.write32(ArrB + 4 * i, (i % 7 == 0) ? 1 : 0);
    };
    k.init_range = [Levels](riscv::ArchState &st, uint64_t b,
                            uint64_t e) {
        const uint32_t chunk_bytes =
            std::max(4u, uint32_t(4 * (e - b) / Levels));
        st.x[a0] = ArrA + uint32_t(4 * b);
        st.x[a6] = ArrA + uint32_t(4 * b); // advanced per level
        st.x[s5] = chunk_bytes;
        st.x[a4] = ArrB;
        st.x[a5] = 1; // mark value (idempotent across threads)
        st.x[s2] = 0;
        st.x[s3] = Levels;
    };
    finalize(k, as, loop);
    return k;
}

Kernel
makeSrad(uint64_t n)
{
    Kernel k;
    k.name = "srad";
    k.parallel = true;
    k.fp = true;
    k.iterations = n / 4; // 4 elements per iteration (unrolled)

    Assembler as(ProgBase);
    const uint32_t loop = as.here();
    as.label("loop");
    // Four unrolled diffusion updates: ~78-instruction body, too
    // large for M-64's 64-PE capacity (fails C1 there) but mappable
    // on M-128/M-512 — matching the paper's SRAD qualification note.
    for (int u = 0; u < 4; ++u) {
        const int32_t off = 4 * u;
        as.flw(ft0, off, a0);      // center
        as.flw(ft1, off - 4, a0);  // west
        as.flw(ft2, off + 4, a0);  // east
        as.flw(ft3, off, a1);      // north row
        as.flw(ft4, off, a2);      // south row
        as.fsub_s(ft5, ft1, ft0);
        as.fsub_s(ft6, ft2, ft0);
        as.fsub_s(ft7, ft3, ft0);
        as.fsub_s(fs0, ft4, ft0);
        as.fadd_s(ft5, ft5, ft6);
        as.fadd_s(ft7, ft7, fs0);
        as.fadd_s(ft5, ft5, ft7);
        as.fmul_s(ft6, ft5, ft5);
        as.fadd_s(ft6, ft6, fa1); // + eps
        as.fdiv_s(ft5, ft5, ft6);
        as.fmul_s(ft5, ft5, fa0); // * lambda
        as.fadd_s(ft5, ft0, ft5);
        as.fsw(ft5, off, a3);
    }
    as.addi(a0, a0, 16);
    as.addi(a1, a1, 16);
    as.addi(a2, a2, 16);
    as.addi(a3, a3, 16);
    as.blt(a0, a4, "loop");
    as.label("exit");
    as.ecall();

    k.init_data = [n](mem::MainMemory &m) {
        fillFloats(m, ArrA, n + 8, 10, 0.1f, 1.0f);
        fillFloats(m, ArrB, n + 8, 11, 0.1f, 1.0f);
        fillFloats(m, ArrC, n + 8, 12, 0.1f, 1.0f);
        reserveBytes(m, ArrD, 4 * (n + 8)); // diffused image output
    };
    k.init_range = [](riscv::ArchState &st, uint64_t b, uint64_t e) {
        st.x[a0] = ArrA + uint32_t(16 * b + 4);
        st.x[a1] = ArrB + uint32_t(16 * b + 4);
        st.x[a2] = ArrC + uint32_t(16 * b + 4);
        st.x[a3] = ArrD + uint32_t(16 * b + 4);
        st.x[a4] = ArrA + uint32_t(16 * e + 4);
        setF(st, fa0, 0.25f);
        setF(st, fa1, 0.05f);
    };
    finalize(k, as, loop);
    return k;
}

Kernel
makeLud(uint64_t n)
{
    Kernel k;
    k.name = "lud";
    k.parallel = false; // running reduction
    k.fp = true;
    k.iterations = n;

    Assembler as(ProgBase);
    const uint32_t loop = as.here();
    as.label("loop");
    as.flw(ft0, 0, a0); // row element
    as.flw(ft1, 0, a1); // column element (strided)
    as.fmul_s(ft2, ft0, ft1);
    as.fsub_s(fa0, fa0, ft2);
    as.addi(a0, a0, 4);
    as.addi(a1, a1, 256); // column stride: poor locality
    as.blt(a0, a2, "loop");
    as.label("exit");
    as.fsw(fa0, 0, a3);
    as.ecall();

    k.init_data = [n](mem::MainMemory &m) {
        fillFloats(m, ArrA, n, 13, -1.0f, 1.0f);
        fillFloats(m, ArrB, 64 * n, 14, -1.0f, 1.0f);
    };
    k.init_range = [](riscv::ArchState &st, uint64_t b, uint64_t e) {
        st.x[a0] = ArrA + uint32_t(4 * b);
        st.x[a1] = ArrB + uint32_t(256 * b);
        st.x[a2] = ArrA + uint32_t(4 * e);
        st.x[a3] = ArrC;
        setF(st, fa0, 1.0f);
    };
    finalize(k, as, loop);
    return k;
}

Kernel
makePathfinder(uint64_t n)
{
    Kernel k;
    k.name = "pathfinder";
    k.parallel = true;
    k.fp = false;
    k.iterations = n;

    Assembler as(ProgBase);
    const uint32_t loop = as.here();
    as.label("loop");
    // dst[i] = cost[i] + min(prev[i-1], prev[i], prev[i+1]);
    // -O3 emits branchless mins: min(a,b) = a ^ ((a^b) & -(b<a)).
    as.lw(t0, 0, a0);  // prev[i-1]
    as.lw(t1, 4, a0);  // prev[i]
    as.lw(t2, 8, a0);  // prev[i+1]
    as.slt(t3, t1, t0);
    as.sub(t3, zero, t3);
    as.xor_(t4, t1, t0);
    as.and_(t4, t4, t3);
    as.xor_(t0, t0, t4); // t0 = min(prev[i-1], prev[i])
    as.slt(t3, t2, t0);
    as.sub(t3, zero, t3);
    as.xor_(t4, t2, t0);
    as.and_(t4, t4, t3);
    as.xor_(t0, t0, t4); // t0 = min(t0, prev[i+1])
    as.lw(t4, 0, a1);  // cost[i]
    as.add(t0, t0, t4);
    as.sw(t0, 0, a2);
    as.addi(a0, a0, 4);
    as.addi(a1, a1, 4);
    as.addi(a2, a2, 4);
    as.blt(a0, a3, "loop");
    as.label("exit");
    as.ecall();

    k.init_data = [n](mem::MainMemory &m) {
        uint32_t s = 15;
        for (uint64_t i = 0; i < n + 2; ++i)
            m.write32(ArrA + uint32_t(4 * i), lcg(s) % 1000);
        for (uint64_t i = 0; i < n; ++i)
            m.write32(ArrB + uint32_t(4 * i), lcg(s) % 10);
        reserveBytes(m, ArrC, 4 * n); // dst[] output row
    };
    k.init_range = [](riscv::ArchState &st, uint64_t b, uint64_t e) {
        st.x[a0] = ArrA + uint32_t(4 * b);
        st.x[a1] = ArrB + uint32_t(4 * b);
        st.x[a2] = ArrC + uint32_t(4 * b);
        st.x[a3] = ArrA + uint32_t(4 * e);
    };
    finalize(k, as, loop);
    return k;
}

Kernel
makeBtree(uint64_t n)
{
    Kernel k;
    k.name = "b+tree";
    k.parallel = false;
    k.fp = false;
    k.mesa_supported = false; // inner key-scan loop disqualifies (C2)
    k.iterations = n;
    constexpr uint32_t KeysPerNode = 16;

    Assembler as(ProgBase);
    const uint32_t loop = as.here();
    as.label("outer");
    as.lw(t0, 0, a0);   // query key
    as.addi(t1, a4, 0); // key array cursor
    as.addi(t3, zero, 0);
    as.label("inner");
    as.lw(t2, 0, t1);
    as.bge(t2, t0, "found"); // first key >= query
    as.addi(t1, t1, 4);
    as.addi(t3, t3, 1);
    as.blt(t3, a5, "inner");
    as.label("found");
    as.sw(t3, 0, a1);
    as.addi(a0, a0, 4);
    as.addi(a1, a1, 4);
    as.blt(a0, a3, "outer");
    as.label("exit");
    as.ecall();

    k.init_data = [n](mem::MainMemory &m) {
        uint32_t s = 16;
        for (uint64_t i = 0; i < n; ++i)
            m.write32(ArrA + uint32_t(4 * i), lcg(s) % 4096);
        // Sorted key array: 16 ascending keys spanning the range.
        for (uint32_t i = 0; i < KeysPerNode; ++i)
            m.write32(ArrB + 4 * i, (i + 1) * 256);
        reserveBytes(m, ArrC, 4 * n); // found-index output
    };
    k.init_range = [](riscv::ArchState &st, uint64_t b, uint64_t e) {
        st.x[a0] = ArrA + uint32_t(4 * b);
        st.x[a1] = ArrC + uint32_t(4 * b);
        st.x[a3] = ArrA + uint32_t(4 * e);
        st.x[a4] = ArrB;
        st.x[a5] = KeysPerNode;
    };
    finalize(k, as, loop);
    return k;
}

Kernel
makeStreamcluster(uint64_t n)
{
    Kernel k;
    k.name = "streamcluster";
    k.parallel = true;
    k.fp = true;
    k.iterations = n;

    Assembler as(ProgBase);
    const uint32_t loop = as.here();
    as.label("loop");
    // 8-dimension weighted distance to a center (fa0..fa3 reused).
    for (int d = 0; d < 8; ++d) {
        const uint8_t freg = uint8_t(ft0 + (d % 4));
        as.flw(freg, 4 * d, a0);
        as.fsub_s(freg, freg, uint8_t(fa0 + (d % 4)));
        as.fmul_s(freg, freg, freg);
        if (d == 0)
            as.fsgnj_s(ft4, ft0, ft0); // acc = first term
        else
            as.fadd_s(ft4, ft4, freg);
    }
    as.flw(ft5, 0, a1); // weight
    as.fmul_s(ft4, ft4, ft5);
    as.fsw(ft4, 0, a2);
    as.addi(a0, a0, 32);
    as.addi(a1, a1, 4);
    as.addi(a2, a2, 4);
    as.blt(a0, a3, "loop");
    as.label("exit");
    as.ecall();

    k.init_data = [n](mem::MainMemory &m) {
        fillFloats(m, ArrA, 8 * n, 17, 0.0f, 4.0f);
        fillFloats(m, ArrB, n, 18, 0.5f, 2.0f);
        reserveBytes(m, ArrC, 4 * n); // weighted-distance output
    };
    k.init_range = [](riscv::ArchState &st, uint64_t b, uint64_t e) {
        st.x[a0] = ArrA + uint32_t(32 * b);
        st.x[a1] = ArrB + uint32_t(4 * b);
        st.x[a2] = ArrC + uint32_t(4 * b);
        st.x[a3] = ArrA + uint32_t(32 * e);
        setF(st, fa0, 2.0f);
        setF(st, fa1, 1.0f);
        setF(st, fa2, 3.0f);
        setF(st, fa3, 0.5f);
    };
    finalize(k, as, loop);
    return k;
}

Kernel
makeLavaMd(uint64_t n)
{
    Kernel k;
    k.name = "lavaMD";
    k.parallel = true;
    k.fp = true;
    k.iterations = n;

    Assembler as(ProgBase);
    const uint32_t loop = as.here();
    as.label("loop");
    as.flw(ft0, 0, a0); // dx
    as.flw(ft1, 4, a0); // dy
    as.flw(ft2, 8, a0); // dz
    as.fmul_s(ft3, ft0, ft0);
    as.fmul_s(ft4, ft1, ft1);
    as.fmul_s(ft5, ft2, ft2);
    as.fadd_s(ft3, ft3, ft4);
    as.fadd_s(ft3, ft3, ft5);
    as.fadd_s(ft3, ft3, fa0); // + eps
    as.fdiv_s(ft4, fa1, ft3); // 1 / r^2
    as.fmul_s(ft5, ft4, ft4);
    as.flw(ft6, 0, a1);       // accumulate into own force slot
    as.fadd_s(ft6, ft6, ft5);
    as.fsw(ft6, 0, a1);
    as.addi(a0, a0, 12);
    as.addi(a1, a1, 4);
    as.blt(a0, a2, "loop");
    as.label("exit");
    as.ecall();

    k.init_data = [n](mem::MainMemory &m) {
        fillFloats(m, ArrA, 3 * n, 19, -2.0f, 2.0f);
        fillFloats(m, ArrB, n, 20, 0.0f, 0.1f);
    };
    k.init_range = [](riscv::ArchState &st, uint64_t b, uint64_t e) {
        st.x[a0] = ArrA + uint32_t(12 * b);
        st.x[a1] = ArrB + uint32_t(4 * b);
        st.x[a2] = ArrA + uint32_t(12 * e);
        setF(st, fa0, 0.01f);
        setF(st, fa1, 1.0f);
    };
    finalize(k, as, loop);
    return k;
}

Kernel
makeGaussian(uint64_t n)
{
    Kernel k;
    k.name = "gaussian";
    k.parallel = true;
    k.fp = true;
    k.iterations = n;

    Assembler as(ProgBase);
    const uint32_t loop = as.here();
    as.label("loop");
    // a[j] -= m * b[j]
    as.flw(ft0, 0, a0);
    as.flw(ft1, 0, a1);
    as.fmul_s(ft2, ft1, fa0);
    as.fsub_s(ft0, ft0, ft2);
    as.fsw(ft0, 0, a0);
    as.addi(a0, a0, 4);
    as.addi(a1, a1, 4);
    as.blt(a0, a2, "loop");
    as.label("exit");
    as.ecall();

    k.init_data = [n](mem::MainMemory &m) {
        fillFloats(m, ArrA, n, 21, -4.0f, 4.0f);
        fillFloats(m, ArrB, n, 22, -4.0f, 4.0f);
    };
    k.init_range = [](riscv::ArchState &st, uint64_t b, uint64_t e) {
        st.x[a0] = ArrA + uint32_t(4 * b);
        st.x[a1] = ArrB + uint32_t(4 * b);
        st.x[a2] = ArrA + uint32_t(4 * e);
        setF(st, fa0, 0.75f);
    };
    finalize(k, as, loop);
    return k;
}

Kernel
makeHeartwall(uint64_t n)
{
    Kernel k;
    k.name = "heartwall";
    k.parallel = true;
    k.fp = true;
    k.iterations = n;

    Assembler as(ProgBase);
    const uint32_t loop = as.here();
    as.label("loop");
    // Normalized cross-correlation step: template vs frame window.
    as.flw(ft0, 0, a0);       // frame[i]
    as.flw(ft1, 0, a1);       // template[i]
    as.fsub_s(ft2, ft0, fa0); // - frame mean
    as.fsub_s(ft3, ft1, fa1); // - template mean
    as.fmul_s(ft4, ft2, ft3); // covariance term
    as.fmul_s(ft5, ft2, ft2); // frame variance term
    as.fmul_s(ft6, ft3, ft3); // template variance term
    as.fadd_s(ft5, ft5, fa2); // + eps
    as.fmul_s(ft7, ft5, ft6);
    as.fsqrt_s(ft7, ft7);
    as.fdiv_s(ft4, ft4, ft7); // normalized correlation
    as.fsw(ft4, 0, a2);
    as.addi(a0, a0, 4);
    as.addi(a1, a1, 4);
    as.addi(a2, a2, 4);
    as.blt(a0, a3, "loop");
    as.label("exit");
    as.ecall();

    k.init_data = [n](mem::MainMemory &m) {
        fillFloats(m, ArrA, n, 23, 0.0f, 255.0f);
        fillFloats(m, ArrB, n, 24, 0.0f, 255.0f);
        reserveBytes(m, ArrC, 4 * n); // correlation output
    };
    k.init_range = [](riscv::ArchState &st, uint64_t b, uint64_t e) {
        st.x[a0] = ArrA + uint32_t(4 * b);
        st.x[a1] = ArrB + uint32_t(4 * b);
        st.x[a2] = ArrC + uint32_t(4 * b);
        st.x[a3] = ArrA + uint32_t(4 * e);
        setF(st, fa0, 127.5f);
        setF(st, fa1, 127.5f);
        setF(st, fa2, 0.5f);
    };
    finalize(k, as, loop);
    return k;
}

Kernel
makeLeukocyte(uint64_t n)
{
    Kernel k;
    k.name = "leukocyte";
    k.parallel = true;
    k.fp = true;
    k.iterations = n;

    Assembler as(ProgBase);
    const uint32_t loop = as.here();
    as.label("loop");
    // GICOV-like gradient step over a cell boundary sample.
    as.flw(ft0, 0, a0);       // gradient x
    as.flw(ft1, 4, a0);       // gradient y
    as.flw(ft2, 0, a1);       // sin(theta) table
    as.flw(ft3, 4, a1);       // cos(theta) table
    as.fmul_s(ft4, ft0, ft3); // gx * cos
    as.fmul_s(ft5, ft1, ft2); // gy * sin
    as.fadd_s(ft4, ft4, ft5); // directional derivative
    as.fmul_s(ft5, ft4, ft4); // squared (variance numerator)
    as.fsw(ft4, 0, a2);
    as.fsw(ft5, 4, a2);
    as.addi(a0, a0, 8);
    as.addi(a1, a1, 8);
    as.addi(a2, a2, 8);
    as.blt(a0, a3, "loop");
    as.label("exit");
    as.ecall();

    k.init_data = [n](mem::MainMemory &m) {
        fillFloats(m, ArrA, 2 * n, 25, -8.0f, 8.0f);
        fillFloats(m, ArrB, 2 * n, 26, -1.0f, 1.0f);
        reserveBytes(m, ArrC, 8 * n); // derivative + variance output
    };
    k.init_range = [](riscv::ArchState &st, uint64_t b, uint64_t e) {
        st.x[a0] = ArrA + uint32_t(8 * b);
        st.x[a1] = ArrB + uint32_t(8 * b);
        st.x[a2] = ArrC + uint32_t(8 * b);
        st.x[a3] = ArrA + uint32_t(8 * e);
    };
    finalize(k, as, loop);
    return k;
}

Kernel
makeHotspot3d(uint64_t n)
{
    Kernel k;
    k.name = "hotspot3D";
    k.parallel = true;
    k.fp = true;
    k.iterations = n;
    constexpr int32_t Plane = 256; // z-stride in elements

    Assembler as(ProgBase);
    const uint32_t loop = as.here();
    as.label("loop");
    // 7-point 3D stencil: west/east from the row, north/south from
    // padded neighbor rows, above/below from adjacent planes.
    as.flw(ft0, 0, a0);            // center
    as.flw(ft1, -4, a0);           // west
    as.flw(ft2, 4, a0);            // east
    as.flw(ft3, 0, a1);            // north row
    as.flw(ft4, 0, a2);            // south row
    as.flw(ft5, -4 * Plane, a0);   // below plane
    as.flw(ft6, 4 * Plane, a0);    // above plane
    as.fadd_s(ft7, ft1, ft2);
    as.fadd_s(ft7, ft7, ft3);
    as.fadd_s(ft7, ft7, ft4);
    as.fadd_s(ft7, ft7, ft5);
    as.fadd_s(ft7, ft7, ft6);
    as.fmul_s(fs0, ft0, fa1);      // 6 * center
    as.fsub_s(ft7, ft7, fs0);
    as.fmul_s(ft7, ft7, fa0);      // * thermal coefficient
    as.fadd_s(ft7, ft7, ft0);
    as.fsw(ft7, 0, a4);
    as.addi(a0, a0, 4);
    as.addi(a1, a1, 4);
    as.addi(a2, a2, 4);
    as.addi(a4, a4, 4);
    as.blt(a0, a5, "loop");
    as.label("exit");
    as.ecall();

    k.init_data = [n](mem::MainMemory &m) {
        fillFloats(m, ArrA, n + 2 * Plane + 8, 27, 20.0f, 90.0f);
        fillFloats(m, ArrB, n + 8, 28, 20.0f, 90.0f);
        fillFloats(m, ArrC, n + 8, 29, 20.0f, 90.0f);
        reserveBytes(m, ArrD, 4 * (n + 8)); // t_next output
    };
    k.init_range = [](riscv::ArchState &st, uint64_t b, uint64_t e) {
        // a0 points into the middle plane (offset by one plane).
        st.x[a0] = ArrA + uint32_t(4 * (Plane + 1 + b));
        st.x[a1] = ArrB + uint32_t(4 * (b + 1));
        st.x[a2] = ArrC + uint32_t(4 * (b + 1));
        st.x[a4] = ArrD + uint32_t(4 * (b + 1));
        st.x[a5] = ArrA + uint32_t(4 * (Plane + 1 + e));
        setF(st, fa0, 0.06f);
        setF(st, fa1, 6.0f);
    };
    finalize(k, as, loop);
    return k;
}

// rodiniaSuite / kernelByName live in suite.cc on the roster registry.

} // namespace mesa::workloads
