/**
 * @file
 * Workload kernel abstraction: a RISC-V program with one hot loop,
 * its dataset initializer, and iteration-range register setup. The
 * suite mirrors the Rodinia benchmarks' hot loops (paper §6): same
 * operation mix, memory pattern, and parallelizability; assembled to
 * real RV32IMF machine code by the in-repo assembler.
 */

#ifndef MESA_WORKLOADS_KERNEL_HH
#define MESA_WORKLOADS_KERNEL_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cpu/system.hh"
#include "mem/memory.hh"
#include "riscv/assembler.hh"

namespace mesa::workloads
{

/** A benchmark kernel. */
struct Kernel
{
    std::string name;
    riscv::Program program;

    /** The hot loop's pc range [loop_start, loop_end). */
    uint32_t loop_start = 0;
    uint32_t loop_end = 0;

    /** OpenMP-annotated (omp parallel / omp simd) in the original. */
    bool parallel = false;

    /** Uses floating point. */
    bool fp = false;

    /**
     * Expected to qualify for MESA acceleration (b+tree's inner loop
     * walk, for example, never does).
     */
    bool mesa_supported = true;

    /** Total hot-loop iterations at the chosen scale. */
    uint64_t iterations = 0;

    /** Initialize the shared dataset in memory. */
    std::function<void(mem::MainMemory &)> init_data;

    /** Set up registers to execute iteration range [begin, end). */
    std::function<void(riscv::ArchState &, uint64_t, uint64_t)>
        init_range;

    /** ThreadInit covering the full iteration space. */
    cpu::ThreadInit
    fullRange() const
    {
        auto setup = init_range;
        const uint64_t n = iterations;
        return [setup, n](riscv::ArchState &state) {
            setup(state, 0, n);
        };
    }

    /** Split the iteration space into n contiguous chunks. */
    std::vector<cpu::ThreadInit>
    chunks(int n) const
    {
        std::vector<cpu::ThreadInit> out;
        const uint64_t per = (iterations + uint64_t(n) - 1) / uint64_t(n);
        for (int t = 0; t < n; ++t) {
            const uint64_t begin = uint64_t(t) * per;
            const uint64_t end = std::min(iterations, begin + per);
            if (begin >= end)
                break;
            auto setup = init_range;
            out.push_back([setup, begin, end](riscv::ArchState &state) {
                setup(state, begin, end);
            });
        }
        return out;
    }

    /**
     * Split the iteration space into contiguous chunks proportional
     * to @p weights (one per tenant; zero- or negative-weight tenants
     * get nothing). The remainder lands on the heaviest tenant, so
     * the split is exact and deterministic.
     */
    std::vector<cpu::ThreadInit>
    chunksWeighted(const std::vector<double> &weights) const
    {
        double total = 0.0;
        size_t heaviest = 0;
        for (size_t t = 0; t < weights.size(); ++t) {
            if (weights[t] > weights[heaviest])
                heaviest = t;
            total += std::max(0.0, weights[t]);
        }
        std::vector<cpu::ThreadInit> out;
        if (total <= 0.0)
            return out;
        // Fix every share except the heaviest, which absorbs the
        // rounding remainder.
        std::vector<uint64_t> share(weights.size(), 0);
        uint64_t assigned = 0;
        for (size_t t = 0; t < weights.size(); ++t) {
            if (t == heaviest)
                continue;
            share[t] = uint64_t(double(iterations) *
                                std::max(0.0, weights[t]) / total);
            assigned += share[t];
        }
        share[heaviest] = iterations - std::min(iterations, assigned);
        uint64_t begin = 0;
        for (size_t t = 0; t < weights.size(); ++t) {
            const uint64_t end = begin + share[t];
            if (end > begin) {
                auto setup = init_range;
                const uint64_t b = begin, e = end;
                out.push_back(
                    [setup, b, e](riscv::ArchState &state) {
                        setup(state, b, e);
                    });
            }
            begin = end;
        }
        return out;
    }

    /** Decode the hot-loop body (program order). */
    std::vector<riscv::Instruction>
    loopBody() const
    {
        std::vector<riscv::Instruction> body;
        const auto all = program.decodeAll();
        for (const auto &inst : all)
            if (inst.pc >= loop_start && inst.pc < loop_end)
                body.push_back(inst);
        return body;
    }
};

/** Suite scaling knobs (kept small enough for fast simulation). */
struct SuiteScale
{
    uint64_t n = 2048; ///< Default iteration count per kernel.
};

// Individual kernel builders (see rodinia.cc for loop shapes).
Kernel makeNn(uint64_t n);
Kernel makeKmeans(uint64_t n);
Kernel makeHotspot(uint64_t n);
Kernel makeCfd(uint64_t n);
Kernel makeBackprop(uint64_t n);
Kernel makeBfs(uint64_t n);
Kernel makeSrad(uint64_t n);
Kernel makeLud(uint64_t n);
Kernel makePathfinder(uint64_t n);
Kernel makeBtree(uint64_t n);
Kernel makeStreamcluster(uint64_t n);
Kernel makeLavaMd(uint64_t n);
Kernel makeGaussian(uint64_t n);
Kernel makeHeartwall(uint64_t n);
Kernel makeLeukocyte(uint64_t n);
Kernel makeHotspot3d(uint64_t n);

/** The full suite at the given scale. */
std::vector<Kernel> rodiniaSuite(const SuiteScale &scale = {});

/** Look up one kernel by name (fatal if unknown). */
Kernel kernelByName(const std::string &name,
                    const SuiteScale &scale = {});

} // namespace mesa::workloads

#endif // MESA_WORKLOADS_KERNEL_HH
