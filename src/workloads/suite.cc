#include "workloads/suite.hh"

#include "util/logging.hh"

namespace mesa::workloads
{

const std::vector<SuiteEntry> &
suiteRegistry()
{
    static const std::vector<SuiteEntry> registry = {
        {"backprop", makeBackprop, 1},
        {"bfs", makeBfs, 1},
        {"b+tree", makeBtree, 4},
        {"cfd", makeCfd, 1},
        {"gaussian", makeGaussian, 1},
        {"heartwall", makeHeartwall, 1},
        {"hotspot", makeHotspot, 1},
        {"hotspot3D", makeHotspot3d, 1},
        {"kmeans", makeKmeans, 1},
        {"lavaMD", makeLavaMd, 1},
        {"leukocyte", makeLeukocyte, 1},
        {"lud", makeLud, 1},
        {"nn", makeNn, 1},
        {"pathfinder", makePathfinder, 1},
        {"srad", makeSrad, 1},
        {"streamcluster", makeStreamcluster, 1},
    };
    return registry;
}

const std::vector<std::string> &
suiteNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        for (const auto &entry : suiteRegistry())
            out.emplace_back(entry.name);
        return out;
    }();
    return names;
}

Kernel
buildEntry(const SuiteEntry &entry, const SuiteScale &scale)
{
    return entry.make(scale.n / entry.scale_divisor);
}

std::vector<Kernel>
selectKernels(const std::vector<std::string> &names,
              const SuiteScale &scale)
{
    std::vector<Kernel> out;
    if (names.empty()) {
        for (const auto &entry : suiteRegistry())
            out.push_back(buildEntry(entry, scale));
        return out;
    }
    for (const auto &name : names)
        out.push_back(kernelByName(name, scale));
    return out;
}

void
listKernels(std::ostream &os)
{
    for (const auto &name : suiteNames())
        os << "  " << name << "\n";
}

std::vector<Kernel>
rodiniaSuite(const SuiteScale &scale)
{
    return selectKernels({}, scale);
}

Kernel
kernelByName(const std::string &name, const SuiteScale &scale)
{
    for (const auto &entry : suiteRegistry())
        if (name == entry.name)
            return buildEntry(entry, scale);
    std::string known;
    for (const auto &n : suiteNames())
        known += " " + n;
    fatal("kernelByName: unknown kernel '", name, "' (known:", known,
          ")");
}

} // namespace mesa::workloads
