/**
 * @file
 * Canonical workload-suite registry. Every CLI and bench used to
 * enumerate the 16 Rodinia kernels by hand (and each copy drifted on
 * details like b+tree's reduced scale); this registry is the single
 * source of truth for the suite roster, its per-kernel scale rules,
 * and name-based selection.
 */

#ifndef MESA_WORKLOADS_SUITE_HH
#define MESA_WORKLOADS_SUITE_HH

#include <ostream>
#include <string>
#include <vector>

#include "workloads/kernel.hh"

namespace mesa::workloads
{

/** One suite roster entry. */
struct SuiteEntry
{
    const char *name;         ///< Canonical kernel name ("nn").
    Kernel (*make)(uint64_t); ///< Builder taking the iteration count.
    uint64_t scale_divisor;   ///< Suite scale n is divided by this
                              ///< (b+tree runs at n/4: every search
                              ///< walks a whole tree level per probe).
};

/** The full roster in canonical (alphabetical) order. */
const std::vector<SuiteEntry> &suiteRegistry();

/** Canonical kernel names, in roster order. */
const std::vector<std::string> &suiteNames();

/** Build one roster entry at the given suite scale. */
Kernel buildEntry(const SuiteEntry &entry, const SuiteScale &scale);

/**
 * Select kernels by name at the given scale. An empty name list
 * selects the whole suite; an unknown name is fatal (listing the
 * valid names). Duplicate names build duplicate kernels, which lets
 * callers weight a workload mix.
 */
std::vector<Kernel> selectKernels(const std::vector<std::string> &names,
                                  const SuiteScale &scale = {});

/** Print one kernel name per line (the CLIs' --list). */
void listKernels(std::ostream &os);

} // namespace mesa::workloads

#endif // MESA_WORKLOADS_SUITE_HH
