/**
 * @file
 * The accelerator configuration produced by MESA's ConfigBlock (T3
 * Decode): the "bitstream" abstraction carrying per-PE operation and
 * routing assignments, live-in/live-out wiring, predication guards,
 * memory-optimization annotations, and loop-level (tiling/pipelining)
 * directives.
 */

#ifndef MESA_ACCEL_CONFIG_TYPES_HH
#define MESA_ACCEL_CONFIG_TYPES_HH

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "dfg/analysis.hh"
#include "dfg/ldfg.hh"
#include "interconnect/interconnect.hh"
#include "riscv/instruction.hh"

namespace mesa::accel
{

/** Configuration of one PE slot (one mapped instruction). */
struct PeSlot
{
    dfg::NodeId node = dfg::NoNode; ///< LDFG index (program order).
    riscv::Instruction inst;
    ic::Coord pos;                  ///< Virtual = physical coordinate.

    // Operand routing (mirrors the LDFG edges).
    dfg::NodeId src1 = dfg::NoNode;
    dfg::NodeId src2 = dfg::NoNode;
    int live_in1 = -1;
    int live_in2 = -1;

    // Predication wiring.
    std::vector<dfg::NodeId> guards;
    dfg::NodeId prev_dest_writer = dfg::NoNode;
    int prev_dest_live_in = -1;

    double op_latency = 1.0;

    // --- Memory optimization annotations (paper §4.2) ---
    /** Static store->load forwarding: serve from this store node. */
    dfg::NodeId forward_from_store = dfg::NoNode;
    /** Vectorized load group id (-1 = none); leader pays the access. */
    int vector_group = -1;
    bool vector_leader = false;
    /** Prefetch next iteration's line at addr + stride. */
    bool prefetch = false;
    int32_t prefetch_stride = 0;

    bool isGuarded() const { return !guards.empty(); }
};

/** One tiled instance of the (virtual) SDFG (paper Fig. 6). */
struct TileInstance
{
    ic::Coord origin{0, 0}; ///< Physical offset of this tile.
    /**
     * Offsets added to latched live-in registers (staggered
     * induction starts: instance k starts at base + k * step).
     */
    std::map<int, int32_t> reg_offsets;
};

/** The full accelerator configuration for one code region. */
struct AcceleratorConfig
{
    uint32_t region_start = 0; ///< Loop body pc range.
    uint32_t region_end = 0;

    /** pc the CPU resumes at when the loop completes (defaults to
     *  region_end; unrolled loops resume at the closing branch so the
     *  CPU runs the remaining tail iterations). */
    uint32_t resume_pc = 0;

    int rows = 0; ///< Virtual grid dimensions used by the placement.
    int cols = 0;

    /** Per-node slots in program order. */
    std::vector<PeSlot> slots;

    /** Live-in unified registers to latch from the CPU at offload. */
    std::set<int> live_ins;

    /** Live-outs: unified register -> final writer node. */
    std::map<int, dfg::NodeId> live_outs;

    /** Induction registers (for tiling stagger + write-back rules). */
    std::vector<dfg::InductionReg> inductions;

    /** Immediate overrides (scaled induction steps under tiling). */
    std::map<dfg::NodeId, int32_t> imm_overrides;

    /** Tiled instances; size 1 when tiling is off. */
    std::vector<TileInstance> instances{TileInstance{}};

    /** Overlap successive iterations (loop pipelining). */
    bool pipelined = false;

    /** Time-multiplexing factor: instructions per PE (extension; 1 =
     *  pure spatial mapping as in the paper). */
    int time_multiplex = 1;

    /** Size of the configuration bitstream in 32-bit words. */
    size_t config_words = 0;

    /** Modeled per-iteration latency at build time (cache reuse). */
    double model_latency = 0.0;

    /**
     * CRC-32 over the semantic payload (see configCrc), stamped by
     * the ConfigBlock at build time. The controller re-derives it
     * before streaming so bit upsets in a stored configuration are
     * detected instead of silently programming the fabric.
     */
    uint32_t crc = 0;

    size_t size() const { return slots.size(); }
    int tileCount() const { return int(instances.size()); }
};

/**
 * CRC-32 of every semantic field of the configuration. Excludes the
 * crc field itself and the two advisory fields the controller mutates
 * after build (model_latency, config_words), so re-derivation over a
 * cached entry stays stable.
 */
uint32_t configCrc(const AcceleratorConfig &config);

} // namespace mesa::accel

#endif // MESA_ACCEL_CONFIG_TYPES_HH
