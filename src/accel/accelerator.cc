#include "accel/accelerator.hh"

#include <algorithm>
#include <cmath>

#include "riscv/alu.hh"
#include "util/logging.hh"
#include "util/trace.hh"

namespace mesa::accel
{

using dfg::NodeId;
using dfg::NoNode;
using ic::Coord;
using riscv::Op;
using riscv::OpClass;

void
AccelRunResult::accumulate(const AccelRunResult &epoch)
{
    cycles += epoch.cycles;
    iterations += epoch.iterations;
    completed = epoch.completed;
    pe_busy_cycles += epoch.pe_busy_cycles;
    fp_busy_cycles += epoch.fp_busy_cycles;
    disabled_ops += epoch.disabled_ops;
    noc_transfers += epoch.noc_transfers;
    local_transfers += epoch.local_transfers;
    loads += epoch.loads;
    stores += epoch.stores;
    store_load_forwards += epoch.store_load_forwards;
    load_invalidations += epoch.load_invalidations;
    dram_accesses += epoch.dram_accesses;
    pes_used = std::max(pes_used, epoch.pes_used);
    pes_total = epoch.pes_total;
    watchdog_tripped = watchdog_tripped || epoch.watchdog_tripped;
    faults_fired += epoch.faults_fired;
}

Accelerator::Accelerator(const AccelParams &params,
                         mem::MainMemory &memory,
                         const mem::HierarchyParams &mem_params)
    : params_(params), memory_(&memory), hierarchy_(mem_params),
      ports_(params.ideal_memory ? 4096u : params.mem_ports),
      ic_(std::make_unique<ic::AccelNocInterconnect>(
          params.rows, params.cols, params.noc_slice_width))
{
}

void
Accelerator::configure(const AcceleratorConfig &config)
{
    for (size_t i = 0; i < config.slots.size(); ++i) {
        MESA_ASSERT(config.slots[i].node == NodeId(i),
                    "Accelerator::configure: slots must be in program "
                    "order with node == index");
    }
    if (config.slots.empty())
        fatal("Accelerator::configure: empty configuration");
    if (!config.slots.back().inst.isBranch())
        fatal("Accelerator::configure: last slot must be the loop's "
              "backward branch");

    config_ = config;

    instances_.clear();
    instances_.resize(config_.instances.size());
    for (auto &inst : instances_) {
        inst.lsu = std::make_unique<mem::LoadStoreUnit>(*memory_,
                                                        hierarchy_, ports_);
    }
    // Flat per-PE busy table: mapped slots key by virtual position,
    // unmapped slots get one private key each past pe_invalid_base_.
    int max_rc = -1;
    for (const PeSlot &slot : config_.slots)
        if (slot.pos.valid())
            max_rc = std::max(max_rc,
                              slot.pos.r * config_.cols + slot.pos.c);
    pe_invalid_base_ = size_t(max_rc + 1);
    pe_free_.assign(instances_.size(),
                    std::vector<uint64_t>(pe_invalid_base_ +
                                              config_.slots.size(),
                                          0));
    iter_out_.assign(config_.slots.size(), 0);
    iter_done_.assign(config_.slots.size(), 0);
    iter_taken_.assign(config_.slots.size(), 0);
    slot_imm_.resize(config_.slots.size());
    for (size_t i = 0; i < config_.slots.size(); ++i) {
        const PeSlot &slot = config_.slots[i];
        auto ov = config_.imm_overrides.find(slot.node);
        slot_imm_[i] =
            ov != config_.imm_overrides.end() ? ov->second
                                              : slot.inst.imm;
    }
    iter_group_done_.clear();
    if (prof_)
        prof_slot_.assign(config_.slots.size(), ProfSlot{});
    resetCounters();
}

void
Accelerator::setProfile(prof::AccelProfile *profile)
{
    prof_ = profile;
    if (prof_) {
        if (prof_->rows() != params_.rows || prof_->cols() != params_.cols)
            prof_->resize(params_.rows, params_.cols);
        prof_slot_.assign(config_.slots.size(), ProfSlot{});
    } else {
        prof_slot_.clear();
        prof_slot_.shrink_to_fit();
    }
}

void
Accelerator::resetCounters()
{
    const size_t n = config_.slots.size();
    node_latency_.assign(n, Average{});
    edge_latency1_.assign(n, Average{});
    edge_latency2_.assign(n, Average{});
}

void
Accelerator::injectFaults(const FaultPlane &plane)
{
    fault_plane_ = plane;
}

Coord
Accelerator::physicalPos(Coord pos, size_t inst_index) const
{
    if (!pos.valid())
        return pos;
    Coord p = pos;
    // Virtual rows fold onto the physical grid (time-multiplexing);
    // tiled instances are offset by their origin.
    if (config_.time_multiplex > 1 && params_.rows > 0)
        p.r %= params_.rows;
    if (inst_index < config_.instances.size()) {
        p.r += config_.instances[inst_index].origin.r;
        p.c += config_.instances[inst_index].origin.c;
    }
    return p;
}

std::vector<Coord>
Accelerator::selfTest() const
{
    // BIST pushes a known pattern through every PE and link; in the
    // model, the defect list itself is ground truth, so the scan
    // reduces to reporting the PEs a pattern would implicate. A dead
    // link cannot be told apart from its endpoints without a second
    // routing pass, so both endpoints are retired (conservative).
    std::vector<Coord> bad;
    auto addUnique = [&](Coord pos) {
        if (!pos.valid())
            return;
        for (const Coord &c : bad)
            if (c == pos)
                return;
        bad.push_back(pos);
    };
    for (const PeStuckFault &f : fault_plane_.stuck_pes)
        addUnique(f.pos);
    for (const LinkFault &f : fault_plane_.dead_links) {
        addUnique(f.from);
        addUnique(f.to);
    }
    return bad;
}

double
Accelerator::measuredNodeLatency(NodeId id) const
{
    if (id < 0 || size_t(id) >= node_latency_.size())
        return -1.0;
    const Average &avg = node_latency_[size_t(id)];
    return avg.count() ? avg.mean() : -1.0;
}

double
Accelerator::measuredEdgeLatency(NodeId id, int operand) const
{
    const auto &vec = operand == 0 ? edge_latency1_ : edge_latency2_;
    if (id < 0 || size_t(id) >= vec.size())
        return -1.0;
    return vec[size_t(id)].count() ? vec[size_t(id)].mean() : -1.0;
}

namespace
{

/** Read a unified register from the architectural state. */
uint32_t
readUnified(const riscv::ArchState &state, int reg)
{
    return reg < riscv::NumIntRegs
               ? state.x[size_t(reg)]
               : state.f[size_t(reg - riscv::NumIntRegs)];
}

/** Write a unified register to the architectural state. */
void
writeUnified(riscv::ArchState &state, int reg, uint32_t value)
{
    if (reg == 0)
        return;
    if (reg < riscv::NumIntRegs)
        state.x[size_t(reg)] = value;
    else
        state.f[size_t(reg - riscv::NumIntRegs)] = value;
}

} // namespace

bool
Accelerator::runIteration(Instance &inst, AccelRunResult &result)
{
    const size_t n = config_.slots.size();
    const uint64_t iter_start = inst.next_floor;
    const size_t inst_index = size_t(&inst - instances_.data());
    auto &pe_free = pe_free_[inst_index];
    const bool has_faults = !fault_plane_.empty();
    // Global iteration index within this run (all tiles), the key the
    // single-event-upset model fires on.
    const uint64_t global_iter = result.iterations;

    // Reused scratch (sized in configure): no allocation per
    // iteration in the hot loop.
    std::vector<uint32_t> &out = iter_out_;
    std::vector<uint64_t> &done = iter_done_;
    std::vector<char> &taken = iter_taken_;
    out.assign(n, 0);
    done.assign(n, iter_start);
    taken.assign(n, 0);
    iter_group_done_.clear();
    if (prof_)
        prof_slot_.assign(n, ProfSlot{});

    // Remember how each slot's inputs arrived (profiling only), so
    // attributeIteration can walk the critical path backwards. For
    // the third (guard / forwarded-old-value) input only the
    // dominating arrival matters.
    auto recordEdge = [&](NodeId node, int operand, NodeId src,
                          uint64_t t0, uint64_t arr, bool noc) {
        ProfSlot &ps = prof_slot_[size_t(node)];
        const int e = operand < 2 ? operand : 2;
        if (e == 2 && ps.e[2].used && ps.e[2].arr >= arr)
            return;
        ps.e[size_t(e)] = ProfEdge{int32_t(src), t0, arr, noc, true};
    };

    auto groupDone = [&](int group) -> uint64_t * {
        for (auto &[g, cycle] : iter_group_done_)
            if (g == group)
                return &cycle;
        return nullptr;
    };

    // Data transfer from a producer PE to this slot's PE, including
    // NoC bus contention; samples the edge latency counter.
    auto arrival = [&](NodeId src, const PeSlot &slot,
                       int operand) -> uint64_t {
        const Coord from = config_.slots[size_t(src)].pos;
        const uint64_t t0 = done[size_t(src)];
        // Unmapped endpoints use the secondary data-forwarding bus
        // (paper §3.3: mapping failures revert to a slower fallback).
        if (!from.valid() || !slot.pos.valid()) {
            const uint64_t arr =
                t0 + uint64_t(params_.fallback_bus_latency);
            if (operand == 0)
                edge_latency1_[size_t(slot.node)].sample(double(arr - t0));
            else if (operand == 1)
                edge_latency2_[size_t(slot.node)].sample(double(arr - t0));
            if (prof_) {
                recordEdge(slot.node, operand, src, t0, arr, true);
                ++prof_->fallback_transfers;
            }
            return arr;
        }
        const uint32_t base = ic_->latency(from, slot.pos);
        const int bus = ic_->busId(from, slot.pos);
        uint64_t start = t0;
        if (bus >= 0) {
            if (size_t(bus) >= inst.bus_free.size())
                inst.bus_free.resize(size_t(bus) + 64, 0);
            uint64_t &free = inst.bus_free[size_t(bus)];
            start = std::max(t0, free);
            free = start + 1;
            ++result.noc_transfers;
            if (prof_) {
                prof::LinkStats &ls = prof_->links[bus];
                ++ls.transfers;
                ls.wait_cycles += start - t0;
                if (!prof_->link_coords.count(bus)) {
                    const Coord anchor = ic_->busCoord(bus);
                    prof_->link_coords.emplace(
                        bus, std::make_pair(anchor.r, anchor.c));
                }
            }
        } else {
            ++result.local_transfers;
        }
        const uint64_t arr = start + base;
        if (operand == 0)
            edge_latency1_[size_t(slot.node)].sample(double(arr - t0));
        else if (operand == 1)
            edge_latency2_[size_t(slot.node)].sample(double(arr - t0));
        if (prof_) {
            recordEdge(slot.node, operand, src, t0, arr, bus >= 0);
            const Coord phys = physicalPos(slot.pos, inst_index);
            if (phys.valid() && prof_->inGrid(phys.r, phys.c))
                ++prof_->pe_traffic[prof_->index(phys.r, phys.c)];
        }
        return arr;
    };

    for (size_t i = 0; i < n; ++i) {
        const PeSlot &slot = config_.slots[i];
        const Op op = slot.inst.op;

        // Guards: the control network disables skipped PEs.
        bool active = true;
        uint64_t guard_arr = iter_start;
        for (NodeId g : slot.guards) {
            if (taken[size_t(g)])
                active = false;
            guard_arr = std::max(guard_arr, arrival(g, slot, 2));
        }

        if (!active) {
            // Disabled PE: forward the old destination value (hidden
            // dependency) so downstream consumers see it.
            uint32_t old_val = 0;
            uint64_t old_avail = iter_start;
            if (slot.prev_dest_writer != NoNode) {
                old_val = out[size_t(slot.prev_dest_writer)];
                old_avail = arrival(slot.prev_dest_writer, slot, 2);
            } else if (slot.prev_dest_live_in >= 0) {
                old_val = inst.regs[size_t(slot.prev_dest_live_in)];
                old_avail = std::max(
                    iter_start,
                    inst.reg_avail[size_t(slot.prev_dest_live_in)]);
            }
            out[i] = old_val;
            done[i] = std::max(guard_arr, old_avail);
            ++result.disabled_ops;
            if (prof_) {
                // Zero-length service: the slot's completion is set
                // entirely by its guard / forwarded-value arrivals.
                ProfSlot &ps = prof_slot_[i];
                ps.ready = done[i];
                ps.done = done[i];
                ps.mem = false;
            }
            continue;
        }

        // Operand values and arrival cycles.
        auto operand = [&](NodeId src, int live_in,
                           int idx) -> std::pair<uint32_t, uint64_t> {
            if (src != NoNode)
                return {out[size_t(src)], arrival(src, slot, idx)};
            if (live_in >= 0) {
                return {inst.regs[size_t(live_in)],
                        std::max(iter_start,
                                 inst.reg_avail[size_t(live_in)])};
            }
            return {0u, iter_start};
        };
        auto [v1, a1] = operand(slot.src1, slot.live_in1, 0);
        auto [v2, a2] = operand(slot.src2, slot.live_in2, 1);

        // Installed hardware defects corrupt the values flowing
        // through the faulty resources (see fault_plane.hh).
        uint32_t fault_xor = 0;
        if (has_faults) {
            const Coord phys = physicalPos(slot.pos, inst_index);
            for (const PeStuckFault &f : fault_plane_.stuck_pes)
                if (phys.valid() && phys == f.pos)
                    fault_xor ^= f.xor_mask;
            for (const TransientFault &f : fault_plane_.transients)
                if (f.slot == i && f.iteration == global_iter)
                    fault_xor ^= f.xor_mask;
            auto linkXor = [&](NodeId src) -> uint32_t {
                if (src == NoNode || !phys.valid())
                    return 0;
                const Coord from = physicalPos(
                    config_.slots[size_t(src)].pos, inst_index);
                uint32_t x = 0;
                for (const LinkFault &f : fault_plane_.dead_links)
                    if (from.valid() && from == f.from && phys == f.to)
                        x ^= f.xor_mask;
                return x;
            };
            if (const uint32_t x = linkXor(slot.src1)) {
                v1 ^= x;
                ++result.faults_fired;
            }
            if (const uint32_t x = linkXor(slot.src2)) {
                v2 ^= x;
                ++result.faults_fired;
            }
            if (fault_xor) {
                ++result.faults_fired;
                // A faulty PE corrupts what it produces: the branch
                // comparison input, the store data, or (below) the
                // computed result.
                if (slot.inst.cls() == OpClass::Branch)
                    v1 ^= fault_xor;
                else if (slot.inst.cls() == OpClass::Store)
                    v2 ^= fault_xor;
            }
        }

        uint64_t ready = std::max({a1, a2, guard_arr, iter_start});
        // The PE executes one instruction per iteration; pipelined
        // iterations (and time-multiplexed co-residents) reuse it
        // after the issue interval.
        const size_t pe_key =
            slot.pos.valid()
                ? size_t(slot.pos.r * config_.cols + slot.pos.c)
                : pe_invalid_base_ + i;
        uint64_t &pe_next = pe_free[pe_key];
        ready = std::max(ready, pe_next);

        const int32_t imm = slot_imm_[i];

        switch (slot.inst.cls()) {
          case OpClass::Branch:
            taken[i] = riscv::branchEval(op, v1, v2);
            if (has_faults && i == n - 1 && !taken[i]) {
                // Stuck control line: the closing branch always reads
                // taken, so the loop can never exit (induced hang).
                // Once engaged the line stays stuck — latch it so the
                // hang persists across epoch restarts too.
                for (BranchStuckFault &f :
                     fault_plane_.stuck_branches) {
                    if (global_iter >= f.from_iteration) {
                        f.from_iteration = 0;
                        taken[i] = true;
                        ++result.faults_fired;
                        break;
                    }
                }
            }
            done[i] = ready + uint64_t(slot.op_latency);
            break;

          case OpClass::Load: {
            const uint32_t addr = v1 + uint32_t(imm);
            ++result.loads;
            if (slot.forward_from_store != NoNode) {
                // Static store->load forwarding edge (paper §4.2):
                // one broadcast cycle after the store's data is ready.
                const size_t st = size_t(slot.forward_from_store);
                out[i] = out[st];
                done[i] = std::max(ready, done[st] + 1);
                ++result.store_load_forwards;
            } else if (const uint64_t *gd =
                           slot.vector_group >= 0 && !slot.vector_leader
                               ? groupDone(slot.vector_group)
                               : nullptr) {
                // Vectorized member: the leader's wide access covers
                // this element; no extra port use.
                out[i] = inst.lsu->peek(unsigned(i), addr, op);
                done[i] = std::max(ready, *gd);
            } else {
                const mem::LoadResult lr =
                    inst.lsu->load(unsigned(i), addr, op, ready);
                out[i] = lr.value;
                done[i] = lr.done_cycle;
                if (lr.forwarded)
                    ++result.store_load_forwards;
                if (lr.invalidated)
                    ++result.load_invalidations;
                if (slot.vector_group >= 0 && slot.vector_leader) {
                    if (uint64_t *lead = groupDone(slot.vector_group))
                        *lead = lr.done_cycle;
                    else
                        iter_group_done_.emplace_back(
                            slot.vector_group, lr.done_cycle);
                }
            }
            if (slot.prefetch) {
                hierarchy_.prefetch(addr +
                                    uint32_t(slot.prefetch_stride));
            }
            break;
          }

          case OpClass::Store: {
            const uint32_t addr = v1 + uint32_t(imm);
            inst.lsu->store(unsigned(i), addr, v2, op, ready);
            out[i] = v2; // visible to static forwarding consumers
            done[i] = ready + uint64_t(slot.op_latency);
            ++result.stores;
            break;
          }

          default:
            out[i] = riscv::aluEval(op, v1, v2, imm, slot.inst.pc);
            done[i] = ready + uint64_t(slot.op_latency);
            break;
        }

        if (fault_xor && slot.inst.cls() != OpClass::Branch &&
            slot.inst.cls() != OpClass::Store) {
            out[i] ^= fault_xor;
        }

        node_latency_[i].sample(double(done[i] - ready));
        // Pipelined PE: a new iteration's operation can issue after
        // the issue interval, not only after full completion.
        pe_next = ready + params_.pe_issue_interval;
        // Activity accounting: a PE is busy for its operation's
        // service time; time a load spends waiting on the memory
        // system is LS-entry time, not PE switching activity.
        const OpClass cls = slot.inst.cls();
        const uint64_t busy =
            cls == OpClass::Load ? 2 : uint64_t(slot.op_latency);
        result.pe_busy_cycles += busy;
        if (cls == OpClass::FpAlu || cls == OpClass::FpMul ||
            cls == OpClass::FpDiv) {
            result.fp_busy_cycles += busy;
        }
        if (prof_) {
            ProfSlot &ps = prof_slot_[i];
            ps.ready = ready;
            ps.done = done[i];
            ps.mem = cls == OpClass::Load || cls == OpClass::Store;
            const Coord phys = physicalPos(slot.pos, inst_index);
            if (phys.valid() && prof_->inGrid(phys.r, phys.c)) {
                const size_t pidx = prof_->index(phys.r, phys.c);
                prof_->pe_busy[pidx] += busy;
                prof_->pe_wait[pidx] += ready - iter_start;
                ++prof_->pe_ops[pidx];
            }
        }
    }

    // In-order store commit ends the iteration.
    const uint64_t commit = inst.lsu->commitStores();
    uint64_t end = commit;
    for (size_t i = 0; i < n; ++i)
        end = std::max(end, done[i]);

    // Latch live-outs for the next iteration.
    for (const auto &[reg, writer] : config_.live_outs) {
        inst.regs[size_t(reg)] = out[size_t(writer)];
        inst.reg_avail[size_t(reg)] = done[size_t(writer)];
    }

    ++inst.iterations;
    // The iteration's *exposed* wall window is whatever it extends
    // past this instance's previous critical end: back-to-back
    // iterations expose [iter_start, end], pipelined ones only their
    // uncovered tail. The exposed windows tile [0, last_end] exactly.
    if (prof_ && end > inst.last_end)
        attributeIteration(inst, inst.last_end, end);
    inst.last_end = std::max(inst.last_end, end);
    inst.next_floor = config_.pipelined ? iter_start + 1 : end;
    return taken[n - 1] != 0;
}

void
Accelerator::attributeIteration(Instance &inst, uint64_t lo, uint64_t end)
{
    const size_t n = config_.slots.size();
    uint64_t max_done = 0;
    size_t critical = 0;
    for (size_t i = 0; i < n; ++i) {
        if (iter_done_[i] > max_done) {
            max_done = iter_done_[i];
            critical = i;
        }
    }
    // Wall time past the last slot completion is the in-order
    // store-commit drain.
    if (end > max_done)
        inst.prof_mem += end - std::max(lo, max_done);
    if (max_done <= lo)
        return;

    // Walk the critical path backwards from the latest-finishing
    // slot. Each step attributes one contiguous segment — the slot's
    // service time, then the input transfer that released it — and
    // recurses into the producer, so the segments tile [lo, max_done]
    // with no gaps or overlaps (the sum invariant).
    size_t slot = critical;
    uint64_t t = max_done;
    size_t steps = 0;
    const size_t max_steps = 4 * n + 16;
    while (t > lo) {
        if (++steps > max_steps) {
            // Every edge hop costs >= 1 cycle, so the walk shortens t
            // each step; this cap is a safety net, never expected.
            inst.prof_compute += t - lo;
            break;
        }
        const ProfSlot &ps = prof_slot_[slot];
        const uint64_t svc_lo = std::max(lo, ps.ready);
        if (t > svc_lo)
            (ps.mem ? inst.prof_mem : inst.prof_compute) += t - svc_lo;
        if (ps.ready <= lo)
            break;
        t = ps.ready;
        const ProfEdge *edge = nullptr;
        for (const ProfEdge &e : ps.e) {
            if (e.used && e.arr == t) {
                edge = &e;
                break;
            }
        }
        if (!edge) {
            // Released by the iteration floor, a live-in register, or
            // PE issue-slot reuse: fabric occupancy, i.e. compute.
            inst.prof_compute += t - lo;
            break;
        }
        const uint64_t hop_lo = std::max(lo, edge->t0);
        if (t > hop_lo)
            (edge->noc ? inst.prof_noc : inst.prof_compute) += t - hop_lo;
        if (edge->t0 <= lo)
            break;
        t = edge->t0;
        slot = size_t(edge->src);
    }
}

AccelRunResult
Accelerator::run(riscv::ArchState &state, uint64_t max_iterations,
                 uint64_t cycle_budget)
{
    if (!configured())
        fatal("Accelerator::run: not configured");

    // Watchdog budget: the hard device cap and the caller's budget,
    // whichever is tighter (0 means unbounded on either side).
    uint64_t budget = ~uint64_t(0);
    if (params_.watchdog_cycles > 0)
        budget = params_.watchdog_cycles;
    if (cycle_budget > 0)
        budget = std::min(budget, cycle_budget);

    AccelRunResult result;
    const uint64_t dram_before = hierarchy_.dramAccesses();
    result.pes_used = config_.slots.size() * instances_.size();
    result.pes_total = params_.capacity();

    // Each run starts a fresh cycle timeline; forget port bookings
    // from previous profiling epochs.
    ports_.reset();

    // Latch live-in registers (control transfer from CPU, paper §5.1).
    for (size_t k = 0; k < instances_.size(); ++k) {
        Instance &inst = instances_[k];
        inst.regs.fill(0);
        inst.reg_avail.fill(0);
        for (int reg : config_.live_ins)
            inst.regs[size_t(reg)] = readUnified(state, reg);
        for (const auto &[reg, offset] :
             config_.instances[k].reg_offsets) {
            inst.regs[size_t(reg)] += uint32_t(offset);
        }
        std::fill(inst.bus_free.begin(), inst.bus_free.end(), 0);
        inst.next_floor = 0;
        inst.last_end = 0;
        inst.iterations = 0;
        inst.done = false;
        inst.prof_compute = inst.prof_noc = inst.prof_mem = 0;
        std::fill(pe_free_[k].begin(), pe_free_[k].end(), 0);
    }

    // An instance whose staggered start already fails the loop
    // condition must execute zero iterations: evaluate the closing
    // branch on the latched registers (the value its sources would
    // carry from the notional previous iteration).
    const PeSlot &closing = config_.slots.back();
    auto entryOperand = [&](const Instance &inst, NodeId src,
                            int live_in) -> uint32_t {
        if (src != NoNode) {
            const int dest =
                config_.slots[size_t(src)].inst.unifiedDest();
            return dest >= 0 ? inst.regs[size_t(dest)] : 0;
        }
        return live_in >= 0 ? inst.regs[size_t(live_in)] : 0;
    };
    for (auto &inst : instances_) {
        const uint32_t v1 =
            entryOperand(inst, closing.src1, closing.live_in1);
        const uint32_t v2 =
            entryOperand(inst, closing.src2, closing.live_in2);
        bool taken = riscv::branchEval(closing.inst.op, v1, v2);
        if (!taken && !fault_plane_.empty()) {
            // A stuck control line pins the closing branch to taken
            // from the very start of the run too — otherwise an
            // induced hang would be silently cured at the next epoch
            // boundary, when this fault-free entry check re-runs.
            for (const BranchStuckFault &f :
                 fault_plane_.stuck_branches) {
                if (f.from_iteration == 0) {
                    taken = true;
                    ++result.faults_fired;
                    break;
                }
            }
        }
        if (!taken)
            inst.done = true;
    }

    // Round-robin full rounds across tile instances; stopping only at
    // round boundaries keeps the executed-iteration set a prefix of
    // the sequential order (see DESIGN.md).
    bool all_done = false;
    while (!all_done && result.iterations < max_iterations) {
        all_done = true;
        for (auto &inst : instances_) {
            if (inst.done)
                continue;
            const bool cont = runIteration(inst, result);
            ++result.iterations;
            if (!cont)
                inst.done = true;
            else
                all_done = false;
        }
        if (!all_done) {
            // Watchdog: checked at round boundaries only, so a cut
            // keeps the executed-iteration set a prefix of sequential
            // order and the partial-progress write-back stays exact.
            uint64_t elapsed = 0;
            for (const auto &inst : instances_)
                elapsed = std::max(elapsed, inst.last_end);
            if (elapsed >= budget) {
                result.watchdog_tripped = true;
                break;
            }
        }
    }
    result.completed = all_done;

    // Write back architectural state (control transfer to CPU).
    // Induction registers merge across instances by taking the value
    // closest to the sequential exit value; other live-outs come from
    // the instance that executed the globally last iteration in
    // sequential order (instance k runs iterations k, k+T, ...), so
    // temporaries match a sequential execution exactly.
    size_t rep = 0;
    int64_t last_index = -1;
    const int64_t stride = int64_t(instances_.size());
    for (size_t k = 0; k < instances_.size(); ++k) {
        if (instances_[k].iterations == 0)
            continue;
        const int64_t last =
            int64_t(k) +
            (int64_t(instances_[k].iterations) - 1) * stride;
        if (last > last_index) {
            last_index = last;
            rep = k;
        }
    }

    for (const auto &[reg, writer] : config_.live_outs) {
        (void)writer;
        const dfg::InductionReg *ind = nullptr;
        for (const auto &cand : config_.inductions)
            if (cand.unified_reg == reg)
                ind = &cand;
        uint32_t value;
        if (ind && instances_.size() > 1) {
            int32_t best = int32_t(instances_[0].regs[size_t(reg)]);
            for (size_t k = 1; k < instances_.size(); ++k) {
                const int32_t v =
                    int32_t(instances_[k].regs[size_t(reg)]);
                best = ind->step > 0 ? std::min(best, v)
                                     : std::max(best, v);
            }
            value = uint32_t(best);
        } else {
            value = instances_[rep].regs[size_t(reg)];
        }
        writeUnified(state, reg, value);
    }
    if (result.completed) {
        state.pc = config_.resume_pc ? config_.resume_pc
                                     : config_.region_end;
    } else {
        state.pc = config_.region_start;
    }

    size_t critical_inst = 0;
    for (size_t k = 0; k < instances_.size(); ++k) {
        if (instances_[k].last_end > result.cycles) {
            result.cycles = instances_[k].last_end;
            critical_inst = k;
        }
    }
    if (Tracer::active()) {
        // One span per tile instance on the accelerator's local
        // timeline (the controller anchors the base at the epoch
        // start).
        Tracer &tracer = Tracer::global();
        for (size_t k = 0; k < instances_.size(); ++k) {
            const Instance &inst = instances_[k];
            if (inst.iterations == 0)
                continue;
            tracer.spanLocal(trace_track_, "tile" + std::to_string(k),
                             0, inst.last_end,
                             {{"iterations", inst.iterations}});
        }
    }
    result.dram_accesses = hierarchy_.dramAccesses() - dram_before;
    // DRAM bandwidth floor: the accelerator shares the same memory
    // channels the CPU baseline contends on.
    if (!params_.ideal_memory && result.dram_accesses > 0) {
        const uint64_t floor = uint64_t(
            std::ceil(double(result.dram_accesses) /
                      params_.dram_accesses_per_cycle));
        result.cycles = std::max(result.cycles, floor);
    }
    if (prof_) {
        // The run's device cycles equal the critical instance's wall
        // time, so that instance's window decomposition *is* the
        // run's attribution; cycles the DRAM bandwidth floor added on
        // top of the dataflow schedule are memory stall. The three
        // buckets grow by exactly result.cycles.
        const Instance &ci = instances_[critical_inst];
        prof_->compute_cycles += ci.prof_compute;
        prof_->noc_stall_cycles += ci.prof_noc;
        prof_->mem_stall_cycles += ci.prof_mem;
        prof_->mem_stall_cycles += result.cycles - ci.last_end;
        prof_->port_wait_cycles += ports_.contentionWait();
    }
    return result;
}

} // namespace mesa::accel
