#include "accel/accelerator.hh"

#include <algorithm>
#include <cmath>

#include "riscv/alu.hh"
#include "util/logging.hh"
#include "util/trace.hh"

namespace mesa::accel
{

using dfg::NodeId;
using dfg::NoNode;
using ic::Coord;
using riscv::Op;
using riscv::OpClass;

void
AccelRunResult::accumulate(const AccelRunResult &epoch)
{
    cycles += epoch.cycles;
    iterations += epoch.iterations;
    completed = epoch.completed;
    pe_busy_cycles += epoch.pe_busy_cycles;
    fp_busy_cycles += epoch.fp_busy_cycles;
    disabled_ops += epoch.disabled_ops;
    noc_transfers += epoch.noc_transfers;
    local_transfers += epoch.local_transfers;
    loads += epoch.loads;
    stores += epoch.stores;
    store_load_forwards += epoch.store_load_forwards;
    load_invalidations += epoch.load_invalidations;
    dram_accesses += epoch.dram_accesses;
    pes_used = std::max(pes_used, epoch.pes_used);
    pes_total = epoch.pes_total;
}

Accelerator::Accelerator(const AccelParams &params,
                         mem::MainMemory &memory,
                         const mem::HierarchyParams &mem_params)
    : params_(params), memory_(memory), hierarchy_(mem_params),
      ports_(params.ideal_memory ? 4096u : params.mem_ports),
      ic_(std::make_unique<ic::AccelNocInterconnect>(
          params.rows, params.cols, params.noc_slice_width))
{
}

void
Accelerator::configure(const AcceleratorConfig &config)
{
    for (size_t i = 0; i < config.slots.size(); ++i) {
        MESA_ASSERT(config.slots[i].node == NodeId(i),
                    "Accelerator::configure: slots must be in program "
                    "order with node == index");
    }
    if (config.slots.empty())
        fatal("Accelerator::configure: empty configuration");
    if (!config.slots.back().inst.isBranch())
        fatal("Accelerator::configure: last slot must be the loop's "
              "backward branch");

    config_ = config;

    instances_.clear();
    instances_.resize(config_.instances.size());
    for (auto &inst : instances_) {
        inst.lsu = std::make_unique<mem::LoadStoreUnit>(memory_,
                                                        hierarchy_, ports_);
    }
    pe_free_.assign(instances_.size(), {});
    resetCounters();
}

void
Accelerator::resetCounters()
{
    const size_t n = config_.slots.size();
    node_latency_.assign(n, Average{});
    edge_latency1_.assign(n, Average{});
    edge_latency2_.assign(n, Average{});
}

double
Accelerator::measuredNodeLatency(NodeId id) const
{
    if (id < 0 || size_t(id) >= node_latency_.size())
        return -1.0;
    const Average &avg = node_latency_[size_t(id)];
    return avg.count() ? avg.mean() : -1.0;
}

double
Accelerator::measuredEdgeLatency(NodeId id, int operand) const
{
    const auto &vec = operand == 0 ? edge_latency1_ : edge_latency2_;
    if (id < 0 || size_t(id) >= vec.size())
        return -1.0;
    return vec[size_t(id)].count() ? vec[size_t(id)].mean() : -1.0;
}

namespace
{

/** Read a unified register from the architectural state. */
uint32_t
readUnified(const riscv::ArchState &state, int reg)
{
    return reg < riscv::NumIntRegs
               ? state.x[size_t(reg)]
               : state.f[size_t(reg - riscv::NumIntRegs)];
}

/** Write a unified register to the architectural state. */
void
writeUnified(riscv::ArchState &state, int reg, uint32_t value)
{
    if (reg == 0)
        return;
    if (reg < riscv::NumIntRegs)
        state.x[size_t(reg)] = value;
    else
        state.f[size_t(reg - riscv::NumIntRegs)] = value;
}

} // namespace

bool
Accelerator::runIteration(Instance &inst, AccelRunResult &result)
{
    const size_t n = config_.slots.size();
    const uint64_t iter_start = inst.next_floor;
    const size_t inst_index = size_t(&inst - instances_.data());
    auto &pe_free = pe_free_[inst_index];

    std::vector<uint32_t> out(n, 0);
    std::vector<uint64_t> done(n, iter_start);
    std::vector<bool> taken(n, false);
    std::map<int, uint64_t> group_done;

    // Data transfer from a producer PE to this slot's PE, including
    // NoC bus contention; samples the edge latency counter.
    auto arrival = [&](NodeId src, const PeSlot &slot,
                       int operand) -> uint64_t {
        const Coord from = config_.slots[size_t(src)].pos;
        const uint64_t t0 = done[size_t(src)];
        // Unmapped endpoints use the secondary data-forwarding bus
        // (paper §3.3: mapping failures revert to a slower fallback).
        if (!from.valid() || !slot.pos.valid()) {
            const uint64_t arr =
                t0 + uint64_t(params_.fallback_bus_latency);
            if (operand == 0)
                edge_latency1_[size_t(slot.node)].sample(double(arr - t0));
            else if (operand == 1)
                edge_latency2_[size_t(slot.node)].sample(double(arr - t0));
            return arr;
        }
        const uint32_t base = ic_->latency(from, slot.pos);
        const int bus = ic_->busId(from, slot.pos);
        uint64_t start = t0;
        if (bus >= 0) {
            uint64_t &free = inst.bus_free[bus];
            start = std::max(t0, free);
            free = start + 1;
            ++result.noc_transfers;
        } else {
            ++result.local_transfers;
        }
        const uint64_t arr = start + base;
        if (operand == 0)
            edge_latency1_[size_t(slot.node)].sample(double(arr - t0));
        else if (operand == 1)
            edge_latency2_[size_t(slot.node)].sample(double(arr - t0));
        return arr;
    };

    for (size_t i = 0; i < n; ++i) {
        const PeSlot &slot = config_.slots[i];
        const Op op = slot.inst.op;

        // Guards: the control network disables skipped PEs.
        bool active = true;
        uint64_t guard_arr = iter_start;
        for (NodeId g : slot.guards) {
            if (taken[size_t(g)])
                active = false;
            guard_arr = std::max(guard_arr, arrival(g, slot, 2));
        }

        if (!active) {
            // Disabled PE: forward the old destination value (hidden
            // dependency) so downstream consumers see it.
            uint32_t old_val = 0;
            uint64_t old_avail = iter_start;
            if (slot.prev_dest_writer != NoNode) {
                old_val = out[size_t(slot.prev_dest_writer)];
                old_avail = arrival(slot.prev_dest_writer, slot, 2);
            } else if (slot.prev_dest_live_in >= 0) {
                old_val = inst.regs[size_t(slot.prev_dest_live_in)];
                old_avail = std::max(
                    iter_start,
                    inst.reg_avail[size_t(slot.prev_dest_live_in)]);
            }
            out[i] = old_val;
            done[i] = std::max(guard_arr, old_avail);
            ++result.disabled_ops;
            continue;
        }

        // Operand values and arrival cycles.
        auto operand = [&](NodeId src, int live_in,
                           int idx) -> std::pair<uint32_t, uint64_t> {
            if (src != NoNode)
                return {out[size_t(src)], arrival(src, slot, idx)};
            if (live_in >= 0) {
                return {inst.regs[size_t(live_in)],
                        std::max(iter_start,
                                 inst.reg_avail[size_t(live_in)])};
            }
            return {0u, iter_start};
        };
        const auto [v1, a1] = operand(slot.src1, slot.live_in1, 0);
        const auto [v2, a2] = operand(slot.src2, slot.live_in2, 1);

        uint64_t ready = std::max({a1, a2, guard_arr, iter_start});
        // The PE executes one instruction per iteration; pipelined
        // iterations (and time-multiplexed co-residents) reuse it
        // after the issue interval.
        const int pe_key = slot.pos.valid()
                               ? slot.pos.r * config_.cols + slot.pos.c
                               : -int(i) - 1;
        uint64_t &pe_next = pe_free[pe_key];
        ready = std::max(ready, pe_next);

        int32_t imm = slot.inst.imm;
        if (auto it = config_.imm_overrides.find(slot.node);
            it != config_.imm_overrides.end()) {
            imm = it->second;
        }

        switch (slot.inst.cls()) {
          case OpClass::Branch:
            taken[i] = riscv::branchEval(op, v1, v2);
            done[i] = ready + uint64_t(slot.op_latency);
            break;

          case OpClass::Load: {
            const uint32_t addr = v1 + uint32_t(imm);
            ++result.loads;
            if (slot.forward_from_store != NoNode) {
                // Static store->load forwarding edge (paper §4.2):
                // one broadcast cycle after the store's data is ready.
                const size_t st = size_t(slot.forward_from_store);
                out[i] = out[st];
                done[i] = std::max(ready, done[st] + 1);
                ++result.store_load_forwards;
            } else if (slot.vector_group >= 0 && !slot.vector_leader &&
                       group_done.count(slot.vector_group)) {
                // Vectorized member: the leader's wide access covers
                // this element; no extra port use.
                out[i] = inst.lsu->peek(unsigned(i), addr, op);
                done[i] =
                    std::max(ready, group_done[slot.vector_group]);
            } else {
                const mem::LoadResult lr =
                    inst.lsu->load(unsigned(i), addr, op, ready);
                out[i] = lr.value;
                done[i] = lr.done_cycle;
                if (lr.forwarded)
                    ++result.store_load_forwards;
                if (lr.invalidated)
                    ++result.load_invalidations;
                if (slot.vector_group >= 0 && slot.vector_leader)
                    group_done[slot.vector_group] = lr.done_cycle;
            }
            if (slot.prefetch) {
                hierarchy_.prefetch(addr +
                                    uint32_t(slot.prefetch_stride));
            }
            break;
          }

          case OpClass::Store: {
            const uint32_t addr = v1 + uint32_t(imm);
            inst.lsu->store(unsigned(i), addr, v2, op, ready);
            out[i] = v2; // visible to static forwarding consumers
            done[i] = ready + uint64_t(slot.op_latency);
            ++result.stores;
            break;
          }

          default:
            out[i] = riscv::aluEval(op, v1, v2, imm, slot.inst.pc);
            done[i] = ready + uint64_t(slot.op_latency);
            break;
        }

        node_latency_[i].sample(double(done[i] - ready));
        // Pipelined PE: a new iteration's operation can issue after
        // the issue interval, not only after full completion.
        pe_next = ready + params_.pe_issue_interval;
        // Activity accounting: a PE is busy for its operation's
        // service time; time a load spends waiting on the memory
        // system is LS-entry time, not PE switching activity.
        const OpClass cls = slot.inst.cls();
        const uint64_t busy =
            cls == OpClass::Load ? 2 : uint64_t(slot.op_latency);
        result.pe_busy_cycles += busy;
        if (cls == OpClass::FpAlu || cls == OpClass::FpMul ||
            cls == OpClass::FpDiv) {
            result.fp_busy_cycles += busy;
        }
    }

    // In-order store commit ends the iteration.
    const uint64_t commit = inst.lsu->commitStores();
    uint64_t end = commit;
    for (size_t i = 0; i < n; ++i)
        end = std::max(end, done[i]);

    // Latch live-outs for the next iteration.
    for (const auto &[reg, writer] : config_.live_outs) {
        inst.regs[size_t(reg)] = out[size_t(writer)];
        inst.reg_avail[size_t(reg)] = done[size_t(writer)];
    }

    ++inst.iterations;
    inst.last_end = std::max(inst.last_end, end);
    inst.next_floor = config_.pipelined ? iter_start + 1 : end;
    return taken[n - 1];
}

AccelRunResult
Accelerator::run(riscv::ArchState &state, uint64_t max_iterations)
{
    if (!configured())
        fatal("Accelerator::run: not configured");

    AccelRunResult result;
    const uint64_t dram_before = hierarchy_.dramAccesses();
    result.pes_used = config_.slots.size() * instances_.size();
    result.pes_total = params_.capacity();

    // Each run starts a fresh cycle timeline; forget port bookings
    // from previous profiling epochs.
    ports_.reset();

    // Latch live-in registers (control transfer from CPU, paper §5.1).
    for (size_t k = 0; k < instances_.size(); ++k) {
        Instance &inst = instances_[k];
        inst.regs.fill(0);
        inst.reg_avail.fill(0);
        for (int reg : config_.live_ins)
            inst.regs[size_t(reg)] = readUnified(state, reg);
        for (const auto &[reg, offset] :
             config_.instances[k].reg_offsets) {
            inst.regs[size_t(reg)] += uint32_t(offset);
        }
        inst.bus_free.clear();
        inst.next_floor = 0;
        inst.last_end = 0;
        inst.iterations = 0;
        inst.done = false;
        pe_free_[k].clear();
    }

    // An instance whose staggered start already fails the loop
    // condition must execute zero iterations: evaluate the closing
    // branch on the latched registers (the value its sources would
    // carry from the notional previous iteration).
    const PeSlot &closing = config_.slots.back();
    auto entryOperand = [&](const Instance &inst, NodeId src,
                            int live_in) -> uint32_t {
        if (src != NoNode) {
            const int dest =
                config_.slots[size_t(src)].inst.unifiedDest();
            return dest >= 0 ? inst.regs[size_t(dest)] : 0;
        }
        return live_in >= 0 ? inst.regs[size_t(live_in)] : 0;
    };
    for (auto &inst : instances_) {
        const uint32_t v1 =
            entryOperand(inst, closing.src1, closing.live_in1);
        const uint32_t v2 =
            entryOperand(inst, closing.src2, closing.live_in2);
        if (!riscv::branchEval(closing.inst.op, v1, v2))
            inst.done = true;
    }

    // Round-robin full rounds across tile instances; stopping only at
    // round boundaries keeps the executed-iteration set a prefix of
    // the sequential order (see DESIGN.md).
    bool all_done = false;
    while (!all_done && result.iterations < max_iterations) {
        all_done = true;
        for (auto &inst : instances_) {
            if (inst.done)
                continue;
            const bool cont = runIteration(inst, result);
            ++result.iterations;
            if (!cont)
                inst.done = true;
            else
                all_done = false;
        }
    }
    result.completed = all_done;

    // Write back architectural state (control transfer to CPU).
    // Induction registers merge across instances by taking the value
    // closest to the sequential exit value; other live-outs come from
    // the instance that executed the globally last iteration in
    // sequential order (instance k runs iterations k, k+T, ...), so
    // temporaries match a sequential execution exactly.
    size_t rep = 0;
    int64_t last_index = -1;
    const int64_t stride = int64_t(instances_.size());
    for (size_t k = 0; k < instances_.size(); ++k) {
        if (instances_[k].iterations == 0)
            continue;
        const int64_t last =
            int64_t(k) +
            (int64_t(instances_[k].iterations) - 1) * stride;
        if (last > last_index) {
            last_index = last;
            rep = k;
        }
    }

    for (const auto &[reg, writer] : config_.live_outs) {
        (void)writer;
        const dfg::InductionReg *ind = nullptr;
        for (const auto &cand : config_.inductions)
            if (cand.unified_reg == reg)
                ind = &cand;
        uint32_t value;
        if (ind && instances_.size() > 1) {
            int32_t best = int32_t(instances_[0].regs[size_t(reg)]);
            for (size_t k = 1; k < instances_.size(); ++k) {
                const int32_t v =
                    int32_t(instances_[k].regs[size_t(reg)]);
                best = ind->step > 0 ? std::min(best, v)
                                     : std::max(best, v);
            }
            value = uint32_t(best);
        } else {
            value = instances_[rep].regs[size_t(reg)];
        }
        writeUnified(state, reg, value);
    }
    if (result.completed) {
        state.pc = config_.resume_pc ? config_.resume_pc
                                     : config_.region_end;
    } else {
        state.pc = config_.region_start;
    }

    for (const auto &inst : instances_)
        result.cycles = std::max(result.cycles, inst.last_end);
    if (Tracer::active()) {
        // One span per tile instance on the accelerator's local
        // timeline (the controller anchors the base at the epoch
        // start).
        Tracer &tracer = Tracer::global();
        for (size_t k = 0; k < instances_.size(); ++k) {
            const Instance &inst = instances_[k];
            if (inst.iterations == 0)
                continue;
            tracer.spanLocal(trace_track_, "tile" + std::to_string(k),
                             0, inst.last_end,
                             {{"iterations", inst.iterations}});
        }
    }
    result.dram_accesses = hierarchy_.dramAccesses() - dram_before;
    // DRAM bandwidth floor: the accelerator shares the same memory
    // channels the CPU baseline contends on.
    if (!params_.ideal_memory && result.dram_accesses > 0) {
        const uint64_t floor = uint64_t(
            std::ceil(double(result.dram_accesses) /
                      params_.dram_accesses_per_cycle));
        result.cycles = std::max(result.cycles, floor);
    }
    return result;
}

} // namespace mesa::accel
