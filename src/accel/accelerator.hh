/**
 * @file
 * Cycle-level model of the custom spatial accelerator (paper §5.2):
 * a grid of PEs joined by direct neighbor links and a half-ring NoC,
 * load/store entries sharing memory ports, a control network
 * asserting per-PE enable signals (predicated forward branches), and
 * per-PE latency counters that feed MESA's performance model.
 *
 * Execution follows the configured dataflow: each PE holds one
 * instruction (or, with the time-multiplexing extension, a few that
 * share its issue slots); an operation starts when its inputs arrive
 * and its guards allow it. Iterations either run back-to-back or
 * overlap (loop pipelining); tiled instances of the same SDFG run
 * concurrently, sharing memory ports (paper Fig. 6).
 */

#ifndef MESA_ACCEL_ACCELERATOR_HH
#define MESA_ACCEL_ACCELERATOR_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "accel/config_types.hh"
#include "accel/fault_plane.hh"
#include "accel/params.hh"
#include "mem/cache.hh"
#include "mem/lsq.hh"
#include "mem/memory.hh"
#include "prof/profile.hh"
#include "riscv/emulator.hh"
#include "util/stats.hh"

namespace mesa::accel
{

/** Aggregate outcome and activity of one accelerated run. */
struct AccelRunResult
{
    uint64_t cycles = 0;      ///< Wall-clock cycles of the whole run.
    uint64_t iterations = 0;  ///< Total loop iterations (all tiles).
    bool completed = false;   ///< Loop exited via its branch condition.

    // Activity counters for the energy model (clock-gated PEs do not
    // accumulate busy cycles).
    uint64_t pe_busy_cycles = 0;
    uint64_t fp_busy_cycles = 0;
    uint64_t disabled_ops = 0; ///< Predicated-off executions.
    uint64_t noc_transfers = 0;
    uint64_t local_transfers = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t store_load_forwards = 0;
    uint64_t load_invalidations = 0;
    uint64_t dram_accesses = 0;

    /** Configured (powered) PEs vs the whole array: unused tiles are
     *  power-gated, so leakage scales with the active region. */
    uint64_t pes_used = 0;
    uint64_t pes_total = 0;

    /** The watchdog cycle budget cut this run off mid-loop. */
    bool watchdog_tripped = false;

    /** Installed fault-plane activations that corrupted a value. */
    uint64_t faults_fired = 0;

    double
    avgIterationCycles() const
    {
        return iterations ? double(cycles) / double(iterations) : 0.0;
    }

    /** Fold one epoch's counters into this aggregate. */
    void accumulate(const AccelRunResult &epoch);
};

/** The accelerator device. Configure once per region, then run. */
class Accelerator
{
  public:
    Accelerator(const AccelParams &params, mem::MainMemory &memory,
                const mem::HierarchyParams &mem_params = {});

    /** Install a configuration (T3); clears all run state. */
    void configure(const AcceleratorConfig &config);

    bool configured() const { return !config_.slots.empty(); }
    const AcceleratorConfig &config() const { return config_; }

    /**
     * Execute the configured loop starting from the CPU's
     * architectural state. Live-ins are latched from @p state; on
     * completion live-outs and the exit pc are written back.
     *
     * @param max_iterations stop early after this many total
     *        iterations (the controller uses this for profiling
     *        epochs between re-optimizations)
     * @param cycle_budget additional watchdog budget for this run
     *        (0 = none); the effective cap is the smaller of this and
     *        params().watchdog_cycles. The fault-tolerant controller
     *        threads its remaining per-offload budget through here.
     */
    AccelRunResult run(riscv::ArchState &state,
                       uint64_t max_iterations = ~uint64_t(0),
                       uint64_t cycle_budget = 0);

    const AccelParams &params() const { return params_; }
    const ic::Interconnect &interconnect() const { return *ic_; }
    mem::MemHierarchy &hierarchy() { return hierarchy_; }

    /**
     * Re-point the fabric's load/store path at a different main
     * memory. Takes effect at the next configure() (which rebuilds
     * every instance's load/store unit); never call it mid-run. This
     * is the service-layer decoupling: one persistent fabric instance
     * (warm hierarchy tags, fault plane, latency counters) serves a
     * stream of jobs that each bring their own memory image.
     */
    void rebindMemory(mem::MainMemory &memory) { memory_ = &memory; }

    /**
     * Timeline track this device emits its tile spans on. A scheduler
     * running several sub-array partitions concurrently gives each
     * its own track so their slices do not interleave on "accel".
     */
    void setTraceTrack(std::string track)
    {
        trace_track_ = std::move(track);
    }
    const std::string &traceTrack() const { return trace_track_; }

    // ----- fault injection (mesa_fault campaigns) -----

    /** Install a set of hardware defects; persists across configure().
     *  Physical coordinates — virtual slot positions are translated
     *  (time-multiplex fold, tile origin) before matching. */
    void injectFaults(const FaultPlane &plane);
    const FaultPlane &faultPlane() const { return fault_plane_; }
    void clearFaults() { fault_plane_ = FaultPlane{}; }

    /**
     * Built-in self test: exercises every PE and link with a known
     * pattern and reports the physical PEs whose datapath misbehaves
     * (a dead link implicates both endpoints). Transient upsets and
     * stuck control lines are, by nature, not reproducible under
     * BIST and are not reported. The controller feeds the result into
     * the mapper's blocked set so re-mapping routes around defects.
     */
    std::vector<ic::Coord> selfTest() const;

    /**
     * Attach (or detach, with nullptr) a cycle-attribution profile.
     * While attached, every run() decomposes its wall cycles into
     * compute / NoC-stall / mem-stall — summing exactly to the cycles
     * it returns — and feeds the spatial per-PE / per-link counters.
     * Detached profiling is zero-cost beyond one pointer test per
     * guarded site. The profile is resized to the physical grid.
     */
    void setProfile(prof::AccelProfile *profile);
    prof::AccelProfile *profile() const { return prof_; }

    /** Measured average execution latency of a node (PE counters). */
    double measuredNodeLatency(dfg::NodeId id) const;

    /** Measured average transfer latency into node id, operand 0/1. */
    double measuredEdgeLatency(dfg::NodeId id, int operand) const;

    /** Reset the latency counters (new profiling epoch). */
    void resetCounters();

  private:
    struct Instance
    {
        std::array<uint32_t, riscv::NumUnifiedRegs> regs{};
        std::array<uint64_t, riscv::NumUnifiedRegs> reg_avail{};
        std::unique_ptr<mem::LoadStoreUnit> lsu;
        /** Next-free cycle per NoC bus id, grown on first use; a
         *  dense array probed once per transfer in the hot loop. */
        std::vector<uint64_t> bus_free;
        uint64_t next_floor = 0;
        uint64_t last_end = 0;
        uint64_t iterations = 0;
        bool done = false;

        // Per-instance cycle attribution (profiling only): the
        // exposed wall windows of this instance's iterations, split
        // compute / NoC stall / mem stall. The critical (slowest)
        // instance's split is the run's device-cycle attribution.
        uint64_t prof_compute = 0;
        uint64_t prof_noc = 0;
        uint64_t prof_mem = 0;
    };

    /**
     * Profiling scratch: how each slot's completion this iteration
     * was produced, enough to walk the critical path backwards.
     */
    struct ProfEdge
    {
        int32_t src = -1;  ///< Producer slot index.
        uint64_t t0 = 0;   ///< Producer completion (segment start).
        uint64_t arr = 0;  ///< Arrival at the consumer.
        bool noc = false;  ///< Shared-bus or fallback-bus transfer.
        bool used = false;
    };

    struct ProfSlot
    {
        uint64_t ready = 0; ///< Service start (== done when disabled).
        uint64_t done = 0;
        bool mem = false;   ///< Service segment is memory time.
        std::array<ProfEdge, 3> e; ///< Operand 0/1, max guard input.
    };

    /** One iteration of one instance; returns loop-continue. */
    bool runIteration(Instance &inst, AccelRunResult &result);

    /**
     * Decompose one iteration's exposed wall window [lo, end) of
     * @p inst by walking the critical path backwards through the
     * recorded ProfSlot bindings (see prof/profile.hh for the model).
     * The attributed segments tile the window exactly.
     */
    void attributeIteration(Instance &inst, uint64_t lo, uint64_t end);

    /** Physical PE a slot executes on for a given tile instance. */
    ic::Coord physicalPos(ic::Coord pos, size_t inst_index) const;

    const AccelParams params_;
    mem::MainMemory *memory_; ///< Rebindable (see rebindMemory).
    mem::MemHierarchy hierarchy_;
    mem::PortPool ports_;
    std::unique_ptr<ic::Interconnect> ic_;

    AcceleratorConfig config_;
    std::vector<Instance> instances_;
    std::string trace_track_ = "accel";
    FaultPlane fault_plane_;
    prof::AccelProfile *prof_ = nullptr;
    std::vector<ProfSlot> prof_slot_; ///< Sized with the config.

    /** Per-PE busy tracking keyed by flattened virtual position
     *  (pipelining resource constraint; time-multiplexed nodes share
     *  a key). Keys above pe_invalid_base_ are the per-slot fallback
     *  keys for unmapped nodes. */
    std::vector<std::vector<uint64_t>> pe_free_; // [instance][key]
    size_t pe_invalid_base_ = 0;
    /** Per-slot effective immediate (imm_overrides pre-resolved at
     *  configure time so the hot loop skips the map lookup). */
    std::vector<int32_t> slot_imm_;

    // Per-iteration scratch, sized once in configure() and reused so
    // the per-cycle loop performs no heap allocation.
    std::vector<uint32_t> iter_out_;
    std::vector<uint64_t> iter_done_;
    std::vector<char> iter_taken_;
    std::vector<std::pair<int, uint64_t>> iter_group_done_;

    // Performance counters (paper §5.2): per-node and per-edge.
    std::vector<Average> node_latency_;
    std::vector<Average> edge_latency1_;
    std::vector<Average> edge_latency2_;
};

} // namespace mesa::accel

#endif // MESA_ACCEL_ACCELERATOR_HH
