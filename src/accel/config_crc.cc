#include <bit>

#include "accel/config_types.hh"
#include "util/crc32.hh"

namespace mesa::accel
{

namespace
{

void
addCoord(Crc32 &c, ic::Coord pos)
{
    c.add32(uint32_t(pos.r));
    c.add32(uint32_t(pos.c));
}

void
addInstruction(Crc32 &c, const riscv::Instruction &inst)
{
    // The raw encoding covers op/rd/rs*/imm for real instructions;
    // hash the decoded fields too so synthetic (assembler-built)
    // instructions with patched fields are fully covered.
    c.add32(inst.raw);
    c.add32(inst.pc);
    c.add32(uint32_t(inst.op));
    c.add32(uint32_t(inst.rd));
    c.add32(uint32_t(inst.rs1));
    c.add32(uint32_t(inst.rs2));
    c.add32(uint32_t(inst.rs3));
    c.add32(uint32_t(inst.imm));
}

} // namespace

uint32_t
configCrc(const AcceleratorConfig &config)
{
    Crc32 c;
    c.add32(config.region_start);
    c.add32(config.region_end);
    c.add32(config.resume_pc);
    c.add32(uint32_t(config.rows));
    c.add32(uint32_t(config.cols));
    c.add32(uint32_t(config.pipelined));
    c.add32(uint32_t(config.time_multiplex));

    c.add64(config.slots.size());
    for (const PeSlot &slot : config.slots) {
        c.add32(uint32_t(slot.node));
        addInstruction(c, slot.inst);
        addCoord(c, slot.pos);
        c.add32(uint32_t(slot.src1));
        c.add32(uint32_t(slot.src2));
        c.add32(uint32_t(slot.live_in1));
        c.add32(uint32_t(slot.live_in2));
        c.add64(slot.guards.size());
        for (dfg::NodeId g : slot.guards)
            c.add32(uint32_t(g));
        c.add32(uint32_t(slot.prev_dest_writer));
        c.add32(uint32_t(slot.prev_dest_live_in));
        c.add64(std::bit_cast<uint64_t>(slot.op_latency));
        c.add32(uint32_t(slot.forward_from_store));
        c.add32(uint32_t(slot.vector_group));
        c.add32(uint32_t(slot.vector_leader));
        c.add32(uint32_t(slot.prefetch));
        c.add32(uint32_t(slot.prefetch_stride));
    }

    c.add64(config.live_ins.size());
    for (int reg : config.live_ins)
        c.add32(uint32_t(reg));

    c.add64(config.live_outs.size());
    for (const auto &[reg, writer] : config.live_outs) {
        c.add32(uint32_t(reg));
        c.add32(uint32_t(writer));
    }

    c.add64(config.inductions.size());
    for (const auto &ind : config.inductions) {
        c.add32(uint32_t(ind.unified_reg));
        c.add32(uint32_t(ind.update_node));
        c.add32(uint32_t(ind.step));
    }

    c.add64(config.imm_overrides.size());
    for (const auto &[node, imm] : config.imm_overrides) {
        c.add32(uint32_t(node));
        c.add32(uint32_t(imm));
    }

    c.add64(config.instances.size());
    for (const TileInstance &inst : config.instances) {
        addCoord(c, inst.origin);
        c.add64(inst.reg_offsets.size());
        for (const auto &[reg, offset] : inst.reg_offsets) {
            c.add32(uint32_t(reg));
            c.add32(uint32_t(offset));
        }
    }
    return c.value();
}

} // namespace mesa::accel
