#include "accel/params.hh"

#include <algorithm>

#include "util/logging.hh"

namespace mesa::accel
{

using riscv::OpClass;

bool
AccelParams::supportsOp(ic::Coord pos, OpClass cls) const
{
    switch (cls) {
      case OpClass::FpAlu:
      case OpClass::FpMul:
      case OpClass::FpDiv: {
        if (!fp_slices)
            return false;
        // FP slices striped in alternating columns (half of all PEs
        // carry FP logic); FP dataflow chains then run vertically
        // over the single-cycle local links with integer/memory
        // columns interleaved beside them.
        return pos.c % 2 == 0;
      }
      case OpClass::Nop:
      case OpClass::System:
        return false;
      default:
        // Integer ALU/mul/div, memory address generation, branches:
        // every PE.
        return true;
    }
}

Matrix<uint8_t>
AccelParams::opMask(OpClass cls) const
{
    Matrix<uint8_t> m(size_t(rows), size_t(cols), 0);
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            m(size_t(r), size_t(c)) = supportsOp({r, c}, cls) ? 1 : 0;
    return m;
}

AccelParams
AccelParams::m64()
{
    AccelParams p;
    p.name = "M-64";
    p.rows = 16;
    p.cols = 4;
    p.mem_ports = 8;
    return p;
}

AccelParams
AccelParams::m128()
{
    AccelParams p;
    p.name = "M-128";
    p.rows = 16;
    p.cols = 8;
    p.mem_ports = 16;
    return p;
}

AccelParams
AccelParams::m512()
{
    AccelParams p;
    p.name = "M-512";
    p.rows = 64;
    p.cols = 8;
    p.mem_ports = 32;
    return p;
}

AccelParams
AccelParams::byName(const std::string &name)
{
    if (name == "M-64")
        return m64();
    if (name == "M-128")
        return m128();
    if (name == "M-512")
        return m512();
    fatal("AccelParams::byName: unknown preset '", name,
          "' (known: M-64 M-128 M-512)");
}

AccelParams
AccelParams::subArray(int origin_row, int sub_rows) const
{
    if (origin_row < 0 || sub_rows < 1 || origin_row + sub_rows > rows)
        fatal("AccelParams::subArray: rows [", origin_row, ", ",
              origin_row + sub_rows, ") outside grid of ", rows,
              " rows");
    AccelParams p = *this;
    p.name = name + "/r" + std::to_string(origin_row) + "+" +
             std::to_string(sub_rows);
    p.rows = sub_rows;
    const double share = double(sub_rows) / double(rows);
    p.mem_ports =
        std::max(1u, unsigned(double(mem_ports) * share + 0.5));
    p.dram_accesses_per_cycle =
        std::max(0.125, dram_accesses_per_cycle * share);
    return p;
}

AccelParams
AccelParams::withPeCount(int pes)
{
    AccelParams p;
    if (pes < 4)
        fatal("AccelParams::withPeCount: need at least 4 PEs");
    // Keep 4-8 columns like the paper's configurations, preferring
    // tall grids (tiles stack vertically).
    const int cols = pes >= 128 ? 8 : 4;
    if (pes % cols != 0)
        fatal("AccelParams::withPeCount: ", pes,
              " not divisible into ", cols, " columns");
    p.rows = pes / cols;
    p.cols = cols;
    p.name = "M-" + std::to_string(pes);
    p.mem_ports = unsigned(std::max(2, pes / 8));
    return p;
}

} // namespace mesa::accel
