/**
 * @file
 * Parameters of the custom parameterizable spatial accelerator (paper
 * §5.2): PE grid geometry, FP-slice placement, memory ports, NoC
 * slice width, and the standard M-64 / M-128 / M-512 configurations
 * used throughout the evaluation.
 */

#ifndef MESA_ACCEL_PARAMS_HH
#define MESA_ACCEL_PARAMS_HH

#include <string>

#include "dfg/ldfg.hh"
#include "interconnect/interconnect.hh"
#include "riscv/isa.hh"
#include "util/matrix.hh"

namespace mesa::accel
{

/** Geometry and timing of one accelerator backend. */
struct AccelParams
{
    std::string name = "M-128";
    int rows = 16;
    int cols = 8;

    /**
     * Shared memory ports serving all load/store entries. The paper's
     * LS subsystem (9.62mm^2 of entries + buffers for M-128) sustains
     * many accesses per cycle across its banks.
     */
    unsigned mem_ports = 16;

    /**
     * Cycles between successive issues to the same PE (pipelined
     * functional units; 1 = fully pipelined, like the CPU's FUs).
     */
    unsigned pe_issue_interval = 1;

    /** Infinite memory ports ("ideal memory" of Fig. 15). */
    bool ideal_memory = false;

    /** Shared DRAM bandwidth (accesses per cycle), same channels the
     *  CPU baseline contends on. Ignored under ideal_memory. */
    double dram_accesses_per_cycle = 1.0;

    /**
     * FP-capable PEs are arranged in 2x2 FP slices tiled in a
     * checkerboard over 2x2 blocks (half of all PEs, paper §5.2).
     * false disables FP entirely (integer-only backend).
     */
    bool fp_slices = true;

    /** Routing logic at every noc_slice_width PEs (paper Fig. 9). */
    int noc_slice_width = 4;

    /** Secondary data-forwarding bus for unmapped instructions. */
    double fallback_bus_latency = 8.0;

    /** PE operation latencies (same classes as the CPU model). */
    dfg::OpLatencyConfig op_latency;

    /** Configuration-bitstream write bandwidth, words per cycle. */
    unsigned config_words_per_cycle = 1;

    /**
     * Watchdog cycle budget: a hard cap on the device cycles one
     * run() may consume, independent of any fault-tolerance mode, so
     * a malformed configuration can never spin the simulator forever.
     * Checked at tile-round boundaries (the executed-iteration set
     * stays a prefix of sequential order); a tripped run reports
     * watchdog_tripped and returns with partial progress. 0 disables.
     */
    uint64_t watchdog_cycles = 2'000'000'000;

    size_t capacity() const { return size_t(rows) * size_t(cols); }

    /** Does the PE at pos support the operation class? */
    bool supportsOp(ic::Coord pos, riscv::OpClass cls) const;

    /** F_op mask for an operation class (1 = supported). */
    Matrix<uint8_t> opMask(riscv::OpClass cls) const;

    /** Standard configurations from the paper's evaluation. */
    static AccelParams m64();   ///< 16x4, 64 PEs
    static AccelParams m128();  ///< 16x8, 128 PEs
    static AccelParams m512();  ///< 64x8, 512 PEs

    /**
     * Preset by CLI name ("M-64" | "M-128" | "M-512"); fatal on an
     * unknown name. Shared by every tool's --accel flag.
     */
    static AccelParams byName(const std::string &name);

    /** Arbitrary PE count with the default aspect ratio (Fig. 15). */
    static AccelParams withPeCount(int pes);

    /**
     * Sub-array view for spatial partitioning (the multi-tenant
     * scheduler): rows [origin_row, origin_row + sub_rows) of this
     * grid, all columns. Memory ports and DRAM bandwidth scale with
     * the partition's share of the array; the FP striping is
     * column-based, so any row band keeps the full operation mix.
     */
    AccelParams subArray(int origin_row, int sub_rows) const;
};

} // namespace mesa::accel

#endif // MESA_ACCEL_PARAMS_HH
