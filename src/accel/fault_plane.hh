/**
 * @file
 * Hardware fault models for the spatial fabric. A FaultPlane is a
 * set of defects installed on an Accelerator independently of any
 * configuration: the device keeps executing the configured dataflow
 * but the faulty resources corrupt the values that pass through them.
 *
 * Models (mirroring the standard CGRA reliability taxonomy):
 *  - PeStuckFault: a permanent stuck-at defect in one PE's datapath —
 *    every result computed on that physical PE is XOR-corrupted.
 *  - LinkFault: a dead/shorted interconnect link — any operand
 *    forwarded across the (from -> to) physical hop is corrupted.
 *  - TransientFault: a single-event upset — one slot's result is
 *    flipped on exactly one iteration of one run, then never again.
 *  - BranchStuckFault: a stuck control line on the loop's closing
 *    branch — from the given iteration on, the branch always reads
 *    taken, so the loop can never exit (the induced-hang model the
 *    watchdog must cut off).
 *
 * All coordinates are physical grid positions; the device translates
 * virtual slot positions (time-multiplex folds, tile-instance
 * origins) to physical PEs before matching.
 */

#ifndef MESA_ACCEL_FAULT_PLANE_HH
#define MESA_ACCEL_FAULT_PLANE_HH

#include <cstdint>
#include <vector>

#include "interconnect/interconnect.hh"

namespace mesa::accel
{

/** Permanent stuck-at defect in one PE's result latch. */
struct PeStuckFault
{
    ic::Coord pos;
    uint32_t xor_mask = 1;
};

/** Dead interconnect link between two physical PEs. */
struct LinkFault
{
    ic::Coord from;
    ic::Coord to;
    uint32_t xor_mask = 1;
};

/** Single-event upset: fires once, on one slot, on one iteration. */
struct TransientFault
{
    size_t slot = 0;         ///< Slot (node) index in the config.
    uint64_t iteration = 0;  ///< Iteration index within one run.
    uint32_t xor_mask = 1;
};

/** Stuck control line on the closing branch (induced hang). */
struct BranchStuckFault
{
    uint64_t from_iteration = 0;
};

/** The set of defects installed on a device. */
struct FaultPlane
{
    std::vector<PeStuckFault> stuck_pes;
    std::vector<LinkFault> dead_links;
    std::vector<TransientFault> transients;
    std::vector<BranchStuckFault> stuck_branches;

    bool
    empty() const
    {
        return stuck_pes.empty() && dead_links.empty() &&
               transients.empty() && stuck_branches.empty();
    }
};

} // namespace mesa::accel

#endif // MESA_ACCEL_FAULT_PLANE_HH
