/**
 * @file
 * Static verifier over MESA's translation pipeline (T1-T3): proves
 * invariants over the three artifacts the hardware pipeline hands
 * from stage to stage. Pass 1 checks LDFG well-formedness against a
 * rename-table replay of the encoded body; pass 2 checks that a
 * placement is legal for the accelerator geometry and realizable on
 * the active interconnect; pass 3 decodes an AcceleratorConfig back
 * into a dataflow skeleton and checks edge-for-edge equivalence with
 * the source LDFG. Used offline by the mesa_lint CLI, online by the
 * controller's verify-before-offload gate, and directly by tests.
 *
 * The layer depends only on dfg/accel/interconnect types so both the
 * controller (mesa_core) and the scheduler (mesa_sched) can call it
 * without a library cycle.
 */

#ifndef MESA_VERIFY_VERIFIER_HH
#define MESA_VERIFY_VERIFIER_HH

#include <vector>

#include "accel/config_types.hh"
#include "accel/params.hh"
#include "dfg/ldfg.hh"
#include "dfg/sdfg.hh"
#include "interconnect/interconnect.hh"
#include "verify/diagnostics.hh"

namespace mesa::verify
{

/** Verifier thresholds (warn-level rules only). */
struct VerifyOptions
{
    /**
     * Fallback-bus usage above this fraction of the graph is flagged
     * (map.fallback-threshold). The controller's own abandon limit is
     * MesaParams::max_unmapped_frac; the verifier warns earlier.
     */
    double fallback_warn_frac = 0.125;

    /**
     * Operand routes costing more than this many cycles on the
     * active interconnect are flagged (map.long-route).
     */
    uint32_t max_edge_latency = 16;

    /**
     * Node latencies this many times above/below the static class
     * default are noted (dfg.latency-skew); measured refresh drifts
     * are expected, gross skew usually means a corrupted annotation.
     */
    double latency_skew_factor = 16.0;
};

/** One rule of the catalog (docs, mesa_lint --rules). */
struct RuleInfo
{
    const char *id;
    Severity severity;
    const char *pass;    ///< "dfg", "map", or "cfg".
    const char *summary;
};

/** Every rule the three passes can emit, in catalog order. */
const std::vector<RuleInfo> &ruleCatalog();

/**
 * Expand a comma-separated rule filter against the catalog. Each
 * element is either an exact rule id ("dfg.node-id", "AI101") or a
 * prefix glob with a trailing '*' ("AI*", "map.*", "M1*" -- the
 * prefix compares against the raw id text). Matching ids return in
 * catalog order, deduplicated. Elements matching no catalog rule are
 * appended to @p unknown; callers treat those as hard errors so typos
 * never silently filter everything out.
 */
std::vector<std::string>
expandRulePatterns(const std::string &spec,
                   std::vector<std::string> *unknown = nullptr);

/**
 * Pass 1 — DFG well-formedness: dataflow edges acyclic modulo the
 * loop-carried back-edge (every edge references an earlier node),
 * producer edges consistent with a rename-table replay of the body,
 * guard edges only from still-active forward branches, consumer lists
 * symmetric with the edges, latency annotations positive.
 */
Report verifyLdfg(const dfg::Ldfg &ldfg,
                  const dfg::OpLatencyConfig &lat_cfg = {},
                  const VerifyOptions &opts = {});

/**
 * Pass 2 — mapping legality: every placement within the grid, at most
 * one node per PE slot, placement table and occupancy grid in
 * agreement, the unmapped list exactly the unplaced nodes, operation
 * classes supported by their PEs (FP stripe), operand routes
 * realizable on @p ic within the latency threshold, and fallback-bus
 * pressure under the warn threshold. @p sdfg may sit on a virtual
 * grid whose rows are a multiple of @p accel.rows (time-multiplexing
 * folds virtual rows onto physical ones).
 */
Report verifyMapping(const dfg::Ldfg &ldfg, const dfg::Sdfg &sdfg,
                     const std::vector<dfg::NodeId> &unmapped,
                     const accel::AccelParams &accel,
                     const ic::Interconnect &ic,
                     const VerifyOptions &opts = {});

/**
 * Pass 3 — config round-trip: decode @p config back into a dataflow
 * skeleton and check edge-for-edge equivalence with @p ldfg (operand
 * and live-in wiring, guard sets, predication hidden deps), live-in/
 * live-out sets against the final rename state, memory-optimization
 * annotations referencing valid nodes, slot positions within the
 * configured grid with at most time_multiplex sharers, and tile
 * instances structurally identical and disjoint on the physical grid.
 */
Report verifyConfig(const dfg::Ldfg &ldfg,
                    const accel::AcceleratorConfig &config,
                    const accel::AccelParams &accel,
                    const VerifyOptions &opts = {});

/** All applicable passes merged into one report. */
Report verifyPipeline(const dfg::Ldfg &ldfg, const dfg::Sdfg &sdfg,
                      const std::vector<dfg::NodeId> &unmapped,
                      const accel::AcceleratorConfig &config,
                      const accel::AccelParams &accel,
                      const ic::Interconnect &ic,
                      const VerifyOptions &opts = {});

} // namespace mesa::verify

#endif // MESA_VERIFY_VERIFIER_HH
