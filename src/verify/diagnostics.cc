#include "verify/diagnostics.hh"

#include "util/json.hh"
#include "util/table.hh"

namespace mesa::verify
{

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Note: return "note";
      case Severity::Warn: return "warn";
      case Severity::Error: return "error";
      default: return "???";
    }
}

size_t
Report::count(Severity severity) const
{
    size_t n = 0;
    for (const auto &d : diags_)
        if (d.severity == severity)
            ++n;
    return n;
}

bool
Report::hasRule(const std::string &rule) const
{
    for (const auto &d : diags_)
        if (d.rule == rule)
            return true;
    return false;
}

std::map<std::string, size_t>
Report::countsByRule() const
{
    std::map<std::string, size_t> counts;
    for (const auto &d : diags_)
        ++counts[d.rule];
    return counts;
}

void
Report::merge(const Report &other)
{
    diags_.insert(diags_.end(), other.diags_.begin(),
                  other.diags_.end());
}

void
Report::toJson(JsonWriter &w) const
{
    w.beginObject()
        .field("errors", uint64_t(errorCount()))
        .field("warnings", uint64_t(warnCount()))
        .field("notes", uint64_t(noteCount()))
        .key("diagnostics")
        .beginArray();
    for (const auto &d : diags_) {
        w.beginObject()
            .field("rule", d.rule)
            .field("severity", severityName(d.severity))
            .field("where", d.where)
            .field("message", d.message)
            .end();
    }
    w.end().end();
}

void
Report::printTable(std::ostream &os, Severity min) const
{
    TextTable table;
    table.header({"severity", "rule", "where", "message"});
    for (const auto &d : diags_) {
        if (d.severity < min)
            continue;
        table.row({severityName(d.severity), d.rule, d.where,
                   d.message});
    }
    if (table.rows() > 0)
        table.print(os);
}

std::string
Report::summary() const
{
    const size_t e = errorCount();
    const size_t w = warnCount();
    const size_t n = noteCount();
    auto plural = [](size_t k, const char *word) {
        return std::to_string(k) + " " + word + (k == 1 ? "" : "s");
    };
    if (e + w + n == 0)
        return "clean";
    std::string out = plural(e, "error");
    out += ", " + plural(w, "warning");
    if (n > 0)
        out += ", " + plural(n, "note");
    return out;
}

} // namespace mesa::verify
