#include "verify/verifier.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <string>

namespace mesa::verify
{

using dfg::Ldfg;
using dfg::LdfgNode;
using dfg::NodeId;
using dfg::NoNode;
using dfg::Sdfg;
using riscv::OpClass;

namespace
{

std::string
nodeLoc(const Ldfg &ldfg, NodeId id)
{
    std::string loc = "node " + std::to_string(id);
    if (id >= 0 && size_t(id) < ldfg.size())
        loc += " (" + ldfg.node(id).inst.toString() + ")";
    return loc;
}

std::string
coordStr(ic::Coord pos)
{
    return "(" + std::to_string(pos.r) + "," + std::to_string(pos.c) +
           ")";
}

/** Is @p guard a forward branch able to skip the node at @p pc? */
bool
validGuard(const Ldfg &ldfg, NodeId guard, NodeId node, uint32_t pc)
{
    if (guard < 0 || guard >= node)
        return false;
    const riscv::Instruction &b = ldfg.node(guard).inst;
    return b.isBranch() && b.imm > 0 && b.targetPc() > pc;
}

} // namespace

const std::vector<RuleInfo> &
ruleCatalog()
{
    static const std::vector<RuleInfo> catalog = {
        // --- Pass 1: DFG well-formedness ---
        {"dfg.node-id", Severity::Error, "dfg",
         "node id must equal its program-order index"},
        {"dfg.edge-order", Severity::Error, "dfg",
         "dataflow edges must reference earlier nodes (acyclic modulo "
         "the loop-carried back-edge)"},
        {"dfg.rename", Severity::Error, "dfg",
         "operand wiring must match a rename-table replay of the body "
         "(single producer per edge)"},
        {"dfg.guard-branch", Severity::Error, "dfg",
         "guard edges must come from earlier forward branches whose "
         "join is still ahead"},
        {"dfg.guard-set", Severity::Error, "dfg",
         "guard set must equal the active forward branches at the node"},
        {"dfg.consumer", Severity::Error, "dfg",
         "every edge must appear in its producer's consumer list"},
        {"dfg.back-branch", Severity::Error, "dfg",
         "the loop must close with a single backward branch as the "
         "final node"},
        {"dfg.live-set", Severity::Error, "dfg",
         "live-in/written/final-rename sets must match the replay"},
        {"dfg.latency", Severity::Error, "dfg",
         "node latency annotations must be positive and finite"},
        {"dfg.latency-skew", Severity::Note, "dfg",
         "node latency far from the static class default (possible "
         "corrupted annotation)"},

        // --- Pass 2: mapping legality ---
        {"map.grid-shape", Severity::Error, "map",
         "mapping grid must match the accelerator geometry (or a "
         "row-multiple virtual grid under time-multiplexing)"},
        {"map.out-of-bounds", Severity::Error, "map",
         "placement coordinate outside the mapping grid"},
        {"map.duplicate-pe", Severity::Error, "map",
         "at most one node per PE slot"},
        {"map.grid-mismatch", Severity::Error, "map",
         "placement table and occupancy grid disagree"},
        {"map.unplaced", Severity::Error, "map",
         "every node must be placed or listed unmapped"},
        {"map.unmapped-list", Severity::Error, "map",
         "unmapped list entries must be valid, unique, and unplaced"},
        {"map.op-support", Severity::Error, "map",
         "operation class must be supported by its PE (FP stripe)"},
        {"map.long-route", Severity::Warn, "map",
         "operand route latency exceeds the interconnect threshold"},
        {"map.fallback-threshold", Severity::Warn, "map",
         "fallback-bus usage exceeds the configured fraction"},

        // --- Pass 3: config round-trip ---
        {"cfg.grid-shape", Severity::Error, "cfg",
         "configured grid must be positive and fit the accelerator"},
        {"cfg.slot-count", Severity::Error, "cfg",
         "one PE slot per LDFG node"},
        {"cfg.slot-order", Severity::Error, "cfg",
         "slots must keep program order (slot i holds node i)"},
        {"cfg.inst-mismatch", Severity::Error, "cfg",
         "slot instruction must equal the source LDFG node's"},
        {"cfg.src-dangling", Severity::Error, "cfg",
         "operand/forward references must name earlier valid nodes"},
        {"cfg.edge-mismatch", Severity::Error, "cfg",
         "operand and live-in wiring must round-trip the LDFG edges"},
        {"cfg.guard-ref", Severity::Error, "cfg",
         "guard references must name earlier forward branches"},
        {"cfg.guard-mismatch", Severity::Error, "cfg",
         "slot guard set must equal the LDFG node's"},
        {"cfg.live-ins", Severity::Error, "cfg",
         "latched live-in set must equal the LDFG live-ins"},
        {"cfg.live-outs", Severity::Error, "cfg",
         "live-out writers must match the final rename state"},
        {"cfg.forward-ref", Severity::Error, "cfg",
         "store->load forwarding must pair a load with an earlier "
         "store"},
        {"cfg.vector-group", Severity::Error, "cfg",
         "vector groups must be loads with exactly one leader"},
        {"cfg.prefetch", Severity::Warn, "cfg",
         "prefetch annotation with a zero stride is inert"},
        {"cfg.slot-bounds", Severity::Error, "cfg",
         "slot position must lie within the configured grid"},
        {"cfg.pe-overcommit", Severity::Error, "cfg",
         "at most time_multiplex slots may share one PE position"},
        {"cfg.tile-bounds", Severity::Error, "cfg",
         "tile instances must fit the physical grid"},
        {"cfg.tile-overlap", Severity::Error, "cfg",
         "tile instance footprints must be disjoint"},
        {"cfg.tile-regs", Severity::Warn, "cfg",
         "instance register offsets should target latched live-ins"},
        {"cfg.induction-ref", Severity::Error, "cfg",
         "induction records must name their in-body update node"},
        {"cfg.imm-override-ref", Severity::Error, "cfg",
         "immediate overrides must reference valid nodes"},
        {"cfg.region", Severity::Warn, "cfg",
         "region pc range must be ordered and contain resume_pc"},

        // --- Abstract-interpretation certificates (src/absint) ---
        {"AI101", Severity::Error, "absint",
         "load/store proven to access memory outside the offload's "
         "region"},
        {"AI102", Severity::Warn, "absint",
         "memory footprint unknown (data-dependent or unbounded "
         "address)"},
        {"AI103", Severity::Note, "absint",
         "memory-footprint certificate summary (proven byte bounds)"},
        {"AI104", Severity::Warn, "absint",
         "trip count unprovable; watchdog falls back to the global "
         "budget"},
        {"AI105", Severity::Note, "absint",
         "trip-count certificate summary (proven max iterations)"},
        {"AI106", Severity::Error, "absint",
         "abstract-interpretation fixpoint failed to converge"},
    };
    return catalog;
}

std::vector<std::string>
expandRulePatterns(const std::string &spec,
                   std::vector<std::string> *unknown)
{
    std::vector<std::string> patterns;
    std::string cur;
    for (const char c : spec + ",") {
        if (c == ',') {
            if (!cur.empty())
                patterns.push_back(cur);
            cur.clear();
        } else if (c != ' ') {
            cur += c;
        }
    }

    std::vector<std::string> out;
    std::set<std::string> seen;
    for (const auto &pat : patterns) {
        const bool glob = !pat.empty() && pat.back() == '*';
        const std::string prefix =
            glob ? pat.substr(0, pat.size() - 1) : pat;
        bool matched = false;
        for (const auto &rule : ruleCatalog()) {
            const std::string id = rule.id;
            const bool hit =
                glob ? id.compare(0, prefix.size(), prefix) == 0
                     : id == pat;
            if (!hit)
                continue;
            matched = true;
            if (seen.insert(id).second)
                out.push_back(id);
        }
        if (!matched && unknown)
            unknown->push_back(pat);
    }
    // Catalog order, not pattern order.
    std::sort(out.begin(), out.end(),
              [](const std::string &a, const std::string &b) {
                  auto pos = [](const std::string &id) {
                      const auto &cat = ruleCatalog();
                      for (size_t i = 0; i < cat.size(); ++i)
                          if (id == cat[i].id)
                              return i;
                      return cat.size();
                  };
                  return pos(a) < pos(b);
              });
    return out;
}

// ---------------------------------------------------------------------
// Pass 1: DFG well-formedness
// ---------------------------------------------------------------------

Report
verifyLdfg(const Ldfg &ldfg, const dfg::OpLatencyConfig &lat_cfg,
           const VerifyOptions &opts)
{
    Report report;
    const size_t n = ldfg.size();
    if (n == 0) {
        report.error("dfg.back-branch", "graph", "LDFG is empty");
        return report;
    }

    dfg::RenameTable rename;
    std::set<int> live_ins;
    std::set<int> written;
    std::vector<std::pair<NodeId, uint32_t>> guard_stack;

    for (size_t i = 0; i < n; ++i) {
        const LdfgNode &node = ldfg.node(NodeId(i));
        const std::string loc = nodeLoc(ldfg, NodeId(i));
        const bool is_last = i + 1 == n;

        if (node.id != NodeId(i)) {
            report.error("dfg.node-id", loc,
                         "node id " + std::to_string(node.id) +
                             " != program-order index " +
                             std::to_string(i));
        }

        if (is_last != node.inst.isBackwardBranch()) {
            report.error("dfg.back-branch", loc,
                         is_last
                             ? "final node is not a backward branch"
                             : "backward branch before the body end");
        }

        // Latency annotations.
        if (!std::isfinite(node.op_latency) || node.op_latency <= 0.0) {
            report.error("dfg.latency", loc,
                         "op latency " +
                             std::to_string(node.op_latency) +
                             " must be positive and finite");
        } else {
            const double def = lat_cfg.cycles(node.inst.cls());
            if (def > 0.0 &&
                (node.op_latency > def * opts.latency_skew_factor ||
                 node.op_latency * opts.latency_skew_factor < def)) {
                report.note("dfg.latency-skew", loc,
                            "op latency " +
                                std::to_string(node.op_latency) +
                                " skewed vs class default " +
                                std::to_string(def));
            }
        }

        // Retire guards whose join point has been reached, then
        // compare the expected active set against the node's.
        while (!guard_stack.empty() &&
               guard_stack.back().second <= node.inst.pc) {
            guard_stack.pop_back();
        }
        std::vector<NodeId> expected_guards;
        for (const auto &[branch, resolve_pc] : guard_stack) {
            (void)resolve_pc;
            expected_guards.push_back(branch);
        }
        if (node.guards != expected_guards) {
            report.error("dfg.guard-set", loc,
                         "guard set does not match the active forward "
                         "branches (" +
                             std::to_string(node.guards.size()) +
                             " vs expected " +
                             std::to_string(expected_guards.size()) +
                             ")");
        }
        for (NodeId g : node.guards) {
            if (!validGuard(ldfg, g, NodeId(i), node.inst.pc)) {
                report.error("dfg.guard-branch", loc,
                             "guard " + std::to_string(g) +
                                 " is not an earlier forward branch "
                                 "covering this node");
                continue;
            }
            const auto &cons = ldfg.node(g).consumers;
            if (std::find(cons.begin(), cons.end(), NodeId(i)) ==
                cons.end()) {
                report.error("dfg.consumer", loc,
                             "guard edge from node " +
                                 std::to_string(g) +
                                 " missing from its consumer list");
            }
        }

        // Operand edges against the rename replay.
        for (int operand = 0; operand < 2; ++operand) {
            const NodeId src =
                operand == 0 ? node.src1 : node.src2;
            const int live =
                operand == 0 ? node.live_in1 : node.live_in2;
            const std::string op_name =
                "src" + std::to_string(operand + 1);

            if (src != NoNode && (src < 0 || src >= NodeId(i))) {
                report.error("dfg.edge-order", loc,
                             op_name + " edge from node " +
                                 std::to_string(src) +
                                 " does not reference an earlier node");
                continue;
            }

            const int reg = node.inst.unifiedSrc(operand);
            const NodeId expected =
                reg < 0 ? NoNode : rename.lookup(reg);
            const int expected_live =
                (reg >= 0 && expected == NoNode) ? reg : -1;
            if (src != expected || live != expected_live) {
                report.error(
                    "dfg.rename", loc,
                    op_name + " wiring (producer " +
                        std::to_string(src) + ", live-in " +
                        std::to_string(live) +
                        ") disagrees with the rename replay "
                        "(producer " +
                        std::to_string(expected) + ", live-in " +
                        std::to_string(expected_live) + ")");
            } else if (reg >= 0 && expected == NoNode) {
                live_ins.insert(reg);
            }
            if (src != NoNode && src == expected) {
                const auto &cons = ldfg.node(src).consumers;
                if (std::find(cons.begin(), cons.end(), NodeId(i)) ==
                    cons.end()) {
                    report.error("dfg.consumer", loc,
                                 op_name + " edge from node " +
                                     std::to_string(src) +
                                     " missing from its consumer "
                                     "list");
                }
            }
        }

        // Predication hidden dependency + destination rename.
        const int dest = node.inst.unifiedDest();
        if (dest >= 0) {
            const NodeId prev = rename.lookup(dest);
            const bool guarded = !node.guards.empty();
            if (node.prev_dest_writer != prev) {
                report.error("dfg.rename", loc,
                             "prev-dest writer " +
                                 std::to_string(node.prev_dest_writer) +
                                 " disagrees with the rename replay (" +
                                 std::to_string(prev) + ")");
            } else if (prev != NoNode && guarded) {
                const auto &cons = ldfg.node(prev).consumers;
                if (std::find(cons.begin(), cons.end(), NodeId(i)) ==
                    cons.end()) {
                    report.error("dfg.consumer", loc,
                                 "hidden predication edge from node " +
                                     std::to_string(prev) +
                                     " missing from its consumer "
                                     "list");
                }
            }
            if (prev == NoNode && guarded) {
                if (node.prev_dest_live_in != dest) {
                    report.error("dfg.rename", loc,
                                 "guarded first write must carry its "
                                 "destination as prev-dest live-in");
                }
                live_ins.insert(dest);
            }
            rename.update(dest, NodeId(i));
            written.insert(dest);
        }

        if (node.inst.isBranch() && node.inst.imm > 0)
            guard_stack.emplace_back(NodeId(i), node.inst.targetPc());
    }

    // Whole-graph set consistency against the replay.
    if (ldfg.liveIns() != live_ins) {
        report.error("dfg.live-set", "graph",
                     "live-in set (" +
                         std::to_string(ldfg.liveIns().size()) +
                         " regs) disagrees with the replay (" +
                         std::to_string(live_ins.size()) + " regs)");
    }
    if (ldfg.writtenRegs() != written) {
        report.error("dfg.live-set", "graph",
                     "written-register set disagrees with the replay");
    }
    for (int reg : written) {
        if (ldfg.finalRename().lookup(reg) != rename.lookup(reg)) {
            report.error("dfg.live-set", "reg " + std::to_string(reg),
                         "final rename entry disagrees with the "
                         "replay");
        }
    }
    return report;
}

// ---------------------------------------------------------------------
// Pass 2: mapping legality
// ---------------------------------------------------------------------

Report
verifyMapping(const Ldfg &ldfg, const Sdfg &sdfg,
              const std::vector<NodeId> &unmapped,
              const accel::AccelParams &accel,
              const ic::Interconnect &ic, const VerifyOptions &opts)
{
    Report report;
    const size_t n = ldfg.size();

    // Grid geometry: either the physical grid or a virtual grid whose
    // rows fold onto it (time-multiplexing).
    bool shape_ok = sdfg.rows() > 0 && sdfg.cols() == accel.cols &&
                    accel.rows > 0 && sdfg.rows() % accel.rows == 0;
    if (!shape_ok) {
        report.error("map.grid-shape", "grid",
                     "mapping grid " + std::to_string(sdfg.rows()) +
                         "x" + std::to_string(sdfg.cols()) +
                         " does not fold onto accelerator " +
                         std::to_string(accel.rows) + "x" +
                         std::to_string(accel.cols));
    }

    std::set<NodeId> unmapped_set;
    for (NodeId id : unmapped) {
        const std::string loc = nodeLoc(ldfg, id);
        if (id < 0 || size_t(id) >= n) {
            report.error("map.unmapped-list", loc,
                         "unmapped entry is not a valid node id");
            continue;
        }
        if (!unmapped_set.insert(id).second) {
            report.error("map.unmapped-list", loc,
                         "node listed unmapped more than once");
            continue;
        }
        if (sdfg.coordOf(id).valid()) {
            report.error("map.unmapped-list", loc,
                         "node is both placed and listed unmapped");
        }
    }

    // Placement table -> occupancy, duplicates, bounds, op support.
    std::map<std::pair<int, int>, std::vector<NodeId>> by_coord;
    for (size_t i = 0; i < n; ++i) {
        const NodeId id = NodeId(i);
        const ic::Coord pos = sdfg.coordOf(id);
        const std::string loc = nodeLoc(ldfg, id);
        if (!pos.valid()) {
            if (!unmapped_set.count(id)) {
                report.error("map.unplaced", loc,
                             "node neither placed nor listed "
                             "unmapped");
            }
            continue;
        }
        if (!sdfg.inRange(pos)) {
            report.error("map.out-of-bounds", loc,
                         "placed at " + coordStr(pos) +
                             " outside the " +
                             std::to_string(sdfg.rows()) + "x" +
                             std::to_string(sdfg.cols()) + " grid");
            continue;
        }
        by_coord[{pos.r, pos.c}].push_back(id);
        if (shape_ok) {
            const ic::Coord phys{pos.r % accel.rows, pos.c};
            if (!accel.supportsOp(phys, ldfg.node(id).inst.cls())) {
                report.error("map.op-support", loc,
                             "PE " + coordStr(phys) +
                                 " does not support operation class "
                                 "of this node");
            }
        }
    }
    for (const auto &[rc, ids] : by_coord) {
        const ic::Coord pos{rc.first, rc.second};
        if (ids.size() > 1) {
            for (size_t k = 1; k < ids.size(); ++k) {
                report.error("map.duplicate-pe",
                             nodeLoc(ldfg, ids[k]),
                             "PE " + coordStr(pos) +
                                 " already holds node " +
                                 std::to_string(ids[0]));
            }
            continue;
        }
        if (sdfg.at(pos) != ids[0]) {
            report.error("map.grid-mismatch", nodeLoc(ldfg, ids[0]),
                         "occupancy grid at " + coordStr(pos) +
                             " holds node " +
                             std::to_string(sdfg.at(pos)) +
                             " instead");
        }
    }

    // Operand routes on the active interconnect.
    for (size_t i = 0; i < n; ++i) {
        const NodeId id = NodeId(i);
        const ic::Coord to = sdfg.coordOf(id);
        if (!to.valid() || !sdfg.inRange(to))
            continue;
        const LdfgNode &node = ldfg.node(id);
        for (NodeId src : {node.src1, node.src2}) {
            if (src == NoNode || src < 0 || size_t(src) >= n)
                continue;
            const ic::Coord from = sdfg.coordOf(src);
            if (!from.valid() || !sdfg.inRange(from))
                continue; // fallback-bus edge
            const uint32_t lat = ic.latency(from, to);
            if (lat > opts.max_edge_latency) {
                report.warn("map.long-route", nodeLoc(ldfg, id),
                            "route " + coordStr(from) + " -> " +
                                coordStr(to) + " costs " +
                                std::to_string(lat) +
                                " cycles (threshold " +
                                std::to_string(opts.max_edge_latency) +
                                ")");
            }
        }
    }

    if (n > 0 && !unmapped.empty() &&
        double(unmapped.size()) / double(n) > opts.fallback_warn_frac) {
        report.warn("map.fallback-threshold", "graph",
                    std::to_string(unmapped.size()) + "/" +
                        std::to_string(n) +
                        " nodes on the fallback bus (threshold " +
                        std::to_string(opts.fallback_warn_frac) + ")");
    }
    return report;
}

// ---------------------------------------------------------------------
// Pass 3: config round-trip
// ---------------------------------------------------------------------

Report
verifyConfig(const Ldfg &ldfg, const accel::AcceleratorConfig &config,
             const accel::AccelParams &accel, const VerifyOptions &)
{
    Report report;
    const size_t n = ldfg.size();
    const int tm = std::max(1, config.time_multiplex);

    if (config.rows <= 0 || config.cols <= 0 ||
        config.rows > accel.rows || config.cols > accel.cols) {
        report.error("cfg.grid-shape", "grid",
                     "configured grid " + std::to_string(config.rows) +
                         "x" + std::to_string(config.cols) +
                         " does not fit accelerator " +
                         std::to_string(accel.rows) + "x" +
                         std::to_string(accel.cols));
    }
    if (config.region_end <= config.region_start) {
        report.warn("cfg.region", "region",
                    "region pc range is empty or inverted");
    } else if (config.resume_pc != 0 &&
               (config.resume_pc < config.region_start ||
                config.resume_pc >= config.region_end)) {
        report.warn("cfg.region", "region",
                    "resume pc outside the region pc range");
    }

    if (config.slots.size() != n) {
        report.error("cfg.slot-count", "config",
                     std::to_string(config.slots.size()) +
                         " slots for " + std::to_string(n) +
                         " LDFG nodes");
    }

    const size_t m = std::min(config.slots.size(), n);
    std::map<std::pair<int, int>, int> pos_count;
    std::map<int, std::pair<int, int>> group_stats; // id -> (members, leaders)

    for (size_t i = 0; i < m; ++i) {
        const accel::PeSlot &slot = config.slots[i];
        const LdfgNode &node = ldfg.node(NodeId(i));
        const std::string loc = nodeLoc(ldfg, NodeId(i));

        if (slot.node != NodeId(i)) {
            report.error("cfg.slot-order", loc,
                         "slot " + std::to_string(i) +
                             " holds node " +
                             std::to_string(slot.node));
        }
        if (slot.inst.pc != node.inst.pc ||
            slot.inst.op != node.inst.op) {
            report.error("cfg.inst-mismatch", loc,
                         "slot instruction " + slot.inst.toString() +
                             " differs from the LDFG node's");
        }

        // Operand wiring round-trip.
        bool src_ok = true;
        for (NodeId src : {slot.src1, slot.src2,
                           slot.prev_dest_writer}) {
            if (src != NoNode && (src < 0 || src >= NodeId(i))) {
                report.error("cfg.src-dangling", loc,
                             "operand reference to node " +
                                 std::to_string(src) +
                                 " is dangling or not backward");
                src_ok = false;
            }
        }
        if (src_ok &&
            (slot.src1 != node.src1 || slot.src2 != node.src2 ||
             slot.live_in1 != node.live_in1 ||
             slot.live_in2 != node.live_in2 ||
             slot.prev_dest_writer != node.prev_dest_writer ||
             slot.prev_dest_live_in != node.prev_dest_live_in)) {
            report.error("cfg.edge-mismatch", loc,
                         "operand/live-in wiring does not round-trip "
                         "the LDFG edges");
        }

        // Guard wiring.
        bool guards_ok = true;
        for (NodeId g : slot.guards) {
            if (!validGuard(ldfg, g, NodeId(i), node.inst.pc)) {
                report.error("cfg.guard-ref", loc,
                             "guard reference " + std::to_string(g) +
                                 " is not an earlier forward branch");
                guards_ok = false;
            }
        }
        if (guards_ok) {
            std::vector<NodeId> a = slot.guards;
            std::vector<NodeId> b = node.guards;
            std::sort(a.begin(), a.end());
            std::sort(b.begin(), b.end());
            if (a != b) {
                report.error("cfg.guard-mismatch", loc,
                             "slot guard set differs from the LDFG "
                             "node's");
            }
        }

        // Position within the configured (folded) grid.
        if (slot.pos.valid()) {
            if (slot.pos.r >= config.rows ||
                slot.pos.c >= config.cols) {
                report.error("cfg.slot-bounds", loc,
                             "slot position " + coordStr(slot.pos) +
                                 " outside the configured " +
                                 std::to_string(config.rows) + "x" +
                                 std::to_string(config.cols) +
                                 " grid");
            } else {
                ++pos_count[{slot.pos.r, slot.pos.c}];
            }
        }

        // Memory-optimization annotations.
        if (slot.forward_from_store != NoNode) {
            const NodeId f = slot.forward_from_store;
            if (f < 0 || f >= NodeId(i) ||
                !ldfg.node(f).inst.isStore() || !node.inst.isLoad()) {
                report.error("cfg.forward-ref", loc,
                             "store-forward annotation does not pair "
                             "this load with an earlier store");
            }
        }
        if (slot.vector_group >= 0) {
            if (!node.inst.isLoad()) {
                report.error("cfg.vector-group", loc,
                             "vector-group member is not a load");
            }
            auto &[members, leaders] = group_stats[slot.vector_group];
            ++members;
            if (slot.vector_leader)
                ++leaders;
        }
        if (slot.prefetch && slot.prefetch_stride == 0) {
            report.warn("cfg.prefetch", loc,
                        "prefetch annotation with zero stride");
        }
    }

    for (const auto &[rc, count] : pos_count) {
        if (count > tm) {
            report.error("cfg.pe-overcommit",
                         "pe (" + std::to_string(rc.first) + "," +
                             std::to_string(rc.second) + ")",
                         std::to_string(count) +
                             " slots share one PE (time-multiplex "
                             "limit " +
                             std::to_string(tm) + ")");
        }
    }
    for (const auto &[gid, stats] : group_stats) {
        if (stats.second != 1) {
            report.error("cfg.vector-group",
                         "group " + std::to_string(gid),
                         std::to_string(stats.first) +
                             " members with " +
                             std::to_string(stats.second) +
                             " leaders (need exactly one)");
        }
    }

    // Live-in latch set.
    if (config.live_ins != ldfg.liveIns()) {
        report.error("cfg.live-ins", "config",
                     "latched live-in set (" +
                         std::to_string(config.live_ins.size()) +
                         " regs) differs from the LDFG's (" +
                         std::to_string(ldfg.liveIns().size()) +
                         " regs)");
    }

    // Live-out writers against the final rename state.
    for (int reg : ldfg.writtenRegs()) {
        const NodeId writer = ldfg.finalRename().lookup(reg);
        if (writer == NoNode)
            continue;
        auto it = config.live_outs.find(reg);
        if (it == config.live_outs.end() || it->second != writer) {
            report.error("cfg.live-outs",
                         "reg " + std::to_string(reg),
                         "live-out writer differs from the final "
                         "rename state (expected node " +
                             std::to_string(writer) + ")");
        }
    }
    for (const auto &[reg, writer] : config.live_outs) {
        if (!ldfg.writtenRegs().count(reg)) {
            report.error("cfg.live-outs",
                         "reg " + std::to_string(reg),
                         "live-out for a register the body never "
                         "writes (claimed node " +
                             std::to_string(writer) + ")");
        }
    }

    // Induction records and immediate overrides.
    for (const auto &ind : config.inductions) {
        const std::string loc = "reg " + std::to_string(ind.unified_reg);
        if (ind.update_node < 0 || size_t(ind.update_node) >= n ||
            ldfg.node(ind.update_node).inst.unifiedDest() !=
                ind.unified_reg) {
            report.error("cfg.induction-ref", loc,
                         "induction update node " +
                             std::to_string(ind.update_node) +
                             " does not write this register");
        }
    }
    for (const auto &[id, imm] : config.imm_overrides) {
        (void)imm;
        if (id < 0 || size_t(id) >= n) {
            report.error("cfg.imm-override-ref",
                         "node " + std::to_string(id),
                         "immediate override references an invalid "
                         "node");
        }
    }

    // Tile instances: structurally identical by construction (shared
    // slots), so check footprint bounds and pairwise disjointness on
    // the physical grid.
    if (config.instances.empty()) {
        report.error("cfg.tile-bounds", "config",
                     "configuration carries no tile instance");
        return report;
    }
    int bb_r = 0, bb_c = 0;
    for (size_t i = 0; i < m; ++i) {
        const ic::Coord pos = config.slots[i].pos;
        if (pos.valid() && pos.r < config.rows && pos.c < config.cols) {
            bb_r = std::max(bb_r, pos.r + 1);
            bb_c = std::max(bb_c, pos.c + 1);
        }
    }
    for (size_t k = 0; k < config.instances.size(); ++k) {
        const accel::TileInstance &inst = config.instances[k];
        const std::string loc = "instance " + std::to_string(k);
        if (inst.origin.r < 0 || inst.origin.c < 0 ||
            (bb_r > 0 && (inst.origin.r + bb_r > accel.rows ||
                          inst.origin.c + bb_c > accel.cols))) {
            report.error("cfg.tile-bounds", loc,
                         "origin " + coordStr(inst.origin) +
                             " with footprint " + std::to_string(bb_r) +
                             "x" + std::to_string(bb_c) +
                             " exceeds the " +
                             std::to_string(accel.rows) + "x" +
                             std::to_string(accel.cols) + " grid");
        }
        for (const auto &[reg, offset] : inst.reg_offsets) {
            (void)offset;
            if (!config.live_ins.count(reg)) {
                report.warn("cfg.tile-regs", loc,
                            "register offset targets reg " +
                                std::to_string(reg) +
                                " which is not a latched live-in");
            }
        }
        for (size_t j = 0; j < k; ++j) {
            const accel::TileInstance &other = config.instances[j];
            const bool overlap =
                bb_r > 0 &&
                inst.origin.r < other.origin.r + bb_r &&
                other.origin.r < inst.origin.r + bb_r &&
                inst.origin.c < other.origin.c + bb_c &&
                other.origin.c < inst.origin.c + bb_c;
            if (overlap) {
                report.error("cfg.tile-overlap", loc,
                             "footprint overlaps instance " +
                                 std::to_string(j) + " at " +
                                 coordStr(other.origin));
            }
        }
    }
    return report;
}

Report
verifyPipeline(const Ldfg &ldfg, const Sdfg &sdfg,
               const std::vector<NodeId> &unmapped,
               const accel::AcceleratorConfig &config,
               const accel::AccelParams &accel,
               const ic::Interconnect &ic, const VerifyOptions &opts)
{
    Report report = verifyLdfg(ldfg, accel.op_latency, opts);
    report.merge(verifyMapping(ldfg, sdfg, unmapped, accel, ic, opts));
    report.merge(verifyConfig(ldfg, config, accel, opts));
    return report;
}

} // namespace mesa::verify
