/**
 * @file
 * Diagnostics engine for the translation-pipeline static verifier:
 * a diagnostic is (rule id, severity, location, message); a report
 * collects them, counts by severity/rule, renders a plain-text table
 * (mesa_lint) or JSON (mesa_lint --json, CI), and merges across
 * passes. The severity policy is the contract the controller's
 * verify-before-offload gate enforces: `error` findings veto the
 * offload (the region falls back to the CPU), `warn` findings are
 * reported but do not block, `note` findings are informational.
 */

#ifndef MESA_VERIFY_DIAGNOSTICS_HH
#define MESA_VERIFY_DIAGNOSTICS_HH

#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace mesa
{
class JsonWriter;
}

namespace mesa::verify
{

/** Finding severity, ordered by increasing weight. */
enum class Severity
{
    Note,
    Warn,
    Error
};

const char *severityName(Severity severity);

/** One verifier finding. */
struct Diagnostic
{
    std::string rule;  ///< Rule id, e.g. "map.duplicate-pe".
    Severity severity = Severity::Note;
    std::string where; ///< Location, e.g. "node 5 (add)" or "pe (3,2)".
    std::string message;
};

/** A collection of findings from one or more verification passes. */
class Report
{
  public:
    void
    add(Severity severity, std::string rule, std::string where,
        std::string message)
    {
        diags_.push_back({std::move(rule), severity, std::move(where),
                          std::move(message)});
    }

    void
    error(std::string rule, std::string where, std::string message)
    {
        add(Severity::Error, std::move(rule), std::move(where),
            std::move(message));
    }

    void
    warn(std::string rule, std::string where, std::string message)
    {
        add(Severity::Warn, std::move(rule), std::move(where),
            std::move(message));
    }

    void
    note(std::string rule, std::string where, std::string message)
    {
        add(Severity::Note, std::move(rule), std::move(where),
            std::move(message));
    }

    const std::vector<Diagnostic> &diagnostics() const { return diags_; }
    size_t size() const { return diags_.size(); }
    bool empty() const { return diags_.empty(); }

    size_t count(Severity severity) const;
    size_t errorCount() const { return count(Severity::Error); }
    size_t warnCount() const { return count(Severity::Warn); }
    size_t noteCount() const { return count(Severity::Note); }

    /** No error-severity findings (the offload-gate pass criterion). */
    bool clean() const { return errorCount() == 0; }

    bool hasRule(const std::string &rule) const;

    /** Findings per rule id (for the verify.rule.* counters). */
    std::map<std::string, size_t> countsByRule() const;

    /** Append another pass's findings. */
    void merge(const Report &other);

    /**
     * Emit as a JSON object: severity counts plus the full
     * diagnostics array.
     */
    void toJson(JsonWriter &w) const;

    /** Aligned text table of every finding at/above @p min. */
    void printTable(std::ostream &os,
                    Severity min = Severity::Note) const;

    /** One-line severity summary, e.g. "2 errors, 1 warning". */
    std::string summary() const;

  private:
    std::vector<Diagnostic> diags_;
};

} // namespace mesa::verify

#endif // MESA_VERIFY_DIAGNOSTICS_HH
