#include "cpu/lsd.hh"

namespace mesa::cpu
{

void
LoopStreamDetector::observe(const riscv::TraceEntry &entry)
{
    const riscv::Instruction &inst = entry.inst;

    // Escaping the candidate body resets confirmation.
    if (candidate_.valid() && !candidate_.contains(inst.pc)) {
        candidate_ = LoopInfo{};
    }

    if (!inst.isBackwardBranch() || !entry.branch_taken)
        return;
    ++backward_branches_;

    const uint32_t start = inst.targetPc();
    const uint32_t end = inst.pc + 4;
    const size_t body = size_t(end - start) / 4;
    if (body == 0 || body > max_body_)
        return; // fails C1: cannot fit the accelerator

    if (candidate_.start == start && candidate_.end == end) {
        ++candidate_.iterations_seen;
    } else {
        candidate_.start = start;
        candidate_.end = end;
        candidate_.body_instructions = body;
        candidate_.iterations_seen = 1;
    }
}

} // namespace mesa::cpu
