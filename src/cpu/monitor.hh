/**
 * @file
 * Region monitor (paper §4.1): the non-intrusive instruction
 * monitoring logic at the core's decode stage that evaluates the
 * three acceleration criteria —
 *   C1 valid loop detection (via the loop-stream detector),
 *   C2 control check (no unsupported instructions),
 *   C3 instruction mix and expected-iteration heuristics —
 * and captures the region into the trace cache.
 */

#ifndef MESA_CPU_MONITOR_HH
#define MESA_CPU_MONITOR_HH

#include <cstdint>
#include <optional>
#include <string>

#include "cpu/lsd.hh"
#include "cpu/trace_cache.hh"
#include "riscv/emulator.hh"

namespace mesa::cpu
{

/** Tunables of the acceleration-viability decision. */
struct MonitorParams
{
    /** Accelerator instruction capacity (C1 bound). */
    size_t max_instructions = 128;

    /**
     * Minimum estimated remaining iterations: the paper's evaluation
     * shows 50-100 iterations are needed to amortize configuration.
     */
    uint64_t min_expected_iterations = 50;

    /** C3: minimum fraction of compute (non-memory, non-control). */
    double min_compute_frac = 0.15;

    /** C3: maximum fraction of memory instructions. */
    double max_mem_frac = 0.7;
};

/** Why a loop was rejected for acceleration. */
enum class RejectReason
{
    None = 0,
    TooLarge,           ///< C1: body exceeds accelerator capacity.
    UnsupportedInstr,   ///< C2: system/indirect/inner-loop instruction.
    EarlyExit,          ///< C2: control left the body mid-iteration.
    PoorMix,            ///< C3: unfavorable instruction mix.
    FewIterations       ///< C3: expected iterations below threshold.
};

const char *rejectReasonName(RejectReason reason);

/** Outcome of monitoring one loop region. */
struct MonitorDecision
{
    bool qualified = false;
    RejectReason reason = RejectReason::None;
    LoopInfo loop;
    uint64_t est_remaining_iterations = 0;
    double compute_frac = 0.0;
    double mem_frac = 0.0;
    double control_frac = 0.0;
};

/**
 * Drives C1->C2->C3 over the committed instruction stream and fills
 * the trace cache. Feed every TraceEntry via observe(); poll
 * decision() for a verdict. After a rejection, call rearm() to watch
 * for the next loop.
 */
class RegionMonitor
{
  public:
    explicit RegionMonitor(const MonitorParams &params = {});

    void observe(const riscv::TraceEntry &entry);

    /** Verdict, if one has been reached. */
    const std::optional<MonitorDecision> &decision() const
    {
        return decision_;
    }

    /** The captured region body (valid once qualified). */
    TraceCache &traceCache() { return trace_cache_; }

    /** Forget the current candidate and verdict; resume watching. */
    void rearm();

    /** Never consider this region again (e.g., after mapping failed). */
    void blacklist(uint32_t start);

    const MonitorParams &params() const { return params_; }

  private:
    void startChecking();
    void finishIteration(const riscv::TraceEntry &branch_entry);
    void reject(RejectReason reason);

    MonitorParams params_;
    LoopStreamDetector lsd_;
    TraceCache trace_cache_;
    std::optional<MonitorDecision> decision_;

    enum class State { Watching, Checking } state_ = State::Watching;
    LoopInfo loop_;

    // C2/C3 tallies for the current pass.
    bool c2_violation_ = false;
    uint64_t tally_compute_ = 0;
    uint64_t tally_mem_ = 0;
    uint64_t tally_control_ = 0;
    uint64_t passes_ = 0;

    // Branch-condition trip estimation: consecutive operand samples
    // at the closing branch.
    bool have_prev_branch_vals_ = false;
    uint32_t prev_src1_ = 0;
    uint32_t prev_src2_ = 0;
    std::optional<uint64_t> est_remaining_;

    std::vector<uint32_t> blacklist_;
};

} // namespace mesa::cpu

#endif // MESA_CPU_MONITOR_HH
