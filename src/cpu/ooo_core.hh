/**
 * @file
 * Dependency-dataflow timing model of an out-of-order core. Consumes
 * the committed dynamic instruction stream from the functional
 * emulator and computes cycle counts under dispatch-width, ROB,
 * functional-unit, memory-hierarchy, and branch-mispredict
 * constraints. This is the gem5-substitute baseline core (DESIGN.md
 * "Substitutions").
 */

#ifndef MESA_CPU_OOO_CORE_HH
#define MESA_CPU_OOO_CORE_HH

#include <array>
#include <deque>
#include <unordered_map>
#include <vector>

#include "cpu/branch_predictor.hh"
#include "cpu/params.hh"
#include "mem/cache.hh"
#include "riscv/emulator.hh"
#include "util/slot_pool.hh"

namespace mesa::cpu
{

/** Per-run statistics of the core model. */
struct CoreStats
{
    uint64_t instructions = 0;
    uint64_t cycles = 0;
    uint64_t branches = 0;
    uint64_t mispredicts = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t fp_ops = 0;

    double
    ipc() const
    {
        return cycles ? double(instructions) / double(cycles) : 0.0;
    }
};

/**
 * The OoO core timing model. Feed committed instructions via
 * consume(); read the final cycle count with finish().
 *
 * Model summary: instruction i dispatches at most issue_width per
 * cycle, no earlier than when its ROB slot frees (in-order commit of
 * the instruction rob_size older). It issues when its sources are
 * ready and a functional unit of its class is free, executes for the
 * class latency (loads: the memory hierarchy's per-access latency),
 * and commits in order at most issue_width per cycle. A mispredicted
 * branch stalls dispatch of younger instructions until it resolves
 * plus the front-end refill penalty.
 */
class OooCore
{
  public:
    OooCore(const CoreParams &params, mem::MemHierarchy &mem);

    /** Account one committed instruction. */
    void consume(const riscv::TraceEntry &entry);

    /** Drain the pipeline; returns total cycles. */
    uint64_t finish();

    const CoreStats &stats() const { return stats_; }
    uint64_t cycles() const { return stats_.cycles; }
    const BranchPredictor &predictor() const { return predictor_; }

    /** Reset all pipeline and stat state (memory hierarchy untouched). */
    void reset();

  private:
    uint64_t acquireFu(riscv::OpClass cls, uint64_t ready);

    const CoreParams params_;
    mem::MemHierarchy &mem_;
    BranchPredictor predictor_;
    GsharePredictor gshare_;

    /** Completion cycle of the current producer of each unified reg. */
    std::array<uint64_t, riscv::NumUnifiedRegs> reg_ready_{};

    /** Commit cycles of the last rob_size instructions (slot reuse). */
    std::deque<uint64_t> rob_commits_;

    /** Per-FU-class per-cycle issue capacity. */
    std::vector<SlotPool> fu_pools_;

    /** Store completion by address for store->load forwarding. */
    std::unordered_map<uint32_t, uint64_t> store_ready_;

    uint64_t dispatch_cycle_ = 0;
    unsigned dispatched_this_cycle_ = 0;
    uint64_t fetch_stall_until_ = 0;
    uint64_t last_commit_ = 0;
    unsigned committed_this_cycle_ = 0;
    uint64_t last_commit_cycle_ = 0;

    CoreStats stats_;
};

} // namespace mesa::cpu

#endif // MESA_CPU_OOO_CORE_HH
