#include "cpu/params.hh"

namespace mesa::cpu
{

unsigned
FuPool::count(riscv::OpClass cls) const
{
    using riscv::OpClass;
    switch (cls) {
      case OpClass::IntAlu:
      case OpClass::Branch:
      case OpClass::Jump:
        return int_alu;
      case OpClass::IntMul: return int_mul;
      case OpClass::IntDiv: return int_div;
      case OpClass::FpAlu: return fp_alu;
      case OpClass::FpMul: return fp_mul;
      case OpClass::FpDiv: return fp_div;
      case OpClass::Load: return load_ports;
      case OpClass::Store: return store_ports;
      default: return int_alu;
    }
}

CoreParams
defaultCore()
{
    return CoreParams{};
}

CoreParams
dynaspamBaselineCore()
{
    // The DynaSpAM paper's gem5 parameters: 4-wide OoO core with a
    // 168-entry ROB (Haswell-like window).
    CoreParams p;
    p.issue_width = 4;
    p.rob_size = 168;
    p.mispredict_penalty = 14;
    return p;
}

} // namespace mesa::cpu
