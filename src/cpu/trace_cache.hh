/**
 * @file
 * Trace cache (paper §4.1): a small instruction store near the
 * I-cache holding only the instructions of the code region targeted
 * for acceleration. MESA builds the LDFG from here without
 * interfering with regular fetch.
 */

#ifndef MESA_CPU_TRACE_CACHE_HH
#define MESA_CPU_TRACE_CACHE_HH

#include <cstdint>
#include <vector>

#include "mem/memory.hh"
#include "riscv/encoding.hh"
#include "riscv/instruction.hh"
#include "util/stats.hh"

namespace mesa::cpu
{

/**
 * Capacity-bounded store of the region's instruction words, indexed
 * by (pc - start) / 4, with per-slot valid bits. Filled
 * opportunistically from the fetch/commit stream; missing slots can
 * be backfilled from memory (modeling the fetch-stage stall the paper
 * describes for stragglers).
 */
class TraceCache
{
  public:
    /** @param capacity maximum instructions (= accelerator capacity). */
    explicit TraceCache(size_t capacity = 512) : capacity_(capacity) {}

    /** Bind the cache to a region; clears previous contents. */
    void setRegion(uint32_t start, uint32_t end);

    /** Offer an instruction word seen at pc (no-op outside region). */
    void fill(uint32_t pc, uint32_t word);

    /** All slots captured? */
    bool complete() const { return valid_count_ == words_.size(); }

    /** Fraction of region instructions captured. */
    double
    fillRatio() const
    {
        return words_.empty()
                   ? 0.0
                   : double(valid_count_) / double(words_.size());
    }

    /**
     * Backfill missing slots by reading memory directly (the CPU
     * fetch-stall path). Returns the number of slots fetched.
     */
    size_t backfill(const mem::MainMemory &memory);

    /** Decode the whole captured body in program order. */
    std::vector<riscv::Instruction> body() const;

    size_t capacity() const { return capacity_; }
    size_t regionInstructions() const { return words_.size(); }
    uint32_t start() const { return start_; }
    uint32_t end() const { return end_; }
    uint64_t fills() const { return fills_.value(); }

  private:
    size_t capacity_;
    uint32_t start_ = 0;
    uint32_t end_ = 0;
    std::vector<uint32_t> words_;
    std::vector<bool> valid_;
    size_t valid_count_ = 0;
    Counter fills_{"fills"};
};

} // namespace mesa::cpu

#endif // MESA_CPU_TRACE_CACHE_HH
