/**
 * @file
 * Simple bimodal (2-bit saturating counter) branch predictor used by
 * the OoO core timing model to charge mispredict penalties.
 */

#ifndef MESA_CPU_BRANCH_PREDICTOR_HH
#define MESA_CPU_BRANCH_PREDICTOR_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mesa::cpu
{

/** Bimodal predictor: one 2-bit counter per (hashed) branch pc. */
class BranchPredictor
{
  public:
    explicit BranchPredictor(size_t entries = 4096)
        : table_(entries, 1) // weakly not-taken
    {}

    bool
    predict(uint32_t pc) const
    {
        return table_[index(pc)] >= 2;
    }

    /** Update with the resolved outcome; returns true on mispredict. */
    bool
    update(uint32_t pc, bool taken)
    {
        const bool mispredicted = predict(pc) != taken;
        uint8_t &ctr = table_[index(pc)];
        if (taken && ctr < 3)
            ++ctr;
        else if (!taken && ctr > 0)
            --ctr;
        ++lookups_;
        if (mispredicted)
            ++mispredicts_;
        return mispredicted;
    }

    uint64_t lookups() const { return lookups_; }
    uint64_t mispredicts() const { return mispredicts_; }

    double
    mispredictRate() const
    {
        return lookups_ ? double(mispredicts_) / double(lookups_) : 0.0;
    }

  private:
    size_t index(uint32_t pc) const { return (pc >> 2) % table_.size(); }

    std::vector<uint8_t> table_;
    uint64_t lookups_ = 0;
    uint64_t mispredicts_ = 0;
};

/**
 * Gshare predictor: 2-bit counters indexed by pc XOR a global branch
 * history register. Captures correlated/patterned branches the
 * bimodal table cannot (optional upgrade for the core model).
 */
class GsharePredictor
{
  public:
    explicit GsharePredictor(size_t entries = 4096,
                             unsigned history_bits = 12)
        : table_(entries, 1),
          history_mask_((1u << history_bits) - 1)
    {}

    bool
    predict(uint32_t pc) const
    {
        return table_[index(pc)] >= 2;
    }

    /** Update with the resolved outcome; returns true on mispredict. */
    bool
    update(uint32_t pc, bool taken)
    {
        const bool mispredicted = predict(pc) != taken;
        uint8_t &ctr = table_[index(pc)];
        if (taken && ctr < 3)
            ++ctr;
        else if (!taken && ctr > 0)
            --ctr;
        history_ = ((history_ << 1) | (taken ? 1u : 0u)) & history_mask_;
        ++lookups_;
        if (mispredicted)
            ++mispredicts_;
        return mispredicted;
    }

    uint64_t lookups() const { return lookups_; }
    uint64_t mispredicts() const { return mispredicts_; }

    double
    mispredictRate() const
    {
        return lookups_ ? double(mispredicts_) / double(lookups_) : 0.0;
    }

  private:
    size_t
    index(uint32_t pc) const
    {
        return ((pc >> 2) ^ history_) % table_.size();
    }

    std::vector<uint8_t> table_;
    uint32_t history_ = 0;
    uint32_t history_mask_;
    uint64_t lookups_ = 0;
    uint64_t mispredicts_ = 0;
};

} // namespace mesa::cpu

#endif // MESA_CPU_BRANCH_PREDICTOR_HH
