#include "cpu/ooo_core.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/trace.hh"

namespace mesa::cpu
{

using riscv::OpClass;
using riscv::TraceEntry;

OooCore::OooCore(const CoreParams &params, mem::MemHierarchy &mem)
    : params_(params), mem_(mem)
{
    reset();
}

void
OooCore::reset()
{
    reg_ready_.fill(0);
    rob_commits_.clear();
    store_ready_.clear();
    fu_pools_.clear();
    for (size_t cls = 0; cls < size_t(OpClass::NumClasses); ++cls) {
        fu_pools_.emplace_back(
            std::max(1u, params_.fus.count(OpClass(cls))));
    }
    dispatch_cycle_ = 0;
    dispatched_this_cycle_ = 0;
    fetch_stall_until_ = 0;
    last_commit_ = 0;
    committed_this_cycle_ = 0;
    last_commit_cycle_ = 0;
    stats_ = CoreStats{};
}

uint64_t
OooCore::acquireFu(OpClass cls, uint64_t ready)
{
    // Fully pipelined units: one issue slot per FU per cycle.
    return fu_pools_[size_t(cls)].acquire(ready);
}

void
OooCore::consume(const TraceEntry &entry)
{
    const riscv::Instruction &inst = entry.inst;
    ++stats_.instructions;

    // --- Dispatch ---
    uint64_t dispatch = std::max(dispatch_cycle_, fetch_stall_until_);
    if (dispatch > dispatch_cycle_) {
        dispatch_cycle_ = dispatch;
        dispatched_this_cycle_ = 0;
    }
    if (dispatched_this_cycle_ >= params_.issue_width) {
        ++dispatch_cycle_;
        dispatched_this_cycle_ = 0;
        dispatch = std::max(dispatch_cycle_, fetch_stall_until_);
        dispatch_cycle_ = dispatch;
    }
    // ROB slot: wait for the instruction rob_size older to commit.
    if (rob_commits_.size() >= params_.rob_size) {
        const uint64_t slot_free = rob_commits_.front() + 1;
        rob_commits_.pop_front();
        if (slot_free > dispatch) {
            dispatch = slot_free;
            dispatch_cycle_ = dispatch;
            dispatched_this_cycle_ = 0;
        }
    }
    ++dispatched_this_cycle_;

    // --- Source readiness (up to 3 sources for fused FP ops) ---
    uint64_t ready = dispatch;
    for (int n = 0; n < 3; ++n) {
        const int src = inst.unifiedSrc(n);
        if (src >= 0)
            ready = std::max(ready, reg_ready_[size_t(src)]);
    }

    // --- Issue + execute ---
    const OpClass cls = inst.cls();
    const uint64_t issue = acquireFu(cls, ready);
    uint64_t complete;

    if (inst.isLoad()) {
        ++stats_.loads;
        uint64_t latency;
        auto st = store_ready_.find(entry.mem_addr);
        if (st != store_ready_.end()) {
            // Store->load forwarding inside the window.
            latency = 1;
            complete = std::max(issue, st->second) + latency;
        } else {
            latency = mem_.accessLatency(entry.mem_addr, false);
            complete = issue + latency;
            if (latency >= mem_.dramLatency() && Tracer::active()) {
                // DRAM-bound load on the CPU's local cycle timeline.
                Tracer::global().instantLocal(
                    "mem", "cpu-dram", issue,
                    {{"addr", uint64_t(entry.mem_addr)},
                     {"latency", latency}});
            }
        }
    } else if (inst.isStore()) {
        ++stats_.stores;
        mem_.accessLatency(entry.mem_addr, true);
        complete = issue + uint64_t(params_.op_latency.cycles(cls));
        store_ready_[entry.mem_addr] = complete;
        if (store_ready_.size() > 2 * params_.rob_size)
            store_ready_.clear(); // age out (coarse window model)
    } else {
        complete = issue + uint64_t(params_.op_latency.cycles(cls));
    }

    if (riscv::fpSources(inst.op) || riscv::fpDest(inst.op))
        ++stats_.fp_ops;

    // --- Writeback ---
    const int dest = inst.unifiedDest();
    if (dest >= 0)
        reg_ready_[size_t(dest)] = complete;

    // --- Branch resolution ---
    if (inst.isBranch()) {
        ++stats_.branches;
        const bool mispredicted =
            params_.use_gshare
                ? gshare_.update(inst.pc, entry.branch_taken)
                : predictor_.update(inst.pc, entry.branch_taken);
        if (mispredicted) {
            ++stats_.mispredicts;
            fetch_stall_until_ =
                complete + params_.mispredict_penalty;
        } else if (entry.branch_taken) {
            // Correctly predicted taken branch: the fetch stream
            // still redirects, costing a front-end bubble.
            fetch_stall_until_ = std::max(
                fetch_stall_until_,
                dispatch + params_.taken_branch_bubble);
        }
    } else if (inst.isJump()) {
        // Jumps always redirect fetch.
        ++stats_.branches;
        fetch_stall_until_ =
            std::max(fetch_stall_until_,
                     dispatch + params_.taken_branch_bubble);
    }

    // --- Commit (in order, issue_width per cycle) ---
    uint64_t commit = std::max(complete, last_commit_);
    if (commit == last_commit_cycle_ &&
        committed_this_cycle_ >= params_.issue_width) {
        ++commit;
    }
    if (commit != last_commit_cycle_) {
        last_commit_cycle_ = commit;
        committed_this_cycle_ = 0;
    }
    ++committed_this_cycle_;
    last_commit_ = commit;
    rob_commits_.push_back(commit);

    stats_.cycles = std::max(stats_.cycles, commit);
}

uint64_t
OooCore::finish()
{
    return stats_.cycles;
}

} // namespace mesa::cpu
