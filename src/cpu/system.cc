#include "cpu/system.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace mesa::cpu
{

void
loadProgram(mem::MainMemory &memory, const riscv::Program &program)
{
    for (size_t i = 0; i < program.words.size(); ++i)
        memory.write32(program.base_pc + uint32_t(4 * i),
                       program.words[i]);
}

RunResult
runSingleCore(const CoreParams &core_params,
              const mem::HierarchyParams &mem_params,
              mem::MainMemory &memory, const riscv::Program &program,
              const ThreadInit &init, uint64_t max_steps)
{
    mem::MemHierarchy hierarchy(mem_params);
    OooCore core(core_params, hierarchy);

    riscv::Emulator emu(memory);
    emu.reset(program.base_pc);
    if (init)
        init(emu.state());
    emu.setObserver(
        [&](const riscv::TraceEntry &entry) { core.consume(entry); });
    emu.run(max_steps);

    RunResult res;
    res.cycles = core.finish();
    res.core_cycles = {res.cycles};
    res.instructions = core.stats().instructions;
    res.dram_accesses = hierarchy.dramAccesses();
    res.mispredicts = core.stats().mispredicts;
    res.loads = core.stats().loads;
    res.stores = core.stats().stores;
    res.fp_ops = core.stats().fp_ops;
    res.threads = 1;
    res.amat = hierarchy.amat();
    return res;
}

RunResult
runMulticore(const MulticoreParams &params, mem::MainMemory &memory,
             const riscv::Program &program,
             const std::vector<ThreadInit> &threads, uint64_t max_steps)
{
    if (threads.empty())
        fatal("runMulticore: no threads");

    mem::Cache shared_l2("shared-l2", params.mem.l2);
    RunResult res;
    res.threads = int(threads.size());

    uint64_t max_core_cycles = 0;
    for (const auto &init : threads) {
        mem::MemHierarchy hierarchy(params.mem, &shared_l2);
        OooCore core(params.core, hierarchy);

        riscv::Emulator emu(memory);
        emu.reset(program.base_pc);
        if (init)
            init(emu.state());
        emu.setObserver([&](const riscv::TraceEntry &entry) {
            core.consume(entry);
        });
        emu.run(max_steps);

        const uint64_t cycles = core.finish();
        res.core_cycles.push_back(cycles);
        max_core_cycles = std::max(max_core_cycles, cycles);
        res.instructions += core.stats().instructions;
        res.dram_accesses += hierarchy.dramAccesses();
        res.mispredicts += core.stats().mispredicts;
        res.loads += core.stats().loads;
        res.stores += core.stats().stores;
        res.fp_ops += core.stats().fp_ops;
    }

    // Shared DRAM bandwidth floor: all cores' misses contend on the
    // same memory channels.
    const uint64_t dram_floor = uint64_t(std::ceil(
        double(res.dram_accesses) / params.dram_accesses_per_cycle));
    res.cycles = std::max(max_core_cycles, dram_floor);
    return res;
}

} // namespace mesa::cpu
