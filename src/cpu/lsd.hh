/**
 * @file
 * Loop-stream detector (paper §4.1, criterion C1). Watches the
 * committed PC stream for backward branches whose bodies fit within
 * the accelerator's instruction capacity and confirms candidates by
 * observing consecutive full iterations.
 */

#ifndef MESA_CPU_LSD_HH
#define MESA_CPU_LSD_HH

#include <cstdint>

#include "riscv/emulator.hh"

namespace mesa::cpu
{

/** A detected loop: the half-open pc range [start, end). */
struct LoopInfo
{
    uint32_t start = 0;       ///< pc of the first body instruction.
    uint32_t end = 0;         ///< pc just past the backward branch.
    size_t body_instructions = 0;
    uint64_t iterations_seen = 0;

    bool valid() const { return end > start; }
    uint32_t branchPc() const { return end - 4; }

    bool
    contains(uint32_t pc) const
    {
        return pc >= start && pc < end;
    }
};

/**
 * Detects loops from explicit backward branches in the commit stream.
 * A candidate is confirmed once the same backward branch is taken
 * twice in a row with no intervening escape from the body range.
 */
class LoopStreamDetector
{
  public:
    /**
     * @param max_body maximum body size in instructions (C1: must fit
     *        the accelerator; larger loops are never candidates)
     */
    explicit LoopStreamDetector(size_t max_body = 512)
        : max_body_(max_body)
    {}

    void observe(const riscv::TraceEntry &entry);

    /** A confirmed loop: taken twice consecutively, size within C1. */
    bool confirmed() const { return candidate_.iterations_seen >= 2; }

    const LoopInfo &candidate() const { return candidate_; }

    void reset() { candidate_ = LoopInfo{}; }

    uint64_t backwardBranchesSeen() const { return backward_branches_; }

  private:
    size_t max_body_;
    LoopInfo candidate_;
    uint64_t backward_branches_ = 0;
};

} // namespace mesa::cpu

#endif // MESA_CPU_LSD_HH
