/**
 * @file
 * Configuration parameters for the out-of-order CPU core timing model
 * (the gem5/BOOM-like baseline of the paper's evaluation, §6.1:
 * 16-core quad-issue out-of-order RISC-V CPU).
 */

#ifndef MESA_CPU_PARAMS_HH
#define MESA_CPU_PARAMS_HH

#include <cstdint>

#include "dfg/ldfg.hh"

namespace mesa::cpu
{

/** Functional-unit pool sizes for one core. */
struct FuPool
{
    unsigned int_alu = 4;
    unsigned int_mul = 2;
    unsigned int_div = 1;
    unsigned fp_alu = 2;
    unsigned fp_mul = 2;
    unsigned fp_div = 1;
    unsigned load_ports = 2;
    unsigned store_ports = 1;

    unsigned count(riscv::OpClass cls) const;
};

/** Core-wide microarchitecture parameters. */
struct CoreParams
{
    unsigned issue_width = 4;        ///< Dispatch/issue/commit width.
    unsigned rob_size = 192;
    unsigned mispredict_penalty = 12;

    /**
     * Front-end redirect bubble on correctly predicted *taken*
     * branches (fetch discontinuity): cycles before younger
     * instructions can dispatch.
     */
    unsigned taken_branch_bubble = 2;

    /** Use the history-based gshare predictor instead of bimodal. */
    bool use_gshare = false;

    FuPool fus;
    dfg::OpLatencyConfig op_latency; ///< Execution latency per class.
};

/** Single-core parameters matching the DynaSpAM comparison setup. */
CoreParams dynaspamBaselineCore();

/** Default quad-issue BOOM-like core. */
CoreParams defaultCore();

} // namespace mesa::cpu

#endif // MESA_CPU_PARAMS_HH
