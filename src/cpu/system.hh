/**
 * @file
 * CPU system harness: loads a program, drives the functional emulator
 * through the OoO core timing model, and aggregates cycles. The
 * multicore variant models the paper's 16-core baseline: per-core
 * private L1s, one shared L2, and a shared DRAM-bandwidth floor.
 */

#ifndef MESA_CPU_SYSTEM_HH
#define MESA_CPU_SYSTEM_HH

#include <algorithm>
#include <functional>
#include <vector>

#include "cpu/ooo_core.hh"
#include "cpu/params.hh"
#include "mem/cache.hh"
#include "mem/memory.hh"
#include "riscv/assembler.hh"
#include "riscv/emulator.hh"

namespace mesa::cpu
{

/** Per-thread register initialization (its chunk of the iteration space). */
using ThreadInit = std::function<void(riscv::ArchState &)>;

/** Multicore system parameters (paper §6: 16-core quad-issue OoO). */
struct MulticoreParams
{
    int num_cores = 16;
    CoreParams core;
    mem::HierarchyParams mem;
    /** Shared DRAM bandwidth: serviceable accesses per cycle. */
    double dram_accesses_per_cycle = 1.0;
};

/** Aggregated outcome of a timed run. */
struct RunResult
{
    uint64_t cycles = 0;       ///< Wall-clock cycles (max over cores).
    uint64_t instructions = 0; ///< Total committed instructions.
    uint64_t dram_accesses = 0;
    uint64_t mispredicts = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t fp_ops = 0;
    int threads = 1;
    double amat = 0.0; ///< Average memory access time observed.

    /** Per-core cycle breakdown (index = thread). The wall-clock max
     *  hides load imbalance; schedulers and fairness benches need the
     *  full distribution. Empty only in hand-built results. */
    std::vector<uint64_t> core_cycles;

    double
    ipc() const
    {
        return cycles ? double(instructions) / double(cycles) : 0.0;
    }

    /** Imbalance ratio: slowest core over mean core time (1 = even). */
    double
    imbalance() const
    {
        if (core_cycles.empty())
            return 1.0;
        uint64_t sum = 0, worst = 0;
        for (uint64_t c : core_cycles) {
            sum += c;
            worst = std::max(worst, c);
        }
        const double mean =
            double(sum) / double(core_cycles.size());
        return mean > 0.0 ? double(worst) / mean : 1.0;
    }
};

/** Load program words into memory at its base pc. */
void loadProgram(mem::MainMemory &memory, const riscv::Program &program);

/**
 * Run a program on one timed core until halt (or max_steps).
 * The program must already be loaded; init sets up live-in registers.
 */
RunResult runSingleCore(const CoreParams &core_params,
                        const mem::HierarchyParams &mem_params,
                        mem::MainMemory &memory,
                        const riscv::Program &program,
                        const ThreadInit &init,
                        uint64_t max_steps = 200'000'000);

/**
 * Run the same program on num_cores cores, one ThreadInit per core
 * (each selecting a disjoint chunk of the iteration space). Threads
 * share the L2 and a DRAM bandwidth budget. Returns wall-clock cycles
 * = max(per-core cycles, total DRAM accesses / bandwidth).
 */
RunResult runMulticore(const MulticoreParams &params,
                       mem::MainMemory &memory,
                       const riscv::Program &program,
                       const std::vector<ThreadInit> &threads,
                       uint64_t max_steps = 200'000'000);

} // namespace mesa::cpu

#endif // MESA_CPU_SYSTEM_HH
