#include "cpu/monitor.hh"

#include <algorithm>

#include "util/debug.hh"
#include "util/trace.hh"
#include <cstdlib>

namespace mesa::cpu
{

using riscv::Instruction;
using riscv::Op;
using riscv::TraceEntry;

const char *
rejectReasonName(RejectReason reason)
{
    switch (reason) {
      case RejectReason::None: return "none";
      case RejectReason::TooLarge: return "too-large";
      case RejectReason::UnsupportedInstr: return "unsupported-instr";
      case RejectReason::EarlyExit: return "early-exit";
      case RejectReason::PoorMix: return "poor-mix";
      case RejectReason::FewIterations: return "few-iterations";
      default: return "???";
    }
}

RegionMonitor::RegionMonitor(const MonitorParams &params)
    : params_(params),
      // The LSD detects any loop fitting its PC-history window; the
      // accelerator-capacity bound (C1) is the monitor's decision, so
      // an oversized loop is detected and then rejected as TooLarge.
      lsd_(std::max<size_t>(4096, params.max_instructions)),
      trace_cache_(params.max_instructions)
{
}

void
RegionMonitor::rearm()
{
    decision_.reset();
    state_ = State::Watching;
    lsd_.reset();
    loop_ = LoopInfo{};
    c2_violation_ = false;
    tally_compute_ = tally_mem_ = tally_control_ = 0;
    passes_ = 0;
    have_prev_branch_vals_ = false;
    est_remaining_.reset();
}

void
RegionMonitor::blacklist(uint32_t start)
{
    blacklist_.push_back(start);
}

void
RegionMonitor::startChecking()
{
    loop_ = lsd_.candidate();
    state_ = State::Checking;
    trace_cache_.setRegion(loop_.start, loop_.end);
    c2_violation_ = false;
    tally_compute_ = tally_mem_ = tally_control_ = 0;
    passes_ = 0;
    have_prev_branch_vals_ = false;
    est_remaining_.reset();
}

void
RegionMonitor::reject(RejectReason reason)
{
    MonitorDecision d;
    d.qualified = false;
    d.reason = reason;
    d.loop = loop_;
    decision_ = d;
    state_ = State::Watching;
    lsd_.reset();
    if (Tracer::active())
        Tracer::global().instant(
            "cpu0", "loop-rejected", Tracer::global().now(),
            {{"pc", uint64_t(loop_.start)},
             {"reason", rejectReasonName(reason)}});
}

void
RegionMonitor::finishIteration(const TraceEntry &branch_entry)
{
    ++passes_;

    // Expected-iteration estimate from the branch condition: sample
    // the branch operands across consecutive iterations; the per-
    // iteration delta of the moving operand projects the remaining
    // trip count (paper: "an estimate of the loop's expected
    // iteration count based on the branch condition and PC trace").
    if (have_prev_branch_vals_) {
        const int64_t d1 = int64_t(int32_t(branch_entry.src1_val)) -
                           int64_t(int32_t(prev_src1_));
        const int64_t d2 = int64_t(int32_t(branch_entry.src2_val)) -
                           int64_t(int32_t(prev_src2_));
        // The gap (src2 - src1) closes by (d1 - d2) per iteration for
        // blt/bge-style conditions; remaining trips ~= gap / rate.
        const int64_t gap = int64_t(int32_t(branch_entry.src2_val)) -
                            int64_t(int32_t(branch_entry.src1_val));
        const int64_t rate = d1 - d2;
        if (rate != 0) {
            const int64_t remaining = gap / rate;
            est_remaining_ = remaining > 0 ? uint64_t(remaining) : 0;
        } else {
            est_remaining_.reset(); // no moving operand, unknown
        }
    }
    have_prev_branch_vals_ = true;
    prev_src1_ = branch_entry.src1_val;
    prev_src2_ = branch_entry.src2_val;

    if (c2_violation_) {
        reject(RejectReason::UnsupportedInstr);
        return;
    }

    // Need at least two full passes: one to tally + capture, one to
    // obtain the trip estimate.
    if (passes_ < 2)
        return;

    const double total =
        double(tally_compute_ + tally_mem_ + tally_control_);
    MonitorDecision d;
    d.loop = loop_;
    d.compute_frac = total > 0 ? double(tally_compute_) / total : 0.0;
    d.mem_frac = total > 0 ? double(tally_mem_) / total : 0.0;
    d.control_frac = total > 0 ? double(tally_control_) / total : 0.0;
    d.est_remaining_iterations = est_remaining_.value_or(0);

    if (d.compute_frac < params_.min_compute_frac ||
        d.mem_frac > params_.max_mem_frac) {
        d.qualified = false;
        d.reason = RejectReason::PoorMix;
    } else if (!est_remaining_ ||
               *est_remaining_ < params_.min_expected_iterations) {
        d.qualified = false;
        d.reason = RejectReason::FewIterations;
    } else {
        d.qualified = true;
    }
    DTRACE("monitor", "loop 0x" << std::hex << loop_.start << std::dec
                                << (d.qualified ? " qualified"
                                                : " rejected: ")
                                << (d.qualified
                                        ? ""
                                        : rejectReasonName(d.reason))
                                << ", est " << d.est_remaining_iterations
                                << " iterations remaining");
    decision_ = d;
    if (Tracer::active())
        Tracer::global().instant(
            "cpu0",
            d.qualified ? "loop-qualified" : "loop-rejected",
            Tracer::global().now(),
            {{"pc", uint64_t(loop_.start)},
             {"reason", rejectReasonName(d.reason)},
             {"est_iterations", d.est_remaining_iterations}});
    if (!d.qualified) {
        state_ = State::Watching;
        lsd_.reset();
    }
}

void
RegionMonitor::observe(const TraceEntry &entry)
{
    if (decision_ && decision_->qualified)
        return; // verdict reached; controller takes over

    const Instruction &inst = entry.inst;

    if (state_ == State::Watching) {
        decision_.reset();
        lsd_.observe(entry);
        if (lsd_.confirmed()) {
            const auto &cand = lsd_.candidate();
            const bool blacklisted =
                std::find(blacklist_.begin(), blacklist_.end(),
                          cand.start) != blacklist_.end();
            if (!blacklisted) {
                if (cand.body_instructions > params_.max_instructions) {
                    loop_ = cand;
                    reject(RejectReason::TooLarge);
                } else {
                    startChecking();
                }
            }
        }
        return;
    }

    // --- Checking state ---
    if (!loop_.contains(inst.pc)) {
        // Control left the region before the closing branch.
        reject(RejectReason::EarlyExit);
        return;
    }

    trace_cache_.fill(inst.pc, inst.raw);

    // C2: unsupported instructions invalidate candidacy.
    const bool is_closing_branch = inst.pc == loop_.branchPc();
    if (inst.isSystem() || inst.op == Op::Jalr || inst.op == Op::Jal ||
        inst.op == Op::Invalid || inst.numSources() > 2) {
        // System ops, jumps, undecodable words, and three-operand
        // fused ops (the PEs have two inputs) are unsupported.
        c2_violation_ = true;
    } else if (inst.isBackwardBranch() && !is_closing_branch) {
        c2_violation_ = true; // inner loop
    } else if (inst.isBranch() && inst.imm > 0 &&
               inst.targetPc() >= loop_.end) {
        c2_violation_ = true; // branch exiting the region
    }

    // C3 tallies.
    if (inst.isMem())
        ++tally_mem_;
    else if (inst.isControl())
        ++tally_control_;
    else
        ++tally_compute_;

    if (is_closing_branch) {
        if (!entry.branch_taken) {
            reject(RejectReason::EarlyExit);
            return;
        }
        finishIteration(entry);
    }
}

} // namespace mesa::cpu
