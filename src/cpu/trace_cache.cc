#include "cpu/trace_cache.hh"

#include "util/logging.hh"

namespace mesa::cpu
{

void
TraceCache::setRegion(uint32_t start, uint32_t end)
{
    if (end < start || (end - start) % 4 != 0)
        fatal("TraceCache: malformed region [", start, ", ", end, ")");
    const size_t n = size_t(end - start) / 4;
    if (n > capacity_)
        fatal("TraceCache: region of ", n, " instructions exceeds ",
              "capacity ", capacity_);
    start_ = start;
    end_ = end;
    words_.assign(n, 0);
    valid_.assign(n, false);
    valid_count_ = 0;
}

void
TraceCache::fill(uint32_t pc, uint32_t word)
{
    if (pc < start_ || pc >= end_)
        return;
    const size_t idx = size_t(pc - start_) / 4;
    if (!valid_[idx]) {
        words_[idx] = word;
        valid_[idx] = true;
        ++valid_count_;
        ++fills_;
    }
}

size_t
TraceCache::backfill(const mem::MainMemory &memory)
{
    size_t fetched = 0;
    for (size_t i = 0; i < words_.size(); ++i) {
        if (!valid_[i]) {
            words_[i] = memory.read32(start_ + uint32_t(4 * i));
            valid_[i] = true;
            ++valid_count_;
            ++fetched;
        }
    }
    return fetched;
}

std::vector<riscv::Instruction>
TraceCache::body() const
{
    MESA_ASSERT(complete(), "TraceCache::body: region not fully captured");
    std::vector<riscv::Instruction> out;
    out.reserve(words_.size());
    for (size_t i = 0; i < words_.size(); ++i)
        out.push_back(riscv::decode(words_[i], start_ + uint32_t(4 * i)));
    return out;
}

} // namespace mesa::cpu
