/**
 * @file
 * Abstract domains for the LDFG certifier: an integer interval domain
 * with +/-infinity sentinels, a stride/congruence domain (value == rem
 * mod mod), and their product lifted to a symbolic affine value
 *
 *     AbsVal = Top | { base, off, stride }
 *
 * meaning "machine value == (R0[base] + off) mod 2^32" where R0[base]
 * is the (unknown) loop-entry value of unified register `base`, or an
 * absolute value when base == -1. Keeping offsets symbolic makes the
 * whole analysis a pure function of the loop body, so certificates can
 * be cached by body CRC and instantiated with concrete registers at
 * offload time.
 *
 * Soundness contract for absolute values (base == -1): the interval
 * describes the machine value *exactly* (no wrap), which transfer
 * functions maintain by degrading any result that could leave
 * [0, 2^32) to Top. Symbolic values need no such guard: RV32
 * arithmetic is a ring mod 2^32, so affine offsets compose exactly and
 * the wrap check is deferred to certificate instantiation, where
 * R0[base] is known.
 */

#ifndef MESA_ABSINT_DOMAIN_HH
#define MESA_ABSINT_DOMAIN_HH

#include <cstdint>
#include <string>

#include "riscv/isa.hh"

namespace mesa::absint
{

/** Closed integer interval [lo, hi] with infinity sentinels. */
struct Interval
{
    static constexpr int64_t NegInf = INT64_MIN;
    static constexpr int64_t PosInf = INT64_MAX;

    int64_t lo = NegInf;
    int64_t hi = PosInf;

    static Interval top() { return {}; }
    static Interval constant(int64_t v) { return {v, v}; }
    static Interval range(int64_t lo, int64_t hi) { return {lo, hi}; }

    bool isTop() const { return lo == NegInf && hi == PosInf; }
    bool isConst() const { return lo == hi && lo != NegInf && hi != PosInf; }
    bool finite() const { return lo != NegInf && hi != PosInf; }
    bool contains(int64_t v) const { return lo <= v && v <= hi; }

    Interval add(const Interval &o) const;
    Interval sub(const Interval &o) const;
    Interval mul(const Interval &o) const;
    Interval shiftLeft(int sh) const;  ///< Multiply by 2^sh.
    Interval shiftRightU(int sh) const; ///< Unsigned >>, needs lo >= 0.
    Interval join(const Interval &o) const;
    /** Standard widening: any bound that moved escapes to infinity. */
    Interval widen(const Interval &next) const;

    bool operator==(const Interval &o) const = default;
};

/**
 * Congruence domain: the set { v : v == rem (mod mod) }. mod == 0
 * denotes the singleton {rem}; mod == 1 denotes all integers (top).
 * rem is normalized into [0, mod) for mod > 1.
 */
struct Stride
{
    int64_t mod = 1;
    int64_t rem = 0;

    static Stride top() { return {1, 0}; }
    static Stride constant(int64_t v) { return {0, v}; }

    bool isTop() const { return mod == 1; }
    bool isConst() const { return mod == 0; }
    bool contains(int64_t v) const;

    Stride add(const Stride &o) const;
    Stride sub(const Stride &o) const;
    Stride mulConst(int64_t c) const;
    Stride join(const Stride &o) const;

    bool operator==(const Stride &o) const = default;
};

/** Normalize rem into [0, mod) for mod > 1. */
Stride normalizeStride(int64_t mod, int64_t rem);

/**
 * Symbolic affine abstract value: machine value ==
 * (R0[base] + off) mod 2^32, with off constrained by the interval and
 * congruence. base == -1 means absolute (off is the machine value
 * itself, kept exactly within [0, 2^32)).
 */
struct AbsVal
{
    bool is_top = true;
    int base = -1; ///< Unified live-in register, or -1 = absolute.
    Interval off;
    Stride stride;

    static AbsVal top() { return {}; }
    static AbsVal constant(int64_t v);
    static AbsVal entryReg(int reg);

    bool isConst() const
    {
        return !is_top && base == -1 && off.isConst();
    }

    bool operator==(const AbsVal &o) const
    {
        if (is_top != o.is_top)
            return false;
        if (is_top)
            return true;
        return base == o.base && off == o.off && stride == o.stride;
    }

    std::string toString() const;
};

AbsVal joinVal(const AbsVal &a, const AbsVal &b);
AbsVal widenVal(const AbsVal &prev, const AbsVal &next);

/**
 * Abstract transfer function for one instruction. @p a and @p b are
 * the abstract values of source operands 1 and 2 (absent operands and
 * x0 are the constant 0). Loads, FP compute, and anything the domain
 * cannot express precisely return Top.
 */
AbsVal transfer(riscv::Op op, int32_t imm, uint32_t pc, const AbsVal &a,
                const AbsVal &b);

} // namespace mesa::absint

#endif // MESA_ABSINT_DOMAIN_HH
