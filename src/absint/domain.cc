#include "absint/domain.hh"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "riscv/alu.hh"

namespace mesa::absint
{

namespace
{

constexpr int64_t Machine = int64_t(1) << 32; ///< 2^32, exclusive top.

/** Saturating add of a bound with an offset (inf stays inf). */
int64_t
satAdd(int64_t a, int64_t b)
{
    if (a == Interval::NegInf || a == Interval::PosInf)
        return a;
    if (b == Interval::NegInf || b == Interval::PosInf)
        return b;
    if (b > 0 && a > Interval::PosInf - b)
        return Interval::PosInf;
    if (b < 0 && a < Interval::NegInf - b)
        return Interval::NegInf;
    return a + b;
}

int64_t
satNeg(int64_t a)
{
    if (a == Interval::NegInf)
        return Interval::PosInf;
    if (a == Interval::PosInf)
        return Interval::NegInf;
    return -a;
}

/** Saturating multiply of two bounds (used only on finite inputs). */
int64_t
satMul(int64_t a, int64_t b)
{
    if (a == 0 || b == 0)
        return 0;
    const bool neg = (a < 0) != (b < 0);
    // Work in unsigned magnitudes to dodge INT64_MIN edge cases.
    const uint64_t ua = a < 0 ? uint64_t(0) - uint64_t(a) : uint64_t(a);
    const uint64_t ub = b < 0 ? uint64_t(0) - uint64_t(b) : uint64_t(b);
    if (ua > uint64_t(Interval::PosInf) / ub)
        return neg ? Interval::NegInf : Interval::PosInf;
    const uint64_t m = ua * ub;
    return neg ? -int64_t(m) : int64_t(m);
}

int64_t
gcd64(int64_t a, int64_t b)
{
    a = a < 0 ? -a : a;
    b = b < 0 ? -b : b;
    while (b) {
        const int64_t t = a % b;
        a = b;
        b = t;
    }
    return a;
}

} // namespace

Interval
Interval::add(const Interval &o) const
{
    return {satAdd(lo, o.lo), satAdd(hi, o.hi)};
}

Interval
Interval::sub(const Interval &o) const
{
    return {satAdd(lo, satNeg(o.hi)), satAdd(hi, satNeg(o.lo))};
}

Interval
Interval::mul(const Interval &o) const
{
    if (!finite() || !o.finite())
        return top();
    const int64_t c[4] = {satMul(lo, o.lo), satMul(lo, o.hi),
                          satMul(hi, o.lo), satMul(hi, o.hi)};
    return {*std::min_element(c, c + 4), *std::max_element(c, c + 4)};
}

Interval
Interval::shiftLeft(int sh) const
{
    if (sh < 0 || sh >= 63 || !finite())
        return top();
    return mul(constant(int64_t(1) << sh));
}

Interval
Interval::shiftRightU(int sh) const
{
    if (sh < 0 || sh >= 63 || !finite() || lo < 0)
        return top();
    return {lo >> sh, hi >> sh};
}

Interval
Interval::join(const Interval &o) const
{
    return {std::min(lo, o.lo), std::max(hi, o.hi)};
}

Interval
Interval::widen(const Interval &next) const
{
    return {next.lo < lo ? NegInf : lo, next.hi > hi ? PosInf : hi};
}

Stride
normalizeStride(int64_t mod, int64_t rem)
{
    if (mod < 0)
        mod = -mod;
    if (mod == 1)
        return Stride::top();
    if (mod == 0)
        return {0, rem};
    rem %= mod;
    if (rem < 0)
        rem += mod;
    return {mod, rem};
}

bool
Stride::contains(int64_t v) const
{
    if (isTop())
        return true;
    if (isConst())
        return v == rem;
    int64_t r = v % mod;
    if (r < 0)
        r += mod;
    return r == rem;
}

Stride
Stride::add(const Stride &o) const
{
    if (isConst() && o.isConst())
        return constant(rem + o.rem);
    return normalizeStride(gcd64(mod, o.mod), rem + o.rem);
}

Stride
Stride::sub(const Stride &o) const
{
    if (isConst() && o.isConst())
        return constant(rem - o.rem);
    return normalizeStride(gcd64(mod, o.mod), rem - o.rem);
}

Stride
Stride::mulConst(int64_t c) const
{
    if (c == 0)
        return constant(0);
    const auto wide = [](int64_t x, int64_t y) {
        return __int128(x) * __int128(y);
    };
    const __int128 m = wide(mod, c);
    const __int128 r = wide(rem, c);
    const __int128 lim = __int128(Interval::PosInf);
    if (m > lim || m < -lim || r > lim || r < -lim)
        return top();
    if (isConst())
        return constant(int64_t(r));
    return normalizeStride(int64_t(m), int64_t(r));
}

Stride
Stride::join(const Stride &o) const
{
    // Smallest congruence containing both: gcd of the moduli and of
    // the residue difference.
    const int64_t g = gcd64(gcd64(mod, o.mod), rem - o.rem);
    return normalizeStride(g, rem);
}

AbsVal
AbsVal::constant(int64_t v)
{
    return {false, -1, Interval::constant(v), Stride::constant(v)};
}

AbsVal
AbsVal::entryReg(int reg)
{
    return {false, reg, Interval::constant(0), Stride::constant(0)};
}

std::string
AbsVal::toString() const
{
    if (is_top)
        return "T";
    std::ostringstream os;
    if (base >= 0)
        os << "r" << base << "+";
    auto bound = [](int64_t b) {
        if (b == Interval::NegInf)
            return std::string("-inf");
        if (b == Interval::PosInf)
            return std::string("+inf");
        return std::to_string(b);
    };
    os << "[" << bound(off.lo) << "," << bound(off.hi) << "]";
    if (!stride.isTop() && !off.isConst())
        os << "{" << stride.mod << "k+" << stride.rem << "}";
    return os.str();
}

AbsVal
joinVal(const AbsVal &a, const AbsVal &b)
{
    if (a.is_top || b.is_top || a.base != b.base)
        return AbsVal::top();
    return {false, a.base, a.off.join(b.off), a.stride.join(b.stride)};
}

AbsVal
widenVal(const AbsVal &prev, const AbsVal &next)
{
    if (prev.is_top || next.is_top || prev.base != next.base)
        return AbsVal::top();
    return {false, prev.base, prev.off.widen(prev.off.join(next.off)),
            prev.stride.join(next.stride)};
}

namespace
{

/**
 * Enforce the absolute-value invariant: an absolute (base == -1)
 * result must describe the machine word exactly, so any finite range
 * that could wrap out of [0, 2^32) degrades to Top.
 */
AbsVal
clampAbsolute(AbsVal v)
{
    if (v.is_top || v.base >= 0)
        return v;
    if (!v.off.finite() || v.off.lo < 0 || v.off.hi >= Machine)
        return AbsVal::top();
    return v;
}

bool
foldableAlu(riscv::Op op)
{
    using riscv::Op;
    switch (op) {
      case Op::Lui:
      case Op::Auipc:
      case Op::Addi:
      case Op::Slti:
      case Op::Sltiu:
      case Op::Xori:
      case Op::Ori:
      case Op::Andi:
      case Op::Slli:
      case Op::Srli:
      case Op::Srai:
      case Op::Add:
      case Op::Sub:
      case Op::Sll:
      case Op::Slt:
      case Op::Sltu:
      case Op::Xor:
      case Op::Srl:
      case Op::Sra:
      case Op::Or:
      case Op::And:
      case Op::Mulh:
      case Op::Mulhsu:
      case Op::Mulhu:
      case Op::Div:
      case Op::Divu:
      case Op::Rem:
      case Op::Remu:
        return true;
      default:
        return false;
    }
}

AbsVal
addOffset(const AbsVal &a, int64_t c)
{
    if (a.is_top)
        return AbsVal::top();
    AbsVal r = a;
    r.off = r.off.add(Interval::constant(c));
    r.stride = r.stride.add(Stride::constant(c));
    return clampAbsolute(r);
}

} // namespace

AbsVal
transfer(riscv::Op op, int32_t imm, uint32_t pc, const AbsVal &a,
         const AbsVal &b)
{
    using riscv::Op;

    // Exact machine folding when every consumed operand is a known
    // constant word.
    if (foldableAlu(op)) {
        const bool need_b = op >= Op::Add; // register-register forms
        if (a.isConst() && (!need_b || b.isConst()))
            return AbsVal::constant(int64_t(riscv::aluEval(
                op, uint32_t(uint64_t(a.off.lo)),
                need_b ? uint32_t(uint64_t(b.off.lo)) : 0, imm, pc)));
    }

    switch (op) {
      case Op::Lui:
        return AbsVal::constant(int64_t(uint32_t(imm)));
      case Op::Auipc:
        return AbsVal::constant(int64_t(pc + uint32_t(imm)));
      case Op::Jal:
      case Op::Jalr:
        return AbsVal::constant(int64_t(uint32_t(pc + 4)));

      case Op::Addi:
        return addOffset(a, imm);

      case Op::Add: {
        if (a.is_top || b.is_top)
            return AbsVal::top();
        if (a.base >= 0 && b.base >= 0)
            return AbsVal::top(); // two symbolic bases do not compose
        AbsVal r;
        r.is_top = false;
        r.base = a.base >= 0 ? a.base : b.base;
        r.off = a.off.add(b.off);
        r.stride = a.stride.add(b.stride);
        return clampAbsolute(r);
      }

      case Op::Sub: {
        if (a.is_top || b.is_top)
            return AbsVal::top();
        // (R + x) - (R + y) == x - y mod 2^32; also covers both
        // operands absolute. A symbolic rhs with a different base
        // cannot be expressed.
        if (a.base == b.base) {
            AbsVal r;
            r.is_top = false;
            r.base = -1;
            r.off = a.off.sub(b.off);
            r.stride = a.stride.sub(b.stride);
            return clampAbsolute(r);
        }
        if (b.base == -1) {
            AbsVal r = a;
            r.off = r.off.sub(b.off);
            r.stride = r.stride.sub(b.stride);
            return clampAbsolute(r);
        }
        return AbsVal::top();
      }

      case Op::Slli: {
        if (a.is_top || a.base >= 0)
            return AbsVal::top();
        const int sh = imm & 0x1F;
        AbsVal r;
        r.is_top = false;
        r.base = -1;
        r.off = a.off.shiftLeft(sh);
        r.stride = a.stride.mulConst(int64_t(1) << sh);
        return clampAbsolute(r);
      }

      case Op::Srli: {
        if (a.is_top || a.base >= 0)
            return AbsVal::top();
        const int sh = imm & 0x1F;
        AbsVal r;
        r.is_top = false;
        r.base = -1;
        r.off = a.off.shiftRightU(sh);
        r.stride = Stride::top();
        return clampAbsolute(r);
      }

      case Op::Mul: {
        if (a.is_top || b.is_top || a.base >= 0 || b.base >= 0)
            return AbsVal::top();
        AbsVal r;
        r.is_top = false;
        r.base = -1;
        r.off = a.off.mul(b.off);
        if (a.off.isConst())
            r.stride = b.stride.mulConst(a.off.lo);
        else if (b.off.isConst())
            r.stride = a.stride.mulConst(b.off.lo);
        else
            r.stride = Stride::top();
        return clampAbsolute(r);
      }

      case Op::Slti:
      case Op::Sltiu:
      case Op::Slt:
      case Op::Sltu: {
        AbsVal r;
        r.is_top = false;
        r.base = -1;
        r.off = Interval::range(0, 1);
        r.stride = Stride::top();
        return r;
      }

      default:
        // Loads, FP compute, logic on unknowns, division: outside the
        // affine fragment.
        return AbsVal::top();
    }
}

} // namespace mesa::absint
