/**
 * @file
 * Static certificates over an LDFG loop body, derived by abstract
 * interpretation (interval + stride/congruence domains, widening over
 * the loop-carried edges):
 *
 *  - a **memory-footprint certificate**: for every load/store node,
 *    proven byte bounds relative to a live-in base register plus a
 *    per-iteration drift, so the concrete address range over N
 *    iterations is computable at offload time and classifiable
 *    against the offload's memory region;
 *  - a **trip-count certificate**: a closed-form description of the
 *    back branch (induction register, per-iteration step, invariant
 *    bound) from which the proven max iteration count — and a
 *    per-offload watchdog budget — follows once concrete registers
 *    are known.
 *
 * A BodyCertificate is a pure function of the loop body (no machine
 * state), so the controller caches it next to the AcceleratorConfig
 * keyed by body CRC; `instantiate()` binds it to a concrete ArchState
 * and region at offload time.
 */

#ifndef MESA_ABSINT_CERTIFICATE_HH
#define MESA_ABSINT_CERTIFICATE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "absint/domain.hh"
#include "dfg/ldfg.hh"
#include "mem/memory.hh"
#include "riscv/emulator.hh"
#include "verify/diagnostics.hh"

namespace mesa
{
class JsonWriter;
}

namespace mesa::absint
{

/** Classification of a footprint against the offload region. */
enum class RegionClass
{
    ProvenIn = 0,   ///< Every access provably inside the region.
    ProvenOut,      ///< Some access provably outside the region.
    Unknown,        ///< Bounds not provable.
};

const char *regionClassName(RegionClass cls);

/** Proven address form of one load/store node. */
struct FootprintEntry
{
    dfg::NodeId node = dfg::NoNode;
    uint32_t pc = 0;
    riscv::Op op = riscv::Op::Invalid;
    bool is_store = false;
    uint8_t size = 4; ///< Access width in bytes.

    /**
     * When known: byte addresses of iteration i (0-based) fall in
     * [R0[base] + lo + i*step, R0[base] + hi + i*step], where base ==
     * -1 means an absolute address (R0 term = 0). lo/hi fold in the
     * immediate and the access width (hi includes size - 1).
     */
    bool known = false;
    int base = -1;
    int64_t lo = 0;
    int64_t hi = 0;
    int64_t step = 0;

    /** Congruence of the first-iteration byte address (relative to
     *  base): addr == stride_rem (mod stride_mod); mod 0 = exact,
     *  mod 1 = unconstrained. */
    int64_t stride_mod = 1;
    int64_t stride_rem = 0;

    /** Human-readable stride class for reports. */
    std::string strideClass() const;
};

/** Closed-form description of the loop back branch. */
struct TripBound
{
    bool valid = false;
    riscv::Op op = riscv::Op::Invalid;
    bool ind_is_lhs = true; ///< Induction operand on the rs1 side.
    int ind_base = -1;      ///< Unified live-in register of the induction.
    int64_t first = 0;      ///< Operand offset from R0[ind_base] at iter 1.
    int64_t step = 0;       ///< Exact per-iteration operand delta.
    int bound_base = -1;    ///< Register of the invariant bound, -1 = const.
    int64_t bound_off = 0;  ///< Offset from R0[bound_base] (or the const).
};

/** The cacheable, machine-state-free analysis result for one body. */
struct BodyCertificate
{
    size_t nodes = 0;
    size_t mem_nodes = 0;
    bool converged = false; ///< Widening fixpoint reached (engine invariant).
    int fixpoint_rounds = 0;
    std::vector<FootprintEntry> footprint; ///< One per mem node, node order.
    TripBound trip;
    /** Static per-iteration cycle upper bound used for watchdog
     *  budgets (sum of op latencies + generous NoC/memory slack). */
    uint64_t per_iter_cycle_bound = 0;

    bool allKnown() const;

    /** Canonical JSON rendering (drives the determinism gates). */
    void toJson(JsonWriter &w) const;
};

/**
 * Run the two-pass analysis (exact first-iteration symbolic pass +
 * widening fixpoint over loop-carried registers) over @p ldfg.
 */
BodyCertificate analyze(const dfg::Ldfg &ldfg);

/** Half-open byte region [lo, hi) the offload is allowed to touch. */
struct MemRegion
{
    uint64_t lo = 0;
    uint64_t hi = 0;
    bool empty() const { return hi <= lo; }
};

/** Bounding box of the resident pages of @p memory — the natural
 *  offload region: program, inputs, and outputs all live there. */
MemRegion residentRegion(const mem::MainMemory &memory);

/** Instantiated concrete address range of one footprint entry. */
struct NodeRange
{
    dfg::NodeId node = dfg::NoNode;
    bool known = false;
    bool bounded = false; ///< Upper end finite (trip bound or step 0).
    uint64_t lo = 0;
    uint64_t hi = 0; ///< Inclusive; only meaningful when bounded.
    RegionClass cls = RegionClass::Unknown;
};

/** A certificate bound to concrete registers and a region. */
struct CertificateInstance
{
    bool trips_finite = false;
    uint64_t trips = 0; ///< Proven max iterations (when finite).
    RegionClass footprint = RegionClass::Unknown;
    uint64_t addr_lo = 0; ///< Union of proven ranges (when all bounded).
    uint64_t addr_hi = 0; ///< Inclusive.
    std::vector<NodeRange> ranges;

    void toJson(JsonWriter &w) const;
};

/**
 * Bind @p cert to the loop-entry architectural state and the offload
 * region: resolves the proven trip count via the back-branch closed
 * form (validated by evaluating the branch at the boundary) and
 * classifies every footprint entry.
 */
CertificateInstance instantiate(const BodyCertificate &cert,
                                const riscv::ArchState &state,
                                const MemRegion &region);

/**
 * Watchdog cycle budget for an offload proven to run at most
 * @p iterations iterations: proven trips x the static per-iteration
 * bound x the time-multiplex factor, plus slack. Returns 0 (no
 * budget derivable) when the certificate has no finite bound.
 */
uint64_t watchdogBudget(const BodyCertificate &cert, uint64_t iterations,
                        int time_multiplex);

/**
 * Emit the AI1xx rule family for one analyzed body into @p report:
 * AI101 (error) proven-out-of-region access, AI102 (warn) unprovable
 * footprint, AI103 (note) footprint summary, AI104 (warn) unprovable
 * trip count, AI105 (note) trip/watchdog summary, AI106 (error)
 * fixpoint divergence.
 */
void reportCertificate(const BodyCertificate &cert,
                       const CertificateInstance *inst,
                       verify::Report &report);

} // namespace mesa::absint

#endif // MESA_ABSINT_CERTIFICATE_HH
