#include "absint/certificate.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <sstream>

#include "riscv/alu.hh"
#include "util/json.hh"

namespace mesa::absint
{

namespace
{

constexpr int64_t Machine = int64_t(1) << 32;

/** Abstract register file at a loop-iteration boundary. */
struct Env
{
    std::array<AbsVal, riscv::NumUnifiedRegs> reg;
};

Env
entryEnv()
{
    Env e;
    for (int r = 0; r < riscv::NumUnifiedRegs; ++r)
        e.reg[size_t(r)] = AbsVal::entryReg(r);
    return e;
}

/** Abstract value consumed from operand @p n of @p node. */
AbsVal
operandVal(const dfg::Ldfg &ldfg, const std::vector<AbsVal> &consumed,
           const Env &env, dfg::NodeId id, int n)
{
    const dfg::LdfgNode &node = ldfg.node(id);
    const dfg::NodeId src = n == 0 ? node.src1 : node.src2;
    if (src != dfg::NoNode)
        return consumed[size_t(src)];
    const int li = n == 0 ? node.live_in1 : node.live_in2;
    if (li >= 0)
        return env.reg[size_t(li)];
    return AbsVal::constant(0); // absent operand or hardwired x0
}

/**
 * Abstractly execute one body iteration from entry environment
 * @p env (mutated to the exit environment). Returns the value each
 * node forwards to its consumers: for a guarded node this is the join
 * with the previous destination value, mirroring the PE that forwards
 * the old word when its guard disables it.
 */
std::vector<AbsVal>
evalBody(const dfg::Ldfg &ldfg, Env &env)
{
    std::vector<AbsVal> consumed(ldfg.size());
    for (size_t i = 0; i < ldfg.size(); ++i) {
        const dfg::LdfgNode &node = ldfg.node(dfg::NodeId(i));
        const AbsVal a = operandVal(ldfg, consumed, env, dfg::NodeId(i), 0);
        const AbsVal b = operandVal(ldfg, consumed, env, dfg::NodeId(i), 1);
        AbsVal out = transfer(node.inst.op, node.inst.imm, node.inst.pc, a, b);
        const int dest = node.inst.unifiedDest();
        if (dest >= 0) {
            if (node.isGuarded())
                out = joinVal(out, env.reg[size_t(dest)]);
            env.reg[size_t(dest)] = out;
        }
        consumed[i] = out;
    }
    return consumed;
}

/** Exact per-iteration delta of each register, from the first-pass
 *  exit environment (valid only for self-affine registers). */
struct Deltas
{
    std::array<bool, riscv::NumUnifiedRegs> valid{};
    std::array<int64_t, riscv::NumUnifiedRegs> step{};
};

Deltas
exitDeltas(const Env &exit1)
{
    Deltas d;
    for (int r = 0; r < riscv::NumUnifiedRegs; ++r) {
        const AbsVal &v = exit1.reg[size_t(r)];
        if (!v.is_top && v.base == r && v.off.isConst()) {
            d.valid[size_t(r)] = true;
            d.step[size_t(r)] = v.off.lo;
        }
    }
    return d;
}

uint8_t
accessBytes(riscv::Op op)
{
    using riscv::Op;
    switch (op) {
      case Op::Lb:
      case Op::Lbu:
      case Op::Sb:
        return 1;
      case Op::Lh:
      case Op::Lhu:
      case Op::Sh:
        return 2;
      default:
        return 4;
    }
}

FootprintEntry
footprintOf(const dfg::Ldfg &ldfg, dfg::NodeId id,
            const std::vector<AbsVal> &consumed1, const Env &entry0,
            const Deltas &deltas, const std::vector<AbsVal> &consumedF,
            const Env &envF, bool converged)
{
    const dfg::LdfgNode &node = ldfg.node(id);
    FootprintEntry e;
    e.node = id;
    e.pc = node.inst.pc;
    e.op = node.inst.op;
    e.is_store = node.inst.isStore();
    e.size = accessBytes(node.inst.op);
    const int64_t imm = node.inst.imm;

    // Flavor A — exact affine-in-iteration address: the base operand
    // is (entry value of a self-affine register) + constant at every
    // iteration, so addresses march by the register's step.
    const AbsVal v1 = operandVal(ldfg, consumed1, entry0, id, 0);
    if (!v1.is_top && v1.off.isConst() &&
        (v1.base < 0 || deltas.valid[size_t(v1.base)])) {
        e.known = true;
        e.base = v1.base;
        e.lo = v1.off.lo + imm;
        e.hi = v1.off.lo + imm + e.size - 1;
        e.step = v1.base < 0 ? 0 : deltas.step[size_t(v1.base)];
        const Stride s = v1.stride.add(Stride::constant(imm));
        e.stride_mod = s.mod;
        e.stride_rem = s.rem;
        return e;
    }

    // Flavor B — the widened fixpoint proved a finite offset range
    // covering every iteration (loop-invariant or bounded drift).
    const AbsVal vf = operandVal(ldfg, consumedF, envF, id, 0);
    if (converged && !vf.is_top && vf.off.finite()) {
        e.known = true;
        e.base = vf.base;
        e.lo = vf.off.lo + imm;
        e.hi = vf.off.hi + imm + e.size - 1;
        e.step = 0;
        const Stride s = vf.stride.add(Stride::constant(imm));
        e.stride_mod = s.mod;
        e.stride_rem = s.rem;
        return e;
    }

    e.known = false;
    return e;
}

bool
isCondBranch(riscv::Op op)
{
    using riscv::Op;
    return op == Op::Beq || op == Op::Bne || op == Op::Blt ||
           op == Op::Bge || op == Op::Bltu || op == Op::Bgeu;
}

TripBound
tripOf(const dfg::Ldfg &ldfg, const std::vector<AbsVal> &consumed1,
       const Env &entry0, const Deltas &deltas)
{
    TripBound t;
    const dfg::NodeId br = ldfg.backBranch();
    const dfg::LdfgNode &node = ldfg.node(br);
    if (!isCondBranch(node.inst.op) || node.isGuarded())
        return t;

    const AbsVal va = operandVal(ldfg, consumed1, entry0, br, 0);
    const AbsVal vb = operandVal(ldfg, consumed1, entry0, br, 1);

    // An operand is usable when it is (entry register + exact const)
    // with a known per-iteration step; invariant means step 0 or an
    // absolute constant.
    auto usable = [&](const AbsVal &v, int64_t &step) {
        if (v.is_top || !v.off.isConst())
            return false;
        if (v.base < 0) {
            step = 0;
            return true;
        }
        if (!deltas.valid[size_t(v.base)])
            return false;
        step = deltas.step[size_t(v.base)];
        return true;
    };
    int64_t step_a = 0;
    int64_t step_b = 0;
    if (!usable(va, step_a) || !usable(vb, step_b))
        return t;
    // Exactly one side may drift; the other is the invariant bound.
    if (step_a != 0 && step_b != 0)
        return t;

    const bool ind_lhs = step_a != 0 || step_b == 0;
    const AbsVal &ind = ind_lhs ? va : vb;
    const AbsVal &bound = ind_lhs ? vb : va;
    t.valid = true;
    t.op = node.inst.op;
    t.ind_is_lhs = ind_lhs;
    t.ind_base = ind.base;
    t.first = ind.off.lo;
    t.step = ind_lhs ? step_a : step_b;
    t.bound_base = bound.base;
    t.bound_off = bound.off.lo;
    return t;
}

uint64_t
perIterCycleBound(const dfg::Ldfg &ldfg)
{
    // Generous static bound: every node serialized at its annotated
    // latency, plus slack for NoC hops and worst-case memory.
    uint64_t cycles = 0;
    for (size_t i = 0; i < ldfg.size(); ++i) {
        const dfg::LdfgNode &node = ldfg.node(dfg::NodeId(i));
        cycles += uint64_t(std::ceil(std::max(node.op_latency, 1.0)));
        cycles += node.inst.isMem() ? 512 : 0;
        cycles += 32;
    }
    return cycles;
}

int64_t
wrap32(int64_t v)
{
    int64_t r = v % Machine;
    if (r < 0)
        r += Machine;
    return r;
}

int64_t
toSigned32(int64_t machine_word)
{
    return int64_t(int32_t(uint32_t(uint64_t(machine_word))));
}

bool
takenAt(riscv::Op op, bool ind_is_lhs, int64_t v, int64_t bound)
{
    const int64_t lhs = ind_is_lhs ? v : bound;
    const int64_t rhs = ind_is_lhs ? bound : v;
    using riscv::Op;
    switch (op) {
      case Op::Beq: return lhs == rhs;
      case Op::Bne: return lhs != rhs;
      case Op::Blt:
      case Op::Bltu: return lhs < rhs;
      case Op::Bge:
      case Op::Bgeu: return lhs >= rhs;
      default: return false;
    }
}

/**
 * Proven max trip count from the back-branch closed form, or 0 when
 * no finite bound follows. Values are exact in int64 as long as the
 * induction stays inside its interpretation domain, which the
 * endpoint range checks enforce; anything that could wrap is reported
 * as unbounded.
 */
uint64_t
resolveTrips(const TripBound &t, const riscv::ArchState &state)
{
    if (!t.valid)
        return 0;
    auto regval = [&](int r) -> int64_t {
        return r < riscv::NumIntRegs
                   ? int64_t(state.x[size_t(r)])
                   : int64_t(state.f[size_t(r - riscv::NumIntRegs)]);
    };
    const int64_t v1m = wrap32((t.ind_base >= 0 ? regval(t.ind_base) : 0) +
                               t.first);
    const int64_t bm = wrap32((t.bound_base >= 0 ? regval(t.bound_base) : 0) +
                              t.bound_off);

    using riscv::Op;
    const bool is_signed = t.op == Op::Blt || t.op == Op::Bge;
    const int64_t v1 = is_signed ? toSigned32(v1m) : v1m;
    const int64_t bound = is_signed ? toSigned32(bm) : bm;
    const int64_t dom_lo = is_signed ? INT32_MIN : 0;
    const int64_t dom_hi = is_signed ? INT32_MAX : Machine - 1;
    const int64_t step = t.step;

    auto taken = [&](int64_t k) {
        return takenAt(t.op, t.ind_is_lhs, v1 + (k - 1) * step, bound);
    };
    if (!taken(1))
        return 1;
    if (step == 0)
        return 0; // condition never changes: unbounded

    if (t.op == Op::Beq)
        return 2; // v2 = v1 + step != v1 == bound (mod 2^32, step small)

    if (t.op == Op::Bne) {
        const int64_t d = bound - v1;
        if (d == 0 || (d > 0) != (step > 0) || d % step != 0)
            return 0; // math never meets the bound: unbounded
        return uint64_t(1 + d / step); // endpoints in domain by monotonicity
    }

    // Inequality branches: the continue condition is monotone in k, so
    // the first failing iteration is a binary search away.
    if (step > (int64_t(1) << 26) || step < -(int64_t(1) << 26))
        return 0;
    const int64_t k_max = int64_t(1) << 36;
    if (taken(k_max))
        return 0; // never provably exits (or exits only after a wrap)
    int64_t lo = 1; // taken
    int64_t hi = k_max; // not taken
    while (hi - lo > 1) {
        const int64_t mid = lo + (hi - lo) / 2;
        (taken(mid) ? lo : hi) = mid;
    }
    const int64_t v_exit = v1 + (hi - 1) * step;
    if (v_exit < dom_lo || v_exit > dom_hi)
        return 0; // induction leaves its domain first: machine wraps
    return uint64_t(hi);
}

RegionClass
classifyRange(const NodeRange &r, const MemRegion &region)
{
    if (!r.known || !r.bounded)
        return RegionClass::Unknown;
    if (r.hi >= uint64_t(Machine))
        return RegionClass::Unknown; // address arithmetic could wrap
    if (r.lo >= region.lo && r.hi < region.hi)
        return RegionClass::ProvenIn;
    if (r.hi < region.lo || r.lo >= region.hi)
        return RegionClass::ProvenOut;
    return RegionClass::Unknown;
}

} // namespace

const char *
regionClassName(RegionClass cls)
{
    switch (cls) {
      case RegionClass::ProvenIn: return "proven-in-region";
      case RegionClass::ProvenOut: return "proven-out-of-region";
      case RegionClass::Unknown: return "unknown";
    }
    return "?";
}

std::string
FootprintEntry::strideClass() const
{
    if (!known)
        return "unknown";
    if (step == 0 && lo == hi - (size - 1))
        return "const";
    if (step != 0)
        return "affine+" + std::to_string(step);
    return "range";
}

bool
BodyCertificate::allKnown() const
{
    return std::all_of(footprint.begin(), footprint.end(),
                       [](const FootprintEntry &e) { return e.known; });
}

BodyCertificate
analyze(const dfg::Ldfg &ldfg)
{
    BodyCertificate cert;
    cert.nodes = ldfg.size();
    if (ldfg.size() == 0)
        return cert;

    // Pass 1 — exact symbolic execution of iteration 1: no joins over
    // the back edge, so affine offsets stay exact and per-register
    // deltas fall out of the exit environment.
    const Env entry0 = entryEnv();
    Env exit1 = entry0;
    const std::vector<AbsVal> consumed1 = evalBody(ldfg, exit1);
    const Deltas deltas = exitDeltas(exit1);

    // Pass 2 — Kleene iteration with widening over the loop-carried
    // registers. The widened environment is a post-fixpoint, so its
    // node values cover every iteration.
    constexpr int WidenAfter = 3;
    constexpr int MaxRounds = 2 * riscv::NumUnifiedRegs + 8;
    Env in = entry0;
    for (int round = 0; round < MaxRounds && !cert.converged; ++round) {
        Env exit = in;
        evalBody(ldfg, exit);
        bool changed = false;
        for (const int r : ldfg.writtenRegs()) {
            const AbsVal j =
                joinVal(entry0.reg[size_t(r)], exit.reg[size_t(r)]);
            const AbsVal next = round >= WidenAfter
                                    ? widenVal(in.reg[size_t(r)], j)
                                    : joinVal(in.reg[size_t(r)], j);
            if (!(next == in.reg[size_t(r)])) {
                in.reg[size_t(r)] = next;
                changed = true;
            }
        }
        cert.fixpoint_rounds = round + 1;
        cert.converged = !changed;
    }
    Env env_f = in;
    const std::vector<AbsVal> consumed_f = evalBody(ldfg, env_f);

    for (size_t i = 0; i < ldfg.size(); ++i) {
        if (!ldfg.node(dfg::NodeId(i)).inst.isMem())
            continue;
        cert.footprint.push_back(footprintOf(ldfg, dfg::NodeId(i), consumed1,
                                             entry0, deltas, consumed_f, in,
                                             cert.converged));
    }
    cert.mem_nodes = cert.footprint.size();
    cert.trip = tripOf(ldfg, consumed1, entry0, deltas);
    cert.per_iter_cycle_bound = perIterCycleBound(ldfg);
    return cert;
}

MemRegion
residentRegion(const mem::MainMemory &memory)
{
    const auto [lo, hi] = memory.residentSpan();
    return {lo, hi};
}

CertificateInstance
instantiate(const BodyCertificate &cert, const riscv::ArchState &state,
            const MemRegion &region)
{
    CertificateInstance inst;
    const uint64_t trips = resolveTrips(cert.trip, state);
    inst.trips_finite = trips > 0;
    inst.trips = trips;

    auto regval = [&](int r) -> int64_t {
        return r < riscv::NumIntRegs
                   ? int64_t(state.x[size_t(r)])
                   : int64_t(state.f[size_t(r - riscv::NumIntRegs)]);
    };

    bool any_out = false;
    bool all_in = true;
    bool have_union = false;
    uint64_t u_lo = 0;
    uint64_t u_hi = 0;
    for (const FootprintEntry &e : cert.footprint) {
        NodeRange r;
        r.node = e.node;
        r.known = e.known && cert.converged;
        if (r.known) {
            int64_t lo = (e.base >= 0 ? regval(e.base) : 0) + e.lo;
            int64_t hi = (e.base >= 0 ? regval(e.base) : 0) + e.hi;
            r.bounded = e.step == 0 || inst.trips_finite;
            if (e.step != 0 && inst.trips_finite) {
                const int64_t drift = e.step * int64_t(inst.trips - 1);
                (e.step > 0 ? hi : lo) += drift;
            }
            if (r.bounded && lo >= 0) {
                r.lo = uint64_t(lo);
                r.hi = uint64_t(hi);
            } else {
                r.bounded = false;
            }
        }
        r.cls = classifyRange(r, region);
        if (r.cls == RegionClass::ProvenOut)
            any_out = true;
        if (r.cls != RegionClass::ProvenIn)
            all_in = false;
        if (r.cls == RegionClass::ProvenIn) {
            u_lo = have_union ? std::min(u_lo, r.lo) : r.lo;
            u_hi = have_union ? std::max(u_hi, r.hi) : r.hi;
            have_union = true;
        }
        inst.ranges.push_back(r);
    }
    inst.footprint = any_out ? RegionClass::ProvenOut
                     : all_in ? RegionClass::ProvenIn
                              : RegionClass::Unknown;
    if (inst.footprint == RegionClass::ProvenIn && have_union) {
        inst.addr_lo = u_lo;
        inst.addr_hi = u_hi;
    }
    return inst;
}

uint64_t
watchdogBudget(const BodyCertificate &cert, uint64_t iterations,
               int time_multiplex)
{
    if (iterations == 0 || cert.per_iter_cycle_bound == 0)
        return 0;
    const uint64_t tm = uint64_t(std::max(time_multiplex, 1));
    const uint64_t per = cert.per_iter_cycle_bound;
    // budget = iterations * per * tm * 4 + 4096, saturating to "no
    // budget" instead of overflowing.
    constexpr uint64_t Cap = uint64_t(1) << 62;
    if (per > Cap / tm / 4 || iterations > Cap / (per * tm * 4))
        return 0;
    return iterations * per * tm * 4 + 4096;
}

void
BodyCertificate::toJson(JsonWriter &w) const
{
    w.beginObject();
    w.field("nodes", uint64_t(nodes));
    w.field("mem_nodes", uint64_t(mem_nodes));
    w.field("converged", converged);
    w.field("fixpoint_rounds", fixpoint_rounds);
    w.field("per_iter_cycle_bound", per_iter_cycle_bound);
    w.key("trip").beginObject();
    w.field("valid", trip.valid);
    if (trip.valid) {
        w.field("op", riscv::opName(trip.op));
        w.field("ind_is_lhs", trip.ind_is_lhs);
        w.field("ind_base", trip.ind_base);
        w.field("first", trip.first);
        w.field("step", trip.step);
        w.field("bound_base", trip.bound_base);
        w.field("bound_off", trip.bound_off);
    }
    w.end();
    w.key("footprint").beginArray();
    for (const FootprintEntry &e : footprint) {
        w.beginObject();
        w.field("node", e.node);
        w.field("op", riscv::opName(e.op));
        w.field("store", e.is_store);
        w.field("size", unsigned(e.size));
        w.field("known", e.known);
        if (e.known) {
            w.field("base", e.base);
            w.field("lo", e.lo);
            w.field("hi", e.hi);
            w.field("step", e.step);
            w.field("stride_mod", e.stride_mod);
            w.field("stride_rem", e.stride_rem);
            w.field("stride_class", e.strideClass());
        }
        w.end();
    }
    w.end();
    w.end();
}

void
CertificateInstance::toJson(JsonWriter &w) const
{
    w.beginObject();
    w.field("footprint", regionClassName(footprint));
    w.field("trips_finite", trips_finite);
    if (trips_finite)
        w.field("trips", trips);
    if (footprint == RegionClass::ProvenIn) {
        w.field("addr_lo", addr_lo);
        w.field("addr_hi", addr_hi);
    }
    w.key("ranges").beginArray();
    for (const NodeRange &r : ranges) {
        w.beginObject();
        w.field("node", r.node);
        w.field("class", regionClassName(r.cls));
        if (r.known && r.bounded) {
            w.field("lo", r.lo);
            w.field("hi", r.hi);
        }
        w.end();
    }
    w.end();
    w.end();
}

void
reportCertificate(const BodyCertificate &cert,
                  const CertificateInstance *inst, verify::Report &report)
{
    if (!cert.converged && cert.nodes > 0) {
        report.error("AI106", "fixpoint",
                     "widening fixpoint did not converge after " +
                         std::to_string(cert.fixpoint_rounds) + " rounds");
        return;
    }

    auto where = [](const FootprintEntry &e) {
        return "node " + std::to_string(e.node) + " (" +
               riscv::opName(e.op) + ")";
    };
    for (size_t i = 0; i < cert.footprint.size(); ++i) {
        const FootprintEntry &e = cert.footprint[i];
        if (!e.known) {
            report.warn("AI102", where(e),
                        "address range not provable (footprint unknown)");
            continue;
        }
        if (inst && i < inst->ranges.size() &&
            inst->ranges[i].cls == RegionClass::ProvenOut) {
            const NodeRange &r = inst->ranges[i];
            report.error("AI101", where(e),
                         "access range [" + std::to_string(r.lo) + ", " +
                             std::to_string(r.hi) +
                             "] provably outside the offload region");
        }
    }
    if (inst && inst->footprint == RegionClass::ProvenIn) {
        std::ostringstream msg;
        msg << cert.mem_nodes << " memory node(s) proven within ["
            << inst->addr_lo << ", " << inst->addr_hi << "]";
        report.note("AI103", "footprint", msg.str());
    }

    if (!cert.trip.valid || (inst && !inst->trips_finite)) {
        report.warn("AI104", "trip",
                    "trip count not provable (no finite bound)");
    } else if (inst) {
        report.note("AI105", "trip",
                    "proven max " + std::to_string(inst->trips) +
                        " iteration(s)");
    }
}

} // namespace mesa::absint
