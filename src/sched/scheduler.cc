#include "sched/scheduler.hh"

#include <algorithm>
#include <cmath>

#include "dfg/ldfg.hh"
#include "migrate/migrate.hh"
#include "riscv/isa.hh"
#include "util/debug.hh"
#include "util/logging.hh"
#include "util/trace.hh"
#include "verify/verifier.hh"

namespace mesa::sched
{

using accel::AccelRunResult;
using core::ConfigOptions;

const char *
policyName(Policy policy)
{
    switch (policy) {
      case Policy::RoundRobin:
        return "round-robin";
      case Policy::Priority:
        return "priority";
      case Policy::ShortestRemaining:
        return "shortest-remaining";
    }
    return "?";
}

std::optional<Policy>
policyByName(const std::string &name)
{
    if (name == "round-robin" || name == "rr")
        return Policy::RoundRobin;
    if (name == "priority" || name == "prio")
        return Policy::Priority;
    if (name == "shortest-remaining" || name == "srj" || name == "sjf")
        return Policy::ShortestRemaining;
    return std::nullopt;
}

double
ScheduleResult::fairnessJain() const
{
    double sum = 0.0, sq = 0.0;
    size_t n = 0;
    for (const auto &t : tenants) {
        const double x = double(t.run_cycles);
        sum += x;
        sq += x * x;
        ++n;
    }
    if (n == 0 || sq == 0.0)
        return 1.0;
    return (sum * sum) / (double(n) * sq);
}

void
ScheduleResult::registerInto(StatsRegistry &registry,
                             const std::string &prefix) const
{
    auto set = [&](const std::string &key, double v) {
        registry.scalar(prefix + key, v);
    };
    set("ways", double(ways));
    set("makespan_cycles", double(makespan_cycles));
    set("busy_cycles", double(busy_cycles));
    set("occupancy", occupancy);
    set("switches", double(total_switches));
    set("switch_cycles", double(total_switch_cycles));
    set("iterations", double(total_iterations));
    set("dram_accesses", double(dram_accesses));
    set("throughput_iter_per_kcycle", throughputIterPerKcycle());
    set("fairness_jain", fairnessJain());
    set("tenant_count", double(tenants.size()));
    set("verify.configs_checked", double(verify_checked));
    set("verify.rejects", double(verify_rejects));
    set("degraded_ways", double(degraded_ways));
    set("migrations", double(migrations));
    set("migration_warm", double(migration_warm));
    set("migration_translate_cycles",
        double(migration_translate_cycles));
    set("migration_stream_cycles", double(migration_stream_cycles));
    for (const auto &t : tenants) {
        // Relative to @p prefix: set() prepends it.
        const std::string p =
            "tenant" + std::to_string(t.tenant) + ".";
        set(p + "priority", double(t.priority));
        set(p + "wait_cycles", double(t.wait_cycles));
        set(p + "run_cycles", double(t.run_cycles));
        set(p + "switch_cycles", double(t.switch_cycles));
        set(p + "switches", double(t.switches));
        set(p + "slices", double(t.slices));
        set(p + "iterations", double(t.iterations));
        set(p + "first_run_cycle", double(t.first_run_cycle));
        set(p + "turnaround_cycles", double(t.turnaroundCycles()));
        set(p + "completed", t.completed ? 1.0 : 0.0);
    }
}

MultiTenantScheduler::MultiTenantScheduler(const SchedParams &params,
                                           mem::MainMemory &memory)
    : params_(params), memory_(memory),
      geometry_(planPartitions(params.accel, params.spatial_ways)),
      part_params_(params.accel.subArray(0, geometry_.front().rows))
{
    part_ic_ = std::make_unique<ic::AccelNocInterconnect>(
        part_params_.rows, part_params_.cols,
        part_params_.noc_slice_width);
    mapper_ = std::make_unique<core::InstructionMapper>(
        part_params_, *part_ic_, params_.mapper);
    config_block_ = std::make_unique<core::ConfigBlock>(part_params_);

    partitions_.reserve(geometry_.size());
    for (size_t k = 0; k < geometry_.size(); ++k) {
        Partition p;
        p.geometry = geometry_[k];
        p.accel = std::make_unique<accel::Accelerator>(
            params_.accel.subArray(geometry_[k].origin_row,
                                   geometry_[k].rows),
            memory_, params_.accel_mem);
        p.accel->setTraceTrack("sched.p" + std::to_string(k) +
                               ".accel");
        partitions_.push_back(std::move(p));
    }
}

void
MultiTenantScheduler::quarantinePes(const std::vector<ic::Coord> &pes)
{
    for (auto &p : partitions_) {
        for (const ic::Coord pe : pes) {
            if (pe.r >= p.geometry.origin_row &&
                pe.r < p.geometry.origin_row + p.geometry.rows) {
                p.degraded = true;
                break;
            }
        }
    }
}

int
MultiTenantScheduler::healthyWays() const
{
    int n = 0;
    for (const auto &p : partitions_)
        n += p.degraded ? 0 : 1;
    return n;
}

int
MultiTenantScheduler::submit(
    const std::vector<riscv::Instruction> &body,
    riscv::ArchState &state, bool parallel_hint,
    uint64_t max_iterations, int priority)
{
    if (body.empty())
        return -1;
    if (healthyWays() == 0)
        return -1;

    dfg::BuildError err = dfg::BuildError::None;
    auto ldfg = dfg::Ldfg::build(body, params_.accel.op_latency,
                                 part_params_.capacity(), &err);
    if (!ldfg)
        return -1;
    core::MapResult map = mapper_->map(*ldfg);
    if (double(map.unmapped.size()) / double(ldfg->size()) >
        params_.max_unmapped_frac)
        return -1;

    const uint32_t region_start = body.front().pc;
    const uint32_t region_end = body.back().pc + 4;

    ConfigOptions options;
    options.enable_forwarding = params_.enable_forwarding;
    options.enable_vectorization = params_.enable_vectorization;
    options.enable_prefetch = params_.enable_prefetch;
    options.pipelined = params_.enable_pipelining;
    options.tile_factor =
        (parallel_hint && params_.enable_tiling)
            ? std::max(1, core::ConfigBlock::maxTileFactor(
                              map.sdfg, part_params_))
            : 1;

    Tenant t;
    t.config = config_block_->build(*ldfg, map.sdfg, options,
                                    region_start, region_end);
    t.config.model_latency = map.model_latency;

    if (params_.verify_before_offload) {
        // Legality check against the partition geometry before the
        // context can ever land on a sub-array.
        ++verify_checked_;
        verify::Report report = verify::verifyMapping(
            *ldfg, map.sdfg, map.unmapped, part_params_, *part_ic_);
        report.merge(
            verify::verifyConfig(*ldfg, t.config, part_params_));
        if (!report.clean()) {
            ++verify_rejects_;
            DTRACE("sched", "verify gate refused region 0x"
                                << std::hex << region_start << std::dec
                                << ": " << report.summary());
            return -1;
        }
    }
    t.state = &state;
    t.remaining = max_iterations;
    t.stream_cycles = config_block_->configCycles(t.config);
    t.encode_cycles = body.size();
    t.mapping_cycles = map.mapping_cycles;
    t.parallel_hint = parallel_hint;
    t.body = body;

    uint64_t now = partitions_.front().clock;
    for (const auto &p : partitions_)
        now = std::min(now, p.clock);

    const int id = int(tenants_.size());
    t.stats.tenant = id;
    t.stats.priority = priority;
    t.stats.region_start = region_start;
    t.stats.submit_cycle = now;
    t.runnable_at = now;
    t.busy_until = now;
    tenants_.push_back(std::move(t));
    return id;
}

bool
MultiTenantScheduler::anyPending() const
{
    for (const auto &t : tenants_)
        if (!t.done)
            return true;
    return false;
}

int
MultiTenantScheduler::pickNext(uint64_t now)
{
    const size_t n = tenants_.size();
    auto runnable = [&](size_t i) {
        return !tenants_[i].done && tenants_[i].busy_until <= now;
    };

    switch (params_.policy) {
      case Policy::RoundRobin:
        for (size_t k = 0; k < n; ++k) {
            const size_t i = (rr_next_ + k) % n;
            if (runnable(i)) {
                rr_next_ = (i + 1) % n;
                return int(i);
            }
        }
        return -1;

      case Policy::Priority: {
        int best = -1;
        for (size_t i = 0; i < n; ++i) {
            if (!runnable(i))
                continue;
            if (best < 0 || tenants_[i].stats.priority >
                                tenants_[size_t(best)].stats.priority)
                best = int(i);
        }
        return best;
      }

      case Policy::ShortestRemaining: {
        int best = -1;
        for (size_t i = 0; i < n; ++i) {
            if (!runnable(i))
                continue;
            if (best < 0 || tenants_[i].remaining <
                                tenants_[size_t(best)].remaining)
                best = int(i);
        }
        return best;
      }
    }
    return -1;
}

bool
MultiTenantScheduler::soloRunnable(int t, uint64_t now) const
{
    for (size_t j = 0; j < tenants_.size(); ++j) {
        if (int(j) == t || tenants_[j].done)
            continue;
        if (tenants_[j].busy_until <= now)
            return false;
    }
    return true;
}

bool
MultiTenantScheduler::tryElasticSlice(int t, size_t pk, uint64_t now,
                                      uint64_t batch_start,
                                      uint64_t trace_t0,
                                      ScheduleResult &result,
                                      uint64_t &batch_end)
{
    Tenant &T = tenants_[size_t(t)];
    if (T.remaining < params_.elastic_min_remaining)
        return false;
    if (!soloRunnable(t, now))
        return false;

    // Merged band: the maximal contiguous run of healthy ways, all
    // free at @p now, containing the arbitrating way.
    auto free_now = [&](size_t k) {
        return !partitions_[k].degraded && partitions_[k].clock <= now;
    };
    size_t lo = pk, hi = pk;
    while (lo > 0 && free_now(lo - 1))
        --lo;
    while (hi + 1 < partitions_.size() && free_now(hi + 1))
        ++hi;
    const int m = int(hi - lo + 1);
    if (m < 2)
        return false;

    const int origin = geometry_[lo].origin_row;
    int rows = 0;
    for (size_t k = lo; k <= hi; ++k)
        rows += geometry_[k].rows;

    MergedBand &mb = merged_[{int(lo), m}];
    if (!mb.accel) {
        mb.accel = std::make_unique<accel::Accelerator>(
            params_.accel.subArray(origin, rows), memory_,
            params_.accel_mem);
        mb.accel->setTraceTrack("sched.m" + std::to_string(lo) + "x" +
                                std::to_string(m) + ".accel");
    }

    // Per-geometry config: re-translate the first time this tenant
    // lands on a band this tall (tiling can now spread across the
    // merged rows), reuse it warm afterwards.
    uint64_t switch_cost = 0;
    bool warm = true;
    auto it = T.geo_configs.find(rows);
    if (it == T.geo_configs.end()) {
        auto plan = migrate::translateBody(
            T.body, mb.accel->params(), params_.mapper, {},
            T.parallel_hint && params_.enable_tiling,
            params_.enable_pipelining);
        if (!plan)
            return false;
        warm = false;
        it = T.geo_configs.emplace(rows, plan->config).first;
        T.geo_stream_cycles[rows] = plan->cost.config_cycles;
        const uint64_t translate =
            plan->cost.encode_cycles + plan->cost.mapping_cycles;
        switch_cost += translate;
        migration_translate_cycles_ += translate;
    }

    T.stats.wait_cycles += now - std::min(now, T.runnable_at);
    if (!T.started) {
        T.started = true;
        T.stats.first_run_cycle = now;
    }

    // The migration itself: register-file hand-off at the round
    // boundary plus the bitstream stream into the merged plane.
    const bool switched = mb.resident != t;
    if (switched) {
        const uint64_t stream = params_.shadow_config
                                    ? 1
                                    : T.geo_stream_cycles[rows];
        switch_cost += stream + riscv::NumUnifiedRegs;
        mb.accel->configure(it->second);
        mb.resident = t;
        ++migrations_;
        if (warm)
            ++migration_warm_;
        migration_stream_cycles_ += stream;
        ++T.stats.switches;
        T.stats.switch_cycles += switch_cost;
        ++result.total_switches;
        result.total_switch_cycles += switch_cost;
    }
    // The merge clobbers every constituent plane, and overlapping
    // merged bands share rows with this one.
    for (auto &[key, band] : merged_) {
        if (&band != &mb && key.first <= int(hi) &&
            key.first + key.second > int(lo))
            band.resident = -1;
    }

    bool unchallenged = true;
    for (size_t j = 0; j < tenants_.size(); ++j)
        if (int(j) != t && !tenants_[j].done)
            unchallenged = false;
    const uint64_t slice =
        unchallenged || params_.epoch_iterations == 0
            ? T.remaining
            : std::min(T.remaining, params_.epoch_iterations);

    const uint64_t run_start = now + switch_cost;
    Tracer &tracer = Tracer::global();
    if (Tracer::active())
        tracer.setBase(trace_t0 + (run_start - batch_start));
    AccelRunResult res = mb.accel->run(*T.state, slice);

    T.stats.accel.accumulate(res);
    T.stats.run_cycles += res.cycles;
    T.stats.iterations += res.iterations;
    ++T.stats.slices;
    T.remaining -= std::min(T.remaining, res.iterations);

    const uint64_t end = run_start + res.cycles;
    for (size_t k = lo; k <= hi; ++k) {
        partitions_[k].clock = end;
        partitions_[k].busy += switch_cost + res.cycles;
        partitions_[k].resident = -1;
    }
    result.busy_cycles += uint64_t(m) * (switch_cost + res.cycles);
    result.total_iterations += res.iterations;
    T.busy_until = end;
    T.runnable_at = end;
    batch_end = std::max(batch_end, end);

    if (res.completed || T.remaining == 0 || res.iterations == 0) {
        T.done = true;
        T.stats.completed = res.completed;
        T.stats.finish_cycle = end;
    }
    result.timeline.push_back({int(lo), t, now,
                               switch_cost + res.cycles,
                               res.iterations, switched});

    if (Tracer::active()) {
        const std::string ptrack = "sched.m" + std::to_string(lo) +
                                   "x" + std::to_string(m);
        const uint64_t tstart = trace_t0 + (now - batch_start);
        if (switched)
            tracer.span(ptrack, "migrate-in", tstart, switch_cost,
                        {{"tenant", t}, {"warm", warm ? 1 : 0}});
        tracer.span(ptrack, "tenant" + std::to_string(t),
                    tstart + switch_cost, res.cycles,
                    {{"iterations", res.iterations}, {"ways", m}});
        tracer.span("sched.tenant" + std::to_string(t), "run",
                    tstart + switch_cost, res.cycles,
                    {{"merged_ways", m},
                     {"iterations", res.iterations}});
    }
    return true;
}

ScheduleResult
MultiTenantScheduler::runAll()
{
    migrations_ = 0;
    migration_warm_ = 0;
    migration_translate_cycles_ = 0;
    migration_stream_cycles_ = 0;

    ScheduleResult result;
    result.ways = ways();
    result.verify_checked = verify_checked_;
    result.verify_rejects = verify_rejects_;
    result.degraded_ways = uint64_t(ways() - healthyWays());
    if (!anyPending()) {
        for (const auto &t : tenants_)
            result.tenants.push_back(t.stats);
        return result;
    }

    Tracer &tracer = Tracer::global();
    const uint64_t trace_entry_base =
        Tracer::active() ? tracer.base() : 0;
    const uint64_t trace_t0 = Tracer::active() ? tracer.now() : 0;

    uint64_t batch_start = partitions_.front().clock;
    for (const auto &p : partitions_)
        batch_start = std::min(batch_start, p.clock);
    uint64_t batch_end = batch_start;
    const auto dram_total = [&] {
        uint64_t total = 0;
        for (const auto &p : partitions_)
            total += p.accel->hierarchy().dramAccesses();
        for (const auto &[key, band] : merged_)
            if (band.accel)
                total += band.accel->hierarchy().dramAccesses();
        return total;
    };
    const uint64_t dram_before = dram_total();

    while (anyPending()) {
        // The healthy partition that frees up first arbitrates next.
        size_t pk = partitions_.size();
        for (size_t k = 0; k < partitions_.size(); ++k) {
            if (partitions_[k].degraded)
                continue;
            if (pk == partitions_.size() ||
                partitions_[k].clock < partitions_[pk].clock)
                pk = k;
        }
        if (pk == partitions_.size()) {
            // Every way is degraded: pending tenants stay incomplete
            // and the callers fall back to CPU execution.
            break;
        }
        Partition *p = &partitions_[pk];

        const int t = pickNext(p->clock);
        if (t < 0) {
            // Every pending tenant is mid-slice on another way:
            // idle this partition to the earliest release.
            uint64_t next = ~uint64_t(0);
            for (const auto &tn : tenants_)
                if (!tn.done)
                    next = std::min(next, tn.busy_until);
            p->clock = std::max(p->clock, next);
            continue;
        }
        Tenant &T = tenants_[size_t(t)];

        // Elastic repartitioning: a solo tenant with enough work left
        // is live-migrated onto the merged band of idle healthy ways.
        if (params_.elastic &&
            tryElasticSlice(t, pk, p->clock, batch_start, trace_t0,
                            result, batch_end))
            continue;

        // Residency affinity: if the picked tenant's config is still
        // installed on another way that is free at the same instant,
        // run there and skip the reconfiguration stream.
        if (partitions_[pk].resident != t) {
            for (size_t k = 0; k < partitions_.size(); ++k) {
                if (!partitions_[k].degraded &&
                    partitions_[k].resident == t &&
                    partitions_[k].clock <= p->clock) {
                    pk = k;
                    p = &partitions_[pk];
                    break;
                }
            }
        }

        const uint64_t start = p->clock;
        T.stats.wait_cycles += start - std::min(start, T.runnable_at);
        if (!T.started) {
            T.started = true;
            T.stats.first_run_cycle = start;
        }

        // Context switch: stream the tenant's saved configuration
        // into this partition's plane (or swap the shadow plane).
        uint64_t switch_cost = 0;
        const bool switched = p->resident != t;
        if (switched) {
            switch_cost = params_.shadow_config ? 1 : T.stream_cycles;
            p->accel->configure(T.config);
            p->resident = t;
            ++T.stats.switches;
            T.stats.switch_cycles += switch_cost;
            ++result.total_switches;
            result.total_switch_cycles += switch_cost;
        }
        const uint64_t run_start = start + switch_cost;

        // An unchallenged pick can never be preempted at an epoch
        // boundary (priority is static, shortest-remaining only gets
        // shorter, round-robin with one tenant has nobody to rotate
        // to), so it runs to completion instead of paying the
        // pipeline refill at every slice.
        bool unchallenged = true;
        for (size_t j = 0; j < tenants_.size(); ++j) {
            if (int(j) == t || tenants_[j].done)
                continue;
            const Tenant &J = tenants_[j];
            switch (params_.policy) {
              case Policy::RoundRobin:
                unchallenged = false;
                break;
              case Policy::Priority:
                if (J.stats.priority > T.stats.priority ||
                    (J.stats.priority == T.stats.priority &&
                     int(j) < t))
                    unchallenged = false;
                break;
              case Policy::ShortestRemaining:
                if (J.remaining < T.remaining ||
                    (J.remaining == T.remaining && int(j) < t))
                    unchallenged = false;
                break;
            }
            if (!unchallenged)
                break;
        }

        const uint64_t slice =
            unchallenged || params_.epoch_iterations == 0
                ? T.remaining
                : std::min(T.remaining, params_.epoch_iterations);

        // Anchor the accelerator's local timeline at the slice start.
        if (Tracer::active())
            tracer.setBase(trace_t0 + (run_start - batch_start));
        AccelRunResult res = p->accel->run(*T.state, slice);

        T.stats.accel.accumulate(res);
        T.stats.run_cycles += res.cycles;
        T.stats.iterations += res.iterations;
        ++T.stats.slices;
        T.remaining -= std::min(T.remaining, res.iterations);

        p->clock = run_start + res.cycles;
        p->busy += switch_cost + res.cycles;
        result.busy_cycles += switch_cost + res.cycles;
        result.total_iterations += res.iterations;
        T.busy_until = p->clock;
        T.runnable_at = p->clock;
        batch_end = std::max(batch_end, p->clock);

        if (res.completed || T.remaining == 0 ||
            res.iterations == 0) {
            T.done = true;
            T.stats.completed = res.completed;
            T.stats.finish_cycle = p->clock;
        }

        result.timeline.push_back({int(pk), t, start,
                                   switch_cost + res.cycles,
                                   res.iterations, switched});

        // This way's plane now holds the tenant's band config; any
        // merged band sharing its rows lost residency.
        for (auto &[key, band] : merged_)
            if (key.first <= int(pk) && key.first + key.second > int(pk))
                band.resident = -1;

        if (Tracer::active()) {
            const std::string ptrack =
                "sched.p" + std::to_string(pk);
            const uint64_t tstart = trace_t0 + (start - batch_start);
            if (switched)
                tracer.span(ptrack, "config-switch", tstart,
                            switch_cost,
                            {{"tenant", t},
                             {"stream_cycles", switch_cost}});
            tracer.span(ptrack, "tenant" + std::to_string(t),
                        tstart + switch_cost, res.cycles,
                        {{"iterations", res.iterations},
                         {"remaining", T.remaining}});
            tracer.span("sched.tenant" + std::to_string(t), "run",
                        tstart + switch_cost, res.cycles,
                        {{"partition", int(pk)},
                         {"iterations", res.iterations}});
        }
    }

    result.makespan_cycles = batch_end - batch_start;
    result.migrations = migrations_;
    result.migration_warm = migration_warm_;
    result.migration_translate_cycles = migration_translate_cycles_;
    result.migration_stream_cycles = migration_stream_cycles_;
    // Shared DRAM bandwidth floor: every partition's fills contend on
    // the same channels the full-array device would use.
    result.dram_accesses = dram_total() - dram_before;
    if (!params_.accel.ideal_memory && result.dram_accesses > 0) {
        const uint64_t floor = uint64_t(
            std::ceil(double(result.dram_accesses) /
                      params_.accel.dram_accesses_per_cycle));
        result.makespan_cycles =
            std::max(result.makespan_cycles, floor);
    }
    result.occupancy =
        result.makespan_cycles
            ? double(result.busy_cycles) /
                  (double(ways()) * double(result.makespan_cycles))
            : 0.0;
    for (const auto &t : tenants_)
        result.tenants.push_back(t.stats);

    if (Tracer::active())
        tracer.setBase(trace_entry_base + result.makespan_cycles);
    if (stats_)
        result.registerInto(*stats_);
    return result;
}

std::optional<core::OffloadStats>
MultiTenantScheduler::serve(const core::OffloadRequest &request)
{
    if (!request.state || request.body.empty())
        return std::nullopt;
    const int id =
        submit(request.body, *request.state, request.parallel_hint,
               request.max_iterations, request.priority);
    if (id < 0)
        return std::nullopt;
    runAll();

    const Tenant &T = tenants_[size_t(id)];
    if (!T.done) {
        // The batch drained without serving this tenant (every way
        // degraded mid-batch): report failure so the controller's CPU
        // fallback takes over.
        return std::nullopt;
    }
    core::OffloadStats os;
    os.region_start = request.body.front().pc;
    os.region_end = request.body.back().pc + 4;
    os.encode_cycles = T.encode_cycles;
    os.mapping_cycles = T.mapping_cycles;
    os.config_cycles = T.stream_cycles;
    os.tile_factor = T.config.tileCount();
    os.pipelined = T.config.pipelined;
    os.model_latency = T.config.model_latency;
    os.sched_wait_cycles = T.stats.wait_cycles;
    os.sched_switches = T.stats.switches;
    os.accel_cycles = T.stats.run_cycles;
    os.accel_iterations = T.stats.iterations;
    os.accel = T.stats.accel;
    return os;
}

} // namespace mesa::sched
