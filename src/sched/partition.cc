#include "sched/partition.hh"

#include <algorithm>

namespace mesa::sched
{

std::vector<PartitionGeometry>
planPartitions(const accel::AccelParams &accel, int ways)
{
    const int w = std::clamp(ways, 1, accel.rows);
    const int band = accel.rows / w;
    std::vector<PartitionGeometry> parts;
    parts.reserve(size_t(w));
    for (int k = 0; k < w; ++k)
        parts.push_back({k * band, band, accel.cols});
    return parts;
}

int
maxWays(const accel::AccelParams &accel, size_t min_capacity)
{
    const size_t rows_needed = std::max<size_t>(
        1, (min_capacity + size_t(accel.cols) - 1) /
               size_t(accel.cols));
    return std::max(1, accel.rows / int(rows_needed));
}

} // namespace mesa::sched
