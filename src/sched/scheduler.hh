/**
 * @file
 * Multi-tenant offload scheduler: an accelerator arbiter that accepts
 * offload requests from N CPU threads and serves them by spatial
 * partitioning (the PE grid splits into uniform sub-arrays so small
 * regions from different tenants run concurrently, see partition.hh)
 * and time-multiplexing (a per-tenant context table holds each saved
 * AcceleratorConfig plus iteration progress; partitions run
 * preemptive epoch slices and a context switch is costed through the
 * same config-stream latency model the controller uses).
 *
 * The simulator is clockless, so the scheduler keeps one cycle cursor
 * per partition and advances whichever partition frees up first —
 * an event-driven schedule whose decisions (round-robin, priority,
 * shortest-remaining-iterations) depend only on the submission order,
 * making the whole schedule deterministic.
 */

#ifndef MESA_SCHED_SCHEDULER_HH
#define MESA_SCHED_SCHEDULER_HH

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "accel/accelerator.hh"
#include "interconnect/interconnect.hh"
#include "mesa/config_builder.hh"
#include "mesa/controller.hh"
#include "mesa/mapper.hh"
#include "sched/partition.hh"
#include "util/stats_registry.hh"

namespace mesa::sched
{

/** Preemption policy applied at every free partition. */
enum class Policy
{
    RoundRobin,        ///< Cycle through runnable tenants in id order.
    Priority,          ///< Highest priority first (ties: lowest id).
    ShortestRemaining  ///< Fewest remaining iterations first.
};

const char *policyName(Policy policy);
std::optional<Policy> policyByName(const std::string &name);

/** Scheduler configuration. */
struct SchedParams
{
    accel::AccelParams accel = accel::AccelParams::m128();
    mem::HierarchyParams accel_mem;
    core::MapperParams mapper;

    /** Spatial ways: number of uniform sub-array partitions. */
    int spatial_ways = 1;

    Policy policy = Policy::RoundRobin;

    /** Preemption slice: iterations a tenant runs before the
     *  partition re-arbitrates. */
    uint64_t epoch_iterations = 256;

    /** Double-buffered config plane: a context switch costs a
     *  single-cycle swap instead of streaming the bitstream. */
    bool shadow_config = false;

    // Optimization switches applied when lowering tenant configs.
    bool enable_tiling = true;
    bool enable_pipelining = true;
    bool enable_forwarding = true;
    bool enable_vectorization = true;
    bool enable_prefetch = true;

    /**
     * Elastic repartitioning (the virtualized-fabric extension): when
     * the arbitrating way's tenant is the only runnable one and
     * adjacent healthy ways sit idle, live-migrate it onto the merged
     * row band (checkpoint at the round boundary, re-translate via
     * src/migrate for the larger sub-array, resume) instead of
     * leaving the idle bands dark. The band shrinks back implicitly:
     * as soon as another tenant is runnable the merge criterion
     * fails and slices return to single-way granularity.
     */
    bool elastic = false;

    /** Iterations a tenant must still owe before a migration is
     *  worth its translation + streaming cost. */
    uint64_t elastic_min_remaining = 256;

    /** Mapping failures tolerated before a request is refused. */
    double max_unmapped_frac = 0.25;

    /**
     * Statically verify every tenant's sub-array mapping and saved
     * configuration at submit time (passes 2+3 of src/verify, against
     * the partition geometry). A region with error-severity findings
     * is refused (-1) before it ever lands on a way — the Mestra-style
     * legality check for virtualized sub-array contexts.
     */
    bool verify_before_offload = false;

    double clock_ghz = 2.0;
};

/** Per-tenant schedule outcome. */
struct TenantStats
{
    int tenant = 0;
    int priority = 0;
    uint32_t region_start = 0;

    uint64_t submit_cycle = 0;
    uint64_t first_run_cycle = 0;
    uint64_t finish_cycle = 0;    ///< Turnaround end (device cycles).
    uint64_t wait_cycles = 0;     ///< Runnable but not running.
    uint64_t run_cycles = 0;      ///< Executing on a partition.
    uint64_t switch_cycles = 0;   ///< Config streams charged to it.
    uint64_t switches = 0;        ///< Times (re)configured onto a way.
    uint64_t slices = 0;          ///< Epoch slices received.
    uint64_t iterations = 0;
    bool completed = false;       ///< Loop exited via its condition.

    accel::AccelRunResult accel;  ///< Aggregated device counters.

    uint64_t
    turnaroundCycles() const
    {
        return finish_cycle > submit_cycle
                   ? finish_cycle - submit_cycle
                   : 0;
    }
};

/** One scheduled slice (the timeline a determinism check compares). */
struct ScheduleSlice
{
    int partition = 0;
    int tenant = 0;
    uint64_t start = 0;   ///< Device cycle the slice begins.
    uint64_t cycles = 0;  ///< Switch cost + execution.
    uint64_t iterations = 0;
    bool switched = false;

    bool
    operator==(const ScheduleSlice &o) const
    {
        return partition == o.partition && tenant == o.tenant &&
               start == o.start && cycles == o.cycles &&
               iterations == o.iterations && switched == o.switched;
    }
};

/** Aggregate outcome of draining the pending tenants. */
struct ScheduleResult
{
    int ways = 1;
    uint64_t makespan_cycles = 0; ///< Batch start to last completion.
    uint64_t busy_cycles = 0;     ///< Sum of run+switch over ways.
    double occupancy = 0.0;       ///< busy / (ways * makespan).
    uint64_t total_switches = 0;
    uint64_t total_switch_cycles = 0;
    uint64_t total_iterations = 0;
    uint64_t dram_accesses = 0;

    /** Submit-time verify gate outcomes (verify_before_offload). */
    uint64_t verify_checked = 0;
    uint64_t verify_rejects = 0;

    /** Ways retired from arbitration (quarantined PEs in their row
     *  band); tenants are steered onto the healthy ways. */
    uint64_t degraded_ways = 0;

    // ----- elastic repartitioning (SchedParams::elastic) -----
    /** Live migrations onto a merged row band. */
    uint64_t migrations = 0;
    /** Migrations served by a cached per-geometry config (only the
     *  bitstream write was paid). */
    uint64_t migration_warm = 0;
    /** Re-translation cost (encode + imap) of cold migrations. */
    uint64_t migration_translate_cycles = 0;
    /** Bitstream-streaming cost of every migration. */
    uint64_t migration_stream_cycles = 0;

    std::vector<TenantStats> tenants;
    std::vector<ScheduleSlice> timeline;

    /** Aggregate throughput: iterations per kilocycle of makespan. */
    double
    throughputIterPerKcycle() const
    {
        return makespan_cycles
                   ? 1000.0 * double(total_iterations) /
                         double(makespan_cycles)
                   : 0.0;
    }

    /** Jain fairness index over per-tenant service (run cycles). */
    double fairnessJain() const;

    /** Register every schedule statistic under @p prefix (scalars,
     *  so repeated batches overwrite in place). */
    void registerInto(StatsRegistry &registry,
                      const std::string &prefix = "sched.") const;
};

/**
 * The arbiter. Tenants submit prepared loop regions; runAll() drains
 * them across the partitions under the configured policy. Also
 * implements core::OffloadArbiter so a MesaController can route its
 * qualified regions here instead of running them inline.
 */
class MultiTenantScheduler final : public core::OffloadArbiter
{
  public:
    MultiTenantScheduler(const SchedParams &params,
                         mem::MainMemory &memory);

    /**
     * Encode, map (against the partition geometry), and enqueue a
     * tenant's loop region. @p state must stay alive until runAll():
     * live-ins are latched from it at every slice and live-outs are
     * written back, which is exactly what lets a preempted context
     * resume.
     *
     * @return tenant id, or -1 if the body cannot be encoded/mapped
     *         within a partition
     */
    int submit(const std::vector<riscv::Instruction> &body,
               riscv::ArchState &state, bool parallel_hint = false,
               uint64_t max_iterations = ~uint64_t(0),
               int priority = 0);

    /** Drain every pending tenant to completion. */
    ScheduleResult runAll();

    // core::OffloadArbiter: submit + drain + report one tenant.
    std::optional<core::OffloadStats>
    serve(const core::OffloadRequest &request) override;

    /** Registry the schedule results auto-register into ("sched.*"). */
    void attachStats(StatsRegistry *registry) { stats_ = registry; }

    /**
     * Retire every partition whose row band contains one of these
     * physical PEs (e.g., the controller's faulty-PE map after a self
     * test): degraded ways take no further slices, and tenants are
     * steered onto the remaining healthy ways. With every way
     * degraded, submit() refuses new work and runAll() leaves pending
     * tenants incomplete (the callers' CPU fallback takes over).
     */
    void quarantinePes(const std::vector<ic::Coord> &pes);

    /** Ways still accepting work. */
    int healthyWays() const;

    const SchedParams &params() const { return params_; }
    int ways() const { return int(partitions_.size()); }
    size_t partitionCapacity() const { return part_params_.capacity(); }
    const std::vector<PartitionGeometry> &partitions() const
    {
        return geometry_;
    }
    size_t tenantCount() const { return tenants_.size(); }

  private:
    struct Partition
    {
        PartitionGeometry geometry;
        std::unique_ptr<accel::Accelerator> accel;
        uint64_t clock = 0;   ///< Device cycle this way is free at.
        uint64_t busy = 0;    ///< Run + switch cycles accumulated.
        int resident = -1;    ///< Tenant whose config is installed.
        bool degraded = false; ///< Quarantined PEs in this row band.
    };

    /** Context-table entry: everything needed to preempt/resume. */
    struct Tenant
    {
        accel::AcceleratorConfig config; ///< Saved configuration.
        riscv::ArchState *state = nullptr; ///< Architectural context.
        uint64_t remaining = ~uint64_t(0); ///< Iteration budget left.
        uint64_t stream_cycles = 0; ///< Context-switch stream cost.
        uint64_t encode_cycles = 0;
        uint64_t mapping_cycles = 0;
        bool parallel_hint = false;
        bool done = false;
        bool started = false;
        uint64_t busy_until = 0;   ///< Running on some way until then.
        uint64_t runnable_at = 0;  ///< When it last became runnable.
        TenantStats stats;

        /** Loop body, kept so elastic migration can re-translate the
         *  region for a merged row band (SchedParams::elastic). */
        std::vector<riscv::Instruction> body;
        /** Per-geometry configs from past migrations, keyed by the
         *  band's physical row count (a warm migration pays only the
         *  stream cost recorded alongside). */
        std::map<int, accel::AcceleratorConfig> geo_configs;
        std::map<int, uint64_t> geo_stream_cycles;
    };

    /** A merged row band the elastic policy migrates solo tenants
     *  onto: the contiguous ways [first_way, first_way + ways). */
    struct MergedBand
    {
        std::unique_ptr<accel::Accelerator> accel;
        int resident = -1; ///< Tenant whose config is installed.
    };

    /** Policy pick among runnable tenants at partition time @p now;
     *  -1 when every pending tenant is busy on another way. */
    int pickNext(uint64_t now);

    bool anyPending() const;

    /** True when tenant @p t is the only one runnable at @p now
     *  (everyone else is done or mid-slice on another way). */
    bool soloRunnable(int t, uint64_t now) const;

    /**
     * Elastic fast path: try to run tenant @p t's next slice on the
     * merged band of contiguous healthy ways that are all free at
     * @p now and contain way @p pk. Returns true when the slice ran
     * there (all constituent clocks advanced); false falls back to
     * the single-way path.
     */
    bool tryElasticSlice(int t, size_t pk, uint64_t now,
                         uint64_t batch_start, uint64_t trace_t0,
                         ScheduleResult &result, uint64_t &batch_end);

    SchedParams params_;
    mem::MainMemory &memory_;

    // Uniform partition geometry: one mapper/config-block serves all
    // ways (declaration order matters — both hold references).
    std::vector<PartitionGeometry> geometry_;
    accel::AccelParams part_params_;
    std::unique_ptr<ic::Interconnect> part_ic_;
    std::unique_ptr<core::InstructionMapper> mapper_;
    std::unique_ptr<core::ConfigBlock> config_block_;

    std::vector<Partition> partitions_;
    std::vector<Tenant> tenants_; ///< The context table.
    size_t rr_next_ = 0;

    /** Merged-band devices, keyed by (first_way, ways). Persist
     *  across batches so their DRAM counters keep accumulating. */
    std::map<std::pair<int, int>, MergedBand> merged_;

    // Elastic migration counters for the current batch.
    uint64_t migrations_ = 0;
    uint64_t migration_warm_ = 0;
    uint64_t migration_translate_cycles_ = 0;
    uint64_t migration_stream_cycles_ = 0;

    uint64_t verify_checked_ = 0;
    uint64_t verify_rejects_ = 0;

    StatsRegistry *stats_ = nullptr;
};

} // namespace mesa::sched

#endif // MESA_SCHED_SCHEDULER_HH
