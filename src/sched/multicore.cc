#include "sched/multicore.hh"

#include <algorithm>
#include <memory>

#include "cpu/system.hh"
#include "riscv/emulator.hh"
#include "util/logging.hh"

namespace mesa::sched
{

double
SharedRunResult::imbalance() const
{
    if (core_cycles.empty())
        return 1.0;
    uint64_t sum = 0, worst = 0;
    for (uint64_t c : core_cycles) {
        sum += c;
        worst = std::max(worst, c);
    }
    const double mean = double(sum) / double(core_cycles.size());
    return mean > 0.0 ? double(worst) / mean : 1.0;
}

SharedRunResult
runShared(const SharedRunParams &params, mem::MainMemory &memory,
          const workloads::Kernel &kernel, int tenants)
{
    SharedRunResult out;

    kernel.init_data(memory);
    cpu::loadProgram(memory, kernel.program);

    MultiTenantScheduler scheduler(params.sched, memory);
    const auto body = kernel.loopBody();
    const auto chunks =
        params.weights.empty()
            ? kernel.chunks(std::max(1, tenants))
            : kernel.chunksWeighted(params.weights);

    // Functional contexts must outlive runAll(): the scheduler holds
    // ArchState pointers in its context table.
    std::vector<std::unique_ptr<riscv::Emulator>> emus;
    std::vector<int> ids;
    for (size_t t = 0; t < chunks.size(); ++t) {
        auto emu = std::make_unique<riscv::Emulator>(memory);
        emu->reset(kernel.program.base_pc);
        chunks[t](emu->state());

        // Execute any pre-loop setup functionally.
        uint64_t guard = 0;
        while (!emu->halted() &&
               emu->state().pc != kernel.loop_start &&
               guard++ < params.max_preamble_steps) {
            emu->step();
        }
        if (emu->halted() || emu->state().pc != kernel.loop_start) {
            logWarn("sched", "runShared: thread ", t,
                 " never reached the loop entry; skipping");
            continue;
        }

        const int prio = t < params.priorities.size()
                             ? params.priorities[t]
                             : 0;
        const int id = scheduler.submit(body, emu->state(),
                                        kernel.parallel,
                                        ~uint64_t(0), prio);
        if (id < 0) {
            logWarn("sched", "runShared: thread ", t, " refused (", body.size(),
                 " instructions vs partition capacity ",
                 scheduler.partitionCapacity(),
                 " — fewer ways fit larger regions)");
            continue;
        }
        ids.push_back(id);
        emus.push_back(std::move(emu));
    }

    out.sched = scheduler.runAll();
    out.makespan_cycles = out.sched.makespan_cycles;
    out.total_iterations = out.sched.total_iterations;

    // Resume every thread from its written-back state (loop exit pc
    // when the device completed the loop) and let it run to halt.
    bool all = !ids.empty();
    for (size_t t = 0; t < ids.size(); ++t) {
        const TenantStats &stats =
            out.sched.tenants[size_t(ids[t])];
        out.core_cycles.push_back(stats.turnaroundCycles());
        uint64_t guard = 0;
        while (!emus[t]->halted() &&
               guard++ < params.max_resume_steps) {
            emus[t]->step();
        }
        all = all && stats.completed && emus[t]->halted();
    }
    out.all_completed = all;
    return out;
}

} // namespace mesa::sched
