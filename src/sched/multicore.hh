/**
 * @file
 * Shared-accelerator multicore harness: N CPU threads each take a
 * contiguous chunk of one kernel's iteration space (the paper's
 * multi-threaded offload model — threads of one process share the
 * device), and every thread's hot loop routes through a single
 * MultiTenantScheduler instead of a private accelerator. The
 * functional side stays exact: each thread's emulator executes its
 * pre-loop preamble, hands its architectural state to the scheduler
 * (live-ins latch / live-outs write back per slice), and resumes at
 * the loop exit pc afterwards.
 */

#ifndef MESA_SCHED_MULTICORE_HH
#define MESA_SCHED_MULTICORE_HH

#include <vector>

#include "mem/memory.hh"
#include "sched/scheduler.hh"
#include "workloads/kernel.hh"

namespace mesa::sched
{

/** Parameters for a shared-accelerator multicore run. */
struct SharedRunParams
{
    SchedParams sched;

    /** Per-tenant priorities (index = tenant; empty = all zero). */
    std::vector<int> priorities;

    /** Per-tenant iteration-space weights (skewed load); empty =
     *  even split. Tenant count follows the weight vector when set. */
    std::vector<double> weights;

    /** Functional-emulation guards. */
    uint64_t max_preamble_steps = 1'000'000;
    uint64_t max_resume_steps = 50'000'000;
};

/** Outcome of a shared run. */
struct SharedRunResult
{
    ScheduleResult sched;

    /** Per-tenant device turnaround (submit to finish), the shared
     *  analogue of cpu::RunResult::core_cycles. */
    std::vector<uint64_t> core_cycles;

    uint64_t makespan_cycles = 0;
    uint64_t total_iterations = 0;

    /** Every tenant's loop exited via its own condition and every
     *  emulator ran to halt afterwards. */
    bool all_completed = false;

    /** Slowest tenant turnaround over the mean (1 = even). */
    double imbalance() const;
};

/**
 * Run @p kernel's iteration space split across @p tenants threads,
 * all offloading to one scheduler built from @p params. Initializes
 * the kernel dataset and loads the program into @p memory.
 */
SharedRunResult runShared(const SharedRunParams &params,
                          mem::MainMemory &memory,
                          const workloads::Kernel &kernel,
                          int tenants);

} // namespace mesa::sched

#endif // MESA_SCHED_MULTICORE_HH
