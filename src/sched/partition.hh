/**
 * @file
 * Spatial partition planning for the multi-tenant scheduler: the PE
 * grid splits into equal horizontal bands (all columns, a contiguous
 * row range each) so small regions from different tenants execute
 * concurrently. Bands are uniform — a configuration mapped for one
 * partition's geometry runs on any of them, which is what lets the
 * scheduler migrate a preempted tenant to whichever partition frees
 * up first. The FP capability striping is column-based (accel
 * params), so every band keeps the full operation mix.
 */

#ifndef MESA_SCHED_PARTITION_HH
#define MESA_SCHED_PARTITION_HH

#include <vector>

#include "accel/params.hh"

namespace mesa::sched
{

/** One rectangular sub-array of the PE grid. */
struct PartitionGeometry
{
    int origin_row = 0; ///< First grid row of this band.
    int rows = 0;
    int cols = 0;

    size_t capacity() const { return size_t(rows) * size_t(cols); }
    int endRow() const { return origin_row + rows; }

    bool
    overlaps(const PartitionGeometry &other) const
    {
        return origin_row < other.endRow() &&
               other.origin_row < endRow();
    }
};

/**
 * Split the grid into @p ways equal bands. ways is clamped to
 * [1, rows]; when rows % ways != 0 the remainder rows at the bottom
 * of the grid stay power-gated (uniformity beats a ragged last band
 * — see file comment).
 */
std::vector<PartitionGeometry>
planPartitions(const accel::AccelParams &accel, int ways);

/**
 * Largest uniform way count whose bands still hold @p min_capacity
 * instructions each (at least 1).
 */
int maxWays(const accel::AccelParams &accel, size_t min_capacity);

} // namespace mesa::sched

#endif // MESA_SCHED_PARTITION_HH
