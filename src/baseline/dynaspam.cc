#include "baseline/dynaspam.hh"

#include <algorithm>
#include <cmath>
#include <vector>

namespace mesa::baseline
{

using dfg::Ldfg;
using dfg::NodeId;
using dfg::NoNode;

DynaSpamResult
DynaSpamMapper::map(const Ldfg &ldfg) const
{
    DynaSpamResult res;
    if (ldfg.size() > params_.max_trace)
        return res; // trace exceeds the in-pipeline fabric

    // Assign each node to the earliest fabric row after its
    // producers (feed-forward: strictly increasing rows). Row
    // occupancy is bounded by row_width.
    std::vector<unsigned> row(ldfg.size(), 0);
    std::vector<unsigned> row_load(params_.depth, 0);
    for (const auto &node : ldfg.nodes()) {
        unsigned r = 0;
        auto consider = [&](NodeId src) {
            if (src != NoNode)
                r = std::max(r, row[size_t(src)] + 1);
        };
        consider(node.src1);
        consider(node.src2);
        for (NodeId g : node.guards)
            consider(g);
        while (r < params_.depth && row_load[r] >= params_.row_width)
            ++r;
        if (r >= params_.depth)
            return res; // does not fit the fixed fabric
        row[size_t(node.id)] = r;
        ++row_load[r];
    }

    // Dataflow latency across the fabric.
    std::vector<double> completion(ldfg.size(), 0.0);
    double critical = 0.0;
    auto node_lat = [&](const dfg::LdfgNode &node) {
        if (node.inst.isLoad())
            return params_.mem_latency;
        return node.op_latency;
    };
    for (const auto &node : ldfg.nodes()) {
        double arrival = 0.0;
        auto consider = [&](NodeId src) {
            if (src == NoNode)
                return;
            const double hops =
                params_.hop_latency *
                double(row[size_t(node.id)] - row[size_t(src)]);
            arrival = std::max(arrival, completion[size_t(src)] + hops);
        };
        consider(node.src1);
        consider(node.src2);
        completion[size_t(node.id)] = arrival + node_lat(node);
        critical = std::max(critical, completion[size_t(node.id)]);
    }

    // Steady state: iterations pipeline through the fabric but share
    // the core's memory system and issue resources. Throughput is
    // bounded by memory-port pressure, sustained memory latency over
    // the core's limited MLP, the fabric's issue width, and the
    // loop-carried (induction) chain.
    size_t mem_ops = 0;
    for (const auto &node : ldfg.nodes())
        if (node.inst.isMem())
            ++mem_ops;
    const double port_bound =
        double(mem_ops) / double(params_.mem_ports);
    const double mlp_bound = double(mem_ops) * params_.mem_latency /
                             double(params_.mlp);
    const double width_bound =
        double(ldfg.size()) / double(params_.row_width);
    // Loop-carried chain: at least the induction update per iteration.
    const double carried_bound = 1.0;

    res.qualified = true;
    res.per_iter_cycles = std::max(
        {port_bound, mlp_bound, width_bound, carried_bound,
         critical / double(params_.depth)});
    return res;
}

} // namespace mesa::baseline
