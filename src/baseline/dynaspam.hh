/**
 * @file
 * DynaSpAM-substitute baseline (paper §2, §6.2, Fig. 14): dynamic
 * mapping of program traces onto a fixed 1D feed-forward CGRA inside
 * the core pipeline, driven by out-of-order instruction schedules.
 * The 1D fabric forwards values only downstream with cheap
 * single-cycle hops, maps a limited trace window, and shares the
 * core's memory ports.
 */

#ifndef MESA_BASELINE_DYNASPAM_HH
#define MESA_BASELINE_DYNASPAM_HH

#include <cstdint>

#include "dfg/ldfg.hh"

namespace mesa::baseline
{

/** Fabric parameters (DynaSpAM paper's CCA-like configuration). */
struct DynaSpamParams
{
    /** Functional units per fabric row (issue slots per cycle). */
    unsigned row_width = 4;

    /** Fabric depth: rows of the feed-forward array. */
    unsigned depth = 8;

    /** Largest trace (instructions) mappable onto the fabric. */
    size_t max_trace = 64;

    /** Memory ports shared with the core. */
    unsigned mem_ports = 2;

    /**
     * Average memory access time for in-pipeline accesses; the
     * fabric shares the core's memory system, so callers should pass
     * the AMAT measured on the baseline run.
     */
    double mem_latency = 4.0;

    /** Outstanding misses the core's LSQ sustains (MLP). */
    unsigned mlp = 8;

    /** Cost of a value crossing one fabric row. */
    double hop_latency = 0.0;
};

/** Per-loop mapping outcome. */
struct DynaSpamResult
{
    bool qualified = false;   ///< Trace fits and maps to the fabric.
    double per_iter_cycles = 0.0;

    uint64_t
    cyclesFor(uint64_t iterations) const
    {
        return uint64_t(per_iter_cycles * double(iterations));
    }
};

/** The 1D feed-forward trace mapper. */
class DynaSpamMapper
{
  public:
    explicit DynaSpamMapper(const DynaSpamParams &params = {})
        : params_(params)
    {}

    /** Map a loop body; per-iteration throughput in steady state. */
    DynaSpamResult map(const dfg::Ldfg &ldfg) const;

  private:
    DynaSpamParams params_;
};

} // namespace mesa::baseline

#endif // MESA_BASELINE_DYNASPAM_HH
