/**
 * @file
 * OpenCGRA-substitute baseline (paper §6.2, Fig. 12): a classical
 * ahead-of-time modulo scheduler for a time-multiplexed CGRA of the
 * same PE count. Computes the initiation interval II = max(ResMII,
 * RecMII) and the schedule length; steady-state per-iteration cycles
 * equal II. This is the compiler-quality schedule MESA's one-shot
 * spatial map is compared against.
 */

#ifndef MESA_BASELINE_OPENCGRA_HH
#define MESA_BASELINE_OPENCGRA_HH

#include <cstdint>

#include "accel/params.hh"
#include "dfg/ldfg.hh"

namespace mesa::baseline
{

/** Modulo-scheduler knobs. */
struct CgraParams
{
    /** Average compiler-achieved transfer latency between PEs. */
    double avg_transfer_latency = 1.0;

    /** Modeled memory latency for scheduled loads (compiler
     *  prefetching keeps accesses near the L1). */
    double mem_latency = 6.0;

    /** Fraction of PEs usable per cycle after routing constraints. */
    double pe_utilization = 0.85;
};

/** Result of modulo-scheduling one loop body. */
struct CgraSchedule
{
    unsigned res_mii = 1;   ///< Resource-constrained minimum II.
    unsigned rec_mii = 1;   ///< Recurrence-constrained minimum II.
    unsigned ii = 1;        ///< Achieved initiation interval.
    double schedule_length = 0.0; ///< First-iteration latency.

    /** Steady-state per-iteration cycles (software pipelined). */
    double perIterationCycles() const { return double(ii); }

    uint64_t
    cyclesFor(uint64_t iterations) const
    {
        if (iterations == 0)
            return 0;
        return uint64_t(schedule_length) +
               uint64_t(double(iterations - 1) * ii);
    }
};

/** The modulo scheduler. */
class OpenCgraScheduler
{
  public:
    OpenCgraScheduler(const accel::AccelParams &accel,
                      const CgraParams &params = {})
        : accel_(accel), params_(params)
    {}

    /** Schedule a loop body's LDFG. */
    CgraSchedule schedule(const dfg::Ldfg &ldfg) const;

  private:
    const accel::AccelParams &accel_;
    CgraParams params_;
};

} // namespace mesa::baseline

#endif // MESA_BASELINE_OPENCGRA_HH
