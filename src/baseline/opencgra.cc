#include "baseline/opencgra.hh"

#include <algorithm>
#include <cmath>
#include <vector>

namespace mesa::baseline
{

using dfg::Ldfg;
using dfg::NodeId;
using dfg::NoNode;
using riscv::OpClass;

CgraSchedule
OpenCgraScheduler::schedule(const Ldfg &ldfg) const
{
    CgraSchedule s;

    // --- ResMII: operations competing for time-multiplexed PEs. ---
    // FP ops can only run on FP-capable PEs (half the array when FP
    // slices are enabled).
    const double pes =
        double(accel_.capacity()) * params_.pe_utilization;
    const double fp_pes = accel_.fp_slices ? pes / 2.0 : 0.0;

    size_t fp_ops = 0;
    for (const auto &node : ldfg.nodes()) {
        const OpClass cls = node.inst.cls();
        if (cls == OpClass::FpAlu || cls == OpClass::FpMul ||
            cls == OpClass::FpDiv) {
            ++fp_ops;
        }
    }
    double res = double(ldfg.size()) / pes;
    if (fp_ops > 0 && fp_pes > 0)
        res = std::max(res, double(fp_ops) / fp_pes);
    s.res_mii = std::max(1u, unsigned(std::ceil(res)));

    // --- RecMII: loop-carried recurrences. For each register that is
    // both live-in and written, the cycle closes with distance 1, so
    // RecMII >= latency of the path from the live-in's first use to
    // the register's final writer. ---
    auto node_lat = [&](const dfg::LdfgNode &node) {
        if (node.inst.isLoad())
            return params_.mem_latency;
        return node.op_latency;
    };

    // Longest path ending at each node that started at a node reading
    // a loop-carried live-in.
    const auto &live_ins = ldfg.liveIns();
    std::vector<double> carried(ldfg.size(), -1.0);
    double rec = 1.0;
    for (const auto &node : ldfg.nodes()) {
        double best = -1.0;
        const bool reads_carried =
            (node.live_in1 >= 0 &&
             ldfg.writtenRegs().count(node.live_in1)) ||
            (node.live_in2 >= 0 &&
             ldfg.writtenRegs().count(node.live_in2));
        if (reads_carried)
            best = 0.0;
        auto consider = [&](NodeId src) {
            if (src == NoNode || carried[size_t(src)] < 0.0)
                return;
            best = std::max(best, carried[size_t(src)] +
                                      params_.avg_transfer_latency);
        };
        consider(node.src1);
        consider(node.src2);
        if (best < 0.0)
            continue;
        carried[size_t(node.id)] = best + node_lat(node);

        // Does this node close a recurrence (final writer of a
        // carried register)?
        const int dest = node.inst.unifiedDest();
        if (dest >= 0 && live_ins.count(dest) &&
            ldfg.finalRename().lookup(dest) == node.id) {
            rec = std::max(rec, carried[size_t(node.id)]);
        }
    }
    s.rec_mii = std::max(1u, unsigned(std::ceil(rec)));

    s.ii = std::max(s.res_mii, s.rec_mii);

    // Schedule length: dataflow critical path with compiler-grade
    // transfer latencies.
    std::vector<double> completion(ldfg.size(), 0.0);
    double total = 0.0;
    for (const auto &node : ldfg.nodes()) {
        double arrival = 0.0;
        auto consider = [&](NodeId src) {
            if (src == NoNode)
                return;
            arrival = std::max(arrival, completion[size_t(src)] +
                                            params_.avg_transfer_latency);
        };
        consider(node.src1);
        consider(node.src2);
        completion[size_t(node.id)] = arrival + node_lat(node);
        total = std::max(total, completion[size_t(node.id)]);
    }
    s.schedule_length = total;
    return s;
}

} // namespace mesa::baseline
