#include "migrate/migrate.hh"

#include <algorithm>

#include "dfg/analysis.hh"
#include "dfg/ldfg.hh"
#include "fault/checkpoint.hh"
#include "interconnect/folded.hh"
#include "mesa/config_builder.hh"
#include "riscv/isa.hh"
#include "util/crc32.hh"
#include "util/debug.hh"

namespace mesa::migrate
{

using riscv::Instruction;

uint32_t
bodyCrc(const std::vector<Instruction> &body)
{
    Crc32 crc;
    for (const Instruction &inst : body) {
        crc.add32(inst.pc);
        crc.add32(inst.raw);
    }
    return crc.value();
}

bool
configFits(const accel::AcceleratorConfig &config,
           const accel::AccelParams &target,
           const std::vector<ic::Coord> &blocked)
{
    if (config.slots.empty())
        return false;
    if (config.cols != target.cols)
        return false;
    // The placement's virtual grid must unfold onto exactly the
    // target's physical rows; equal-height bands then execute the
    // band-local coordinates identically.
    if (config.rows != target.rows * std::max(1, config.time_multiplex))
        return false;
    // Any retired PE on the target voids verbatim reuse: the stored
    // placement cannot be proven to avoid it across tile instances
    // and folds, so the planner re-translates instead.
    return blocked.empty();
}

std::optional<MigrationPlan>
translateBody(const std::vector<Instruction> &body,
              const accel::AccelParams &target,
              const core::MapperParams &mapper_params,
              const std::vector<ic::Coord> &blocked, bool parallel_hint,
              bool pipelined, int max_time_multiplex)
{
    if (body.empty())
        return std::nullopt;
    const size_t capacity = target.capacity();
    if (capacity == 0)
        return std::nullopt;
    const int tm = int((body.size() + capacity - 1) / capacity);
    if (tm > std::max(1, max_time_multiplex))
        return std::nullopt;

    dfg::BuildError err = dfg::BuildError::None;
    auto ldfg = dfg::Ldfg::build(body, target.op_latency,
                                 capacity * size_t(tm), &err);
    if (!ldfg)
        return std::nullopt;

    MigrationPlan plan;
    plan.time_multiplex = tm;
    plan.cost.encode_cycles = body.size();

    const ic::AccelNocInterconnect phys_ic(target.rows, target.cols,
                                           target.noc_slice_width);
    core::MapResult map;
    if (tm > 1) {
        accel::AccelParams virt = target;
        virt.rows *= tm;
        ic::FoldedInterconnect folded(phys_ic, target.rows);
        core::InstructionMapper vmapper(virt, folded, mapper_params);
        // Blocked PEs veto every virtual row folding onto them.
        if (!blocked.empty())
            vmapper.setBlockedPes(blocked, target.rows);
        map = vmapper.map(*ldfg);
    } else {
        core::InstructionMapper mapper(target, phys_ic, mapper_params);
        if (!blocked.empty())
            mapper.setBlockedPes(blocked);
        map = mapper.map(*ldfg);
    }
    if (!map.unmapped.empty())
        return std::nullopt;
    plan.cost.mapping_cycles = map.mapping_cycles;

    core::ConfigOptions options;
    options.time_multiplex = tm;
    options.pipelined = pipelined;

    // Tiling follows the controller's safety rules — and additionally
    // requires an unblocked grid, since tile instances execute at
    // translated origins the blocked set cannot see.
    if (tm == 1 && parallel_hint && blocked.empty()) {
        const bool unknown_stores =
            !dfg::findUnknownAddressStores(*ldfg).empty();
        const auto inductions = dfg::findInductionRegs(*ldfg);
        bool reg_carried = false;
        for (int reg : ldfg->writtenRegs()) {
            if (!ldfg->liveIns().count(reg))
                continue;
            bool is_induction = false;
            for (const auto &ind : inductions)
                is_induction = is_induction || ind.unified_reg == reg;
            if (!is_induction)
                reg_carried = true;
        }
        if (!unknown_stores && !reg_carried) {
            // Unlike a first-contact offload, a migrated region has
            // already been profiled: commit to the grid's ceiling
            // instead of creeping up from half.
            options.tile_factor = std::max(
                1, core::ConfigBlock::maxTileFactor(map.sdfg, target));
        }
    }

    const uint32_t region_start = body.front().pc;
    const uint32_t region_end = body.back().pc + 4;
    const core::ConfigBlock block(target);
    plan.config = block.build(*ldfg, map.sdfg, options, region_start,
                              region_end);
    plan.config.model_latency = map.model_latency;
    plan.cost.config_cycles = block.configCycles(plan.config);
    return plan;
}

std::optional<MigrationPlan>
planMigration(const std::vector<Instruction> &body,
              const accel::AcceleratorConfig &source,
              const accel::AccelParams &target,
              const core::MapperParams &mapper_params,
              const std::vector<ic::Coord> &blocked, bool parallel_hint,
              core::ConfigCache *cache)
{
    const uint32_t tag = bodyCrc(body);

    // Warm path 1: a previous migration to this geometry left the
    // translated config in the target-side cache.
    if (cache && !body.empty()) {
        if (const auto *cached = cache->lookup(body.front().pc, tag)) {
            if (configFits(*cached, target, blocked)) {
                MigrationPlan plan;
                plan.config = *cached;
                plan.warm = true;
                plan.time_multiplex = cached->time_multiplex;
                plan.cost.checkpoint_cycles = riscv::NumUnifiedRegs;
                plan.cost.config_cycles =
                    core::ConfigBlock(target).configCycles(plan.config);
                return plan;
            }
        }
    }

    // Warm path 2: the running bitstream itself fits the target.
    if (configFits(source, target, blocked)) {
        MigrationPlan plan;
        plan.config = source;
        plan.warm = true;
        plan.time_multiplex = source.time_multiplex;
        plan.cost.checkpoint_cycles = riscv::NumUnifiedRegs;
        plan.cost.config_cycles =
            core::ConfigBlock(target).configCycles(plan.config);
        if (cache)
            cache->insert(plan.config, tag);
        return plan;
    }

    auto plan = translateBody(body, target, mapper_params, blocked,
                              parallel_hint, source.pipelined);
    if (!plan)
        return std::nullopt;
    plan->cost.checkpoint_cycles = riscv::NumUnifiedRegs;
    if (cache)
        cache->insert(plan->config, tag);
    return plan;
}

std::optional<MigrationOutcome>
migrateOffload(const std::vector<Instruction> &body,
               const accel::AcceleratorConfig &source,
               riscv::ArchState &state, mem::MainMemory &memory,
               accel::Accelerator &target,
               const core::MapperParams &mapper_params,
               const std::vector<ic::Coord> &blocked, bool parallel_hint,
               uint64_t max_iterations, core::ConfigCache *cache)
{
    auto plan = planMigration(body, source, target.params(),
                              mapper_params, blocked, parallel_hint,
                              cache);
    if (!plan)
        return std::nullopt;

    // Snapshot at the round boundary: live-outs are already in state
    // (run() writes them back whenever it returns), and memory is the
    // shared image both fabrics address. The capture exists to roll
    // back if the resumed run itself faults.
    const fault::Checkpoint ckpt =
        fault::Checkpoint::capture(state, memory);

    MigrationOutcome outcome;
    outcome.warm = plan->warm;
    outcome.cost = plan->cost;

    target.configure(plan->config);
    outcome.run = target.run(state, max_iterations);
    if (outcome.run.watchdog_tripped) {
        ckpt.restore(state, memory);
        outcome.resumed = false;
        return outcome;
    }
    outcome.resumed = true;
    return outcome;
}

} // namespace mesa::migrate
