/**
 * @file
 * Live offload migration for the virtualized fabric (following
 * Mestra's checkpoint/remap/resume flow on virtualized CGRAs): a
 * running offload is checkpointed at a round boundary, its
 * configuration is re-instantiated on a different sub-array — reusing
 * the source bitstream when the target geometry matches, otherwise
 * re-translating through the mapper (with virtual-row folding and
 * blocked-PE avoidance) — and execution resumes bit-exactly.
 *
 * The round boundary is what makes this sound: Accelerator::run()
 * latches live-ins from the architectural state at entry and writes
 * live-outs back when it returns, so N iterations on fabric A
 * followed by M iterations on fabric B from the written-back state is
 * the same computation as N+M iterations on either fabric alone.
 * Memory is shared (the fabrics address the same MainMemory), so the
 * checkpoint hand-off carries only architectural state; the captured
 * page snapshot exists for rollback when the resume itself faults.
 */

#ifndef MESA_MIGRATE_MIGRATE_HH
#define MESA_MIGRATE_MIGRATE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "accel/accelerator.hh"
#include "accel/config_types.hh"
#include "accel/params.hh"
#include "interconnect/interconnect.hh"
#include "mesa/config_cache.hh"
#include "mesa/mapper.hh"
#include "riscv/emulator.hh"

namespace mesa::migrate
{

/** Config-cache key guard: CRC over the body's pcs and encodings
 *  (the same tag the controller derives for its ConfigCache). */
uint32_t bodyCrc(const std::vector<riscv::Instruction> &body);

/** Cycle decomposition of one migration. */
struct MigrationCost
{
    /** Architectural-state hand-off (register file drain/refill). */
    uint64_t checkpoint_cycles = 0;
    /** LDFG rebuild on re-translation (0 on a warm move). */
    uint64_t encode_cycles = 0;
    /** imap FSM time on re-translation (0 on a warm move). */
    uint64_t mapping_cycles = 0;
    /** Bitstream streaming into the target (always paid). */
    uint64_t config_cycles = 0;

    uint64_t
    total() const
    {
        return checkpoint_cycles + encode_cycles + mapping_cycles +
               config_cycles;
    }
};

/** How a body lands on the target sub-array. */
struct MigrationPlan
{
    accel::AcceleratorConfig config;

    /** The source bitstream was reused verbatim (geometry matched and
     *  no blocked PE intersects it); false = re-translated. */
    bool warm = false;

    /** Virtual-fold factor of the target placement. */
    int time_multiplex = 1;

    MigrationCost cost;
};

/**
 * Can @p config run unchanged on a @p target sub-array? True when the
 * virtual grid it was placed on is exactly the target's (same columns,
 * same physical rows after unfolding time_multiplex) and no blocked
 * PE exists. Sub-array coordinates are band-local, so a config moves
 * between equal-height bands without rewriting any slot position.
 */
bool configFits(const accel::AcceleratorConfig &config,
                const accel::AccelParams &target,
                const std::vector<ic::Coord> &blocked);

/**
 * Translate @p body onto @p target from scratch: encode the LDFG, map
 * it (folding onto a virtual grid of up to @p max_time_multiplex rows
 * per PE when the body exceeds the sub-array's capacity, and routing
 * around @p blocked physical PEs), and lower the configuration.
 *
 * @param parallel_hint permit tiling (capped by the grid; disabled
 *        when the body has unknown-address stores, register-carried
 *        recurrences, a fold, or blocked PEs — the same safety rules
 *        the controller applies)
 * @param pipelined overlap successive iterations on one instance
 * @return nullopt when the body cannot be encoded or placed
 */
std::optional<MigrationPlan>
translateBody(const std::vector<riscv::Instruction> &body,
              const accel::AccelParams &target,
              const core::MapperParams &mapper_params,
              const std::vector<ic::Coord> &blocked,
              bool parallel_hint = false, bool pipelined = true,
              int max_time_multiplex = 4);

/**
 * Plan a migration of a running offload (currently configured as
 * @p source) onto @p target. Warm path: the source config fits the
 * target geometry, so only the bitstream write is paid — the
 * ConfigCache (when given) resolves this by body CRC exactly like the
 * controller's re-encounter path. Cold path: re-translate via
 * translateBody. A translated config is inserted into @p cache so
 * the next migration to this geometry is warm.
 */
std::optional<MigrationPlan>
planMigration(const std::vector<riscv::Instruction> &body,
              const accel::AcceleratorConfig &source,
              const accel::AccelParams &target,
              const core::MapperParams &mapper_params,
              const std::vector<ic::Coord> &blocked,
              bool parallel_hint = false,
              core::ConfigCache *cache = nullptr);

/** Outcome of one live migration. */
struct MigrationOutcome
{
    /** The offload resumed on the target. false = the resumed run
     *  tripped the watchdog; state and memory were rolled back to the
     *  pre-migration checkpoint (the caller recovers, e.g. on CPU). */
    bool resumed = false;

    bool warm = false;
    MigrationCost cost;

    /** The target-side run (zero-initialized when !resumed). */
    accel::AccelRunResult run;
};

/**
 * Migrate a running offload onto @p target and resume it: plan (warm
 * or re-translate), checkpoint @p state and @p memory, configure the
 * target, and run up to @p max_iterations more iterations. A
 * watchdog trip on the target restores the checkpoint byte-exactly,
 * so a faulted migration is never observable.
 *
 * Call at a round boundary only: @p state must hold the live-outs the
 * source fabric wrote back from its last run() (that is what run()
 * leaves in @p state whenever it returns).
 *
 * @return nullopt when no placement exists on the target (state is
 *         untouched); otherwise the outcome, with resumed == false
 *         when the target run faulted and was rolled back
 */
std::optional<MigrationOutcome>
migrateOffload(const std::vector<riscv::Instruction> &body,
               const accel::AcceleratorConfig &source,
               riscv::ArchState &state, mem::MainMemory &memory,
               accel::Accelerator &target,
               const core::MapperParams &mapper_params,
               const std::vector<ic::Coord> &blocked = {},
               bool parallel_hint = false,
               uint64_t max_iterations = ~uint64_t(0),
               core::ConfigCache *cache = nullptr);

} // namespace mesa::migrate

#endif // MESA_MIGRATE_MIGRATE_HH
