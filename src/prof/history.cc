#include "prof/history.hh"

#include <ctime>
#include <fstream>
#include <sstream>
#include <thread>

#include <sys/utsname.h>

#include "util/json.hh"
#include "util/json_parse.hh"

namespace mesa::prof
{

namespace
{

std::string
trimmed(std::string s)
{
    while (!s.empty() && (s.back() == '\n' || s.back() == '\r' ||
                          s.back() == ' '))
        s.pop_back();
    return s;
}

std::string
readFirstLine(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return {};
    std::string line;
    std::getline(in, line);
    return trimmed(line);
}

} // namespace

std::string
gitRevision(const std::string &dir)
{
    // Walk up a few levels looking for .git/HEAD; follow one level of
    // "ref: refs/..." indirection (loose ref, then packed-refs).
    std::string base = dir;
    for (int depth = 0; depth < 6; ++depth, base += "/..") {
        const std::string head = readFirstLine(base + "/.git/HEAD");
        if (head.empty())
            continue;
        if (head.rfind("ref: ", 0) != 0)
            return head; // detached HEAD: the hash itself
        const std::string ref = head.substr(5);
        const std::string loose = readFirstLine(base + "/.git/" + ref);
        if (!loose.empty())
            return loose;
        std::ifstream packed(base + "/.git/packed-refs");
        std::string line;
        while (std::getline(packed, line)) {
            if (line.size() > ref.size() + 41 &&
                line.compare(41, ref.size(), ref) == 0) {
                return line.substr(0, 40);
            }
        }
        return {};
    }
    return {};
}

HistoryRecord
makeHistoryRecord(const std::string &tool)
{
    HistoryRecord rec;
    rec.tool = tool;

    std::time_t now = std::time(nullptr);
    std::tm tm_utc{};
    gmtime_r(&now, &tm_utc);
    char buf[32];
    std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
    rec.timestamp = buf;

    rec.git_rev = gitRevision();

    struct utsname un{};
    if (uname(&un) == 0) {
        rec.host = un.nodename;
        rec.os = std::string(un.sysname) + " " + un.release;
        rec.machine = un.machine;
    }
    rec.hardware_concurrency = std::thread::hardware_concurrency();
    return rec;
}

std::string
historyRecordJson(const HistoryRecord &rec)
{
    JsonWriter w;
    w.beginObject();
    w.field("tool", rec.tool);
    w.field("timestamp", rec.timestamp);
    w.field("git_rev", rec.git_rev);
    w.field("host", rec.host);
    w.field("os", rec.os);
    w.field("machine", rec.machine);
    w.field("hardware_concurrency", rec.hardware_concurrency);
    w.key("metrics").beginObject();
    for (const auto &[name, value] : rec.metrics)
        w.field(name, value);
    w.end();
    w.end();
    return w.str();
}

bool
appendHistory(const std::string &path, const HistoryRecord &rec)
{
    std::ofstream out(path, std::ios::app);
    if (!out)
        return false;
    out << historyRecordJson(rec) << "\n";
    return bool(out);
}

std::vector<HistoryRecord>
readHistory(const std::string &path)
{
    std::vector<HistoryRecord> records;
    std::ifstream in(path);
    if (!in)
        return records;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        auto doc = parseJson(line);
        if (!doc || !doc->isObject())
            continue; // tolerate partial/corrupt lines
        HistoryRecord rec;
        auto str = [&](const char *key) {
            const JsonValue *v = doc->find(key);
            return v ? v->asString() : std::string{};
        };
        rec.tool = str("tool");
        rec.timestamp = str("timestamp");
        rec.git_rev = str("git_rev");
        rec.host = str("host");
        rec.os = str("os");
        rec.machine = str("machine");
        if (const JsonValue *v = doc->find("hardware_concurrency"))
            rec.hardware_concurrency = unsigned(v->asNumber());
        if (const JsonValue *m = doc->find("metrics");
            m && m->isObject()) {
            for (const auto &[name, value] : m->members)
                if (value.isNumber())
                    rec.metrics[name] = value.number;
        }
        records.push_back(std::move(rec));
    }
    return records;
}

} // namespace mesa::prof
