/**
 * @file
 * The persistent perf-history pipeline (ROADMAP item 5): bench_perf
 * and mesa_prof append one JSONL record per run — timestamp, git
 * revision, host identity, hardware_concurrency, and the run's
 * metrics — to BENCH_history.jsonl instead of overwriting a single
 * report. A speedup number is only interpretable next to the machine
 * that produced it; the history keeps the trajectory comparable
 * across commits and hosts.
 *
 * Record schema (one JSON object per line):
 *   {"tool": "...", "timestamp": "2026-08-08T12:34:56Z",
 *    "git_rev": "...", "host": "...", "os": "...", "machine": "...",
 *    "hardware_concurrency": N, "metrics": {"<name>": <number>, ...}}
 */

#ifndef MESA_PROF_HISTORY_HH
#define MESA_PROF_HISTORY_HH

#include <map>
#include <string>
#include <vector>

namespace mesa::prof
{

/** One perf-history datapoint. */
struct HistoryRecord
{
    std::string tool;      ///< "bench_perf", "mesa_prof", ...
    std::string timestamp; ///< ISO-8601 UTC.
    std::string git_rev;   ///< HEAD commit hash ("" when unknown).
    std::string host;      ///< Node name.
    std::string os;        ///< Kernel name + release.
    std::string machine;   ///< Hardware identifier (e.g. x86_64).
    unsigned hardware_concurrency = 0;
    std::map<std::string, double> metrics;
};

/** A record pre-filled with the current environment (no metrics). */
HistoryRecord makeHistoryRecord(const std::string &tool);

/** Serialize one record to its single-line JSON form. */
std::string historyRecordJson(const HistoryRecord &rec);

/** Append @p rec to the JSONL file at @p path (created if absent).
 *  @return false when the file cannot be opened for append. */
bool appendHistory(const std::string &path, const HistoryRecord &rec);

/** Read every parseable record from a JSONL history file. */
std::vector<HistoryRecord> readHistory(const std::string &path);

/** HEAD commit hash, walking up from @p dir to find .git ("" =
 *  not a repository / unreadable). */
std::string gitRevision(const std::string &dir = ".");

} // namespace mesa::prof

#endif // MESA_PROF_HISTORY_HH
