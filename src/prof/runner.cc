#include "prof/runner.hh"

#include "util/parallel.hh"
#include "util/stats_registry.hh"

namespace mesa::prof
{

uint64_t
offloadWallCycles(const core::OffloadStats &os)
{
    return os.totalConfigCycles() + os.reconfig_cycles +
           os.sched_wait_cycles + os.accel_cycles +
           os.cpu_reexec_instructions;
}

OffloadRow
attributeOffload(const core::OffloadStats &os)
{
    OffloadRow row;
    row.region_pc = os.region_start;
    row.fallback = os.fallback != core::FallbackReason::None;
    row.total_cycles = offloadWallCycles(os);

    row.phases[Phase::Encode] = os.encode_cycles;
    row.phases[Phase::Map] = os.mapping_cycles;
    row.phases[Phase::ConfigStream] =
        os.config_cycles + os.reconfig_cycles;
    row.phases[Phase::SchedWait] = os.sched_wait_cycles;
    row.phases[Phase::FaultRecovery] = os.cpu_reexec_instructions;

    // Device-cycle split from the attached profile. Offloads served by
    // a shared arbiter (or run unprofiled) carry zero prof_* fields;
    // the device term then stays one undivided compute bucket so the
    // sum invariant holds either way.
    const uint64_t prof_sum = os.prof_compute_cycles +
                              os.prof_noc_stall_cycles +
                              os.prof_mem_stall_cycles;
    if (prof_sum == os.accel_cycles) {
        row.phases[Phase::Compute] = os.prof_compute_cycles;
        row.phases[Phase::NocStall] = os.prof_noc_stall_cycles;
        row.phases[Phase::MemStall] = os.prof_mem_stall_cycles;
    } else {
        row.phases[Phase::Compute] = os.accel_cycles;
    }
    return row;
}

KernelProfile
profileKernel(const workloads::Kernel &kernel,
              const core::MesaParams &params)
{
    // Fully private system per call (the ShardContext ownership rule):
    // fresh memory with the kernel's data planted, a controller bound
    // to it, and a local registry — safe from any worker shard, and
    // byte-identical at any job count.
    mem::MainMemory memory;
    kernel.init_data(memory);
    core::MesaController mesa(params, memory);

    StatsRegistry stats;
    mesa.attachStats(&stats);

    AccelProfile profile;
    mesa.attachProfile(&profile);

    const core::TransparentRunResult result = mesa.runTransparent(
        kernel.program, kernel.fullRange(), kernel.parallel);

    KernelProfile kp;
    kp.kernel = kernel.name;
    for (const auto &os : result.offloads) {
        OffloadRow row = attributeOffload(os);
        kp.phases.accumulate(row.phases);
        kp.total_offload_cycles += row.total_cycles;
        kp.overlapped.monitor_iterations += os.cpu_overlap_iterations;
        kp.overlapped.config_builds +=
            (os.config_cache_hit ? 0 : 1) + os.reconfigurations;
        kp.cache_hits += os.config_cache_hit ? 1 : 0;
        kp.fallbacks += row.fallback ? 1 : 0;
        kp.offloads.push_back(std::move(row));
    }
    kp.invariant_ok = kp.phases.total() == kp.total_offload_cycles;
    kp.overlapped.verify_checks =
        uint64_t(stats.value("mesa.verify.configs_checked"));

    kp.total_cycles = result.total_cycles;
    kp.cpu_cycles = result.cpu_cycles;
    kp.accel_cycles = result.accel_cycles;
    kp.iterations = result.acceleratedIterations();
    kp.spatial = profile;

    mesa.attachProfile(nullptr);
    mesa.attachStats(nullptr);
    return kp;
}

SuiteProfile
profileSuite(const std::vector<workloads::Kernel> &kernels,
             const core::MesaParams &params, int jobs)
{
    auto rows = parallelMapOrdered<KernelProfile>(
        kernels.size(), jobs,
        [&](size_t i) { return profileKernel(kernels[i], params); });

    SuiteProfile suite;
    for (auto &kp : rows)
        suite.add(std::move(kp));
    return suite;
}

} // namespace mesa::prof
