/**
 * @file
 * Report renderers for cycle-attribution profiles: the human table,
 * the machine JSON report (the schema CI's invariant check and the
 * --baseline diff consume), ASCII/JSON spatial heatmaps, Chrome-trace
 * counter tracks (chrome://tracing "ph":"C" events, one track per
 * taxonomy bucket across kernels), and a Prometheus text exposition
 * for the future service layer to scrape (ROADMAP item 1).
 */

#ifndef MESA_PROF_REPORT_HH
#define MESA_PROF_REPORT_HH

#include <ostream>
#include <string>

#include "prof/profile.hh"

namespace mesa
{
class JsonWriter;
}

namespace mesa::prof
{

/** Run context stamped on reports (not on baselines — see history). */
struct ReportMeta
{
    std::string accel;  ///< Accelerator preset name.
    uint64_t scale = 0; ///< Suite iteration scale.
};

/** Per-kernel attribution table with a suite summary row. */
void printProfileTable(const SuiteProfile &suite, std::ostream &os);

/**
 * The machine-readable report. Deliberately excludes timestamps,
 * host data, and job counts so that two runs of the same code are
 * byte-identical and baseline diffs stay exact; run provenance lives
 * in the history records instead.
 */
void writeProfileJson(const SuiteProfile &suite, const ReportMeta &meta,
                      JsonWriter &w);

/**
 * ASCII heatmaps of the spatial profile over the PE grid: busy
 * cycles, operand-wait cycles, and transfer traffic, shaded with the
 * " .:-=+*#%@" ramp, plus the per-link contention table.
 */
void printHeatmaps(const KernelProfile &kp, std::ostream &os);

/** One spatial metric as a JSON heatmap {rows, cols, data[]}. */
void writeHeatmapJson(const std::vector<uint64_t> &grid, int rows,
                      int cols, JsonWriter &w);

/**
 * Chrome-trace counter tracks: one counter event per kernel (x-axis
 * position = kernel index) carrying every taxonomy bucket, loadable
 * in chrome://tracing / Perfetto alongside Tracer exports.
 */
void writeCounterTrace(const SuiteProfile &suite, std::ostream &os);

/**
 * Prometheus text exposition (one gauge per bucket, labeled by
 * kernel and phase; plus totals and the invariant flag).
 */
void writePrometheus(const SuiteProfile &suite, const ReportMeta &meta,
                     std::ostream &os);

} // namespace mesa::prof

#endif // MESA_PROF_REPORT_HH
