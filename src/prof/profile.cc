#include "prof/profile.hh"

#include "util/logging.hh"

namespace mesa::prof
{

const char *
phaseName(Phase p)
{
    switch (p) {
      case Phase::MonitorDetect: return "monitor_detect";
      case Phase::Encode: return "encode";
      case Phase::Map: return "map";
      case Phase::ConfigGen: return "config_gen";
      case Phase::VerifyGate: return "verify_gate";
      case Phase::ConfigStream: return "config_stream";
      case Phase::Compute: return "compute";
      case Phase::NocStall: return "noc_stall";
      case Phase::MemStall: return "mem_stall";
      case Phase::SchedWait: return "sched_wait";
      case Phase::FaultRecovery: return "fault_recovery";
    }
    return "?";
}

const char *
phaseLabel(Phase p)
{
    switch (p) {
      case Phase::MonitorDetect: return "monitor/detect";
      case Phase::Encode: return "LDFG encode";
      case Phase::Map: return "spatial map";
      case Phase::ConfigGen: return "config gen";
      case Phase::VerifyGate: return "verify gate";
      case Phase::ConfigStream: return "config stream";
      case Phase::Compute: return "compute";
      case Phase::NocStall: return "NoC stall";
      case Phase::MemStall: return "mem stall";
      case Phase::SchedWait: return "sched wait";
      case Phase::FaultRecovery: return "fault recovery";
    }
    return "?";
}

void
AccelProfile::merge(const AccelProfile &other)
{
    if (rows_ == 0 && cols_ == 0 && other.rows_ > 0)
        resize(other.rows_, other.cols_);
    MESA_ASSERT(rows_ == other.rows_ && cols_ == other.cols_,
                "AccelProfile::merge: grid shape mismatch");
    compute_cycles += other.compute_cycles;
    noc_stall_cycles += other.noc_stall_cycles;
    mem_stall_cycles += other.mem_stall_cycles;
    for (size_t i = 0; i < pe_busy.size(); ++i) {
        pe_busy[i] += other.pe_busy[i];
        pe_wait[i] += other.pe_wait[i];
        pe_ops[i] += other.pe_ops[i];
        pe_traffic[i] += other.pe_traffic[i];
    }
    for (const auto &[bus, stats] : other.links) {
        links[bus].transfers += stats.transfers;
        links[bus].wait_cycles += stats.wait_cycles;
    }
    for (const auto &[bus, coord] : other.link_coords)
        link_coords.emplace(bus, coord);
    port_wait_cycles += other.port_wait_cycles;
    fallback_transfers += other.fallback_transfers;
}

void
SuiteProfile::add(KernelProfile kp)
{
    phases.accumulate(kp.phases);
    total_offload_cycles += kp.total_offload_cycles;
    invariant_ok = invariant_ok && kp.invariant_ok;
    kernels.push_back(std::move(kp));
}

std::map<std::string, double>
flattenProfile(const SuiteProfile &suite)
{
    std::map<std::string, double> flat;
    auto put = [&flat](const std::string &prefix, const PhaseBreakdown &pb,
                       uint64_t total) {
        for (size_t i = 0; i < PhaseCount; ++i) {
            flat[prefix + "." + phaseName(Phase(i))] =
                double(pb.cycles[i]);
        }
        flat[prefix + ".total_offload_cycles"] = double(total);
    };
    for (const auto &kp : suite.kernels) {
        put(kp.kernel, kp.phases, kp.total_offload_cycles);
        flat[kp.kernel + ".total_cycles"] = double(kp.total_cycles);
    }
    put("suite", suite.phases, suite.total_offload_cycles);
    return flat;
}

} // namespace mesa::prof
