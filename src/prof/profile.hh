/**
 * @file
 * Cycle-attribution profile types (ROADMAP items 2 and 5: a bottleneck
 * signal per kernel, not just end-to-end speedup). An offload's wall
 * cycles are decomposed into a fixed taxonomy whose buckets sum to the
 * total *exactly* — the invariant every report checks — plus spatial
 * per-PE and per-NoC-link counters rendered as heatmaps.
 *
 * Attribution model. The controller's timing composes an offload as
 *
 *   total = encode + map + (config stream + reconfig) + sched wait
 *         + device cycles + fault re-execution
 *
 * so the translation, streaming, scheduling, and recovery buckets are
 * read directly off OffloadStats. The device-cycle term is decomposed
 * by the accelerator: for each iteration of the critical (slowest)
 * instance, the exposed wall window since that instance's previous
 * iteration end is walked backwards along the binding chain of the
 * latest-finishing slot — PE service segments count as compute (or
 * memory stall for loads), shared-bus waits and NoC hop latencies as
 * NoC stall, and in-order store-commit drain as memory stall — tiling
 * the window with no gaps or overlaps. Cycles the DRAM bandwidth floor
 * adds on top of the dataflow schedule are memory stall.
 *
 * Buckets that are structurally concurrent with CPU progress in this
 * timing model (monitor/detect, config generation, the verify gate)
 * are kept in the taxonomy at zero cost so the sum stays exact and the
 * taxonomy stays stable as the timing model grows costs for them;
 * their *activity* is reported separately in the overlapped section.
 *
 * Everything here is core-free (plain integers, no accelerator types)
 * so mesa_util-level tools can link it without dragging in the
 * simulator; the runner that produces profiles lives in prof/runner.
 */

#ifndef MESA_PROF_PROFILE_HH
#define MESA_PROF_PROFILE_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mesa::prof
{

/** The attribution taxonomy. Order is the canonical report order. */
enum class Phase
{
    MonitorDetect = 0, ///< Loop detection / hotness monitoring.
    Encode,            ///< LDFG encoding (translation stage 1).
    Map,               ///< imap spatial mapping (translation stage 2).
    ConfigGen,         ///< Bitstream build (translation stage 3).
    VerifyGate,        ///< Static verifier gate before offload.
    ConfigStream,      ///< Config streaming + reconfigurations.
    Compute,           ///< PE busy + operand forwarding on the fabric.
    NocStall,          ///< Shared-bus contention + NoC hop latency.
    MemStall,          ///< Load/store service + port + commit drain.
    SchedWait,         ///< Multi-tenant scheduler queueing.
    FaultRecovery,     ///< CPU re-execution after guard rejection.
};

constexpr size_t PhaseCount = 11;

/** Stable lower-case identifier ("noc_stall") for reports/metrics. */
const char *phaseName(Phase p);

/** Short human label ("NoC stall") for tables. */
const char *phaseLabel(Phase p);

/** Cycles per taxonomy bucket; sums exactly to the attributed total. */
struct PhaseBreakdown
{
    std::array<uint64_t, PhaseCount> cycles{};

    uint64_t &operator[](Phase p) { return cycles[size_t(p)]; }
    uint64_t operator[](Phase p) const { return cycles[size_t(p)]; }

    uint64_t
    total() const
    {
        uint64_t sum = 0;
        for (uint64_t c : cycles)
            sum += c;
        return sum;
    }

    void
    accumulate(const PhaseBreakdown &other)
    {
        for (size_t i = 0; i < PhaseCount; ++i)
            cycles[i] += other.cycles[i];
    }
};

/** Per-shared-bus (NoC segment) traffic and contention. */
struct LinkStats
{
    uint64_t transfers = 0;   ///< Transfers that crossed this bus.
    uint64_t wait_cycles = 0; ///< Cycles transfers queued for it.
};

/**
 * Accumulators the accelerator engine feeds while a profile is
 * attached: the device-cycle attribution split plus the spatial
 * per-PE / per-link counters. One AccelProfile spans a whole kernel
 * run (all offloads and epochs).
 */
class AccelProfile
{
  public:
    AccelProfile() = default;
    AccelProfile(int rows, int cols) { resize(rows, cols); }

    void
    resize(int rows, int cols)
    {
        rows_ = rows;
        cols_ = cols;
        const size_t n = size_t(rows) * size_t(cols);
        pe_busy.assign(n, 0);
        pe_wait.assign(n, 0);
        pe_ops.assign(n, 0);
        pe_traffic.assign(n, 0);
    }

    int rows() const { return rows_; }
    int cols() const { return cols_; }

    size_t
    index(int r, int c) const
    {
        return size_t(r) * size_t(cols_) + size_t(c);
    }

    bool
    inGrid(int r, int c) const
    {
        return r >= 0 && c >= 0 && r < rows_ && c < cols_;
    }

    /** Device-cycle attribution (critical-instance decomposition). */
    uint64_t compute_cycles = 0;
    uint64_t noc_stall_cycles = 0;
    uint64_t mem_stall_cycles = 0;

    uint64_t
    attributedTotal() const
    {
        return compute_cycles + noc_stall_cycles + mem_stall_cycles;
    }

    // Spatial counters, row-major over the physical grid.
    std::vector<uint64_t> pe_busy;    ///< Cycles executing an op.
    std::vector<uint64_t> pe_wait;    ///< Cycles stalled for operands.
    std::vector<uint64_t> pe_ops;     ///< Dynamic operations executed.
    std::vector<uint64_t> pe_traffic; ///< Transfers terminating here.

    /** Shared-bus counters keyed by interconnect bus id. */
    std::map<int, LinkStats> links;

    /** Bus id -> grid anchor, for rendering links onto the heatmap. */
    std::map<int, std::pair<int, int>> link_coords;

    /** Memory-port contention wait (informational; inside MemStall). */
    uint64_t port_wait_cycles = 0;

    /** Transfers that fell back to the global bus (invalid position). */
    uint64_t fallback_transfers = 0;

    void merge(const AccelProfile &other);

  private:
    int rows_ = 0;
    int cols_ = 0;
};

/** One offload region's attributed cycles. */
struct OffloadRow
{
    uint32_t region_pc = 0;   ///< Loop head PC of the offloaded region.
    PhaseBreakdown phases;
    uint64_t total_cycles = 0; ///< Measured wall cycles of the offload.
    bool fallback = false;     ///< Region rejected; ran on the CPU.
};

/**
 * Activity concurrent with CPU progress under the current timing
 * model: real work, zero attributed wall cycles (see file comment).
 */
struct OverlappedActivity
{
    uint64_t monitor_iterations = 0; ///< Loop iterations run while
                                     ///< translation was in flight.
    uint64_t verify_checks = 0;      ///< Verifier gate invocations.
    uint64_t config_builds = 0;      ///< Bitstream generations.
};

/** A kernel's full profile: attribution + spatial + run context. */
struct KernelProfile
{
    std::string kernel;

    PhaseBreakdown phases;             ///< Sum over offloads.
    uint64_t total_offload_cycles = 0; ///< Measured; == phases.total().
    bool invariant_ok = false;         ///< Sum check result.

    std::vector<OffloadRow> offloads;
    OverlappedActivity overlapped;
    AccelProfile spatial;

    // Run context (informational).
    uint64_t total_cycles = 0; ///< Whole-run wall cycles.
    uint64_t cpu_cycles = 0;   ///< Cycles attributed to the CPU side.
    uint64_t accel_cycles = 0; ///< Device + reconfig cycles, as
                               ///< TransparentRunResult reports them.
    uint64_t iterations = 0;   ///< Loop iterations completed on device.
    uint64_t cache_hits = 0;   ///< Config-cache hits.
    uint64_t fallbacks = 0;    ///< Rejected offload attempts.

    /** Fraction of total offload cycles in bucket p (0 when idle). */
    double
    share(Phase p) const
    {
        if (total_offload_cycles == 0)
            return 0.0;
        return double(phases[p]) / double(total_offload_cycles);
    }
};

/** A whole-suite profile: per-kernel profiles plus the folded sums. */
struct SuiteProfile
{
    std::vector<KernelProfile> kernels;

    PhaseBreakdown phases;             ///< Sum over kernels.
    uint64_t total_offload_cycles = 0;
    bool invariant_ok = true;

    /** Fold a kernel into the suite totals. */
    void add(KernelProfile kp);
};

/**
 * Flatten a suite profile to "kernel.metric" -> value pairs, the
 * representation --baseline diffs and the history pipeline use.
 */
std::map<std::string, double> flattenProfile(const SuiteProfile &suite);

} // namespace mesa::prof

#endif // MESA_PROF_PROFILE_HH
