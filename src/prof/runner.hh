/**
 * @file
 * Profile runner: builds a private MESA system per kernel, attaches
 * an AccelProfile, runs the kernel transparently, and folds the
 * controller's OffloadStats into a KernelProfile whose taxonomy
 * buckets sum exactly to the measured offload cycles. Suite runs
 * shard kernel-by-kernel over util/parallel.hh with fully private
 * per-shard state, so every counter is byte-identical at any --jobs.
 *
 * Shared by the mesa_prof CLI and tests/test_prof.cc.
 */

#ifndef MESA_PROF_RUNNER_HH
#define MESA_PROF_RUNNER_HH

#include <vector>

#include "mesa/controller.hh"
#include "prof/profile.hh"
#include "workloads/kernel.hh"

namespace mesa::prof
{

/**
 * Per-offload wall cycles as the controller's timing model composes
 * them: translation + streaming/reconfig + scheduler wait + device
 * cycles + CPU fault re-execution. The profiled taxonomy must sum to
 * exactly this.
 */
uint64_t offloadWallCycles(const core::OffloadStats &os);

/** Fold one offload's stats into taxonomy buckets. */
OffloadRow attributeOffload(const core::OffloadStats &os);

/** Run one kernel under a fresh profiled system. */
KernelProfile profileKernel(const workloads::Kernel &kernel,
                            const core::MesaParams &params);

/** Profile a set of kernels, sharded over the thread pool. */
SuiteProfile profileSuite(const std::vector<workloads::Kernel> &kernels,
                          const core::MesaParams &params, int jobs);

} // namespace mesa::prof

#endif // MESA_PROF_RUNNER_HH
