#include "prof/report.hh"

#include <algorithm>

#include "util/json.hh"
#include "util/table.hh"

namespace mesa::prof
{

namespace
{

/** Phases that can carry cost under the current timing model. */
constexpr Phase kTablePhases[] = {
    Phase::Encode,    Phase::Map,      Phase::ConfigStream,
    Phase::Compute,   Phase::NocStall, Phase::MemStall,
    Phase::SchedWait, Phase::FaultRecovery,
};

std::string
percent(uint64_t part, uint64_t total)
{
    if (total == 0)
        return "-";
    return TextTable::num(100.0 * double(part) / double(total), 1) + "%";
}

void
writePhases(const PhaseBreakdown &pb, JsonWriter &w)
{
    w.beginObject();
    for (size_t i = 0; i < PhaseCount; ++i)
        w.field(phaseName(Phase(i)), pb.cycles[i]);
    w.end();
}

} // namespace

void
printProfileTable(const SuiteProfile &suite, std::ostream &os)
{
    TextTable t;
    std::vector<std::string> head{"kernel", "offload cyc"};
    for (Phase p : kTablePhases)
        head.push_back(phaseLabel(p));
    head.push_back("sum ok");
    t.header(head);

    auto addRow = [&t](const std::string &name, const PhaseBreakdown &pb,
                       uint64_t total, bool ok) {
        std::vector<std::string> cells{name, std::to_string(total)};
        for (Phase p : kTablePhases)
            cells.push_back(percent(pb[p], total));
        cells.push_back(ok ? "yes" : "NO");
        t.row(cells);
    };
    for (const auto &kp : suite.kernels) {
        addRow(kp.kernel, kp.phases, kp.total_offload_cycles,
               kp.invariant_ok);
    }
    addRow("suite", suite.phases, suite.total_offload_cycles,
           suite.invariant_ok);
    t.print(os);
    os << "(monitor/detect, config-gen and the verify gate run "
          "concurrently with the CPU in this timing model; their "
          "activity is in the JSON report's 'overlapped' section)\n";
}

void
writeHeatmapJson(const std::vector<uint64_t> &grid, int rows, int cols,
                 JsonWriter &w)
{
    w.beginObject();
    w.field("rows", rows);
    w.field("cols", cols);
    w.key("data").beginArray();
    for (uint64_t v : grid)
        w.value(v);
    w.end();
    w.end();
}

void
writeProfileJson(const SuiteProfile &suite, const ReportMeta &meta,
                 JsonWriter &w)
{
    w.beginObject();
    w.field("schema", "mesa-prof-1");
    w.key("meta")
        .beginObject()
        .field("accel", meta.accel)
        .field("scale", meta.scale)
        .end();

    w.key("kernels").beginArray();
    for (const auto &kp : suite.kernels) {
        w.beginObject();
        w.field("name", kp.kernel);
        w.field("total_offload_cycles", kp.total_offload_cycles);
        w.field("invariant_ok", kp.invariant_ok);
        w.key("phases");
        writePhases(kp.phases, w);

        w.key("offloads").beginArray();
        for (const auto &row : kp.offloads) {
            w.beginObject();
            w.field("region_pc", uint64_t(row.region_pc));
            w.field("total_cycles", row.total_cycles);
            w.field("fallback", row.fallback);
            w.key("phases");
            writePhases(row.phases, w);
            w.end();
        }
        w.end();

        w.key("overlapped")
            .beginObject()
            .field("monitor_iterations", kp.overlapped.monitor_iterations)
            .field("verify_checks", kp.overlapped.verify_checks)
            .field("config_builds", kp.overlapped.config_builds)
            .end();

        w.key("context")
            .beginObject()
            .field("total_cycles", kp.total_cycles)
            .field("cpu_cycles", kp.cpu_cycles)
            .field("accel_cycles", kp.accel_cycles)
            .field("iterations", kp.iterations)
            .field("cache_hits", kp.cache_hits)
            .field("fallbacks", kp.fallbacks)
            .end();

        const AccelProfile &sp = kp.spatial;
        w.key("spatial").beginObject();
        w.field("rows", sp.rows());
        w.field("cols", sp.cols());
        w.key("attribution")
            .beginObject()
            .field("compute", sp.compute_cycles)
            .field("noc_stall", sp.noc_stall_cycles)
            .field("mem_stall", sp.mem_stall_cycles)
            .end();
        w.key("pe_busy");
        writeHeatmapJson(sp.pe_busy, sp.rows(), sp.cols(), w);
        w.key("pe_wait");
        writeHeatmapJson(sp.pe_wait, sp.rows(), sp.cols(), w);
        w.key("pe_ops");
        writeHeatmapJson(sp.pe_ops, sp.rows(), sp.cols(), w);
        w.key("pe_traffic");
        writeHeatmapJson(sp.pe_traffic, sp.rows(), sp.cols(), w);
        w.key("links").beginArray();
        for (const auto &[bus, stats] : sp.links) {
            int lr = -1, lc = -1;
            if (auto it = sp.link_coords.find(bus);
                it != sp.link_coords.end()) {
                lr = it->second.first;
                lc = it->second.second;
            }
            w.beginObject()
                .field("bus", bus)
                .field("row", lr)
                .field("col", lc)
                .field("transfers", stats.transfers)
                .field("wait_cycles", stats.wait_cycles)
                .end();
        }
        w.end();
        w.field("port_wait_cycles", sp.port_wait_cycles);
        w.field("fallback_transfers", sp.fallback_transfers);
        w.end(); // spatial

        w.end(); // kernel
    }
    w.end(); // kernels

    w.key("suite")
        .beginObject()
        .field("total_offload_cycles", suite.total_offload_cycles)
        .field("invariant_ok", suite.invariant_ok);
    w.key("phases");
    writePhases(suite.phases, w);
    w.end();

    w.end(); // root
}

void
printHeatmaps(const KernelProfile &kp, std::ostream &os)
{
    const AccelProfile &sp = kp.spatial;
    static const char ramp[] = " .:-=+*#%@";
    auto draw = [&](const char *title,
                    const std::vector<uint64_t> &grid) {
        uint64_t max = 0;
        for (uint64_t v : grid)
            max = std::max(max, v);
        os << kp.kernel << " " << title << " (max " << max << ")\n";
        for (int r = 0; r < sp.rows(); ++r) {
            os << "  ";
            for (int c = 0; c < sp.cols(); ++c) {
                const uint64_t v = grid[sp.index(r, c)];
                size_t shade = 0;
                if (max > 0 && v > 0)
                    shade = 1 + size_t(v * 8 / max);
                os << ramp[std::min<size_t>(shade, 9)];
            }
            os << "\n";
        }
    };
    draw("PE busy cycles", sp.pe_busy);
    draw("PE operand-wait cycles", sp.pe_wait);
    draw("PE inbound traffic", sp.pe_traffic);

    if (!sp.links.empty()) {
        TextTable t;
        t.header({"bus", "anchor", "transfers", "wait cyc"});
        for (const auto &[bus, stats] : sp.links) {
            std::string anchor = "-";
            if (auto it = sp.link_coords.find(bus);
                it != sp.link_coords.end()) {
                anchor = "(" + std::to_string(it->second.first) + "," +
                         std::to_string(it->second.second) + ")";
            }
            t.row({std::to_string(bus), anchor,
                   std::to_string(stats.transfers),
                   std::to_string(stats.wait_cycles)});
        }
        os << kp.kernel << " NoC bus contention\n";
        t.print(os);
    }
}

void
writeCounterTrace(const SuiteProfile &suite, std::ostream &os)
{
    JsonWriter w;
    w.beginObject();
    w.key("traceEvents").beginArray();
    uint64_t ts = 0;
    for (const auto &kp : suite.kernels) {
        // A labeled instant marks the kernel position on the x-axis...
        w.beginObject()
            .field("name", kp.kernel)
            .field("ph", "i")
            .field("ts", ts)
            .field("pid", 0)
            .field("tid", 0)
            .field("s", "g")
            .end();
        // ...and one counter sample per taxonomy bucket stacks there.
        w.beginObject()
            .field("name", "offload cycle attribution")
            .field("ph", "C")
            .field("ts", ts)
            .field("pid", 0)
            .key("args")
            .beginObject();
        for (size_t i = 0; i < PhaseCount; ++i)
            w.field(phaseName(Phase(i)), kp.phases.cycles[i]);
        w.end().end();
        ts += 1000;
    }
    w.end().end();
    os << w.str() << "\n";
}

void
writePrometheus(const SuiteProfile &suite, const ReportMeta &meta,
                std::ostream &os)
{
    os << "# HELP mesa_prof_phase_cycles Attributed offload cycles per "
          "taxonomy bucket.\n";
    os << "# TYPE mesa_prof_phase_cycles gauge\n";
    for (const auto &kp : suite.kernels) {
        for (size_t i = 0; i < PhaseCount; ++i) {
            os << "mesa_prof_phase_cycles{kernel=\"" << kp.kernel
               << "\",phase=\"" << phaseName(Phase(i)) << "\",accel=\""
               << meta.accel << "\"} " << kp.phases.cycles[i] << "\n";
        }
    }
    os << "# HELP mesa_prof_offload_cycles Total attributed offload "
          "cycles per kernel.\n";
    os << "# TYPE mesa_prof_offload_cycles gauge\n";
    for (const auto &kp : suite.kernels) {
        os << "mesa_prof_offload_cycles{kernel=\"" << kp.kernel
           << "\"} " << kp.total_offload_cycles << "\n";
    }
    os << "# HELP mesa_prof_invariant_ok 1 when the attribution sum "
          "matches the measured offload cycles exactly.\n";
    os << "# TYPE mesa_prof_invariant_ok gauge\n";
    for (const auto &kp : suite.kernels) {
        os << "mesa_prof_invariant_ok{kernel=\"" << kp.kernel << "\"} "
           << (kp.invariant_ok ? 1 : 0) << "\n";
    }
    os << "# HELP mesa_prof_suite_offload_cycles Suite total.\n";
    os << "# TYPE mesa_prof_suite_offload_cycles gauge\n";
    os << "mesa_prof_suite_offload_cycles "
       << suite.total_offload_cycles << "\n";
}

} // namespace mesa::prof
