/**
 * @file
 * Area and power model seeded with the paper's FreePDK15 synthesis
 * results (Table 1) plus CACTI/McPAT-style estimates for memories and
 * the baseline CPU. Dynamic energy is activity-based: disabled
 * FPUs/ALUs are clock-gated and contribute no dynamic power (paper
 * §6.1); energy accumulates from the fraction of active components
 * per cycle.
 */

#ifndef MESA_POWER_ENERGY_MODEL_HH
#define MESA_POWER_ENERGY_MODEL_HH

#include <string>
#include <vector>

#include "accel/accelerator.hh"
#include "accel/params.hh"
#include "cpu/system.hh"

namespace mesa::power
{

/** One row of the Table 1 breakdown. */
struct ComponentRow
{
    std::string name;
    double area_um2 = 0.0;
    double power_w = 0.0; ///< Peak (fully active) power.
    int indent = 0;       ///< Hierarchy level for printing.
};

/** Energy of one accelerated run, split by subsystem (Fig. 13). */
struct EnergyBreakdown
{
    double compute_nj = 0.0; ///< PE ALU/FPU activity.
    double memory_nj = 0.0;  ///< LS entries, caches, DRAM.
    double noc_nj = 0.0;     ///< Interconnect transfers.
    double control_nj = 0.0; ///< MESA controller + control network.
    double static_nj = 0.0;  ///< Leakage over the run.

    double
    total() const
    {
        return compute_nj + memory_nj + noc_nj + control_nj + static_nj;
    }
};

/**
 * The power/area model for one accelerator configuration plus the
 * MESA controller and CPU-side additions.
 */
class PowerModel
{
  public:
    explicit PowerModel(const accel::AccelParams &accel,
                        double clock_ghz = 2.0);

    // --- Table 1 reproduction ---
    std::vector<ComponentRow> mesaExtensionRows() const;
    std::vector<ComponentRow> cpuAdditionRows() const;
    std::vector<ComponentRow> acceleratorRows() const;

    /** Total accelerator area in mm^2 (scales with PE count). */
    double acceleratorAreaMm2() const;

    /** MESA controller area in mm^2. */
    double mesaAreaMm2() const;

    // --- Energy accounting ---
    /**
     * Energy of an accelerated run from its activity counters,
     * including @p config_cycles of MESA controller activity.
     */
    EnergyBreakdown accelEnergy(const accel::AccelRunResult &run,
                                uint64_t config_cycles) const;

    /** Energy (nJ) of a CPU run (per-core McPAT-style model). */
    double cpuEnergyNj(const cpu::RunResult &run) const;

    double clockGhz() const { return clock_ghz_; }

    // Per-event energies (pJ), exposed for tests/ablation.
    struct EventEnergies
    {
        double int_op_pj = 22.0;    ///< Int PE incl. buffers/control.
        double fp_op_pj = 70.0;     ///< FP slice per-PE share.
        double pe_clock_pj = 0.3;   ///< Per configured-PE cycle (clock
                                    ///< tree of non-gated PEs).
        double noc_hop_pj = 4.0;
        double local_hop_pj = 0.6;
        double ls_entry_pj = 12.0;
        double l1_access_pj = 22.0;
        double l2_access_pj = 140.0;
        double dram_access_pj = 2200.0;
        double control_pj_per_iter = 150.0;

        // CPU-side (McPAT-flavored, per event).
        double cpu_epi_pj = 130.0;       ///< Frontend+rename+ROB etc.
        double cpu_fp_extra_pj = 60.0;
        double cpu_mem_extra_pj = 80.0;
        double cpu_mispredict_pj = 150.0;
        double cpu_static_w = 0.38;      ///< Per-core leakage+clock.
    };
    const EventEnergies &events() const { return events_; }

  private:
    accel::AccelParams accel_;
    double clock_ghz_;
    EventEnergies events_;

    /** Leakage power of the accelerator (W), ~8% of peak. */
    double accelStaticW() const;
};

} // namespace mesa::power

#endif // MESA_POWER_ENERGY_MODEL_HH
