#include "power/energy_model.hh"

namespace mesa::power
{

namespace
{

// Paper Table 1 constants (FreePDK15 synthesis, 128-PE reference).
constexpr double MesaTopAreaUm2 = 502000.0;
constexpr double MesaTopPowerW = 0.36;
constexpr double ArchModelAreaUm2 = 375000.0;
constexpr double ArchModelPowerW = 0.27;
constexpr double RenameAreaUm2 = 11417.5;
constexpr double RenamePowerW = 0.006161;
constexpr double LdfgAreaUm2 = 148483.6;
constexpr double LdfgPowerW = 0.09;
constexpr double ConvertAreaUm2 = 601.4;
constexpr double ConvertPowerW = 0.000465;
constexpr double MappingAreaUm2 = 208432.9;
constexpr double MappingPowerW = 0.13;
constexpr double LatOptAreaUm2 = 4060.4;
constexpr double LatOptPowerW = 0.003302;
constexpr double SdfgAreaUm2 = 201171.0;
constexpr double SdfgPowerW = 0.12;
constexpr double ConfigBlockAreaUm2 = 101357.9;
constexpr double ConfigBlockPowerW = 0.07;

constexpr double TraceCacheAreaUm2 = 27124.5;
constexpr double TraceCachePowerW = 0.015455;
constexpr double CtrlIfaceAreaUm2 = 3590.1;
constexpr double CtrlIfacePowerW = 0.003219;

// Accelerator (128-PE reference configuration).
constexpr double AccelTopAreaMm2 = 26.56;
constexpr double AccelTopPowerW = 11.65;
constexpr double PeArrayAreaMm2 = 14.95;
constexpr double PeArrayPowerW = 4.08;
constexpr double FpSliceAreaUm2 = 821889.1; // 2x2 slice
constexpr double FpSlicePowerW = 0.213107;
constexpr double IntPeAreaUm2 = 124374.9;
constexpr double IntPePowerW = 0.032159;
constexpr double NocAreaMm2 = 1.18;
constexpr double NocPowerW = 0.52;
constexpr double LsBuffersAreaMm2 = 9.62;
constexpr double LsBuffersPowerW = 6.77;

constexpr int ReferencePes = 128;

} // namespace

PowerModel::PowerModel(const accel::AccelParams &accel, double clock_ghz)
    : accel_(accel), clock_ghz_(clock_ghz)
{
}

std::vector<ComponentRow>
PowerModel::mesaExtensionRows() const
{
    return {
        {"MESA Top", MesaTopAreaUm2, MesaTopPowerW, 0},
        {"MESA ArchModel", ArchModelAreaUm2, ArchModelPowerW, 1},
        {"Instr. RenameTable", RenameAreaUm2, RenamePowerW, 2},
        {"LDFG", LdfgAreaUm2, LdfgPowerW, 2},
        {"Instr. Convert", ConvertAreaUm2, ConvertPowerW, 2},
        {"Instr. Mapping", MappingAreaUm2, MappingPowerW, 2},
        {"Latency Optimizer", LatOptAreaUm2, LatOptPowerW, 3},
        {"SDFG", SdfgAreaUm2, SdfgPowerW, 3},
        {"MESA ConfigBlock", ConfigBlockAreaUm2, ConfigBlockPowerW, 1},
    };
}

std::vector<ComponentRow>
PowerModel::cpuAdditionRows() const
{
    return {
        {"Trace Cache", TraceCacheAreaUm2, TraceCachePowerW, 0},
        {"Add'l Control / Interface", CtrlIfaceAreaUm2, CtrlIfacePowerW,
         0},
    };
}

std::vector<ComponentRow>
PowerModel::acceleratorRows() const
{
    const double scale =
        double(accel_.capacity()) / double(ReferencePes);
    return {
        {"Accelerator Top", AccelTopAreaMm2 * 1e6 * scale,
         AccelTopPowerW * scale, 0},
        {"PE Array", PeArrayAreaMm2 * 1e6 * scale, PeArrayPowerW * scale,
         1},
        {"FP Slice (2x2)", FpSliceAreaUm2, FpSlicePowerW, 2},
        {"Integer PE", IntPeAreaUm2, IntPePowerW, 2},
        {"NoC / Interconnect", NocAreaMm2 * 1e6 * scale,
         NocPowerW * scale, 1},
        {"LS Entries + Buffers", LsBuffersAreaMm2 * 1e6 * scale,
         LsBuffersPowerW * scale, 1},
    };
}

double
PowerModel::acceleratorAreaMm2() const
{
    return AccelTopAreaMm2 * double(accel_.capacity()) /
           double(ReferencePes);
}

double
PowerModel::mesaAreaMm2() const
{
    return MesaTopAreaUm2 / 1e6;
}

double
PowerModel::accelStaticW() const
{
    const double scale =
        double(accel_.capacity()) / double(ReferencePes);
    return 0.04 * AccelTopPowerW * scale;
}

EnergyBreakdown
PowerModel::accelEnergy(const accel::AccelRunResult &run,
                        uint64_t config_cycles) const
{
    EnergyBreakdown e;
    const auto &ev = events_;

    // Compute: busy PE cycles; clock-gated PEs contribute nothing.
    const double int_busy =
        double(run.pe_busy_cycles - run.fp_busy_cycles);
    e.compute_nj = (int_busy * ev.int_op_pj +
                    double(run.fp_busy_cycles) * ev.fp_op_pj +
                    double(run.cycles) * double(run.pes_used) *
                        ev.pe_clock_pj) *
                   1e-3;

    // Memory: LS entry activity + hierarchy traffic. L1/L2 splits
    // come from the access counts implied by the DRAM counter.
    const double accesses = double(run.loads + run.stores);
    const double dram = double(run.dram_accesses);
    e.memory_nj = (accesses * (ev.ls_entry_pj + ev.l1_access_pj) +
                   dram * (ev.l2_access_pj + ev.dram_access_pj)) *
                  1e-3;

    e.noc_nj = (double(run.noc_transfers) * ev.noc_hop_pj +
                double(run.local_transfers) * ev.local_hop_pj) *
               1e-3;

    // Control: per-iteration sequencing plus MESA controller activity
    // during configuration (MESA Top at full power for those cycles).
    const double config_ns = double(config_cycles) / clock_ghz_;
    e.control_nj = double(run.iterations) * ev.control_pj_per_iter *
                       1e-3 +
                   config_ns * MesaTopPowerW;

    // Leakage: unused tiles are power-gated, so static power scales
    // with the configured fraction of the array (plus an always-on
    // floor for the NoC spine and LS banks).
    const double used_frac =
        run.pes_total
            ? double(run.pes_used) / double(run.pes_total)
            : 1.0;
    const double run_ns = double(run.cycles) / clock_ghz_;
    e.static_nj = run_ns * accelStaticW() * (0.15 + 0.85 * used_frac);
    return e;
}

double
PowerModel::cpuEnergyNj(const cpu::RunResult &run) const
{
    const auto &ev = events_;
    double nj = double(run.instructions) * ev.cpu_epi_pj * 1e-3;
    nj += double(run.fp_ops) * ev.cpu_fp_extra_pj * 1e-3;
    nj += double(run.loads + run.stores) * ev.cpu_mem_extra_pj * 1e-3;
    nj += double(run.mispredicts) * ev.cpu_mispredict_pj * 1e-3;
    nj += double(run.dram_accesses) * ev.dram_access_pj * 1e-3;
    // Static power accrues per active core over the run's wall time.
    const double ns = double(run.cycles) / clock_ghz_;
    nj += ns * ev.cpu_static_w * double(run.threads);
    return nj;
}

} // namespace mesa::power
