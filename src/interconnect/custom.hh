/**
 * @file
 * User-defined interconnects, demonstrating MESA's backend-agnostic
 * contract: any latency function over coordinate pairs works as a
 * mapping target (paper §3.3, "MESA does not restrict the type of
 * interconnect used in the backend as long as it can model the
 * point-to-point communication latency").
 */

#ifndef MESA_INTERCONNECT_CUSTOM_HH
#define MESA_INTERCONNECT_CUSTOM_HH

#include <functional>
#include <utility>

#include "interconnect/interconnect.hh"

namespace mesa::ic
{

/** Interconnect defined by an arbitrary latency callback. */
class CustomInterconnect : public Interconnect
{
  public:
    using LatencyFn = std::function<uint32_t(Coord, Coord)>;
    using BusFn = std::function<int(Coord, Coord)>;

    CustomInterconnect(std::string name, LatencyFn latency,
                       BusFn bus = nullptr)
        : name_(std::move(name)), latency_(std::move(latency)),
          bus_(std::move(bus))
    {}

    uint32_t
    latency(Coord from, Coord to) const override
    {
        return latency_(from, to);
    }

    int
    busId(Coord from, Coord to) const override
    {
        return bus_ ? bus_(from, to) : -1;
    }

    const char *name() const override { return name_.c_str(); }

  private:
    std::string name_;
    LatencyFn latency_;
    BusFn bus_;
};

/**
 * Column-bus interconnect: free vertical broadcast within a column,
 * expensive horizontal moves. Exercises mapping behaviour on a
 * topology very unlike a mesh (used by the custom_interconnect
 * example and the backend-agnosticism tests).
 */
class ColumnBusInterconnect : public Interconnect
{
  public:
    explicit ColumnBusInterconnect(uint32_t horiz_cost = 4)
        : horiz_cost_(horiz_cost)
    {}

    uint32_t
    latency(Coord from, Coord to) const override
    {
        if (from.c == to.c)
            return 1;
        return horiz_cost_ * uint32_t(std::abs(from.c - to.c));
    }

    int
    busId(Coord from, Coord to) const override
    {
        return from.c == to.c ? to.c : -1;
    }

    const char *name() const override { return "column-bus"; }

  private:
    uint32_t horiz_cost_;
};

} // namespace mesa::ic

#endif // MESA_INTERCONNECT_CUSTOM_HH
