/**
 * @file
 * Folded interconnect for time-multiplexed mapping (extension; the
 * paper notes MESA's "current lack of support for time-multiplexing
 * PEs" as the limiter for small arrays). The mapper sees a virtual
 * grid of rows x tm_factor; each virtual row folds onto physical row
 * (r mod rows), so two instructions may share one PE in different
 * phases. Transfer latencies are those of the physical positions.
 */

#ifndef MESA_INTERCONNECT_FOLDED_HH
#define MESA_INTERCONNECT_FOLDED_HH

#include "interconnect/interconnect.hh"

namespace mesa::ic
{

/** Wraps a physical interconnect; folds virtual rows onto it. */
class FoldedInterconnect : public Interconnect
{
  public:
    /**
     * @param inner physical interconnect
     * @param physical_rows rows of the real grid; virtual coordinates
     *        fold as r mod physical_rows
     */
    FoldedInterconnect(const Interconnect &inner, int physical_rows)
        : inner_(inner), rows_(physical_rows)
    {}

    uint32_t
    latency(Coord from, Coord to) const override
    {
        return inner_.latency(fold(from), fold(to));
    }

    int
    busId(Coord from, Coord to) const override
    {
        return inner_.busId(fold(from), fold(to));
    }

    const char *name() const override { return "folded"; }

    Coord
    fold(Coord pos) const
    {
        return Coord{pos.r % rows_, pos.c};
    }

  private:
    const Interconnect &inner_;
    int rows_;
};

} // namespace mesa::ic

#endif // MESA_INTERCONNECT_FOLDED_HH
