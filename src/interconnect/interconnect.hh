/**
 * @file
 * Abstract point-to-point interconnect latency model. MESA is
 * backend-agnostic (paper §3.3): the only contract the mapper needs
 * is a function giving the data-transfer latency between two PE
 * coordinates, plus an optional shared-bus identifier so the
 * accelerator engine can model contention on NoC segments.
 */

#ifndef MESA_INTERCONNECT_INTERCONNECT_HH
#define MESA_INTERCONNECT_INTERCONNECT_HH

#include <cstdint>
#include <cstdlib>
#include <string>

namespace mesa::ic
{

/** A PE coordinate: row-major position in the accelerator grid. */
struct Coord
{
    int r = -1;
    int c = -1;

    bool operator==(const Coord &o) const { return r == o.r && c == o.c; }
    bool valid() const { return r >= 0 && c >= 0; }
};

/** Manhattan distance between two coordinates. */
inline int
manhattan(Coord a, Coord b)
{
    return std::abs(a.r - b.r) + std::abs(a.c - b.c);
}

/**
 * Interface for backend interconnect latency models. Implementations
 * must be fast: the mapper evaluates latency() for every candidate
 * position of every instruction.
 */
class Interconnect
{
  public:
    virtual ~Interconnect() = default;

    /** Data-transfer latency in cycles from PE @p from to PE @p to. */
    virtual uint32_t latency(Coord from, Coord to) const = 0;

    /**
     * Identifier of the shared bus segment a transfer occupies, or -1
     * if the transfer uses uncontended point-to-point links. The
     * accelerator engine serializes concurrent transfers with the
     * same bus id.
     */
    virtual int busId(Coord from, Coord to) const
    {
        (void)from;
        (void)to;
        return -1;
    }

    /**
     * Grid anchor of a shared-bus segment, for spatial profiling: the
     * coordinate of the ring stop / row buffer the bus id denotes.
     * Invalid coordinate when the id is unknown or the backend has no
     * meaningful placement for it.
     */
    virtual Coord
    busCoord(int bus) const
    {
        (void)bus;
        return {};
    }

    virtual const char *name() const = 0;
};

/** Plain 2D mesh: latency equals Manhattan distance (paper Fig. 4 Ex. 2). */
class MeshInterconnect : public Interconnect
{
  public:
    uint32_t
    latency(Coord from, Coord to) const override
    {
        const int d = manhattan(from, to);
        return d == 0 ? 1 : uint32_t(d);
    }

    const char *name() const override { return "mesh"; }
};

/**
 * Hierarchical row-slice interconnect (paper Fig. 4 Ex. 1):
 * single-cycle within a row, fixed cross-row latency.
 */
class HierRowInterconnect : public Interconnect
{
  public:
    explicit HierRowInterconnect(uint32_t cross_row_latency = 3)
        : cross_row_(cross_row_latency)
    {}

    uint32_t
    latency(Coord from, Coord to) const override
    {
        return from.r == to.r ? 1 : cross_row_;
    }

    int
    busId(Coord from, Coord to) const override
    {
        // Cross-row transfers share the destination row's bus.
        return from.r == to.r ? -1 : to.r;
    }

    Coord
    busCoord(int bus) const override
    {
        return bus >= 0 ? Coord{bus, 0} : Coord{};
    }

    const char *name() const override { return "hier-row"; }

  private:
    uint32_t cross_row_;
};

/**
 * The custom test accelerator's interconnect (paper §5.2, Fig. 9):
 * direct single-cycle links to immediate neighbors (gray), plus a
 * lightweight half-ring NoC with routing logic at every @p slice_width
 * PEs (blue) for distant transfers. NoC transfers pay inject + eject
 * plus per-slice horizontal hops and per-row vertical hops, and they
 * contend on the destination row's bus segment.
 */
class AccelNocInterconnect : public Interconnect
{
  public:
    AccelNocInterconnect(int rows, int cols, int slice_width = 4)
        : rows_(rows), cols_(cols), slice_width_(slice_width)
    {}

    uint32_t
    latency(Coord from, Coord to) const override
    {
        const int dr = std::abs(from.r - to.r);
        const int dc = std::abs(from.c - to.c);
        const int d = dr + dc;
        if (d <= 3) {
            // Direct local links; multi-hop transfers route through
            // intermediate PEs' forwarding paths at one cycle per hop.
            return d == 0 ? 1 : uint32_t(d);
        }
        // NoC: 1 inject + 1 eject + horizontal slice hops + vertical
        // row hops. The half-ring wraps, so horizontal distance is the
        // shorter way around.
        const int hslices =
            (std::min(dc, cols_ - dc) + slice_width_ - 1) / slice_width_;
        return uint32_t(2 + hslices + dr);
    }

    int
    busId(Coord from, Coord to) const override
    {
        const int dr = std::abs(from.r - to.r);
        const int dc = std::abs(from.c - to.c);
        if (dr + dc <= 3)
            return -1;
        // Routing logic sits at every slice (4 PEs), so transfers to
        // different destination slices occupy different ring stops.
        return to.r * 64 + to.c / slice_width_;
    }

    Coord
    busCoord(int bus) const override
    {
        if (bus < 0)
            return {};
        return {bus / 64, (bus % 64) * slice_width_};
    }

    const char *name() const override { return "accel-noc"; }

    int rows() const { return rows_; }
    int cols() const { return cols_; }
    int sliceWidth() const { return slice_width_; }

  private:
    int rows_;
    int cols_;
    int slice_width_;
};

} // namespace mesa::ic

#endif // MESA_INTERCONNECT_INTERCONNECT_HH
