#include "util/stats.hh"

#include <iomanip>

namespace mesa
{

void
StatGroup::merge(const StatGroup &other)
{
    for (const auto &[key, value] : other.values())
        add(key, value);
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[key, value] : values_) {
        os << name_ << "." << key << " " << std::setprecision(6) << value
           << "\n";
    }
}

} // namespace mesa
