#include "util/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace mesa
{

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TextTable::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

void
TextTable::print(std::ostream &os) const
{
    // Compute per-column widths over header and all rows.
    std::vector<size_t> widths;
    auto account = [&](const std::vector<std::string> &cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    account(header_);
    for (const auto &r : rows_)
        account(r);

    if (!title_.empty())
        os << "== " << title_ << " ==\n";

    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cells.size(); ++i) {
            os << std::left << std::setw(static_cast<int>(widths[i]) + 2)
               << cells[i];
        }
        os << "\n";
    };

    if (!header_.empty()) {
        emit(header_);
        size_t total = 0;
        for (size_t w : widths)
            total += w + 2;
        os << std::string(total, '-') << "\n";
    }
    for (const auto &r : rows_)
        emit(r);
}

} // namespace mesa
