/**
 * @file
 * Category-based debug tracing, in the spirit of gem5's debug flags.
 * Enable categories programmatically (Debug::enable("mapper")) or via
 * the MESA_DEBUG environment variable (comma-separated list, or "all").
 * Disabled categories cost one hash lookup per DTRACE site.
 */

#ifndef MESA_UTIL_DEBUG_HH
#define MESA_UTIL_DEBUG_HH

#include <cstdlib>
#include <iostream>
#include <set>
#include <sstream>
#include <string>

namespace mesa
{

/** Global debug-category registry. */
class Debug
{
  public:
    /** Enable one category (or "all"). */
    static void enable(const std::string &category)
    {
        instance().categories_.insert(category);
    }

    /** Disable one category. */
    static void disable(const std::string &category)
    {
        instance().categories_.erase(category);
    }

    /** Disable everything. */
    static void clear() { instance().categories_.clear(); }

    /** Is a category active? */
    static bool
    enabled(const std::string &category)
    {
        const auto &cats = instance().categories_;
        return cats.count("all") > 0 || cats.count(category) > 0;
    }

    /** Redirect trace output (tests capture it here). */
    static void
    setStream(std::ostream *os)
    {
        instance().stream_ = os;
    }

    static std::ostream &
    stream()
    {
        return *instance().stream_;
    }

  private:
    Debug()
    {
        if (const char *env = std::getenv("MESA_DEBUG")) {
            std::istringstream in(env);
            std::string cat;
            while (std::getline(in, cat, ','))
                if (!cat.empty())
                    categories_.insert(cat);
        }
    }

    static Debug &
    instance()
    {
        static Debug d;
        return d;
    }

    std::set<std::string> categories_;
    std::ostream *stream_ = &std::cerr;
};

/** Trace a message under a category: DTRACE("mapper", "placed i" << i). */
#define DTRACE(category, expr)                                           \
    do {                                                                  \
        if (::mesa::Debug::enabled(category)) {                           \
            ::mesa::Debug::stream()                                       \
                << category << ": " << expr << "\n";                      \
        }                                                                 \
    } while (0)

} // namespace mesa

#endif // MESA_UTIL_DEBUG_HH
