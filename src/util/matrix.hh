/**
 * @file
 * Small dense row-major 2D matrix used for the mapper's placement
 * matrix F, the binary free matrix F_free, and per-operation masking
 * matrices F_op (paper §3.3).
 */

#ifndef MESA_UTIL_MATRIX_HH
#define MESA_UTIL_MATRIX_HH

#include <cstddef>
#include <vector>

#include "util/logging.hh"

namespace mesa
{

/** Row-major dense matrix with bounds-checked element access. */
template <typename T>
class Matrix
{
  public:
    Matrix() = default;

    Matrix(size_t rows, size_t cols, T init = T{})
        : rows_(rows), cols_(cols), data_(rows * cols, init)
    {}

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }
    size_t size() const { return data_.size(); }

    T &
    at(size_t r, size_t c)
    {
        MESA_ASSERT(r < rows_ && c < cols_, "matrix index (", r, ",", c,
                    ") out of range (", rows_, "x", cols_, ")");
        return data_[r * cols_ + c];
    }

    const T &
    at(size_t r, size_t c) const
    {
        MESA_ASSERT(r < rows_ && c < cols_, "matrix index (", r, ",", c,
                    ") out of range (", rows_, "x", cols_, ")");
        return data_[r * cols_ + c];
    }

    /** Unchecked access for hot paths. */
    T &operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
    const T &
    operator()(size_t r, size_t c) const
    {
        return data_[r * cols_ + c];
    }

    void fill(const T &v) { std::fill(data_.begin(), data_.end(), v); }

    /** Count elements equal to v. */
    size_t
    count(const T &v) const
    {
        size_t n = 0;
        for (const auto &x : data_)
            if (x == v)
                ++n;
        return n;
    }

    bool
    operator==(const Matrix &other) const
    {
        return rows_ == other.rows_ && cols_ == other.cols_ &&
               data_ == other.data_;
    }

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<T> data_;
};

} // namespace mesa

#endif // MESA_UTIL_MATRIX_HH
