/**
 * @file
 * Plain-text table printer used by the benchmark harnesses to emit the
 * rows/series of the paper's tables and figures.
 */

#ifndef MESA_UTIL_TABLE_HH
#define MESA_UTIL_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace mesa
{

/**
 * Accumulates rows of string cells and prints them with aligned
 * columns. Numeric helpers format doubles with fixed precision.
 */
class TextTable
{
  public:
    explicit TextTable(std::string title = "") : title_(std::move(title)) {}

    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row; cell count may differ from the header. */
    void row(std::vector<std::string> cells);

    /** Format a double with the given precision. */
    static std::string num(double v, int precision = 2);

    /** Print the table with aligned columns and a rule under the header. */
    void print(std::ostream &os) const;

    size_t rows() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace mesa

#endif // MESA_UTIL_TABLE_HH
