/**
 * @file
 * Per-cycle capacity pool: models a resource with N identical slots
 * per cycle (memory ports, functional units). Unlike a next-free-time
 * vector, booking a far-future cycle never blocks earlier idle
 * cycles, so bursty late-ready requests don't falsely starve
 * early-ready ones.
 */

#ifndef MESA_UTIL_SLOT_POOL_HH
#define MESA_UTIL_SLOT_POOL_HH

#include <cstdint>
#include <unordered_map>

namespace mesa
{

/** A resource with fixed per-cycle capacity. */
class SlotPool
{
  public:
    explicit SlotPool(unsigned capacity) : capacity_(capacity) {}

    /**
     * Book one slot at the first cycle >= ready with spare capacity.
     * @return the booked cycle.
     */
    uint64_t
    acquire(uint64_t ready)
    {
        const uint64_t cycle = skipFull(ready);
        unsigned &count = used_[cycle];
        ++count;
        // Saturated cycles get a skip link so later requests jump the
        // whole full span instead of walking it cycle by cycle (a
        // runaway region held only by the watchdog would otherwise
        // make the walk quadratic in the booking count).
        if (count >= capacity_)
            next_free_[cycle] = cycle + 1;
        maybePrune(ready);
        return cycle;
    }

    unsigned capacity() const { return capacity_; }

    void
    reset()
    {
        used_.clear();
        next_free_.clear();
    }

  private:
    /** First cycle >= @p cycle that is not fully booked, following
     *  skip links with path compression (bookings never release, so
     *  a link can only become stale in the conservative direction). */
    uint64_t
    skipFull(uint64_t cycle)
    {
        auto it = next_free_.find(cycle);
        while (it != next_free_.end()) {
            const auto chase = next_free_.find(it->second);
            if (chase == next_free_.end()) {
                cycle = it->second;
                break;
            }
            it->second = chase->second; // path halving
            cycle = chase->second;
            it = next_free_.find(cycle);
        }
        return cycle;
    }

    void
    maybePrune(uint64_t ready)
    {
        // Requests are approximately monotone; bookkeeping far behind
        // the current horizon can be dropped. The guard band keeps
        // occasional out-of-order requests accurate. The predicate
        // erase drops exactly the keys the old ordered-map range
        // erase did, without paying red-black-tree rebalancing on
        // every acquire().
        if (used_.size() < 65536)
            return;
        const uint64_t floor = ready > 16384 ? ready - 16384 : 0;
        std::erase_if(used_,
                      [floor](const auto &kv) { return kv.first < floor; });
        std::erase_if(next_free_,
                      [floor](const auto &kv) { return kv.first < floor; });
    }

    unsigned capacity_;
    std::unordered_map<uint64_t, unsigned> used_;
    /** cycle -> next possibly-free cycle, for fully booked cycles. */
    std::unordered_map<uint64_t, uint64_t> next_free_;
};

} // namespace mesa

#endif // MESA_UTIL_SLOT_POOL_HH
