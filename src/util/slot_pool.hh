/**
 * @file
 * Per-cycle capacity pool: models a resource with N identical slots
 * per cycle (memory ports, functional units). Unlike a next-free-time
 * vector, booking a far-future cycle never blocks earlier idle
 * cycles, so bursty late-ready requests don't falsely starve
 * early-ready ones.
 */

#ifndef MESA_UTIL_SLOT_POOL_HH
#define MESA_UTIL_SLOT_POOL_HH

#include <cstdint>
#include <map>

namespace mesa
{

/** A resource with fixed per-cycle capacity. */
class SlotPool
{
  public:
    explicit SlotPool(unsigned capacity) : capacity_(capacity) {}

    /**
     * Book one slot at the first cycle >= ready with spare capacity.
     * @return the booked cycle.
     */
    uint64_t
    acquire(uint64_t ready)
    {
        uint64_t cycle = ready;
        auto it = used_.lower_bound(cycle);
        while (it != used_.end() && it->first == cycle &&
               it->second >= capacity_) {
            ++cycle;
            ++it;
        }
        ++used_[cycle];
        maybePrune(ready);
        return cycle;
    }

    unsigned capacity() const { return capacity_; }

    void reset() { used_.clear(); }

  private:
    void
    maybePrune(uint64_t ready)
    {
        // Requests are approximately monotone; bookkeeping far behind
        // the current horizon can be dropped. The guard band keeps
        // occasional out-of-order requests accurate.
        if (used_.size() < 65536)
            return;
        const uint64_t floor = ready > 16384 ? ready - 16384 : 0;
        used_.erase(used_.begin(), used_.lower_bound(floor));
    }

    unsigned capacity_;
    std::map<uint64_t, unsigned> used_;
};

} // namespace mesa

#endif // MESA_UTIL_SLOT_POOL_HH
