#include "util/stats_registry.hh"

#include <iomanip>

#include "util/json.hh"
#include "util/logging.hh"

namespace mesa
{

StatsDiff
diffStatValues(const std::map<std::string, double> &before,
               const std::map<std::string, double> &after,
               double rel_tolerance)
{
    StatsDiff diff;
    auto withinTolerance = [rel_tolerance](double a, double b) {
        if (a == b)
            return true;
        if (a == 0.0) // no relative scale; any move is a change
            return false;
        double rel = (b - a) / a;
        return (rel < 0 ? -rel : rel) <= rel_tolerance;
    };
    for (const auto &[path, old_value] : before) {
        auto it = after.find(path);
        if (it == after.end()) {
            diff.removed.push_back(path);
            continue;
        }
        if (!withinTolerance(old_value, it->second))
            diff.changed.push_back({path, old_value, it->second});
    }
    for (const auto &[path, value] : after) {
        (void)value;
        if (!before.count(path))
            diff.added.push_back(path);
    }
    return diff;
}

const std::string &
StatsRegistry::snapshotLabel(size_t i) const
{
    MESA_ASSERT(i < snapshots_.size(), "snapshot index out of range");
    return snapshots_[i].label;
}

const std::map<std::string, double> &
StatsRegistry::snapshotValues(size_t i) const
{
    MESA_ASSERT(i < snapshots_.size(), "snapshot index out of range");
    return snapshots_[i].values;
}

StatsDiff
StatsRegistry::diffSnapshots(size_t before, size_t after,
                             double rel_tolerance) const
{
    return diffStatValues(snapshotValues(before), snapshotValues(after),
                          rel_tolerance);
}

void
StatsRegistry::checkInsertable(const std::string &path) const
{
    if (path.empty() || path.front() == '.' || path.back() == '.' ||
        path.find("..") != std::string::npos) {
        panic("StatsRegistry: malformed path '", path, "'");
    }
    if (entries_.count(path))
        panic("StatsRegistry: duplicate path '", path, "'");
    // A leaf may not also be an interior node of the dotted tree:
    // reject any registered path that extends this one...
    auto it = entries_.lower_bound(path + ".");
    if (it != entries_.end() && it->first.compare(0, path.size() + 1,
                                                  path + ".") == 0) {
        panic("StatsRegistry: path '", path,
              "' is a prefix of registered '", it->first, "'");
    }
    // ...and any ancestor of this one that is already a leaf.
    for (size_t dot = path.find('.'); dot != std::string::npos;
         dot = path.find('.', dot + 1)) {
        const std::string ancestor = path.substr(0, dot);
        if (entries_.count(ancestor)) {
            panic("StatsRegistry: registered path '", ancestor,
                  "' is a prefix of '", path, "'");
        }
    }
}

StatsRegistry::Entry &
StatsRegistry::insert(const std::string &path, Entry e)
{
    checkInsertable(path);
    return entries_.emplace(path, std::move(e)).first->second;
}

Counter &
StatsRegistry::counter(const std::string &path)
{
    auto owned = std::make_shared<Counter>(path);
    Entry e;
    e.kind = Kind::CounterStat;
    e.counter = owned.get();
    e.owned = owned;
    insert(path, std::move(e));
    return *owned;
}

Average &
StatsRegistry::average(const std::string &path)
{
    auto owned = std::make_shared<Average>();
    Entry e;
    e.kind = Kind::AverageStat;
    e.average = owned.get();
    e.owned = owned;
    insert(path, std::move(e));
    return *owned;
}

Histogram &
StatsRegistry::histogram(const std::string &path, size_t num_buckets,
                         double bucket_width)
{
    auto owned = std::make_shared<Histogram>(num_buckets, bucket_width);
    Entry e;
    e.kind = Kind::HistogramStat;
    e.histogram = owned.get();
    e.owned = owned;
    insert(path, std::move(e));
    return *owned;
}

void
StatsRegistry::linkCounter(const std::string &path, const Counter &c)
{
    Entry e;
    e.kind = Kind::CounterStat;
    e.counter = &c;
    insert(path, std::move(e));
}

void
StatsRegistry::linkAverage(const std::string &path, const Average &a)
{
    Entry e;
    e.kind = Kind::AverageStat;
    e.average = &a;
    insert(path, std::move(e));
}

void
StatsRegistry::linkHistogram(const std::string &path, const Histogram &h)
{
    Entry e;
    e.kind = Kind::HistogramStat;
    e.histogram = &h;
    insert(path, std::move(e));
}

void
StatsRegistry::scalar(const std::string &path, double value)
{
    auto it = entries_.find(path);
    if (it != entries_.end()) {
        if (it->second.kind != Kind::Scalar)
            panic("StatsRegistry: duplicate path '", path, "'");
        it->second.scalar = value;
        return;
    }
    Entry e;
    e.kind = Kind::Scalar;
    e.scalar = value;
    insert(path, std::move(e));
}

bool
StatsRegistry::has(const std::string &path) const
{
    return entries_.count(path) > 0;
}

double
StatsRegistry::scalarView(const Entry &e)
{
    switch (e.kind) {
      case Kind::CounterStat: return double(e.counter->value());
      case Kind::AverageStat: return e.average->mean();
      case Kind::HistogramStat: return e.histogram->mean();
      case Kind::Scalar: return e.scalar;
    }
    return 0.0;
}

double
StatsRegistry::value(const std::string &path) const
{
    auto it = entries_.find(path);
    return it == entries_.end() ? 0.0 : scalarView(it->second);
}

std::map<std::string, double>
StatsRegistry::flatValues() const
{
    std::map<std::string, double> out;
    for (const auto &[path, e] : entries_)
        out[path] = scalarView(e);
    return out;
}

void
StatsRegistry::dump(std::ostream &os) const
{
    for (const auto &[path, e] : entries_) {
        os << std::setprecision(6);
        switch (e.kind) {
          case Kind::HistogramStat: {
            const Histogram &h = *e.histogram;
            os << path << ".samples " << h.samples() << "\n";
            os << path << ".mean " << h.mean() << "\n";
            os << path << ".min " << h.min() << "\n";
            os << path << ".max " << h.max() << "\n";
            os << path << ".underflow " << h.underflow() << "\n";
            os << path << ".overflow " << h.overflow() << "\n";
            break;
          }
          case Kind::CounterStat:
            os << path << " " << e.counter->value() << "\n";
            break;
          default:
            os << path << " " << scalarView(e) << "\n";
            break;
        }
    }
}

void
StatsRegistry::toJson(JsonWriter &w) const
{
    w.beginObject();
    w.key("stats").beginObject();

    // The map is lexicographically sorted, so a stack of open dotted
    // prefixes renders the tree in one pass: close scopes down to the
    // common prefix, open scopes for the new segments, emit the leaf.
    std::vector<std::string> open; // currently open segment names
    auto segments = [](const std::string &path) {
        std::vector<std::string> segs;
        size_t start = 0;
        for (size_t dot = path.find('.'); dot != std::string::npos;
             dot = path.find('.', start)) {
            segs.push_back(path.substr(start, dot - start));
            start = dot + 1;
        }
        segs.push_back(path.substr(start));
        return segs;
    };

    for (const auto &[path, e] : entries_) {
        const auto segs = segments(path);
        size_t common = 0;
        while (common < open.size() && common + 1 < segs.size() &&
               open[common] == segs[common]) {
            ++common;
        }
        while (open.size() > common) {
            w.end();
            open.pop_back();
        }
        for (size_t i = common; i + 1 < segs.size(); ++i) {
            w.key(segs[i]).beginObject();
            open.push_back(segs[i]);
        }

        w.key(segs.back());
        switch (e.kind) {
          case Kind::CounterStat:
            w.value(e.counter->value());
            break;
          case Kind::AverageStat:
            w.beginObject()
                .field("mean", e.average->mean())
                .field("count", e.average->count())
                .end();
            break;
          case Kind::HistogramStat: {
            const Histogram &h = *e.histogram;
            w.beginObject()
                .field("samples", h.samples())
                .field("mean", h.mean())
                .field("min", h.min())
                .field("max", h.max())
                .field("underflow", h.underflow())
                .field("overflow", h.overflow())
                .field("bucket_width", h.bucketWidth())
                .key("buckets")
                .beginArray();
            for (uint64_t b : h.buckets())
                w.value(b);
            w.end().end();
            break;
          }
          case Kind::Scalar:
            w.value(e.scalar);
            break;
        }
    }
    while (!open.empty()) {
        w.end();
        open.pop_back();
    }
    w.end(); // stats

    w.key("snapshots").beginArray();
    for (const auto &snap : snapshots_) {
        w.beginObject().field("label", snap.label).key("values")
            .beginObject();
        for (const auto &[path, v] : snap.values)
            w.field(path, v);
        w.end().end();
    }
    w.end(); // snapshots

    w.end(); // root object
}

void
StatsRegistry::materialize()
{
    for (auto &[path, e] : entries_) {
        if (e.owned || e.kind == Kind::Scalar)
            continue;
        switch (e.kind) {
          case Kind::CounterStat: {
            auto copy = std::make_shared<Counter>(*e.counter);
            e.counter = copy.get();
            e.owned = std::move(copy);
            break;
          }
          case Kind::AverageStat: {
            auto copy = std::make_shared<Average>(*e.average);
            e.average = copy.get();
            e.owned = std::move(copy);
            break;
          }
          case Kind::HistogramStat: {
            auto copy = std::make_shared<Histogram>(*e.histogram);
            e.histogram = copy.get();
            e.owned = std::move(copy);
            break;
          }
          case Kind::Scalar:
            break;
        }
    }
}

void
StatsRegistry::snapshot(const std::string &label)
{
    Snapshot s;
    s.label = label;
    s.values = flatValues();
    snapshots_.push_back(std::move(s));
}

void
StatsRegistry::clear()
{
    entries_.clear();
    snapshots_.clear();
}

} // namespace mesa
