/**
 * @file
 * Minimal JSON writer for machine-readable reports (CLI --json,
 * bench post-processing). Supports objects, arrays, numbers, bools,
 * and escaped strings; no parsing, no dependencies.
 */

#ifndef MESA_UTIL_JSON_HH
#define MESA_UTIL_JSON_HH

#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace mesa
{

/**
 * Streaming JSON writer with explicit begin/end nesting. Keys are
 * only valid inside objects; values only inside arrays or after a
 * key. Misuse is caught by the validity checks in str().
 */
class JsonWriter
{
  public:
    JsonWriter &
    beginObject()
    {
        comma();
        os_ << "{";
        stack_.push_back('}');
        first_ = true;
        return *this;
    }

    JsonWriter &
    beginArray()
    {
        comma();
        os_ << "[";
        stack_.push_back(']');
        first_ = true;
        return *this;
    }

    JsonWriter &
    end()
    {
        if (!stack_.empty()) {
            os_ << stack_.back();
            stack_.pop_back();
        }
        first_ = false;
        return *this;
    }

    JsonWriter &
    key(const std::string &name)
    {
        comma();
        os_ << quote(name) << ":";
        pending_key_ = true;
        return *this;
    }

    JsonWriter &value(const std::string &v) { return raw(quote(v)); }
    JsonWriter &value(const char *v) { return raw(quote(v)); }
    JsonWriter &value(bool v) { return raw(v ? "true" : "false"); }

    JsonWriter &
    value(double v)
    {
        if (!std::isfinite(v))
            return raw("null");
        std::ostringstream tmp;
        tmp << v;
        return raw(tmp.str());
    }

    JsonWriter &value(uint64_t v) { return raw(std::to_string(v)); }
    JsonWriter &value(int64_t v) { return raw(std::to_string(v)); }
    JsonWriter &value(int v) { return raw(std::to_string(v)); }
    JsonWriter &value(unsigned v) { return raw(std::to_string(v)); }

    /** key + value in one call. */
    template <typename T>
    JsonWriter &
    field(const std::string &name, const T &v)
    {
        key(name);
        return value(v);
    }

    /** Finished document (all scopes must be closed). */
    std::string
    str() const
    {
        return os_.str() + std::string(stack_.rbegin(), stack_.rend());
    }

    bool balanced() const { return stack_.empty(); }

  private:
    void
    comma()
    {
        if (pending_key_) {
            pending_key_ = false;
            return;
        }
        if (!first_ && !stack_.empty())
            os_ << ",";
        first_ = false;
    }

    JsonWriter &
    raw(const std::string &text)
    {
        if (pending_key_)
            pending_key_ = false;
        else
            comma();
        os_ << text;
        return *this;
    }

    static std::string
    quote(const std::string &s)
    {
        std::string out = "\"";
        for (char c : s) {
            switch (c) {
              case '"': out += "\\\""; break;
              case '\\': out += "\\\\"; break;
              case '\n': out += "\\n"; break;
              case '\t': out += "\\t"; break;
              default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
            }
        }
        return out + "\"";
    }

    std::ostringstream os_;
    std::vector<char> stack_;
    bool first_ = true;
    bool pending_key_ = false;
};

} // namespace mesa

#endif // MESA_UTIL_JSON_HH
