/**
 * @file
 * Logging and error-reporting primitives, modeled after gem5's
 * base/logging.hh conventions: panic() for internal invariant
 * violations, fatal() for user/configuration errors, and a leveled,
 * thread-safe structured logger for status messages that never stop
 * the simulation. Every log line carries a severity and a subsystem
 * tag ("warn: [sched] ..."); the global threshold is runtime-settable
 * (CLI --log-level, or the MESA_LOG_LEVEL environment variable) and
 * a disabled level costs one relaxed atomic load per call site.
 */

#ifndef MESA_UTIL_LOGGING_HH
#define MESA_UTIL_LOGGING_HH

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>

namespace mesa
{

/** Exception thrown by panic(): a simulator bug (broken invariant). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Exception thrown by fatal(): a user error (bad configuration). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail
{

inline void
formatTo(std::ostringstream &os)
{
    (void)os;
}

template <typename T, typename... Args>
void
formatTo(std::ostringstream &os, const T &first, const Args &...rest)
{
    os << first;
    formatTo(os, rest...);
}

template <typename... Args>
std::string
formatMessage(const Args &...args)
{
    std::ostringstream os;
    formatTo(os, args...);
    return os.str();
}

} // namespace detail

/**
 * Report an internal error that should never happen regardless of user
 * input. Throws PanicError so tests can assert on broken invariants.
 */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    throw PanicError("panic: " + detail::formatMessage(args...));
}

/**
 * Report an unrecoverable error caused by the user (bad configuration,
 * invalid arguments). Throws FatalError.
 */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    throw FatalError("fatal: " + detail::formatMessage(args...));
}

/** Log severities, most severe first. */
enum class LogLevel
{
    Error = 0, ///< Unexpected but survivable condition.
    Warn = 1,  ///< Functionality might not behave as expected.
    Info = 2,  ///< Normal status messages.
    Debug = 3, ///< Verbose diagnostics (DTRACE covers categories).
};

inline const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Error: return "error";
      case LogLevel::Warn: return "warn";
      case LogLevel::Info: return "info";
      case LogLevel::Debug: return "debug";
    }
    return "?";
}

inline std::optional<LogLevel>
logLevelByName(const std::string &name)
{
    if (name == "error")
        return LogLevel::Error;
    if (name == "warn" || name == "warning")
        return LogLevel::Warn;
    if (name == "info")
        return LogLevel::Info;
    if (name == "debug")
        return LogLevel::Debug;
    return std::nullopt;
}

/**
 * The global structured logger. Each line is "<level>: [<subsystem>]
 * <message>", written under a mutex so concurrent shards never tear
 * lines. The level check is lock-free; only lines that pass it pay
 * for formatting and the lock.
 */
class Logger
{
  public:
    static Logger &
    global()
    {
        static Logger logger;
        return logger;
    }

    bool
    enabled(LogLevel level) const
    {
        return int(level) <= level_.load(std::memory_order_relaxed);
    }

    void
    setLevel(LogLevel level)
    {
        level_.store(int(level), std::memory_order_relaxed);
    }

    LogLevel
    level() const
    {
        return LogLevel(level_.load(std::memory_order_relaxed));
    }

    /** Redirect output (tests capture it here); nullptr -> stderr. */
    void
    setStream(std::ostream *os)
    {
        std::lock_guard<std::mutex> lock(m_);
        stream_ = os ? os : &std::cerr;
    }

    void
    write(LogLevel level, const std::string &subsystem,
          const std::string &message)
    {
        // Compose first so one << keeps the line atomic per stream
        // guarantee under the lock.
        std::string line = std::string(logLevelName(level)) + ": [" +
                           subsystem + "] " + message + "\n";
        std::lock_guard<std::mutex> lock(m_);
        *stream_ << line;
    }

  private:
    Logger()
    {
        if (const char *env = std::getenv("MESA_LOG_LEVEL")) {
            if (auto level = logLevelByName(env))
                level_.store(int(*level), std::memory_order_relaxed);
        }
    }

    std::atomic<int> level_{int(LogLevel::Info)};
    std::mutex m_;
    std::ostream *stream_ = &std::cerr;
};

/** Log at an explicit level with a subsystem tag. */
template <typename... Args>
void
logAt(LogLevel level, const std::string &subsystem, const Args &...args)
{
    Logger &logger = Logger::global();
    if (!logger.enabled(level))
        return;
    logger.write(level, subsystem, detail::formatMessage(args...));
}

template <typename... Args>
void
logError(const std::string &subsystem, const Args &...args)
{
    logAt(LogLevel::Error, subsystem, args...);
}

template <typename... Args>
void
logWarn(const std::string &subsystem, const Args &...args)
{
    logAt(LogLevel::Warn, subsystem, args...);
}

template <typename... Args>
void
logInfo(const std::string &subsystem, const Args &...args)
{
    logAt(LogLevel::Info, subsystem, args...);
}

template <typename... Args>
void
logDebug(const std::string &subsystem, const Args &...args)
{
    logAt(LogLevel::Debug, subsystem, args...);
}

/** Warn about functionality that might not behave as expected. */
template <typename... Args>
void
warn(const Args &...args)
{
    logAt(LogLevel::Warn, "mesa", args...);
}

/** Print a normal informational status message. */
template <typename... Args>
void
inform(const Args &...args)
{
    logAt(LogLevel::Info, "mesa", args...);
}

/** Panic if the condition does not hold. */
#define MESA_ASSERT(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::mesa::panic("assertion '", #cond, "' failed at ", __FILE__,   \
                          ":", __LINE__, " ", ##__VA_ARGS__);               \
        }                                                                   \
    } while (0)

} // namespace mesa

#endif // MESA_UTIL_LOGGING_HH
