/**
 * @file
 * Logging and error-reporting primitives, modeled after gem5's
 * base/logging.hh conventions: panic() for internal invariant
 * violations, fatal() for user/configuration errors, warn()/inform()
 * for status messages that never stop the simulation.
 */

#ifndef MESA_UTIL_LOGGING_HH
#define MESA_UTIL_LOGGING_HH

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace mesa
{

/** Exception thrown by panic(): a simulator bug (broken invariant). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Exception thrown by fatal(): a user error (bad configuration). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail
{

inline void
formatTo(std::ostringstream &os)
{
    (void)os;
}

template <typename T, typename... Args>
void
formatTo(std::ostringstream &os, const T &first, const Args &...rest)
{
    os << first;
    formatTo(os, rest...);
}

template <typename... Args>
std::string
formatMessage(const Args &...args)
{
    std::ostringstream os;
    formatTo(os, args...);
    return os.str();
}

} // namespace detail

/**
 * Report an internal error that should never happen regardless of user
 * input. Throws PanicError so tests can assert on broken invariants.
 */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    throw PanicError("panic: " + detail::formatMessage(args...));
}

/**
 * Report an unrecoverable error caused by the user (bad configuration,
 * invalid arguments). Throws FatalError.
 */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    throw FatalError("fatal: " + detail::formatMessage(args...));
}

/** Warn about functionality that might not behave as expected. */
template <typename... Args>
void
warn(const Args &...args)
{
    std::cerr << "warn: " << detail::formatMessage(args...) << "\n";
}

/** Print a normal informational status message. */
template <typename... Args>
void
inform(const Args &...args)
{
    std::cout << "info: " << detail::formatMessage(args...) << "\n";
}

/** Panic if the condition does not hold. */
#define MESA_ASSERT(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::mesa::panic("assertion '", #cond, "' failed at ", __FILE__,   \
                          ":", __LINE__, " ", ##__VA_ARGS__);               \
        }                                                                   \
    } while (0)

} // namespace mesa

#endif // MESA_UTIL_LOGGING_HH
