/**
 * @file
 * Minimal recursive-descent JSON reader, the read-side complement of
 * util/json.hh's JsonWriter. It exists so tools can load their own
 * reports back (mesa_prof --baseline, BENCH_history.jsonl, heatmap
 * round-trip tests) without an external dependency. It parses the
 * full JSON grammar the writer emits; \uXXXX escapes outside ASCII
 * are preserved as '?' since no report uses them.
 */

#ifndef MESA_UTIL_JSON_PARSE_HH
#define MESA_UTIL_JSON_PARSE_HH

#include <cctype>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mesa
{

/** A parsed JSON document node. */
struct JsonValue
{
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> items;
    std::map<std::string, JsonValue> members;

    bool isNull() const { return type == Type::Null; }
    bool isObject() const { return type == Type::Object; }
    bool isArray() const { return type == Type::Array; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }

    /** Member lookup; nullptr when absent or not an object. */
    const JsonValue *
    find(const std::string &key) const
    {
        if (type != Type::Object)
            return nullptr;
        auto it = members.find(key);
        return it == members.end() ? nullptr : &it->second;
    }

    double
    asNumber(double fallback = 0.0) const
    {
        return type == Type::Number ? number : fallback;
    }

    std::string
    asString(const std::string &fallback = {}) const
    {
        return type == Type::String ? str : fallback;
    }
};

namespace detail
{

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    std::optional<JsonValue>
    parse()
    {
        JsonValue v;
        if (!parseValue(v))
            return std::nullopt;
        skipSpace();
        if (pos_ != text_.size())
            return std::nullopt; // trailing garbage
        return v;
    }

  private:
    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        skipSpace();
        if (pos_ >= text_.size())
            return false;
        char c = text_[pos_];
        switch (c) {
          case '{': return parseObject(out);
          case '[': return parseArray(out);
          case '"': {
            out.type = JsonValue::Type::String;
            return parseString(out.str);
          }
          case 't':
            out.type = JsonValue::Type::Bool;
            out.boolean = true;
            return literal("true");
          case 'f':
            out.type = JsonValue::Type::Bool;
            out.boolean = false;
            return literal("false");
          case 'n':
            out.type = JsonValue::Type::Null;
            return literal("null");
          default: return parseNumber(out);
        }
    }

    bool
    parseObject(JsonValue &out)
    {
        out.type = JsonValue::Type::Object;
        ++pos_; // '{'
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipSpace();
            std::string key;
            if (!parseString(key))
                return false;
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return false;
            ++pos_;
            JsonValue v;
            if (!parseValue(v))
                return false;
            out.members.emplace(std::move(key), std::move(v));
            skipSpace();
            if (pos_ >= text_.size())
                return false;
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    parseArray(JsonValue &out)
    {
        out.type = JsonValue::Type::Array;
        ++pos_; // '['
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue v;
            if (!parseValue(v))
                return false;
            out.items.push_back(std::move(v));
            skipSpace();
            if (pos_ >= text_.size())
                return false;
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    parseString(std::string &out)
    {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return false;
        ++pos_;
        out.clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                return false;
            char esc = text_[pos_++];
            switch (esc) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return false;
                unsigned code =
                    unsigned(std::strtoul(text_.substr(pos_, 4).c_str(),
                                          nullptr, 16));
                pos_ += 4;
                out.push_back(code < 0x80 ? char(code) : '?');
                break;
              }
              default: return false;
            }
        }
        return false; // unterminated
    }

    bool
    parseNumber(JsonValue &out)
    {
        size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return false;
        char *end = nullptr;
        std::string token = text_.substr(start, pos_ - start);
        out.type = JsonValue::Type::Number;
        out.number = std::strtod(token.c_str(), &end);
        return end && *end == '\0';
    }

    const std::string &text_;
    size_t pos_ = 0;
};

} // namespace detail

/** Parse one JSON document; nullopt on any syntax error. */
inline std::optional<JsonValue>
parseJson(const std::string &text)
{
    return detail::JsonParser(text).parse();
}

} // namespace mesa

#endif // MESA_UTIL_JSON_PARSE_HH
