/**
 * @file
 * Lightweight statistics package: named scalar counters, averages, and
 * histograms grouped under a StatGroup, in the spirit of gem5's stats
 * framework but sized for this simulator.
 */

#ifndef MESA_UTIL_STATS_HH
#define MESA_UTIL_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "util/logging.hh"

namespace mesa
{

/** A named monotonically increasing scalar statistic. */
class Counter
{
  public:
    Counter() = default;
    explicit Counter(std::string name) : name_(std::move(name)) {}

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(uint64_t n) { value_ += n; return *this; }

    uint64_t value() const { return value_; }
    const std::string &name() const { return name_; }
    void reset() { value_ = 0; }

  private:
    std::string name_;
    uint64_t value_ = 0;
};

/** Running average of samples (used for measured latencies, AMAT). */
class Average
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
    }

    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    void reset() { sum_ = 0.0; count_ = 0; }

  private:
    double sum_ = 0.0;
    uint64_t count_ = 0;
};

/** Fixed-bucket histogram for latency distributions. */
class Histogram
{
  public:
    /**
     * @param num_buckets number of equal-width buckets
     * @param bucket_width width of each bucket; samples beyond the last
     *                     bucket accumulate in an overflow bucket, and
     *                     negative samples in an underflow bucket
     */
    explicit Histogram(size_t num_buckets = 16, double bucket_width = 4.0)
        : buckets_(num_buckets, 0), width_(bucket_width)
    {
        // Constructed in-line by many components, so validate here
        // (a zero/negative width would fold every sample into bucket
        // 0 or, worse, index with a huge negative-division result).
        if (!(bucket_width > 0.0))
            fatal("Histogram: bucket_width must be positive, got ",
                  bucket_width);
        if (num_buckets == 0)
            fatal("Histogram: need at least one bucket");
    }

    void
    sample(double v)
    {
        ++samples_;
        sum_ += v;
        if (samples_ == 1) {
            min_ = max_ = v;
        } else {
            if (v < min_) min_ = v;
            if (v > max_) max_ = v;
        }
        // A negative sample must not cast to size_t (it would wrap to
        // a huge index and silently land in overflow).
        if (v < 0.0) {
            ++underflow_;
            return;
        }
        const size_t idx = static_cast<size_t>(v / width_);
        if (idx >= buckets_.size())
            ++overflow_;
        else
            ++buckets_[idx];
    }

    /**
     * Nearest-rank quantile estimate from the bucketed distribution,
     * q in [0, 1]. Returns the upper edge of the bucket holding the
     * ceil(q * samples)-th smallest sample (clamped to the observed
     * max), so the estimate never under-reports: it sits within one
     * bucket width above the exact sorted-sample quantile. Ranks that
     * land in the underflow bucket report the true minimum, ranks in
     * the overflow bucket the true maximum; 0 before any sample.
     */
    double
    percentile(double q) const
    {
        if (samples_ == 0)
            return 0.0;
        if (q < 0.0) q = 0.0;
        if (q > 1.0) q = 1.0;
        uint64_t rank =
            static_cast<uint64_t>(std::ceil(q * double(samples_)));
        if (rank == 0)
            rank = 1;
        if (rank > samples_)
            rank = samples_;
        if (rank <= underflow_)
            return min_;
        uint64_t cumulative = underflow_;
        for (size_t i = 0; i < buckets_.size(); ++i) {
            cumulative += buckets_[i];
            if (cumulative >= rank)
                return std::min(max_, double(i + 1) * width_);
        }
        return max_; // Rank falls in the overflow bucket.
    }

    double p50() const { return percentile(0.50); }
    double p99() const { return percentile(0.99); }
    double p999() const { return percentile(0.999); }

    uint64_t samples() const { return samples_; }
    double mean() const { return samples_ ? sum_ / samples_ : 0.0; }
    /** True minimum/maximum of all samples; 0 before any sample. */
    double min() const { return samples_ ? min_ : 0.0; }
    double max() const { return samples_ ? max_ : 0.0; }
    uint64_t underflow() const { return underflow_; }
    uint64_t overflow() const { return overflow_; }
    double bucketWidth() const { return width_; }
    const std::vector<uint64_t> &buckets() const { return buckets_; }

    void
    reset()
    {
        std::fill(buckets_.begin(), buckets_.end(), 0);
        underflow_ = 0;
        overflow_ = 0;
        samples_ = 0;
        sum_ = 0.0;
        min_ = 0.0;
        max_ = 0.0;
    }

  private:
    std::vector<uint64_t> buckets_;
    double width_;
    uint64_t underflow_ = 0;
    uint64_t overflow_ = 0;
    uint64_t samples_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A named collection of scalar statistics that can be dumped in one
 * shot. Components register values keyed by dotted names.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    void set(const std::string &key, double v) { values_[key] = v; }

    /** Add to a key, treating a missing key as an explicit 0.0. */
    void
    add(const std::string &key, double v)
    {
        auto [it, inserted] = values_.try_emplace(key, 0.0);
        it->second += v;
    }

    /**
     * Fold another group into this one, adding values key-by-key
     * (missing keys start at 0.0). Lets multi-offload runs accumulate
     * per-offload groups without manual loops.
     */
    void merge(const StatGroup &other);

    double
    get(const std::string &key) const
    {
        auto it = values_.find(key);
        return it == values_.end() ? 0.0 : it->second;
    }

    bool has(const std::string &key) const { return values_.count(key) > 0; }
    const std::map<std::string, double> &values() const { return values_; }
    const std::string &name() const { return name_; }

    /** Dump all stats as "group.key value" lines. */
    void dump(std::ostream &os) const;

  private:
    std::string name_;
    std::map<std::string, double> values_;
};

} // namespace mesa

#endif // MESA_UTIL_STATS_HH
