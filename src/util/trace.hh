/**
 * @file
 * Cycle-timeline event tracer: components record begin/end spans and
 * instant events on named tracks, timestamped in simulated cycles, and
 * the whole timeline exports as Chrome trace-event JSON (load it in
 * Perfetto or chrome://tracing). Tracing is off by default and the
 * active() check is the only cost at an instrumented site — the same
 * idiom as DTRACE, so disabled runs pay nothing measurable.
 *
 * Timeline model: the simulator has no global cycle loop (see
 * ARCHITECTURE.md "Timing philosophy"), so the tracer keeps a *time
 * base* that phase drivers move as simulated time interleaves between
 * components. The controller advances the base past each accelerator
 * epoch; components with only a local timeline (the accelerator
 * engine, the LS entries) emit through the *Local variants, which add
 * the base. The CPU-side drivers publish the core's committed cycle
 * via setCycle() so passive observers (the region monitor) can stamp
 * events with now() without owning a clock.
 */

#ifndef MESA_UTIL_TRACE_HH
#define MESA_UTIL_TRACE_HH

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace mesa
{

/** One named argument attached to a trace event. */
struct TraceArg
{
    TraceArg(std::string k, double v)
        : key(std::move(k)), num(v), is_num(true)
    {}
    TraceArg(std::string k, uint64_t v)
        : key(std::move(k)), num(double(v)), is_num(true)
    {}
    TraceArg(std::string k, int v)
        : key(std::move(k)), num(double(v)), is_num(true)
    {}
    TraceArg(std::string k, std::string v)
        : key(std::move(k)), str(std::move(v))
    {}
    TraceArg(std::string k, const char *v)
        : key(std::move(k)), str(v)
    {}

    std::string key;
    std::string str;
    double num = 0.0;
    bool is_num = false;
};

/** One recorded timeline event. */
struct TraceEvent
{
    uint16_t track = 0;       ///< Index into the track-name table.
    bool instant = false;     ///< Instant event ("i") vs span ("X").
    std::string name;
    uint64_t start = 0;       ///< Absolute simulated cycle.
    uint64_t duration = 0;    ///< Span length (0 for instants).
    std::vector<TraceArg> args;
};

/**
 * The global event tracer. All emission goes through the singleton;
 * sites must guard with Tracer::active() so a disabled tracer costs
 * one branch and performs zero allocations or writes.
 *
 * Thread safety: the singleton is a Meyers static (first use from any
 * worker thread is race-free), the enabled flag is atomic, and event
 * emission takes an internal mutex so concurrent emitters never tear
 * the buffers. Event *order* under concurrent emission is whatever
 * the lock arbitration yields, which is why parallelForOrdered()
 * downgrades to its serial path while the tracer records — the
 * exported timeline must be deterministic (see util/parallel.hh).
 * Inspection/export accessors are not synchronized: quiesce workers
 * (join the pool) before exporting.
 */
class Tracer
{
  public:
    static Tracer &global();

    /** Is tracing enabled? The per-site gate — check before emitting. */
    static bool
    active()
    {
        return global().enabled_.load(std::memory_order_relaxed);
    }

    void
    enable(bool on = true)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    // ----- time base (see file comment) -----
    void setBase(uint64_t base) { base_ = base; }
    uint64_t base() const { return base_; }
    /** Publish the driving component's current local cycle. */
    void setCycle(uint64_t cycle) { cycle_ = cycle; }
    /** Current absolute simulated cycle: base + published cycle. */
    uint64_t now() const { return base_ + cycle_; }

    // ----- emission (absolute timestamps) -----
    void span(const std::string &track, const std::string &name,
              uint64_t start, uint64_t duration,
              std::initializer_list<TraceArg> args = {});
    void instant(const std::string &track, const std::string &name,
                 uint64_t at, std::initializer_list<TraceArg> args = {});

    // ----- emission (local timestamps, shifted by the base) -----
    void
    spanLocal(const std::string &track, const std::string &name,
              uint64_t start, uint64_t duration,
              std::initializer_list<TraceArg> args = {})
    {
        span(track, name, base_ + start, duration, args);
    }

    void
    instantLocal(const std::string &track, const std::string &name,
                 uint64_t at, std::initializer_list<TraceArg> args = {})
    {
        instant(track, name, base_ + at, args);
    }

    // ----- inspection / export -----
    size_t eventCount() const { return events_.size(); }
    const std::vector<TraceEvent> &events() const { return events_; }
    const std::vector<std::string> &tracks() const { return tracks_; }
    uint64_t droppedEvents() const { return dropped_; }

    /**
     * Write the whole timeline as a Chrome trace-event JSON array:
     * one thread_name metadata record per track, then every span
     * ("ph":"X") and instant ("ph":"i") with cycle timestamps.
     */
    void exportJson(std::ostream &os) const;

    /** Forget all recorded events, tracks, and the time base. */
    void clear();

    /** Cap on buffered events; further emissions count as dropped. */
    void setMaxEvents(size_t n) { max_events_ = n; }

  private:
    Tracer() = default;

    uint16_t trackId(const std::string &track);

    std::atomic<bool> enabled_{false};
    std::mutex emit_m_; ///< Guards events_/tracks_/dropped_ writes.
    uint64_t base_ = 0;
    uint64_t cycle_ = 0;
    uint64_t dropped_ = 0;
    size_t max_events_ = 4'000'000;
    std::vector<std::string> tracks_;
    std::vector<TraceEvent> events_;
};

} // namespace mesa

#endif // MESA_UTIL_TRACE_HH
