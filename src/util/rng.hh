/**
 * @file
 * Deterministic pseudo-random number generator for seeded fault
 * campaigns. SplitMix64 (Steele et al.) is used instead of the
 * standard-library engines/distributions because its output is fully
 * specified: the same seed produces the same fault plan on every
 * platform and standard library, which is what makes campaign results
 * reproducible in CI.
 */

#ifndef MESA_UTIL_RNG_HH
#define MESA_UTIL_RNG_HH

#include <cstdint>

namespace mesa
{

/** SplitMix64: tiny, fast, and portable across standard libraries. */
class SplitMix64
{
  public:
    explicit SplitMix64(uint64_t seed = 0) : state_(seed) {}

    uint64_t
    next()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform value in [0, bound); bound 0 returns 0. */
    uint64_t
    below(uint64_t bound)
    {
        return bound ? next() % bound : 0;
    }

    /** Uniform value in [lo, hi]. */
    uint64_t
    range(uint64_t lo, uint64_t hi)
    {
        return hi > lo ? lo + below(hi - lo + 1) : lo;
    }

    /** A guaranteed-nonzero 32-bit corruption mask. */
    uint32_t
    mask32()
    {
        const uint32_t m = uint32_t(next());
        return m ? m : 1u;
    }

    /**
     * Derive an independent stream: mixes the tag through one
     * SplitMix64 round so campaigns can key sub-streams by (kernel,
     * injection index) without correlating them.
     */
    SplitMix64
    fork(uint64_t tag) const
    {
        SplitMix64 child(state_ ^ (tag * 0x9e3779b97f4a7c15ull));
        child.next();
        return child;
    }

  private:
    uint64_t state_;
};

} // namespace mesa

#endif // MESA_UTIL_RNG_HH
