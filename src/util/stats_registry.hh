/**
 * @file
 * Hierarchical statistics registry: components register Counter /
 * Average / Histogram objects (or plain scalar results) under dotted
 * paths like "cpu0.rob.stalls" or "mesa.mapper.imap_iters", and the
 * registry renders them all in one walk — gem5-style text via dump()
 * or nested JSON via toJson(). Live stats can be registered by
 * reference (link*) so hot-path components keep bumping their own
 * counters with no indirection; registry-owned stats (counter() /
 * average() / histogram()) cover components without their own storage.
 *
 * Duplicate paths, and paths that would make a leaf both a value and
 * an object in the JSON tree (one registered path being a dotted
 * prefix of another), are rejected with panic().
 */

#ifndef MESA_UTIL_STATS_REGISTRY_HH
#define MESA_UTIL_STATS_REGISTRY_HH

#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "util/stats.hh"

namespace mesa
{

class JsonWriter;

/**
 * Difference between two flattened stat maps (snapshots, registries,
 * or loaded baseline reports): which paths appeared, which vanished,
 * and which values moved by more than a relative tolerance.
 */
struct StatsDiff
{
    struct Change
    {
        std::string path;
        double before = 0.0;
        double after = 0.0;

        /** Relative delta vs before (absolute delta if before == 0). */
        double
        relDelta() const
        {
            if (before == 0.0)
                return after;
            return (after - before) / before;
        }
    };

    std::vector<std::string> added;   ///< In after only.
    std::vector<std::string> removed; ///< In before only.
    std::vector<Change> changed;      ///< Value moved beyond tolerance.

    bool
    empty() const
    {
        return added.empty() && removed.empty() && changed.empty();
    }
};

/**
 * Diff two stat maps. A path counts as changed when the relative delta
 * exceeds rel_tolerance (exact inequality when the tolerance is 0).
 */
StatsDiff diffStatValues(const std::map<std::string, double> &before,
                         const std::map<std::string, double> &after,
                         double rel_tolerance = 0.0);

/** The registry. Not copyable (linked stats reference live objects). */
class StatsRegistry
{
  public:
    StatsRegistry() = default;
    StatsRegistry(const StatsRegistry &) = delete;
    StatsRegistry &operator=(const StatsRegistry &) = delete;

    // ----- registry-owned stats (create and return a reference) -----
    Counter &counter(const std::string &path);
    Average &average(const std::string &path);
    Histogram &histogram(const std::string &path, size_t num_buckets = 16,
                         double bucket_width = 4.0);

    // ----- externally owned stats, registered by reference -----
    void linkCounter(const std::string &path, const Counter &c);
    void linkAverage(const std::string &path, const Average &a);
    void linkHistogram(const std::string &path, const Histogram &h);

    /**
     * Register (or update) a plain scalar value. Re-setting an
     * existing scalar path overwrites it; colliding with a non-scalar
     * registration panics like any other duplicate.
     */
    void scalar(const std::string &path, double value);

    bool has(const std::string &path) const;
    size_t size() const { return entries_.size(); }

    /**
     * Scalar view of one stat: a counter's value, an average's mean,
     * a histogram's mean, or the scalar itself. 0.0 when absent.
     */
    double value(const std::string &path) const;

    /** Every stat flattened to its scalar view, keyed by path. */
    std::map<std::string, double> flatValues() const;

    /** Dump "path value" lines (histograms expand to summary rows). */
    void dump(std::ostream &os) const;

    /**
     * Emit the whole registry as one JSON object: a "stats" tree
     * nested by dotted-path segments (histograms render as objects
     * with buckets) and a "snapshots" array of labeled epoch records.
     */
    void toJson(JsonWriter &w) const;

    /** Record a labeled snapshot of every stat's scalar view. */
    void snapshot(const std::string &label);
    size_t snapshotCount() const { return snapshots_.size(); }

    /** A snapshot's label / flattened values, by recording order. */
    const std::string &snapshotLabel(size_t i) const;
    const std::map<std::string, double> &snapshotValues(size_t i) const;

    /** Diff two recorded snapshots (by index, panics out of range). */
    StatsDiff diffSnapshots(size_t before, size_t after,
                            double rel_tolerance = 0.0) const;

    /**
     * Copy every externally linked stat into registry-owned storage,
     * so the registry stays valid after the linked components are
     * destroyed. Call when the measured system is torn down but the
     * registry is rendered later.
     */
    void materialize();

    /** Drop all registrations and snapshots. */
    void clear();

  private:
    enum class Kind { CounterStat, AverageStat, HistogramStat, Scalar };

    struct Entry
    {
        Kind kind = Kind::Scalar;
        const Counter *counter = nullptr;
        const Average *average = nullptr;
        const Histogram *histogram = nullptr;
        double scalar = 0.0;
        // Owning storage for registry-created stats; the const
        // pointers above alias it so rendering is uniform.
        std::shared_ptr<void> owned;
    };

    struct Snapshot
    {
        std::string label;
        std::map<std::string, double> values;
    };

    /** Validate the path and panic on duplicates/prefix conflicts. */
    void checkInsertable(const std::string &path) const;
    Entry &insert(const std::string &path, Entry e);
    static double scalarView(const Entry &e);

    std::map<std::string, Entry> entries_;
    std::vector<Snapshot> snapshots_;
};

} // namespace mesa

#endif // MESA_UTIL_STATS_REGISTRY_HH
