/**
 * @file
 * Minimal binary archive: a byte-appending writer and a bounds-checked
 * reader used by the persistent translation store to serialize
 * translated regions. The encoding is explicit little-endian with
 * doubles carried as IEEE-754 bit patterns, so files written on one
 * host parse identically on any other and byte-compare across runs.
 *
 * The reader is fail-sticky: any read past the end sets a sticky
 * error flag and returns zero, so deserializers can run a straight-
 * line sequence of reads and test ok() once at the end instead of
 * checking every call. Container counts must still be validated
 * against remaining() before reserving memory (see readCount in the
 * translation store) so a corrupt length cannot drive an allocation.
 */

#ifndef MESA_UTIL_ARCHIVE_HH
#define MESA_UTIL_ARCHIVE_HH

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>

namespace mesa
{

/** Append-only little-endian byte stream. */
class BinaryWriter
{
  public:
    void
    u8(uint8_t v)
    {
        data_.push_back(char(v));
    }

    void
    u32(uint32_t v)
    {
        u8(uint8_t(v));
        u8(uint8_t(v >> 8));
        u8(uint8_t(v >> 16));
        u8(uint8_t(v >> 24));
    }

    void
    u64(uint64_t v)
    {
        u32(uint32_t(v));
        u32(uint32_t(v >> 32));
    }

    void i32(int32_t v) { u32(uint32_t(v)); }
    void i64(int64_t v) { u64(uint64_t(v)); }
    void f64(double v) { u64(std::bit_cast<uint64_t>(v)); }
    void boolean(bool v) { u8(v ? 1 : 0); }

    const std::string &data() const { return data_; }
    size_t size() const { return data_.size(); }

  private:
    std::string data_;
};

/** Bounds-checked little-endian reader over a byte buffer. */
class BinaryReader
{
  public:
    BinaryReader(const void *data, size_t size)
        : data_(static_cast<const uint8_t *>(data)), size_(size)
    {}

    uint8_t
    u8()
    {
        if (pos_ + 1 > size_) {
            fail_ = true;
            return 0;
        }
        return data_[pos_++];
    }

    uint32_t
    u32()
    {
        if (pos_ + 4 > size_) {
            fail_ = true;
            pos_ = size_;
            return 0;
        }
        uint32_t v = 0;
        std::memcpy(&v, data_ + pos_, 4);
        pos_ += 4;
        if constexpr (std::endian::native == std::endian::big)
            v = __builtin_bswap32(v);
        return v;
    }

    uint64_t
    u64()
    {
        const uint64_t lo = u32();
        const uint64_t hi = u32();
        return lo | (hi << 32);
    }

    int32_t i32() { return int32_t(u32()); }
    int64_t i64() { return int64_t(u64()); }
    double f64() { return std::bit_cast<double>(u64()); }
    bool boolean() { return u8() != 0; }

    bool ok() const { return !fail_; }
    size_t remaining() const { return size_ - pos_; }

  private:
    const uint8_t *data_;
    size_t size_;
    size_t pos_ = 0;
    bool fail_ = false;
};

} // namespace mesa

#endif // MESA_UTIL_ARCHIVE_HH
