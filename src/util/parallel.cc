#include "util/parallel.hh"

#include <algorithm>
#include <exception>

#include "util/trace.hh"

namespace mesa
{

int
defaultJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? int(hw) : 1;
}

int
resolveJobs(int jobs)
{
    return jobs <= 0 ? defaultJobs() : jobs;
}

ThreadPool::ThreadPool(int threads)
{
    const size_t k = size_t(std::max(1, threads));
    workers_.reserve(k);
    for (size_t i = 0; i < k; ++i)
        workers_.push_back(std::make_unique<Worker>());
    threads_.reserve(k);
    for (size_t i = 0; i < k; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(sleep_m_);
        stop_.store(true, std::memory_order_relaxed);
    }
    sleep_cv_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    const size_t slot =
        next_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
    {
        std::lock_guard<std::mutex> lk(workers_[slot]->m);
        workers_[slot]->q.push_back(std::move(task));
    }
    {
        // Pair the count bump with the sleep mutex so a worker cannot
        // check the predicate and doze between our bump and notify.
        std::lock_guard<std::mutex> lk(sleep_m_);
        queued_.fetch_add(1, std::memory_order_relaxed);
    }
    sleep_cv_.notify_one();
}

bool
ThreadPool::tryPop(size_t self, std::function<void()> &out)
{
    // Own deque first (front), then steal from siblings (back).
    {
        Worker &w = *workers_[self];
        std::lock_guard<std::mutex> lk(w.m);
        if (!w.q.empty()) {
            out = std::move(w.q.front());
            w.q.pop_front();
            return true;
        }
    }
    for (size_t off = 1; off < workers_.size(); ++off) {
        Worker &w = *workers_[(self + off) % workers_.size()];
        std::lock_guard<std::mutex> lk(w.m);
        if (!w.q.empty()) {
            out = std::move(w.q.back());
            w.q.pop_back();
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(size_t self)
{
    for (;;) {
        std::function<void()> task;
        if (tryPop(self, task)) {
            queued_.fetch_sub(1, std::memory_order_relaxed);
            task();
            continue;
        }
        std::unique_lock<std::mutex> lk(sleep_m_);
        sleep_cv_.wait(lk, [this] {
            return stop_.load(std::memory_order_relaxed) ||
                   queued_.load(std::memory_order_relaxed) > 0;
        });
        if (stop_.load(std::memory_order_relaxed) &&
            queued_.load(std::memory_order_relaxed) == 0) {
            return;
        }
    }
}

void
parallelForOrdered(size_t n, int jobs,
                   const std::function<void(size_t)> &work,
                   const std::function<void(size_t)> &commit)
{
    if (n == 0)
        return;
    jobs = resolveJobs(jobs);

    // Serial path: --jobs 1, a single shard, or an active tracer
    // (events carry no shard identity, so only serial execution keeps
    // the timeline deterministic). This is byte-for-byte the loop the
    // parallel path reproduces.
    if (jobs <= 1 || n == 1 || Tracer::active()) {
        for (size_t i = 0; i < n; ++i) {
            work(i);
            if (commit)
                commit(i);
        }
        return;
    }

    struct Shared
    {
        std::mutex m;
        std::condition_variable cv;
        std::vector<char> done;
        std::vector<char> ran;
        std::vector<std::exception_ptr> errors;
        std::atomic<bool> cancelled{false};
    };
    Shared sh;
    sh.done.assign(n, 0);
    sh.ran.assign(n, 0);
    sh.errors.assign(n, nullptr);

    {
        ThreadPool pool(int(std::min<size_t>(size_t(jobs), n)));
        for (size_t i = 0; i < n; ++i) {
            pool.submit([i, &sh, &work] {
                std::exception_ptr err;
                bool ran = false;
                if (!sh.cancelled.load(std::memory_order_relaxed)) {
                    ran = true;
                    try {
                        work(i);
                    } catch (...) {
                        err = std::current_exception();
                        sh.cancelled.store(
                            true, std::memory_order_relaxed);
                    }
                }
                std::lock_guard<std::mutex> lk(sh.m);
                sh.done[i] = 1;
                sh.ran[i] = ran ? 1 : 0;
                sh.errors[i] = err;
                sh.cv.notify_all();
            });
        }

        // Ordered commit: walk the index space, waiting for each
        // shard in turn; committed output is the serial order exactly.
        // Stop at the first shard that errored or was skipped by a
        // cancellation elsewhere — never commit unexecuted work.
        try {
            for (size_t i = 0; i < n; ++i) {
                std::unique_lock<std::mutex> lk(sh.m);
                sh.cv.wait(lk, [&sh, i] { return sh.done[i] != 0; });
                if (sh.errors[i] || !sh.ran[i])
                    break;
                lk.unlock();
                if (commit)
                    commit(i);
            }
        } catch (...) {
            // A throwing commit cancels the rest, waits for the pool
            // (destructor below), then propagates.
            sh.cancelled.store(true, std::memory_order_relaxed);
            throw;
        }
        // Pool destructor joins: every worker finished or skipped its
        // remaining tasks before we inspect the error table.
    }

    for (size_t i = 0; i < n; ++i)
        if (sh.errors[i])
            std::rethrow_exception(sh.errors[i]);
}

} // namespace mesa
