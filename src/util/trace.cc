#include "util/trace.hh"

#include "util/json.hh"

namespace mesa
{

Tracer &
Tracer::global()
{
    static Tracer t;
    return t;
}

uint16_t
Tracer::trackId(const std::string &track)
{
    for (size_t i = 0; i < tracks_.size(); ++i)
        if (tracks_[i] == track)
            return uint16_t(i);
    tracks_.push_back(track);
    return uint16_t(tracks_.size() - 1);
}

void
Tracer::span(const std::string &track, const std::string &name,
             uint64_t start, uint64_t duration,
             std::initializer_list<TraceArg> args)
{
    if (!active())
        return;
    std::lock_guard<std::mutex> lk(emit_m_);
    if (events_.size() >= max_events_) {
        ++dropped_;
        return;
    }
    TraceEvent e;
    e.track = trackId(track);
    e.name = name;
    e.start = start;
    e.duration = duration;
    e.args.assign(args.begin(), args.end());
    events_.push_back(std::move(e));
}

void
Tracer::instant(const std::string &track, const std::string &name,
                uint64_t at, std::initializer_list<TraceArg> args)
{
    if (!active())
        return;
    std::lock_guard<std::mutex> lk(emit_m_);
    if (events_.size() >= max_events_) {
        ++dropped_;
        return;
    }
    TraceEvent e;
    e.track = trackId(track);
    e.instant = true;
    e.name = name;
    e.start = at;
    e.args.assign(args.begin(), args.end());
    events_.push_back(std::move(e));
}

void
Tracer::exportJson(std::ostream &os) const
{
    // Chrome trace-event "JSON Array Format": every record carries
    // pid/tid; tracks map to tids of one shared pid, named through
    // thread_name metadata events. Timestamps are simulated cycles
    // (the viewer displays them as microseconds; only ratios matter).
    JsonWriter w;
    w.beginArray();
    for (size_t i = 0; i < tracks_.size(); ++i) {
        w.beginObject()
            .field("name", "thread_name")
            .field("ph", "M")
            .field("pid", 0)
            .field("tid", uint64_t(i))
            .key("args")
            .beginObject()
            .field("name", tracks_[i])
            .end()
            .end();
        // Keep the viewer's track order equal to registration order.
        w.beginObject()
            .field("name", "thread_sort_index")
            .field("ph", "M")
            .field("pid", 0)
            .field("tid", uint64_t(i))
            .key("args")
            .beginObject()
            .field("sort_index", uint64_t(i))
            .end()
            .end();
    }
    for (const auto &e : events_) {
        w.beginObject()
            .field("name", e.name)
            .field("cat", "mesa")
            .field("ph", e.instant ? "i" : "X")
            .field("ts", e.start)
            .field("pid", 0)
            .field("tid", uint64_t(e.track));
        if (e.instant)
            w.field("s", "t"); // thread-scoped instant
        else
            w.field("dur", e.duration);
        if (!e.args.empty()) {
            w.key("args").beginObject();
            for (const auto &a : e.args) {
                if (a.is_num)
                    w.field(a.key, a.num);
                else
                    w.field(a.key, a.str);
            }
            w.end();
        }
        w.end();
    }
    w.end();
    os << w.str();
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lk(emit_m_);
    base_ = 0;
    cycle_ = 0;
    dropped_ = 0;
    tracks_.clear();
    events_.clear();
}

} // namespace mesa
