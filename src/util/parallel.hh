/**
 * @file
 * Deterministic parallel execution engine: a work-stealing thread
 * pool plus the parallelForOrdered() primitive the campaign, bench,
 * lint, and fuzz outer loops shard on. Shards execute concurrently on
 * worker threads, but their results are *committed in index order* on
 * the calling thread, so every table row, stats snapshot, and JSON
 * byte the serial loop would produce is reproduced exactly at any
 * --jobs value (see ARCHITECTURE.md "Parallel execution engine").
 *
 * Ground rules for callers:
 *   - work(i) must touch only state owned by shard i (build a fresh
 *     ShardContext / MainMemory / controller per shard); the only
 *     cross-shard communication is the committed result.
 *   - commit(i) runs on the calling thread, strictly in index order.
 *   - jobs <= 1 runs the plain serial loop, no threads created —
 *     today's behavior, bit for bit.
 *   - when the global Tracer is recording, execution auto-downgrades
 *     to the serial path: trace events carry no shard identity, so
 *     only a serial run keeps the timeline deterministic.
 */

#ifndef MESA_UTIL_PARALLEL_HH
#define MESA_UTIL_PARALLEL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mesa
{

/** Default shard count: the machine's hardware concurrency (>= 1). */
int defaultJobs();

/** Normalize a --jobs value: <= 0 means "use defaultJobs()". */
int resolveJobs(int jobs);

/**
 * A work-stealing thread pool. Submitted tasks land on per-worker
 * deques round-robin; an idle worker drains its own deque LIFO-free
 * (front) and steals from the back of its siblings' deques when empty.
 * The pool is a plain mechanism — determinism comes from
 * parallelForOrdered()'s ordered commit, never from scheduling.
 */
class ThreadPool
{
  public:
    /** Spawn @p threads workers (clamped to >= 1). */
    explicit ThreadPool(int threads);

    /** Drains nothing: joins after the queues empty. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int threads() const { return int(workers_.size()); }

    /** Enqueue one task; any worker may run (or steal) it. */
    void submit(std::function<void()> task);

  private:
    struct Worker
    {
        std::mutex m;
        std::deque<std::function<void()>> q;
    };

    void workerLoop(size_t self);
    bool tryPop(size_t self, std::function<void()> &out);

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;
    std::atomic<size_t> next_{0};   ///< Round-robin submission cursor.
    std::atomic<size_t> queued_{0}; ///< Tasks submitted, not yet started.
    std::atomic<bool> stop_{false};
    std::mutex sleep_m_;
    std::condition_variable sleep_cv_;
};

/**
 * Run work(i) for every i in [0, n) on @p jobs workers and invoke
 * commit(i) on the calling thread in strict index order as the
 * completed prefix grows. work(i) computes into shard-owned storage;
 * commit(i) folds shard i into the ordered output (print the row,
 * merge the counters, append the JSON object).
 *
 * An exception thrown by any work(i) (or by commit) cancels every
 * not-yet-started shard, stops the pool cleanly, and rethrows the
 * lowest-index exception on the calling thread; commits never run
 * past the first failed index.
 *
 * jobs <= 1 (after resolveJobs) — and any run while the Tracer is
 * recording — executes the exact serial loop
 * `for i: work(i); commit(i);` with no pool.
 */
void parallelForOrdered(size_t n, int jobs,
                        const std::function<void(size_t)> &work,
                        const std::function<void(size_t)> &commit = {});

/**
 * Map form: collect work(i) into a vector, with the same ordering and
 * exception guarantees as parallelForOrdered. T must be default-
 * constructible and movable.
 */
template <class T>
std::vector<T>
parallelMapOrdered(size_t n, int jobs,
                   const std::function<T(size_t)> &work)
{
    std::vector<T> out(n);
    parallelForOrdered(n, jobs,
                       [&](size_t i) { out[i] = work(i); });
    return out;
}

} // namespace mesa

#endif // MESA_UTIL_PARALLEL_HH
