/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over arbitrary
 * byte and word streams. Used as the configuration-bitstream integrity
 * check: the ConfigBlock stamps every AcceleratorConfig with the CRC
 * of its semantic payload, and the controller re-derives it before
 * streaming so single- and multi-bit upsets in a stored configuration
 * are caught before they can reach the fabric.
 */

#ifndef MESA_UTIL_CRC32_HH
#define MESA_UTIL_CRC32_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace mesa
{

namespace detail
{

constexpr std::array<uint32_t, 256>
makeCrc32Table()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

inline constexpr std::array<uint32_t, 256> crc32_table =
    makeCrc32Table();

} // namespace detail

/** Incremental CRC-32 accumulator. */
class Crc32
{
  public:
    void
    addByte(uint8_t b)
    {
        crc_ = detail::crc32_table[(crc_ ^ b) & 0xffu] ^ (crc_ >> 8);
    }

    void
    addBytes(const void *data, size_t len)
    {
        const auto *bytes = static_cast<const uint8_t *>(data);
        for (size_t i = 0; i < len; ++i)
            addByte(bytes[i]);
    }

    void
    add32(uint32_t v)
    {
        addByte(uint8_t(v));
        addByte(uint8_t(v >> 8));
        addByte(uint8_t(v >> 16));
        addByte(uint8_t(v >> 24));
    }

    void
    add64(uint64_t v)
    {
        add32(uint32_t(v));
        add32(uint32_t(v >> 32));
    }

    uint32_t value() const { return crc_ ^ 0xffffffffu; }

  private:
    uint32_t crc_ = 0xffffffffu;
};

/** One-shot CRC-32 of a byte buffer. */
inline uint32_t
crc32(const void *data, size_t len)
{
    Crc32 c;
    c.addBytes(data, len);
    return c.value();
}

} // namespace mesa

#endif // MESA_UTIL_CRC32_HH
