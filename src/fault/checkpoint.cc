#include "fault/checkpoint.hh"

#include <algorithm>

namespace mesa::fault
{

Checkpoint
Checkpoint::capture(const riscv::ArchState &state,
                    const mem::MainMemory &memory)
{
    Checkpoint ckpt;
    ckpt.state = state;
    ckpt.pages = memory.snapshot();
    return ckpt;
}

void
Checkpoint::restore(riscv::ArchState &out_state,
                    mem::MainMemory &memory) const
{
    out_state = state;
    memory.clear();
    for (const auto &[pn, data] : pages)
        memory.writeBlock(pn << mem::MainMemory::PageShift,
                          data.data(), data.size());
}

namespace
{

bool
allZero(const std::vector<uint8_t> &data)
{
    return std::all_of(data.begin(), data.end(),
                       [](uint8_t b) { return b == 0; });
}

} // namespace

bool
memorySnapshotsEqual(const MemSnapshot &a, const MemSnapshot &b)
{
    for (const auto &[pn, data] : a) {
        auto it = b.find(pn);
        if (it == b.end()) {
            if (!allZero(data))
                return false;
        } else if (data != it->second) {
            return false;
        }
    }
    for (const auto &[pn, data] : b) {
        if (!a.count(pn) && !allZero(data))
            return false;
    }
    return true;
}

} // namespace mesa::fault
