/**
 * @file
 * Fault-tolerance knobs for the MESA controller. Off by default: the
 * paper's controller assumes a reliable fabric; enabling this models
 * a self-checking deployment where every offload is guarded by the
 * detection/recovery pipeline described in ARCHITECTURE.md
 * ("Reliability").
 */

#ifndef MESA_FAULT_PARAMS_HH
#define MESA_FAULT_PARAMS_HH

#include <cstdint>

namespace mesa::fault
{

/**
 * Backoff/decay tuning for the region quarantine blacklist. The
 * defaults reproduce the original hard-coded behaviour: strikes cap
 * at 16 (so the skip sentence saturates at 2^15 encounters) and two
 * consecutive clean offloads forgive one strike.
 */
struct QuarantineParams
{
    /** Strike ceiling; the skip sentence is 2^(strikes-1). */
    int max_strikes = 16;

    /** Consecutive clean offloads that forgive one strike. */
    int forgive_successes = 2;
};

/** Controller-side fault tolerance configuration. */
struct FaultToleranceParams
{
    /** Master switch: checkpoint/rollback, CRC gate, quarantine. */
    bool enabled = false;

    /**
     * Checked mode: after every completed offload, roll back to the
     * checkpoint and re-execute the region on the functional emulator
     * (golden model), comparing architectural state and memory
     * byte-exactly. A mismatch adopts the golden result — detection
     * and recovery in one step (DMR in time, not space).
     */
    bool checked_mode = false;

    /** Re-derive the config CRC before streaming (detection point 1). */
    bool crc_check = true;

    /**
     * Per-offload fabric cycle budget in fault mode, threaded through
     * every epoch (detection point 2). Independent of the hard device
     * cap in AccelParams::watchdog_cycles, which applies always.
     * 0 = only the device cap applies.
     */
    uint64_t watchdog_cycles = 2'000'000;

    /** Step bound for golden-model re-execution of one region. */
    uint64_t max_golden_steps = 50'000'000;

    /**
     * Use abstract-interpretation certificates (src/absint) to gate
     * the runtime checks. Offloads whose memory footprint is proven
     * inside the resident region skip the golden-model memory-snapshot
     * comparison in checked mode (architectural state is still
     * compared byte-exactly; the golden model still re-executes, so
     * memory always ends at the golden result -- the skip can never
     * admit a silent corruption). Offloads with a proven trip count
     * run under a certificate-derived watchdog budget, tightening
     * watchdog_cycles when the proof allows.
     */
    bool certificate_gating = false;

    /**
     * Run the fabric's BIST after a detected fault to distinguish
     * permanent defects (quarantine the PEs, remap around them) from
     * transients (back off the region, retry later).
     */
    bool self_test_on_fault = true;

    /**
     * Drain-and-relocate instead of degrade-in-place: after a
     * watchdog-detected fault retires PEs, re-map the interrupted
     * region around the blocked set and resume it from the restored
     * checkpoint on the repaired placement (one attempt; a second
     * fault falls back to CPU re-execution as before). Counted under
     * mesa.migrate.* in the stats registry.
     */
    bool migrate_on_fault = false;

    /** Region-quarantine backoff/decay tuning. */
    QuarantineParams quarantine;

    /** Seed for in-situ injection hooks (CLI --seed). */
    uint64_t seed = 0;
};

} // namespace mesa::fault

#endif // MESA_FAULT_PARAMS_HH
