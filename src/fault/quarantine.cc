#include "fault/quarantine.hh"

#include <algorithm>

namespace mesa::fault
{

bool
RegionQuarantine::shouldOffload(uint32_t pc)
{
    auto it = entries_.find(pc);
    if (it == entries_.end())
        return true;
    Entry &e = it->second;
    if (e.skip_left > 0) {
        --e.skip_left;
        return false;
    }
    return true;
}

bool
RegionQuarantine::onFault(uint32_t pc)
{
    Entry &e = entries_[pc];
    bool entered = e.skip_left == 0;
    e.strikes = std::min(e.strikes + 1, params_.max_strikes);
    e.skip_left = uint64_t(1) << (e.strikes - 1);
    e.successes = 0;
    return entered;
}

bool
RegionQuarantine::onSuccess(uint32_t pc)
{
    auto it = entries_.find(pc);
    if (it == entries_.end())
        return false;
    Entry &e = it->second;
    if (++e.successes < params_.forgive_successes)
        return false;
    e.successes = 0;
    if (--e.strikes <= 0) {
        entries_.erase(it);
        return true;
    }
    return false;
}

void
RegionQuarantine::clear(uint32_t pc)
{
    entries_.erase(pc);
}

size_t
RegionQuarantine::quarantinedCount() const
{
    size_t n = 0;
    for (const auto &[pc, e] : entries_)
        n += e.skip_left > 0;
    return n;
}

int
RegionQuarantine::strikes(uint32_t pc) const
{
    auto it = entries_.find(pc);
    return it == entries_.end() ? 0 : it->second.strikes;
}

bool
FaultyPeMap::add(ic::Coord pos)
{
    if (faulty(pos))
        return false;
    coords_.push_back(pos);
    return true;
}

bool
FaultyPeMap::faulty(ic::Coord pos) const
{
    return std::find(coords_.begin(), coords_.end(), pos) !=
           coords_.end();
}

} // namespace mesa::fault
