/**
 * @file
 * Architectural + memory checkpoints for offload rollback. The
 * fault-tolerant controller captures one before transferring control
 * to the fabric; on a detected fault (CRC, watchdog, golden-model
 * mismatch) it restores the checkpoint byte-exactly and re-executes
 * the region on the CPU, so a faulty offload is never observable.
 */

#ifndef MESA_FAULT_CHECKPOINT_HH
#define MESA_FAULT_CHECKPOINT_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mem/memory.hh"
#include "riscv/emulator.hh"

namespace mesa::fault
{

using MemSnapshot = std::unordered_map<uint32_t, std::vector<uint8_t>>;

/** One offload checkpoint: registers + pc + all resident pages. */
struct Checkpoint
{
    riscv::ArchState state;
    MemSnapshot pages;

    static Checkpoint capture(const riscv::ArchState &state,
                              const mem::MainMemory &memory);

    /** Byte-exact rollback: restores registers, pc, and memory. */
    void restore(riscv::ArchState &out_state,
                 mem::MainMemory &memory) const;
};

/**
 * Compare two memory snapshots for semantic equality. Pages present
 * on only one side must be all-zero (untouched pages read as zero, so
 * a lazily-allocated zero page is equal to an absent one).
 */
bool memorySnapshotsEqual(const MemSnapshot &a, const MemSnapshot &b);

} // namespace mesa::fault

#endif // MESA_FAULT_CHECKPOINT_HH
