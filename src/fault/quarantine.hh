/**
 * @file
 * Quarantine bookkeeping for the fault-tolerant controller:
 *
 *  - RegionQuarantine: exponential-backoff blacklist keyed by region
 *    start pc. A region that keeps faulting on the fabric is skipped
 *    for exponentially many encounters (executing on the CPU instead)
 *    and rehabilitated after consecutive clean offloads.
 *  - FaultyPeMap: the persistent set of physically-defective PEs
 *    discovered by the fabric's self test. Fed into the mapper's free
 *    matrix so subsequent placements route around dead hardware.
 */

#ifndef MESA_FAULT_QUARANTINE_HH
#define MESA_FAULT_QUARANTINE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "fault/params.hh"
#include "interconnect/interconnect.hh"

namespace mesa::fault
{

/** Exponential-backoff blacklist for repeatedly-faulting regions. */
class RegionQuarantine
{
  public:
    RegionQuarantine(const QuarantineParams &params = {})
        : params_(params)
    {}

    /**
     * Ask whether the region starting at @p pc may offload now. Each
     * call counts as one encounter: while quarantined it consumes one
     * skip credit and returns false.
     */
    bool shouldOffload(uint32_t pc);

    /** Record a detected fault: strike, back off 2^(strikes-1) next
     *  encounters (capped). Returns true when the region entered
     *  quarantine (it had no pending skip sentence before). */
    bool onFault(uint32_t pc);

    /** Record a clean offload; forgive_successes in a row forgive one
     *  strike. Returns true when the region was fully rehabilitated
     *  (its entry erased). */
    bool onSuccess(uint32_t pc);

    /** Forget the region entirely (e.g., root cause was a permanent
     *  PE defect that has since been mapped around). */
    void clear(uint32_t pc);

    /** Regions currently serving a skip sentence. */
    size_t quarantinedCount() const;

    int strikes(uint32_t pc) const;

  private:
    struct Entry
    {
        int strikes = 0;
        uint64_t skip_left = 0;
        int successes = 0;
    };

    QuarantineParams params_;
    std::unordered_map<uint32_t, Entry> entries_;
};

/** Persistent map of PEs retired from service by the self test. */
class FaultyPeMap
{
  public:
    /** Add a PE (idempotent). Returns true if it was new. */
    bool add(ic::Coord pos);

    bool faulty(ic::Coord pos) const;

    const std::vector<ic::Coord> &coords() const { return coords_; }
    size_t size() const { return coords_.size(); }
    bool empty() const { return coords_.empty(); }

  private:
    std::vector<ic::Coord> coords_;
};

} // namespace mesa::fault

#endif // MESA_FAULT_QUARANTINE_HH
