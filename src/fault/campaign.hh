/**
 * @file
 * Seeded fault-injection campaigns over the workload suite. One
 * campaign runs every kernel under repeated injections drawn from a
 * deterministic RNG, cycling through the five FaultKind models, and
 * classifies every injection against a pre-computed golden run:
 *
 *   recovered — final state matches golden and the controller
 *               reported a detection (the recovery pipeline worked);
 *   benign    — matches golden with no detection (the fault landed on
 *               unused hardware / a masked value);
 *   corrupted — detection fired but the final state is wrong
 *               (recovery failed: the bug class CI must catch);
 *   silent    — wrong state, no detection (silent data corruption —
 *               the headline number; must be zero in checked mode).
 *
 * Permanent faults (stuck PE, dead link) get a second offload of the
 * same region on the same controller so the remap path is exercised:
 * the campaign asserts the new placement puts zero nodes on
 * quarantined PEs (remap_checks / remap_clean).
 */

#ifndef MESA_FAULT_CAMPAIGN_HH
#define MESA_FAULT_CAMPAIGN_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "accel/params.hh"
#include "fault/injector.hh"
#include "fault/params.hh"
#include "workloads/kernel.hh"

namespace mesa::fault
{

/** Campaign configuration. */
struct CampaignParams
{
    uint64_t seed = 1;
    int injections_per_kernel = 32;
    workloads::SuiteScale scale{128};
    /** Kernel names to run; empty = the full suite. */
    std::vector<std::string> kernels;
    /** Golden-model checked mode (required for the zero-silent-
     *  corruption guarantee). */
    bool checked = true;
    /** Per-offload fault watchdog budget (cycles). */
    uint64_t watchdog_cycles = 50'000;
    /**
     * Certificate gating: run the abstract-interpretation certifier
     * on every offload; footprint-certified offloads skip the checked-
     * mode memory-snapshot comparison (state compare and golden
     * re-execution remain), and proven trip counts derive tighter
     * watchdog budgets. The zero-silent-corruption gate must hold
     * unchanged.
     */
    bool certify = false;
    /**
     * Drain-and-relocate (mesa_faultsim --migrate): after a watchdog
     * trip the controller live-migrates the checkpointed offload onto
     * the degraded fabric (blocked PEs routed around) instead of
     * falling straight back to the CPU. The zero-silent-corruption
     * gate must hold with faults landing mid-migration, and the
     * report adds migration cost vs re-translation cost.
     */
    bool migrate = false;
    /** Quarantine backoff/decay knobs threaded to every controller. */
    QuarantineParams quarantine;
    accel::AccelParams accel = accel::AccelParams::m128();
    /**
     * Worker threads for the injection loop (<= 0 = hardware
     * concurrency). Injections shard within each kernel, each on its
     * own memory/controller/registry, and merge in index order, so
     * results — including writeCampaignJson bytes — are identical to
     * a jobs=1 run for the same seed.
     */
    int jobs = 1;
};

/** Per-kernel campaign outcome. */
struct KernelCampaignResult
{
    std::string name;
    bool offloadable = true; ///< The clean region maps at all.
    int injections = 0;
    int detected = 0;
    int recovered = 0;
    int benign = 0;
    int corrupted = 0;
    int silent = 0;
    /** Injections per fault kind. */
    int by_kind[FaultKindCount] = {};
    /** Permanent-fault remap verification. */
    int remap_checks = 0;
    int remap_clean = 0;
    /** Certificate gating (params.certify): injections whose offload
     *  was footprint-certified / skipped the memory-snapshot compare. */
    int certified = 0;
    int snapshot_skips = 0;
    /** Drain-and-relocate (params.migrate): relocation attempts after
     *  watchdog trips, how many resumed on the fabric, and the cycle
     *  split between re-translation and bitstream streaming. */
    int relocations = 0;
    int relocation_success = 0;
    uint64_t migrate_translate_cycles = 0;
    uint64_t migrate_stream_cycles = 0;
};

/** Whole-campaign outcome. */
struct CampaignResult
{
    CampaignParams params;
    std::vector<KernelCampaignResult> kernels;

    int totalInjections() const;
    int totalDetected() const;
    int totalRecovered() const;
    int totalBenign() const;
    int totalCorrupted() const;
    int totalSilent() const;
    int totalRemapChecks() const;
    int totalRemapClean() const;
    int totalCertified() const;
    int totalSnapshotSkips() const;
    int totalRelocations() const;
    int totalRelocationSuccess() const;
    uint64_t totalMigrateTranslateCycles() const;
    uint64_t totalMigrateStreamCycles() const;

    /** The CI gate: no silent corruption, no failed recovery, and
     *  every remap check placed off the quarantined PEs. */
    bool
    clean() const
    {
        return totalSilent() == 0 && totalCorrupted() == 0 &&
               totalRemapChecks() == totalRemapClean();
    }

    /** Flat numeric view of everything (the determinism test compares
     *  two same-seed campaigns through this). */
    std::map<std::string, double> statsSnapshot() const;
};

/** Run the campaign (deterministic for a given params.seed). */
CampaignResult runCampaign(const CampaignParams &params);

/** Human-readable per-kernel coverage table. */
void printCampaignTable(const CampaignResult &result, std::ostream &os);

/** Machine-readable report (mesa_faultsim --json). */
void writeCampaignJson(const CampaignResult &result, std::ostream &os);

} // namespace mesa::fault

#endif // MESA_FAULT_CAMPAIGN_HH
