/**
 * @file
 * Seeded, deterministic fault injection for campaigns. Two families:
 *
 *  - Configuration upsets: corruptConfig() applies one structurally
 *    safe semantic mutation to an AcceleratorConfig (bit-flipped
 *    immediate, swapped operand route, retargeted live-out, ...) —
 *    modeling an SEU in the stored bitstream. Every mutation changes
 *    a field covered by configCrc(), so the controller's CRC gate
 *    must catch it before the config is streamed.
 *  - Hardware defects: make*() builders produce FaultPlane entries
 *    (stuck PEs, dead links, datapath SEUs, induced hangs) from a
 *    seeded RNG for Accelerator::injectFaults().
 *
 * All randomness comes from the caller's SplitMix64, so a campaign
 * with the same seed injects byte-identical faults.
 */

#ifndef MESA_FAULT_INJECTOR_HH
#define MESA_FAULT_INJECTOR_HH

#include <string>

#include "accel/config_types.hh"
#include "accel/fault_plane.hh"
#include "accel/params.hh"
#include "util/rng.hh"

namespace mesa::fault
{

/** Injection categories a campaign cycles through. */
enum class FaultKind
{
    ConfigBitFlip,     ///< SEU in the stored configuration.
    TransientDatapath, ///< SEU in one PE result, one iteration.
    StuckPe,           ///< Permanent stuck-at PE defect.
    DeadLink,          ///< Permanent dead interconnect link.
    OffloadHang,       ///< Stuck closing-branch control line.
};

constexpr int FaultKindCount = 5;

const char *faultKindName(FaultKind kind);

/**
 * Apply one structurally-safe random mutation to @p config (the
 * config stays well-formed: node order, slot bounds, and the closing
 * branch are preserved). Returns a description of the mutation, or
 * "" if the config has no mutable field (degenerate single-slot
 * configs). Does NOT restamp config.crc — that is the point.
 */
std::string corruptConfig(accel::AcceleratorConfig &config,
                          SplitMix64 &rng);

/** Random permanent stuck-at PE anywhere in the grid. */
accel::PeStuckFault makeStuckPe(SplitMix64 &rng,
                                const accel::AccelParams &params);

/** Random dead link between a PE and one of its grid neighbors. */
accel::LinkFault makeDeadLink(SplitMix64 &rng,
                              const accel::AccelParams &params);

/** Random single-iteration SEU in one of @p slot_count slots. */
accel::TransientFault makeTransient(SplitMix64 &rng, size_t slot_count,
                                    uint64_t max_iteration = 64);

/** Random induced hang (closing branch stuck taken). */
accel::BranchStuckFault makeHang(SplitMix64 &rng);

} // namespace mesa::fault

#endif // MESA_FAULT_INJECTOR_HH
