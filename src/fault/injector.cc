#include "fault/injector.hh"

#include <algorithm>
#include <sstream>

namespace mesa::fault
{

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::ConfigBitFlip: return "config-bit-flip";
      case FaultKind::TransientDatapath: return "transient-datapath";
      case FaultKind::StuckPe: return "stuck-pe";
      case FaultKind::DeadLink: return "dead-link";
      case FaultKind::OffloadHang: return "offload-hang";
    }
    return "?";
}

std::string
corruptConfig(accel::AcceleratorConfig &config, SplitMix64 &rng)
{
    if (config.slots.empty())
        return "";

    std::ostringstream desc;
    // Try mutation kinds until one applies (some need a slot with a
    // particular shape); bounded so a degenerate config terminates.
    for (int attempt = 0; attempt < 16; ++attempt) {
        const size_t slot_idx = rng.below(config.slots.size());
        accel::PeSlot &slot = config.slots[slot_idx];
        switch (rng.below(6)) {
          case 0: { // Flip one bit of the immediate.
            const int bit = int(rng.below(32));
            slot.inst.imm ^= int32_t(uint32_t(1) << bit);
            desc << "slot " << slot_idx << ": imm bit " << bit
                 << " flipped";
            return desc.str();
          }
          case 1: { // Swap the operand routes.
            if (slot.src1 == slot.src2 && slot.live_in1 == slot.live_in2)
                break;
            std::swap(slot.src1, slot.src2);
            std::swap(slot.live_in1, slot.live_in2);
            desc << "slot " << slot_idx << ": operand routes swapped";
            return desc.str();
          }
          case 2: { // Retarget src1 to a different earlier node.
            if (slot.src1 == dfg::NoNode || slot_idx < 2)
                break;
            const auto wrong =
                dfg::NodeId(rng.below(slot_idx));
            if (wrong == slot.src1)
                break;
            slot.src1 = wrong;
            desc << "slot " << slot_idx << ": src1 retargeted to node "
                 << wrong;
            return desc.str();
          }
          case 3: { // Perturb the placement row.
            if (config.rows < 2)
                break;
            const int new_r =
                std::clamp(slot.pos.r ^ 1, 0, config.rows - 1);
            if (new_r == slot.pos.r)
                break;
            slot.pos.r = new_r;
            desc << "slot " << slot_idx << ": row perturbed to "
                 << new_r;
            return desc.str();
          }
          case 4: { // Retarget one live-out to a different writer.
            if (config.live_outs.empty())
                break;
            auto it = config.live_outs.begin();
            std::advance(it,
                         long(rng.below(config.live_outs.size())));
            const auto wrong =
                dfg::NodeId(rng.below(config.slots.size()));
            if (wrong == it->second)
                break;
            it->second = wrong;
            desc << "live-out x" << it->first
                 << ": writer retargeted to node " << wrong;
            return desc.str();
          }
          case 5: { // Drop one live-in latch.
            if (config.live_ins.size() < 2)
                break;
            auto it = config.live_ins.begin();
            std::advance(it,
                         long(rng.below(config.live_ins.size())));
            const int reg = *it;
            config.live_ins.erase(it);
            desc << "live-in x" << reg << " dropped";
            return desc.str();
          }
        }
    }
    // Fallback: the immediate flip always applies.
    accel::PeSlot &slot = config.slots[rng.below(config.slots.size())];
    slot.inst.imm ^= 1;
    return "imm bit 0 flipped (fallback)";
}

accel::PeStuckFault
makeStuckPe(SplitMix64 &rng, const accel::AccelParams &params)
{
    accel::PeStuckFault f;
    f.pos = {int(rng.below(uint64_t(params.rows))),
             int(rng.below(uint64_t(params.cols)))};
    f.xor_mask = rng.mask32();
    return f;
}

accel::LinkFault
makeDeadLink(SplitMix64 &rng, const accel::AccelParams &params)
{
    accel::LinkFault f;
    f.from = {int(rng.below(uint64_t(params.rows))),
              int(rng.below(uint64_t(params.cols)))};
    // Neighbor in a random cardinal direction, clamped to the grid
    // (a clamp onto itself retries toward the opposite side).
    static constexpr int dr[4] = {1, -1, 0, 0};
    static constexpr int dc[4] = {0, 0, 1, -1};
    const size_t d = rng.below(4);
    int r = std::clamp(f.from.r + dr[d], 0, params.rows - 1);
    int c = std::clamp(f.from.c + dc[d], 0, params.cols - 1);
    if (r == f.from.r && c == f.from.c) {
        r = std::clamp(f.from.r - dr[d], 0, params.rows - 1);
        c = std::clamp(f.from.c - dc[d], 0, params.cols - 1);
    }
    f.to = {r, c};
    f.xor_mask = rng.mask32();
    return f;
}

accel::TransientFault
makeTransient(SplitMix64 &rng, size_t slot_count,
              uint64_t max_iteration)
{
    accel::TransientFault f;
    f.slot = slot_count == 0 ? 0 : rng.below(slot_count);
    f.iteration = rng.below(std::max<uint64_t>(max_iteration, 1));
    f.xor_mask = rng.mask32();
    return f;
}

accel::BranchStuckFault
makeHang(SplitMix64 &rng)
{
    accel::BranchStuckFault f;
    f.from_iteration = rng.below(32);
    return f;
}

} // namespace mesa::fault
