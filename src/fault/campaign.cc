#include "fault/campaign.hh"

#include <algorithm>
#include <iomanip>

#include "cpu/system.hh"
#include "fault/checkpoint.hh"
#include "mesa/controller.hh"
#include "riscv/emulator.hh"
#include "util/json.hh"
#include "util/parallel.hh"
#include "util/stats_registry.hh"
#include "workloads/suite.hh"

namespace mesa::fault
{

namespace
{

/** Golden reference: the kernel start-to-halt on the emulator. */
struct Golden
{
    riscv::ArchState state;
    MemSnapshot memory;
    uint64_t instructions = 0;
};

Golden
runGolden(const workloads::Kernel &kernel, uint64_t max_steps)
{
    mem::MainMemory memory;
    kernel.init_data(memory);
    cpu::loadProgram(memory, kernel.program);

    riscv::Emulator emu(memory);
    emu.reset(kernel.program.base_pc);
    kernel.fullRange()(emu.state());
    emu.run(max_steps);

    Golden g;
    g.state = emu.state();
    g.memory = memory.snapshot();
    g.instructions = emu.instret();
    return g;
}

void
advanceToLoop(riscv::Emulator &emu, const workloads::Kernel &kernel,
              uint64_t max_steps = 1'000'000)
{
    uint64_t steps = 0;
    while (!emu.halted() && emu.state().pc != kernel.loop_start &&
           steps < max_steps) {
        emu.step();
        ++steps;
    }
}

/** Does the installed configuration avoid every quarantined PE? */
bool
placementAvoids(const accel::AcceleratorConfig &config,
                const FaultyPeMap &faulty, int device_rows)
{
    for (const auto &slot : config.slots) {
        ic::Coord base = slot.pos;
        if (config.time_multiplex > 1)
            base.r %= device_rows;
        for (const auto &inst : config.instances) {
            const ic::Coord phys{base.r + inst.origin.r,
                                 base.c + inst.origin.c};
            if (faulty.faulty(phys))
                return false;
        }
    }
    return true;
}

} // namespace

int
CampaignResult::totalInjections() const
{
    int n = 0;
    for (const auto &k : kernels)
        n += k.injections;
    return n;
}

int
CampaignResult::totalDetected() const
{
    int n = 0;
    for (const auto &k : kernels)
        n += k.detected;
    return n;
}

int
CampaignResult::totalRecovered() const
{
    int n = 0;
    for (const auto &k : kernels)
        n += k.recovered;
    return n;
}

int
CampaignResult::totalBenign() const
{
    int n = 0;
    for (const auto &k : kernels)
        n += k.benign;
    return n;
}

int
CampaignResult::totalCorrupted() const
{
    int n = 0;
    for (const auto &k : kernels)
        n += k.corrupted;
    return n;
}

int
CampaignResult::totalSilent() const
{
    int n = 0;
    for (const auto &k : kernels)
        n += k.silent;
    return n;
}

int
CampaignResult::totalRemapChecks() const
{
    int n = 0;
    for (const auto &k : kernels)
        n += k.remap_checks;
    return n;
}

int
CampaignResult::totalRemapClean() const
{
    int n = 0;
    for (const auto &k : kernels)
        n += k.remap_clean;
    return n;
}

int
CampaignResult::totalCertified() const
{
    int n = 0;
    for (const auto &k : kernels)
        n += k.certified;
    return n;
}

int
CampaignResult::totalSnapshotSkips() const
{
    int n = 0;
    for (const auto &k : kernels)
        n += k.snapshot_skips;
    return n;
}

int
CampaignResult::totalRelocations() const
{
    int n = 0;
    for (const auto &k : kernels)
        n += k.relocations;
    return n;
}

int
CampaignResult::totalRelocationSuccess() const
{
    int n = 0;
    for (const auto &k : kernels)
        n += k.relocation_success;
    return n;
}

uint64_t
CampaignResult::totalMigrateTranslateCycles() const
{
    uint64_t n = 0;
    for (const auto &k : kernels)
        n += k.migrate_translate_cycles;
    return n;
}

uint64_t
CampaignResult::totalMigrateStreamCycles() const
{
    uint64_t n = 0;
    for (const auto &k : kernels)
        n += k.migrate_stream_cycles;
    return n;
}

std::map<std::string, double>
CampaignResult::statsSnapshot() const
{
    std::map<std::string, double> out;
    for (const auto &k : kernels) {
        const std::string p = k.name + ".";
        out[p + "injections"] = k.injections;
        out[p + "detected"] = k.detected;
        out[p + "recovered"] = k.recovered;
        out[p + "benign"] = k.benign;
        out[p + "corrupted"] = k.corrupted;
        out[p + "silent"] = k.silent;
        out[p + "remap_checks"] = k.remap_checks;
        out[p + "remap_clean"] = k.remap_clean;
        out[p + "certified"] = k.certified;
        out[p + "snapshot_skips"] = k.snapshot_skips;
        out[p + "relocations"] = double(k.relocations);
        out[p + "relocation_success"] = double(k.relocation_success);
        out[p + "migrate_translate_cycles"] =
            double(k.migrate_translate_cycles);
        out[p + "migrate_stream_cycles"] =
            double(k.migrate_stream_cycles);
        for (int i = 0; i < FaultKindCount; ++i)
            out[p + "kind." + faultKindName(FaultKind(i))] =
                k.by_kind[i];
    }
    out["total.injections"] = totalInjections();
    out["total.detected"] = totalDetected();
    out["total.recovered"] = totalRecovered();
    out["total.benign"] = totalBenign();
    out["total.corrupted"] = totalCorrupted();
    out["total.silent"] = totalSilent();
    out["total.certified"] = totalCertified();
    out["total.snapshot_skips"] = totalSnapshotSkips();
    out["total.relocations"] = totalRelocations();
    out["total.relocation_success"] = totalRelocationSuccess();
    out["total.migrate_translate_cycles"] =
        double(totalMigrateTranslateCycles());
    out["total.migrate_stream_cycles"] =
        double(totalMigrateStreamCycles());
    return out;
}

namespace
{

/** One injection's classification, produced by a worker shard and
 *  merged into KernelCampaignResult in index order. */
struct InjectionOutcome
{
    FaultKind kind = FaultKind::ConfigBitFlip;
    bool offloaded = false;
    bool detected = false;
    bool match = false;
    bool remap_checked = false;
    bool remap_clean = false;
    bool certified = false;
    bool snapshot_skipped = false;
    uint64_t relocations = 0;
    uint64_t relocation_success = 0;
    uint64_t migrate_translate_cycles = 0;
    uint64_t migrate_stream_cycles = 0;
};

/**
 * Run one seeded injection. Every piece of simulator state — memory,
 * controller, emulator, stats registry — is constructed here, so the
 * shard touches nothing shared and the outcome is a pure function of
 * (campaign seed, kernel index, injection index).
 */
InjectionOutcome
runInjection(const CampaignParams &params,
             const workloads::Kernel &kernel,
             const std::vector<riscv::Instruction> &body,
             const Golden &golden, uint64_t step_bound, size_t ki,
             int j)
{
    const FaultKind kind = FaultKind(j % FaultKindCount);
    // Independent stream per (kernel, injection): the whole
    // fault plan is a pure function of the campaign seed.
    SplitMix64 rng = SplitMix64(params.seed)
                         .fork(ki + 1)
                         .fork(uint64_t(j) + 1);

    mem::MainMemory memory;
    kernel.init_data(memory);
    cpu::loadProgram(memory, kernel.program);

    core::MesaParams mp;
    mp.accel = params.accel;
    mp.fault.enabled = true;
    mp.fault.checked_mode = params.checked;
    mp.fault.watchdog_cycles = params.watchdog_cycles;
    mp.fault.certificate_gating = params.certify;
    mp.fault.migrate_on_fault = params.migrate;
    mp.fault.quarantine = params.quarantine;
    mp.fault.seed = params.seed;
    core::MesaController mesa(mp, memory);
    StatsRegistry reg;
    mesa.attachStats(&reg);

    riscv::Emulator emu(memory);
    emu.reset(kernel.program.base_pc);
    kernel.fullRange()(emu.state());
    advanceToLoop(emu, kernel);

    accel::FaultPlane plane;
    switch (kind) {
      case FaultKind::ConfigBitFlip: {
        auto fired = std::make_shared<bool>(false);
        SplitMix64 crng = rng.fork(3);
        mesa.setConfigCorruptor(
            [fired, crng](accel::AcceleratorConfig &cfg) mutable {
                if (*fired)
                    return;
                *fired = true;
                corruptConfig(cfg, crng);
            });
        break;
      }
      case FaultKind::TransientDatapath:
        plane.transients.push_back(
            makeTransient(rng, body.size(), 64));
        break;
      case FaultKind::StuckPe:
        plane.stuck_pes.push_back(makeStuckPe(rng, params.accel));
        break;
      case FaultKind::DeadLink:
        plane.dead_links.push_back(makeDeadLink(rng, params.accel));
        break;
      case FaultKind::OffloadHang:
        plane.stuck_branches.push_back(makeHang(rng));
        break;
    }
    if (!plane.empty())
        mesa.accelerator().injectFaults(plane);

    auto os = mesa.offloadLoop(body, emu.state(), kernel.parallel);
    emu.run(step_bound);

    InjectionOutcome out;
    out.kind = kind;
    out.offloaded = os.has_value();
    out.certified = os && os->certified;
    out.snapshot_skipped = os && os->snapshot_skipped;
    out.detected = reg.value("mesa.fault.crc_failures") +
                       reg.value("mesa.fault.watchdog_trips") +
                       reg.value("mesa.fault.mismatches") >
                   0.0;
    out.match =
        emu.state() == golden.state &&
        memorySnapshotsEqual(memory.snapshot(), golden.memory);
    // Registry reads return 0.0 when migrate-on-fault never armed.
    out.relocations =
        uint64_t(reg.value("mesa.migrate.relocations"));
    out.relocation_success =
        uint64_t(reg.value("mesa.migrate.relocation_success"));
    out.migrate_translate_cycles =
        uint64_t(reg.value("mesa.migrate.translate_cycles"));
    out.migrate_stream_cycles =
        uint64_t(reg.value("mesa.migrate.stream_cycles"));

    // Permanent faults: offload the region again on the same
    // (now degraded) controller and verify the remap avoids
    // every quarantined PE.
    const bool permanent =
        kind == FaultKind::StuckPe || kind == FaultKind::DeadLink;
    if (permanent && !mesa.faultyPes().empty()) {
        kernel.init_data(memory);
        cpu::loadProgram(memory, kernel.program);
        riscv::Emulator emu2(memory);
        emu2.reset(kernel.program.base_pc);
        kernel.fullRange()(emu2.state());
        advanceToLoop(emu2, kernel);
        auto os2 =
            mesa.offloadLoop(body, emu2.state(), kernel.parallel);
        if (os2 && os2->accel_iterations > 0) {
            out.remap_checked = true;
            out.remap_clean =
                placementAvoids(mesa.accelerator().config(),
                                mesa.faultyPes(), params.accel.rows);
        }
    }
    return out;
}

} // namespace

CampaignResult
runCampaign(const CampaignParams &params)
{
    CampaignResult result;
    result.params = params;

    std::vector<workloads::Kernel> kernels =
        workloads::selectKernels(params.kernels, params.scale);

    for (size_t ki = 0; ki < kernels.size(); ++ki) {
        const workloads::Kernel &kernel = kernels[ki];
        const uint64_t step_bound =
            4 * kernel.iterations * kernel.program.words.size() +
            1'000'000;
        const Golden golden = runGolden(kernel, step_bound);
        const std::vector<riscv::Instruction> body = kernel.loopBody();

        KernelCampaignResult kr;
        kr.name = kernel.name;
        bool any_offload = false;

        // Shard by injection: every shard builds its own memory /
        // controller / registry in runInjection, and the ordered
        // commit folds outcomes exactly as the serial loop would.
        const size_t n = size_t(
            std::max(0, params.injections_per_kernel));
        std::vector<InjectionOutcome> outcomes(n);
        parallelForOrdered(
            n, params.jobs,
            [&](size_t j) {
                outcomes[j] = runInjection(params, kernel, body,
                                           golden, step_bound, ki,
                                           int(j));
            },
            [&](size_t j) {
                const InjectionOutcome &o = outcomes[j];
                any_offload = any_offload || o.offloaded;
                ++kr.injections;
                ++kr.by_kind[int(o.kind)];
                kr.detected += o.detected ? 1 : 0;
                if (o.match && o.detected)
                    ++kr.recovered;
                else if (o.match)
                    ++kr.benign;
                else if (o.detected)
                    ++kr.corrupted;
                else
                    ++kr.silent;
                kr.remap_checks += o.remap_checked ? 1 : 0;
                kr.remap_clean += o.remap_clean ? 1 : 0;
                kr.certified += o.certified ? 1 : 0;
                kr.snapshot_skips += o.snapshot_skipped ? 1 : 0;
                kr.relocations += int(o.relocations);
                kr.relocation_success += int(o.relocation_success);
                kr.migrate_translate_cycles +=
                    o.migrate_translate_cycles;
                kr.migrate_stream_cycles += o.migrate_stream_cycles;
            });
        kr.offloadable = any_offload;
        result.kernels.push_back(std::move(kr));
    }
    return result;
}

void
printCampaignTable(const CampaignResult &result, std::ostream &os)
{
    os << std::left << std::setw(14) << "kernel" << std::right
       << std::setw(8) << "inject" << std::setw(9) << "detected"
       << std::setw(10) << "recovered" << std::setw(8) << "benign"
       << std::setw(10) << "corrupted" << std::setw(8) << "silent"
       << std::setw(8) << "remap" << "\n";
    os << std::string(75, '-') << "\n";
    auto row = [&](const std::string &name, int inj, int det, int rec,
                   int ben, int cor, int sil, int rchk, int rcln) {
        os << std::left << std::setw(14) << name << std::right
           << std::setw(8) << inj << std::setw(9) << det
           << std::setw(10) << rec << std::setw(8) << ben
           << std::setw(10) << cor << std::setw(8) << sil
           << std::setw(5) << rcln << "/" << rchk << "\n";
    };
    for (const auto &k : result.kernels)
        row(k.offloadable ? k.name : k.name + "*", k.injections,
            k.detected, k.recovered, k.benign, k.corrupted, k.silent,
            k.remap_checks, k.remap_clean);
    os << std::string(75, '-') << "\n";
    row("TOTAL", result.totalInjections(), result.totalDetected(),
        result.totalRecovered(), result.totalBenign(),
        result.totalCorrupted(), result.totalSilent(),
        result.totalRemapChecks(), result.totalRemapClean());
    os << "(* = region never offloaded: faults land on idle hardware)"
       << "\n";
    os << "gate: " << (result.clean() ? "CLEAN" : "DIRTY")
       << " (silent=" << result.totalSilent()
       << " corrupted=" << result.totalCorrupted()
       << " remap=" << result.totalRemapClean() << "/"
       << result.totalRemapChecks() << ")\n";
    if (result.params.certify)
        os << "certify: " << result.totalCertified()
           << " certified offloads, " << result.totalSnapshotSkips()
           << " snapshot compares skipped\n";
    if (result.params.migrate) {
        os << "migrate: " << result.totalRelocationSuccess() << "/"
           << result.totalRelocations()
           << " relocations resumed on the fabric\n";
        os << "migrate cost per kernel (translate+stream cycles):\n";
        for (const auto &k : result.kernels) {
            if (k.relocations == 0)
                continue;
            os << "  " << std::left << std::setw(14) << k.name
               << std::right << " translate="
               << k.migrate_translate_cycles
               << " stream=" << k.migrate_stream_cycles << " over "
               << k.relocations << " relocations\n";
        }
    }
}

void
writeCampaignJson(const CampaignResult &result, std::ostream &os)
{
    JsonWriter w;
    w.beginObject();
    w.field("seed", result.params.seed);
    w.field("injections_per_kernel",
            result.params.injections_per_kernel);
    w.field("checked", result.params.checked);
    w.field("certify", result.params.certify);
    w.field("migrate", result.params.migrate);
    w.field("watchdog_cycles", result.params.watchdog_cycles);
    w.key("kernels").beginArray();
    for (const auto &k : result.kernels) {
        w.beginObject();
        w.field("name", k.name);
        w.field("offloadable", k.offloadable);
        w.field("injections", k.injections);
        w.field("detected", k.detected);
        w.field("recovered", k.recovered);
        w.field("benign", k.benign);
        w.field("corrupted", k.corrupted);
        w.field("silent", k.silent);
        w.field("remap_checks", k.remap_checks);
        w.field("remap_clean", k.remap_clean);
        w.field("certified", k.certified);
        w.field("snapshot_skips", k.snapshot_skips);
        w.field("relocations", k.relocations);
        w.field("relocation_success", k.relocation_success);
        w.field("migrate_translate_cycles", k.migrate_translate_cycles);
        w.field("migrate_stream_cycles", k.migrate_stream_cycles);
        w.key("by_kind").beginObject();
        for (int i = 0; i < FaultKindCount; ++i)
            w.field(faultKindName(FaultKind(i)), k.by_kind[i]);
        w.end();
        w.end();
    }
    w.end();
    w.key("totals").beginObject();
    w.field("injections", result.totalInjections());
    w.field("detected", result.totalDetected());
    w.field("recovered", result.totalRecovered());
    w.field("benign", result.totalBenign());
    w.field("corrupted", result.totalCorrupted());
    w.field("silent", result.totalSilent());
    w.field("remap_checks", result.totalRemapChecks());
    w.field("remap_clean", result.totalRemapClean());
    w.field("certified", result.totalCertified());
    w.field("snapshot_skips", result.totalSnapshotSkips());
    w.field("migrations", result.totalRelocations());
    w.field("migration_success", result.totalRelocationSuccess());
    w.field("migrate_translate_cycles",
            result.totalMigrateTranslateCycles());
    w.field("migrate_stream_cycles",
            result.totalMigrateStreamCycles());
    w.end();
    w.field("clean", result.clean());
    w.end();
    os << w.str() << "\n";
}

} // namespace mesa::fault
