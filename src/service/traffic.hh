/**
 * @file
 * Seeded deterministic traffic generator: hundreds-to-thousands of
 * tenant sessions emitting offload jobs under open-loop (Poisson,
 * bursty, diurnal) or closed-loop (think-time) arrival processes.
 *
 * Everything is derived from one SplitMix64 root seed through forked
 * substreams keyed by purpose and (tenant, seq) — never by anything
 * timing-dependent. Job *content* (kernel, dataset size, QoS) for
 * tenant t's k-th job is a pure function of (seed, t, k), so the same
 * seed replays the same workload regardless of backend count or
 * dispatch policy; only arrival times differ between profiles, and in
 * closed-loop mode arrival times are the one quantity allowed to
 * depend on completion feedback.
 */

#ifndef MESA_SERVICE_TRAFFIC_HH
#define MESA_SERVICE_TRAFFIC_HH

#include <optional>
#include <string>
#include <vector>

#include "service/job.hh"
#include "util/rng.hh"

namespace mesa::service
{

/** Arrival process shape. */
enum class TrafficProfile
{
    Poisson = 0, ///< Open loop: exponential inter-arrival per tenant.
    Bursty,      ///< Open loop: long idle gaps, then tight bursts.
    Diurnal,     ///< Open loop: sinusoidal rate (thinned Poisson).
    ClosedLoop,  ///< Next job arrives think-time after completion.
};

const char *trafficProfileName(TrafficProfile profile);

/** Parse a profile name ("poisson"); fatal on unknown. */
TrafficProfile trafficProfileByName(const std::string &name);

/** Workload-shape knobs. Times are device cycles. */
struct TrafficParams
{
    TrafficProfile profile = TrafficProfile::Poisson;
    uint64_t seed = 1;
    int tenants = 64;

    /** Open loop: generate arrivals in [0, horizon_cycles). */
    uint64_t horizon_cycles = 2'000'000;

    /** Mean inter-arrival gap per tenant (Poisson / burst spacing
     *  base / diurnal peak-rate gap). */
    double mean_interarrival = 50'000.0;

    // Bursty profile.
    int burst_size = 4;             ///< Jobs per burst.
    double burst_idle_factor = 4.0; ///< Idle-gap mean, in units of
                                    ///< mean_interarrival.

    // Diurnal profile.
    double diurnal_period = 1'000'000.0; ///< Cycles per "day".
    double diurnal_min_frac = 0.2; ///< Trough rate / peak rate.

    // Closed loop.
    uint64_t jobs_per_tenant = 4;
    double think_cycles = 10'000.0; ///< Mean think time.

    /** Kernel roster to draw from; empty = every MESA-supported
     *  suite kernel. */
    std::vector<std::string> kernels;

    /** Dataset sizes: power-of-two iteration counts drawn uniformly
     *  from [min_iterations, max_iterations] (powers of two keep the
     *  per-backend kernel/config caches meaningful). */
    uint64_t min_iterations = 32;
    uint64_t max_iterations = 256;

    /** Tenant QoS mix (the remainder is Standard). */
    double qos_interactive_frac = 0.2;
    double qos_batch_frac = 0.3;
};

/** Deterministic job source. Stateless after construction: every
 *  query is a pure function of (params, arguments). */
class TrafficGenerator
{
  public:
    explicit TrafficGenerator(const TrafficParams &params);

    const TrafficParams &params() const { return params_; }
    bool
    closedLoop() const
    {
        return params_.profile == TrafficProfile::ClosedLoop;
    }

    /** Resolved kernel roster (after the supported-only filter). */
    const std::vector<std::string> &kernels() const { return kernels_; }

    /** QoS class is a per-tenant (session) property. */
    QosClass tenantQos(int tenant) const;

    /** Tenant t's k-th job content — kernel, size, QoS — with
     *  arrival_cycle unset. Pure in (seed, t, k). */
    OffloadJob job(int tenant, uint64_t k) const;

    /** All open-loop arrivals, sorted by (cycle, tenant, seq).
     *  Fatal if called on a closed-loop generator. */
    std::vector<OffloadJob> openLoopArrivals() const;

    /**
     * Closed loop: tenant t's k-th job, arriving a think-time gap
     * after @p after (its previous completion; 0 for k == 0).
     * Returns nullopt once the tenant's session is done. The think
     * gap is drawn from a (tenant, k)-keyed substream, so it does not
     * perturb any other tenant's stream.
     */
    std::optional<OffloadJob>
    closedLoopJob(int tenant, uint64_t k, uint64_t after) const;

  private:
    /** Exponential gap with the given mean, ≥ 1 cycle. */
    static uint64_t expGap(SplitMix64 &rng, double mean);

    void appendTenantArrivals(int tenant,
                              std::vector<OffloadJob> &out) const;

    TrafficParams params_;
    std::vector<std::string> kernels_;
    SplitMix64 root_;
};

} // namespace mesa::service

#endif // MESA_SERVICE_TRAFFIC_HH
