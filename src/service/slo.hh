/**
 * @file
 * Per-tenant, per-QoS SLO accounting for the service layer: tail
 * latency (p50/p99/p99.9), queue-wait vs service split in the
 * src/prof taxonomy, Jain fairness across tenants, and per-class
 * violation counters against latency targets — plus the bookkeeping
 * invariants (wait + service == latency, phase split sums exactly to
 * service time) whose violation count CI gates to zero.
 */

#ifndef MESA_SERVICE_SLO_HH
#define MESA_SERVICE_SLO_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <unordered_map>

#include "prof/profile.hh"
#include "service/job.hh"
#include "util/json.hh"
#include "util/stats.hh"
#include "util/stats_registry.hh"

namespace mesa::service
{

/** SLO targets and accounting resolution. */
struct SloParams
{
    /** Per-class end-to-end latency targets (device cycles); a job
     *  whose latency() exceeds its class target is a violation. */
    std::array<uint64_t, QosClassCount> latency_target_cycles{
        50'000,    // Interactive
        500'000,   // Standard
        5'000'000, // Batch
    };

    /** Histogram resolution: buckets per class, width derived from
     *  the class target so two targets of range are covered. */
    size_t histogram_buckets = 64;
};

/** Materialized per-class summary (cycles). */
struct ClassSlo
{
    uint64_t jobs = 0;
    uint64_t rejects = 0;
    uint64_t violations = 0;
    uint64_t target_cycles = 0;
    double p50 = 0.0, p99 = 0.0, p999 = 0.0; ///< Latency percentiles.
    double mean_latency = 0.0, max_latency = 0.0;
    double mean_wait = 0.0, wait_p99 = 0.0;
    double mean_service = 0.0;
};

/** Streaming accumulator fed one JobRecord / rejection at a time. */
class SloAccounting
{
  public:
    SloAccounting() : SloAccounting(SloParams{}) {}
    explicit SloAccounting(const SloParams &params);

    /** Fold in one completed job; checks the bookkeeping
     *  invariants and counts (never hides) violations. */
    void record(const JobRecord &rec);

    /** Fold in one admission refusal. */
    void recordReject(const OffloadJob &job, RejectReason reason);

    uint64_t jobs() const { return jobs_; }
    uint64_t violations() const;
    uint64_t invariantViolations() const
    {
        return invariant_violations_;
    }
    ClassSlo classSummary(QosClass qos) const;
    const prof::PhaseBreakdown &phaseTotals() const { return phases_; }
    size_t activeTenants() const { return tenants_.size(); }

    /**
     * Jain fairness index over per-tenant total service cycles,
     * among tenants that completed at least one job: 1 = every
     * tenant received equal fabric time, 1/n = one tenant got it
     * all.
     */
    double jainFairness() const;

    /** Export current totals into a stats registry under @p prefix
     *  (e.g. "service.") — scalars plus the per-class latency
     *  histograms. Call after the run completes. */
    void exportInto(StatsRegistry &registry,
                    const std::string &prefix) const;

    /** Emit the "slo" JSON object (deterministic field order). */
    void writeJson(JsonWriter &json) const;

    /** Prometheus text exposition (mesa_service_* families). */
    void writePrometheus(std::ostream &os) const;

  private:
    struct ClassAcc
    {
        Histogram latency, wait, service;
        uint64_t jobs = 0;
        uint64_t rejects = 0;
        uint64_t violations = 0;
    };

    struct TenantAcc
    {
        uint64_t jobs = 0;
        uint64_t service_cycles = 0;
        uint64_t latency_sum = 0;
        uint64_t violations = 0;
    };

    SloParams params_;
    std::array<ClassAcc, QosClassCount> classes_;
    std::unordered_map<int, TenantAcc> tenants_;
    prof::PhaseBreakdown phases_; ///< Service-time split, all jobs.
    uint64_t jobs_ = 0;
    uint64_t invariant_violations_ = 0;
};

} // namespace mesa::service

#endif // MESA_SERVICE_SLO_HH
