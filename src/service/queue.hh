/**
 * @file
 * Bounded admission queue with backpressure. Admission control is
 * two-tier: a global pending-depth cap (queue backpressure) and a
 * per-tenant in-flight cap (one hog cannot fill the queue), plus a
 * draining state that refuses everything once graceful shutdown
 * begins. Every refusal is counted by reason — load shedding is only
 * useful if the operator can see what was shed.
 */

#ifndef MESA_SERVICE_QUEUE_HH
#define MESA_SERVICE_QUEUE_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

#include "service/job.hh"

namespace mesa::service
{

/** Admission-control limits. */
struct AdmissionParams
{
    size_t max_depth = 256;         ///< Pending jobs, all tenants.
    size_t max_tenant_inflight = 8; ///< Pending + executing per tenant.
    /**
     * Optional static-certification gate (absint certifier): return
     * true when the job's kernel body is proven to access memory
     * outside its offload region, in which case admission refuses it
     * with OutOfRegion before it consumes queue depth. Unset = no
     * certificate gating.
     */
    std::function<bool(const OffloadJob &)> out_of_region;
};

/** FIFO of admitted jobs awaiting dispatch, plus the admission gate. */
class OffloadQueue
{
  public:
    explicit OffloadQueue(const AdmissionParams &params)
        : params_(params)
    {
    }

    /**
     * Admission gate: enqueue the job (stamping its global id) or
     * refuse it with a counted reason. A tenant's in-flight count
     * covers queued and executing jobs; it drops at onComplete.
     */
    RejectReason
    offer(const OffloadJob &job)
    {
        ++submitted_;
        RejectReason reason = RejectReason::None;
        if (draining_)
            reason = RejectReason::Draining;
        else if (fabric_drained_ && fabric_drained_())
            reason = RejectReason::FabricDrained;
        else if (params_.out_of_region && params_.out_of_region(job))
            reason = RejectReason::OutOfRegion;
        else if (pending_.size() >= params_.max_depth)
            reason = RejectReason::QueueFull;
        else if (inflight_[job.tenant] >= params_.max_tenant_inflight)
            reason = RejectReason::TenantLimit;
        if (reason != RejectReason::None) {
            ++rejected_[size_t(reason)];
            return reason;
        }
        pending_.push_back(job);
        pending_.back().id = next_id_++;
        ++inflight_[job.tenant];
        ++accepted_;
        return RejectReason::None;
    }

    /** Remove and return the pending job at @p index (dispatch). The
     *  tenant stays in-flight until onComplete. */
    OffloadJob
    take(size_t index)
    {
        OffloadJob job = pending_[index];
        pending_.erase(pending_.begin() +
                       std::deque<OffloadJob>::difference_type(index));
        return job;
    }

    /** A dispatched job finished: release its tenant slot. */
    void
    onComplete(const OffloadJob &job)
    {
        auto it = inflight_.find(job.tenant);
        if (it != inflight_.end() && it->second > 0)
            --it->second;
    }

    /** Close admission (graceful drain): every offer → Draining. */
    void stopAdmission() { draining_ = true; }
    bool draining() const { return draining_; }

    /** Fabric-health gate: when set and true at offer time, the job
     *  is shed as FabricDrained (every backend degraded). Installed
     *  by the pool after its backends exist. */
    void
    setFabricDrainedGate(std::function<bool()> gate)
    {
        fabric_drained_ = std::move(gate);
    }

    bool empty() const { return pending_.empty(); }
    size_t depth() const { return pending_.size(); }
    const std::deque<OffloadJob> &pending() const { return pending_; }

    uint64_t submitted() const { return submitted_; }
    uint64_t accepted() const { return accepted_; }
    uint64_t rejected(RejectReason r) const
    {
        return rejected_[size_t(r)];
    }
    uint64_t
    rejectedTotal() const
    {
        uint64_t sum = 0;
        for (uint64_t r : rejected_)
            sum += r;
        return sum;
    }

  private:
    AdmissionParams params_;
    std::function<bool()> fabric_drained_;
    std::deque<OffloadJob> pending_;
    std::unordered_map<int, size_t> inflight_;
    bool draining_ = false;
    uint64_t next_id_ = 0;
    uint64_t submitted_ = 0;
    uint64_t accepted_ = 0;
    std::array<uint64_t, RejectReasonCount> rejected_{};
};

} // namespace mesa::service

#endif // MESA_SERVICE_QUEUE_HH
