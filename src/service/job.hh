/**
 * @file
 * Offload-as-a-service job model (ROADMAP item 1): the unit of work
 * tenants submit to the shared fabric pool — a suite kernel, a
 * dataset size, a QoS class, and the tenant that owns it — plus the
 * completed-job record the SLO accounting consumes. Time throughout
 * the service layer is virtual device cycles (the simulator's
 * deterministic clock), converted to seconds only at the reporting
 * edge via clock_ghz.
 */

#ifndef MESA_SERVICE_JOB_HH
#define MESA_SERVICE_JOB_HH

#include <cstdint>
#include <string>

#include "prof/profile.hh"

namespace mesa::service
{

/** Quality-of-service class, strictest first. */
enum class QosClass
{
    Interactive = 0, ///< Tight tail-latency target.
    Standard = 1,    ///< Default class.
    Batch = 2,       ///< Throughput-oriented; loose target.
};

constexpr int QosClassCount = 3;

/** Stable lower-case identifier ("interactive"). */
const char *qosName(QosClass qos);

/** Why admission control refused a job. */
enum class RejectReason
{
    None = 0,
    QueueFull,    ///< Global pending-depth limit hit.
    TenantLimit,  ///< Per-tenant in-flight limit hit.
    Draining,     ///< Admission closed (graceful shutdown).
    OutOfRegion,  ///< Static footprint proof places an access outside
                  ///< the job's memory region (absint certifier).
    FabricDrained, ///< Every backend is degraded (quarantined regions
                   ///< or retired PEs): new work is shed instead of
                   ///< admitted onto faulty fabric.
};

constexpr int RejectReasonCount = 6;

/** Stable lower-case identifier ("queue_full"). */
const char *rejectReasonName(RejectReason reason);

/** One offload request as submitted by a tenant session. */
struct OffloadJob
{
    uint64_t id = 0;        ///< Global submission order (set on offer).
    int tenant = 0;
    uint64_t seq = 0;       ///< Tenant-local job index.
    QosClass qos = QosClass::Standard;
    std::string kernel;     ///< Suite roster name (workloads/suite.hh).
    uint64_t iterations = 0; ///< Dataset size: hot-loop trip count.
    uint64_t arrival_cycle = 0;
};

/** Outcome of one admitted, completed job. */
struct JobRecord
{
    OffloadJob job;
    int backend = -1;
    uint64_t dispatch_cycle = 0;
    uint64_t completion_cycle = 0;
    uint64_t queue_wait_cycles = 0; ///< dispatch - arrival.
    uint64_t service_cycles = 0;    ///< completion - dispatch.

    /**
     * Service-time split in the src/prof taxonomy. Invariant (the
     * CI gate): phases.total() == service_cycles exactly. CPU-side
     * execution (fallbacks, re-execution after a guard rejection)
     * is charged to FaultRecovery at one cycle per instruction.
     */
    prof::PhaseBreakdown phases;

    bool offloaded = false;        ///< Ran on the fabric (no fallback).
    bool config_cache_hit = false;
    uint64_t accel_iterations = 0; ///< Loop iterations on the device.

    /** Functional digests (the multi-backend cross-check): CRCs of
     *  the final architectural state and memory image. */
    uint64_t state_digest = 0;
    uint64_t mem_digest = 0;

    uint64_t latency() const { return queue_wait_cycles + service_cycles; }
};

} // namespace mesa::service

#endif // MESA_SERVICE_JOB_HH
