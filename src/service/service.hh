/**
 * @file
 * Offload-as-a-service orchestration: a deterministic virtual-time
 * event loop drains one shared admission queue across a pool of N
 * fabric backends under a pluggable dispatch policy. Events are job
 * arrivals (from the traffic generator) and backend completions;
 * ties are broken (completions first, then arrival order) so a run
 * is a pure function of its parameters — the same seed replays
 * byte-identically, and in closed-loop direct mode the functional
 * digests are identical for any backend count.
 */

#ifndef MESA_SERVICE_SERVICE_HH
#define MESA_SERVICE_SERVICE_HH

#include <array>
#include <atomic>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "accel/params.hh"
#include "service/backend.hh"
#include "service/job.hh"
#include "service/queue.hh"
#include "service/slo.hh"
#include "service/traffic.hh"
#include "util/json.hh"

namespace mesa::service
{

/** How the pool picks a backend (and a job) at dispatch time. */
enum class DispatchPolicy
{
    LeastLoaded = 0, ///< FIFO job → idle backend with least lifetime
                     ///< busy time (ties: lowest id).
    KernelAffinity,  ///< Prefer each job's home backend (kernel-hash
                     ///< sharding, warm config caches); falls back to
                     ///< least-loaded so it stays work-conserving.
    QosStrict,       ///< Strictest-QoS job first (FIFO within class).
};

const char *dispatchPolicyName(DispatchPolicy policy);

/** Parse a policy name ("least-loaded"); fatal on unknown. */
DispatchPolicy dispatchPolicyByName(const std::string &name);

/** Periodic progress snapshot (drives CLIs and shutdown tests). */
struct ServiceProgress
{
    uint64_t completed = 0;
    uint64_t submitted = 0;
    uint64_t rejected = 0;
    uint64_t now_cycle = 0;
};

/** Full configuration of one service run. */
struct ServiceParams
{
    TrafficParams traffic;
    AdmissionParams admission;
    BackendParams backend; ///< Every backend gets this config.
    int backends = 2;
    DispatchPolicy policy = DispatchPolicy::LeastLoaded;
    SloParams slo;

    /**
     * Graceful-shutdown flag (e.g. set from a SIGINT handler): once
     * observed true, admission closes — not-yet-arrived jobs are
     * shed as Draining — while queued and in-flight jobs drain to
     * completion and all accounting stays exact.
     */
    const std::atomic<bool> *stop = nullptr;

    /** Called every @p progress_every completions (0 = never). */
    std::function<void(const ServiceProgress &)> progress;
    uint64_t progress_every = 0;
};

/** Per-backend lifetime summary. */
struct BackendSummary
{
    int id = 0;
    uint64_t jobs = 0;
    uint64_t batches = 0;
    uint64_t busy_cycles = 0;
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
    uint64_t cache_tag_conflicts = 0;
    /** Fabric health at the end of the run (live gauges). */
    uint64_t quarantined_regions = 0;
    uint64_t retired_pes = 0;
};

/** Outcome of one service run. */
struct ServiceResult
{
    uint64_t submitted = 0;
    uint64_t accepted = 0;
    uint64_t completed = 0;
    std::array<uint64_t, RejectReasonCount> rejects{};
    uint64_t horizon_cycles = 0; ///< Last event (virtual cycles).
    bool stopped = false;        ///< Graceful shutdown was taken.

    std::vector<JobRecord> records; ///< Dispatch order.
    SloAccounting slo;
    std::vector<BackendSummary> backends;

    /** Quarantine draining: dispatches steered onto a healthy backend
     *  while an idle degraded one was passed over. */
    uint64_t drain_steers = 0;

    /** slo invariants + global conservation (submitted == accepted +
     *  rejected, accepted == completed). CI gates this to zero. */
    uint64_t invariant_violations = 0;

    double clock_ghz = 2.0;

    uint64_t
    rejectedTotal() const
    {
        uint64_t sum = 0;
        for (uint64_t r : rejects)
            sum += r;
        return sum;
    }

    /** Sustained offload completion rate in simulated time — a
     *  deterministic throughput figure (jobs per simulated second),
     *  independent of host speed. */
    double
    offloadsPerSecondSim() const
    {
        if (horizon_cycles == 0)
            return 0.0;
        return double(completed) /
               (double(horizon_cycles) / (clock_ghz * 1e9));
    }
};

/**
 * Build an admission gate backed by the abstract-interpretation
 * certifier (src/absint): returns a predicate for
 * AdmissionParams::out_of_region that refuses jobs whose kernel body
 * is statically proven to access memory outside the job's own
 * offload region. Verdicts are memoized per (kernel, iterations) —
 * the certificate is a pure function of the body and dataset shape,
 * so one analysis covers every job of that shape. Kernels that are
 * not encodable, not offloadable, or whose footprint is merely
 * unknown are admitted (the runtime guards own those).
 */
std::function<bool(const OffloadJob &)>
makeCertificateGate(const accel::AccelParams &accel);

/** Run one service campaign to completion (or drained shutdown). */
ServiceResult runService(const ServiceParams &params);

/**
 * Prometheus gauges for the pool's fabric health (appended to the
 * mesa_serve --metrics-out exposition): per-backend
 * mesa_fault_quarantined_regions / mesa_fault_retired_pes, plus the
 * pool-level mesa_service_drain_steers_total counter.
 */
void writeFabricHealthPrometheus(const ServiceResult &result,
                                 std::ostream &os);

/**
 * Deterministic full report (no wall-clock, no host info): the same
 * parameters produce a byte-identical report on every run.
 */
void writeServiceJson(const ServiceParams &params,
                      const ServiceResult &result, JsonWriter &json);

/**
 * Functional digest of a closed-loop run, sorted by (tenant, seq):
 * kernel, size, QoS, and the final architectural-state and memory
 * CRCs of every job — no timing, no backend ids. In direct mode
 * (sched_ways == 1) this string is identical for ANY backend count:
 * the multi-backend sharding cross-check.
 */
std::string closedLoopDigest(const ServiceResult &result);

} // namespace mesa::service

#endif // MESA_SERVICE_SERVICE_HH
