#include "service/service.hh"

#include <algorithm>
#include <map>
#include <queue>

#include "absint/certificate.hh"
#include "cpu/system.hh"
#include "dfg/ldfg.hh"
#include "riscv/emulator.hh"
#include "util/logging.hh"
#include "workloads/suite.hh"

namespace mesa::service
{

namespace
{

/** FNV-1a over the kernel name: the affinity shard key. */
size_t
kernelShard(const std::string &kernel, size_t backends)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (char c : kernel) {
        h ^= uint64_t(uint8_t(c));
        h *= 0x100000001b3ull;
    }
    return size_t(h % backends);
}

/** Pending completion: (cycle, record index), min-heap order. */
struct Completion
{
    uint64_t cycle;
    uint64_t record;
    bool
    operator>(const Completion &other) const
    {
        if (cycle != other.cycle)
            return cycle > other.cycle;
        return record > other.record;
    }
};

/** Closed-loop arrival order: (cycle, tenant, seq), min-heap. */
struct ArrivalLater
{
    bool
    operator()(const OffloadJob &a, const OffloadJob &b) const
    {
        if (a.arrival_cycle != b.arrival_cycle)
            return a.arrival_cycle > b.arrival_cycle;
        if (a.tenant != b.tenant)
            return a.tenant > b.tenant;
        return a.seq > b.seq;
    }
};

constexpr uint64_t kNever = ~uint64_t(0);

/** The whole event-loop state, so dispatch helpers stay readable. */
struct Engine
{
    const ServiceParams &params;
    TrafficGenerator gen;
    OffloadQueue queue;
    SloAccounting slo;
    std::vector<std::unique_ptr<ServiceBackend>> backends;
    std::vector<uint64_t> busy_until;

    // Open-loop arrivals (pre-generated) / closed-loop heap.
    std::vector<OffloadJob> arrivals;
    size_t next_arrival = 0;
    std::priority_queue<OffloadJob, std::vector<OffloadJob>,
                        ArrivalLater>
        upcoming;

    std::priority_queue<Completion, std::vector<Completion>,
                        std::greater<Completion>>
        completions;

    ServiceResult result;
    uint64_t last_progress = 0;

    explicit Engine(const ServiceParams &p)
        : params(p), gen(p.traffic), queue(p.admission), slo(p.slo)
    {
        if (p.backends < 1)
            fatal("service: need at least one backend");
        for (int b = 0; b < p.backends; ++b)
            backends.push_back(
                std::make_unique<ServiceBackend>(b, p.backend));
        busy_until.assign(size_t(p.backends), 0);
        // Quarantine draining, last line of defense: when every
        // backend has degraded (quarantined regions / retired PEs),
        // new offers are shed as FabricDrained instead of being
        // admitted onto faulty fabric.
        queue.setFabricDrainedGate([this] {
            for (const auto &be : backends)
                if (!be->degraded())
                    return false;
            return true;
        });
        if (gen.closedLoop()) {
            for (int t = 0; t < p.traffic.tenants; ++t)
                if (auto job = gen.closedLoopJob(t, 0, 0))
                    upcoming.push(*job);
        } else {
            arrivals = gen.openLoopArrivals();
        }
    }

    uint64_t
    nextArrivalCycle() const
    {
        if (gen.closedLoop())
            return upcoming.empty() ? kNever
                                    : upcoming.top().arrival_cycle;
        return next_arrival < arrivals.size()
                   ? arrivals[next_arrival].arrival_cycle
                   : kNever;
    }

    void
    submit(const OffloadJob &job)
    {
        const RejectReason reason = queue.offer(job);
        if (reason != RejectReason::None)
            slo.recordReject(job, reason);
    }

    /** Admission closes; every not-yet-arrived job is shed (counted
     *  as a Draining rejection) so conservation stays exact. */
    void
    beginDrain()
    {
        queue.stopAdmission();
        result.stopped = true;
        if (gen.closedLoop()) {
            while (!upcoming.empty()) {
                submit(upcoming.top());
                upcoming.pop();
            }
        } else {
            for (; next_arrival < arrivals.size(); ++next_arrival)
                submit(arrivals[next_arrival]);
        }
    }

    void
    processCompletionsAt(uint64_t now)
    {
        while (!completions.empty() &&
               completions.top().cycle == now) {
            const JobRecord &rec =
                result.records[completions.top().record];
            completions.pop();
            queue.onComplete(rec.job);
            slo.record(rec);
            ++result.completed;
            // Closed loop: the tenant thinks, then submits its next
            // job — unless the session roster is exhausted or we are
            // draining.
            if (gen.closedLoop() && !queue.draining()) {
                if (auto job = gen.closedLoopJob(
                        rec.job.tenant, rec.job.seq + 1, now))
                    upcoming.push(*job);
            }
            if (params.progress && params.progress_every &&
                result.completed - last_progress >=
                    params.progress_every) {
                last_progress = result.completed;
                params.progress({result.completed, queue.submitted(),
                                 queue.rejectedTotal(), now});
            }
        }
    }

    void
    processArrivalsAt(uint64_t now)
    {
        if (gen.closedLoop()) {
            while (!upcoming.empty() &&
                   upcoming.top().arrival_cycle == now) {
                submit(upcoming.top());
                upcoming.pop();
            }
        } else {
            for (; next_arrival < arrivals.size() &&
                   arrivals[next_arrival].arrival_cycle == now;
                 ++next_arrival)
                submit(arrivals[next_arrival]);
        }
    }

    bool
    anyHealthy() const
    {
        for (const auto &be : backends)
            if (!be->degraded())
                return true;
        return false;
    }

    /** Can backend @p b take new work at @p now? Quarantine draining:
     *  a degraded backend takes none while any healthy one exists —
     *  queued jobs wait for (or steer to) healthy fabric instead of
     *  running degraded. With the whole pool degraded the gate lifts
     *  so already-admitted work still drains (the controller's own
     *  relocate/CPU-fallback path owns correctness there). */
    bool
    dispatchable(size_t b, uint64_t now) const
    {
        if (busy_until[b] > now)
            return false;
        return !backends[b]->degraded() || !anyHealthy();
    }

    /** Idle backend chosen for a plain dispatch: least lifetime busy
     *  cycles, ties to the lowest id. */
    int
    leastLoadedIdle(uint64_t now) const
    {
        int best = -1;
        for (size_t b = 0; b < backends.size(); ++b) {
            if (!dispatchable(b, now))
                continue;
            if (best < 0 || backends[b]->busyCycles() <
                                backends[size_t(best)]->busyCycles())
                best = int(b);
        }
        return best;
    }

    /** Pick (pending index, backend) per the dispatch policy, or
     *  pending index ~0 when nothing can be placed right now. */
    std::pair<size_t, int>
    pickDispatch(uint64_t now) const
    {
        const auto &pending = queue.pending();
        switch (params.policy) {
          case DispatchPolicy::LeastLoaded:
            return {0, leastLoadedIdle(now)};

          case DispatchPolicy::QosStrict: {
            size_t best = 0;
            for (size_t i = 1; i < pending.size(); ++i)
                if (int(pending[i].qos) < int(pending[best].qos))
                    best = i; // FIFO within class: first strict win.
            return {best, leastLoadedIdle(now)};
          }

          case DispatchPolicy::KernelAffinity: {
            // First FIFO job whose home shard is idle; if no home is
            // free, stay work-conserving: FIFO head to the
            // least-loaded idle backend.
            for (size_t i = 0; i < pending.size(); ++i) {
                const int home = int(
                    kernelShard(pending[i].kernel, backends.size()));
                if (dispatchable(size_t(home), now))
                    return {i, home};
            }
            return {0, leastLoadedIdle(now)};
          }
        }
        return {0, -1};
    }

    void
    dispatchAt(uint64_t now)
    {
        while (!queue.empty()) {
            const auto [index, backend] = pickDispatch(now);
            if (backend < 0)
                return; // Every backend is busy (or drain-gated).
            ServiceBackend &be = *backends[size_t(backend)];
            // Drain accounting: this dispatch passed over at least
            // one idle degraded backend for a healthy one.
            if (!be.degraded()) {
                for (size_t b = 0; b < backends.size(); ++b) {
                    if (busy_until[b] <= now &&
                        backends[b]->degraded()) {
                        ++result.drain_steers;
                        break;
                    }
                }
            }

            std::vector<OffloadJob> batch;
            batch.push_back(queue.take(index));
            if (be.schedWays() > 1) {
                // Gather same-kernel co-tenants, FIFO order.
                const auto &pending = queue.pending();
                std::vector<size_t> picks;
                for (size_t i = 0;
                     i < pending.size() &&
                     batch.size() + picks.size() <
                         size_t(be.maxBatch());
                     ++i)
                    if (pending[i].kernel == batch.front().kernel)
                        picks.push_back(i);
                // Erase back-to-front so indices stay valid.
                for (auto it = picks.rbegin(); it != picks.rend();
                     ++it)
                    batch.push_back(queue.take(*it));
                std::sort(batch.begin() + 1, batch.end(),
                          [](const OffloadJob &a, const OffloadJob &b) {
                              return a.id < b.id;
                          });
            }

            std::vector<JobRecord> recs =
                batch.size() == 1
                    ? std::vector<JobRecord>{be.execute(batch.front(),
                                                        now)}
                    : be.executeBatch(batch, now);
            for (JobRecord &rec : recs) {
                busy_until[size_t(backend)] = std::max(
                    busy_until[size_t(backend)], rec.completion_cycle);
                result.horizon_cycles = std::max(
                    result.horizon_cycles, rec.completion_cycle);
                completions.push(
                    {rec.completion_cycle, result.records.size()});
                result.records.push_back(std::move(rec));
            }
        }
    }

    void
    run()
    {
        for (;;) {
            if (params.stop && !queue.draining() &&
                params.stop->load(std::memory_order_relaxed))
                beginDrain();

            const uint64_t arr = nextArrivalCycle();
            const uint64_t done = completions.empty()
                                      ? kNever
                                      : completions.top().cycle;
            if (arr == kNever && done == kNever)
                break;
            // Completions first on ties: they free backends (and, in
            // closed loop, schedule successors) before new arrivals
            // contend for admission.
            const uint64_t now = std::min(arr, done);
            if (done == now)
                processCompletionsAt(now);
            if (arr == now)
                processArrivalsAt(now);
            dispatchAt(now);
        }
        if (!queue.empty())
            fatal("service: event loop exited with ", queue.depth(),
                  " jobs stranded in the queue");
    }

    ServiceResult
    finish()
    {
        result.submitted = queue.submitted();
        result.accepted = queue.accepted();
        for (int r = 0; r < RejectReasonCount; ++r)
            result.rejects[size_t(r)] =
                queue.rejected(RejectReason(r));
        result.clock_ghz = params.backend.mesa.clock_ghz;

        // Global conservation: everything submitted was either
        // accepted or counted as shed, and everything accepted
        // completed (drained).
        result.invariant_violations = slo.invariantViolations();
        if (result.submitted !=
            result.accepted + result.rejectedTotal())
            ++result.invariant_violations;
        if (result.accepted != result.completed)
            ++result.invariant_violations;
        if (slo.jobs() != result.completed)
            ++result.invariant_violations;

        for (const auto &be : backends)
            result.backends.push_back(
                {be->id(), be->jobs(), be->batches(), be->busyCycles(),
                 be->cacheHits(), be->cacheMisses(),
                 be->cacheTagConflicts(), be->quarantinedRegions(),
                 be->retiredPes()});
        result.slo = std::move(slo);
        return std::move(result);
    }
};

} // namespace

std::function<bool(const OffloadJob &)>
makeCertificateGate(const accel::AccelParams &accel)
{
    // Shared across copies of the returned predicate: the verdict is
    // a pure function of (kernel, iterations), so every job of the
    // same shape reuses one analysis.
    auto verdicts = std::make_shared<
        std::map<std::pair<std::string, uint64_t>, bool>>();
    return [accel, verdicts](const OffloadJob &job) -> bool {
        const auto key = std::make_pair(job.kernel, job.iterations);
        if (auto it = verdicts->find(key); it != verdicts->end())
            return it->second;
        bool out_of_region = false;
        for (const auto &entry : workloads::suiteRegistry()) {
            if (job.kernel != entry.name)
                continue;
            const workloads::Kernel kernel = entry.make(job.iterations);
            const auto body = kernel.loopBody();
            if (!kernel.mesa_supported || body.empty())
                break;
            dfg::BuildError err = dfg::BuildError::None;
            const auto ldfg = dfg::Ldfg::build(
                body, accel.op_latency, 4 * accel.capacity(), &err);
            if (!ldfg)
                break; // Not encodable: the backend monitor's call.
            // Bind the proof to the job's own memory image at loop
            // entry, exactly as the backend would execute it.
            mem::MainMemory memory;
            kernel.init_data(memory);
            cpu::loadProgram(memory, kernel.program);
            riscv::Emulator emu(memory);
            emu.reset(kernel.program.base_pc);
            kernel.fullRange()(emu.state());
            uint64_t steps = 0;
            while (!emu.halted() &&
                   emu.state().pc != kernel.loop_start &&
                   steps < 1'000'000) {
                emu.step();
                ++steps;
            }
            if (emu.state().pc != kernel.loop_start)
                break; // Loop entry unreachable: nothing to certify.
            const absint::BodyCertificate cert =
                absint::analyze(*ldfg);
            const absint::CertificateInstance inst =
                absint::instantiate(cert, emu.state(),
                                    absint::residentRegion(memory));
            out_of_region =
                inst.footprint == absint::RegionClass::ProvenOut;
            break;
        }
        (*verdicts)[key] = out_of_region;
        return out_of_region;
    };
}

const char *
dispatchPolicyName(DispatchPolicy policy)
{
    switch (policy) {
      case DispatchPolicy::LeastLoaded:
        return "least-loaded";
      case DispatchPolicy::KernelAffinity:
        return "kernel-affinity";
      case DispatchPolicy::QosStrict:
        return "qos-strict";
    }
    return "?";
}

DispatchPolicy
dispatchPolicyByName(const std::string &name)
{
    if (name == "least-loaded")
        return DispatchPolicy::LeastLoaded;
    if (name == "kernel-affinity" || name == "affinity")
        return DispatchPolicy::KernelAffinity;
    if (name == "qos-strict" || name == "qos")
        return DispatchPolicy::QosStrict;
    fatal("unknown dispatch policy '", name,
          "' (known: least-loaded kernel-affinity qos-strict)");
}

ServiceResult
runService(const ServiceParams &params)
{
    Engine engine(params);
    engine.run();
    return engine.finish();
}

void
writeServiceJson(const ServiceParams &params,
                 const ServiceResult &result, JsonWriter &json)
{
    json.beginObject();
    json.field("tool", "mesa_serve");
    json.field("profile",
               trafficProfileName(params.traffic.profile));
    json.field("policy", dispatchPolicyName(params.policy));
    json.field("seed", params.traffic.seed);
    json.field("backends", uint64_t(params.backends));
    json.field("sched_ways", uint64_t(params.backend.sched_ways));
    json.field("tenants", uint64_t(params.traffic.tenants));
    json.field("accel", params.backend.mesa.accel.name);

    json.key("admission");
    json.beginObject();
    json.field("max_depth", uint64_t(params.admission.max_depth));
    json.field("max_tenant_inflight",
               uint64_t(params.admission.max_tenant_inflight));
    json.end();

    json.field("submitted", result.submitted);
    json.field("accepted", result.accepted);
    json.field("completed", result.completed);
    json.field("stopped", result.stopped);
    json.key("rejects");
    json.beginObject();
    for (int r = 1; r < RejectReasonCount; ++r)
        json.field(rejectReasonName(RejectReason(r)),
                   result.rejects[size_t(r)]);
    json.end();

    json.field("horizon_cycles", result.horizon_cycles);
    json.field("offloads_per_second_sim",
               result.offloadsPerSecondSim());
    json.field("drain_steers", result.drain_steers);
    json.field("invariant_violations", result.invariant_violations);

    json.key("slo");
    result.slo.writeJson(json);

    json.key("backend_detail");
    json.beginArray();
    for (const BackendSummary &be : result.backends) {
        json.beginObject();
        json.field("id", uint64_t(be.id));
        json.field("jobs", be.jobs);
        json.field("batches", be.batches);
        json.field("busy_cycles", be.busy_cycles);
        json.field("config_cache_hits", be.cache_hits);
        json.field("config_cache_misses", be.cache_misses);
        json.field("config_cache_tag_conflicts",
                   be.cache_tag_conflicts);
        json.field("quarantined_regions", be.quarantined_regions);
        json.field("retired_pes", be.retired_pes);
        json.end();
    }
    json.end();
    json.end();
}

void
writeFabricHealthPrometheus(const ServiceResult &result,
                            std::ostream &os)
{
    os << "# HELP mesa_fault_quarantined_regions Loop regions "
          "currently quarantined on this backend.\n"
       << "# TYPE mesa_fault_quarantined_regions gauge\n";
    for (const BackendSummary &be : result.backends)
        os << "mesa_fault_quarantined_regions{backend=\"" << be.id
           << "\"} " << be.quarantined_regions << "\n";

    os << "# HELP mesa_fault_retired_pes PEs retired after BIST "
          "fault localization on this backend.\n"
       << "# TYPE mesa_fault_retired_pes gauge\n";
    for (const BackendSummary &be : result.backends)
        os << "mesa_fault_retired_pes{backend=\"" << be.id << "\"} "
           << be.retired_pes << "\n";

    os << "# HELP mesa_service_drain_steers_total Dispatches steered "
          "onto a healthy backend past an idle degraded one.\n"
       << "# TYPE mesa_service_drain_steers_total counter\n"
       << "mesa_service_drain_steers_total " << result.drain_steers
       << "\n";
}

std::string
closedLoopDigest(const ServiceResult &result)
{
    std::vector<const JobRecord *> sorted;
    sorted.reserve(result.records.size());
    for (const JobRecord &rec : result.records)
        sorted.push_back(&rec);
    std::sort(sorted.begin(), sorted.end(),
              [](const JobRecord *a, const JobRecord *b) {
                  if (a->job.tenant != b->job.tenant)
                      return a->job.tenant < b->job.tenant;
                  return a->job.seq < b->job.seq;
              });
    JsonWriter json;
    json.beginArray();
    for (const JobRecord *rec : sorted) {
        json.beginObject();
        json.field("tenant", uint64_t(rec->job.tenant));
        json.field("seq", rec->job.seq);
        json.field("kernel", rec->job.kernel);
        json.field("iterations", rec->job.iterations);
        json.field("qos", qosName(rec->job.qos));
        json.field("offloaded", rec->offloaded);
        json.field("state_digest", rec->state_digest);
        json.field("mem_digest", rec->mem_digest);
        json.end();
    }
    json.end();
    return json.str();
}

} // namespace mesa::service
