/**
 * @file
 * A service backend is one persistent fabric instance — a
 * MesaController with its accelerator, config cache, quarantine
 * ledger, and cycle-attribution profile — that executes a stream of
 * offload jobs. The enabling decoupling (ROADMAP item 1): the
 * controller no longer owns one memory for life; each job brings a
 * fresh MainMemory image (its own dataset) and the backend rebinds
 * the fabric to it, so a pool of N backends can drain one shared
 * queue while every backend keeps its caches warm across jobs.
 *
 * Two execution modes per backend:
 *  - direct (sched_ways == 1): each job runs alone through
 *    MesaController::offloadLoop — the bit-exact reference path used
 *    by the multi-backend cross-check;
 *  - co-scheduled (sched_ways > 1): same-kernel jobs are gathered
 *    into a batch and time/space-multiplexed on one fabric through a
 *    per-batch MultiTenantScheduler, each job owning a disjoint
 *    iteration range of a shared dataset.
 */

#ifndef MESA_SERVICE_BACKEND_HH
#define MESA_SERVICE_BACKEND_HH

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "mesa/controller.hh"
#include "prof/profile.hh"
#include "service/job.hh"
#include "workloads/kernel.hh"

namespace mesa::service
{

/** Per-backend fabric configuration. */
struct BackendParams
{
    core::MesaParams mesa;

    /**
     * Spatial ways for co-scheduled batches: 1 = direct mode (every
     * job runs alone, the deterministic reference), >1 = same-kernel
     * jobs share the fabric through a multi-tenant scheduler.
     */
    int sched_ways = 1;
    int max_batch = 4; ///< Jobs gathered per co-scheduled batch.
    uint64_t sched_epoch_iterations = 256;

    /** Attach a cycle-attribution profile so each job's service time
     *  splits into compute / NoC-stall / mem-stall exactly. */
    bool profile = true;

    // Emulator guard rails (mirrors sched/multicore.cc).
    uint64_t max_preamble_steps = 1'000'000;
    uint64_t max_resume_steps = 50'000'000;
};

/** One fabric instance serving jobs from the shared queue. */
class ServiceBackend
{
  public:
    ServiceBackend(int id, const BackendParams &params);

    int id() const { return id_; }

    /** Direct mode: run @p job alone on the persistent controller.
     *  Synchronous — returns the completed record; the pool turns
     *  service_cycles into the backend's busy window. */
    JobRecord execute(const OffloadJob &job, uint64_t dispatch_cycle);

    /** Co-scheduled mode: run a batch of same-kernel jobs on one
     *  fabric, each owning a disjoint iteration range. */
    std::vector<JobRecord>
    executeBatch(const std::vector<OffloadJob> &jobs,
                 uint64_t dispatch_cycle);

    int schedWays() const { return params_.sched_ways; }
    int maxBatch() const { return params_.max_batch; }

    // Lifetime counters for the pool summary.
    uint64_t jobs() const { return jobs_; }
    uint64_t batches() const { return batches_; }
    uint64_t busyCycles() const { return busy_cycles_; }
    uint64_t
    cacheHits() const
    {
        return controller_->configCache().hits();
    }
    uint64_t
    cacheMisses() const
    {
        return controller_->configCache().misses();
    }
    uint64_t
    cacheTagConflicts() const
    {
        return controller_->configCache().tagConflicts();
    }

    // Fabric health (the pool's quarantine-drain path steers work
    // away from degraded backends).
    uint64_t
    quarantinedRegions() const
    {
        return controller_->quarantine().quarantinedCount();
    }
    uint64_t retiredPes() const { return controller_->faultyPes().size(); }
    bool
    degraded() const
    {
        return quarantinedRegions() > 0 || retiredPes() > 0;
    }

    core::MesaController &controller() { return *controller_; }

  private:
    /** Build-or-reuse a kernel instance; keyed (name, iterations)
     *  so the power-of-two size draws hit. */
    const workloads::Kernel &kernelFor(const std::string &name,
                                       uint64_t iterations);

    int id_;
    BackendParams params_;

    /** The controller needs a memory at construction; jobs rebind. */
    mem::MainMemory boot_memory_;
    std::unique_ptr<core::MesaController> controller_;
    prof::AccelProfile profile_;

    std::map<std::pair<std::string, uint64_t>, workloads::Kernel>
        kernel_cache_;

    uint64_t jobs_ = 0;
    uint64_t batches_ = 0;
    uint64_t busy_cycles_ = 0;
};

} // namespace mesa::service

#endif // MESA_SERVICE_BACKEND_HH
