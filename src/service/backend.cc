#include "service/backend.hh"

#include <algorithm>

#include "cpu/system.hh"
#include "sched/partition.hh"
#include "sched/scheduler.hh"
#include "util/crc32.hh"
#include "util/logging.hh"
#include "workloads/suite.hh"

namespace mesa::service
{

namespace
{

/** CRC of the final architectural state (pc + every register). */
uint64_t
archStateDigest(const riscv::ArchState &state)
{
    Crc32 crc;
    crc.add32(state.pc);
    for (uint32_t v : state.x)
        crc.add32(v);
    for (uint32_t v : state.f)
        crc.add32(v);
    return crc.value();
}

/** CRC of the memory image, page-sorted and zero-page-normalized so
 *  the digest depends only on content, not on touch order. */
uint64_t
memoryDigest(const mem::MainMemory &memory)
{
    auto snap = memory.snapshot();
    std::vector<uint32_t> pages;
    pages.reserve(snap.size());
    for (const auto &kv : snap) {
        const auto &bytes = kv.second;
        const bool zero = std::all_of(bytes.begin(), bytes.end(),
                                      [](uint8_t b) { return b == 0; });
        if (!zero)
            pages.push_back(kv.first);
    }
    std::sort(pages.begin(), pages.end());
    Crc32 crc;
    for (uint32_t page : pages) {
        crc.add32(page);
        crc.addBytes(snap[page].data(), snap[page].size());
    }
    return crc.value();
}

/** Step the emulator until its pc reaches @p target (or it halts). */
void
runToPc(riscv::Emulator &emu, uint32_t target, uint64_t max_steps,
        const char *what)
{
    uint64_t steps = 0;
    while (!emu.halted() && emu.state().pc != target) {
        emu.step();
        if (++steps > max_steps)
            fatal("service backend: ", what, " exceeded ", max_steps,
                  " steps");
    }
}

/** Step the emulator to halt. */
void
runToHalt(riscv::Emulator &emu, uint64_t max_steps, const char *what)
{
    uint64_t steps = 0;
    while (!emu.halted()) {
        emu.step();
        if (++steps > max_steps)
            fatal("service backend: ", what, " exceeded ", max_steps,
                  " steps");
    }
}

} // namespace

ServiceBackend::ServiceBackend(int id, const BackendParams &params)
    : id_(id), params_(params),
      controller_(std::make_unique<core::MesaController>(params.mesa,
                                                         boot_memory_))
{
    if (params_.sched_ways < 1)
        fatal("service backend: sched_ways must be >= 1");
    if (params_.profile)
        controller_->attachProfile(&profile_);
}

const workloads::Kernel &
ServiceBackend::kernelFor(const std::string &name, uint64_t iterations)
{
    const auto key = std::make_pair(name, iterations);
    auto it = kernel_cache_.find(key);
    if (it != kernel_cache_.end())
        return it->second;
    for (const auto &entry : workloads::suiteRegistry()) {
        if (name == entry.name) {
            // Build at the job's exact iteration count (no suite
            // scale divisor — dataset size is the job's contract).
            auto [pos, inserted] =
                kernel_cache_.emplace(key, entry.make(iterations));
            (void)inserted;
            return pos->second;
        }
    }
    fatal("service backend: unknown kernel '", name, "'");
}

JobRecord
ServiceBackend::execute(const OffloadJob &job, uint64_t dispatch_cycle)
{
    const workloads::Kernel &kernel =
        kernelFor(job.kernel, job.iterations);

    // Each job brings its own memory image; the fabric (with its warm
    // config cache) is rebound to it for the duration of the job.
    mem::MainMemory memory;
    kernel.init_data(memory);
    cpu::loadProgram(memory, kernel.program);
    controller_->rebindMemory(memory);

    riscv::Emulator emu(memory);
    emu.reset(kernel.program.base_pc);
    kernel.fullRange()(emu.state());
    runToPc(emu, kernel.loop_start, params_.max_preamble_steps,
            "preamble");

    JobRecord rec;
    rec.job = job;
    rec.backend = id_;
    rec.dispatch_cycle = dispatch_cycle;
    rec.queue_wait_cycles = dispatch_cycle - job.arrival_cycle;

    if (!emu.halted() && kernel.mesa_supported) {
        auto stats = controller_->offloadLoop(kernel.loopBody(),
                                              emu.state(),
                                              kernel.parallel);
        if (stats) {
            rec.offloaded =
                stats->fallback == core::FallbackReason::None;
            rec.config_cache_hit = stats->config_cache_hit;
            rec.accel_iterations = stats->accel_iterations;
            rec.phases[prof::Phase::Encode] = stats->encode_cycles;
            rec.phases[prof::Phase::Map] = stats->mapping_cycles;
            rec.phases[prof::Phase::ConfigStream] =
                stats->config_cycles + stats->reconfig_cycles;
            // Device cycles: the attached profile splits them into
            // compute / NoC / mem summing exactly to accel_cycles;
            // without a split everything lands in Compute.
            const uint64_t attributed = stats->prof_compute_cycles +
                                        stats->prof_noc_stall_cycles +
                                        stats->prof_mem_stall_cycles;
            if (attributed == stats->accel_cycles &&
                stats->accel_cycles > 0) {
                rec.phases[prof::Phase::Compute] =
                    stats->prof_compute_cycles;
                rec.phases[prof::Phase::NocStall] =
                    stats->prof_noc_stall_cycles;
                rec.phases[prof::Phase::MemStall] =
                    stats->prof_mem_stall_cycles;
            } else {
                rec.phases[prof::Phase::Compute] = stats->accel_cycles;
            }
            rec.phases[prof::Phase::SchedWait] =
                stats->sched_wait_cycles;
            // CPU re-execution after a rollback / quarantine: one
            // cycle per instruction.
            rec.phases[prof::Phase::FaultRecovery] =
                stats->cpu_reexec_instructions;
        }
    }

    // Whatever part of the hot loop remains (structural failure,
    // unsupported kernel, partial progress after a watchdog trip)
    // runs functionally on the CPU, charged at one cycle per
    // instruction to FaultRecovery.
    const uint64_t cpu_steps = emu.runWhileInRegion(
        kernel.loop_start, kernel.loop_end, params_.max_resume_steps);
    rec.phases[prof::Phase::FaultRecovery] += cpu_steps;

    // Postamble (loop exit to halt) is host-side epilogue, not
    // offload service time.
    runToHalt(emu, params_.max_resume_steps, "postamble");

    if (rec.phases.total() == 0)
        rec.phases[prof::Phase::Compute] = 1; // A job takes >= 1 cycle.
    rec.service_cycles = rec.phases.total();
    rec.completion_cycle = dispatch_cycle + rec.service_cycles;

    rec.state_digest = archStateDigest(emu.state());
    rec.mem_digest = memoryDigest(memory);

    ++jobs_;
    busy_cycles_ += rec.service_cycles;

    // Leave the controller bound to its boot memory: `memory` dies
    // with this frame and a dangling binding would be a trap for any
    // later direct controller use.
    controller_->rebindMemory(boot_memory_);
    return rec;
}

std::vector<JobRecord>
ServiceBackend::executeBatch(const std::vector<OffloadJob> &jobs,
                             uint64_t dispatch_cycle)
{
    if (jobs.empty())
        return {};
    if (jobs.size() == 1 || params_.sched_ways == 1) {
        std::vector<JobRecord> out;
        out.reserve(jobs.size());
        for (const auto &job : jobs)
            out.push_back(execute(job, dispatch_cycle));
        return out;
    }
    for (const auto &job : jobs)
        if (job.kernel != jobs.front().kernel)
            fatal("service backend: mixed-kernel batch");

    // One kernel instance sized for the whole batch; each job owns
    // the iteration range at its prefix-sum offset.
    uint64_t total = 0;
    std::vector<uint64_t> offset(jobs.size());
    for (size_t j = 0; j < jobs.size(); ++j) {
        offset[j] = total;
        total += jobs[j].iterations;
    }
    const workloads::Kernel &kernel =
        kernelFor(jobs.front().kernel, total);
    const auto body = kernel.loopBody();

    mem::MainMemory memory;
    kernel.init_data(memory);
    cpu::loadProgram(memory, kernel.program);

    sched::SchedParams sp;
    sp.accel = params_.mesa.accel;
    sp.accel_mem = params_.mesa.accel_mem;
    sp.mapper = params_.mesa.mapper;
    sp.policy = sched::Policy::Priority;
    sp.epoch_iterations = params_.sched_epoch_iterations;
    sp.enable_tiling = params_.mesa.enable_tiling;
    sp.enable_pipelining = params_.mesa.enable_pipelining;
    sp.enable_forwarding = params_.mesa.enable_forwarding;
    sp.enable_vectorization = params_.mesa.enable_vectorization;
    sp.enable_prefetch = params_.mesa.enable_prefetch;
    sp.shadow_config = params_.mesa.shadow_config;
    sp.max_unmapped_frac = params_.mesa.max_unmapped_frac;
    sp.clock_ghz = params_.mesa.clock_ghz;
    sp.spatial_ways = std::min(
        params_.sched_ways,
        std::max(1, sched::maxWays(sp.accel, body.size())));

    sched::MultiTenantScheduler scheduler(sp, memory);

    std::vector<std::unique_ptr<riscv::Emulator>> emus;
    std::vector<int> ids(jobs.size(), -1);
    for (size_t j = 0; j < jobs.size(); ++j) {
        auto emu = std::make_unique<riscv::Emulator>(memory);
        emu->reset(kernel.program.base_pc);
        kernel.init_range(emu->state(), offset[j],
                          offset[j] + jobs[j].iterations);
        runToPc(*emu, kernel.loop_start, params_.max_preamble_steps,
                "batch preamble");
        if (!emu->halted()) {
            // Strictest QoS class gets the highest scheduler
            // priority.
            const int prio = QosClassCount - 1 - int(jobs[j].qos);
            ids[j] = scheduler.submit(body, emu->state(),
                                      kernel.parallel, ~uint64_t(0),
                                      prio);
        }
        emus.push_back(std::move(emu));
    }

    const sched::ScheduleResult sr = scheduler.runAll();

    std::vector<JobRecord> out;
    out.reserve(jobs.size());
    uint64_t batch_span = 0;
    for (size_t j = 0; j < jobs.size(); ++j) {
        JobRecord rec;
        rec.job = jobs[j];
        rec.backend = id_;
        rec.dispatch_cycle = dispatch_cycle;
        rec.queue_wait_cycles = dispatch_cycle - jobs[j].arrival_cycle;

        if (ids[j] >= 0 && size_t(ids[j]) < sr.tenants.size() &&
            sr.tenants[size_t(ids[j])].completed) {
            const sched::TenantStats &ts = sr.tenants[size_t(ids[j])];
            rec.offloaded = true;
            rec.accel_iterations = ts.iterations;
            rec.phases[prof::Phase::Compute] = ts.run_cycles;
            rec.phases[prof::Phase::ConfigStream] = ts.switch_cycles;
            // Queueing behind co-tenants: the rest of the turnaround.
            const uint64_t spent = ts.run_cycles + ts.switch_cycles;
            rec.phases[prof::Phase::SchedWait] =
                ts.finish_cycle > spent ? ts.finish_cycle - spent : 0;
        }

        // CPU tail (refused submit, or incomplete under a degraded
        // scheduler): run the job's range functionally.
        const uint64_t cpu_steps =
            emus[j]->halted()
                ? 0
                : emus[j]->runWhileInRegion(kernel.loop_start,
                                            kernel.loop_end,
                                            params_.max_resume_steps);
        rec.phases[prof::Phase::FaultRecovery] += cpu_steps;
        runToHalt(*emus[j], params_.max_resume_steps,
                  "batch postamble");

        if (rec.phases.total() == 0)
            rec.phases[prof::Phase::Compute] = 1;
        rec.service_cycles = rec.phases.total();
        rec.completion_cycle = dispatch_cycle + rec.service_cycles;
        rec.state_digest = archStateDigest(emus[j]->state());
        batch_span = std::max(batch_span, rec.service_cycles);
        out.push_back(std::move(rec));
    }

    // The shared dataset digest is a batch-level property.
    const uint64_t mem_digest = memoryDigest(memory);
    for (auto &rec : out)
        rec.mem_digest = mem_digest;

    jobs_ += jobs.size();
    ++batches_;
    busy_cycles_ += batch_span;
    return out;
}

} // namespace mesa::service
