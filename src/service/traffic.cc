#include "service/traffic.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "workloads/suite.hh"

namespace mesa::service
{

namespace
{

// Substream purposes. Each purpose forks its own lineage off the
// root so adding draws to one never shifts another.
constexpr uint64_t kQosStream = 0x716f73;     // "qos"
constexpr uint64_t kContentStream = 0x636f6e; // "con"
constexpr uint64_t kArrivalStream = 0x617272; // "arr"
constexpr uint64_t kThinkStream = 0x74686b;   // "thk"

/** Uniform double in [0, 1) from the top 53 bits. */
double
uniform01(SplitMix64 &rng)
{
    return double(rng.next() >> 11) * (1.0 / 9007199254740992.0);
}

} // namespace

const char *
trafficProfileName(TrafficProfile profile)
{
    switch (profile) {
      case TrafficProfile::Poisson:
        return "poisson";
      case TrafficProfile::Bursty:
        return "bursty";
      case TrafficProfile::Diurnal:
        return "diurnal";
      case TrafficProfile::ClosedLoop:
        return "closed-loop";
    }
    return "?";
}

TrafficProfile
trafficProfileByName(const std::string &name)
{
    if (name == "poisson")
        return TrafficProfile::Poisson;
    if (name == "bursty")
        return TrafficProfile::Bursty;
    if (name == "diurnal")
        return TrafficProfile::Diurnal;
    if (name == "closed-loop" || name == "closed")
        return TrafficProfile::ClosedLoop;
    fatal("unknown traffic profile '", name,
          "' (known: poisson bursty diurnal closed-loop)");
}

TrafficGenerator::TrafficGenerator(const TrafficParams &params)
    : params_(params), root_(params.seed)
{
    if (params_.tenants < 1)
        fatal("traffic: need at least one tenant");
    if (params_.min_iterations < 1 ||
        params_.max_iterations < params_.min_iterations)
        fatal("traffic: bad iteration range [", params_.min_iterations,
              ", ", params_.max_iterations, "]");
    if (params_.mean_interarrival < 1.0)
        fatal("traffic: mean_interarrival must be >= 1 cycle");

    if (params_.kernels.empty()) {
        // Default roster: every suite kernel whose hot loop qualifies
        // for MESA offload (probing a tiny instance is cheap — just
        // an assembly pass).
        for (const auto &entry : workloads::suiteRegistry())
            if (entry.make(8).mesa_supported)
                kernels_.push_back(entry.name);
    } else {
        // Validate names early (fatal on typos) instead of at first
        // dispatch, hours into a campaign.
        for (const auto &name : params_.kernels) {
            workloads::selectKernels({name});
            kernels_.push_back(name);
        }
    }
    if (kernels_.empty())
        fatal("traffic: empty kernel roster");
}

uint64_t
TrafficGenerator::expGap(SplitMix64 &rng, double mean)
{
    const double u = uniform01(rng);
    const double gap = -std::log1p(-u) * mean;
    if (gap < 1.0)
        return 1;
    return uint64_t(std::llround(gap));
}

QosClass
TrafficGenerator::tenantQos(int tenant) const
{
    SplitMix64 rng = root_.fork(kQosStream).fork(uint64_t(tenant));
    const uint64_t u = rng.below(1000);
    const auto cut = [](double frac) {
        return uint64_t(std::llround(frac * 1000.0));
    };
    if (u < cut(params_.qos_interactive_frac))
        return QosClass::Interactive;
    if (u < cut(params_.qos_interactive_frac) +
                cut(params_.qos_batch_frac))
        return QosClass::Batch;
    return QosClass::Standard;
}

OffloadJob
TrafficGenerator::job(int tenant, uint64_t k) const
{
    SplitMix64 rng =
        root_.fork(kContentStream).fork(uint64_t(tenant)).fork(k);
    OffloadJob job;
    job.tenant = tenant;
    job.seq = k;
    job.qos = tenantQos(tenant);
    job.kernel = kernels_[rng.below(kernels_.size())];
    // Power-of-two size in [min_iterations, max_iterations].
    uint64_t lo_exp = 0;
    while ((uint64_t(1) << lo_exp) < params_.min_iterations)
        ++lo_exp;
    uint64_t hi_exp = lo_exp;
    while ((uint64_t(2) << hi_exp) <= params_.max_iterations)
        ++hi_exp;
    job.iterations = uint64_t(1) << rng.range(lo_exp, hi_exp);
    return job;
}

void
TrafficGenerator::appendTenantArrivals(int tenant,
                                       std::vector<OffloadJob> &out) const
{
    SplitMix64 rng =
        root_.fork(kArrivalStream).fork(uint64_t(tenant));
    const double mean = params_.mean_interarrival;
    uint64_t now = 0;
    uint64_t seq = 0;
    const auto emit = [&](uint64_t cycle) {
        OffloadJob j = job(tenant, seq++);
        j.arrival_cycle = cycle;
        out.push_back(std::move(j));
    };

    switch (params_.profile) {
      case TrafficProfile::Poisson:
        for (now = expGap(rng, mean); now < params_.horizon_cycles;
             now += expGap(rng, mean))
            emit(now);
        break;

      case TrafficProfile::Bursty:
        // Long exponential idle gaps separated by tight bursts whose
        // spacing is a tenth of the base mean.
        for (;;) {
            now += expGap(rng, mean * params_.burst_idle_factor);
            if (now >= params_.horizon_cycles)
                break;
            for (int b = 0;
                 b < params_.burst_size && now < params_.horizon_cycles;
                 ++b) {
                emit(now);
                now += expGap(rng, mean / 10.0);
            }
        }
        break;

      case TrafficProfile::Diurnal: {
        // Thinned Poisson: candidates at the peak rate (gap = mean),
        // accepted with probability rate(t)/peak where rate follows a
        // raised cosine between min_frac and 1.
        const double two_pi = 6.283185307179586;
        for (now = expGap(rng, mean); now < params_.horizon_cycles;
             now += expGap(rng, mean)) {
            const double phase =
                two_pi * double(now) / params_.diurnal_period;
            const double frac =
                params_.diurnal_min_frac +
                (1.0 - params_.diurnal_min_frac) * 0.5 *
                    (1.0 - std::cos(phase));
            if (uniform01(rng) < frac)
                emit(now);
        }
        break;
      }

      case TrafficProfile::ClosedLoop:
        fatal("traffic: closed-loop has no open-loop arrival list");
    }
}

std::vector<OffloadJob>
TrafficGenerator::openLoopArrivals() const
{
    std::vector<OffloadJob> out;
    for (int t = 0; t < params_.tenants; ++t)
        appendTenantArrivals(t, out);
    std::sort(out.begin(), out.end(),
              [](const OffloadJob &a, const OffloadJob &b) {
                  if (a.arrival_cycle != b.arrival_cycle)
                      return a.arrival_cycle < b.arrival_cycle;
                  if (a.tenant != b.tenant)
                      return a.tenant < b.tenant;
                  return a.seq < b.seq;
              });
    return out;
}

std::optional<OffloadJob>
TrafficGenerator::closedLoopJob(int tenant, uint64_t k,
                                uint64_t after) const
{
    if (!closedLoop())
        fatal("traffic: closedLoopJob on an open-loop generator");
    if (k >= params_.jobs_per_tenant)
        return std::nullopt;
    SplitMix64 rng =
        root_.fork(kThinkStream).fork(uint64_t(tenant)).fork(k);
    OffloadJob j = job(tenant, k);
    j.arrival_cycle = after + expGap(rng, params_.think_cycles);
    return j;
}

} // namespace mesa::service
