#include "service/slo.hh"

#include <algorithm>
#include <ostream>

namespace mesa::service
{

const char *
qosName(QosClass qos)
{
    switch (qos) {
      case QosClass::Interactive:
        return "interactive";
      case QosClass::Standard:
        return "standard";
      case QosClass::Batch:
        return "batch";
    }
    return "?";
}

const char *
rejectReasonName(RejectReason reason)
{
    switch (reason) {
      case RejectReason::None:
        return "none";
      case RejectReason::QueueFull:
        return "queue_full";
      case RejectReason::TenantLimit:
        return "tenant_limit";
      case RejectReason::Draining:
        return "draining";
      case RejectReason::OutOfRegion:
        return "out_of_region";
      case RejectReason::FabricDrained:
        return "fabric_drained";
    }
    return "?";
}

SloAccounting::SloAccounting(const SloParams &params) : params_(params)
{
    for (int c = 0; c < QosClassCount; ++c) {
        // Width sized so the histogram spans two targets: violations
        // land in-range, only gross outliers hit overflow (where the
        // percentile falls back to the tracked true max).
        const double target =
            double(params_.latency_target_cycles[size_t(c)]);
        const double width = std::max(
            1.0, target / (double(params_.histogram_buckets) / 2.0));
        classes_[size_t(c)].latency =
            Histogram(params_.histogram_buckets, width);
        classes_[size_t(c)].wait =
            Histogram(params_.histogram_buckets, width);
        classes_[size_t(c)].service =
            Histogram(params_.histogram_buckets, width);
    }
}

void
SloAccounting::record(const JobRecord &rec)
{
    // Bookkeeping invariants — the accounting must tile exactly, or
    // the wait/service split is lying.
    if (rec.queue_wait_cycles + rec.service_cycles !=
        rec.completion_cycle - rec.job.arrival_cycle)
        ++invariant_violations_;
    if (rec.phases.total() != rec.service_cycles)
        ++invariant_violations_;
    if (rec.dispatch_cycle < rec.job.arrival_cycle ||
        rec.completion_cycle != rec.dispatch_cycle + rec.service_cycles)
        ++invariant_violations_;

    ClassAcc &cls = classes_[size_t(rec.job.qos)];
    ++cls.jobs;
    cls.latency.sample(double(rec.latency()));
    cls.wait.sample(double(rec.queue_wait_cycles));
    cls.service.sample(double(rec.service_cycles));
    const bool violated =
        rec.latency() >
        params_.latency_target_cycles[size_t(rec.job.qos)];
    if (violated)
        ++cls.violations;

    TenantAcc &tenant = tenants_[rec.job.tenant];
    ++tenant.jobs;
    tenant.service_cycles += rec.service_cycles;
    tenant.latency_sum += rec.latency();
    if (violated)
        ++tenant.violations;

    phases_.accumulate(rec.phases);
    ++jobs_;
}

void
SloAccounting::recordReject(const OffloadJob &job, RejectReason reason)
{
    if (reason == RejectReason::None)
        return;
    ++classes_[size_t(job.qos)].rejects;
}

uint64_t
SloAccounting::violations() const
{
    uint64_t sum = 0;
    for (const ClassAcc &cls : classes_)
        sum += cls.violations;
    return sum;
}

ClassSlo
SloAccounting::classSummary(QosClass qos) const
{
    const ClassAcc &cls = classes_[size_t(qos)];
    ClassSlo out;
    out.jobs = cls.jobs;
    out.rejects = cls.rejects;
    out.violations = cls.violations;
    out.target_cycles = params_.latency_target_cycles[size_t(qos)];
    out.p50 = cls.latency.p50();
    out.p99 = cls.latency.p99();
    out.p999 = cls.latency.p999();
    out.mean_latency = cls.latency.mean();
    out.max_latency = cls.latency.max();
    out.mean_wait = cls.wait.mean();
    out.wait_p99 = cls.wait.p99();
    out.mean_service = cls.service.mean();
    return out;
}

double
SloAccounting::jainFairness() const
{
    double sum = 0.0, sum_sq = 0.0;
    size_t n = 0;
    for (const auto &kv : tenants_) {
        if (kv.second.jobs == 0)
            continue;
        const double x = double(kv.second.service_cycles);
        sum += x;
        sum_sq += x * x;
        ++n;
    }
    if (n == 0 || sum_sq == 0.0)
        return 1.0;
    return (sum * sum) / (double(n) * sum_sq);
}

void
SloAccounting::exportInto(StatsRegistry &registry,
                          const std::string &prefix) const
{
    registry.scalar(prefix + "jobs", double(jobs_));
    registry.scalar(prefix + "violations", double(violations()));
    registry.scalar(prefix + "invariant_violations",
                    double(invariant_violations_));
    registry.scalar(prefix + "fairness_jain", jainFairness());
    registry.scalar(prefix + "tenants_active",
                    double(tenants_.size()));
    for (int c = 0; c < QosClassCount; ++c) {
        const ClassSlo s = classSummary(QosClass(c));
        const std::string base =
            prefix + "qos." + qosName(QosClass(c)) + ".";
        registry.scalar(base + "jobs", double(s.jobs));
        registry.scalar(base + "rejects", double(s.rejects));
        registry.scalar(base + "violations", double(s.violations));
        registry.scalar(base + "latency_p50", s.p50);
        registry.scalar(base + "latency_p99", s.p99);
        registry.scalar(base + "latency_p999", s.p999);
        registry.scalar(base + "wait_mean", s.mean_wait);
        registry.scalar(base + "service_mean", s.mean_service);
        registry.linkHistogram(base + "latency",
                               classes_[size_t(c)].latency);
    }
    for (size_t p = 0; p < prof::PhaseCount; ++p)
        registry.scalar(prefix + "phase." +
                            prof::phaseName(prof::Phase(p)),
                        double(phases_.cycles[p]));
}

void
SloAccounting::writeJson(JsonWriter &json) const
{
    json.beginObject();
    json.field("jobs", jobs_);
    json.field("violations", violations());
    json.field("invariant_violations", invariant_violations_);
    json.field("fairness_jain", jainFairness());
    json.field("tenants_active", uint64_t(tenants_.size()));
    json.key("classes");
    json.beginArray();
    for (int c = 0; c < QosClassCount; ++c) {
        const ClassSlo s = classSummary(QosClass(c));
        json.beginObject();
        json.field("qos", qosName(QosClass(c)));
        json.field("jobs", s.jobs);
        json.field("rejects", s.rejects);
        json.field("violations", s.violations);
        json.field("target_cycles", s.target_cycles);
        json.field("latency_p50", s.p50);
        json.field("latency_p99", s.p99);
        json.field("latency_p999", s.p999);
        json.field("latency_mean", s.mean_latency);
        json.field("latency_max", s.max_latency);
        json.field("wait_mean", s.mean_wait);
        json.field("wait_p99", s.wait_p99);
        json.field("service_mean", s.mean_service);
        json.end();
    }
    json.end();
    json.key("phases");
    json.beginObject();
    for (size_t p = 0; p < prof::PhaseCount; ++p)
        json.field(prof::phaseName(prof::Phase(p)),
                   phases_.cycles[p]);
    json.end();
    json.end();
}

void
SloAccounting::writePrometheus(std::ostream &os) const
{
    os << "# HELP mesa_service_jobs_total Completed offload jobs.\n"
       << "# TYPE mesa_service_jobs_total counter\n";
    for (int c = 0; c < QosClassCount; ++c)
        os << "mesa_service_jobs_total{qos=\""
           << qosName(QosClass(c)) << "\"} "
           << classes_[size_t(c)].jobs << "\n";

    os << "# HELP mesa_service_rejects_total Jobs refused by "
          "admission control.\n"
       << "# TYPE mesa_service_rejects_total counter\n";
    for (int c = 0; c < QosClassCount; ++c)
        os << "mesa_service_rejects_total{qos=\""
           << qosName(QosClass(c)) << "\"} "
           << classes_[size_t(c)].rejects << "\n";

    os << "# HELP mesa_service_slo_violations_total Jobs over their "
          "class latency target.\n"
       << "# TYPE mesa_service_slo_violations_total counter\n";
    for (int c = 0; c < QosClassCount; ++c)
        os << "mesa_service_slo_violations_total{qos=\""
           << qosName(QosClass(c)) << "\"} "
           << classes_[size_t(c)].violations << "\n";

    os << "# HELP mesa_service_latency_cycles End-to-end offload "
          "latency quantiles (device cycles).\n"
       << "# TYPE mesa_service_latency_cycles summary\n";
    for (int c = 0; c < QosClassCount; ++c) {
        const ClassSlo s = classSummary(QosClass(c));
        const char *name = qosName(QosClass(c));
        os << "mesa_service_latency_cycles{qos=\"" << name
           << "\",quantile=\"0.5\"} " << s.p50 << "\n"
           << "mesa_service_latency_cycles{qos=\"" << name
           << "\",quantile=\"0.99\"} " << s.p99 << "\n"
           << "mesa_service_latency_cycles{qos=\"" << name
           << "\",quantile=\"0.999\"} " << s.p999 << "\n";
    }

    os << "# HELP mesa_service_phase_cycles Service-time split by "
          "attribution phase.\n"
       << "# TYPE mesa_service_phase_cycles counter\n";
    for (size_t p = 0; p < prof::PhaseCount; ++p)
        os << "mesa_service_phase_cycles{phase=\""
           << prof::phaseName(prof::Phase(p)) << "\"} "
           << phases_.cycles[p] << "\n";

    os << "# HELP mesa_service_fairness_jain Jain fairness index "
          "over per-tenant fabric time.\n"
       << "# TYPE mesa_service_fairness_jain gauge\n"
       << "mesa_service_fairness_jain " << jainFairness() << "\n";
}

} // namespace mesa::service
