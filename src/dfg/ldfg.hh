/**
 * @file
 * Logical Dataflow Graph (LDFG): the program-order-indexed view of a
 * loop body's dataflow (paper §3.2). Built by generalized renaming —
 * architectural registers are renamed to the address of the last
 * instruction writing them, so the rename table maps each register to
 * its producing node. The LDFG keeps instruction ordering (analogous
 * to a reorder buffer) and carries the measured node/edge weights of
 * MESA's performance model.
 */

#ifndef MESA_DFG_LDFG_HH
#define MESA_DFG_LDFG_HH

#include <array>
#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "riscv/instruction.hh"

namespace mesa::dfg
{

/** Index of a node in the LDFG (program order). */
using NodeId = int;
constexpr NodeId NoNode = -1;

/** Default operation latencies per functional-unit class (cycles). */
struct OpLatencyConfig
{
    double int_alu = 1.0;
    double int_mul = 3.0;
    double int_div = 12.0;
    double fp_alu = 3.0;  // matches the paper's Fig. 2 add/sub = 3
    double fp_mul = 5.0;  // matches the paper's Fig. 2 mul = 5
    double fp_div = 12.0;
    double load = 4.0;    ///< Initial estimate; refined by AMAT counters.
    double store = 1.0;   ///< Address/data handoff into the LS entry.
    double branch = 1.0;
    double jump = 1.0;

    double cycles(riscv::OpClass cls) const;
};

/**
 * The rename table: architectural (unified int+fp) register -> the
 * LDFG node that last wrote it. The 2D analog of a physical register
 * mapping, except there are as many "physical registers" as
 * instructions (each PE produces its own output).
 */
class RenameTable
{
  public:
    RenameTable() { reset(); }

    void reset() { map_.fill(NoNode); }

    NodeId lookup(int unified_reg) const { return map_[size_t(unified_reg)]; }

    void
    update(int unified_reg, NodeId producer)
    {
        map_[size_t(unified_reg)] = producer;
    }

  private:
    std::array<NodeId, riscv::NumUnifiedRegs> map_;
};

/** One LDFG node: an instruction plus its dataflow context. */
struct LdfgNode
{
    riscv::Instruction inst;
    NodeId id = NoNode;

    /** Producer of source operand 1/2, or NoNode if it is a live-in. */
    NodeId src1 = NoNode;
    NodeId src2 = NoNode;

    /** Unified live-in register for operands without a producer. */
    int live_in1 = -1;
    int live_in2 = -1;

    /**
     * Hidden dependency for predicated execution (paper §5.2): the
     * previous producer of this node's destination register. A PE
     * disabled by its guard branch must forward this old value.
     */
    NodeId prev_dest_writer = NoNode;
    int prev_dest_live_in = -1;

    /** Forward branches guarding (able to skip) this instruction. */
    std::vector<NodeId> guards;

    /** Consumers (forward edges), derived during build. */
    std::vector<NodeId> consumers;

    /** Node weight: average operation latency in cycles. */
    double op_latency = 0.0;

    /**
     * Measured edge weights: average data-transfer latency from
     * src1/src2 to this node. Negative = no measurement yet (fall
     * back to the interconnect model).
     */
    double edge_lat1 = -1.0;
    double edge_lat2 = -1.0;

    bool isGuarded() const { return !guards.empty(); }
};

/** Why an instruction sequence could not be encoded as an LDFG. */
enum class BuildError
{
    None = 0,
    InnerLoop,          ///< Backward branch/jump before the body end.
    UnsupportedOp,      ///< System instruction or undecodable word.
    ExitBranch,         ///< Forward branch escaping the loop body.
    IndirectJump,       ///< Jalr target cannot be mapped spatially.
    TooManyInstructions ///< Exceeds the accelerator's capacity.
};

const char *buildErrorName(BuildError err);

/**
 * The Logical DFG over one loop body. Node ids are program order; the
 * final node is the loop's backward branch.
 */
class Ldfg
{
  public:
    /**
     * Build the LDFG for a loop body (T1 Encode).
     *
     * @param body instructions in program order; the last one must be
     *             the backward branch closing the loop
     * @param lat_cfg default per-class operation latencies
     * @param max_nodes accelerator instruction capacity (0 = unlimited)
     * @return the graph, or the reason it cannot be encoded
     */
    static std::optional<Ldfg> build(
        const std::vector<riscv::Instruction> &body,
        const OpLatencyConfig &lat_cfg = {}, size_t max_nodes = 0,
        BuildError *error = nullptr);

    /**
     * Reassemble a graph from its serialized parts (the persistent
     * translation store's deserializer). The caller is responsible
     * for the parts being a build() result — no renaming or edge
     * derivation is re-run here.
     */
    static Ldfg
    fromParts(std::vector<LdfgNode> nodes, std::set<int> live_ins,
              std::set<int> written, const RenameTable &rename)
    {
        Ldfg g;
        g.nodes_ = std::move(nodes);
        g.live_ins_ = std::move(live_ins);
        g.written_ = std::move(written);
        g.rename_ = rename;
        return g;
    }

    size_t size() const { return nodes_.size(); }
    bool empty() const { return nodes_.empty(); }
    const LdfgNode &node(NodeId id) const { return nodes_[size_t(id)]; }
    LdfgNode &node(NodeId id) { return nodes_[size_t(id)]; }
    const std::vector<LdfgNode> &nodes() const { return nodes_; }

    /** Unified registers read before any write in the body. */
    const std::set<int> &liveIns() const { return live_ins_; }

    /** Final rename state: unified reg -> last writer in the body. */
    const RenameTable &finalRename() const { return rename_; }

    /** Registers written in the body (their live-out producers). */
    const std::set<int> &writtenRegs() const { return written_; }

    /** Node id of the loop's closing backward branch. */
    NodeId backBranch() const { return NodeId(nodes_.size()) - 1; }

    /** Count of nodes per functional-unit class. */
    size_t countClass(riscv::OpClass cls) const;

    /** Dump a human-readable listing (debugging / examples). */
    std::string toString() const;

  private:
    std::vector<LdfgNode> nodes_;
    std::set<int> live_ins_;
    std::set<int> written_;
    RenameTable rename_;
};

} // namespace mesa::dfg

#endif // MESA_DFG_LDFG_HH
