#include "dfg/latency.hh"

#include <algorithm>

#include "util/logging.hh"

namespace mesa::dfg
{

double
LatencyModel::transferFrom(NodeId src, Coord dst_pos) const
{
    const Coord src_pos = sdfg_.coordOf(src);
    if (!src_pos.valid() || !dst_pos.valid())
        return fallback_;
    return double(ic_.latency(src_pos, dst_pos));
}

double
LatencyModel::edgeLatency(NodeId from, NodeId to, int operand) const
{
    const LdfgNode &node = ldfg_.node(to);
    const double measured =
        operand == 0 ? node.edge_lat1 : node.edge_lat2;
    if (measured >= 0.0)
        return measured;
    return transferFrom(from, sdfg_.coordOf(to));
}

LatencyResult
LatencyModel::evaluate() const
{
    LatencyResult res;
    const size_t n = ldfg_.size();
    res.completion.assign(n, 0.0);

    // Program order is a topological order: every edge goes from a
    // lower to a higher node id.
    std::vector<NodeId> critical_pred(n, NoNode);
    for (size_t i = 0; i < n; ++i) {
        const LdfgNode &node = ldfg_.node(NodeId(i));
        double arrival = 0.0; // live-ins available at cycle 0
        NodeId argmax = NoNode;

        auto consider = [&](NodeId src, int operand) {
            if (src == NoNode)
                return;
            const double a = res.completion[size_t(src)] +
                             edgeLatency(src, NodeId(i), operand);
            if (a > arrival) {
                arrival = a;
                argmax = src;
            }
        };
        consider(node.src1, 0);
        consider(node.src2, 1);
        // Predication: guards deliver the enable decision over the
        // control network; the old-value hidden dependency must also
        // arrive before the PE can forward it.
        for (NodeId guard : node.guards)
            consider(guard, 2);
        if (node.isGuarded())
            consider(node.prev_dest_writer, 2);

        res.completion[i] = arrival + node.op_latency;
        critical_pred[i] = argmax;
        if (res.completion[i] > res.total)
            res.total = res.completion[i];
    }

    // Backtrack the critical path from the max-completion node.
    NodeId sink = NoNode;
    double best = -1.0;
    for (size_t i = 0; i < n; ++i) {
        if (res.completion[i] > best) {
            best = res.completion[i];
            sink = NodeId(i);
        }
    }
    for (NodeId cur = sink; cur != NoNode;
         cur = critical_pred[size_t(cur)]) {
        res.critical_path.push_back(cur);
    }
    std::reverse(res.critical_path.begin(), res.critical_path.end());
    return res;
}

double
LatencyModel::expectedLatencyAt(NodeId id, Coord pos,
                                const std::vector<double> &completion) const
{
    const LdfgNode &node = ldfg_.node(id);
    double arrival = 0.0;

    auto consider = [&](NodeId src) {
        if (src == NoNode)
            return;
        MESA_ASSERT(size_t(src) < completion.size(),
                    "expectedLatencyAt: predecessor not yet evaluated");
        const Coord sp = sdfg_.coordOf(src);
        const double xfer =
            sp.valid() ? double(ic_.latency(sp, pos)) : fallback_;
        arrival = std::max(arrival, completion[size_t(src)] + xfer);
    };
    consider(node.src1);
    consider(node.src2);
    for (NodeId guard : node.guards)
        consider(guard);
    if (node.isGuarded())
        consider(node.prev_dest_writer);

    return arrival + node.op_latency;
}

} // namespace mesa::dfg
