#include "dfg/analysis.hh"

#include <algorithm>

namespace mesa::dfg
{

using riscv::Op;

int32_t
VectorGroup::stride() const
{
    if (offsets.size() < 2)
        return 0;
    std::vector<int32_t> sorted = offsets;
    std::sort(sorted.begin(), sorted.end());
    const int32_t s = sorted[1] - sorted[0];
    for (size_t i = 2; i < sorted.size(); ++i)
        if (sorted[i] - sorted[i - 1] != s)
            return 0;
    return s;
}

std::vector<InductionReg>
findInductionRegs(const Ldfg &ldfg)
{
    // Count writers per unified register and remember the last one.
    std::map<int, std::vector<NodeId>> writers;
    for (const auto &node : ldfg.nodes()) {
        const int d = node.inst.unifiedDest();
        if (d >= 0)
            writers[d].push_back(node.id);
    }

    std::vector<InductionReg> out;
    for (const auto &[r, ws] : writers) {
        if (ws.size() != 1)
            continue;
        const LdfgNode &node = ldfg.node(ws.front());
        // Must be r = r + imm where the source r is the live-in value
        // (src renames to the live-in, not to another node), and it
        // must not be guarded (conditionally-updated regs are not
        // affine induction).
        if (node.inst.op != Op::Addi || node.isGuarded())
            continue;
        if (node.live_in1 != r)
            continue;
        out.push_back({r, node.id, node.inst.imm});
    }
    return out;
}

namespace
{

/** Key identifying a base-address source: producer node or live-in. */
struct BaseKey
{
    NodeId producer;
    int live_in;

    bool
    operator<(const BaseKey &o) const
    {
        return std::tie(producer, live_in) <
               std::tie(o.producer, o.live_in);
    }
};

} // namespace

std::vector<VectorGroup>
findVectorGroups(const Ldfg &ldfg)
{
    std::map<BaseKey, VectorGroup> groups;
    for (const auto &node : ldfg.nodes()) {
        if (!node.inst.isLoad())
            continue;
        BaseKey key{node.src1, node.live_in1};
        auto &group = groups[key];
        group.base_producer = node.src1;
        group.base_reg = node.live_in1;
        group.loads.push_back(node.id);
        group.offsets.push_back(node.inst.imm);
    }
    std::vector<VectorGroup> out;
    for (auto &[key, group] : groups) {
        (void)key;
        if (group.loads.size() >= 2)
            out.push_back(std::move(group));
    }
    return out;
}

std::vector<NodeId>
findPrefetchableLoads(const Ldfg &ldfg)
{
    const auto inductions = findInductionRegs(ldfg);
    std::set<int> ind_regs;
    std::set<NodeId> ind_nodes;
    for (const auto &ind : inductions) {
        ind_regs.insert(ind.unified_reg);
        ind_nodes.insert(ind.update_node);
    }

    std::vector<NodeId> out;
    for (const auto &node : ldfg.nodes()) {
        if (!node.inst.isLoad())
            continue;
        // Base is a live-in induction register, or the induction
        // update node itself: the next iteration's address is
        // current + stride, so it can be prefetched one ahead.
        const bool from_live_in =
            node.src1 == NoNode && ind_regs.count(node.live_in1) > 0;
        const bool from_update =
            node.src1 != NoNode && ind_nodes.count(node.src1) > 0;
        if (from_live_in || from_update)
            out.push_back(node.id);
    }
    return out;
}

std::vector<ForwardPair>
findForwardPairs(const Ldfg &ldfg)
{
    std::vector<ForwardPair> out;
    for (const auto &load : ldfg.nodes()) {
        if (!load.inst.isLoad())
            continue;
        // Find the youngest older store with identical base source
        // and offset and matching width (word-sized only).
        if (load.inst.op != Op::Lw && load.inst.op != Op::Flw)
            continue;
        NodeId best = NoNode;
        for (const auto &store : ldfg.nodes()) {
            if (store.id >= load.id || !store.inst.isStore())
                continue;
            if (store.inst.op != Op::Sw && store.inst.op != Op::Fsw)
                continue;
            const bool same_base = store.src1 == load.src1 &&
                                   store.live_in1 == load.live_in1;
            if (same_base && store.inst.imm == load.inst.imm)
                best = store.id;
        }
        if (best != NoNode)
            out.push_back({best, load.id});
    }
    return out;
}

std::vector<NodeId>
findUnknownAddressStores(const Ldfg &ldfg)
{
    // Affine values: derived only from live-in registers and other
    // affine nodes through address-arithmetic ops. Loads (and
    // anything downstream of them) are data-dependent.
    std::vector<bool> affine(ldfg.size(), false);
    auto src_affine = [&](NodeId src, int live_in) {
        if (src != NoNode)
            return bool(affine[size_t(src)]);
        (void)live_in;
        return true; // live-in registers are iteration constants
    };
    for (const auto &node : ldfg.nodes()) {
        switch (node.inst.op) {
          case Op::Addi:
          case Op::Add:
          case Op::Sub:
          case Op::Slli:
          case Op::Lui:
          case Op::Auipc:
            affine[size_t(node.id)] =
                src_affine(node.src1, node.live_in1) &&
                src_affine(node.src2, node.live_in2) &&
                !node.isGuarded();
            break;
          default:
            affine[size_t(node.id)] = false;
            break;
        }
    }

    std::vector<NodeId> out;
    for (const auto &node : ldfg.nodes()) {
        if (!node.inst.isStore())
            continue;
        const bool known = node.src1 == NoNode
                               ? true // live-in base register
                               : bool(affine[size_t(node.src1)]);
        if (!known)
            out.push_back(node.id);
    }
    return out;
}

std::optional<LoopBranchInfo>
analyzeLoopBranch(const Ldfg &ldfg)
{
    if (ldfg.empty())
        return std::nullopt;
    const LdfgNode &br = ldfg.node(ldfg.backBranch());
    if (!br.inst.isBranch())
        return std::nullopt;

    LoopBranchInfo info;
    info.branch = br.id;

    const auto inductions = findInductionRegs(ldfg);
    auto match_induction = [&](NodeId src, int live_in)
        -> std::optional<InductionReg> {
        for (const auto &ind : inductions) {
            if (src != NoNode && src == ind.update_node)
                return ind;
            if (src == NoNode && live_in == ind.unified_reg)
                return ind;
        }
        return std::nullopt;
    };

    auto i1 = match_induction(br.src1, br.live_in1);
    auto i2 = match_induction(br.src2, br.live_in2);
    if (i1) {
        info.induction = i1;
        info.bound_reg = br.live_in2;
    } else if (i2) {
        info.induction = i2;
        info.bound_reg = br.live_in1;
    }
    return info;
}

} // namespace mesa::dfg
