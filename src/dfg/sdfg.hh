/**
 * @file
 * Spatial Dataflow Graph (SDFG): the coordinate-indexed, planar view
 * of the same graph held by the LDFG (paper §3.2/§3.3). The SDFG is
 * the placement matrix F plus the binary free matrix F_free; building
 * an optimal SDFG from the LDFG is the goal of instruction mapping
 * (T2), and the SDFG is what the configuration step (T3) walks.
 */

#ifndef MESA_DFG_SDFG_HH
#define MESA_DFG_SDFG_HH

#include <vector>

#include "dfg/ldfg.hh"
#include "interconnect/interconnect.hh"
#include "util/matrix.hh"

namespace mesa::dfg
{

using ic::Coord;

/** The placement of LDFG nodes onto a virtual PE grid. */
class Sdfg
{
  public:
    Sdfg() = default;

    Sdfg(int rows, int cols)
        : grid_(size_t(rows), size_t(cols), NoNode)
    {}

    int rows() const { return int(grid_.rows()); }
    int cols() const { return int(grid_.cols()); }

    /**
     * Place a node at a coordinate.
     * @return false if the position is occupied or out of range.
     */
    bool
    place(NodeId id, Coord pos)
    {
        if (!inRange(pos) || grid_(size_t(pos.r), size_t(pos.c)) != NoNode)
            return false;
        grid_(size_t(pos.r), size_t(pos.c)) = id;
        if (size_t(id) >= coord_of_.size())
            coord_of_.resize(size_t(id) + 1, Coord{});
        coord_of_[size_t(id)] = pos;
        ++placed_;
        return true;
    }

    /**
     * Write a placement without the occupancy/range checks. Exists so
     * the verifier's negative tests can corrupt a mapping on purpose;
     * the mapper must use place().
     */
    void
    placeUnchecked(NodeId id, Coord pos)
    {
        if (inRange(pos))
            grid_(size_t(pos.r), size_t(pos.c)) = id;
        if (id >= 0) {
            if (size_t(id) >= coord_of_.size())
                coord_of_.resize(size_t(id) + 1, Coord{});
            coord_of_[size_t(id)] = pos;
        }
        ++placed_;
    }

    /** Remove a node from the grid (iterative remapping). */
    void
    remove(NodeId id)
    {
        const Coord pos = coordOf(id);
        if (!pos.valid())
            return;
        grid_(size_t(pos.r), size_t(pos.c)) = NoNode;
        coord_of_[size_t(id)] = Coord{};
        --placed_;
    }

    /** Node at a coordinate, or NoNode. */
    NodeId
    at(Coord pos) const
    {
        if (!inRange(pos))
            return NoNode;
        return grid_(size_t(pos.r), size_t(pos.c));
    }

    /** Placement of a node; invalid coord if unplaced. */
    Coord
    coordOf(NodeId id) const
    {
        if (id < 0 || size_t(id) >= coord_of_.size())
            return Coord{};
        return coord_of_[size_t(id)];
    }

    bool isPlaced(NodeId id) const { return coordOf(id).valid(); }

    bool
    inRange(Coord pos) const
    {
        return pos.r >= 0 && pos.r < rows() && pos.c >= 0 &&
               pos.c < cols();
    }

    bool
    isFree(Coord pos) const
    {
        return inRange(pos) &&
               grid_(size_t(pos.r), size_t(pos.c)) == NoNode;
    }

    size_t placedCount() const { return placed_; }
    size_t capacity() const { return grid_.size(); }

    /** Number of free positions among the 8-neighborhood of pos. */
    int
    freeNeighbors(Coord pos) const
    {
        int n = 0;
        for (int dr = -1; dr <= 1; ++dr)
            for (int dc = -1; dc <= 1; ++dc)
                if ((dr || dc) && isFree({pos.r + dr, pos.c + dc}))
                    ++n;
        return n;
    }

    /** F_free as a binary matrix (1 = free). */
    Matrix<uint8_t>
    freeMatrix() const
    {
        Matrix<uint8_t> m(grid_.rows(), grid_.cols(), 1);
        for (size_t r = 0; r < grid_.rows(); ++r)
            for (size_t c = 0; c < grid_.cols(); ++c)
                if (grid_(r, c) != NoNode)
                    m(r, c) = 0;
        return m;
    }

    void
    clear()
    {
        grid_.fill(NoNode);
        coord_of_.clear();
        placed_ = 0;
    }

  private:
    Matrix<NodeId> grid_;
    std::vector<Coord> coord_of_;
    size_t placed_ = 0;
};

} // namespace mesa::dfg

#endif // MESA_DFG_SDFG_HH
