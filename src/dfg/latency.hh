/**
 * @file
 * The DFG-based performance model (paper §3.1): nodes weighted by
 * operation latency, edges weighted by data-transfer latency.
 * Evaluates Eq. 1/2 over the whole graph to obtain per-instruction
 * completion cycles, total iteration latency, and the critical path.
 */

#ifndef MESA_DFG_LATENCY_HH
#define MESA_DFG_LATENCY_HH

#include <vector>

#include "dfg/ldfg.hh"
#include "dfg/sdfg.hh"
#include "interconnect/interconnect.hh"

namespace mesa::dfg
{

/** Result of evaluating the latency model over a (partial) placement. */
struct LatencyResult
{
    /** Completion cycle L_i per node (Eq. 1). */
    std::vector<double> completion;

    /** Latency of the whole sequence: max over all L_i. */
    double total = 0.0;

    /** Nodes on the critical path, source to sink. */
    std::vector<NodeId> critical_path;
};

/**
 * Evaluates the weighted-DFG latency model. Edge weights prefer the
 * measured per-edge latencies stored in the LDFG (runtime feedback);
 * unmeasured edges fall back to the interconnect's point-to-point
 * model over the current placement. Edges involving an unplaced node
 * cost the fallback-bus latency.
 */
class LatencyModel
{
  public:
    /**
     * @param fallback_bus_latency cost of edges through the secondary
     *        data-forwarding bus used for unmapped instructions
     */
    LatencyModel(const Ldfg &ldfg, const Sdfg &sdfg,
                 const ic::Interconnect &interconnect,
                 double fallback_bus_latency = 8.0)
        : ldfg_(ldfg), sdfg_(sdfg), ic_(interconnect),
          fallback_(fallback_bus_latency)
    {}

    /** Transfer latency for the edge (from -> to), model or measured. */
    double edgeLatency(NodeId from, NodeId to, int operand) const;

    /** Full evaluation: completion per node, total, critical path. */
    LatencyResult evaluate() const;

    /**
     * Expected completion cycle of node @p id if it were placed at
     * @p pos, given the predecessors' completion cycles in
     * @p completion (the mapper's inner cost, Algorithm 1 lines 10-12).
     */
    double expectedLatencyAt(NodeId id, Coord pos,
                             const std::vector<double> &completion) const;

  private:
    double transferFrom(NodeId src, Coord dst_pos) const;

    const Ldfg &ldfg_;
    const Sdfg &sdfg_;
    const ic::Interconnect &ic_;
    double fallback_;
};

} // namespace mesa::dfg

#endif // MESA_DFG_LATENCY_HH
