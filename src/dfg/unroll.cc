#include "dfg/unroll.hh"

#include <set>

#include "dfg/analysis.hh"
#include "dfg/ldfg.hh"

namespace mesa::dfg
{

using riscv::Instruction;
using riscv::Op;

std::optional<UnrollResult>
unrollBody(const std::vector<Instruction> &body, int factor)
{
    if (factor < 2 || body.empty())
        return std::nullopt;

    auto ldfg = Ldfg::build(body);
    if (!ldfg)
        return std::nullopt;

    // No forward branches: predication does not replicate cleanly.
    for (const auto &node : ldfg->nodes()) {
        if (node.isGuarded())
            return std::nullopt;
        if (node.inst.isBranch() && node.id != ldfg->backBranch())
            return std::nullopt;
    }

    // The closing branch must be blt/bltu of an induction register
    // with positive step against a live-in bound.
    const auto branch_info = analyzeLoopBranch(*ldfg);
    if (!branch_info || !branch_info->induction ||
        branch_info->bound_reg < 0) {
        return std::nullopt;
    }
    const auto &branch = ldfg->node(ldfg->backBranch());
    if (branch.inst.op != Op::Blt && branch.inst.op != Op::Bltu)
        return std::nullopt;
    if (branch_info->induction->step <= 0)
        return std::nullopt;

    const auto inductions = findInductionRegs(*ldfg);
    std::map<int, int32_t> step_of; // unified reg -> step
    std::set<NodeId> update_nodes;
    for (const auto &ind : inductions) {
        step_of[ind.unified_reg] = ind.step;
        update_nodes.insert(ind.update_node);
    }

    // The bound register gets tightened at latch time, so nothing
    // except the closing branch may read it.
    for (const auto &node : ldfg->nodes()) {
        if (node.id == ldfg->backBranch())
            continue;
        if (node.live_in1 == branch_info->bound_reg ||
            node.live_in2 == branch_info->bound_reg) {
            return std::nullopt;
        }
    }

    // Induction registers may only feed memory bases, their own
    // update, and the closing branch.
    for (const auto &node : ldfg->nodes()) {
        for (int operand = 0; operand < 2; ++operand) {
            const int reg =
                operand == 0 ? node.live_in1 : node.live_in2;
            if (reg < 0 || !step_of.count(reg))
                continue;
            const bool is_mem_base =
                node.inst.isMem() && operand == 0;
            const bool is_update = update_nodes.count(node.id) > 0;
            const bool is_branch = node.id == ldfg->backBranch();
            if (!is_mem_base && !is_update && !is_branch)
                return std::nullopt;
        }
        // Reading the post-update value is only legal for the branch.
        for (NodeId src : {node.src1, node.src2}) {
            if (src != NoNode && update_nodes.count(src) &&
                node.id != ldfg->backBranch()) {
                return std::nullopt;
            }
        }
    }

    // Offset range check: copy k shifts memory offsets by k*step.
    for (const auto &node : ldfg->nodes()) {
        if (!node.inst.isMem() || node.live_in1 < 0)
            continue;
        auto it = step_of.find(node.live_in1);
        if (it == step_of.end())
            continue; // base is not an induction: offsets unchanged
        const int64_t worst =
            int64_t(node.inst.imm) +
            int64_t(factor - 1) * int64_t(it->second);
        if (worst > 2047 || worst < -2048)
            return std::nullopt;
    }

    // --- Emit the replicated body -----------------------------------
    UnrollResult out;
    out.factor = factor;
    uint32_t pc = body.front().pc;
    auto emit = [&](Instruction inst) {
        inst.pc = pc;
        pc += 4;
        out.body.push_back(inst);
    };

    for (int k = 0; k < factor; ++k) {
        for (const auto &node : ldfg->nodes()) {
            if (update_nodes.count(node.id) ||
                node.id == ldfg->backBranch()) {
                continue;
            }
            Instruction inst = node.inst;
            if (inst.isMem() && node.live_in1 >= 0) {
                auto it = step_of.find(node.live_in1);
                if (it != step_of.end())
                    inst.imm += k * it->second;
            }
            emit(inst);
        }
    }
    // Induction updates once per unrolled pass, scaled by the factor.
    for (const auto &node : ldfg->nodes()) {
        if (!update_nodes.count(node.id))
            continue;
        Instruction inst = node.inst;
        inst.imm *= factor;
        emit(inst);
    }
    // The closing branch, retargeted to the new body start.
    Instruction br = branch.inst;
    br.imm = int32_t(body.front().pc) - int32_t(pc);
    emit(br);

    // Tighten the bound so the accelerator stops with the tail
    // (0..factor-1 original iterations) left for the CPU.
    out.live_in_adjustments[branch_info->bound_reg] =
        -(factor - 1) * branch_info->induction->step;
    return out;
}

} // namespace mesa::dfg
