/**
 * @file
 * Runtime loop unrolling (extension; the paper leaves unrolling to
 * ahead-of-time compilers). The transform replicates a loop body f
 * times, adjusting memory offsets along induction registers and
 * scaling the induction updates, so one accelerated "iteration"
 * covers f original iterations. The closing branch compares against
 * a bound tightened by (f-1)*step, so the accelerator stops while at
 * least 0..f-1 original iterations remain; the CPU resumes at the
 * loop's branch and runs the tail sequentially.
 */

#ifndef MESA_DFG_UNROLL_HH
#define MESA_DFG_UNROLL_HH

#include <map>
#include <optional>
#include <vector>

#include "riscv/instruction.hh"

namespace mesa::dfg
{

/** An unrolled loop body plus the live-in adjustments it needs. */
struct UnrollResult
{
    /** The replicated body (fresh pc numbering from the original
     *  start; the code never lives in instruction memory). */
    std::vector<riscv::Instruction> body;

    int factor = 1;

    /**
     * Offsets to add to latched live-in registers: the loop bound is
     * tightened by -(factor-1)*step so the accelerator never
     * overshoots; the CPU finishes the remaining iterations.
     */
    std::map<int, int32_t> live_in_adjustments;
};

/**
 * Unroll a loop body by @p factor. Succeeds only when the transform
 * is provably safe:
 *  - the body has no forward branches (no predication to replicate),
 *  - the closing branch is blt/bltu of an induction register (with
 *    positive step) against a live-in bound,
 *  - induction registers are used only as memory base registers, by
 *    their own update, and by the closing branch,
 *  - all adjusted memory offsets stay within the 12-bit immediate.
 *
 * @return the unrolled body, or nullopt if any condition fails
 */
std::optional<UnrollResult> unrollBody(
    const std::vector<riscv::Instruction> &body, int factor);

} // namespace mesa::dfg

#endif // MESA_DFG_UNROLL_HH
