/**
 * @file
 * Static analyses over the LDFG used by MESA's memory optimizations
 * (paper §4.2): induction-register detection, vectorizable load
 * groups, speculative prefetch candidates, and static store->load
 * forwarding pairs; plus trip-count estimation support for the
 * instruction-mix criterion (C3).
 */

#ifndef MESA_DFG_ANALYSIS_HH
#define MESA_DFG_ANALYSIS_HH

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "dfg/ldfg.hh"

namespace mesa::dfg
{

/** An induction register: r = r + step once per iteration. */
struct InductionReg
{
    int unified_reg = -1;
    NodeId update_node = NoNode;
    int32_t step = 0;
};

/** Loads sharing one (unchanged) base register: vectorizable. */
struct VectorGroup
{
    int base_reg = -1;        ///< Unified live-in base register.
    NodeId base_producer = NoNode; ///< Or a common producer node.
    std::vector<NodeId> loads;
    std::vector<int32_t> offsets;

    /** Stride between consecutive offsets, 0 if irregular. */
    int32_t stride() const;
};

/** A static store->load forwarding pair (same base reg + offset). */
struct ForwardPair
{
    NodeId store = NoNode;
    NodeId load = NoNode;
};

/**
 * Find induction registers: live-in registers whose only in-body
 * writer is an addi of a constant onto themselves.
 */
std::vector<InductionReg> findInductionRegs(const Ldfg &ldfg);

/**
 * Group loads by their base-address source (live-in register or
 * producing node, tracked via the rename table during the LDFG
 * build). Groups with >= 2 loads and regular stride are vectorizable.
 */
std::vector<VectorGroup> findVectorGroups(const Ldfg &ldfg);

/**
 * Loads whose base register depends only on induction registers can
 * be speculatively prefetched an iteration ahead. Returns such loads.
 */
std::vector<NodeId> findPrefetchableLoads(const Ldfg &ldfg);

/**
 * Extraneous store->load pairs with identical base register and
 * offset become direct forwarding edges.
 */
std::vector<ForwardPair> findForwardPairs(const Ldfg &ldfg);

/**
 * Description of the loop's closing branch, for trip-count estimation
 * against live register values (used by monitor criterion C3).
 */
struct LoopBranchInfo
{
    NodeId branch = NoNode;
    /** Induction register compared, if the comparison involves one. */
    std::optional<InductionReg> induction;
    /** The other comparison operand as a live-in register, if any. */
    int bound_reg = -1;
};

std::optional<LoopBranchInfo> analyzeLoopBranch(const Ldfg &ldfg);

/**
 * Stores whose effective address is not an affine function of
 * live-in/induction registers (e.g., computed from loaded data).
 * Such stores cannot be statically disambiguated, so loop-level
 * reordering optimizations (tiling, deep pipelining) must be
 * conservative around them (paper §4.2 memory disambiguation).
 */
std::vector<NodeId> findUnknownAddressStores(const Ldfg &ldfg);

} // namespace mesa::dfg

#endif // MESA_DFG_ANALYSIS_HH
