#include "dfg/ldfg.hh"

#include <sstream>

#include "util/logging.hh"

namespace mesa::dfg
{

using riscv::Op;
using riscv::OpClass;

double
OpLatencyConfig::cycles(OpClass cls) const
{
    switch (cls) {
      case OpClass::IntAlu: return int_alu;
      case OpClass::IntMul: return int_mul;
      case OpClass::IntDiv: return int_div;
      case OpClass::FpAlu: return fp_alu;
      case OpClass::FpMul: return fp_mul;
      case OpClass::FpDiv: return fp_div;
      case OpClass::Load: return load;
      case OpClass::Store: return store;
      case OpClass::Branch: return branch;
      case OpClass::Jump: return jump;
      default: return 1.0;
    }
}

const char *
buildErrorName(BuildError err)
{
    switch (err) {
      case BuildError::None: return "none";
      case BuildError::InnerLoop: return "inner-loop";
      case BuildError::UnsupportedOp: return "unsupported-op";
      case BuildError::ExitBranch: return "exit-branch";
      case BuildError::IndirectJump: return "indirect-jump";
      case BuildError::TooManyInstructions: return "too-many-instructions";
      default: return "???";
    }
}

std::optional<Ldfg>
Ldfg::build(const std::vector<riscv::Instruction> &body,
            const OpLatencyConfig &lat_cfg, size_t max_nodes,
            BuildError *error)
{
    auto fail = [&](BuildError e) -> std::optional<Ldfg> {
        if (error)
            *error = e;
        return std::nullopt;
    };
    if (error)
        *error = BuildError::None;

    if (body.empty())
        return fail(BuildError::UnsupportedOp);
    if (max_nodes > 0 && body.size() > max_nodes)
        return fail(BuildError::TooManyInstructions);

    const uint32_t body_start = body.front().pc;
    const uint32_t body_end = body.back().pc + 4;

    Ldfg g;
    g.nodes_.reserve(body.size());

    // Active forward-branch guards: (branch node, resolve pc).
    std::vector<std::pair<NodeId, uint32_t>> guard_stack;

    for (size_t idx = 0; idx < body.size(); ++idx) {
        const riscv::Instruction &inst = body[idx];
        const NodeId id = NodeId(idx);
        const bool is_last = idx + 1 == body.size();

        if (inst.op == Op::Invalid || inst.isSystem())
            return fail(BuildError::UnsupportedOp);
        // The DFG model supports up to two predecessors per node
        // (paper Sec. 3.1); R4-type fused ops disqualify the loop.
        if (inst.numSources() > 2)
            return fail(BuildError::UnsupportedOp);
        if (inst.op == Op::Jalr)
            return fail(BuildError::IndirectJump);
        if (inst.isBackwardBranch() && !is_last)
            return fail(BuildError::InnerLoop);
        if (is_last && !inst.isBackwardBranch())
            return fail(BuildError::UnsupportedOp);
        if (inst.isBranch() && inst.imm > 0) {
            const uint32_t target = inst.targetPc();
            // A forward branch must resolve inside the body (a branch
            // to exactly body_end just skips the loop tail and is
            // treated as an exit, which MESA does not accelerate).
            if (target >= body_end)
                return fail(BuildError::ExitBranch);
        }
        // Jumps cannot be predicated/mapped: loops must close with a
        // conditional backward branch, and inner jal/jalr disqualify.
        if (inst.op == Op::Jal)
            return fail(BuildError::UnsupportedOp);

        // Retire guards whose join point has been reached.
        while (!guard_stack.empty() &&
               guard_stack.back().second <= inst.pc) {
            guard_stack.pop_back();
        }

        LdfgNode node;
        node.inst = inst;
        node.id = id;
        node.op_latency = lat_cfg.cycles(inst.cls());

        // Rename sources: producer node if written earlier in the
        // body, else a loop live-in register.
        for (int n = 0; n < 2; ++n) {
            const int src = inst.unifiedSrc(n);
            if (src < 0)
                continue;
            const NodeId producer = g.rename_.lookup(src);
            if (n == 0) {
                node.src1 = producer;
                if (producer == NoNode)
                    node.live_in1 = src;
            } else {
                node.src2 = producer;
                if (producer == NoNode)
                    node.live_in2 = src;
            }
            if (producer == NoNode)
                g.live_ins_.insert(src);
            else
                g.nodes_[size_t(producer)].consumers.push_back(id);
        }

        // Guards: all still-active forward branches skip this node.
        for (const auto &[branch, resolve_pc] : guard_stack) {
            (void)resolve_pc;
            node.guards.push_back(branch);
            g.nodes_[size_t(branch)].consumers.push_back(id);
        }

        // Rename destination; remember the previous producer for the
        // predication hidden dependency.
        const int dest = inst.unifiedDest();
        if (dest >= 0) {
            node.prev_dest_writer = g.rename_.lookup(dest);
            if (node.prev_dest_writer == NoNode && node.isGuarded()) {
                node.prev_dest_live_in = dest;
                g.live_ins_.insert(dest);
            }
            if (node.prev_dest_writer != NoNode && node.isGuarded()) {
                g.nodes_[size_t(node.prev_dest_writer)]
                    .consumers.push_back(id);
            }
            g.rename_.update(dest, id);
            g.written_.insert(dest);
        }

        g.nodes_.push_back(std::move(node));

        // Open a guard scope for forward branches.
        if (inst.isBranch() && inst.imm > 0)
            guard_stack.emplace_back(id, inst.targetPc());
    }

    (void)body_start;
    return g;
}

size_t
Ldfg::countClass(OpClass cls) const
{
    size_t n = 0;
    for (const auto &node : nodes_)
        if (node.inst.cls() == cls)
            ++n;
    return n;
}

std::string
Ldfg::toString() const
{
    std::ostringstream os;
    for (const auto &node : nodes_) {
        os << "i" << node.id << ": " << node.inst.toString();
        os << "  [";
        if (node.src1 != NoNode)
            os << "s1=i" << node.src1;
        else if (node.live_in1 >= 0)
            os << "s1=r" << node.live_in1;
        if (node.src2 != NoNode)
            os << " s2=i" << node.src2;
        else if (node.live_in2 >= 0)
            os << " s2=r" << node.live_in2;
        if (!node.guards.empty()) {
            os << " guards={";
            for (NodeId gid : node.guards)
                os << "i" << gid << " ";
            os << "}";
        }
        os << " w=" << node.op_latency << "]\n";
    }
    return os.str();
}

} // namespace mesa::dfg
