#include "riscv/encoding.hh"

#include "util/logging.hh"

namespace mesa::riscv
{

namespace
{

// Base opcodes (bits [6:0]).
constexpr uint32_t OpcLui = 0x37;
constexpr uint32_t OpcAuipc = 0x17;
constexpr uint32_t OpcJal = 0x6F;
constexpr uint32_t OpcJalr = 0x67;
constexpr uint32_t OpcBranch = 0x63;
constexpr uint32_t OpcLoad = 0x03;
constexpr uint32_t OpcStore = 0x23;
constexpr uint32_t OpcOpImm = 0x13;
constexpr uint32_t OpcOp = 0x33;
constexpr uint32_t OpcMiscMem = 0x0F;
constexpr uint32_t OpcSystem = 0x73;
constexpr uint32_t OpcLoadFp = 0x07;
constexpr uint32_t OpcStoreFp = 0x27;
constexpr uint32_t OpcOpFp = 0x53;
constexpr uint32_t OpcFmadd = 0x43;
constexpr uint32_t OpcFmsub = 0x47;
constexpr uint32_t OpcFnmsub = 0x4B;
constexpr uint32_t OpcFnmadd = 0x4F;

uint32_t
rType(uint32_t funct7, uint8_t rs2, uint8_t rs1, uint32_t funct3,
      uint8_t rd, uint32_t opcode)
{
    return (funct7 << 25) | (uint32_t(rs2) << 20) | (uint32_t(rs1) << 15) |
           (funct3 << 12) | (uint32_t(rd) << 7) | opcode;
}

uint32_t
r4Type(uint8_t rs3, uint8_t rs2, uint8_t rs1, uint8_t rd,
       uint32_t opcode)
{
    return (uint32_t(rs3) << 27) | (uint32_t(rs2) << 20) |
           (uint32_t(rs1) << 15) | (uint32_t(rd) << 7) | opcode;
}

uint32_t
iType(int32_t imm, uint8_t rs1, uint32_t funct3, uint8_t rd,
      uint32_t opcode)
{
    return (uint32_t(imm & 0xFFF) << 20) | (uint32_t(rs1) << 15) |
           (funct3 << 12) | (uint32_t(rd) << 7) | opcode;
}

uint32_t
sType(int32_t imm, uint8_t rs2, uint8_t rs1, uint32_t funct3,
      uint32_t opcode)
{
    uint32_t u = uint32_t(imm);
    return (((u >> 5) & 0x7F) << 25) | (uint32_t(rs2) << 20) |
           (uint32_t(rs1) << 15) | (funct3 << 12) | ((u & 0x1F) << 7) |
           opcode;
}

uint32_t
bType(int32_t imm, uint8_t rs2, uint8_t rs1, uint32_t funct3,
      uint32_t opcode)
{
    uint32_t u = uint32_t(imm);
    uint32_t w = 0;
    w |= ((u >> 12) & 0x1) << 31;
    w |= ((u >> 5) & 0x3F) << 25;
    w |= uint32_t(rs2) << 20;
    w |= uint32_t(rs1) << 15;
    w |= funct3 << 12;
    w |= ((u >> 1) & 0xF) << 8;
    w |= ((u >> 11) & 0x1) << 7;
    w |= opcode;
    return w;
}

uint32_t
uType(int32_t imm, uint8_t rd, uint32_t opcode)
{
    return (uint32_t(imm) & 0xFFFFF000u) | (uint32_t(rd) << 7) | opcode;
}

uint32_t
jType(int32_t imm, uint8_t rd, uint32_t opcode)
{
    uint32_t u = uint32_t(imm);
    uint32_t w = 0;
    w |= ((u >> 20) & 0x1) << 31;
    w |= ((u >> 1) & 0x3FF) << 21;
    w |= ((u >> 11) & 0x1) << 20;
    w |= ((u >> 12) & 0xFF) << 12;
    w |= uint32_t(rd) << 7;
    w |= opcode;
    return w;
}

int32_t
signExtend(uint32_t v, int bits)
{
    uint32_t mask = 1u << (bits - 1);
    return int32_t((v ^ mask) - mask);
}

} // namespace

uint32_t
encode(const Instruction &in)
{
    switch (in.op) {
      case Op::Lui: return uType(in.imm, in.rd, OpcLui);
      case Op::Auipc: return uType(in.imm, in.rd, OpcAuipc);
      case Op::Jal: return jType(in.imm, in.rd, OpcJal);
      case Op::Jalr: return iType(in.imm, in.rs1, 0, in.rd, OpcJalr);
      case Op::Beq: return bType(in.imm, in.rs2, in.rs1, 0, OpcBranch);
      case Op::Bne: return bType(in.imm, in.rs2, in.rs1, 1, OpcBranch);
      case Op::Blt: return bType(in.imm, in.rs2, in.rs1, 4, OpcBranch);
      case Op::Bge: return bType(in.imm, in.rs2, in.rs1, 5, OpcBranch);
      case Op::Bltu: return bType(in.imm, in.rs2, in.rs1, 6, OpcBranch);
      case Op::Bgeu: return bType(in.imm, in.rs2, in.rs1, 7, OpcBranch);
      case Op::Lb: return iType(in.imm, in.rs1, 0, in.rd, OpcLoad);
      case Op::Lh: return iType(in.imm, in.rs1, 1, in.rd, OpcLoad);
      case Op::Lw: return iType(in.imm, in.rs1, 2, in.rd, OpcLoad);
      case Op::Lbu: return iType(in.imm, in.rs1, 4, in.rd, OpcLoad);
      case Op::Lhu: return iType(in.imm, in.rs1, 5, in.rd, OpcLoad);
      case Op::Flw: return iType(in.imm, in.rs1, 2, in.rd, OpcLoadFp);
      case Op::Sb: return sType(in.imm, in.rs2, in.rs1, 0, OpcStore);
      case Op::Sh: return sType(in.imm, in.rs2, in.rs1, 1, OpcStore);
      case Op::Sw: return sType(in.imm, in.rs2, in.rs1, 2, OpcStore);
      case Op::Fsw: return sType(in.imm, in.rs2, in.rs1, 2, OpcStoreFp);
      case Op::Addi: return iType(in.imm, in.rs1, 0, in.rd, OpcOpImm);
      case Op::Slti: return iType(in.imm, in.rs1, 2, in.rd, OpcOpImm);
      case Op::Sltiu: return iType(in.imm, in.rs1, 3, in.rd, OpcOpImm);
      case Op::Xori: return iType(in.imm, in.rs1, 4, in.rd, OpcOpImm);
      case Op::Ori: return iType(in.imm, in.rs1, 6, in.rd, OpcOpImm);
      case Op::Andi: return iType(in.imm, in.rs1, 7, in.rd, OpcOpImm);
      case Op::Slli:
        return rType(0x00, in.imm & 0x1F, in.rs1, 1, in.rd, OpcOpImm);
      case Op::Srli:
        return rType(0x00, in.imm & 0x1F, in.rs1, 5, in.rd, OpcOpImm);
      case Op::Srai:
        return rType(0x20, in.imm & 0x1F, in.rs1, 5, in.rd, OpcOpImm);
      case Op::Add: return rType(0x00, in.rs2, in.rs1, 0, in.rd, OpcOp);
      case Op::Sub: return rType(0x20, in.rs2, in.rs1, 0, in.rd, OpcOp);
      case Op::Sll: return rType(0x00, in.rs2, in.rs1, 1, in.rd, OpcOp);
      case Op::Slt: return rType(0x00, in.rs2, in.rs1, 2, in.rd, OpcOp);
      case Op::Sltu: return rType(0x00, in.rs2, in.rs1, 3, in.rd, OpcOp);
      case Op::Xor: return rType(0x00, in.rs2, in.rs1, 4, in.rd, OpcOp);
      case Op::Srl: return rType(0x00, in.rs2, in.rs1, 5, in.rd, OpcOp);
      case Op::Sra: return rType(0x20, in.rs2, in.rs1, 5, in.rd, OpcOp);
      case Op::Or: return rType(0x00, in.rs2, in.rs1, 6, in.rd, OpcOp);
      case Op::And: return rType(0x00, in.rs2, in.rs1, 7, in.rd, OpcOp);
      case Op::Mul: return rType(0x01, in.rs2, in.rs1, 0, in.rd, OpcOp);
      case Op::Mulh: return rType(0x01, in.rs2, in.rs1, 1, in.rd, OpcOp);
      case Op::Mulhsu: return rType(0x01, in.rs2, in.rs1, 2, in.rd, OpcOp);
      case Op::Mulhu: return rType(0x01, in.rs2, in.rs1, 3, in.rd, OpcOp);
      case Op::Div: return rType(0x01, in.rs2, in.rs1, 4, in.rd, OpcOp);
      case Op::Divu: return rType(0x01, in.rs2, in.rs1, 5, in.rd, OpcOp);
      case Op::Rem: return rType(0x01, in.rs2, in.rs1, 6, in.rd, OpcOp);
      case Op::Remu: return rType(0x01, in.rs2, in.rs1, 7, in.rd, OpcOp);
      case Op::Fence: return iType(0, 0, 0, 0, OpcMiscMem);
      case Op::Ecall: return iType(0, 0, 0, 0, OpcSystem);
      case Op::Ebreak: return iType(1, 0, 0, 0, OpcSystem);
      case Op::FaddS:
        return rType(0x00, in.rs2, in.rs1, 0, in.rd, OpcOpFp);
      case Op::FsubS:
        return rType(0x04, in.rs2, in.rs1, 0, in.rd, OpcOpFp);
      case Op::FmulS:
        return rType(0x08, in.rs2, in.rs1, 0, in.rd, OpcOpFp);
      case Op::FdivS:
        return rType(0x0C, in.rs2, in.rs1, 0, in.rd, OpcOpFp);
      case Op::FsqrtS:
        return rType(0x2C, 0, in.rs1, 0, in.rd, OpcOpFp);
      case Op::FsgnjS:
        return rType(0x10, in.rs2, in.rs1, 0, in.rd, OpcOpFp);
      case Op::FsgnjnS:
        return rType(0x10, in.rs2, in.rs1, 1, in.rd, OpcOpFp);
      case Op::FsgnjxS:
        return rType(0x10, in.rs2, in.rs1, 2, in.rd, OpcOpFp);
      case Op::FminS:
        return rType(0x14, in.rs2, in.rs1, 0, in.rd, OpcOpFp);
      case Op::FmaxS:
        return rType(0x14, in.rs2, in.rs1, 1, in.rd, OpcOpFp);
      case Op::FcvtWS:
        return rType(0x60, 0, in.rs1, 0, in.rd, OpcOpFp);
      case Op::FcvtWuS:
        return rType(0x60, 1, in.rs1, 0, in.rd, OpcOpFp);
      case Op::FcvtSW:
        return rType(0x68, 0, in.rs1, 0, in.rd, OpcOpFp);
      case Op::FcvtSWu:
        return rType(0x68, 1, in.rs1, 0, in.rd, OpcOpFp);
      case Op::FmvXW:
        return rType(0x70, 0, in.rs1, 0, in.rd, OpcOpFp);
      case Op::FmvWX:
        return rType(0x78, 0, in.rs1, 0, in.rd, OpcOpFp);
      case Op::FeqS:
        return rType(0x50, in.rs2, in.rs1, 2, in.rd, OpcOpFp);
      case Op::FltS:
        return rType(0x50, in.rs2, in.rs1, 1, in.rd, OpcOpFp);
      case Op::FleS:
        return rType(0x50, in.rs2, in.rs1, 0, in.rd, OpcOpFp);
      case Op::FmaddS:
        return r4Type(in.rs3, in.rs2, in.rs1, in.rd, OpcFmadd);
      case Op::FmsubS:
        return r4Type(in.rs3, in.rs2, in.rs1, in.rd, OpcFmsub);
      case Op::FnmsubS:
        return r4Type(in.rs3, in.rs2, in.rs1, in.rd, OpcFnmsub);
      case Op::FnmaddS:
        return r4Type(in.rs3, in.rs2, in.rs1, in.rd, OpcFnmadd);
      default:
        panic("encode: unsupported op ", opName(in.op));
    }
}

Instruction
decode(uint32_t w, uint32_t pc)
{
    Instruction in;
    in.raw = w;
    in.pc = pc;

    const uint32_t opcode = w & 0x7F;
    const uint8_t rd = (w >> 7) & 0x1F;
    const uint32_t funct3 = (w >> 12) & 0x7;
    const uint8_t rs1 = (w >> 15) & 0x1F;
    const uint8_t rs2 = (w >> 20) & 0x1F;
    const uint32_t funct7 = (w >> 25) & 0x7F;

    in.rd = rd;
    in.rs1 = rs1;
    in.rs2 = rs2;

    auto iImm = [&] { return signExtend(w >> 20, 12); };
    auto sImm = [&] {
        return signExtend(((w >> 25) << 5) | ((w >> 7) & 0x1F), 12);
    };
    auto bImm = [&] {
        uint32_t v = (((w >> 31) & 0x1) << 12) | (((w >> 7) & 0x1) << 11) |
                     (((w >> 25) & 0x3F) << 5) | (((w >> 8) & 0xF) << 1);
        return signExtend(v, 13);
    };
    auto jImm = [&] {
        uint32_t v = (((w >> 31) & 0x1) << 20) |
                     (((w >> 12) & 0xFF) << 12) |
                     (((w >> 20) & 0x1) << 11) | (((w >> 21) & 0x3FF) << 1);
        return signExtend(v, 21);
    };

    switch (opcode) {
      case OpcLui:
        in.op = Op::Lui;
        in.imm = int32_t(w & 0xFFFFF000u);
        break;
      case OpcAuipc:
        in.op = Op::Auipc;
        in.imm = int32_t(w & 0xFFFFF000u);
        break;
      case OpcJal:
        in.op = Op::Jal;
        in.imm = jImm();
        break;
      case OpcJalr:
        in.op = Op::Jalr;
        in.imm = iImm();
        break;
      case OpcBranch: {
        static constexpr Op branch_map[8] = {Op::Beq, Op::Bne, Op::Invalid,
                                             Op::Invalid, Op::Blt, Op::Bge,
                                             Op::Bltu, Op::Bgeu};
        in.op = branch_map[funct3];
        in.imm = bImm();
        break;
      }
      case OpcLoad: {
        static constexpr Op load_map[8] = {Op::Lb, Op::Lh, Op::Lw,
                                           Op::Invalid, Op::Lbu, Op::Lhu,
                                           Op::Invalid, Op::Invalid};
        in.op = load_map[funct3];
        in.imm = iImm();
        break;
      }
      case OpcLoadFp:
        in.op = (funct3 == 2) ? Op::Flw : Op::Invalid;
        in.imm = iImm();
        break;
      case OpcStore: {
        static constexpr Op store_map[8] = {
            Op::Sb, Op::Sh, Op::Sw, Op::Invalid,
            Op::Invalid, Op::Invalid, Op::Invalid, Op::Invalid};
        in.op = store_map[funct3];
        in.imm = sImm();
        break;
      }
      case OpcStoreFp:
        in.op = (funct3 == 2) ? Op::Fsw : Op::Invalid;
        in.imm = sImm();
        break;
      case OpcOpImm:
        switch (funct3) {
          case 0: in.op = Op::Addi; in.imm = iImm(); break;
          case 1: in.op = Op::Slli; in.imm = rs2; break;
          case 2: in.op = Op::Slti; in.imm = iImm(); break;
          case 3: in.op = Op::Sltiu; in.imm = iImm(); break;
          case 4: in.op = Op::Xori; in.imm = iImm(); break;
          case 5:
            in.op = (funct7 == 0x20) ? Op::Srai : Op::Srli;
            in.imm = rs2;
            break;
          case 6: in.op = Op::Ori; in.imm = iImm(); break;
          case 7: in.op = Op::Andi; in.imm = iImm(); break;
        }
        break;
      case OpcOp:
        if (funct7 == 0x01) {
            static constexpr Op m_map[8] = {Op::Mul, Op::Mulh, Op::Mulhsu,
                                            Op::Mulhu, Op::Div, Op::Divu,
                                            Op::Rem, Op::Remu};
            in.op = m_map[funct3];
        } else {
            switch (funct3) {
              case 0: in.op = (funct7 == 0x20) ? Op::Sub : Op::Add; break;
              case 1: in.op = Op::Sll; break;
              case 2: in.op = Op::Slt; break;
              case 3: in.op = Op::Sltu; break;
              case 4: in.op = Op::Xor; break;
              case 5: in.op = (funct7 == 0x20) ? Op::Sra : Op::Srl; break;
              case 6: in.op = Op::Or; break;
              case 7: in.op = Op::And; break;
            }
        }
        break;
      case OpcMiscMem:
        in.op = Op::Fence;
        break;
      case OpcSystem:
        in.op = ((w >> 20) & 0xFFF) == 1 ? Op::Ebreak : Op::Ecall;
        break;
      case OpcFmadd:
      case OpcFmsub:
      case OpcFnmsub:
      case OpcFnmadd:
        in.op = opcode == OpcFmadd    ? Op::FmaddS
                : opcode == OpcFmsub  ? Op::FmsubS
                : opcode == OpcFnmsub ? Op::FnmsubS
                                      : Op::FnmaddS;
        in.rs3 = uint8_t((w >> 27) & 0x1F);
        break;
      case OpcOpFp:
        switch (funct7) {
          case 0x00: in.op = Op::FaddS; break;
          case 0x04: in.op = Op::FsubS; break;
          case 0x08: in.op = Op::FmulS; break;
          case 0x0C: in.op = Op::FdivS; break;
          case 0x2C: in.op = Op::FsqrtS; break;
          case 0x10:
            in.op = funct3 == 0 ? Op::FsgnjS
                  : funct3 == 1 ? Op::FsgnjnS
                                : Op::FsgnjxS;
            break;
          case 0x14: in.op = funct3 == 0 ? Op::FminS : Op::FmaxS; break;
          case 0x60: in.op = rs2 == 0 ? Op::FcvtWS : Op::FcvtWuS; break;
          case 0x68: in.op = rs2 == 0 ? Op::FcvtSW : Op::FcvtSWu; break;
          case 0x70: in.op = Op::FmvXW; break;
          case 0x78: in.op = Op::FmvWX; break;
          case 0x50:
            in.op = funct3 == 2 ? Op::FeqS
                  : funct3 == 1 ? Op::FltS
                                : Op::FleS;
            break;
          default: in.op = Op::Invalid; break;
        }
        break;
      default:
        in.op = Op::Invalid;
        break;
    }
    return in;
}

} // namespace mesa::riscv
