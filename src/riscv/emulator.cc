#include "riscv/emulator.hh"

#include "riscv/alu.hh"
#include "riscv/encoding.hh"
#include "util/logging.hh"

namespace mesa::riscv
{

void
Emulator::reset(uint32_t pc)
{
    state_ = ArchState{};
    state_.pc = pc;
    halted_ = false;
    instret_ = 0;
}

bool
Emulator::step()
{
    if (halted_)
        return false;
    const Instruction &inst = *fetch(state_.pc);
    if (inst.op == Op::Invalid || inst.op == Op::Ecall ||
        inst.op == Op::Ebreak) {
        halted_ = true;
        return false;
    }
    execute(inst);
    ++instret_;
    return !halted_;
}

const Instruction *
Emulator::fetch(uint32_t pc)
{
    if (!decode_cache_enabled_) {
        scratch_ = decode(mem_.read32(pc), pc);
        return &scratch_;
    }
    // clear() deallocated every page: all cached gen pointers are
    // dangling and must be dropped before any compare.
    if (mem_.epoch() != mem_epoch_) {
        flushDecodeCache();
        mem_epoch_ = mem_.epoch();
    }
    // Cursor fast path: the common case is falling through to the
    // next instruction of the current block. The generation compare
    // re-validates on every step so a store by the previous
    // instruction into this code page (self-modifying code) is seen
    // immediately.
    if (cur_block_ && *cur_block_->gen_ptr == cur_block_->gen) {
        const auto &insts = cur_block_->insts;
        if (cur_idx_ + 1 < insts.size() &&
            insts[cur_idx_ + 1].pc == pc) {
            ++cur_idx_;
            return &insts[cur_idx_];
        }
    }
    auto it = blocks_.find(pc);
    if (it != blocks_.end()) {
        if (*it->second.gen_ptr == it->second.gen) {
            cur_block_ = &it->second;
            cur_idx_ = 0;
            return &cur_block_->insts.front();
        }
        // Stale block: the page was written since decode.
        if (cur_block_ == &it->second)
            cur_block_ = nullptr;
        blocks_.erase(it);
    }
    return decodeBlock(pc);
}

const Instruction *
Emulator::decodeBlock(uint32_t pc)
{
    const uint64_t *gen_ptr = mem_.pageGenPtr(pc);
    // Never decode into the cache from a non-resident page (reads
    // must not allocate: residentSpan()/snapshot() feed the absint
    // certifier and golden-model compares) or from a misaligned pc
    // (a straight-line walk could cross the page edge mid-word).
    if (!gen_ptr || (pc & 3) != 0) {
        cur_block_ = nullptr;
        scratch_ = decode(mem_.read32(pc), pc);
        return &scratch_;
    }
    DecodedBlock blk;
    blk.gen_ptr = gen_ptr;
    blk.gen = *gen_ptr;
    const uint64_t page_end =
        (uint64_t(pc) & ~uint64_t(mem::MainMemory::PageSize - 1)) +
        mem::MainMemory::PageSize;
    for (uint64_t p = pc; p + 4 <= page_end; p += 4) {
        const Instruction inst =
            decode(mem_.read32(uint32_t(p)), uint32_t(p));
        blk.insts.push_back(inst);
        if (inst.isControl() || inst.isSystem() ||
            inst.op == Op::Invalid)
            break;
    }
    if (blocks_.size() >= MaxCachedBlocks)
        flushDecodeCache();
    auto [it, inserted] = blocks_.emplace(pc, std::move(blk));
    cur_block_ = &it->second;
    cur_idx_ = 0;
    return &cur_block_->insts.front();
}

uint64_t
Emulator::run(uint64_t max_steps)
{
    uint64_t n = 0;
    while (n < max_steps && !halted_) {
        if (!step())
            break;
        ++n;
    }
    return instret_;
}

uint64_t
Emulator::runWhileInRegion(uint32_t lo, uint32_t hi, uint64_t max_steps)
{
    uint64_t n = 0;
    while (n < max_steps && !halted_ && state_.pc >= lo && state_.pc < hi) {
        // A failed step executed nothing (ecall/ebreak/invalid word
        // halts before commit): counting it would make a halt on the
        // region boundary indistinguishable from a region exit.
        if (!step())
            break;
        ++n;
    }
    return n;
}

void
Emulator::execute(const Instruction &in)
{
    auto &x = state_.x;
    auto &f = state_.f;
    const uint32_t pc = state_.pc;
    uint32_t next_pc = pc + 4;

    TraceEntry te;
    te.inst = in;

    const bool fp_src = fpSources(in.op);
    const uint32_t a =
        (fp_src && !in.isMem()) ? f[in.rs1] : x[in.rs1];
    const uint32_t b = fp_src ? f[in.rs2] : x[in.rs2];
    te.src1_val = a;
    te.src2_val = b;

    auto writeResult = [&](uint32_t v) {
        if (fpDest(in.op))
            f[in.rd] = v;
        else if (in.rd != 0)
            x[in.rd] = v;
        te.result = v;
    };

    switch (in.cls()) {
      case OpClass::Jump:
        writeResult(pc + 4);
        if (in.op == Op::Jal)
            next_pc = pc + uint32_t(in.imm);
        else
            next_pc = (x[in.rs1] + uint32_t(in.imm)) & ~1u;
        te.branch_taken = true;
        break;

      case OpClass::Branch:
        te.branch_taken = branchEval(in.op, a, b);
        if (te.branch_taken)
            next_pc = pc + uint32_t(in.imm);
        break;

      case OpClass::Load: {
        const uint32_t addr = x[in.rs1] + uint32_t(in.imm);
        te.mem_addr = addr;
        uint32_t v = 0;
        switch (in.op) {
          case Op::Lb: v = uint32_t(int32_t(int8_t(mem_.read8(addr)))); break;
          case Op::Lbu: v = mem_.read8(addr); break;
          case Op::Lh: v = uint32_t(int32_t(int16_t(mem_.read16(addr)))); break;
          case Op::Lhu: v = mem_.read16(addr); break;
          case Op::Lw:
          case Op::Flw: v = mem_.read32(addr); break;
          default: panic("Emulator: bad load op");
        }
        writeResult(v);
        break;
      }

      case OpClass::Store: {
        const uint32_t addr = x[in.rs1] + uint32_t(in.imm);
        te.mem_addr = addr;
        const uint32_t v = in.op == Op::Fsw ? f[in.rs2] : x[in.rs2];
        switch (in.op) {
          case Op::Sb: mem_.write8(addr, uint8_t(v)); break;
          case Op::Sh: mem_.write16(addr, uint16_t(v)); break;
          case Op::Sw:
          case Op::Fsw: mem_.write32(addr, v); break;
          default: panic("Emulator: bad store op");
        }
        break;
      }

      case OpClass::System:
        break; // fence is a no-op in this memory model

      default:
        if (in.numSources() == 3) {
            // R4-type fused multiply-add family.
            const float fa = std::bit_cast<float>(a);
            const float fb = std::bit_cast<float>(b);
            const float fc = std::bit_cast<float>(f[in.rs3]);
            float r = 0.0f;
            switch (in.op) {
              case Op::FmaddS: r = fa * fb + fc; break;
              case Op::FmsubS: r = fa * fb - fc; break;
              case Op::FnmsubS: r = -(fa * fb) + fc; break;
              case Op::FnmaddS: r = -(fa * fb) - fc; break;
              default: panic("Emulator: bad fused op");
            }
            writeResult(std::bit_cast<uint32_t>(r));
            break;
        }
        writeResult(aluEval(in.op, a, b, in.imm, pc));
        break;
    }

    te.next_pc = next_pc;
    state_.pc = next_pc;

    if (observer_)
        observer_(te);
}

} // namespace mesa::riscv
