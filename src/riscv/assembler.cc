#include "riscv/assembler.hh"

#include "riscv/encoding.hh"
#include "util/logging.hh"

namespace mesa::riscv
{

uint32_t
Program::labelPc(const std::string &name) const
{
    auto it = labels.find(name);
    if (it == labels.end())
        fatal("Program: unknown label '", name, "'");
    return it->second;
}

std::vector<Instruction>
Program::decodeAll() const
{
    std::vector<Instruction> out;
    out.reserve(words.size());
    for (size_t i = 0; i < words.size(); ++i)
        out.push_back(decode(words[i], base_pc + 4 * uint32_t(i)));
    return out;
}

void
Assembler::label(const std::string &name)
{
    if (labels_.count(name))
        fatal("Assembler: duplicate label '", name, "'");
    labels_[name] = uint32_t(entries_.size());
}

uint32_t
Assembler::here() const
{
    return base_pc_ + 4 * uint32_t(entries_.size());
}

void
Assembler::emit(Op op, uint8_t rd, uint8_t rs1, uint8_t rs2, int32_t imm,
                const std::string &label_ref)
{
    Entry e;
    e.inst.op = op;
    e.inst.rd = rd;
    e.inst.rs1 = rs1;
    e.inst.rs2 = rs2;
    e.inst.imm = imm;
    e.inst.pc = here();
    e.label_ref = label_ref;
    entries_.push_back(std::move(e));
}

// RV32I ---------------------------------------------------------------

void Assembler::lui(uint8_t rd, int32_t imm20)
{ emit(Op::Lui, rd, 0, 0, imm20 << 12); }
void Assembler::auipc(uint8_t rd, int32_t imm20)
{ emit(Op::Auipc, rd, 0, 0, imm20 << 12); }
void Assembler::jal(uint8_t rd, const std::string &t)
{ emit(Op::Jal, rd, 0, 0, 0, t); }
void Assembler::jalr(uint8_t rd, uint8_t rs1, int32_t imm)
{ emit(Op::Jalr, rd, rs1, 0, imm); }

void Assembler::beq(uint8_t rs1, uint8_t rs2, const std::string &t)
{ emit(Op::Beq, 0, rs1, rs2, 0, t); }
void Assembler::bne(uint8_t rs1, uint8_t rs2, const std::string &t)
{ emit(Op::Bne, 0, rs1, rs2, 0, t); }
void Assembler::blt(uint8_t rs1, uint8_t rs2, const std::string &t)
{ emit(Op::Blt, 0, rs1, rs2, 0, t); }
void Assembler::bge(uint8_t rs1, uint8_t rs2, const std::string &t)
{ emit(Op::Bge, 0, rs1, rs2, 0, t); }
void Assembler::bltu(uint8_t rs1, uint8_t rs2, const std::string &t)
{ emit(Op::Bltu, 0, rs1, rs2, 0, t); }
void Assembler::bgeu(uint8_t rs1, uint8_t rs2, const std::string &t)
{ emit(Op::Bgeu, 0, rs1, rs2, 0, t); }

void Assembler::lb(uint8_t rd, int32_t off, uint8_t rs1)
{ emit(Op::Lb, rd, rs1, 0, off); }
void Assembler::lh(uint8_t rd, int32_t off, uint8_t rs1)
{ emit(Op::Lh, rd, rs1, 0, off); }
void Assembler::lw(uint8_t rd, int32_t off, uint8_t rs1)
{ emit(Op::Lw, rd, rs1, 0, off); }
void Assembler::lbu(uint8_t rd, int32_t off, uint8_t rs1)
{ emit(Op::Lbu, rd, rs1, 0, off); }
void Assembler::lhu(uint8_t rd, int32_t off, uint8_t rs1)
{ emit(Op::Lhu, rd, rs1, 0, off); }
void Assembler::sb(uint8_t rs2, int32_t off, uint8_t rs1)
{ emit(Op::Sb, 0, rs1, rs2, off); }
void Assembler::sh(uint8_t rs2, int32_t off, uint8_t rs1)
{ emit(Op::Sh, 0, rs1, rs2, off); }
void Assembler::sw(uint8_t rs2, int32_t off, uint8_t rs1)
{ emit(Op::Sw, 0, rs1, rs2, off); }

void Assembler::addi(uint8_t rd, uint8_t rs1, int32_t imm)
{ emit(Op::Addi, rd, rs1, 0, imm); }
void Assembler::slti(uint8_t rd, uint8_t rs1, int32_t imm)
{ emit(Op::Slti, rd, rs1, 0, imm); }
void Assembler::sltiu(uint8_t rd, uint8_t rs1, int32_t imm)
{ emit(Op::Sltiu, rd, rs1, 0, imm); }
void Assembler::xori(uint8_t rd, uint8_t rs1, int32_t imm)
{ emit(Op::Xori, rd, rs1, 0, imm); }
void Assembler::ori(uint8_t rd, uint8_t rs1, int32_t imm)
{ emit(Op::Ori, rd, rs1, 0, imm); }
void Assembler::andi(uint8_t rd, uint8_t rs1, int32_t imm)
{ emit(Op::Andi, rd, rs1, 0, imm); }
void Assembler::slli(uint8_t rd, uint8_t rs1, int32_t shamt)
{ emit(Op::Slli, rd, rs1, 0, shamt & 0x1F); }
void Assembler::srli(uint8_t rd, uint8_t rs1, int32_t shamt)
{ emit(Op::Srli, rd, rs1, 0, shamt & 0x1F); }
void Assembler::srai(uint8_t rd, uint8_t rs1, int32_t shamt)
{ emit(Op::Srai, rd, rs1, 0, shamt & 0x1F); }

void Assembler::add(uint8_t rd, uint8_t rs1, uint8_t rs2)
{ emit(Op::Add, rd, rs1, rs2, 0); }
void Assembler::sub(uint8_t rd, uint8_t rs1, uint8_t rs2)
{ emit(Op::Sub, rd, rs1, rs2, 0); }
void Assembler::sll(uint8_t rd, uint8_t rs1, uint8_t rs2)
{ emit(Op::Sll, rd, rs1, rs2, 0); }
void Assembler::slt(uint8_t rd, uint8_t rs1, uint8_t rs2)
{ emit(Op::Slt, rd, rs1, rs2, 0); }
void Assembler::sltu(uint8_t rd, uint8_t rs1, uint8_t rs2)
{ emit(Op::Sltu, rd, rs1, rs2, 0); }
void Assembler::xor_(uint8_t rd, uint8_t rs1, uint8_t rs2)
{ emit(Op::Xor, rd, rs1, rs2, 0); }
void Assembler::srl(uint8_t rd, uint8_t rs1, uint8_t rs2)
{ emit(Op::Srl, rd, rs1, rs2, 0); }
void Assembler::sra(uint8_t rd, uint8_t rs1, uint8_t rs2)
{ emit(Op::Sra, rd, rs1, rs2, 0); }
void Assembler::or_(uint8_t rd, uint8_t rs1, uint8_t rs2)
{ emit(Op::Or, rd, rs1, rs2, 0); }
void Assembler::and_(uint8_t rd, uint8_t rs1, uint8_t rs2)
{ emit(Op::And, rd, rs1, rs2, 0); }

void Assembler::fence() { emit(Op::Fence, 0, 0, 0, 0); }
void Assembler::ecall() { emit(Op::Ecall, 0, 0, 0, 0); }
void Assembler::ebreak() { emit(Op::Ebreak, 0, 0, 0, 0); }

// RV32M ---------------------------------------------------------------

void Assembler::mul(uint8_t rd, uint8_t rs1, uint8_t rs2)
{ emit(Op::Mul, rd, rs1, rs2, 0); }
void Assembler::mulh(uint8_t rd, uint8_t rs1, uint8_t rs2)
{ emit(Op::Mulh, rd, rs1, rs2, 0); }
void Assembler::mulhsu(uint8_t rd, uint8_t rs1, uint8_t rs2)
{ emit(Op::Mulhsu, rd, rs1, rs2, 0); }
void Assembler::mulhu(uint8_t rd, uint8_t rs1, uint8_t rs2)
{ emit(Op::Mulhu, rd, rs1, rs2, 0); }
void Assembler::div(uint8_t rd, uint8_t rs1, uint8_t rs2)
{ emit(Op::Div, rd, rs1, rs2, 0); }
void Assembler::divu(uint8_t rd, uint8_t rs1, uint8_t rs2)
{ emit(Op::Divu, rd, rs1, rs2, 0); }
void Assembler::rem(uint8_t rd, uint8_t rs1, uint8_t rs2)
{ emit(Op::Rem, rd, rs1, rs2, 0); }
void Assembler::remu(uint8_t rd, uint8_t rs1, uint8_t rs2)
{ emit(Op::Remu, rd, rs1, rs2, 0); }

// RV32F ---------------------------------------------------------------

void Assembler::flw(uint8_t frd, int32_t off, uint8_t rs1)
{ emit(Op::Flw, frd, rs1, 0, off); }
void Assembler::fsw(uint8_t frs2, int32_t off, uint8_t rs1)
{ emit(Op::Fsw, 0, rs1, frs2, off); }
void Assembler::fadd_s(uint8_t frd, uint8_t frs1, uint8_t frs2)
{ emit(Op::FaddS, frd, frs1, frs2, 0); }
void Assembler::fsub_s(uint8_t frd, uint8_t frs1, uint8_t frs2)
{ emit(Op::FsubS, frd, frs1, frs2, 0); }
void Assembler::fmul_s(uint8_t frd, uint8_t frs1, uint8_t frs2)
{ emit(Op::FmulS, frd, frs1, frs2, 0); }
void Assembler::fdiv_s(uint8_t frd, uint8_t frs1, uint8_t frs2)
{ emit(Op::FdivS, frd, frs1, frs2, 0); }
void Assembler::fsqrt_s(uint8_t frd, uint8_t frs1)
{ emit(Op::FsqrtS, frd, frs1, 0, 0); }
void Assembler::fmin_s(uint8_t frd, uint8_t frs1, uint8_t frs2)
{ emit(Op::FminS, frd, frs1, frs2, 0); }
void Assembler::fmax_s(uint8_t frd, uint8_t frs1, uint8_t frs2)
{ emit(Op::FmaxS, frd, frs1, frs2, 0); }
void Assembler::fsgnj_s(uint8_t frd, uint8_t frs1, uint8_t frs2)
{ emit(Op::FsgnjS, frd, frs1, frs2, 0); }
void Assembler::fmv_x_w(uint8_t rd, uint8_t frs1)
{ emit(Op::FmvXW, rd, frs1, 0, 0); }
void Assembler::fmv_w_x(uint8_t frd, uint8_t rs1)
{ emit(Op::FmvWX, frd, rs1, 0, 0); }
void Assembler::fcvt_s_w(uint8_t frd, uint8_t rs1)
{ emit(Op::FcvtSW, frd, rs1, 0, 0); }
void Assembler::fcvt_w_s(uint8_t rd, uint8_t frs1)
{ emit(Op::FcvtWS, rd, frs1, 0, 0); }
void
Assembler::fmadd_s(uint8_t frd, uint8_t frs1, uint8_t frs2, uint8_t frs3)
{
    Entry e;
    e.inst.op = Op::FmaddS;
    e.inst.rd = frd;
    e.inst.rs1 = frs1;
    e.inst.rs2 = frs2;
    e.inst.rs3 = frs3;
    e.inst.pc = here();
    entries_.push_back(std::move(e));
}

void
Assembler::fmsub_s(uint8_t frd, uint8_t frs1, uint8_t frs2, uint8_t frs3)
{
    Entry e;
    e.inst.op = Op::FmsubS;
    e.inst.rd = frd;
    e.inst.rs1 = frs1;
    e.inst.rs2 = frs2;
    e.inst.rs3 = frs3;
    e.inst.pc = here();
    entries_.push_back(std::move(e));
}

void
Assembler::fnmadd_s(uint8_t frd, uint8_t frs1, uint8_t frs2,
                    uint8_t frs3)
{
    Entry e;
    e.inst.op = Op::FnmaddS;
    e.inst.rd = frd;
    e.inst.rs1 = frs1;
    e.inst.rs2 = frs2;
    e.inst.rs3 = frs3;
    e.inst.pc = here();
    entries_.push_back(std::move(e));
}

void
Assembler::fnmsub_s(uint8_t frd, uint8_t frs1, uint8_t frs2,
                    uint8_t frs3)
{
    Entry e;
    e.inst.op = Op::FnmsubS;
    e.inst.rd = frd;
    e.inst.rs1 = frs1;
    e.inst.rs2 = frs2;
    e.inst.rs3 = frs3;
    e.inst.pc = here();
    entries_.push_back(std::move(e));
}

void Assembler::feq_s(uint8_t rd, uint8_t frs1, uint8_t frs2)
{ emit(Op::FeqS, rd, frs1, frs2, 0); }
void Assembler::flt_s(uint8_t rd, uint8_t frs1, uint8_t frs2)
{ emit(Op::FltS, rd, frs1, frs2, 0); }
void Assembler::fle_s(uint8_t rd, uint8_t frs1, uint8_t frs2)
{ emit(Op::FleS, rd, frs1, frs2, 0); }

// Pseudo-instructions ---------------------------------------------------

void
Assembler::li(uint8_t rd, int32_t value)
{
    if (value >= -2048 && value < 2048) {
        addi(rd, 0, value);
        return;
    }
    // lui loads the upper 20 bits; addi sign-extends, so round up the
    // upper part when the low 12 bits have the sign bit set.
    int32_t hi = (value + 0x800) >> 12;
    int32_t lo = value - (hi << 12);
    lui(rd, hi);
    if (lo != 0)
        addi(rd, rd, lo);
}

Program
Assembler::assemble() const
{
    Program prog;
    prog.base_pc = base_pc_;
    prog.words.reserve(entries_.size());
    for (const auto &[name, idx] : labels_)
        prog.labels[name] = base_pc_ + 4 * idx;

    for (size_t i = 0; i < entries_.size(); ++i) {
        Instruction inst = entries_[i].inst;
        if (!entries_[i].label_ref.empty()) {
            auto it = labels_.find(entries_[i].label_ref);
            if (it == labels_.end()) {
                fatal("Assembler: unresolved label '",
                      entries_[i].label_ref, "'");
            }
            const int64_t target = int64_t(base_pc_) + 4 * int64_t(it->second);
            inst.imm = int32_t(target - int64_t(inst.pc));
        }
        prog.words.push_back(encode(inst));
    }
    return prog;
}

} // namespace mesa::riscv
