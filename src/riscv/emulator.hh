/**
 * @file
 * Functional RV32IMF emulator. Serves three roles: the golden
 * reference model for accelerator-equivalence tests, the architectural
 * executor for non-accelerated code, and the dynamic-trace source for
 * the CPU timing model and MESA's runtime monitors.
 */

#ifndef MESA_RISCV_EMULATOR_HH
#define MESA_RISCV_EMULATOR_HH

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "mem/memory.hh"
#include "riscv/instruction.hh"

namespace mesa::riscv
{

/** Full architectural state: pc + integer and FP register files. */
struct ArchState
{
    uint32_t pc = 0;
    std::array<uint32_t, NumIntRegs> x{};
    std::array<uint32_t, NumFpRegs> f{}; ///< FP regs as raw bits.

    bool
    operator==(const ArchState &other) const
    {
        return pc == other.pc && x == other.x && f == other.f;
    }
};

/** One dynamic-trace event, delivered to the observer after commit. */
struct TraceEntry
{
    Instruction inst;
    uint32_t mem_addr = 0;   ///< Effective address (memory ops).
    uint32_t result = 0;     ///< Value written to rd (raw bits).
    uint32_t src1_val = 0;   ///< Value of operand 1 (raw bits).
    uint32_t src2_val = 0;   ///< Value of operand 2 (raw bits).
    bool branch_taken = false;
    uint32_t next_pc = 0;
};

/**
 * Single-stepping functional emulator over MainMemory. ECALL and
 * EBREAK halt execution (treated as the program's exit).
 *
 * Instructions are decoded once per basic block and cached: a block is
 * a run of straight-line instructions starting at its entry pc and
 * ending at the first control-flow or system instruction (or the page
 * boundary). Each cached block records the write-generation of the
 * page it was decoded from; any store to that page (self-modifying
 * code, program reload) makes the generation compare fail and the
 * block is re-decoded. MainMemory::clear() bumps the memory epoch,
 * which drops the whole cache (page pointers died). The cache is
 * purely a speedup: architectural state, instret, halt behavior, and
 * the observer stream are bit-identical with the cache disabled.
 */
class Emulator
{
  public:
    using Observer = std::function<void(const TraceEntry &)>;

    explicit Emulator(mem::MainMemory &mem) : mem_(mem) {}

    /** Reset registers and set the program counter. */
    void reset(uint32_t pc);

    ArchState &state() { return state_; }
    const ArchState &state() const { return state_; }

    uint32_t &x(int i) { return state_.x[size_t(i)]; }
    uint32_t x(int i) const { return state_.x[size_t(i)]; }
    uint32_t &fbits(int i) { return state_.f[size_t(i)]; }
    float fval(int i) const { return std::bit_cast<float>(state_.f[size_t(i)]); }
    void setF(int i, float v) { state_.f[size_t(i)] = std::bit_cast<uint32_t>(v); }

    /** Install an observer that sees every committed instruction. */
    void setObserver(Observer obs) { observer_ = std::move(obs); }

    /**
     * Execute one instruction.
     * @return false if the emulator halted (ecall/ebreak/invalid).
     */
    bool step();

    /**
     * Run until halt or max_steps instructions.
     * @return number of instructions executed.
     */
    uint64_t run(uint64_t max_steps);

    /**
     * Run until pc leaves the half-open range [lo, hi) or until halt
     * or max_steps. Used to execute exactly the instructions of a loop
     * region.
     */
    uint64_t runWhileInRegion(uint32_t lo, uint32_t hi, uint64_t max_steps);

    bool halted() const { return halted_; }
    uint64_t instret() const { return instret_; }
    mem::MainMemory &memory() { return mem_; }

    /**
     * Enable or disable the decoded basic-block cache (default on).
     * Disabling also drops all cached blocks; used by equivalence
     * tests and the decode microbenchmark.
     */
    void
    setDecodeCache(bool enabled)
    {
        decode_cache_enabled_ = enabled;
        flushDecodeCache();
    }

    /** Drop every cached decoded block. */
    void
    flushDecodeCache()
    {
        blocks_.clear();
        cur_block_ = nullptr;
    }

    /** Number of decoded blocks currently cached. */
    size_t decodedBlocks() const { return blocks_.size(); }

  private:
    /** One decoded straight-line run, valid while its page gen holds. */
    struct DecodedBlock
    {
        std::vector<Instruction> insts;
        const uint64_t *gen_ptr = nullptr; ///< Page write-generation.
        uint64_t gen = 0;                  ///< Value at decode time.
    };

    /** Blocks kept before the cache is wholesale reset. */
    static constexpr size_t MaxCachedBlocks = 4096;

    void execute(const Instruction &inst);
    const Instruction *fetch(uint32_t pc);
    const Instruction *decodeBlock(uint32_t pc);

    mem::MainMemory &mem_;
    ArchState state_;
    bool halted_ = false;
    uint64_t instret_ = 0;
    Observer observer_;

    bool decode_cache_enabled_ = true;
    uint64_t mem_epoch_ = 0;
    std::unordered_map<uint32_t, DecodedBlock> blocks_;
    const DecodedBlock *cur_block_ = nullptr; ///< Cursor fast path.
    size_t cur_idx_ = 0;
    Instruction scratch_; ///< Un-cached decode (disabled/absent page).
};

} // namespace mesa::riscv

#endif // MESA_RISCV_EMULATOR_HH
