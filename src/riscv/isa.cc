#include "riscv/isa.hh"

#include "util/logging.hh"

namespace mesa::riscv
{

OpClass
opClass(Op op)
{
    switch (op) {
      case Op::Invalid:
        return OpClass::Nop;
      case Op::Lui:
      case Op::Auipc:
      case Op::Addi:
      case Op::Slti:
      case Op::Sltiu:
      case Op::Xori:
      case Op::Ori:
      case Op::Andi:
      case Op::Slli:
      case Op::Srli:
      case Op::Srai:
      case Op::Add:
      case Op::Sub:
      case Op::Sll:
      case Op::Slt:
      case Op::Sltu:
      case Op::Xor:
      case Op::Srl:
      case Op::Sra:
      case Op::Or:
      case Op::And:
        return OpClass::IntAlu;
      case Op::Mul:
      case Op::Mulh:
      case Op::Mulhsu:
      case Op::Mulhu:
        return OpClass::IntMul;
      case Op::Div:
      case Op::Divu:
      case Op::Rem:
      case Op::Remu:
        return OpClass::IntDiv;
      case Op::FaddS:
      case Op::FsubS:
      case Op::FminS:
      case Op::FmaxS:
      case Op::FsgnjS:
      case Op::FsgnjnS:
      case Op::FsgnjxS:
      case Op::FmvXW:
      case Op::FmvWX:
      case Op::FcvtSW:
      case Op::FcvtSWu:
      case Op::FcvtWS:
      case Op::FcvtWuS:
      case Op::FeqS:
      case Op::FltS:
      case Op::FleS:
        return OpClass::FpAlu;
      case Op::FmulS:
      case Op::FmaddS:
      case Op::FmsubS:
      case Op::FnmaddS:
      case Op::FnmsubS:
        return OpClass::FpMul;
      case Op::FdivS:
      case Op::FsqrtS:
        return OpClass::FpDiv;
      case Op::Lb:
      case Op::Lh:
      case Op::Lw:
      case Op::Lbu:
      case Op::Lhu:
      case Op::Flw:
        return OpClass::Load;
      case Op::Sb:
      case Op::Sh:
      case Op::Sw:
      case Op::Fsw:
        return OpClass::Store;
      case Op::Beq:
      case Op::Bne:
      case Op::Blt:
      case Op::Bge:
      case Op::Bltu:
      case Op::Bgeu:
        return OpClass::Branch;
      case Op::Jal:
      case Op::Jalr:
        return OpClass::Jump;
      case Op::Fence:
      case Op::Ecall:
      case Op::Ebreak:
        return OpClass::System;
      default:
        panic("opClass: unknown op ", static_cast<int>(op));
    }
}

const char *
opName(Op op)
{
    switch (op) {
      case Op::Invalid: return "invalid";
      case Op::Lui: return "lui";
      case Op::Auipc: return "auipc";
      case Op::Jal: return "jal";
      case Op::Jalr: return "jalr";
      case Op::Beq: return "beq";
      case Op::Bne: return "bne";
      case Op::Blt: return "blt";
      case Op::Bge: return "bge";
      case Op::Bltu: return "bltu";
      case Op::Bgeu: return "bgeu";
      case Op::Lb: return "lb";
      case Op::Lh: return "lh";
      case Op::Lw: return "lw";
      case Op::Lbu: return "lbu";
      case Op::Lhu: return "lhu";
      case Op::Sb: return "sb";
      case Op::Sh: return "sh";
      case Op::Sw: return "sw";
      case Op::Addi: return "addi";
      case Op::Slti: return "slti";
      case Op::Sltiu: return "sltiu";
      case Op::Xori: return "xori";
      case Op::Ori: return "ori";
      case Op::Andi: return "andi";
      case Op::Slli: return "slli";
      case Op::Srli: return "srli";
      case Op::Srai: return "srai";
      case Op::Add: return "add";
      case Op::Sub: return "sub";
      case Op::Sll: return "sll";
      case Op::Slt: return "slt";
      case Op::Sltu: return "sltu";
      case Op::Xor: return "xor";
      case Op::Srl: return "srl";
      case Op::Sra: return "sra";
      case Op::Or: return "or";
      case Op::And: return "and";
      case Op::Fence: return "fence";
      case Op::Ecall: return "ecall";
      case Op::Ebreak: return "ebreak";
      case Op::Mul: return "mul";
      case Op::Mulh: return "mulh";
      case Op::Mulhsu: return "mulhsu";
      case Op::Mulhu: return "mulhu";
      case Op::Div: return "div";
      case Op::Divu: return "divu";
      case Op::Rem: return "rem";
      case Op::Remu: return "remu";
      case Op::Flw: return "flw";
      case Op::Fsw: return "fsw";
      case Op::FaddS: return "fadd.s";
      case Op::FsubS: return "fsub.s";
      case Op::FmulS: return "fmul.s";
      case Op::FdivS: return "fdiv.s";
      case Op::FsqrtS: return "fsqrt.s";
      case Op::FminS: return "fmin.s";
      case Op::FmaxS: return "fmax.s";
      case Op::FsgnjS: return "fsgnj.s";
      case Op::FsgnjnS: return "fsgnjn.s";
      case Op::FsgnjxS: return "fsgnjx.s";
      case Op::FmvXW: return "fmv.x.w";
      case Op::FmvWX: return "fmv.w.x";
      case Op::FcvtSW: return "fcvt.s.w";
      case Op::FcvtSWu: return "fcvt.s.wu";
      case Op::FcvtWS: return "fcvt.w.s";
      case Op::FcvtWuS: return "fcvt.wu.s";
      case Op::FeqS: return "feq.s";
      case Op::FltS: return "flt.s";
      case Op::FleS: return "fle.s";
      case Op::FmaddS: return "fmadd.s";
      case Op::FmsubS: return "fmsub.s";
      case Op::FnmaddS: return "fnmadd.s";
      case Op::FnmsubS: return "fnmsub.s";
      default: return "???";
    }
}

const char *
opClassName(OpClass cls)
{
    switch (cls) {
      case OpClass::Nop: return "Nop";
      case OpClass::IntAlu: return "IntAlu";
      case OpClass::IntMul: return "IntMul";
      case OpClass::IntDiv: return "IntDiv";
      case OpClass::FpAlu: return "FpAlu";
      case OpClass::FpMul: return "FpMul";
      case OpClass::FpDiv: return "FpDiv";
      case OpClass::Load: return "Load";
      case OpClass::Store: return "Store";
      case OpClass::Branch: return "Branch";
      case OpClass::Jump: return "Jump";
      case OpClass::System: return "System";
      default: return "???";
    }
}

bool
fpDest(Op op)
{
    switch (op) {
      case Op::Flw:
      case Op::FaddS:
      case Op::FsubS:
      case Op::FmulS:
      case Op::FdivS:
      case Op::FsqrtS:
      case Op::FminS:
      case Op::FmaxS:
      case Op::FsgnjS:
      case Op::FsgnjnS:
      case Op::FsgnjxS:
      case Op::FmvWX:
      case Op::FcvtSW:
      case Op::FcvtSWu:
      case Op::FmaddS:
      case Op::FmsubS:
      case Op::FnmaddS:
      case Op::FnmsubS:
        return true;
      default:
        return false;
    }
}

bool
fpSources(Op op)
{
    switch (op) {
      case Op::Fsw:
      case Op::FaddS:
      case Op::FsubS:
      case Op::FmulS:
      case Op::FdivS:
      case Op::FsqrtS:
      case Op::FminS:
      case Op::FmaxS:
      case Op::FsgnjS:
      case Op::FsgnjnS:
      case Op::FsgnjxS:
      case Op::FmvXW:
      case Op::FcvtWS:
      case Op::FcvtWuS:
      case Op::FeqS:
      case Op::FltS:
      case Op::FleS:
      case Op::FmaddS:
      case Op::FmsubS:
      case Op::FnmaddS:
      case Op::FnmsubS:
        return true;
      default:
        return false;
    }
}

int
numSources(Op op)
{
    switch (op) {
      case Op::Lui:
      case Op::Auipc:
      case Op::Jal:
      case Op::Fence:
      case Op::Ecall:
      case Op::Ebreak:
      case Op::Invalid:
        return 0;
      case Op::Jalr:
      case Op::Lb:
      case Op::Lh:
      case Op::Lw:
      case Op::Lbu:
      case Op::Lhu:
      case Op::Flw:
      case Op::Addi:
      case Op::Slti:
      case Op::Sltiu:
      case Op::Xori:
      case Op::Ori:
      case Op::Andi:
      case Op::Slli:
      case Op::Srli:
      case Op::Srai:
      case Op::FsqrtS:
      case Op::FmvXW:
      case Op::FmvWX:
      case Op::FcvtSW:
      case Op::FcvtSWu:
      case Op::FcvtWS:
      case Op::FcvtWuS:
        return 1;
      case Op::FmaddS:
      case Op::FmsubS:
      case Op::FnmaddS:
      case Op::FnmsubS:
        return 3;
      default:
        return 2;
    }
}

bool
writesDest(Op op)
{
    switch (op) {
      case Op::Beq:
      case Op::Bne:
      case Op::Blt:
      case Op::Bge:
      case Op::Bltu:
      case Op::Bgeu:
      case Op::Sb:
      case Op::Sh:
      case Op::Sw:
      case Op::Fsw:
      case Op::Fence:
      case Op::Ecall:
      case Op::Ebreak:
      case Op::Invalid:
        return false;
      default:
        return true;
    }
}

} // namespace mesa::riscv
