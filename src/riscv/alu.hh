/**
 * @file
 * Pure functional semantics of RV32IMF compute operations, shared by
 * the emulator and the accelerator's PE model so that golden-model
 * equivalence holds by construction.
 */

#ifndef MESA_RISCV_ALU_HH
#define MESA_RISCV_ALU_HH

#include <bit>
#include <cmath>
#include <cstdint>

#include "riscv/isa.hh"
#include "util/logging.hh"

namespace mesa::riscv
{

/**
 * Evaluate a non-memory, non-control operation.
 *
 * @param a raw bits of operand 1 (integer or float)
 * @param b raw bits of operand 2
 * @param imm immediate field
 * @param pc instruction address (for auipc)
 * @return raw bits of the result
 */
inline uint32_t
aluEval(Op op, uint32_t a, uint32_t b, int32_t imm, uint32_t pc)
{
    const int32_t sa = int32_t(a);
    const int32_t sb = int32_t(b);
    const float fa = std::bit_cast<float>(a);
    const float fb = std::bit_cast<float>(b);
    auto fbits = [](float v) { return std::bit_cast<uint32_t>(v); };

    switch (op) {
      case Op::Lui: return uint32_t(imm);
      case Op::Auipc: return pc + uint32_t(imm);

      case Op::Addi: return a + uint32_t(imm);
      case Op::Slti: return sa < imm ? 1 : 0;
      case Op::Sltiu: return a < uint32_t(imm) ? 1 : 0;
      case Op::Xori: return a ^ uint32_t(imm);
      case Op::Ori: return a | uint32_t(imm);
      case Op::Andi: return a & uint32_t(imm);
      case Op::Slli: return a << (imm & 0x1F);
      case Op::Srli: return a >> (imm & 0x1F);
      case Op::Srai: return uint32_t(sa >> (imm & 0x1F));

      case Op::Add: return a + b;
      case Op::Sub: return a - b;
      case Op::Sll: return a << (b & 0x1F);
      case Op::Slt: return sa < sb ? 1 : 0;
      case Op::Sltu: return a < b ? 1 : 0;
      case Op::Xor: return a ^ b;
      case Op::Srl: return a >> (b & 0x1F);
      case Op::Sra: return uint32_t(sa >> (b & 0x1F));
      case Op::Or: return a | b;
      case Op::And: return a & b;

      case Op::Mul: return uint32_t(sa * sb);
      case Op::Mulh:
        return uint32_t((int64_t(sa) * int64_t(sb)) >> 32);
      case Op::Mulhsu:
        return uint32_t((int64_t(sa) * uint64_t(b)) >> 32);
      case Op::Mulhu:
        return uint32_t((uint64_t(a) * uint64_t(b)) >> 32);
      case Op::Div:
        if (b == 0)
            return uint32_t(-1);
        if (a == 0x80000000u && b == uint32_t(-1))
            return a;
        return uint32_t(sa / sb);
      case Op::Divu: return b == 0 ? uint32_t(-1) : a / b;
      case Op::Rem:
        if (b == 0)
            return a;
        if (a == 0x80000000u && b == uint32_t(-1))
            return 0;
        return uint32_t(sa % sb);
      case Op::Remu: return b == 0 ? a : a % b;

      case Op::FaddS: return fbits(fa + fb);
      case Op::FsubS: return fbits(fa - fb);
      case Op::FmulS: return fbits(fa * fb);
      case Op::FdivS: return fbits(fa / fb);
      case Op::FsqrtS: return fbits(std::sqrt(fa));
      case Op::FminS: return fbits(std::fmin(fa, fb));
      case Op::FmaxS: return fbits(std::fmax(fa, fb));
      case Op::FsgnjS: return (a & 0x7FFFFFFFu) | (b & 0x80000000u);
      case Op::FsgnjnS: return (a & 0x7FFFFFFFu) | (~b & 0x80000000u);
      case Op::FsgnjxS: return a ^ (b & 0x80000000u);
      case Op::FmvXW:
      case Op::FmvWX:
        return a;
      case Op::FcvtSW: return fbits(float(sa));
      case Op::FcvtSWu: return fbits(float(a));
      case Op::FcvtWS: return uint32_t(int32_t(fa));
      case Op::FcvtWuS: return uint32_t(fa);
      case Op::FeqS: return fa == fb ? 1 : 0;
      case Op::FltS: return fa < fb ? 1 : 0;
      case Op::FleS: return fa <= fb ? 1 : 0;

      default:
        panic("aluEval: op ", opName(op), " is not an ALU operation");
    }
}

/** Evaluate a branch condition on raw integer operand bits. */
inline bool
branchEval(Op op, uint32_t a, uint32_t b)
{
    const int32_t sa = int32_t(a);
    const int32_t sb = int32_t(b);
    switch (op) {
      case Op::Beq: return a == b;
      case Op::Bne: return a != b;
      case Op::Blt: return sa < sb;
      case Op::Bge: return sa >= sb;
      case Op::Bltu: return a < b;
      case Op::Bgeu: return a >= b;
      default:
        panic("branchEval: op ", opName(op), " is not a branch");
    }
}

} // namespace mesa::riscv

#endif // MESA_RISCV_ALU_HH
