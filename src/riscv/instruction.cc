#include "riscv/instruction.hh"

#include <sstream>

namespace mesa::riscv
{

std::string
Instruction::toString() const
{
    std::ostringstream os;
    os << opName(op);
    const char *ipfx = "x";
    const char *fpfx = "f";
    const char *dpfx = fpDest(op) ? fpfx : ipfx;
    const char *spfx = fpSources(op) ? fpfx : ipfx;
    switch (cls()) {
      case OpClass::Load:
        os << " " << dpfx << int(rd) << ", " << imm << "(x" << int(rs1)
           << ")";
        break;
      case OpClass::Store:
        os << " " << (op == Op::Fsw ? fpfx : ipfx) << int(rs2) << ", "
           << imm << "(x" << int(rs1) << ")";
        break;
      case OpClass::Branch:
        os << " x" << int(rs1) << ", x" << int(rs2) << ", " << imm;
        break;
      case OpClass::Jump:
        if (op == Op::Jal)
            os << " x" << int(rd) << ", " << imm;
        else
            os << " x" << int(rd) << ", " << imm << "(x" << int(rs1) << ")";
        break;
      case OpClass::System:
        break;
      default:
        os << " " << dpfx << int(rd);
        if (numSources() >= 1)
            os << ", " << spfx << int(rs1);
        if (numSources() >= 2)
            os << ", " << spfx << int(rs2);
        else if (op != Op::Lui && op != Op::Auipc && numSources() == 1 &&
                 !fpSources(op))
            os << ", " << imm;
        if (op == Op::Lui || op == Op::Auipc)
            os << ", " << imm;
        break;
    }
    return os.str();
}

} // namespace mesa::riscv
