/**
 * @file
 * Decoded instruction representation shared by the emulator, the CPU
 * timing model, and MESA's DFG builder.
 */

#ifndef MESA_RISCV_INSTRUCTION_HH
#define MESA_RISCV_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "riscv/isa.hh"

namespace mesa::riscv
{

/**
 * A decoded RV32IMF instruction. Register fields hold raw 5-bit
 * indices into the integer or FP file; fpDest(op)/fpSources(op) select
 * the file. The DFG layer folds both files into a unified 0..63 space.
 */
struct Instruction
{
    Op op = Op::Invalid;
    uint8_t rd = 0;
    uint8_t rs1 = 0;
    uint8_t rs2 = 0;
    uint8_t rs3 = 0; ///< Third source (R4-type fused ops only).
    int32_t imm = 0;
    uint32_t raw = 0;    ///< Original 32-bit encoding, if decoded.
    uint32_t pc = 0;     ///< Address this instruction was fetched from.

    bool isLoad() const { return riscv::isLoad(op); }
    bool isStore() const { return riscv::isStore(op); }
    bool isMem() const { return riscv::isMem(op); }
    bool isBranch() const { return riscv::isBranch(op); }
    bool isJump() const { return riscv::isJump(op); }
    bool isControl() const { return riscv::isControl(op); }
    bool isSystem() const { return riscv::isSystem(op); }
    bool writesDest() const { return riscv::writesDest(op); }
    int numSources() const { return riscv::numSources(op); }
    OpClass cls() const { return opClass(op); }

    /**
     * Branch or jump target address (pc-relative ops only; Jalr targets
     * are register-indirect and unknown statically).
     */
    uint32_t
    targetPc() const
    {
        return pc + static_cast<uint32_t>(imm);
    }

    /** A backward control transfer closes a loop candidate. */
    bool
    isBackwardBranch() const
    {
        return (isBranch() || op == Op::Jal) && imm < 0;
    }

    /**
     * Unified source register index for operand n (0 or 1), folding FP
     * sources into 32..63. Returns -1 when the operand does not exist
     * or is the hardwired x0.
     */
    int
    unifiedSrc(int n) const
    {
        const int ns = numSources();
        if (n >= ns)
            return -1;
        const uint8_t r = (n == 0) ? rs1 : (n == 1) ? rs2 : rs3;
        // Loads/stores always take an integer base address in rs1;
        // FP stores carry FP data in rs2.
        bool fp = fpSources(op);
        if (isMem() && n == 0)
            fp = false;
        if (!fp && r == 0)
            return -1; // x0 is constant zero, never a dependency
        return fp ? NumIntRegs + r : r;
    }

    /**
     * Unified destination register index, or -1 for instructions
     * without a destination (or rd == x0).
     */
    int
    unifiedDest() const
    {
        if (!writesDest())
            return -1;
        if (fpDest(op))
            return NumIntRegs + rd;
        return rd == 0 ? -1 : rd;
    }

    /** Disassemble to "op rd, rs1, rs2/imm" text. */
    std::string toString() const;
};

} // namespace mesa::riscv

#endif // MESA_RISCV_INSTRUCTION_HH
