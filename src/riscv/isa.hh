/**
 * @file
 * RISC-V RV32IM(F) operation definitions: the canonical operation
 * enumeration, functional-unit operation classes, and predicates used
 * across the decoder, emulator, DFG builder, and accelerator model.
 */

#ifndef MESA_RISCV_ISA_HH
#define MESA_RISCV_ISA_HH

#include <cstdint>
#include <string>

namespace mesa::riscv
{

/** Canonical operation identifiers for the supported RV32IMF subset. */
enum class Op : uint8_t
{
    Invalid = 0,
    // RV32I upper-immediate / jumps
    Lui, Auipc, Jal, Jalr,
    // Branches
    Beq, Bne, Blt, Bge, Bltu, Bgeu,
    // Loads / stores
    Lb, Lh, Lw, Lbu, Lhu, Sb, Sh, Sw,
    // Integer immediate ALU
    Addi, Slti, Sltiu, Xori, Ori, Andi, Slli, Srli, Srai,
    // Integer register ALU
    Add, Sub, Sll, Slt, Sltu, Xor, Srl, Sra, Or, And,
    // System
    Fence, Ecall, Ebreak,
    // RV32M
    Mul, Mulh, Mulhsu, Mulhu, Div, Divu, Rem, Remu,
    // RV32F loads/stores
    Flw, Fsw,
    // RV32F compute
    FaddS, FsubS, FmulS, FdivS, FsqrtS, FminS, FmaxS,
    FsgnjS, FsgnjnS, FsgnjxS,
    FmvXW, FmvWX, FcvtSW, FcvtSWu, FcvtWS, FcvtWuS,
    FeqS, FltS, FleS,
    // RV32F fused multiply-add (R4-type, three source operands; more
    // predecessors than MESA's two-input DFG model supports, so C2
    // disqualifies loops containing them)
    FmaddS, FmsubS, FnmaddS, FnmsubS,
    NumOps
};

/** Functional-unit classes; each PE/FU supports a subset of these. */
enum class OpClass : uint8_t
{
    Nop = 0,
    IntAlu,
    IntMul,
    IntDiv,
    FpAlu,
    FpMul,
    FpDiv,
    Load,
    Store,
    Branch,
    Jump,
    System,
    NumClasses
};

/** Map an operation to the functional-unit class that executes it. */
OpClass opClass(Op op);

/** Human-readable mnemonic for an operation. */
const char *opName(Op op);

/** Human-readable name for an operation class. */
const char *opClassName(OpClass cls);

/** True if the op reads/writes the FP register file for rd. */
bool fpDest(Op op);

/** True if the op reads FP registers as sources. */
bool fpSources(Op op);

/** Number of register source operands (0, 1, or 2). */
int numSources(Op op);

/** True if the op writes a destination register. */
bool writesDest(Op op);

inline bool
isLoad(Op op)
{
    return opClass(op) == OpClass::Load;
}

inline bool
isStore(Op op)
{
    return opClass(op) == OpClass::Store;
}

inline bool
isBranch(Op op)
{
    return opClass(op) == OpClass::Branch;
}

inline bool
isJump(Op op)
{
    return opClass(op) == OpClass::Jump;
}

inline bool
isMem(Op op)
{
    return isLoad(op) || isStore(op);
}

inline bool
isSystem(Op op)
{
    return opClass(op) == OpClass::System;
}

inline bool
isControl(Op op)
{
    return isBranch(op) || isJump(op);
}

/**
 * Register identifiers. Integer registers are 0..31 (x0..x31); FP
 * registers are folded into a unified 0..63 space as 32..63 by the
 * DFG rename stage.
 */
constexpr int NumIntRegs = 32;
constexpr int NumFpRegs = 32;
constexpr int NumUnifiedRegs = NumIntRegs + NumFpRegs;

/** ABI register aliases used by the assembler and disassembly. */
namespace reg
{
constexpr uint8_t zero = 0, ra = 1, sp = 2, gp = 3, tp = 4;
constexpr uint8_t t0 = 5, t1 = 6, t2 = 7;
constexpr uint8_t s0 = 8, s1 = 9;
constexpr uint8_t a0 = 10, a1 = 11, a2 = 12, a3 = 13, a4 = 14, a5 = 15,
                  a6 = 16, a7 = 17;
constexpr uint8_t s2 = 18, s3 = 19, s4 = 20, s5 = 21, s6 = 22, s7 = 23,
                  s8 = 24, s9 = 25, s10 = 26, s11 = 27;
constexpr uint8_t t3 = 28, t4 = 29, t5 = 30, t6 = 31;
// FP registers (raw 0..31 indices into the FP file).
constexpr uint8_t ft0 = 0, ft1 = 1, ft2 = 2, ft3 = 3, ft4 = 4, ft5 = 5,
                  ft6 = 6, ft7 = 7;
constexpr uint8_t fs0 = 8, fs1 = 9;
constexpr uint8_t fa0 = 10, fa1 = 11, fa2 = 12, fa3 = 13, fa4 = 14,
                  fa5 = 15, fa6 = 16, fa7 = 17;
} // namespace reg

} // namespace mesa::riscv

#endif // MESA_RISCV_ISA_HH
