/**
 * @file
 * RV32IMF binary instruction encoding and decoding. The assembler
 * emits real 32-bit RISC-V machine words and all downstream consumers
 * (emulator, trace cache, MESA's LDFG builder) decode them again, so
 * the pipeline exercises a genuine binary-translation path.
 */

#ifndef MESA_RISCV_ENCODING_HH
#define MESA_RISCV_ENCODING_HH

#include <cstdint>

#include "riscv/instruction.hh"

namespace mesa::riscv
{

/** Encode a decoded instruction back to its 32-bit machine word. */
uint32_t encode(const Instruction &inst);

/**
 * Decode a 32-bit machine word fetched from address pc. Unrecognized
 * encodings yield Op::Invalid (treated as unsupported by MESA's
 * control check C2).
 */
Instruction decode(uint32_t word, uint32_t pc);

} // namespace mesa::riscv

#endif // MESA_RISCV_ENCODING_HH
