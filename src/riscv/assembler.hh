/**
 * @file
 * Programmatic RV32IMF assembler with label support. Workload kernels
 * are written against this API and assembled to real machine words,
 * which the emulator and MESA's binary translation path then decode.
 */

#ifndef MESA_RISCV_ASSEMBLER_HH
#define MESA_RISCV_ASSEMBLER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "riscv/instruction.hh"

namespace mesa::riscv
{

/** An assembled program: machine words at a base address. */
struct Program
{
    uint32_t base_pc = 0;
    std::vector<uint32_t> words;
    std::map<std::string, uint32_t> labels;

    uint32_t endPc() const { return base_pc + 4 * uint32_t(words.size()); }

    uint32_t labelPc(const std::string &name) const;

    /** Decode all words back to instructions (for inspection/tests). */
    std::vector<Instruction> decodeAll() const;
};

/**
 * Two-pass assembler: instructions are recorded with optional label
 * references; assemble() resolves labels to pc-relative immediates and
 * encodes machine words.
 */
class Assembler
{
  public:
    explicit Assembler(uint32_t base_pc = 0x1000) : base_pc_(base_pc) {}

    /** Define a label at the current position. */
    void label(const std::string &name);

    // --- RV32I ---
    void lui(uint8_t rd, int32_t imm20);
    void auipc(uint8_t rd, int32_t imm20);
    void jal(uint8_t rd, const std::string &target);
    void jalr(uint8_t rd, uint8_t rs1, int32_t imm);

    void beq(uint8_t rs1, uint8_t rs2, const std::string &target);
    void bne(uint8_t rs1, uint8_t rs2, const std::string &target);
    void blt(uint8_t rs1, uint8_t rs2, const std::string &target);
    void bge(uint8_t rs1, uint8_t rs2, const std::string &target);
    void bltu(uint8_t rs1, uint8_t rs2, const std::string &target);
    void bgeu(uint8_t rs1, uint8_t rs2, const std::string &target);

    void lb(uint8_t rd, int32_t off, uint8_t rs1);
    void lh(uint8_t rd, int32_t off, uint8_t rs1);
    void lw(uint8_t rd, int32_t off, uint8_t rs1);
    void lbu(uint8_t rd, int32_t off, uint8_t rs1);
    void lhu(uint8_t rd, int32_t off, uint8_t rs1);
    void sb(uint8_t rs2, int32_t off, uint8_t rs1);
    void sh(uint8_t rs2, int32_t off, uint8_t rs1);
    void sw(uint8_t rs2, int32_t off, uint8_t rs1);

    void addi(uint8_t rd, uint8_t rs1, int32_t imm);
    void slti(uint8_t rd, uint8_t rs1, int32_t imm);
    void sltiu(uint8_t rd, uint8_t rs1, int32_t imm);
    void xori(uint8_t rd, uint8_t rs1, int32_t imm);
    void ori(uint8_t rd, uint8_t rs1, int32_t imm);
    void andi(uint8_t rd, uint8_t rs1, int32_t imm);
    void slli(uint8_t rd, uint8_t rs1, int32_t shamt);
    void srli(uint8_t rd, uint8_t rs1, int32_t shamt);
    void srai(uint8_t rd, uint8_t rs1, int32_t shamt);

    void add(uint8_t rd, uint8_t rs1, uint8_t rs2);
    void sub(uint8_t rd, uint8_t rs1, uint8_t rs2);
    void sll(uint8_t rd, uint8_t rs1, uint8_t rs2);
    void slt(uint8_t rd, uint8_t rs1, uint8_t rs2);
    void sltu(uint8_t rd, uint8_t rs1, uint8_t rs2);
    void xor_(uint8_t rd, uint8_t rs1, uint8_t rs2);
    void srl(uint8_t rd, uint8_t rs1, uint8_t rs2);
    void sra(uint8_t rd, uint8_t rs1, uint8_t rs2);
    void or_(uint8_t rd, uint8_t rs1, uint8_t rs2);
    void and_(uint8_t rd, uint8_t rs1, uint8_t rs2);

    void fence();
    void ecall();
    void ebreak();

    // --- RV32M ---
    void mul(uint8_t rd, uint8_t rs1, uint8_t rs2);
    void mulh(uint8_t rd, uint8_t rs1, uint8_t rs2);
    void mulhsu(uint8_t rd, uint8_t rs1, uint8_t rs2);
    void mulhu(uint8_t rd, uint8_t rs1, uint8_t rs2);
    void div(uint8_t rd, uint8_t rs1, uint8_t rs2);
    void divu(uint8_t rd, uint8_t rs1, uint8_t rs2);
    void rem(uint8_t rd, uint8_t rs1, uint8_t rs2);
    void remu(uint8_t rd, uint8_t rs1, uint8_t rs2);

    // --- RV32F ---
    void flw(uint8_t frd, int32_t off, uint8_t rs1);
    void fsw(uint8_t frs2, int32_t off, uint8_t rs1);
    void fadd_s(uint8_t frd, uint8_t frs1, uint8_t frs2);
    void fsub_s(uint8_t frd, uint8_t frs1, uint8_t frs2);
    void fmul_s(uint8_t frd, uint8_t frs1, uint8_t frs2);
    void fdiv_s(uint8_t frd, uint8_t frs1, uint8_t frs2);
    void fsqrt_s(uint8_t frd, uint8_t frs1);
    void fmin_s(uint8_t frd, uint8_t frs1, uint8_t frs2);
    void fmax_s(uint8_t frd, uint8_t frs1, uint8_t frs2);
    void fsgnj_s(uint8_t frd, uint8_t frs1, uint8_t frs2);
    void fmv_x_w(uint8_t rd, uint8_t frs1);
    void fmv_w_x(uint8_t frd, uint8_t rs1);
    void fcvt_s_w(uint8_t frd, uint8_t rs1);
    void fcvt_w_s(uint8_t rd, uint8_t frs1);
    void fmadd_s(uint8_t frd, uint8_t frs1, uint8_t frs2, uint8_t frs3);
    void fmsub_s(uint8_t frd, uint8_t frs1, uint8_t frs2, uint8_t frs3);
    void fnmadd_s(uint8_t frd, uint8_t frs1, uint8_t frs2,
                  uint8_t frs3);
    void fnmsub_s(uint8_t frd, uint8_t frs1, uint8_t frs2,
                  uint8_t frs3);
    void feq_s(uint8_t rd, uint8_t frs1, uint8_t frs2);
    void flt_s(uint8_t rd, uint8_t frs1, uint8_t frs2);
    void fle_s(uint8_t rd, uint8_t frs1, uint8_t frs2);

    // --- Pseudo-instructions ---
    /** Load a 32-bit constant (expands to lui+addi or addi). */
    void li(uint8_t rd, int32_t value);
    void mv(uint8_t rd, uint8_t rs1) { addi(rd, rs1, 0); }
    void nop() { addi(0, 0, 0); }
    void j(const std::string &target) { jal(0, target); }

    /** Current pc of the next emitted instruction. */
    uint32_t here() const;

    /** Number of instructions emitted so far. */
    size_t size() const { return entries_.size(); }

    /** Resolve labels and produce machine words. */
    Program assemble() const;

  private:
    struct Entry
    {
        Instruction inst;
        std::string label_ref; ///< Unresolved branch/jump target.
    };

    void emit(Op op, uint8_t rd, uint8_t rs1, uint8_t rs2, int32_t imm,
              const std::string &label_ref = "");

    uint32_t base_pc_;
    std::vector<Entry> entries_;
    std::map<std::string, uint32_t> labels_; ///< name -> instr index
};

} // namespace mesa::riscv

#endif // MESA_RISCV_ASSEMBLER_HH
