/**
 * @file
 * Fault-injection campaign driver: inject seeded faults into the
 * spatial fabric across the workload suite and report the
 * detection/recovery coverage table. Exits non-zero unless the
 * campaign is clean (zero silent corruptions, zero failed recoveries,
 * every permanent-fault remap off the quarantined PEs), which is how
 * CI uses it.
 *
 *   ./build/examples/mesa_faultsim
 *   ./build/examples/mesa_faultsim --seed 7 --injections 64
 *   ./build/examples/mesa_faultsim --kernel nn --kernel srad
 *   ./build/examples/mesa_faultsim --no-checked      # watch SDC appear
 *   ./build/examples/mesa_faultsim --json
 */

#include <cstring>
#include <iostream>

#include "fault/campaign.hh"
#include "util/logging.hh"
#include "util/parallel.hh"

using namespace mesa;

namespace
{

void
usage()
{
    std::cout <<
        "mesa_faultsim — seeded fault-injection campaigns\n"
        "  --seed <n>        campaign seed (default 1)\n"
        "  --injections <n>  injections per kernel (default 32)\n"
        "  --kernel <name>   restrict to a kernel (repeatable)\n"
        "  --scale <n>       kernel iteration count (default 128)\n"
        "  --accel <cfg>     M-64 | M-128 | M-512 (default M-128)\n"
        "  --no-checked      disable golden-model checked mode\n"
        "  --watchdog <n>    per-offload cycle budget (default 200000)\n"
        "  --jobs <n>        worker threads for the injection loop\n"
        "                    (default = hardware concurrency; results\n"
        "                    are byte-identical at any job count)\n"
        "  --log-level <lvl> error | warn | info | debug\n"
        "  --json            machine-readable report\n";
}

} // namespace

int
main(int argc, char **argv)
{
    fault::CampaignParams params;
    params.jobs = defaultJobs(); // CLI default: use every core
    std::string accel_name = "M-128";
    bool json = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage();
                exit(1);
            }
            return argv[++i];
        };
        if (arg == "--seed") {
            params.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--injections") {
            params.injections_per_kernel =
                int(std::strtol(next(), nullptr, 10));
        } else if (arg == "--kernel") {
            params.kernels.push_back(next());
        } else if (arg == "--scale") {
            params.scale.n = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--accel") {
            accel_name = next();
        } else if (arg == "--no-checked") {
            params.checked = false;
        } else if (arg == "--checked") {
            params.checked = true;
        } else if (arg == "--watchdog") {
            params.watchdog_cycles = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--jobs") {
            params.jobs =
                resolveJobs(int(std::strtol(next(), nullptr, 10)));
        } else if (arg == "--log-level") {
            const std::string name = next();
            auto level = logLevelByName(name);
            if (!level)
                fatal("unknown log level ", name);
            Logger::global().setLevel(*level);
        } else if (arg == "--json") {
            json = true;
        } else {
            usage();
            return arg == "--help" ? 0 : 1;
        }
    }

    params.accel = accel::AccelParams::byName(accel_name);

    const fault::CampaignResult result = fault::runCampaign(params);

    if (json)
        fault::writeCampaignJson(result, std::cout);
    else
        fault::printCampaignTable(result, std::cout);

    return result.clean() ? 0 : 1;
}
