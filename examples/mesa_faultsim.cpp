/**
 * @file
 * Fault-injection campaign driver: inject seeded faults into the
 * spatial fabric across the workload suite and report the
 * detection/recovery coverage table. Exits non-zero unless the
 * campaign is clean (zero silent corruptions, zero failed recoveries,
 * every permanent-fault remap off the quarantined PEs), which is how
 * CI uses it.
 *
 *   ./build/examples/mesa_faultsim
 *   ./build/examples/mesa_faultsim --seed 7 --injections 64
 *   ./build/examples/mesa_faultsim --kernel nn --kernel srad
 *   ./build/examples/mesa_faultsim --no-checked      # watch SDC appear
 *   ./build/examples/mesa_faultsim --json
 */

#include <chrono>
#include <cstring>
#include <iostream>

#include "fault/campaign.hh"
#include "mesa/translation_store.hh"
#include "prof/history.hh"
#include "util/logging.hh"
#include "util/parallel.hh"

using namespace mesa;

namespace
{

void
usage()
{
    std::cout <<
        "mesa_faultsim — seeded fault-injection campaigns\n"
        "  --seed <n>        campaign seed (default 1)\n"
        "  --injections <n>  injections per kernel (default 32)\n"
        "  --kernel <name>   restrict to a kernel (repeatable)\n"
        "  --scale <n>       kernel iteration count (default 128)\n"
        "  --accel <cfg>     M-64 | M-128 | M-512 (default M-128)\n"
        "  --no-checked      disable golden-model checked mode\n"
        "  --watchdog <n>    per-offload cycle budget (default 200000)\n"
        "  --jobs <n>        worker threads for the injection loop\n"
        "                    (default = hardware concurrency; results\n"
        "                    are byte-identical at any job count)\n"
        "  --log-level <lvl> error | warn | info | debug\n"
        "  --json            machine-readable report\n"
        "  --migrate         drain-and-relocate: a watchdog trip\n"
        "                    live-migrates the checkpointed offload\n"
        "                    onto the degraded fabric (blocked PEs\n"
        "                    routed around) before any CPU fallback;\n"
        "                    the report adds migration cost vs\n"
        "                    re-translation cost per kernel\n"
        "  --q-max-strikes <n>  quarantine strike cap (default 16)\n"
        "  --q-forgive <n>   clean runs to decay one strike\n"
        "                    (default 2)\n"
        "  --certify         certificate-gated checked mode: run the\n"
        "                    campaign twice (baseline, then with\n"
        "                    abstract-interpretation certificates\n"
        "                    skipping proven-safe snapshot compares)\n"
        "                    and append the measured speedup to the\n"
        "                    perf history\n"
        "  --history <path>  perf-history JSONL for --certify\n"
        "                    (default BENCH_history.jsonl)\n"
        "  --no-history      skip the history append\n"
        "  --cache-dir <dir> persistent translation cache shared by\n"
        "                    all campaign shards (bit-identical\n"
        "                    results with or without it)\n";
}

/** Wall-clock a campaign run in milliseconds. */
double
timedCampaign(const fault::CampaignParams &params,
              fault::CampaignResult &result)
{
    const auto t0 = std::chrono::steady_clock::now();
    result = fault::runCampaign(params);
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

} // namespace

int
main(int argc, char **argv)
{
    fault::CampaignParams params;
    params.jobs = defaultJobs(); // CLI default: use every core
    std::string accel_name = "M-128";
    bool json = false;
    bool certify = false;
    bool append_history = true;
    std::string history_path = "BENCH_history.jsonl";

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage();
                exit(1);
            }
            return argv[++i];
        };
        if (arg == "--seed") {
            params.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--injections") {
            params.injections_per_kernel =
                int(std::strtol(next(), nullptr, 10));
        } else if (arg == "--kernel") {
            params.kernels.push_back(next());
        } else if (arg == "--scale") {
            params.scale.n = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--accel") {
            accel_name = next();
        } else if (arg == "--no-checked") {
            params.checked = false;
        } else if (arg == "--checked") {
            params.checked = true;
        } else if (arg == "--watchdog") {
            params.watchdog_cycles = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--jobs") {
            params.jobs =
                resolveJobs(int(std::strtol(next(), nullptr, 10)));
        } else if (arg == "--log-level") {
            const std::string name = next();
            auto level = logLevelByName(name);
            if (!level)
                fatal("unknown log level ", name);
            Logger::global().setLevel(*level);
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--migrate") {
            params.migrate = true;
        } else if (arg == "--q-max-strikes") {
            params.quarantine.max_strikes =
                int(std::strtol(next(), nullptr, 10));
        } else if (arg == "--q-forgive") {
            params.quarantine.forgive_successes =
                int(std::strtol(next(), nullptr, 10));
        } else if (arg == "--certify") {
            certify = true;
        } else if (arg == "--history") {
            history_path = next();
        } else if (arg == "--no-history") {
            append_history = false;
        } else if (arg == "--cache-dir") {
            core::TranslationStore::global().setDirectory(next());
        } else {
            usage();
            return arg == "--help" ? 0 : 1;
        }
    }

    params.accel = accel::AccelParams::byName(accel_name);

    if (!certify) {
        const fault::CampaignResult result = fault::runCampaign(params);
        if (json)
            fault::writeCampaignJson(result, std::cout);
        else
            fault::printCampaignTable(result, std::cout);
        return result.clean() ? 0 : 1;
    }

    // Certificate-gated mode: measure the same campaign with and
    // without certificate gating. Both must be CLEAN — the snapshot
    // skip is only admissible if it costs zero detection quality on
    // the silent/corrupted gate.
    fault::CampaignParams baseline = params;
    baseline.certify = false;
    fault::CampaignResult base_result;
    const double base_ms = timedCampaign(baseline, base_result);

    fault::CampaignParams certified = params;
    certified.certify = true;
    fault::CampaignResult cert_result;
    const double cert_ms = timedCampaign(certified, cert_result);

    const double speedup = cert_ms > 0.0 ? base_ms / cert_ms : 0.0;
    if (json) {
        fault::writeCampaignJson(cert_result, std::cout);
    } else {
        fault::printCampaignTable(cert_result, std::cout);
        std::cout << "certify timing: baseline " << base_ms
                  << " ms, certified " << cert_ms << " ms, speedup "
                  << speedup << "x\n";
    }

    if (append_history) {
        prof::HistoryRecord rec =
            prof::makeHistoryRecord("mesa_faultsim");
        rec.metrics["baseline_ms"] = base_ms;
        rec.metrics["certified_ms"] = cert_ms;
        rec.metrics["certify_speedup"] = speedup;
        rec.metrics["injections"] =
            double(cert_result.totalInjections());
        rec.metrics["certified_offloads"] =
            double(cert_result.totalCertified());
        rec.metrics["snapshot_skips"] =
            double(cert_result.totalSnapshotSkips());
        rec.metrics["silent"] = double(cert_result.totalSilent());
        rec.metrics["corrupted"] = double(cert_result.totalCorrupted());
        if (!prof::appendHistory(history_path, rec))
            logWarn("fault", "cannot append history to ", history_path);
    }

    return base_result.clean() && cert_result.clean() ? 0 : 1;
}
