/**
 * @file
 * Cycle-attribution profiler CLI: runs suite kernels on a MESA-enabled
 * system with the prof/ pipeline attached and reports where every
 * offload cycle went — the taxonomy table, the machine JSON report,
 * spatial heatmaps, Chrome-trace counter tracks, and a Prometheus
 * exposition — plus the perf-history append and baseline regression
 * diff.
 *
 *   ./build/examples/mesa_prof --all --jobs 8
 *   ./build/examples/mesa_prof --kernel srad --heatmap
 *   ./build/examples/mesa_prof --all --json --out prof.json
 *   ./build/examples/mesa_prof --all --baseline baselines/mesa_prof_baseline.json
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "prof/history.hh"
#include "prof/report.hh"
#include "prof/runner.hh"
#include "util/json.hh"
#include "util/json_parse.hh"
#include "util/logging.hh"
#include "util/parallel.hh"
#include "util/stats_registry.hh"
#include "util/table.hh"
#include "workloads/kernel.hh"
#include "workloads/suite.hh"

using namespace mesa;

namespace
{

void
usage()
{
    std::cout <<
        "mesa_prof — offload cycle-attribution profiler\n"
        "  --kernel <name>     profile one kernel (repeatable)\n"
        "  --all               profile the whole suite (default)\n"
        "  --accel <cfg>       M-64 | M-128 | M-512 (default M-128)\n"
        "  --scale <n>         iteration count (default 1024)\n"
        "  --jobs <n>          worker shards (default: hw threads)\n"
        "  --json              print the JSON report to stdout\n"
        "  --out <file>        write the JSON report to a file\n"
        "  --heatmap           ASCII per-PE heatmaps + link table\n"
        "  --trace-out <file>  Chrome-trace counter tracks\n"
        "  --metrics-out <file> Prometheus text exposition\n"
        "  --baseline <file>   diff against a saved JSON report;\n"
        "                      exit 1 on any metric moving beyond\n"
        "                      the tolerance\n"
        "  --tolerance <f>     relative baseline tolerance (0.05)\n"
        "  --history <file>    perf-history JSONL path\n"
        "                      (default BENCH_history.jsonl)\n"
        "  --no-history        skip the history append\n"
        "  --log-level <lvl>   error | warn | info | debug\n"
        "  --list              list available kernels\n";
}

/**
 * Flatten a saved mesa-prof-1 JSON report into the same key space
 * flattenProfile() produces, so a baseline diff is an exact
 * StatsDiff over "kernel.metric" pairs.
 */
std::map<std::string, double>
flattenBaseline(const JsonValue &doc)
{
    std::map<std::string, double> flat;
    auto put = [&flat](const std::string &prefix, const JsonValue &obj) {
        if (const JsonValue *phases = obj.find("phases");
            phases && phases->isObject()) {
            for (const auto &[name, v] : phases->members)
                flat[prefix + "." + name] = v.asNumber();
        }
        if (const JsonValue *t = obj.find("total_offload_cycles"))
            flat[prefix + ".total_offload_cycles"] = t->asNumber();
    };
    if (const JsonValue *kernels = doc.find("kernels");
        kernels && kernels->isArray()) {
        for (const JsonValue &k : kernels->items) {
            const JsonValue *name = k.find("name");
            if (!name)
                continue;
            put(name->asString(), k);
            if (const JsonValue *ctx = k.find("context"))
                if (const JsonValue *t = ctx->find("total_cycles"))
                    flat[name->asString() + ".total_cycles"] =
                        t->asNumber();
        }
    }
    if (const JsonValue *suite = doc.find("suite"))
        put("suite", *suite);
    return flat;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> kernel_names;
    std::string accel_name = "M-128";
    std::string out_path, trace_out, metrics_out, baseline_path;
    std::string history_path = "BENCH_history.jsonl";
    uint64_t scale = 1024;
    int jobs = defaultJobs();
    double tolerance = 0.05;
    bool json = false;
    bool heatmap = false;
    bool all = false;
    bool no_history = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage();
                exit(1);
            }
            return argv[++i];
        };
        if (arg == "--kernel") {
            kernel_names.push_back(next());
        } else if (arg == "--all") {
            all = true;
        } else if (arg == "--accel") {
            accel_name = next();
        } else if (arg == "--scale") {
            scale = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--jobs") {
            jobs = resolveJobs(int(std::strtol(next(), nullptr, 10)));
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--heatmap") {
            heatmap = true;
        } else if (arg == "--trace-out") {
            trace_out = next();
        } else if (arg == "--metrics-out") {
            metrics_out = next();
        } else if (arg == "--baseline") {
            baseline_path = next();
        } else if (arg == "--tolerance") {
            tolerance = std::strtod(next(), nullptr);
        } else if (arg == "--history") {
            history_path = next();
        } else if (arg == "--no-history") {
            no_history = true;
        } else if (arg == "--log-level") {
            const std::string name = next();
            auto level = logLevelByName(name);
            if (!level)
                fatal("unknown log level ", name);
            Logger::global().setLevel(*level);
        } else if (arg == "--list") {
            workloads::listKernels(std::cout);
            return 0;
        } else {
            usage();
            return arg == "--help" ? 0 : 1;
        }
    }

    core::MesaParams params;
    params.accel = accel::AccelParams::byName(accel_name);

    std::vector<workloads::Kernel> kernels = workloads::selectKernels(
        all ? std::vector<std::string>{} : kernel_names, {scale});

    const prof::SuiteProfile suite =
        prof::profileSuite(kernels, params, jobs);
    const prof::ReportMeta meta{params.accel.name, scale};

    JsonWriter report;
    prof::writeProfileJson(suite, meta, report);

    if (json) {
        std::cout << report.str() << "\n";
    } else {
        prof::printProfileTable(suite, std::cout);
        if (heatmap)
            for (const auto &kp : suite.kernels)
                prof::printHeatmaps(kp, std::cout);
    }
    if (!out_path.empty()) {
        std::ofstream f(out_path);
        if (!f)
            fatal("cannot open report output file ", out_path);
        f << report.str() << "\n";
    }
    if (!trace_out.empty()) {
        std::ofstream f(trace_out);
        if (!f)
            fatal("cannot open trace output file ", trace_out);
        prof::writeCounterTrace(suite, f);
    }
    if (!metrics_out.empty()) {
        std::ofstream f(metrics_out);
        if (!f)
            fatal("cannot open metrics output file ", metrics_out);
        prof::writePrometheus(suite, meta, f);
    }

    if (!no_history) {
        prof::HistoryRecord rec = prof::makeHistoryRecord("mesa_prof");
        rec.metrics = prof::flattenProfile(suite);
        if (!prof::appendHistory(history_path, rec))
            logWarn("prof", "cannot append history to ", history_path);
    }

    int exit_code = 0;
    if (!suite.invariant_ok) {
        std::cerr << "ATTRIBUTION INVARIANT VIOLATED: taxonomy sum != "
                     "measured offload cycles\n";
        exit_code = 1;
    }

    if (!baseline_path.empty()) {
        std::ifstream f(baseline_path);
        if (!f)
            fatal("cannot open baseline file ", baseline_path);
        std::string text((std::istreambuf_iterator<char>(f)),
                         std::istreambuf_iterator<char>());
        auto doc = parseJson(text);
        if (!doc || !doc->isObject())
            fatal("baseline is not a JSON object: ", baseline_path);

        const auto before = flattenBaseline(*doc);
        const auto after = prof::flattenProfile(suite);
        const StatsDiff diff =
            diffStatValues(before, after, tolerance);
        if (diff.empty()) {
            if (!json)
                std::cout << "baseline: " << before.size()
                          << " metrics within "
                          << TextTable::num(100.0 * tolerance, 1)
                          << "% of " << baseline_path << "\n";
        } else {
            std::cerr << "baseline drift vs " << baseline_path
                      << " (tolerance "
                      << TextTable::num(100.0 * tolerance, 1)
                      << "%):\n";
            for (const auto &c : diff.changed) {
                std::cerr << "  " << c.path << ": " << c.before
                          << " -> " << c.after << " ("
                          << TextTable::num(100.0 * c.relDelta(), 1)
                          << "%)\n";
            }
            for (const auto &p : diff.added)
                std::cerr << "  + " << p << " (new metric)\n";
            for (const auto &p : diff.removed)
                std::cerr << "  - " << p << " (metric vanished)\n";
            exit_code = 1;
        }
    }
    return exit_code;
}
