/**
 * @file
 * Offload-as-a-service front end: drives a pool of fabric backends
 * with deterministic synthetic tenant traffic through the admission
 * queue, then reports per-QoS SLO attainment, tail latency, and the
 * queue-wait/service split.
 *
 *   ./build/examples/mesa_serve --backends 2 --tenants 64
 *   ./build/examples/mesa_serve --profile bursty --policy qos-strict
 *   ./build/examples/mesa_serve --profile closed-loop --digest
 *   ./build/examples/mesa_serve --json --out serve.json
 *
 * SIGINT/SIGTERM trigger a graceful drain: admission closes (pending
 * arrivals are shed as "draining"), in-flight and queued jobs run to
 * completion, and every report/metrics/history output is still
 * written with exact accounting.
 */

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "mesa/translation_store.hh"
#include "prof/history.hh"
#include "service/service.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/stats_registry.hh"
#include "util/table.hh"
#include "workloads/suite.hh"

using namespace mesa;

namespace
{

std::atomic<bool> g_stop{false};

void
onSignal(int)
{
    // First signal: drain gracefully. A second one kills us the
    // hard way (default disposition restored below).
    g_stop.store(true, std::memory_order_relaxed);
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
}

void
usage()
{
    std::cout <<
        "mesa_serve — offload-as-a-service front end\n"
        "  --backends <n>       fabric instances in the pool (2)\n"
        "  --ways <n>           spatial ways per backend; >1\n"
        "                       co-schedules same-kernel batches (1)\n"
        "  --policy <p>         least-loaded | kernel-affinity |\n"
        "                       qos-strict (least-loaded)\n"
        "  --profile <p>        poisson | bursty | diurnal |\n"
        "                       closed-loop (poisson)\n"
        "  --tenants <n>        tenant sessions (64)\n"
        "  --arrival <cyc>      mean inter-arrival per tenant (50000)\n"
        "  --duration <cyc>     open-loop arrival horizon (2000000)\n"
        "  --jobs-per-tenant <n> closed-loop session length (4)\n"
        "  --think <cyc>        closed-loop mean think time (10000)\n"
        "  --depth <n>          admission queue depth (256)\n"
        "  --tenant-inflight <n> per-tenant in-flight cap (8)\n"
        "  --certify-admission  statically certify kernel footprints\n"
        "                       and shed provably-out-of-region jobs\n"
        "                       at admission (reject reason\n"
        "                       out_of_region)\n"
        "  --kernel <name>      restrict the roster (repeatable)\n"
        "  --accel <cfg>        M-64 | M-128 | M-512 (M-128)\n"
        "  --seed <n>           traffic seed (1)\n"
        "  --json               print the full JSON report\n"
        "  --out <file>         write the JSON report to a file\n"
        "  --digest             print the closed-loop functional\n"
        "                       digest (backend-count invariant)\n"
        "  --metrics-out <file> Prometheus text exposition\n"
        "  --stats-json <file>  stats-registry JSON dump\n"
        "  --history <file>     perf-history JSONL path\n"
        "                       (default BENCH_history.jsonl)\n"
        "  --no-history         skip the history append\n"
        "  --cache-dir <dir>    persistent translation cache: the\n"
        "                       config cache survives service\n"
        "                       restarts via warm starts from disk\n"
        "  --log-level <lvl>    error | warn | info | debug\n"
        "  --list               list available kernels\n";
}

} // namespace

int
main(int argc, char **argv)
{
    service::ServiceParams params;
    std::string out_path, metrics_out, stats_json;
    std::string history_path = "BENCH_history.jsonl";
    bool json = false;
    bool digest = false;
    bool no_history = false;
    bool certify_admission = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage();
                exit(1);
            }
            return argv[++i];
        };
        if (arg == "--backends") {
            params.backends = int(std::strtol(next(), nullptr, 10));
        } else if (arg == "--ways") {
            params.backend.sched_ways =
                int(std::strtol(next(), nullptr, 10));
        } else if (arg == "--policy") {
            params.policy = service::dispatchPolicyByName(next());
        } else if (arg == "--profile") {
            params.traffic.profile =
                service::trafficProfileByName(next());
        } else if (arg == "--tenants") {
            params.traffic.tenants =
                int(std::strtol(next(), nullptr, 10));
        } else if (arg == "--arrival") {
            params.traffic.mean_interarrival =
                std::strtod(next(), nullptr);
        } else if (arg == "--duration") {
            params.traffic.horizon_cycles =
                std::strtoull(next(), nullptr, 10);
        } else if (arg == "--jobs-per-tenant") {
            params.traffic.jobs_per_tenant =
                std::strtoull(next(), nullptr, 10);
        } else if (arg == "--think") {
            params.traffic.think_cycles = std::strtod(next(), nullptr);
        } else if (arg == "--depth") {
            params.admission.max_depth =
                std::strtoull(next(), nullptr, 10);
        } else if (arg == "--tenant-inflight") {
            params.admission.max_tenant_inflight =
                std::strtoull(next(), nullptr, 10);
        } else if (arg == "--kernel") {
            params.traffic.kernels.push_back(next());
        } else if (arg == "--accel") {
            params.backend.mesa.accel =
                accel::AccelParams::byName(next());
        } else if (arg == "--seed") {
            params.traffic.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--certify-admission") {
            certify_admission = true;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--digest") {
            digest = true;
        } else if (arg == "--metrics-out") {
            metrics_out = next();
        } else if (arg == "--stats-json") {
            stats_json = next();
        } else if (arg == "--history") {
            history_path = next();
        } else if (arg == "--no-history") {
            no_history = true;
        } else if (arg == "--cache-dir") {
            core::TranslationStore::global().setDirectory(next());
        } else if (arg == "--log-level") {
            const std::string name = next();
            auto level = logLevelByName(name);
            if (!level)
                fatal("unknown log level ", name);
            Logger::global().setLevel(*level);
        } else if (arg == "--list") {
            workloads::listKernels(std::cout);
            return 0;
        } else {
            usage();
            return arg == "--help" ? 0 : 1;
        }
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    params.stop = &g_stop;
    if (certify_admission)
        params.admission.out_of_region =
            service::makeCertificateGate(params.backend.mesa.accel);
    if (!json) {
        params.progress_every = 256;
        params.progress = [](const service::ServiceProgress &p) {
            std::cerr << "  ... " << p.completed << " completed / "
                      << p.submitted << " submitted / " << p.rejected
                      << " shed @ cycle " << p.now_cycle << "\n";
        };
    }

    const service::ServiceResult result = service::runService(params);

    JsonWriter report;
    service::writeServiceJson(params, result, report);

    if (json) {
        std::cout << report.str() << "\n";
    } else {
        std::cout << "mesa_serve: " << result.completed
                  << " offloads across " << params.backends
                  << " backend(s), policy "
                  << service::dispatchPolicyName(params.policy)
                  << ", profile "
                  << service::trafficProfileName(
                         params.traffic.profile)
                  << (result.stopped ? " [drained after stop]" : "")
                  << "\n";
        TextTable table;
        table.header({"qos", "jobs", "rejects", "viol", "p50", "p99",
                      "p99.9", "wait_mean"});
        for (int c = 0; c < service::QosClassCount; ++c) {
            const service::ClassSlo s =
                result.slo.classSummary(service::QosClass(c));
            table.row({service::qosName(service::QosClass(c)),
                       std::to_string(s.jobs),
                       std::to_string(s.rejects),
                       std::to_string(s.violations),
                       TextTable::num(s.p50, 0),
                       TextTable::num(s.p99, 0),
                       TextTable::num(s.p999, 0),
                       TextTable::num(s.mean_wait, 0)});
        }
        table.print(std::cout);
        std::cout << "  throughput " <<
            TextTable::num(result.offloadsPerSecondSim(), 1)
                  << " offloads/s (simulated), fairness "
                  << TextTable::num(result.slo.jainFairness(), 4)
                  << ", " << result.rejectedTotal() << " shed, "
                  << result.invariant_violations
                  << " invariant violations\n";
    }
    if (digest)
        std::cout << service::closedLoopDigest(result) << "\n";

    if (!out_path.empty()) {
        std::ofstream f(out_path);
        if (!f)
            fatal("cannot open report output file ", out_path);
        f << report.str() << "\n";
    }
    if (!metrics_out.empty()) {
        std::ofstream f(metrics_out);
        if (!f)
            fatal("cannot open metrics output file ", metrics_out);
        result.slo.writePrometheus(f);
        service::writeFabricHealthPrometheus(result, f);
    }
    if (!stats_json.empty()) {
        StatsRegistry registry;
        result.slo.exportInto(registry, "service.");
        JsonWriter stats;
        registry.toJson(stats);
        std::ofstream f(stats_json);
        if (!f)
            fatal("cannot open stats output file ", stats_json);
        f << stats.str() << "\n";
    }
    if (!no_history) {
        prof::HistoryRecord rec =
            prof::makeHistoryRecord("mesa_serve");
        rec.metrics["submitted"] = double(result.submitted);
        rec.metrics["accepted"] = double(result.accepted);
        rec.metrics["completed"] = double(result.completed);
        rec.metrics["rejected"] = double(result.rejectedTotal());
        rec.metrics["offloads_per_second_sim"] =
            result.offloadsPerSecondSim();
        rec.metrics["fairness_jain"] = result.slo.jainFairness();
        rec.metrics["invariant_violations"] =
            double(result.invariant_violations);
        for (int c = 0; c < service::QosClassCount; ++c) {
            const service::ClassSlo s =
                result.slo.classSummary(service::QosClass(c));
            const std::string base =
                std::string(service::qosName(service::QosClass(c)));
            rec.metrics[base + ".p50"] = s.p50;
            rec.metrics[base + ".p99"] = s.p99;
            rec.metrics[base + ".violations"] = double(s.violations);
        }
        if (!prof::appendHistory(history_path, rec))
            logWarn("serve", "cannot append history to ",
                    history_path);
    }

    return result.invariant_violations == 0 ? 0 : 1;
}
