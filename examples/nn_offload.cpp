/**
 * @file
 * The paper's running example end to end: the nn (nearest-neighbor
 * Euclidean distance) kernel is monitored, translated, mapped, and
 * offloaded, then iteratively re-optimized from the accelerator's
 * latency counters. Prints the LDFG, the placement, the modeled
 * critical path, and the measured-vs-modeled feedback loop.
 *
 * Build & run:  ./build/examples/nn_offload
 */

#include <iostream>

#include "dfg/latency.hh"
#include "mesa/controller.hh"
#include "mesa/mapper.hh"
#include "workloads/kernel.hh"

using namespace mesa;

int
main()
{
    const auto kernel = workloads::makeNn(8192);
    std::cout << "=== nn kernel: dist[i] = sqrt((lat-t)^2 + (lng-u)^2) "
                 "===\n\n";

    // --- T1 Encode: the Logical DFG ---------------------------------
    auto ldfg = dfg::Ldfg::build(kernel.loopBody());
    if (!ldfg) {
        std::cerr << "LDFG build failed\n";
        return 1;
    }
    std::cout << "LDFG (" << ldfg->size() << " nodes, "
              << ldfg->liveIns().size() << " live-in registers):\n"
              << ldfg->toString() << "\n";

    // --- T2 Optimize: spatial mapping --------------------------------
    const auto accel_params = accel::AccelParams::m128();
    ic::AccelNocInterconnect ic(accel_params.rows, accel_params.cols,
                                accel_params.noc_slice_width);
    core::InstructionMapper mapper(accel_params, ic);
    const core::MapResult map = mapper.map(*ldfg);

    std::cout << "SDFG placement on " << accel_params.name << " ("
              << accel_params.rows << "x" << accel_params.cols
              << "):\n";
    for (size_t i = 0; i < ldfg->size(); ++i) {
        const auto pos = map.sdfg.coordOf(int(i));
        std::cout << "  i" << i << " "
                  << riscv::opName(ldfg->node(int(i)).inst.op)
                  << " -> (" << pos.r << "," << pos.c
                  << ")  modeled L=" << map.completion[i] << "\n";
    }
    std::cout << "mapping took " << map.mapping_cycles
              << " imap-FSM cycles; modeled iteration latency "
              << map.model_latency << " cycles\n";

    dfg::LatencyModel model(*ldfg, map.sdfg, ic);
    const auto eval = model.evaluate();
    std::cout << "critical path: ";
    for (auto id : eval.critical_path)
        std::cout << "i" << id << " ";
    std::cout << "\n\n";

    // --- T3 + F3: offload with iterative optimization ----------------
    mem::MainMemory memory;
    kernel.init_data(memory);
    cpu::loadProgram(memory, kernel.program);

    core::MesaParams params;
    params.accel = accel_params;
    params.iterative_optimization = true;
    params.profile_epoch_iterations = 128;
    core::MesaController mesa(params, memory);

    riscv::Emulator emu(memory);
    emu.reset(kernel.program.base_pc);
    kernel.fullRange()(emu.state());
    auto os = mesa.offloadLoop(kernel.loopBody(), emu.state(),
                               kernel.parallel);
    if (!os) {
        std::cerr << "offload failed\n";
        return 1;
    }

    std::cout << "=== execution ===\n";
    std::cout << "tiled " << os->tile_factor << " instances"
              << (os->pipelined ? ", pipelined" : "") << "\n";
    std::cout << os->accel_iterations << " iterations in "
              << os->accel_cycles << " cycles; "
              << os->reconfigurations
              << " runtime reconfigurations (cost "
              << os->reconfig_cycles << " cycles)\n";
    std::cout << "memory: " << os->accel.loads << " loads, "
              << os->accel.stores << " stores, "
              << os->accel.dram_accesses << " DRAM fills\n\n";

    // --- F3: the refined performance model ---------------------------
    std::cout << "measured vs default node weights (loads pick up "
                 "their true AMAT):\n";
    auto &acc = mesa.accelerator();
    for (size_t i = 0; i < ldfg->size(); ++i) {
        const auto &node = ldfg->node(int(i));
        if (!node.inst.isLoad())
            continue;
        std::cout << "  i" << i << " " << node.inst.toString()
                  << ": default 4.0, measured "
                  << acc.measuredNodeLatency(int(i)) << " cycles\n";
    }

    emu.run(10'000'000);
    std::cout << "\nCPU resumed at pc 0x" << std::hex
              << emu.state().pc << std::dec << " and halted: "
              << (emu.halted() ? "yes" : "no") << "\n";
    return 0;
}
