/**
 * @file
 * Command-line driver: run any suite kernel on a MESA-enabled system
 * and print a full offload report. The knobs mirror MesaParams.
 *
 *   ./build/examples/mesa_run --kernel nn --accel M-128
 *   ./build/examples/mesa_run --kernel srad --accel M-64 --timemux
 *   ./build/examples/mesa_run --kernel kmeans --no-tiling --scale 8192
 *   ./build/examples/mesa_run --list
 */

#include <cstring>
#include <fstream>

#include "fault/injector.hh"
#include "mesa/translation_store.hh"
#include "sched/multicore.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/trace.hh"
#include "workloads/suite.hh"
#include <iostream>

#include "common.hh"

using namespace mesa;
using namespace mesa::bench;

namespace
{

void
usage()
{
    std::cout <<
        "mesa_run — transparent loop offloading demo\n"
        "  --kernel <name>     suite kernel to run (default nn)\n"
        "  --accel <cfg>       M-64 | M-128 | M-512 (default M-128)\n"
        "  --scale <n>         iteration count (default 8192)\n"
        "  --no-tiling         disable SDFG duplication\n"
        "  --no-pipelining     disable iteration overlap\n"
        "  --no-iterative      disable runtime re-optimization\n"
        "  --unroll            enable the unrolling extension\n"
        "  --timemux           enable PE time-multiplexing\n"
        "  --verify            statically verify every prepared\n"
        "                      config before offload (mesa.verify.*)\n"
        "  --fault-tolerance   guard offloads: CRC gate, watchdog,\n"
        "                      checkpoint/rollback, quarantine\n"
        "  --checked           fault tolerance plus golden-model\n"
        "                      comparison after every offload\n"
        "  --faults <n>        inject n seeded transient datapath\n"
        "                      SEUs into the fabric before the run\n"
        "  --migrate           drain-and-relocate: live-migrate a\n"
        "                      tripped offload onto the degraded\n"
        "                      fabric (implies --fault-tolerance)\n"
        "  --q-max-strikes <n> quarantine strike cap (default 16)\n"
        "  --q-forgive <n>     clean runs to decay one strike\n"
        "                      (default 2)\n"
        "  --seed <n>          RNG seed for fault injection\n"
        "                      (default 1)\n"
        "  --tenants <n>       split the iteration space across n\n"
        "                      threads sharing one scheduled device\n"
        "  --sched-policy <p>  round-robin | priority |\n"
        "                      shortest-remaining (with --tenants)\n"
        "  --sched-ways <n>    spatial partitions (default = tenants)\n"
        "  --sched-epoch <n>   preemption slice iterations (default 256)\n"
        "  --json              machine-readable output\n"
        "  --cache-dir <dir>   persistent translation cache: warm\n"
        "                      starts skip encode/map/config-gen;\n"
        "                      results are bit-identical either way\n"
        "  --trace-out <file>  write a Chrome trace-event timeline of\n"
        "                      the MESA run (load in Perfetto)\n"
        "  --stats-json <file> write the full stats registry as JSON\n"
        "  --stats-every <n>   snapshot stats every n accel iterations\n"
        "  --log-level <lvl>   error | warn | info | debug\n"
        "  --list              list available kernels\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string kernel_name = "nn";
    std::string accel_name = "M-128";
    std::string trace_out;
    std::string stats_json;
    uint64_t scale = 8192;
    uint64_t stats_every = 0;
    uint64_t seed = 1;
    uint64_t inject_faults = 0;
    bool json = false;
    core::MesaParams params;
    int tenants = 1;
    int sched_ways = 0; // 0 = auto (min(tenants, maxWays))
    sched::SchedParams sched_params;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage();
                exit(1);
            }
            return argv[++i];
        };
        if (arg == "--kernel") {
            kernel_name = next();
        } else if (arg == "--accel") {
            accel_name = next();
        } else if (arg == "--scale") {
            scale = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--no-tiling") {
            params.enable_tiling = false;
        } else if (arg == "--no-pipelining") {
            params.enable_pipelining = false;
        } else if (arg == "--no-iterative") {
            params.iterative_optimization = false;
        } else if (arg == "--unroll") {
            params.enable_unrolling = true;
        } else if (arg == "--timemux") {
            params.enable_time_multiplexing = true;
        } else if (arg == "--verify") {
            params.verify_before_offload = true;
        } else if (arg == "--fault-tolerance") {
            params.fault.enabled = true;
        } else if (arg == "--checked") {
            params.fault.enabled = true;
            params.fault.checked_mode = true;
        } else if (arg == "--faults") {
            inject_faults = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--migrate") {
            params.fault.enabled = true;
            params.fault.migrate_on_fault = true;
        } else if (arg == "--q-max-strikes") {
            params.fault.quarantine.max_strikes =
                int(std::strtol(next(), nullptr, 10));
        } else if (arg == "--q-forgive") {
            params.fault.quarantine.forgive_successes =
                int(std::strtol(next(), nullptr, 10));
        } else if (arg == "--seed") {
            seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--tenants") {
            tenants = int(std::strtol(next(), nullptr, 10));
        } else if (arg == "--sched-policy") {
            const std::string name = next();
            auto p = sched::policyByName(name);
            if (!p)
                fatal("unknown scheduling policy ", name);
            sched_params.policy = *p;
        } else if (arg == "--sched-ways") {
            sched_ways = int(std::strtol(next(), nullptr, 10));
        } else if (arg == "--sched-epoch") {
            sched_params.epoch_iterations =
                std::strtoull(next(), nullptr, 10);
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--cache-dir") {
            core::TranslationStore::global().setDirectory(next());
        } else if (arg == "--trace-out") {
            trace_out = next();
        } else if (arg == "--stats-json") {
            stats_json = next();
        } else if (arg == "--stats-every") {
            stats_every = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--log-level") {
            const std::string name = next();
            auto level = logLevelByName(name);
            if (!level)
                fatal("unknown log level ", name);
            Logger::global().setLevel(*level);
        } else if (arg == "--list") {
            workloads::listKernels(std::cout);
            return 0;
        } else {
            usage();
            return arg == "--help" ? 0 : 1;
        }
    }

    params.accel = accel::AccelParams::byName(accel_name);

    const auto kernel = workloads::kernelByName(kernel_name, {scale});

    // Multi-tenant path: N threads share one scheduled accelerator
    // (spatial partitioning + time-multiplexing, see src/sched/).
    if (tenants > 1) {
        sched_params.accel = params.accel;
        sched_params.enable_tiling = params.enable_tiling;
        sched_params.enable_pipelining = params.enable_pipelining;
        sched_params.spatial_ways =
            sched_ways > 0
                ? sched_ways
                : std::min(tenants,
                           sched::maxWays(params.accel,
                                          kernel.loopBody().size()));
        sched::SharedRunParams sp;
        sp.sched = sched_params;

        if (!trace_out.empty()) {
            Tracer::global().clear();
            Tracer::global().enable();
        }
        mem::MainMemory memory;
        const auto shared =
            sched::runShared(sp, memory, kernel, tenants);
        if (!trace_out.empty()) {
            Tracer &tracer = Tracer::global();
            tracer.enable(false);
            std::ofstream f(trace_out);
            if (!f)
                fatal("cannot open trace output file ", trace_out);
            tracer.exportJson(f);
        }
        if (!stats_json.empty()) {
            StatsRegistry stats;
            shared.sched.registerInto(stats);
            JsonWriter w;
            stats.toJson(w);
            std::ofstream f(stats_json);
            if (!f)
                fatal("cannot open stats output file ", stats_json);
            f << w.str() << "\n";
        }

        if (json) {
            JsonWriter w;
            w.beginObject()
                .field("kernel", kernel.name)
                .field("tenants", tenants)
                .field("ways", shared.sched.ways)
                .field("policy",
                       sched::policyName(sp.sched.policy))
                .field("makespan_cycles", shared.makespan_cycles)
                .field("iterations", shared.total_iterations)
                .field("occupancy", shared.sched.occupancy)
                .field("fairness_jain", shared.sched.fairnessJain())
                .field("switches", shared.sched.total_switches)
                .field("all_completed", shared.all_completed)
                .end();
            std::cout << w.str() << "\n";
            return 0;
        }
        std::cout << "kernel " << kernel.name << ": " << tenants
                  << " tenants on " << params.accel.name << ", "
                  << shared.sched.ways << " ways, "
                  << sched::policyName(sp.sched.policy) << "\n";
        std::cout << "makespan    : " << shared.makespan_cycles
                  << " cycles ("
                  << TextTable::num(100.0 * shared.sched.occupancy, 1)
                  << "% occupancy, Jain "
                  << TextTable::num(shared.sched.fairnessJain())
                  << ", imbalance "
                  << TextTable::num(shared.imbalance()) << ")\n";
        for (const auto &t : shared.sched.tenants) {
            std::cout << "  tenant " << t.tenant << ": "
                      << t.iterations << " iters, wait "
                      << t.wait_cycles << ", run " << t.run_cycles
                      << ", " << t.switches << " switches, "
                      << t.slices << " slices"
                      << (t.completed ? "" : " (INCOMPLETE)")
                      << "\n";
        }
        if (!shared.all_completed)
            std::cout << "WARNING: not every tenant completed\n";
        return 0;
    }
    if (!json) {
        std::cout << "kernel " << kernel.name << " ("
                  << kernel.iterations << " iterations, "
                  << (kernel.parallel ? "omp-parallel" : "serial")
                  << ") on " << params.accel.name << "\n\n";
    }

    const CpuRun multi = runMulticoreBaseline(kernel);
    const CpuRun single = runSingleCoreBaseline(kernel);

    // Seeded in-situ injection: a deterministic transient-SEU plane
    // installed before the run (the campaign tool mesa_faultsim is
    // the heavier hammer; this exercises one run interactively).
    params.fault.seed = seed;
    accel::FaultPlane plane;
    if (inject_faults > 0) {
        SplitMix64 rng(seed);
        const size_t slots = kernel.loopBody().size();
        for (uint64_t f = 0; f < inject_faults; ++f) {
            plane.transients.push_back(fault::makeTransient(
                rng, slots, std::max<uint64_t>(kernel.iterations, 1)));
        }
    }

    // Tracing covers only the MESA run (the baselines above would
    // otherwise interleave events with an unrelated time base).
    StatsRegistry stats;
    const bool want_stats = !stats_json.empty() || stats_every > 0 ||
                            params.verify_before_offload ||
                            params.fault.enabled;
    if (!trace_out.empty()) {
        Tracer::global().clear();
        Tracer::global().enable();
    }
    const MesaRun run = runMesa(kernel, params,
                                want_stats ? &stats : nullptr,
                                stats_every, &plane);
    if (!trace_out.empty()) {
        Tracer &tracer = Tracer::global();
        tracer.enable(false);
        std::ofstream f(trace_out);
        if (!f)
            fatal("cannot open trace output file ", trace_out);
        tracer.exportJson(f);
        if (!json) {
            std::cout << "trace: " << tracer.eventCount()
                      << " events on " << tracer.tracks().size()
                      << " tracks -> " << trace_out;
            if (tracer.droppedEvents() > 0)
                std::cout << " (" << tracer.droppedEvents()
                          << " dropped)";
            std::cout << "\n";
        }
    }
    if (!stats_json.empty()) {
        run.result.registerInto(stats, "run.");
        JsonWriter w;
        stats.toJson(w);
        std::ofstream f(stats_json);
        if (!f)
            fatal("cannot open stats output file ", stats_json);
        f << w.str() << "\n";
        if (!json)
            std::cout << "stats: " << stats.size() << " entries, "
                      << stats.snapshotCount() << " snapshots -> "
                      << stats_json << "\n";
    }

    if (json) {
        JsonWriter w;
        w.beginObject()
            .field("kernel", kernel.name)
            .field("accel", params.accel.name)
            .field("iterations", kernel.iterations)
            .field("parallel", kernel.parallel);
        if (params.verify_before_offload) {
            w.field("verify_configs_checked",
                    uint64_t(stats.value("mesa.verify.configs_checked")))
                .field("verify_violations",
                       uint64_t(stats.value("mesa.verify.violations")))
                .field("verify_fallbacks",
                       uint64_t(stats.value("mesa.verify.fallbacks")));
        }
        if (params.fault.enabled) {
            w.field("fault_seed", seed)
                .field("fault_injected", inject_faults)
                .field("fault_crc_failures",
                       uint64_t(stats.value("mesa.fault.crc_failures")))
                .field("fault_watchdog_trips",
                       uint64_t(
                           stats.value("mesa.fault.watchdog_trips")))
                .field("fault_mismatches",
                       uint64_t(stats.value("mesa.fault.mismatches")))
                .field("fault_rollbacks",
                       uint64_t(stats.value("mesa.fault.rollbacks")))
                .field("fault_quarantined_pes",
                       uint64_t(
                           stats.value("mesa.fault.quarantined_pes")));
        }
        w
            .field("single_core_cycles", single.run.cycles)
            .field("multicore_cycles", multi.run.cycles)
            .field("multicore_energy_nj", multi.energy_nj)
            .field("mesa_cycles", run.result.total_cycles)
            .field("mesa_energy_nj", run.energy_nj)
            .field("speedup_vs_multicore",
                   double(multi.run.cycles) /
                       double(run.result.total_cycles))
            .key("offloads")
            .beginArray();
        for (const auto &os : run.result.offloads) {
            w.beginObject()
                .field("region_start", uint64_t(os.region_start))
                .field("config_cycles", os.totalConfigCycles())
                .field("tiles", os.tile_factor)
                .field("pipelined", os.pipelined)
                .field("reconfigurations", os.reconfigurations)
                .field("accel_iterations", os.accel_iterations)
                .field("accel_cycles", os.accel_cycles)
                .field("loads", os.accel.loads)
                .field("stores", os.accel.stores)
                .field("dram_accesses", os.accel.dram_accesses)
                .end();
        }
        w.end().end();
        std::cout << w.str() << "\n";
        return 0;
    }

    std::cout << "single core : " << single.run.cycles << " cycles\n";
    std::cout << "16-core CPU : " << multi.run.cycles << " cycles, "
              << TextTable::num(multi.energy_nj / 1000.0, 2) << " uJ\n";
    std::cout << "MESA        : " << run.result.total_cycles
              << " cycles, "
              << TextTable::num(run.energy_nj / 1000.0, 2) << " uJ\n";
    std::cout << "speedup     : "
              << TextTable::num(double(multi.run.cycles) /
                                double(run.result.total_cycles))
              << "x vs multicore, "
              << TextTable::num(double(single.run.cycles) /
                                double(run.result.total_cycles))
              << "x vs single core\n";
    std::cout << "energy eff  : "
              << TextTable::num(multi.energy_nj / run.energy_nj)
              << "x vs multicore\n";
    if (params.verify_before_offload) {
        std::cout << "verify      : "
                  << uint64_t(
                         stats.value("mesa.verify.configs_checked"))
                  << " configs checked, "
                  << uint64_t(stats.value("mesa.verify.violations"))
                  << " violations, "
                  << uint64_t(stats.value("mesa.verify.fallbacks"))
                  << " CPU fallbacks\n";
    }
    if (params.fault.enabled) {
        std::cout << "fault guard : seed " << seed << ", "
                  << inject_faults << " injected; "
                  << uint64_t(stats.value("mesa.fault.crc_failures"))
                  << " CRC rejects, "
                  << uint64_t(stats.value("mesa.fault.watchdog_trips"))
                  << " watchdog trips, "
                  << uint64_t(stats.value("mesa.fault.mismatches"))
                  << " golden mismatches, "
                  << uint64_t(stats.value("mesa.fault.rollbacks"))
                  << " rollbacks, "
                  << uint64_t(
                         stats.value("mesa.fault.quarantined_pes"))
                  << " PEs quarantined\n";
    }
    std::cout << "\n";

    if (run.result.offloads.empty()) {
        std::cout << "loop was NOT offloaded; rejections:\n";
        for (const auto &r : run.result.rejections) {
            std::cout << "  pc 0x" << std::hex << r.loop.start
                      << std::dec << ": "
                      << cpu::rejectReasonName(r.reason) << "\n";
        }
        return 0;
    }
    for (const auto &os : run.result.offloads) {
        std::cout << "offload @0x" << std::hex << os.region_start
                  << std::dec << ": config "
                  << os.totalConfigCycles() << " cyc ("
                  << TextTable::num(os.totalConfigCycles() / 2.0, 0)
                  << " ns), tiles " << os.tile_factor
                  << (os.pipelined ? ", pipelined" : "") << ", "
                  << os.reconfigurations << " reconfigs, "
                  << os.accel_iterations << " iters in "
                  << os.accel_cycles << " cyc ("
                  << TextTable::num(double(os.accel_cycles) /
                                        double(os.accel_iterations),
                                    3)
                  << " cyc/iter)\n";
        std::cout << "  memory: " << os.accel.loads << " loads, "
                  << os.accel.stores << " stores, "
                  << os.accel.store_load_forwards << " forwards, "
                  << os.accel.dram_accesses << " DRAM fills\n";
        std::cout << "  array : " << os.accel.pes_used << "/"
                  << os.accel.pes_total << " PEs configured ("
                  << TextTable::num(100.0 * double(os.accel.pes_used) /
                                        double(os.accel.pes_total),
                                    1)
                  << "% utilization)\n";
    }
    return 0;
}
