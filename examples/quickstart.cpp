/**
 * @file
 * Quickstart: assemble a small RISC-V loop, run it transparently on a
 * MESA-enabled system (CPU monitor -> dynamic binary translation ->
 * spatial accelerator), and check the result against the pure
 * emulator.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <iostream>

#include "cpu/system.hh"
#include "mesa/controller.hh"
#include "riscv/assembler.hh"

using namespace mesa;
using namespace mesa::riscv::reg;

int
main()
{
    // --- 1. A small program: out[i] = a[i] * b[i] + 7 ---------------
    riscv::Assembler as;
    as.label("loop");
    as.lw(t0, 0, a0);
    as.lw(t1, 0, a1);
    as.mul(t2, t0, t1);
    as.addi(t2, t2, 7);
    as.sw(t2, 0, a2);
    as.addi(a0, a0, 4);
    as.addi(a1, a1, 4);
    as.addi(a2, a2, 4);
    as.blt(a0, a3, "loop");
    as.ecall();
    const riscv::Program prog = as.assemble();

    constexpr uint32_t A = 0x100000, B = 0x200000, C = 0x300000;
    constexpr uint32_t N = 4096;

    auto init_data = [&](mem::MainMemory &m) {
        for (uint32_t i = 0; i < N; ++i) {
            m.write32(A + 4 * i, i);
            m.write32(B + 4 * i, 3 * i + 1);
        }
    };
    auto init_regs = [&](riscv::ArchState &st) {
        st.x[a0] = A;
        st.x[a1] = B;
        st.x[a2] = C;
        st.x[a3] = A + 4 * N;
    };

    // --- 2. Reference: the functional emulator ----------------------
    mem::MainMemory ref_mem;
    init_data(ref_mem);
    cpu::loadProgram(ref_mem, prog);
    riscv::Emulator ref(ref_mem);
    ref.reset(prog.base_pc);
    init_regs(ref.state());
    ref.run(10'000'000);

    // --- 3. Transparent MESA run ------------------------------------
    mem::MainMemory memory;
    init_data(memory);
    core::MesaParams params; // M-128 accelerator by default
    core::MesaController mesa(params, memory);
    const auto result =
        mesa.runTransparent(prog, init_regs, /*parallel_hint=*/true);

    // --- 4. Report ---------------------------------------------------
    std::cout << "MESA quickstart: out[i] = a[i]*b[i] + 7 over " << N
              << " iterations\n\n";
    if (result.offloads.empty()) {
        std::cout << "loop was not offloaded (see rejections)\n";
        return 1;
    }
    const auto &os = result.offloads.front();
    std::cout << "loop detected at pc 0x" << std::hex << os.region_start
              << std::dec << ", qualified by the C1-C3 monitor\n";
    std::cout << "configuration: encode " << os.encode_cycles
              << " + map " << os.mapping_cycles << " + bitstream "
              << os.config_cycles << " = " << os.totalConfigCycles()
              << " cycles (" << mesa.cyclesToNs(os.totalConfigCycles())
              << " ns @2GHz)\n";
    std::cout << "tiled " << os.tile_factor << "x"
              << (os.pipelined ? ", pipelined" : "") << "; "
              << os.cpu_overlap_iterations
              << " iterations ran on the CPU while MESA configured\n";
    std::cout << "accelerator executed " << os.accel_iterations
              << " iterations in " << os.accel_cycles << " cycles ("
              << double(os.accel_cycles) / double(os.accel_iterations)
              << " cycles/iteration)\n";
    std::cout << "total: " << result.total_cycles << " cycles ("
              << result.cpu_cycles << " CPU + " << result.accel_cycles
              << " accelerator)\n\n";

    // --- 5. Verify ----------------------------------------------------
    bool ok = true;
    for (uint32_t i = 0; i < N && ok; ++i)
        ok = memory.read32(C + 4 * i) == ref_mem.read32(C + 4 * i);
    ok = ok && memory.read32(C) == 7 && memory.read32(C + 4) == 1 * 4 + 7;
    std::cout << (ok ? "results match the functional emulator exactly"
                     : "MISMATCH against the emulator!")
              << "\n";
    return ok ? 0 : 1;
}
