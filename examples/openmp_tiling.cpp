/**
 * @file
 * Loop-level optimization example (paper §4.3, Fig. 6): a parallel
 * (OpenMP-annotated) kernel is tiled by SDFG duplication; independent
 * instances execute concurrently across the grid. Sweeps the tile
 * factor and prints the throughput scaling, plus the effect of
 * pipelining.
 *
 * Build & run:  ./build/examples/openmp_tiling
 */

#include <iostream>

#include "mesa/controller.hh"
#include "util/table.hh"
#include "workloads/kernel.hh"

using namespace mesa;

namespace
{

/** Run kmeans with an explicit tile factor; returns cycles/iter. */
double
runTiled(int tiles, bool pipelined)
{
    const auto kernel = workloads::makeKmeans(8192);
    const auto accel_params = accel::AccelParams::m512();

    mem::MainMemory memory;
    kernel.init_data(memory);
    cpu::loadProgram(memory, kernel.program);

    // Drive the pipeline manually to control the tile factor.
    accel::Accelerator accel(accel_params, memory);
    ic::AccelNocInterconnect ic(accel_params.rows, accel_params.cols,
                                accel_params.noc_slice_width);
    core::InstructionMapper mapper(accel_params, ic);
    core::ConfigBlock config_block(accel_params);

    auto ldfg = dfg::Ldfg::build(kernel.loopBody(),
                                 accel_params.op_latency);
    const auto map = mapper.map(*ldfg);

    core::ConfigOptions opts;
    opts.tile_factor = tiles;
    opts.pipelined = pipelined;
    auto cfg = config_block.build(*ldfg, map.sdfg, opts,
                                  kernel.loop_start, kernel.loop_end);
    accel.configure(cfg);

    riscv::Emulator emu(memory);
    emu.reset(kernel.program.base_pc);
    kernel.fullRange()(emu.state());
    const auto res = accel.run(emu.state());
    return res.iterations
               ? double(res.cycles) / double(res.iterations)
               : 0.0;
}

} // namespace

int
main()
{
    std::cout << "kmeans on M-512: spatial tiling by SDFG "
                 "duplication (omp parallel)\n\n";

    TextTable table("throughput vs tile factor");
    table.header({"tiles", "cycles/iter (pipelined)",
                  "cycles/iter (not pipelined)", "speedup vs 1 tile"});
    const double base = runTiled(1, true);
    for (int tiles : {1, 2, 4, 8, 16}) {
        const double piped = runTiled(tiles, true);
        const double unpiped = runTiled(tiles, false);
        table.row({std::to_string(tiles), TextTable::num(piped, 3),
                   TextTable::num(unpiped, 3),
                   TextTable::num(base / piped, 2)});
    }
    table.print(std::cout);

    std::cout << "\nEach tile is a full copy of the SDFG; instance k "
                 "starts at iteration k and strides by the tile "
                 "count, so the union covers the iteration space "
                 "exactly (paper Fig. 6).\n";
    return 0;
}
