/**
 * @file
 * Static lint over MESA's translation pipeline: run every suite
 * kernel's hot loop through encode -> map -> configure and hand the
 * three artifacts to the src/verify passes, printing a diagnostics
 * table (or a JSON report for CI). A clean exit (0) means no
 * error-severity finding anywhere; any error exits 1.
 *
 *   ./build/examples/mesa_lint                      # whole suite
 *   ./build/examples/mesa_lint --kernel srad --json
 *   ./build/examples/mesa_lint --accel M-64 --timemux
 *   ./build/examples/mesa_lint --rules              # rule catalog
 */

#include <cstring>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "absint/certificate.hh"
#include "cpu/system.hh"
#include "dfg/analysis.hh"
#include "interconnect/folded.hh"
#include "mesa/config_builder.hh"
#include "mesa/mapper.hh"
#include "riscv/emulator.hh"
#include "util/json.hh"
#include "util/parallel.hh"
#include "util/table.hh"
#include "verify/verifier.hh"
#include "workloads/kernel.hh"
#include "workloads/suite.hh"

using namespace mesa;

namespace
{

void
usage()
{
    std::cout <<
        "mesa_lint — static verifier for the MESA translation "
        "pipeline\n"
        "  --kernel <name>  lint one suite kernel (default: all)\n"
        "  --accel <cfg>    M-64 | M-128 | M-512 (default M-128)\n"
        "  --scale <n>      iteration count knob (default 64)\n"
        "  --timemux        allow folding oversized bodies (x4)\n"
        "  --jobs <n>       lint kernels on n worker threads (default\n"
        "                   = hardware concurrency; output order and\n"
        "                   bytes are identical at any job count)\n"
        "  --werror         exit 1 on warnings too\n"
        "  --json           machine-readable report\n"
        "  --absint         run the abstract-interpretation certifier\n"
        "                   (footprint + trip-count certificates, AI1xx\n"
        "                   rules) on every linted kernel\n"
        "  --rules [spec]   with no spec: print the rule catalog and\n"
        "                   exit. With a comma-separated spec of rule\n"
        "                   ids or trailing-* prefix globs (AI*, map.*):\n"
        "                   keep only matching diagnostics. Unknown\n"
        "                   ids/globs are a hard error (exit 2)\n"
        "  --list           list available kernels\n";
}

/** One kernel's lint outcome. */
struct LintResult
{
    std::string kernel;
    size_t nodes = 0;
    size_t unmapped = 0;
    int tiles = 1;
    int time_multiplex = 1;
    bool skipped = false;
    std::string skip_reason;
    verify::Report report;

    // --absint artifacts.
    bool certified = false;
    absint::BodyCertificate cert;
    absint::CertificateInstance inst;
    uint64_t watchdog_budget = 0;
};

/**
 * Set up the kernel's dataset, load its program, and emulate the
 * preamble to the hot-loop entry -- the concrete entry state the
 * certificate instantiates against (mirrors the monitor's view at
 * offload time).
 */
bool
advanceToLoop(const workloads::Kernel &kernel, mem::MainMemory &memory,
              riscv::Emulator &emu)
{
    if (kernel.init_data)
        kernel.init_data(memory);
    cpu::loadProgram(memory, kernel.program);
    emu.reset(kernel.program.base_pc);
    kernel.fullRange()(emu.state());
    uint64_t steps = 0;
    while (!emu.halted() && emu.state().pc != kernel.loop_start &&
           steps < 1'000'000) {
        emu.step();
        ++steps;
    }
    return emu.state().pc == kernel.loop_start;
}

LintResult
lintKernel(const workloads::Kernel &kernel,
           const accel::AccelParams &accel, bool allow_timemux,
           bool run_absint)
{
    LintResult out;
    out.kernel = kernel.name;

    const auto body = kernel.loopBody();
    if (body.empty()) {
        out.skipped = true;
        out.skip_reason = "no hot-loop body";
        return out;
    }
    const size_t capacity = accel.capacity();
    const int max_tm = allow_timemux ? 4 : 1;

    dfg::BuildError err = dfg::BuildError::None;
    auto ldfg = dfg::Ldfg::build(body, accel.op_latency,
                                 capacity * size_t(max_tm), &err);
    if (!ldfg) {
        // Not encodable is not a lint failure: the monitor would have
        // rejected the region (C1/C2) before the pipeline ever ran.
        out.skipped = true;
        out.skip_reason =
            std::string("not encodable: ") + dfg::buildErrorName(err);
        return out;
    }
    out.nodes = ldfg->size();

    // Mirror MesaController::prepare: map on the physical grid, or on
    // a virtual fold of it when the body exceeds the PE count.
    ic::AccelNocInterconnect noc(accel.rows, accel.cols,
                                 accel.noc_slice_width);
    const int tm = int((ldfg->size() + capacity - 1) / capacity);
    core::MapResult map;
    core::ConfigOptions options;
    if (tm > 1) {
        accel::AccelParams virt = accel;
        virt.rows *= tm;
        ic::FoldedInterconnect folded(noc, accel.rows);
        core::InstructionMapper mapper(virt, folded, {});
        map = mapper.map(*ldfg);
        options.time_multiplex = tm;
    } else {
        core::InstructionMapper mapper(accel, noc, {});
        map = mapper.map(*ldfg);
    }
    out.unmapped = map.unmapped.size();
    out.time_multiplex = tm;

    // Tiling under the same legality conditions the controller uses.
    const bool unknown_stores =
        !dfg::findUnknownAddressStores(*ldfg).empty();
    const auto inductions = dfg::findInductionRegs(*ldfg);
    bool reg_carried = false;
    for (int reg : ldfg->writtenRegs()) {
        if (!ldfg->liveIns().count(reg))
            continue;
        bool is_induction = false;
        for (const auto &ind : inductions)
            is_induction = is_induction || ind.unified_reg == reg;
        if (!is_induction)
            reg_carried = true;
    }
    options.pipelined = true;
    options.tile_factor =
        (tm == 1 && kernel.parallel && !unknown_stores && !reg_carried)
            ? std::max(1, core::ConfigBlock::maxTileFactor(map.sdfg,
                                                           accel))
            : 1;

    core::ConfigBlock config_block(accel);
    const uint32_t region_start = body.front().pc;
    const uint32_t region_end = body.back().pc + 4;
    accel::AcceleratorConfig config = config_block.build(
        *ldfg, map.sdfg, options, region_start, region_end);
    out.tiles = config.tileCount();

    if (tm > 1) {
        ic::FoldedInterconnect folded(noc, accel.rows);
        out.report = verify::verifyPipeline(*ldfg, map.sdfg,
                                            map.unmapped, config,
                                            accel, folded);
    } else {
        out.report = verify::verifyPipeline(*ldfg, map.sdfg,
                                            map.unmapped, config,
                                            accel, noc);
    }

    if (run_absint) {
        mem::MainMemory memory;
        riscv::Emulator emu(memory);
        if (advanceToLoop(kernel, memory, emu)) {
            out.cert = absint::analyze(*ldfg);
            out.inst = absint::instantiate(
                out.cert, emu.state(), absint::residentRegion(memory));
            out.certified =
                out.inst.footprint == absint::RegionClass::ProvenIn &&
                out.inst.trips_finite;
            if (out.inst.trips_finite)
                out.watchdog_budget = absint::watchdogBudget(
                    out.cert, out.inst.trips, tm);
            absint::reportCertificate(out.cert, &out.inst, out.report);
        } else {
            out.report.warn("AI102", "preamble",
                            "loop entry unreachable in preamble "
                            "emulation; certificate not instantiated");
        }
    }
    return out;
}

/** Keep only diagnostics whose rule id is in @p allowed. */
verify::Report
filterReport(const verify::Report &in,
             const std::set<std::string> &allowed)
{
    verify::Report out;
    for (const auto &d : in.diagnostics())
        if (allowed.count(d.rule))
            out.add(d.severity, d.rule, d.where, d.message);
    return out;
}

void
printRuleCatalog()
{
    TextTable table;
    table.header({"rule", "severity", "pass", "summary"});
    for (const auto &rule : verify::ruleCatalog())
        table.row({rule.id, verify::severityName(rule.severity),
                   rule.pass, rule.summary});
    table.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string kernel_name;
    std::string accel_name = "M-128";
    uint64_t scale = 64;
    int jobs = defaultJobs();
    bool allow_timemux = false;
    bool werror = false;
    bool json = false;
    bool run_absint = false;
    bool print_rules = false;
    std::string rules_spec;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage();
                exit(1);
            }
            return argv[++i];
        };
        if (arg == "--kernel") {
            kernel_name = next();
        } else if (arg == "--accel") {
            accel_name = next();
        } else if (arg == "--scale") {
            scale = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--timemux") {
            allow_timemux = true;
        } else if (arg == "--jobs") {
            jobs = resolveJobs(int(std::strtol(next(), nullptr, 10)));
        } else if (arg == "--werror") {
            werror = true;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--absint") {
            run_absint = true;
        } else if (arg == "--rules") {
            // Optional value: a filter spec; bare --rules prints the
            // catalog.
            if (i + 1 < argc && argv[i + 1][0] != '-')
                rules_spec = argv[++i];
            else
                print_rules = true;
        } else if (arg == "--list") {
            workloads::listKernels(std::cout);
            return 0;
        } else {
            usage();
            return arg == "--help" ? 0 : 1;
        }
    }

    if (print_rules) {
        printRuleCatalog();
        return 0;
    }

    // Expand the rule filter up front: an unknown id or glob is a
    // hard error, never a silent no-match filter.
    std::set<std::string> allowed_rules;
    bool filter_rules = false;
    if (!rules_spec.empty()) {
        filter_rules = true;
        std::vector<std::string> unknown;
        for (const auto &id :
             verify::expandRulePatterns(rules_spec, &unknown))
            allowed_rules.insert(id);
        if (!unknown.empty()) {
            for (const auto &pat : unknown)
                std::cerr << "mesa_lint: unknown rule or pattern '"
                          << pat << "'\n";
            return 2;
        }
    }

    const accel::AccelParams accel = accel::AccelParams::byName(accel_name);

    std::vector<workloads::Kernel> kernels;
    if (kernel_name.empty())
        kernels = workloads::selectKernels({}, {scale});
    else
        kernels = workloads::selectKernels({kernel_name}, {scale});

    // Suite-wide lint shards by kernel: every lintKernel call builds
    // its own pipeline state, and results commit in suite order, so
    // the report is identical at any --jobs value.
    std::vector<LintResult> results = parallelMapOrdered<LintResult>(
        kernels.size(), jobs, [&](size_t i) {
            return lintKernel(kernels[i], accel, allow_timemux,
                              run_absint);
        });
    if (filter_rules)
        for (auto &r : results)
            r.report = filterReport(r.report, allowed_rules);

    size_t errors = 0, warnings = 0, notes = 0;
    size_t certified = 0, proven_out = 0;
    for (const auto &r : results) {
        errors += r.report.errorCount();
        warnings += r.report.warnCount();
        notes += r.report.noteCount();
        certified += r.certified;
        proven_out +=
            run_absint && !r.skipped &&
            r.inst.footprint == absint::RegionClass::ProvenOut;
    }
    const bool failed = errors > 0 || (werror && warnings > 0);

    if (json) {
        JsonWriter w;
        w.beginObject()
            .field("accel", accel.name)
            .field("errors", uint64_t(errors))
            .field("warnings", uint64_t(warnings))
            .field("notes", uint64_t(notes))
            .field("ok", !failed);
        if (run_absint)
            w.field("certified", uint64_t(certified))
                .field("proven_out", uint64_t(proven_out));
        w.key("kernels")
            .beginArray();
        for (const auto &r : results) {
            w.beginObject()
                .field("kernel", r.kernel)
                .field("skipped", r.skipped);
            if (r.skipped) {
                w.field("reason", r.skip_reason);
            } else {
                w.field("nodes", uint64_t(r.nodes))
                    .field("unmapped", uint64_t(r.unmapped))
                    .field("tiles", r.tiles)
                    .field("time_multiplex", r.time_multiplex);
                if (run_absint) {
                    w.field("certified", r.certified)
                        .field("watchdog_budget", r.watchdog_budget);
                    w.key("certificate");
                    r.cert.toJson(w);
                    w.key("instance");
                    r.inst.toJson(w);
                }
                w.key("report");
                r.report.toJson(w);
            }
            w.end();
        }
        w.end().end();
        std::cout << w.str() << "\n";
        return failed ? 1 : 0;
    }

    TextTable table;
    if (run_absint)
        table.header({"kernel", "nodes", "footprint", "trips",
                      "watchdog", "result"});
    else
        table.header({"kernel", "nodes", "unmapped", "tiles", "result"});
    for (const auto &r : results) {
        if (r.skipped) {
            std::vector<std::string> row = {r.kernel, "-", "-", "-",
                                            "skipped (" + r.skip_reason +
                                                ")"};
            if (run_absint)
                row.insert(row.end() - 1, "-");
            table.row(row);
            continue;
        }
        if (run_absint) {
            table.row({r.kernel, std::to_string(r.nodes),
                       absint::regionClassName(r.inst.footprint),
                       r.inst.trips_finite ? std::to_string(r.inst.trips)
                                           : "unbounded",
                       r.watchdog_budget
                           ? std::to_string(r.watchdog_budget)
                           : "-",
                       r.report.summary()});
        } else {
            table.row({r.kernel, std::to_string(r.nodes),
                       std::to_string(r.unmapped),
                       std::to_string(r.tiles), r.report.summary()});
        }
    }
    table.print(std::cout);

    for (const auto &r : results) {
        if (r.report.empty())
            continue;
        std::cout << "\n" << r.kernel << ":\n";
        r.report.printTable(std::cout);
    }
    std::cout << "\n"
              << (failed ? "FAIL" : "OK") << ": " << errors
              << " errors, " << warnings << " warnings, " << notes
              << " notes across " << results.size() << " kernels\n";
    return failed ? 1 : 0;
}
