/**
 * @file
 * Backend-agnostic mapping example (paper §3.3): MESA requires only
 * an operation mask F_op and a point-to-point latency model l(C), so
 * the same data-driven mapper retargets to arbitrary interconnects.
 * Maps one kernel onto four different backends — the paper's
 * NoC-augmented grid, a plain mesh, the hierarchical row interconnect
 * of Fig. 4 Example 1, and a user-defined column-bus fabric — and
 * compares the modeled iteration latencies and placements.
 *
 * Build & run:  ./build/examples/custom_interconnect
 */

#include <iostream>

#include "interconnect/custom.hh"
#include "mesa/mapper.hh"
#include "util/table.hh"
#include "workloads/kernel.hh"

using namespace mesa;

namespace
{

struct Backend
{
    const char *name;
    const ic::Interconnect *interconnect;
};

} // namespace

int
main()
{
    const auto kernel = workloads::makeHotspot(1024);
    auto ldfg = dfg::Ldfg::build(kernel.loopBody());
    if (!ldfg) {
        std::cerr << "LDFG build failed\n";
        return 1;
    }

    auto accel_params = accel::AccelParams::m128();

    ic::AccelNocInterconnect noc(accel_params.rows, accel_params.cols,
                                 accel_params.noc_slice_width);
    ic::MeshInterconnect mesh;
    ic::HierRowInterconnect hier(3);
    ic::ColumnBusInterconnect colbus(4);
    // A fully custom latency callback: wormhole-like diagonal fabric.
    ic::CustomInterconnect diag(
        "diagonal", [](ic::Coord a, ic::Coord b) {
            const int dr = std::abs(a.r - b.r);
            const int dc = std::abs(a.c - b.c);
            return uint32_t(1 + std::max(dr, dc)); // diagonal moves free
        });

    const Backend backends[] = {
        {"accel-noc (paper Fig. 9)", &noc},
        {"mesh (Manhattan)", &mesh},
        {"hier-row (Fig. 4 Ex. 1)", &hier},
        {"column-bus (custom)", &colbus},
        {"diagonal (custom lambda)", &diag},
    };

    TextTable table("hotspot mapped onto five backends (same F_op, "
                    "different l(C))");
    table.header({"backend", "model latency", "imap cycles",
                  "unmapped", "bounding box"});

    for (const Backend &backend : backends) {
        core::InstructionMapper mapper(accel_params,
                                       *backend.interconnect);
        const core::MapResult res = mapper.map(*ldfg);

        int max_r = 0, max_c = 0;
        for (size_t i = 0; i < ldfg->size(); ++i) {
            const auto pos = res.sdfg.coordOf(int(i));
            if (pos.valid()) {
                max_r = std::max(max_r, pos.r);
                max_c = std::max(max_c, pos.c);
            }
        }
        table.row({backend.name, TextTable::num(res.model_latency, 1),
                   std::to_string(res.mapping_cycles),
                   std::to_string(res.unmapped.size()),
                   std::to_string(max_r + 1) + "x" +
                       std::to_string(max_c + 1)});
    }
    table.print(std::cout);

    std::cout << "\nThe mapper never touches backend internals: each "
                 "placement decision only queries l(C) for candidate "
                 "positions, so any latency-modelable interconnect "
                 "works (paper: 'generally backend-agnostic').\n";
    std::cout << "Note how the column-bus backend pulls dependent "
                 "chains into single columns, while the row backend "
                 "lays them out across rows.\n";
    return 0;
}
