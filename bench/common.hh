/**
 * @file
 * Shared benchmark-harness plumbing: runs a kernel on the multicore
 * CPU baseline, the single-core baseline, and a MESA-enabled system,
 * and converts activity counters to energy through the power model.
 * Each bench_* binary regenerates one of the paper's tables/figures
 * (see DESIGN.md's experiment index).
 */

#ifndef MESA_BENCH_COMMON_HH
#define MESA_BENCH_COMMON_HH

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

#include "cpu/system.hh"
#include "mesa/controller.hh"
#include "mesa/translation_store.hh"
#include "power/energy_model.hh"
#include "util/parallel.hh"
#include "util/table.hh"
#include "workloads/kernel.hh"

namespace mesa::bench
{

/**
 * Everything one worker shard owns while evaluating a (kernel,
 * config) cell: its private copy of the kernel, the system params,
 * the backing memory, the MESA controller built on them, and a
 * per-shard stats registry. Shards built through makeShardContext
 * share no simulator state, which is the ownership rule that makes
 * the parallel harness byte-identical to the serial one (see
 * ARCHITECTURE.md "Parallel execution engine").
 */
struct ShardContext
{
    workloads::Kernel kernel;
    core::MesaParams params;
    mem::MainMemory memory;
    std::unique_ptr<core::MesaController> mesa;
    StatsRegistry stats;
};

/** Build a fully private system for one shard: fresh memory with the
 *  kernel's data planted, and a controller bound to that memory. */
inline std::unique_ptr<ShardContext>
makeShardContext(const workloads::Kernel &kernel,
                 const core::MesaParams &params)
{
    auto ctx = std::make_unique<ShardContext>();
    ctx->kernel = kernel;
    ctx->params = params;
    ctx->kernel.init_data(ctx->memory);
    ctx->mesa = std::make_unique<core::MesaController>(ctx->params,
                                                       ctx->memory);
    return ctx;
}

/**
 * Evaluate eval(i) over an n-cell grid (kernel × system config,
 * flattened however the harness likes) on the shared thread pool,
 * returning results in index order. Each eval call must build its
 * own ShardContext; the returned vector is identical at any job
 * count, so tables, averages, and JSON stay byte-stable.
 */
template <class Row>
std::vector<Row>
shardedRows(size_t n, int jobs, const std::function<Row(size_t)> &eval)
{
    return parallelMapOrdered<Row>(n, jobs, eval);
}

/**
 * Shared --jobs flag for the bench binaries: scans argv for
 * "--jobs N" (consuming nothing — binaries with richer CLIs parse
 * their own copy too). Default: hardware concurrency.
 */
inline int
parseJobs(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::string(argv[i]) == "--jobs")
            return resolveJobs(int(std::strtol(argv[i + 1], nullptr,
                                               10)));
    return defaultJobs();
}

/**
 * Shared --cache-dir flag: scans argv (consuming nothing, same
 * convention as parseJobs) and points the process-global persistent
 * translation store at the directory, so every bench warm-starts its
 * translations across runs. Results are bit-identical either way —
 * the store memoizes simulator work, not modeled hardware time.
 */
inline void
applyCacheDir(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::string(argv[i]) == "--cache-dir")
            core::TranslationStore::global().setDirectory(argv[i + 1]);
}

/** A CPU baseline run with its modeled energy. */
struct CpuRun
{
    cpu::RunResult run;
    double energy_nj = 0.0;
};

/** A MESA transparent run with its modeled energy. */
struct MesaRun
{
    core::TransparentRunResult result;
    double energy_nj = 0.0;
    double cpu_energy_nj = 0.0;
    double accel_energy_nj = 0.0;
};

/** Paper §6.1 multicore baseline: 16-core quad-issue OoO. */
inline CpuRun
runMulticoreBaseline(const workloads::Kernel &kernel, int cores = 16)
{
    mem::MainMemory memory;
    kernel.init_data(memory);
    cpu::loadProgram(memory, kernel.program);

    cpu::MulticoreParams params;
    params.num_cores = cores;
    // Serial kernels use one core; the rest of the chip idles.
    const auto threads =
        kernel.parallel ? kernel.chunks(cores)
                        : std::vector<cpu::ThreadInit>{kernel.fullRange()};
    CpuRun out;
    out.run = cpu::runMulticore(params, memory, kernel.program, threads);
    power::PowerModel pm(accel::AccelParams::m128());
    out.energy_nj = pm.cpuEnergyNj(out.run);
    return out;
}

/** Single-core out-of-order baseline (Fig. 14). */
inline CpuRun
runSingleCoreBaseline(const workloads::Kernel &kernel,
                      const cpu::CoreParams &core = cpu::defaultCore())
{
    mem::MainMemory memory;
    kernel.init_data(memory);
    cpu::loadProgram(memory, kernel.program);

    CpuRun out;
    out.run = cpu::runSingleCore(core, {}, memory, kernel.program,
                                 kernel.fullRange());
    power::PowerModel pm(accel::AccelParams::m128());
    out.energy_nj = pm.cpuEnergyNj(out.run);
    return out;
}

/**
 * Full transparent MESA run and its energy breakdown.
 *
 * @param stats optional registry the controller keeps live counters
 *        in ("mesa.*", "accel.*", "accel.mem.*") during the run
 * @param snapshot_iterations record a registry snapshot every N
 *        accelerated iterations (0 disables)
 * @param faults optional hardware-defect plane installed in the
 *        accelerator before the run (seeded injection, CLI --faults)
 */
inline MesaRun
runMesa(const workloads::Kernel &kernel, const core::MesaParams &params,
        StatsRegistry *stats = nullptr, uint64_t snapshot_iterations = 0,
        const accel::FaultPlane *faults = nullptr)
{
    // Per-call ShardContext: safe to run from any parallelForOrdered
    // worker shard.
    auto ctx = makeShardContext(kernel, params);
    core::MesaController &mesa = *ctx->mesa;
    if (faults && !faults->empty())
        mesa.accelerator().injectFaults(*faults);
    if (stats) {
        mesa.attachStats(stats, snapshot_iterations);
        mesa.accelerator().hierarchy().registerStats(*stats,
                                                     "accel.mem.");
    }

    MesaRun out;
    out.result = mesa.runTransparent(kernel.program, kernel.fullRange(),
                                     kernel.parallel);

    power::PowerModel pm(params.accel, params.clock_ghz);
    out.cpu_energy_nj = pm.cpuEnergyNj(out.result.cpu);
    for (const auto &os : out.result.offloads) {
        out.accel_energy_nj +=
            pm.accelEnergy(os.accel, os.totalConfigCycles() +
                                         os.reconfig_cycles)
                .total();
    }
    out.energy_nj = out.cpu_energy_nj + out.accel_energy_nj;
    // The controller (and the hierarchy whose counters were linked
    // above) dies with this scope; keep the registry self-contained.
    if (stats) {
        mesa.attachStats(nullptr);
        stats->materialize();
    }
    return out;
}

/** Geometric mean of positive values. */
inline double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / double(values.size()));
}

/** Arithmetic mean. */
inline double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / double(values.size());
}

} // namespace mesa::bench

#endif // MESA_BENCH_COMMON_HH
