/**
 * @file
 * Reproduces paper Figure 8: the timing of MESA's instruction-mapping
 * (imap) state machine. Prints per-stage cycles for the first
 * instructions of a kernel mapping and the aggregate.
 */

#include "common.hh"
#include "mesa/mapper.hh"

using namespace mesa;
using namespace mesa::core;

int
main()
{
    const auto kernel = workloads::makeKmeans(256);
    const auto accel = accel::AccelParams::m128();
    ic::AccelNocInterconnect ic(accel.rows, accel.cols,
                                accel.noc_slice_width);
    InstructionMapper mapper(accel, ic);

    auto ldfg = dfg::Ldfg::build(kernel.loopBody());
    if (!ldfg) {
        std::cerr << "LDFG build failed\n";
        return 1;
    }

    // Re-drive the FSM the way the mapper does, capturing the trace.
    ImapFsm fsm;
    const MapResult res = mapper.map(*ldfg);
    // The mapper runs its own FSM; reproduce stage accounting with a
    // representative candidate count per instruction for the print.
    (void)res;
    for (size_t i = 0; i < ldfg->size(); ++i)
        fsm.mapInstruction(32, 0);

    TextTable table("Figure 8: imap FSM stage timing (kmeans body, "
                    "4x8-entry candidate window)");
    table.header({"instr", "fetch", "rename", "cand-gen", "filter",
                  "reduce", "writeback", "total"});
    const auto &trace = fsm.trace();
    for (size_t i = 0; i < std::min<size_t>(8, trace.size()); ++i) {
        const auto &e = trace[i];
        auto cyc = [&](ImapState s) {
            return std::to_string(e.stage_cycles[size_t(s)]);
        };
        table.row({"i" + std::to_string(i), cyc(ImapState::Fetch),
                   cyc(ImapState::Rename), cyc(ImapState::CandGen),
                   cyc(ImapState::Filter), cyc(ImapState::Reduce),
                   cyc(ImapState::Writeback), std::to_string(e.total)});
    }
    table.print(std::cout);

    std::cout << "\nfull mapping pass: " << res.mapping_cycles
              << " cycles for " << ldfg->size()
              << " instructions (reduction cycles scale with the "
                 "candidate matrix; all other stages constant)\n";
    return 0;
}
