/**
 * @file
 * Service-layer benchmark and determinism gate. Runs a grid of
 * open-loop traffic cells (Poisson and bursty arrivals under
 * different dispatch policies) against a multi-backend pool, plus a
 * closed-loop cross-check that the functional digest is identical
 * with 1 backend and with N backends — the multi-backend sharding
 * soundness gate.
 *
 *   ./build/bench/bench_service --tenants 200 --min-rate 50000
 *
 * Emits BENCH_service.json (fully deterministic: same seed → byte-
 * identical file, no wall-clock fields) and appends wall-timing
 * metrics to BENCH_history.jsonl. Exit 1 if any cell reports an
 * SLO-accounting invariant violation, if the closed-loop digests
 * differ, or if sustained simulated throughput drops below
 * --min-rate offloads/sec.
 */

#include <chrono>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "prof/history.hh"
#include "service/service.hh"
#include "util/crc32.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/parallel.hh"

#include "common.hh"

using namespace mesa;

namespace
{

void
usage()
{
    std::cout <<
        "bench_service — offload-as-a-service load benchmark\n"
        "  --tenants <n>     tenant sessions per cell (default 200)\n"
        "  --duration <cyc>  open-loop arrival horizon (default\n"
        "                    1500000)\n"
        "  --arrival <cyc>   mean inter-arrival per tenant (default\n"
        "                    60000)\n"
        "  --backends <n>    pool size for the open-loop cells\n"
        "                    (default 2)\n"
        "  --seed <n>        traffic seed (default 1)\n"
        "  --jobs <n>        host worker threads for the cell grid\n"
        "  --min-rate <r>    exit 1 unless every cell sustains >= r\n"
        "                    offloads/sec of simulated time\n"
        "  --out <file>      report path (default BENCH_service.json)\n"
        "  --history <file>  perf-history JSONL path (default\n"
        "                    BENCH_history.jsonl)\n"
        "  --no-history      skip the history append\n"
        "  --json            also print the report to stdout\n";
}

struct Cell
{
    const char *name;
    service::TrafficProfile profile;
    service::DispatchPolicy policy;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::applyCacheDir(argc, argv);
    int tenants = 200;
    uint64_t duration = 1'500'000;
    double arrival = 60'000.0;
    int backends = 2;
    uint64_t seed = 1;
    int jobs = defaultJobs();
    double min_rate = 0.0;
    std::string out_path = "BENCH_service.json";
    std::string history_path = "BENCH_history.jsonl";
    bool no_history = false;
    bool print_json = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage();
                exit(1);
            }
            return argv[++i];
        };
        if (arg == "--tenants")
            tenants = int(std::strtol(next(), nullptr, 10));
        else if (arg == "--duration")
            duration = std::strtoull(next(), nullptr, 10);
        else if (arg == "--arrival")
            arrival = std::strtod(next(), nullptr);
        else if (arg == "--backends")
            backends = int(std::strtol(next(), nullptr, 10));
        else if (arg == "--seed")
            seed = std::strtoull(next(), nullptr, 10);
        else if (arg == "--jobs")
            jobs = resolveJobs(int(std::strtol(next(), nullptr, 10)));
        else if (arg == "--min-rate")
            min_rate = std::strtod(next(), nullptr);
        else if (arg == "--out")
            out_path = next();
        else if (arg == "--history")
            history_path = next();
        else if (arg == "--no-history")
            no_history = true;
        else if (arg == "--json")
            print_json = true;
        else {
            usage();
            return arg == "--help" ? 0 : 1;
        }
    }

    const std::vector<Cell> cells = {
        {"poisson/least-loaded", service::TrafficProfile::Poisson,
         service::DispatchPolicy::LeastLoaded},
        {"poisson/qos-strict", service::TrafficProfile::Poisson,
         service::DispatchPolicy::QosStrict},
        {"bursty/least-loaded", service::TrafficProfile::Bursty,
         service::DispatchPolicy::LeastLoaded},
        {"bursty/kernel-affinity", service::TrafficProfile::Bursty,
         service::DispatchPolicy::KernelAffinity},
    };

    auto cellParams = [&](const Cell &cell) {
        service::ServiceParams p;
        p.traffic.profile = cell.profile;
        p.traffic.seed = seed;
        p.traffic.tenants = tenants;
        p.traffic.horizon_cycles = duration;
        p.traffic.mean_interarrival = arrival;
        p.policy = cell.policy;
        p.backends = backends;
        return p;
    };

    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<service::ServiceResult> results =
        parallelMapOrdered<service::ServiceResult>(
            cells.size(), jobs, [&](size_t i) {
                return service::runService(cellParams(cells[i]));
            });
    const double cells_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    // Closed-loop cross-check: 1 backend vs N backends must produce
    // the identical functional digest (kernel, size, and final
    // state/memory CRCs per (tenant, seq)).
    auto closedParams = [&](int n) {
        service::ServiceParams p;
        p.traffic.profile = service::TrafficProfile::ClosedLoop;
        p.traffic.seed = seed;
        p.traffic.tenants = std::min(tenants, 48);
        p.traffic.jobs_per_tenant = 3;
        p.backends = n;
        return p;
    };
    const service::ServiceResult closed_1 =
        service::runService(closedParams(1));
    const service::ServiceResult closed_n =
        service::runService(closedParams(std::max(2, backends)));
    const std::string digest_1 = service::closedLoopDigest(closed_1);
    const std::string digest_n = service::closedLoopDigest(closed_n);
    const bool closed_identical = digest_1 == digest_n;
    Crc32 digest_crc;
    digest_crc.addBytes(
        reinterpret_cast<const uint8_t *>(digest_1.data()),
        digest_1.size());

    uint64_t invariant_violations = 0;
    double worst_rate = -1.0;
    uint64_t total_completed = 0;
    for (const auto &r : results) {
        invariant_violations += r.invariant_violations;
        total_completed += r.completed;
        const double rate = r.offloadsPerSecondSim();
        if (worst_rate < 0.0 || rate < worst_rate)
            worst_rate = rate;
    }
    invariant_violations += closed_1.invariant_violations;
    invariant_violations += closed_n.invariant_violations;

    JsonWriter report;
    report.beginObject();
    report.field("bench", "service");
    report.field("seed", seed);
    report.field("tenants", uint64_t(tenants));
    report.field("duration_cycles", duration);
    report.field("mean_interarrival", arrival);
    report.field("backends", uint64_t(backends));
    report.key("cells");
    report.beginArray();
    for (size_t i = 0; i < cells.size(); ++i) {
        const auto &r = results[i];
        report.beginObject();
        report.field("name", cells[i].name);
        report.field("submitted", r.submitted);
        report.field("accepted", r.accepted);
        report.field("completed", r.completed);
        report.field("rejected", r.rejectedTotal());
        report.field("horizon_cycles", r.horizon_cycles);
        report.field("offloads_per_second_sim",
                     r.offloadsPerSecondSim());
        report.field("fairness_jain", r.slo.jainFairness());
        report.field("invariant_violations", r.invariant_violations);
        report.key("qos");
        report.beginArray();
        for (int c = 0; c < service::QosClassCount; ++c) {
            const service::ClassSlo s =
                r.slo.classSummary(service::QosClass(c));
            report.beginObject();
            report.field("qos",
                         service::qosName(service::QosClass(c)));
            report.field("jobs", s.jobs);
            report.field("violations", s.violations);
            report.field("latency_p50", s.p50);
            report.field("latency_p99", s.p99);
            report.field("latency_p999", s.p999);
            report.field("wait_mean", s.mean_wait);
            report.end();
        }
        report.end();
        report.end();
    }
    report.end();
    report.key("closed_loop");
    report.beginObject();
    report.field("jobs", closed_1.completed);
    report.field("digest_crc", uint64_t(digest_crc.value()));
    report.field("identical_across_backend_counts",
                 closed_identical);
    report.end();
    report.field("invariant_violations", invariant_violations);
    report.end();

    std::ofstream f(out_path);
    if (!f)
        fatal("cannot open report output file ", out_path);
    f << report.str() << "\n";
    if (print_json)
        std::cout << report.str() << "\n";

    std::cout << "bench_service: " << total_completed
              << " offloads across " << cells.size()
              << " cells, worst sustained rate "
              << uint64_t(worst_rate) << " offloads/s (sim), "
              << "closed-loop digests "
              << (closed_identical ? "identical" : "DIVERGENT")
              << ", " << invariant_violations
              << " invariant violations\n";

    if (!no_history) {
        prof::HistoryRecord rec =
            prof::makeHistoryRecord("bench_service");
        rec.metrics["cells_wall_seconds"] = cells_seconds;
        rec.metrics["completed"] = double(total_completed);
        rec.metrics["worst_rate_sim"] = worst_rate;
        rec.metrics["offloads_per_wall_second"] =
            cells_seconds > 0.0 ? double(total_completed) /
                                      cells_seconds
                                : 0.0;
        rec.metrics["invariant_violations"] =
            double(invariant_violations);
        rec.metrics["closed_loop_identical"] =
            closed_identical ? 1.0 : 0.0;
        if (!prof::appendHistory(history_path, rec))
            logWarn("bench", "cannot append history to ",
                    history_path);
    }

    int exit_code = 0;
    if (invariant_violations != 0) {
        std::cerr << "FAIL: SLO accounting invariant violations\n";
        exit_code = 1;
    }
    if (!closed_identical) {
        std::cerr << "FAIL: closed-loop digest differs across "
                     "backend counts\n";
        exit_code = 1;
    }
    if (min_rate > 0.0 && worst_rate < min_rate) {
        std::cerr << "FAIL: sustained rate " << worst_rate
                  << " below gate " << min_rate << "\n";
        exit_code = 1;
    }
    if (total_completed == 0) {
        std::cerr << "FAIL: no offloads completed\n";
        exit_code = 1;
    }
    return exit_code;
}
