/**
 * @file
 * Micro-benchmarks (google-benchmark): throughput of the simulator's
 * hot paths — instruction decode, functional emulation, LDFG
 * construction, the Algorithm 1 mapping pass, configuration
 * generation, and the accelerator iteration engine.
 */

#include <benchmark/benchmark.h>

#include "cpu/system.hh"
#include "mesa/controller.hh"
#include "workloads/kernel.hh"

using namespace mesa;

namespace
{

const workloads::Kernel &
kernel()
{
    static const workloads::Kernel k = workloads::makeKmeans(4096);
    return k;
}

void
BM_Decode(benchmark::State &state)
{
    const auto &prog = kernel().program;
    for (auto _ : state) {
        for (size_t i = 0; i < prog.words.size(); ++i) {
            benchmark::DoNotOptimize(riscv::decode(
                prog.words[i], prog.base_pc + uint32_t(4 * i)));
        }
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(prog.words.size()));
}
BENCHMARK(BM_Decode);

void
BM_Emulate(benchmark::State &state)
{
    mem::MainMemory memory;
    kernel().init_data(memory);
    cpu::loadProgram(memory, kernel().program);
    for (auto _ : state) {
        riscv::Emulator emu(memory);
        emu.reset(kernel().program.base_pc);
        kernel().fullRange()(emu.state());
        emu.run(1'000'000);
        benchmark::DoNotOptimize(emu.instret());
        state.SetItemsProcessed(int64_t(emu.instret()));
    }
}
BENCHMARK(BM_Emulate);

void
BM_LdfgBuild(benchmark::State &state)
{
    const auto body = kernel().loopBody();
    for (auto _ : state) {
        auto g = dfg::Ldfg::build(body);
        benchmark::DoNotOptimize(g);
    }
}
BENCHMARK(BM_LdfgBuild);

void
BM_MapperPass(benchmark::State &state)
{
    const auto accel = accel::AccelParams::m128();
    ic::AccelNocInterconnect ic(accel.rows, accel.cols, 4);
    core::InstructionMapper mapper(accel, ic);
    auto g = dfg::Ldfg::build(kernel().loopBody());
    for (auto _ : state) {
        auto res = mapper.map(*g);
        benchmark::DoNotOptimize(res.model_latency);
    }
}
BENCHMARK(BM_MapperPass);

void
BM_ConfigBuild(benchmark::State &state)
{
    const auto accel = accel::AccelParams::m128();
    ic::AccelNocInterconnect ic(accel.rows, accel.cols, 4);
    core::InstructionMapper mapper(accel, ic);
    core::ConfigBlock block(accel);
    auto g = dfg::Ldfg::build(kernel().loopBody());
    auto map = mapper.map(*g);
    core::ConfigOptions opts;
    opts.tile_factor = 4;
    for (auto _ : state) {
        auto cfg = block.build(*g, map.sdfg, opts, 0x1000, 0x2000);
        benchmark::DoNotOptimize(cfg.config_words);
    }
}
BENCHMARK(BM_ConfigBuild);

void
BM_AcceleratorRun(benchmark::State &state)
{
    core::MesaParams params;
    params.iterative_optimization = false;
    for (auto _ : state) {
        mem::MainMemory memory;
        kernel().init_data(memory);
        cpu::loadProgram(memory, kernel().program);
        core::MesaController mesa(params, memory);
        riscv::Emulator emu(memory);
        emu.reset(kernel().program.base_pc);
        kernel().fullRange()(emu.state());
        auto os = mesa.offloadLoop(kernel().loopBody(), emu.state(),
                                   true);
        benchmark::DoNotOptimize(os->accel_cycles);
        state.SetItemsProcessed(int64_t(os->accel_iterations));
    }
}
BENCHMARK(BM_AcceleratorRun);

} // namespace

BENCHMARK_MAIN();
