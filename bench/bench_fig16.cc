/**
 * @file
 * Reproduces paper Figure 16: average energy (nJ) consumed per loop
 * iteration as a function of iterations elapsed, for the nn kernel.
 * The sunk cost of dataflow construction, mapping, and configuration
 * dominates early and amortizes over time — around 70 iterations in
 * the paper.
 */

#include "common.hh"

using namespace mesa;
using namespace mesa::bench;

int
main()
{
    const auto kernel = workloads::makeNn(4096);
    core::MesaParams params;
    params.accel = accel::AccelParams::m128();
    params.iterative_optimization = false;

    power::PowerModel pm(params.accel);

    TextTable table("Figure 16: nn average energy per iteration (nJ) "
                    "vs iterations elapsed");
    table.header({"iterations", "energy/iter (nJ)", "overhead x"});

    double steady = -1.0;
    std::vector<std::pair<uint64_t, double>> series;
    for (uint64_t iters :
         {1u, 2u, 5u, 10u, 20u, 50u, 70u, 100u, 200u, 500u, 2000u}) {
        mem::MainMemory memory;
        kernel.init_data(memory);
        cpu::loadProgram(memory, kernel.program);
        core::MesaController mesa(params, memory);

        riscv::Emulator emu(memory);
        emu.reset(kernel.program.base_pc);
        kernel.fullRange()(emu.state());
        auto os = mesa.offloadLoop(kernel.loopBody(), emu.state(),
                                   kernel.parallel, iters);
        if (!os || os->accel_iterations == 0)
            continue;

        const auto e =
            pm.accelEnergy(os->accel, os->totalConfigCycles());
        const double per_iter = e.total() / double(os->accel_iterations);
        series.emplace_back(os->accel_iterations, per_iter);
        steady = per_iter; // last (largest) point approximates steady state
    }

    uint64_t last_iters = 0;
    for (const auto &[iters, per_iter] : series) {
        if (iters == last_iters)
            continue; // tiling rounds iteration counts up
        last_iters = iters;
        table.row({std::to_string(iters), TextTable::num(per_iter),
                   TextTable::num(per_iter / steady)});
    }
    table.print(std::cout);

    // Find the amortization point: within 1.5x of steady state.
    uint64_t amortized_at = 0;
    for (const auto &[iters, per_iter] : series) {
        if (per_iter <= 1.5 * steady) {
            amortized_at = iters;
            break;
        }
    }
    std::cout << "\nconfiguration cost amortized (within 1.5x of "
                 "steady state) by ~"
              << amortized_at
              << " iterations (paper: ~70 iterations)\n";
    return 0;
}
