/**
 * @file
 * Reproduces paper Figure 16: average energy (nJ) consumed per loop
 * iteration as a function of iterations elapsed, for the nn kernel.
 * The sunk cost of dataflow construction, mapping, and configuration
 * dominates early and amortizes over time — around 70 iterations in
 * the paper.
 */

#include "common.hh"

using namespace mesa;
using namespace mesa::bench;

int
main(int argc, char **argv)
{
    const int jobs = parseJobs(argc, argv);
    applyCacheDir(argc, argv);
    const auto kernel = workloads::makeNn(4096);
    core::MesaParams params;
    params.accel = accel::AccelParams::m128();
    params.iterative_optimization = false;

    power::PowerModel pm(params.accel);

    TextTable table("Figure 16: nn average energy per iteration (nJ) "
                    "vs iterations elapsed");
    table.header({"iterations", "energy/iter (nJ)", "overhead x"});

    const uint64_t iter_points[] = {1,  2,   5,   10,  20, 50,
                                    70, 100, 200, 500, 2000};
    struct Point
    {
        bool ok = false;
        uint64_t iterations = 0;
        double per_iter = 0;
    };
    const auto points = shardedRows<Point>(
        std::size(iter_points), jobs, [&](size_t i) -> Point {
            const uint64_t iters = iter_points[i];
            mem::MainMemory memory;
            kernel.init_data(memory);
            cpu::loadProgram(memory, kernel.program);
            core::MesaController mesa(params, memory);

            riscv::Emulator emu(memory);
            emu.reset(kernel.program.base_pc);
            kernel.fullRange()(emu.state());
            auto os = mesa.offloadLoop(kernel.loopBody(), emu.state(),
                                       kernel.parallel, iters);
            if (!os || os->accel_iterations == 0)
                return {};
            const auto e =
                pm.accelEnergy(os->accel, os->totalConfigCycles());
            return {true, os->accel_iterations,
                    e.total() / double(os->accel_iterations)};
        });

    double steady = -1.0;
    std::vector<std::pair<uint64_t, double>> series;
    for (const Point &p : points) {
        if (!p.ok)
            continue;
        series.emplace_back(p.iterations, p.per_iter);
        steady = p.per_iter; // last (largest) point ~ steady state
    }

    uint64_t last_iters = 0;
    for (const auto &[iters, per_iter] : series) {
        if (iters == last_iters)
            continue; // tiling rounds iteration counts up
        last_iters = iters;
        table.row({std::to_string(iters), TextTable::num(per_iter),
                   TextTable::num(per_iter / steady)});
    }
    table.print(std::cout);

    // Find the amortization point: within 1.5x of steady state.
    uint64_t amortized_at = 0;
    for (const auto &[iters, per_iter] : series) {
        if (per_iter <= 1.5 * steady) {
            amortized_at = iters;
            break;
        }
    }
    std::cout << "\nconfiguration cost amortized (within 1.5x of "
                 "steady state) by ~"
              << amortized_at
              << " iterations (paper: ~70 iterations)\n";
    return 0;
}
