/**
 * @file
 * Reproduces paper Figure 13: breakdown of area, power, and energy
 * consumption by component for MESA including the accelerator.
 * Energy fractions are averaged over four benchmarks (nn, kmeans,
 * hotspot, cfd) as in the paper; the key result is that ~87% of the
 * energy goes to memory or computation, with only a small fraction
 * on control.
 */

#include "common.hh"

using namespace mesa;
using namespace mesa::bench;

int
main(int argc, char **argv)
{
    const int jobs = parseJobs(argc, argv);
    applyCacheDir(argc, argv);
    const auto accel = accel::AccelParams::m128();
    power::PowerModel pm(accel);

    // --- Area and peak-power fractions (from the synthesis model) ---
    TextTable area_table(
        "Figure 13a: area / peak-power fractions by component (M-128)");
    area_table.header({"component", "area %", "power %"});
    const auto rows = pm.acceleratorRows();
    const double total_area = rows.front().area_um2;
    const double total_power = rows.front().power_w;
    const double mesa_area = 502000.0;
    const double mesa_power = 0.36;
    for (const auto &row : rows) {
        if (row.indent != 1)
            continue;
        area_table.row(
            {row.name,
             TextTable::num(100 * row.area_um2 / (total_area + mesa_area)),
             TextTable::num(100 * row.power_w /
                            (total_power + mesa_power))});
    }
    area_table.row({"MESA controller",
                    TextTable::num(100 * mesa_area /
                                   (total_area + mesa_area)),
                    TextTable::num(100 * mesa_power /
                                   (total_power + mesa_power))});
    area_table.print(std::cout);

    // --- Energy fractions averaged over four benchmarks ---
    const char *names[] = {"nn", "kmeans", "hotspot", "cfd"};
    const auto per_kernel = shardedRows<power::EnergyBreakdown>(
        std::size(names), jobs,
        [&](size_t i) -> power::EnergyBreakdown {
            const auto kernel =
                workloads::kernelByName(names[i], {8192});
            core::MesaParams params;
            params.accel = accel;
            const MesaRun run = runMesa(kernel, params);
            power::EnergyBreakdown acc;
            for (const auto &os : run.result.offloads) {
                const auto e =
                    pm.accelEnergy(os.accel, os.totalConfigCycles() +
                                                 os.reconfig_cycles);
                acc.compute_nj += e.compute_nj;
                acc.memory_nj += e.memory_nj;
                acc.noc_nj += e.noc_nj;
                acc.control_nj += e.control_nj;
                acc.static_nj += e.static_nj;
            }
            return acc;
        });
    power::EnergyBreakdown sum;
    for (const auto &e : per_kernel) {
        sum.compute_nj += e.compute_nj;
        sum.memory_nj += e.memory_nj;
        sum.noc_nj += e.noc_nj;
        sum.control_nj += e.control_nj;
        sum.static_nj += e.static_nj;
    }

    const double total = sum.total();
    TextTable energy_table(
        "Figure 13b: energy breakdown, averaged over nn/kmeans/"
        "hotspot/cfd");
    energy_table.header({"component", "energy %"});
    energy_table.row(
        {"computation", TextTable::num(100 * sum.compute_nj / total)});
    energy_table.row(
        {"memory", TextTable::num(100 * sum.memory_nj / total)});
    energy_table.row(
        {"interconnect", TextTable::num(100 * sum.noc_nj / total)});
    energy_table.row(
        {"control (MESA + network)",
         TextTable::num(100 * sum.control_nj / total)});
    energy_table.row(
        {"static", TextTable::num(100 * sum.static_nj / total)});
    energy_table.print(std::cout);

    const double mem_compute =
        100 * (sum.compute_nj + sum.memory_nj) / total;
    std::cout << "\nmemory+computation share: "
              << TextTable::num(mem_compute)
              << "% (paper: ~87%, control small)\n";
    return 0;
}
