/**
 * @file
 * Design-space sensitivity sweeps (beyond the paper's figures):
 * memory ports, shared DRAM bandwidth, profiling-epoch length, and
 * candidate-window geometry, each against total cycles on a
 * representative kernel pair. Quantifies which knobs the headline
 * results actually depend on.
 */

#include "common.hh"

using namespace mesa;
using namespace mesa::bench;

namespace
{

uint64_t
totalCycles(const char *kernel_name,
            const std::function<void(core::MesaParams &)> &tweak)
{
    const auto kernel = workloads::kernelByName(kernel_name, {8192});
    core::MesaParams params;
    tweak(params);
    return runMesa(kernel, params).result.total_cycles;
}

} // namespace

int
main()
{
    const char *fp_kernel = "kmeans";
    const char *mem_kernel = "bfs";

    {
        TextTable t("sensitivity: memory ports (total cycles)");
        t.header({"ports", fp_kernel, mem_kernel});
        for (unsigned ports : {4u, 8u, 16u, 32u, 64u}) {
            auto tweak = [&](core::MesaParams &p) {
                p.accel.mem_ports = ports;
            };
            t.row({std::to_string(ports),
                   std::to_string(totalCycles(fp_kernel, tweak)),
                   std::to_string(totalCycles(mem_kernel, tweak))});
        }
        t.print(std::cout);
        std::cout << "\n";
    }
    {
        TextTable t("sensitivity: shared DRAM bandwidth "
                    "(accesses/cycle, total cycles)");
        t.header({"bw", fp_kernel, mem_kernel});
        for (double bw : {0.25, 0.5, 1.0, 2.0, 4.0}) {
            auto tweak = [&](core::MesaParams &p) {
                p.accel.dram_accesses_per_cycle = bw;
            };
            t.row({TextTable::num(bw),
                   std::to_string(totalCycles(fp_kernel, tweak)),
                   std::to_string(totalCycles(mem_kernel, tweak))});
        }
        t.print(std::cout);
        std::cout << "\n";
    }
    {
        TextTable t("sensitivity: profiling epoch length (total "
                    "cycles, iterative optimization on)");
        t.header({"epoch", fp_kernel});
        for (uint64_t epoch : {32u, 64u, 128u, 256u, 1024u}) {
            auto tweak = [&](core::MesaParams &p) {
                p.profile_epoch_iterations = epoch;
            };
            t.row({std::to_string(epoch),
                   std::to_string(totalCycles(fp_kernel, tweak))});
        }
        t.print(std::cout);
        std::cout << "\n";
    }
    {
        TextTable t("sensitivity: candidate window geometry "
                    "(32 entries each, total cycles)");
        t.header({"window", fp_kernel});
        for (auto [r, c] : {std::pair{2, 16}, {4, 8}, {4, 4}, {8, 4},
                            {16, 2}}) {
            auto tweak = [&](core::MesaParams &p) {
                p.mapper.cand_rows = r;
                p.mapper.cand_cols = c;
            };
            t.row({std::to_string(r) + "x" + std::to_string(c),
                   std::to_string(totalCycles(fp_kernel, tweak))});
        }
        t.print(std::cout);
    }
    return 0;
}
