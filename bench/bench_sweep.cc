/**
 * @file
 * Design-space sensitivity sweeps (beyond the paper's figures):
 * memory ports, shared DRAM bandwidth, profiling-epoch length, and
 * candidate-window geometry, each against total cycles on a
 * representative kernel pair. Quantifies which knobs the headline
 * results actually depend on.
 */

#include "common.hh"

using namespace mesa;
using namespace mesa::bench;

namespace
{

uint64_t
totalCycles(const char *kernel_name,
            const std::function<void(core::MesaParams &)> &tweak)
{
    const auto kernel = workloads::kernelByName(kernel_name, {8192});
    core::MesaParams params;
    tweak(params);
    return runMesa(kernel, params).result.total_cycles;
}

} // namespace

// Every sweep point is independent, so the whole sweep — all four
// tables — shards as a single flat grid of (axis point, kernel)
// cells.
struct Axis
{
    const char *title;
    const char *key;
    std::vector<const char *> kernels;
    std::vector<std::string> labels;
    std::vector<std::function<void(core::MesaParams &)>> tweaks;
};

int
main(int argc, char **argv)
{
    const int jobs = parseJobs(argc, argv);
    applyCacheDir(argc, argv);
    const char *fp_kernel = "kmeans";
    const char *mem_kernel = "bfs";

    std::vector<Axis> axes;
    {
        Axis a;
        a.title = "sensitivity: memory ports (total cycles)";
        a.key = "ports";
        a.kernels = {fp_kernel, mem_kernel};
        for (unsigned ports : {4u, 8u, 16u, 32u, 64u}) {
            a.labels.push_back(std::to_string(ports));
            a.tweaks.push_back([ports](core::MesaParams &p) {
                p.accel.mem_ports = ports;
            });
        }
        axes.push_back(std::move(a));
    }
    {
        Axis a;
        a.title = "sensitivity: shared DRAM bandwidth "
                  "(accesses/cycle, total cycles)";
        a.key = "bw";
        a.kernels = {fp_kernel, mem_kernel};
        for (double bw : {0.25, 0.5, 1.0, 2.0, 4.0}) {
            a.labels.push_back(TextTable::num(bw));
            a.tweaks.push_back([bw](core::MesaParams &p) {
                p.accel.dram_accesses_per_cycle = bw;
            });
        }
        axes.push_back(std::move(a));
    }
    {
        Axis a;
        a.title = "sensitivity: profiling epoch length (total "
                  "cycles, iterative optimization on)";
        a.key = "epoch";
        a.kernels = {fp_kernel};
        for (uint64_t epoch : {32u, 64u, 128u, 256u, 1024u}) {
            a.labels.push_back(std::to_string(epoch));
            a.tweaks.push_back([epoch](core::MesaParams &p) {
                p.profile_epoch_iterations = epoch;
            });
        }
        axes.push_back(std::move(a));
    }
    {
        Axis a;
        a.title = "sensitivity: candidate window geometry "
                  "(32 entries each, total cycles)";
        a.key = "window";
        a.kernels = {fp_kernel};
        for (auto [r, c] : {std::pair{2, 16}, {4, 8}, {4, 4}, {8, 4},
                            {16, 2}}) {
            a.labels.push_back(std::to_string(r) + "x" +
                               std::to_string(c));
            a.tweaks.push_back([r, c](core::MesaParams &p) {
                p.mapper.cand_rows = r;
                p.mapper.cand_cols = c;
            });
        }
        axes.push_back(std::move(a));
    }

    // Flatten: one shard per (axis point, kernel) cell.
    struct Cell
    {
        size_t axis, point;
        const char *kernel;
        std::function<void(core::MesaParams &)> tweak;
    };
    std::vector<Cell> cells;
    for (size_t ai = 0; ai < axes.size(); ++ai)
        for (size_t pi = 0; pi < axes[ai].labels.size(); ++pi)
            for (const char *k : axes[ai].kernels)
                cells.push_back({ai, pi, k, axes[ai].tweaks[pi]});

    const auto results = shardedRows<uint64_t>(
        cells.size(), jobs, [&](size_t i) -> uint64_t {
            return totalCycles(cells[i].kernel, cells[i].tweak);
        });

    size_t cursor = 0;
    for (size_t ai = 0; ai < axes.size(); ++ai) {
        const Axis &a = axes[ai];
        TextTable t(a.title);
        std::vector<std::string> header{a.key};
        for (const char *k : a.kernels)
            header.push_back(k);
        t.header(header);
        for (size_t pi = 0; pi < a.labels.size(); ++pi) {
            std::vector<std::string> row{a.labels[pi]};
            for (size_t ki = 0; ki < a.kernels.size(); ++ki)
                row.push_back(std::to_string(results[cursor++]));
            t.row(row);
        }
        t.print(std::cout);
        if (ai + 1 < axes.size())
            std::cout << "\n";
    }
    return 0;
}
