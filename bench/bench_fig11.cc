/**
 * @file
 * Reproduces paper Figure 11: relative performance and energy
 * efficiency of M-128 and M-512 against the 16-core quad-issue
 * out-of-order multicore baseline, across the Rodinia-like suite.
 * Prints one row per benchmark plus the suite averages the paper
 * reports (1.33x / 1.81x speedup, 1.86x / 1.92x energy efficiency).
 */

#include "common.hh"

using namespace mesa;
using namespace mesa::bench;

int
main(int argc, char **argv)
{
    const int jobs = parseJobs(argc, argv);
    applyCacheDir(argc, argv);
    const workloads::SuiteScale scale{16384};
    const auto suite = workloads::rodiniaSuite(scale);

    TextTable table("Figure 11: performance and energy efficiency vs "
                    "16-core OoO multicore");
    table.header({"benchmark", "perf M-128", "perf M-512",
                  "eff M-128", "eff M-512"});

    std::vector<double> perf128, perf512, eff128, eff512;

    struct Row
    {
        std::string name;
        double s128 = 0, s512 = 0, e128 = 0, e512 = 0;
    };
    // One shard per (kernel, accel config) grid cell; rows come back
    // in suite order regardless of --jobs.
    const auto rows = shardedRows<Row>(
        suite.size() * 2, jobs, [&](size_t i) -> Row {
            const auto &kernel = suite[i / 2];
            const bool big = i % 2;
            const CpuRun base = runMulticoreBaseline(kernel);
            core::MesaParams p;
            p.accel = big ? accel::AccelParams::m512()
                          : accel::AccelParams::m128();
            const MesaRun m = runMesa(kernel, p);
            Row r;
            r.name = kernel.name;
            (big ? r.s512 : r.s128) =
                double(base.run.cycles) / double(m.result.total_cycles);
            (big ? r.e512 : r.e128) = base.energy_nj / m.energy_nj;
            return r;
        });

    for (size_t k = 0; k < suite.size(); ++k) {
        const double s128 = rows[2 * k].s128;
        const double s512 = rows[2 * k + 1].s512;
        const double e128 = rows[2 * k].e128;
        const double e512 = rows[2 * k + 1].e512;

        perf128.push_back(s128);
        perf512.push_back(s512);
        eff128.push_back(e128);
        eff512.push_back(e512);

        table.row({rows[2 * k].name, TextTable::num(s128),
                   TextTable::num(s512), TextTable::num(e128),
                   TextTable::num(e512)});
    }

    table.row({"average", TextTable::num(mean(perf128)),
               TextTable::num(mean(perf512)),
               TextTable::num(mean(eff128)),
               TextTable::num(mean(eff512))});
    table.print(std::cout);

    std::cout << "\npaper: avg perf 1.33x (M-128), 1.81x (M-512); "
                 "avg energy eff 1.86x / 1.92x\n";
    return 0;
}
