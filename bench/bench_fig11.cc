/**
 * @file
 * Reproduces paper Figure 11: relative performance and energy
 * efficiency of M-128 and M-512 against the 16-core quad-issue
 * out-of-order multicore baseline, across the Rodinia-like suite.
 * Prints one row per benchmark plus the suite averages the paper
 * reports (1.33x / 1.81x speedup, 1.86x / 1.92x energy efficiency).
 */

#include "common.hh"

using namespace mesa;
using namespace mesa::bench;

int
main()
{
    const workloads::SuiteScale scale{16384};
    const auto suite = workloads::rodiniaSuite(scale);

    TextTable table("Figure 11: performance and energy efficiency vs "
                    "16-core OoO multicore");
    table.header({"benchmark", "perf M-128", "perf M-512",
                  "eff M-128", "eff M-512"});

    std::vector<double> perf128, perf512, eff128, eff512;

    for (const auto &kernel : suite) {
        const CpuRun base = runMulticoreBaseline(kernel);

        core::MesaParams p128;
        p128.accel = accel::AccelParams::m128();
        core::MesaParams p512;
        p512.accel = accel::AccelParams::m512();

        const MesaRun m128 = runMesa(kernel, p128);
        const MesaRun m512 = runMesa(kernel, p512);

        const double s128 =
            double(base.run.cycles) / double(m128.result.total_cycles);
        const double s512 =
            double(base.run.cycles) / double(m512.result.total_cycles);
        const double e128 = base.energy_nj / m128.energy_nj;
        const double e512 = base.energy_nj / m512.energy_nj;

        perf128.push_back(s128);
        perf512.push_back(s512);
        eff128.push_back(e128);
        eff512.push_back(e512);

        table.row({kernel.name, TextTable::num(s128),
                   TextTable::num(s512), TextTable::num(e128),
                   TextTable::num(e512)});
    }

    table.row({"average", TextTable::num(mean(perf128)),
               TextTable::num(mean(perf512)),
               TextTable::num(mean(eff128)),
               TextTable::num(mean(eff512))});
    table.print(std::cout);

    std::cout << "\npaper: avg perf 1.33x (M-128), 1.81x (M-512); "
                 "avg energy eff 1.86x / 1.92x\n";
    return 0;
}
