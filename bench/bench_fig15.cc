/**
 * @file
 * Reproduces paper Figure 15: MESA performance scaling with PE count
 * for the nn kernel (small enough to fit on 16 PEs). Series: default
 * accelerator, "ideal memory" (infinite memory ports), and ideal
 * linear scaling from the 16-PE point. The paper observes
 * near-perfect scaling until memory bottlenecks beyond 128 PEs.
 */

#include "common.hh"

using namespace mesa;
using namespace mesa::bench;

namespace
{

uint64_t
accelCycles(const workloads::Kernel &kernel, int pes, bool ideal_mem)
{
    core::MesaParams params;
    params.accel = accel::AccelParams::withPeCount(pes);
    params.accel.ideal_memory = ideal_mem;

    mem::MainMemory memory;
    kernel.init_data(memory);
    cpu::loadProgram(memory, kernel.program);
    core::MesaController mesa(params, memory);

    riscv::Emulator emu(memory);
    emu.reset(kernel.program.base_pc);
    kernel.fullRange()(emu.state());
    auto os = mesa.offloadLoop(kernel.loopBody(), emu.state(),
                               kernel.parallel);
    return os ? os->accel_cycles : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const int jobs = parseJobs(argc, argv);
    applyCacheDir(argc, argv);
    const auto kernel = workloads::makeNn(16384);
    const int pe_counts[] = {16, 32, 64, 128, 256, 512};
    const size_t n = std::size(pe_counts);

    TextTable table("Figure 15: nn performance scaling with PE count "
                    "(throughput relative to 16 PEs)");
    table.header({"PEs", "default", "ideal memory", "ideal scaling"});

    // All series share the default 16-PE configuration as baseline.
    const uint64_t base = accelCycles(kernel, 16, false);

    // Grid: PE count × {default, ideal memory}.
    const auto cells = shardedRows<uint64_t>(
        n * 2, jobs, [&](size_t i) -> uint64_t {
            return accelCycles(kernel, pe_counts[i / 2], i % 2 != 0);
        });

    for (size_t i = 0; i < n; ++i) {
        const int pes = pe_counts[i];
        const uint64_t cyc = cells[2 * i];
        const uint64_t cyc_ideal = cells[2 * i + 1];
        const double rel = cyc ? double(base) / double(cyc) : 0;
        const double rel_ideal =
            cyc_ideal ? double(base) / double(cyc_ideal) : 0;
        const double ideal = double(pes) / 16.0;
        table.row({std::to_string(pes), TextTable::num(rel),
                   TextTable::num(rel_ideal), TextTable::num(ideal)});
    }
    table.print(std::cout);

    std::cout << "\npaper: near-perfect scaling until memory "
                 "bottlenecks beyond 128 PEs; ideal memory keeps "
                 "scaling further\n";
    return 0;
}
